// Package astro is the public facade of the Astro reproduction: a
// compiler-assisted adaptive program scheduler for big.LITTLE systems
// (Novaes et al., PPoPP 2019), together with every substrate it needs — an
// astc compiler, a deterministic big.LITTLE machine simulator, Q-learning
// runtime, and the baseline schedulers (GTS, Hipster, Octopus-Man).
//
// The typical pipeline mirrors the paper's Fig. 5:
//
//	mod, _ := astro.Compile("prog", source)          // Clang/LLVM stand-in
//	prog, _ := astro.NewProgram(mod)                 // feature mining (Sec 3.1)
//	agent := prog.NewAgent(42)                       // Q-learning (Sec 3.2)
//	_, _ = prog.Train(agent, astro.TrainConfig{...}) // learning episodes
//	static, _ := prog.StaticBinary(agent)            // Fig. 8b imprinting
//	res, _ := astro.Run(static, astro.RunConfig{...})
//
// Everything is deterministic for a given seed and uses only the standard
// library. See DESIGN.md for the system inventory and EXPERIMENTS.md for
// the paper-vs-measured results.
package astro

import (
	"fmt"

	"astro/internal/features"
	"astro/internal/hw"
	"astro/internal/instrument"
	"astro/internal/ir"
	"astro/internal/lang"
	"astro/internal/rl"
	"astro/internal/sched"
	"astro/internal/sim"
	"astro/internal/workloads"
)

// Re-exported core types. The internal packages remain the source of truth;
// these aliases give library users one import.
type (
	// Module is a compiled astc program.
	Module = ir.Module
	// Platform describes a big.LITTLE board.
	Platform = hw.Platform
	// Config is a hardware configuration (xLyB).
	Config = hw.Config
	// Result summarizes a simulated execution.
	Result = sim.Result
	// Phase is a static program phase.
	Phase = features.Phase
	// Policy maps phases to configurations for static instrumentation.
	Policy = instrument.Policy
	// Agent is a Q-learning policy.
	Agent = rl.Agent
)

// Compile builds an astc source string into IR (the front-end half of the
// paper's toolchain).
func Compile(name, source string) (*Module, error) {
	return lang.Compile(name, source)
}

// OdroidXU4 returns the paper's evaluation platform (4 big + 4 LITTLE,
// 24 configurations).
func OdroidXU4() *Platform { return hw.OdroidXU4() }

// JetsonTK1 returns the power-profiling platform of Fig. 2/3.
func JetsonTK1() *Platform { return hw.JetsonTK1() }

// Benchmark returns a bundled benchmark module by name (see
// BenchmarkNames).
func Benchmark(name string) (*Module, []int64, error) {
	spec, ok := workloads.ByName(name)
	if !ok {
		return nil, nil, fmt.Errorf("astro: unknown benchmark %q (have %v)", name, workloads.Names())
	}
	mod, err := spec.Compile()
	if err != nil {
		return nil, nil, err
	}
	return mod, spec.Args(), nil
}

// BenchmarkNames lists the bundled PARSEC/Rodinia-style benchmarks.
func BenchmarkNames() []string { return workloads.Names() }

// Program bundles a module with its Phase-Extractor analysis and
// instrumented variants.
type Program struct {
	Plat     *Platform
	Module   *Module
	Info     *features.ModuleInfo
	Learning *Module // phase-logging binary for training
}

// NewProgram analyzes a module for the Odroid XU4.
func NewProgram(mod *Module) (*Program, error) {
	return NewProgramOn(mod, hw.OdroidXU4())
}

// NewProgramOn analyzes a module for a specific platform.
func NewProgramOn(mod *Module, plat *Platform) (*Program, error) {
	info := features.AnalyzeModule(mod, features.Options{})
	learn, err := instrument.ForLearning(mod, info)
	if err != nil {
		return nil, err
	}
	return &Program{Plat: plat, Module: mod, Info: info, Learning: learn}, nil
}

// Phases returns each function's static phase.
func (p *Program) Phases() map[string]Phase {
	out := make(map[string]Phase, len(p.Info.Funcs))
	for _, f := range p.Info.Funcs {
		out[f.Name] = f.Phase
	}
	return out
}

// NewAgent builds the paper's neural Q-learner sized for the platform.
func (p *Program) NewAgent(seed int64) Agent {
	return rl.NewDQN(p.Plat.NumConfigs(), rl.DQNConfig{Seed: seed})
}

// TrainConfig controls Q-learning episodes.
type TrainConfig struct {
	Episodes int // default 12
	Seed     int64
	Args     []int64 // program arguments (scale, threads)
}

// Train runs learning episodes on the instrumented binary and returns the
// per-episode statistics (time, energy, reward) showing convergence.
func (p *Program) Train(agent Agent, cfg TrainConfig) ([]sched.EpisodeStat, *Policy, error) {
	act := sched.NewAstro(agent, p.Plat, true)
	stats, err := sched.Train(p.Learning, p.Plat, act, sched.TrainOptions{
		Episodes: cfg.Episodes,
		Seed:     cfg.Seed,
		Args:     cfg.Args,
		SimOpts:  sim.Options{},
	})
	if err != nil {
		return stats, nil, err
	}
	pol := sched.ExtractPolicyVisited(agent, p.Plat, act.Visits())
	return stats, pol, nil
}

// StaticBinary imprints a trained policy into the program (Fig. 8b).
func (p *Program) StaticBinary(pol *Policy) (*Module, error) {
	return instrument.ForStatic(p.Module, p.Info, p.Plat, pol)
}

// HybridBinary emits determine-configuration instrumentation (Fig. 8c);
// run it with RunConfig.Hybrid set to a HybridRuntime.
func (p *Program) HybridBinary() (*Module, error) {
	return instrument.ForHybrid(p.Module, p.Info)
}

// NewHybridRuntime builds the resident policy for hybrid binaries.
func (p *Program) NewHybridRuntime(agent Agent, pol *Policy) sim.HybridPolicy {
	hr := sched.NewHybridRuntime(agent, p.Plat)
	hr.Policy = pol
	return hr
}

// RunConfig controls one simulated execution.
type RunConfig struct {
	Platform      *Platform // default Odroid XU4
	Args          []int64
	Seed          int64
	InitialConfig Config // zero = all cores
	UseGTS        bool   // schedule threads with GTS (the paper's OS baseline)
	Hybrid        sim.HybridPolicy
	CaptureOutput bool
}

// Run executes a module on the simulated board.
func Run(mod *Module, cfg RunConfig) (*Result, error) {
	plat := cfg.Platform
	if plat == nil {
		plat = hw.OdroidXU4()
	}
	opts := sim.Options{
		Args:          cfg.Args,
		Seed:          cfg.Seed,
		InitialConfig: cfg.InitialConfig,
		Hybrid:        cfg.Hybrid,
		CaptureOutput: cfg.CaptureOutput,
	}
	if cfg.UseGTS {
		opts.OS = sched.NewGTS()
	}
	m, err := sim.New(mod, plat, opts)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

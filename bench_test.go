package astro

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (run the drivers at small scale and report the headline
// metrics), plus component micro-benchmarks and the ablation benches called
// out in DESIGN.md (reward exponent, learner type, phase awareness).
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// The paper-scale reproduction recorded in EXPERIMENTS.md comes from
// cmd/astro-experiments -scale paper.

import (
	"sync"
	"testing"

	"astro/internal/experiments"
	"astro/internal/hw"
	"astro/internal/rl"
	"astro/internal/sim"
	"astro/internal/trace"
	"astro/internal/workloads"
)

// BenchmarkFig1EnergyTimeSweep regenerates Fig. 1 (24-configuration
// energy/time sweep of freqmine and streamcluster).
func BenchmarkFig1EnergyTimeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		pts := r.Points["freqmine"]
		b.ReportMetric(float64(len(pts)), "configs")
	}
}

// BenchmarkFig3PowerProfile regenerates Fig. 3 (matrix program power
// profile on the TK1 with 1 kHz-equivalent sampling).
func BenchmarkFig3PowerProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		min, max := r.PhaseRange()
		b.ReportMetric(max/min, "plateau/valley")
	}
}

// BenchmarkFig4BestConfigs regenerates Fig. 4 (best configuration per
// application under 1%/5% slowdown budgets).
func BenchmarkFig4BestConfigs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.DistinctBest5()), "distinct-winners")
	}
}

// BenchmarkFig6PhaseMapping regenerates Fig. 6 (function-to-phase mapping
// in the Example 3.4 feature space); purely static analysis.
func BenchmarkFig6PhaseMapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Rows)), "functions")
	}
}

// BenchmarkFig9TraceStudy regenerates Fig. 9 (seven strategies over the
// fluidanimate trace set) and reports Astro's distance to the time oracle.
func BenchmarkFig9TraceStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		astro, oracle := r.Row("Astro"), r.Row("Oracle(T)")
		b.ReportMetric(astro.TimeS/oracle.TimeS, "astro/oracleT")
	}
}

// BenchmarkFig10DeviceStudy regenerates Fig. 10 (GTS vs Astro static vs
// hybrid across the seven device benchmarks with p-values).
func BenchmarkFig10DeviceStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(experiments.Small)
		if err != nil {
			b.Fatal(err)
		}
		tw, ew := r.Wins()
		b.ReportMetric(float64(tw), "time-wins")
		b.ReportMetric(float64(ew), "energy-wins")
	}
}

// BenchmarkFig11CodeSize regenerates Fig. 11 (binary size accounting).
func BenchmarkFig11CodeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Reports)), "benchmarks")
	}
}

// BenchmarkTable1Taxonomy renders Table 1 (static data; measures the
// formatting path).
func BenchmarkTable1Taxonomy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.RenderTable1()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benches (DESIGN.md): shared fluidanimate trace set.

var (
	ablOnce sync.Once
	ablSet  *trace.Set
	ablPlat *hw.Platform
	ablErr  error
)

func ablationSet(b *testing.B) (*trace.Set, *hw.Platform) {
	b.Helper()
	ablOnce.Do(func() {
		ablPlat = hw.OdroidXU4()
		spec, _ := workloads.ByName("fluidanimate")
		mod, err := spec.Compile()
		if err != nil {
			ablErr = err
			return
		}
		prog, err := NewProgramOn(mod, ablPlat)
		if err != nil {
			ablErr = err
			return
		}
		ablSet, ablErr = trace.RecordSet(prog.Learning, ablPlat, sim.Options{
			Args:        spec.SmallArgs(),
			Seed:        3,
			CheckpointS: 160e-6,
			QuantumS:    50e-6,
			TickS:       100e-6,
		}, nil)
	})
	if ablErr != nil {
		b.Fatal(ablErr)
	}
	return ablSet, ablPlat
}

func trainReplay(b *testing.B, pol *trace.RLPolicy, set *trace.Set, plat *hw.Platform, episodes int) trace.ReplayResult {
	b.Helper()
	for ep := 0; ep < episodes; ep++ {
		if _, err := set.Replay(pol, plat.AllOn()); err != nil {
			b.Fatal(err)
		}
	}
	pol.Learn = false
	res, err := set.Replay(pol, plat.AllOn())
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationGamma compares the reward exponent: gamma=1 (energy
// focus, Definition 3.7) vs gamma=2 (the paper's performance-emphasizing
// energy-delay choice).
func BenchmarkAblationGamma(b *testing.B) {
	set, plat := ablationSet(b)
	for _, gamma := range []float64{1.0, 2.0} {
		gamma := gamma
		name := "gamma1"
		if gamma == 2.0 {
			name = "gamma2"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				agent := rl.NewDQN(plat.NumConfigs(), rl.DQNConfig{Seed: 11, LR: 0.05})
				pol := trace.NewAstroReplay(agent, plat, true)
				pol.Gamma = gamma
				res := trainReplay(b, pol, set, plat, 60)
				b.ReportMetric(res.TimeS*1e3, "ms")
				b.ReportMetric(res.EnergyJ*1e3, "mJ")
			}
		})
	}
}

// BenchmarkAblationAgent compares the paper's neural Q-learner against the
// tabular ablation.
func BenchmarkAblationAgent(b *testing.B) {
	set, plat := ablationSet(b)
	mk := map[string]func() rl.Agent{
		"dqn":     func() rl.Agent { return rl.NewDQN(plat.NumConfigs(), rl.DQNConfig{Seed: 12, LR: 0.05}) },
		"tabular": func() rl.Agent { return rl.NewTabular(plat.NumConfigs(), 12) },
	}
	for _, name := range []string{"dqn", "tabular"} {
		make := mk[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pol := trace.NewAstroReplay(make(), plat, true)
				res := trainReplay(b, pol, set, plat, 60)
				b.ReportMetric(res.TimeS*1e3, "ms")
			}
		})
	}
}

// BenchmarkAblationPhases compares phase-aware Astro against phase-blind
// Hipster on identical traces — the paper's central thesis in one number.
func BenchmarkAblationPhases(b *testing.B) {
	set, plat := ablationSet(b)
	variants := map[string]func(rl.Agent) *trace.RLPolicy{
		"astro":   func(a rl.Agent) *trace.RLPolicy { return trace.NewAstroReplay(a, plat, true) },
		"hipster": func(a rl.Agent) *trace.RLPolicy { return trace.NewHipsterReplay(a, plat, true) },
	}
	for _, name := range []string{"astro", "hipster"} {
		mkPol := variants[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				agent := rl.NewDQN(plat.NumConfigs(), rl.DQNConfig{Seed: 13, LR: 0.05})
				res := trainReplay(b, mkPol(agent), set, plat, 60)
				b.ReportMetric(res.TimeS*1e3, "ms")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Component micro-benchmarks.

// BenchmarkSimulatorThroughput measures interpreted instructions per second
// on the 8-core machine (the substrate cost of every experiment).
func BenchmarkSimulatorThroughput(b *testing.B) {
	mod, err := Compile("spin", `
func worker(n int) {
	var i int;
	var x float = 1.0;
	for (i = 0; i < n; i = i + 1) { x = x * 1.000001 + 0.5; }
}
func main(scale int, threads int) {
	var i int;
	for (i = 0; i < threads; i = i + 1) { spawn worker(scale); }
	join();
}
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(mod, RunConfig{Args: []int64{200000, 8}, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		instr += res.Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkCompile measures the astc front end on the largest bundled
// benchmark source.
func BenchmarkCompile(b *testing.B) {
	spec, _ := workloads.ByName("particlefilter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(spec.Name, spec.Source); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDQNObserve measures one Q-learning update (with replay) — the
// per-checkpoint learning cost of the Astro runtime.
func BenchmarkDQNObserve(b *testing.B) {
	plat := hw.OdroidXU4()
	agent := rl.NewDQN(plat.NumConfigs(), rl.DQNConfig{Seed: 1})
	s := rl.State{ConfigID: 3, ProgPhase: 2, HWPhaseID: 40}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Observe(s, i%plat.NumConfigs(), 0.5, s)
	}
}

package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"astro/internal/campaign"
)

// bgContext is the CLI's root context (a seam so worker/cluster code never
// grabs context.Background directly in two places).
func bgContext() context.Context { return context.Background() }

// cluster is an in-process distributed campaign cluster: a loopback HTTP
// coordinator (the same campaign.WorkHandler astro-serve mounts) plus n
// pull-based workers. The CLI uses it for `-workers N` on campaign and
// scenario sweep, so the flag exercises the real wire protocol — leases,
// result submissions, key verification — not a shortcut around it.
type cluster struct {
	runner *campaign.RemoteRunner
	queue  *campaign.WorkQueue
	url    string

	srv       *http.Server
	cancel    context.CancelFunc
	stopSweep func()
	wg        sync.WaitGroup
}

// startCluster spins up the coordinator and n workers sharing store.
// localWidth sizes the fallback pool for non-wireable jobs (the CLI's -j).
func startCluster(n, localWidth int, store campaign.ResultStore) (*cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster needs at least 1 worker, got %d", n)
	}
	if localWidth < 1 {
		localWidth = n
	}
	q := campaign.NewWorkQueue(campaign.DefaultLeaseTTL)
	q.Store = store // keep late results of cancelled sweeps
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	c := &cluster{
		queue: q,
		url:   "http://" + ln.Addr().String(),
		srv:   &http.Server{Handler: http.StripPrefix("/work", campaign.WorkHandler(q, store))},
	}
	// Background sweep: expired leases requeue on schedule even while
	// every worker is busy executing (none polling).
	c.stopSweep = q.StartSweeper(0)
	go c.srv.Serve(ln)

	ctx, cancel := context.WithCancel(bgContext())
	c.cancel = cancel
	for i := 0; i < n; i++ {
		w := &campaign.Worker{
			Coordinator: c.url + "/work",
			ID:          fmt.Sprintf("local-%d", i),
			Max:         2,
			Poll:        20 * time.Millisecond,
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			if err := w.Run(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "astro:", err)
			}
		}()
	}
	c.runner = &campaign.RemoteRunner{
		Queue:        q,
		Store:        store,
		Local:        campaign.Pool{Workers: localWidth, Store: store},
		ShipPrograms: true,
	}
	return c, nil
}

// close stops the workers, the sweeper, and the coordinator.
func (c *cluster) close() {
	c.cancel()
	c.wg.Wait()
	c.stopSweep()
	shCtx, done := context.WithTimeout(bgContext(), time.Second)
	defer done()
	c.srv.Shutdown(shCtx)
}

// newRunner picks the execution backend for a CLI sweep: the local pool, or
// a loopback worker cluster when workers > 0. The returned cleanup must run
// after the sweep (no-op for the pool).
func newRunner(poolWorkers, remoteWorkers int, store campaign.ResultStore) (campaign.Runner, func(), error) {
	if remoteWorkers <= 0 {
		return &campaign.Pool{Workers: poolWorkers, Store: store}, func() {}, nil
	}
	c, err := startCluster(remoteWorkers, poolWorkers, store)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "astro: loopback cluster on %s with %d workers\n", c.url, remoteWorkers)
	return c.runner, c.close, nil
}

package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"

	"astro/internal/campaign"
	"astro/internal/journal"
	"astro/internal/tablefmt"
)

// cmdJournal implements `astro journal replay [-store dir] <journal-dir>`:
// the kill -9 postmortem. It reads a coordinator's flight-recorder
// directory, replays every event through the journal state machine, and
// prints the reconstructed end state — queue counters, per-worker fleet
// view, and the cells that were still in flight when the log stopped.
//
// With -store it additionally cross-audits the log against the result
// store the dead coordinator wrote: every journaled completion must have
// its content key banked (completions are journaled only after the bytes
// reach the store, so a miss here means real loss, not an interrupted
// write). The audit failing is a non-zero exit.
func cmdJournal(args []string) error {
	if len(args) < 1 || args[0] != "replay" {
		return fmt.Errorf("usage: astro journal replay [-store dir] <journal-dir>")
	}
	fs := flag.NewFlagSet("journal replay", flag.ContinueOnError)
	storeDir := fs.String("store", "", "result-store directory to audit journaled completions against (plain or sharded, auto-detected)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("journal replay takes one journal directory")
	}
	dir := fs.Arg(0)

	events, err := journal.ReadSince(dir, 0, 0)
	if err != nil {
		return fmt.Errorf("read journal %s: %w", dir, err)
	}
	if len(events) == 0 {
		return fmt.Errorf("journal %s holds no events", dir)
	}
	st := journal.Replay(events)
	fmt.Print(renderReplay(st))

	if *storeDir == "" {
		return nil
	}
	store, err := campaign.OpenStore(*storeDir)
	if err != nil {
		return err
	}
	banked, missing := auditStore(st, store)
	fmt.Printf("\nstore audit (%s): %d/%d journaled results banked\n", *storeDir, banked, banked+len(missing))
	if len(missing) > 0 {
		for _, k := range missing {
			fmt.Printf("  MISSING %s\n", k)
		}
		return fmt.Errorf("store audit failed: %d journaled completion(s) not banked", len(missing))
	}
	return nil
}

// auditStore checks every key the journal says completed (or banked
// late) against the store, returning the hit count and the sorted
// missing keys.
func auditStore(st *journal.State, store campaign.ResultStore) (banked int, missing []string) {
	keys := append(st.CompletedKeys(), st.BankedKeys()...)
	sort.Strings(keys)
	seen := ""
	for _, k := range keys {
		if k == seen {
			continue // a key can be both completed and late-banked
		}
		seen = k
		if _, ok := store.Get(k); ok {
			banked++
		} else {
			missing = append(missing, k)
		}
	}
	return banked, missing
}

// renderReplay formats a replayed journal state for the terminal.
func renderReplay(st *journal.State) string {
	var b strings.Builder
	fmt.Fprintf(&b, "replayed %d events (last seq %d)\n\n", st.Events, st.LastSeq)

	qt := tablefmt.NewTable("pending", "leased", "done", "completes", "fails", "requeues", "rejects", "duplicates", "renewals")
	qt.Row(st.Pending, st.Leased, st.Done, st.Completes, st.Fails, st.Requeues, st.Rejects, st.Duplicates, st.Renewals)
	b.WriteString(qt.String())

	if len(st.Workers) > 0 {
		ids := make([]string, 0, len(st.Workers))
		for id := range st.Workers {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		wt := tablefmt.NewTable("worker", "completed", "errors", "rejects", "state")
		for _, id := range ids {
			w := st.Workers[id]
			state := w.State
			if state == "" {
				state = "active"
			}
			wt.Row(id, w.Completed, w.Errors, w.Rejects, state)
		}
		b.WriteString("\n")
		b.WriteString(wt.String())
	}

	if inf := st.InFlight(); len(inf) > 0 {
		keys := make([]string, 0, len(inf))
		for k := range inf {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		it := tablefmt.NewTable("in-flight cell", "holder")
		for _, k := range keys {
			holder := inf[k]
			if holder == "" {
				holder = "(pending)"
			}
			it.Row(shortKey(k), holder)
		}
		b.WriteString("\n")
		b.WriteString(it.String())
	}
	return b.String()
}

// shortKey abbreviates a 64-char content key for table display.
func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12] + "…"
	}
	return k
}

// Command astro is the toolchain CLI: compile astc programs, inspect
// features and phases, disassemble IR, run programs on the simulated
// big.LITTLE board, and train/imprint Astro policies.
//
// Usage:
//
//	astro features  <file.astc | bench:name>
//	astro disasm    <file.astc | bench:name>
//	astro run       [-sched gts|default] [-config 2L3B] [-scale N] [-threads N] [-seed N] <prog>
//	astro train     [-episodes N] [-scale N] [-threads N] [-seed N] <prog>
//	astro bench     (list bundled benchmarks)
//	astro campaign  [-spec file.json | -bench patterns] [-sched ...] [-configs ...]
//	                [-seeds ...] [-j N] [-workers N] [-cache dir] [-timeout d]
//	astro scenario  generate [-seed N] [-cpu N -io N -blocked N -mixed N] [...]
//	astro scenario  sweep|report [-spec matrix.json | -programs N -zoo ...] [-workers N]
//	astro worker    [-coordinator URL] [-id name] [-max N] [-cache dir]
//	astro journal   replay [-store dir] <journal-dir>
//	astro fleet     top [-coordinator URL] [-token t] [-interval d] [-frames N]
//
// Programs are either astc source paths or "bench:<name>" for a bundled
// benchmark.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"astro/internal/features"
	"astro/internal/hw"
	"astro/internal/instrument"
	"astro/internal/ir"
	"astro/internal/lang"
	"astro/internal/rl"
	"astro/internal/sched"
	"astro/internal/sim"
	"astro/internal/tablefmt"
	"astro/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "features":
		err = cmdFeatures(args)
	case "disasm":
		err = cmdDisasm(args)
	case "run":
		err = cmdRun(args)
	case "train":
		err = cmdTrain(args)
	case "bench":
		err = cmdBench()
	case "campaign":
		err = cmdCampaign(args)
	case "scenario":
		err = cmdScenario(args)
	case "worker":
		err = cmdWorker(args)
	case "journal":
		err = cmdJournal(args)
	case "fleet":
		err = cmdFleet(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "astro:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: astro <features|disasm|run|train|bench|campaign|scenario|worker|journal|fleet> [flags] <file.astc | bench:name>`)
}

// load resolves a program argument to a module.
func load(arg string) (*ir.Module, workloads.Spec, error) {
	if name, ok := strings.CutPrefix(arg, "bench:"); ok {
		spec, ok := workloads.ByName(name)
		if !ok {
			return nil, spec, fmt.Errorf("unknown benchmark %q; try 'astro bench'", name)
		}
		mod, err := spec.Compile()
		return mod, spec, err
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return nil, workloads.Spec{}, err
	}
	mod, err := lang.Compile(arg, string(data))
	return mod, workloads.Spec{SmallScale: 1000, DefaultScale: 1000, Threads: 4}, err
}

func cmdBench() error {
	tb := tablefmt.NewTable("name", "suite", "description")
	for _, s := range workloads.All() {
		tb.Row(s.Name, s.Suite, s.Desc)
	}
	fmt.Print(tb.String())
	return nil
}

func cmdFeatures(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("features takes one program argument")
	}
	mod, _, err := load(args[0])
	if err != nil {
		return err
	}
	mi := features.AnalyzeModule(mod, features.Options{})
	tb := tablefmt.NewTable("function", "phase", "io", "mem", "int", "fp", "lock", "nest", "io-weight", "flags")
	for _, f := range mi.Funcs {
		flags := ""
		if f.Vec.Barrier {
			flags += "B"
		}
		if f.Vec.Net {
			flags += "N"
		}
		if f.Vec.Sleep {
			flags += "S"
		}
		tb.Row(f.Name, f.Phase.String(), f.Vec.IODens, f.Vec.MemDens, f.Vec.IntDens,
			f.Vec.FPDens, f.Vec.LockDens, f.Vec.NestingFactor, f.Vec.IOWeight, flags)
	}
	fmt.Print(tb.String())
	return nil
}

func cmdDisasm(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("disasm takes one program argument")
	}
	mod, _, err := load(args[0])
	if err != nil {
		return err
	}
	fmt.Print(ir.Disassemble(mod))
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	schedName := fs.String("sched", "gts", "OS scheduler: gts or default")
	platName := fs.String("platform", "odroid-xu4", "platform name (built-in or zoo:...)")
	configStr := fs.String("config", "", "pin a hardware configuration, e.g. 2L3B")
	scale := fs.Int64("scale", 0, "benchmark scale (0 = benchmark default)")
	threads := fs.Int64("threads", 0, "worker threads (0 = benchmark default)")
	seed := fs.Int64("seed", 1, "simulation seed")
	optimize := fs.Bool("O", false, "run the IR optimizer before execution")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("run takes one program argument")
	}
	// Validate every flag before loading or simulating anything, so typos
	// fail with the valid choices instead of silently running a default.
	if *schedName != "gts" && *schedName != "default" {
		return fmt.Errorf("unknown scheduler %q (have gts, default)", *schedName)
	}
	plat, err := hw.ByName(*platName)
	if err != nil {
		return err
	}
	opts := sim.Options{Seed: *seed, CaptureOutput: true}
	if *schedName == "gts" {
		opts.OS = sched.NewGTS()
	}
	if *configStr != "" {
		cfg, err := hw.ParseConfig(*configStr)
		if err != nil {
			return err
		}
		if !cfg.Valid(plat.MaxLittle(), plat.MaxBig()) {
			return fmt.Errorf("config %v invalid on %s (max %dL%dB)",
				cfg, plat.Name, plat.MaxLittle(), plat.MaxBig())
		}
		opts.InitialConfig = cfg
	}
	mod, spec, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	if *optimize {
		n := ir.Optimize(mod)
		fmt.Printf("optimizer: %d rewrites\n", n)
	}
	opts.Args = progArgs(mod, spec, *scale, *threads)
	m, err := sim.New(mod, plat, opts)
	if err != nil {
		return err
	}
	res, err := m.Run()
	if err != nil {
		return err
	}
	fmt.Printf("time      %.6f s\nenergy    %.6f J\npower     %.3f W\ninstr     %d (%.1f MIPS)\nswitches  %d\nmigrations %d\nfinal cfg %v\n",
		res.TimeS, res.EnergyJ, res.AvgWatts(), res.Instructions, res.MIPS(), res.Switches, res.Migrations, res.FinalConfig)
	if len(res.Output) > 0 {
		n := len(res.Output)
		if n > 10 {
			n = 10
		}
		fmt.Printf("output    %v", res.Output[:n])
		if len(res.Output) > n {
			fmt.Printf(" ... (%d more)", len(res.Output)-n)
		}
		fmt.Println()
	}
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	episodes := fs.Int("episodes", 10, "training episodes")
	scale := fs.Int64("scale", 0, "benchmark scale (0 = benchmark default)")
	threads := fs.Int64("threads", 0, "worker threads (0 = benchmark default)")
	seed := fs.Int64("seed", 1, "training seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("train takes one program argument")
	}
	mod, spec, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	plat := hw.OdroidXU4()
	mi := features.AnalyzeModule(mod, features.Options{})
	learn, err := instrument.ForLearning(mod, mi)
	if err != nil {
		return err
	}
	agent := rl.NewDQN(plat.NumConfigs(), rl.DQNConfig{Seed: *seed})
	act := sched.NewAstro(agent, plat, true)
	stats, err := sched.Train(learn, plat, act, sched.TrainOptions{
		Episodes: *episodes,
		Seed:     *seed,
		Args:     progArgs(mod, spec, *scale, *threads),
		SimOpts:  sim.Options{OS: sched.NewGTS()},
	})
	if err != nil {
		return err
	}
	tb := tablefmt.NewTable("episode", "time (s)", "energy (J)", "reward")
	for _, s := range stats {
		tb.Row(s.Episode, s.TimeS, s.EnergyJ, s.Reward)
	}
	fmt.Print(tb.String())
	pol := sched.ExtractPolicyVisited(agent, plat, act.Visits())
	fmt.Println("\nextracted policy:")
	for p, cfg := range pol.PerPhase {
		fmt.Printf("  %-9v -> %v\n", features.Phase(p), cfg)
	}
	return nil
}

// progArgs builds main's arguments, honoring overrides.
func progArgs(mod *ir.Module, spec workloads.Spec, scale, threads int64) []int64 {
	mainFn := mod.FuncByName("main")
	if mainFn == nil || len(mainFn.Params) == 0 {
		return nil
	}
	s := spec.DefaultScale
	if scale > 0 {
		s = scale
	}
	t := spec.Threads
	if threads > 0 {
		t = threads
	}
	args := []int64{s, t}
	return args[:len(mainFn.Params)]
}

package main

import (
	"strings"
	"testing"
	"time"

	"astro/internal/campaign"
	"astro/internal/journal"
)

func TestRenderFleetTop(t *testing.T) {
	f := &fleetFrame{
		When: time.Date(2026, 8, 8, 12, 30, 0, 0, time.UTC),
		Stats: campaign.QueueStats{
			Pending: 3, Leased: 2, Done: 95, Requeues: 7, Rejects: 4, Duplicates: 1, Renewals: 12,
		},
		Fleet: campaign.FleetStatus{Workers: []campaign.FleetWorker{
			{
				WorkerStatus: campaign.WorkerStatus{ID: "w-steady", Leased: 2, Completed: 60, Errors: 1},
				CellsPerSec:  1.25, IdleS: 0.3,
				InFlight: "deadbeefdeadbeefdeadbeef", InFlightKind: "sim", InFlightS: 2.5,
			},
			{
				WorkerStatus: campaign.WorkerStatus{ID: "w-corrupt", State: campaign.WorkerQuarantined, Rejects: 3},
			},
		}},
		Metrics: map[string]float64{
			"astro_journal_events_total":              372,
			"astro_trace_evictions_total":             5,
			`astro_queue_completed_total{kind="sim"}`: 95,
		},
	}
	out := renderFleetTop(f)
	for _, want := range []string{
		"astro fleet top", "12:30:00",
		"pending", "95", // queue table
		"astro_journal_events_total", "372",
		"astro_trace_evictions_total",
		"w-steady", "active", "deadbeefdead…", "(sim)", "2.5s",
		"w-corrupt", campaign.WorkerQuarantined,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}

	// No workers yet: the table says so instead of rendering empty.
	empty := &fleetFrame{When: f.When, Metrics: map[string]float64{}}
	if out := renderFleetTop(empty); !strings.Contains(out, "(no workers yet)") {
		t.Errorf("empty fleet frame:\n%s", out)
	}
}

// TestJournalReplayCommand drives the postmortem path end to end on a
// hand-built journal: replay, render, and the store audit in both the
// reconciling and the missing-bytes case.
func TestJournalReplayCommand(t *testing.T) {
	dir := t.TempDir()
	jw, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32)
	lost := strings.Repeat("cd", 32)
	for _, ev := range []journal.Event{
		{Type: journal.EvEnqueue, Key: key},
		{Type: journal.EvEnqueue, Key: lost},
		{Type: journal.EvLease, Key: key, Worker: "w1", Attempt: 1},
		{Type: journal.EvLease, Key: lost, Worker: "w1", Attempt: 1},
		{Type: journal.EvComplete, Key: key, Worker: "w1"},
		{Type: journal.EvComplete, Key: lost, Worker: "w1"},
	} {
		if _, err := jw.Record(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := journal.ReadSince(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := journal.Replay(events)
	out := renderReplay(st)
	for _, want := range []string{"replayed 6 events", "w1", "active"} {
		if !strings.Contains(out, want) {
			t.Errorf("replay render missing %q:\n%s", want, out)
		}
	}

	// A store holding only one of the two journaled completions: the
	// audit banks one and names the other.
	store := campaign.NewMemStore()
	store.Put(key, []byte("bytes"))
	banked, missing := auditStore(st, store)
	if banked != 1 || len(missing) != 1 || missing[0] != lost {
		t.Fatalf("audit: banked %d, missing %v", banked, missing)
	}
	store.Put(lost, []byte("recovered"))
	if banked, missing := auditStore(st, store); banked != 2 || len(missing) != 0 {
		t.Fatalf("reconciled audit: banked %d, missing %v", banked, missing)
	}
}

package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"astro/internal/campaign"
)

// cmdWorker runs one pull-based campaign worker against a coordinator
// (astro-serve with its /work endpoints). The worker leases
// content-addressed cells — simulation jobs and training cells alike —
// executes them on -j parallel executors and pushes canonical results
// back; killing it at any point is safe, because its in-flight cells
// re-lease after the coordinator's TTL. The first SIGTERM/SIGINT drains
// instead: the worker stops leasing, finishes and submits everything it
// holds, and exits with zero held leases (the rolling-restart path); a
// second signal aborts immediately. While it executes, a heartbeat
// renews the leases under execution (POST /work/renew), so cells longer
// than the TTL — training especially — survive a short -lease-ttl on the
// coordinator; -renew overrides the heartbeat interval (default: a third
// of the TTL the coordinator advertises) and -renew -1ns disables it for
// protocol testing. -token authenticates against a coordinator started
// with one.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	coordinator := fs.String("coordinator", "http://localhost:8080", "coordinator base URL (astro-serve)")
	id := fs.String("id", defaultWorkerID(), "worker identity for lease accounting")
	maxCells := fs.Int("max", 0, "cells per lease (0 = 2 per executor)")
	par := fs.Int("j", 1, "parallel cell executors under one lease/heartbeat loop")
	poll := fs.Duration("poll", 500*time.Millisecond, "idle poll interval")
	renew := fs.Duration("renew", 0, "lease renewal heartbeat interval (0 = a third of the coordinator's TTL; negative disables renewal)")
	cacheDir := fs.String("cache", "", "local result cache directory (answers re-leased cells without resimulating)")
	shards := fs.Int("shards", 0, "shard the local cache (0 = single directory)")
	storeMaxBytes := fs.Int64("store-max-bytes", 0, "cap the local cache; LRU-evicts past the cap (0 = unbounded; requires -cache)")
	hotCacheBytes := fs.Int64("hot-cache-bytes", 0, "cap the in-memory hot result cache (0 with -store-max-bytes = same as the disk cap)")
	token := fs.String("token", "", "bearer token for the coordinator's /work endpoints")
	ignorePrograms := fs.Bool("ignore-programs", false, "compile every cell locally, ignoring coordinator-shipped compiled programs (diagnostic; results are byte-identical either way)")
	quiet := fs.Bool("q", false, "suppress per-cell progress on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	storeCfg := campaign.StoreConfig{MaxBytes: *storeMaxBytes, HotBytes: *hotCacheBytes}
	var store campaign.ResultStore
	var err error
	if *shards > 0 {
		store, err = campaign.NewShardedStoreWith(*cacheDir, *shards, storeCfg)
	} else if *cacheDir != "" {
		store, err = campaign.NewStoreWith(*cacheDir, storeCfg)
	}
	if err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(bgContext())
	defer cancel()

	w := &campaign.Worker{
		Coordinator: strings.TrimRight(*coordinator, "/") + "/work",
		ID:          *id,
		Max:         *maxCells,
		Parallel:    *par,
		Poll:        *poll,
		Renew:       *renew,
		Store:       store,
		Token:       *token,

		IgnorePrograms: *ignorePrograms,
	}

	// First signal: drain — finish and submit every held lease, then exit
	// clean. Second signal: abort; the coordinator re-leases what was held.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		<-sig
		fmt.Fprintf(os.Stderr, "astro worker %s: draining — finishing held leases (signal again to abort)\n", *id)
		w.Drain()
		<-sig
		fmt.Fprintf(os.Stderr, "astro worker %s: aborting; held leases re-issue after the TTL\n", *id)
		cancel()
	}()
	if !*quiet {
		// Lease troubles (coordinator unreachable, 5xx) are surfaced with
		// the attempt count and backoff so an operator can tell a dead
		// coordinator from an idle queue; -q silences them like progress.
		w.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
		w.OnProgress = func(p campaign.Progress) {
			mark := " "
			if p.CacheHit {
				mark = "+"
			}
			if p.Err != "" {
				mark = "!"
			}
			fmt.Fprintf(os.Stderr, "worker %s:%s %s (%.2fs)%s\n", *id, mark, p.Label, p.WallS, errSuffix(p.Err))
		}
	}
	fmt.Fprintf(os.Stderr, "astro worker %s: pulling from %s (%d executors)\n", *id, *coordinator, *par)
	return w.Run(ctx)
}

func errSuffix(err string) string {
	if err == "" {
		return ""
	}
	return " — " + err
}

func defaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"astro/internal/campaign"
)

// cmdWorker runs one pull-based campaign worker against a coordinator
// (astro-serve with its /work endpoints). The worker leases
// content-addressed cells — simulation jobs and training cells alike —
// executes them and pushes canonical results back; killing it at any
// point is safe, because its in-flight cells re-lease after the
// coordinator's TTL. While it executes, a heartbeat renews the leases it
// holds (POST /work/renew), so cells longer than the TTL — training
// especially — survive a short -lease-ttl on the coordinator; -renew
// overrides the heartbeat interval (default: a third of the TTL the
// coordinator advertises) and -renew -1ns disables it for protocol
// testing.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	coordinator := fs.String("coordinator", "http://localhost:8080", "coordinator base URL (astro-serve)")
	id := fs.String("id", defaultWorkerID(), "worker identity for lease accounting")
	maxCells := fs.Int("max", 2, "cells per lease")
	poll := fs.Duration("poll", 500*time.Millisecond, "idle poll interval")
	renew := fs.Duration("renew", 0, "lease renewal heartbeat interval (0 = a third of the coordinator's TTL; negative disables renewal)")
	cacheDir := fs.String("cache", "", "local result cache directory (answers re-leased cells without resimulating)")
	shards := fs.Int("shards", 0, "shard the local cache (0 = single directory)")
	quiet := fs.Bool("q", false, "suppress per-cell progress on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var store campaign.ResultStore
	var err error
	if *shards > 0 {
		store, err = campaign.NewShardedStore(*cacheDir, *shards)
	} else if *cacheDir != "" {
		store, err = campaign.NewStore(*cacheDir)
	}
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(bgContext(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := &campaign.Worker{
		Coordinator: strings.TrimRight(*coordinator, "/") + "/work",
		ID:          *id,
		Max:         *maxCells,
		Poll:        *poll,
		Renew:       *renew,
		Store:       store,
	}
	if !*quiet {
		// Lease troubles (coordinator unreachable, 5xx) are surfaced with
		// the attempt count and backoff so an operator can tell a dead
		// coordinator from an idle queue; -q silences them like progress.
		w.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
		w.OnProgress = func(p campaign.Progress) {
			mark := " "
			if p.CacheHit {
				mark = "+"
			}
			if p.Err != "" {
				mark = "!"
			}
			fmt.Fprintf(os.Stderr, "worker %s:%s %s (%.2fs)%s\n", *id, mark, p.Label, p.WallS, errSuffix(p.Err))
		}
	}
	fmt.Fprintf(os.Stderr, "astro worker %s: pulling from %s (max %d cells/lease)\n", *id, *coordinator, *maxCells)
	return w.Run(ctx)
}

func errSuffix(err string) string {
	if err == "" {
		return ""
	}
	return " — " + err
}

func defaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

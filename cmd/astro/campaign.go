package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"astro/internal/campaign"
)

// cmdCampaign runs a declarative simulation campaign: either a JSON spec
// file (-spec, the same body astro-serve accepts) or a grid assembled from
// flags. Progress streams to stderr; the aggregated result set renders to
// stdout.
func cmdCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	specPath := fs.String("spec", "", "JSON campaign spec file (overrides the grid flags)")
	bench := fs.String("bench", "", "comma-separated benchmark patterns (names, suites, 'all', prefix globs)")
	platforms := fs.String("platforms", "", "comma-separated platform names (default odroid-xu4)")
	scheds := fs.String("sched", "", "comma-separated schedulers: default,gts,octopus-man,fixed:<xLyB>,random:<seed>")
	configs := fs.String("configs", "", "comma-separated initial configs: <xLyB>, all-on, all")
	seeds := fs.String("seeds", "", "comma-separated int64 seeds (default 0)")
	scale := fs.String("scale", "small", "benchmark scale: small or paper")
	jobs := fs.Int("j", runtime.NumCPU(), "worker pool width")
	workers := fs.Int("workers", 0, "run through N pull-based loopback workers over the distributed protocol (0 = in-process pool)")
	cacheDir := fs.String("cache", "", "on-disk result cache directory")
	timeout := fs.Duration("timeout", 0, "stop scheduling jobs after this duration; in-flight jobs finish (0 = none)")
	quiet := fs.Bool("q", false, "suppress per-job progress on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var spec campaign.Spec
	switch {
	case *specPath != "":
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &spec); err != nil {
			return fmt.Errorf("campaign spec %s: %w", *specPath, err)
		}
	case *bench != "":
		spec = campaign.Spec{
			Benchmarks: splitList(*bench),
			Platforms:  splitList(*platforms),
			Schedulers: splitList(*scheds),
			Configs:    splitList(*configs),
			Scale:      *scale,
		}
		for _, s := range splitList(*seeds) {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return fmt.Errorf("bad seed %q: %w", s, err)
			}
			spec.Seeds = append(spec.Seeds, v)
		}
	default:
		return fmt.Errorf("campaign needs -spec file or -bench patterns")
	}

	// Spec.Expand validates every axis (platforms, schedulers, configs,
	// benchmark patterns) before compiling or simulating anything, so typos
	// fail here with the list of valid choices.
	expanded, err := spec.Expand()
	if err != nil {
		return err
	}
	store, err := campaign.NewStore(*cacheDir)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	runner, cleanup, err := newRunner(*jobs, *workers, store)
	if err != nil {
		return err
	}
	defer cleanup()
	fmt.Fprintf(os.Stderr, "campaign: %d jobs on %d workers\n", len(expanded), max(*jobs, *workers))
	start := time.Now()
	onProgress := func(p campaign.Progress) {
		if *quiet {
			return
		}
		mark := " "
		if p.CacheHit {
			mark = "+"
		}
		if p.Err != "" {
			mark = "!"
		}
		fmt.Fprintf(os.Stderr, "[%4d/%4d]%s %s (%.2fs)\n", p.Done, p.Total, mark, p.Label, p.WallS)
	}
	outs, runErr := runner.Run(ctx, expanded, onProgress)
	rs := campaign.Aggregate(spec.Name, outs)
	fmt.Println(rs.Render())
	fmt.Fprintf(os.Stderr, "campaign: %d jobs, %d cache hits, %d errors in %v\n",
		rs.Total, rs.CacheHits, rs.Errors, time.Since(start).Round(time.Millisecond))
	return runErr
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"astro/internal/campaign"
	"astro/internal/features"
	"astro/internal/hw"
	"astro/internal/scenario"
	"astro/internal/tablefmt"
)

// cmdScenario drives the scenario generator: synthesize single programs,
// sweep a generated program × platform matrix through the campaign pool,
// or render just the scheduler report of a sweep (cheap when the result
// cache is warm).
func cmdScenario(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("scenario needs a mode: generate, sweep or report")
	}
	mode, rest := args[0], args[1:]
	switch mode {
	case "generate":
		return scenarioGenerate(rest)
	case "sweep":
		return scenarioSweep(rest, false)
	case "report":
		return scenarioSweep(rest, true)
	}
	return fmt.Errorf("unknown scenario mode %q (have generate, sweep, report)", mode)
}

// scenarioGenerate synthesizes one program and prints its source (and,
// optionally, its feature/phase table).
func scenarioGenerate(args []string) error {
	fs := flag.NewFlagSet("scenario generate", flag.ExitOnError)
	seed := fs.Int64("seed", 0, "generator seed")
	cpu := fs.Int("cpu", 0, "CPU-bound functions (0s across the mix select the default 2/1/1/1)")
	io := fs.Int("io", 0, "IO-bound functions")
	blocked := fs.Int("blocked", 0, "blocked functions")
	mixed := fs.Int("mixed", 0, "mixed (Other-phase) functions")
	threads := fs.Int("threads", 0, "worker threads (default 4)")
	depth := fs.Int("depth", 0, "CPU kernel loop nesting depth (default 2)")
	trip := fs.Int("trip", 0, "base loop trip count (default 16)")
	mutexes := fs.Int("mutexes", 0, "worker-loop mutex contention (0 = none)")
	barrier := fs.Bool("barrier", false, "barrier-step the worker loop")
	showFeatures := fs.Bool("features", false, "print the feature/phase table instead of source")
	out := fs.String("o", "", "write source to file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pp := scenario.ProgramParams{
		Seed: *seed, CPU: *cpu, IO: *io, Blocked: *blocked, Mixed: *mixed,
		Threads: *threads, LoopDepth: *depth, Trip: *trip,
		Mutexes: *mutexes, Barrier: *barrier,
	}
	spec, err := scenario.Generate(pp)
	if err != nil {
		return err
	}
	if *showFeatures {
		mod, err := spec.Compile()
		if err != nil {
			return err
		}
		mi := features.AnalyzeModule(mod, features.Options{})
		tb := tablefmt.NewTable("function", "phase", "io", "mem", "int", "fp", "lock")
		for _, f := range mi.Funcs {
			tb.Row(f.Name, f.Phase.String(), f.Vec.IODens, f.Vec.MemDens,
				f.Vec.IntDens, f.Vec.FPDens, f.Vec.LockDens)
		}
		fmt.Printf("// %s\n%s", spec.Name, tb.String())
		return nil
	}
	if *out != "" {
		return os.WriteFile(*out, []byte(spec.Source), 0o644)
	}
	fmt.Print(spec.Source)
	return nil
}

// scenarioSweep expands a matrix (JSON spec or flags), validates every axis
// up front, runs the batches through the campaign pool and renders results
// plus the scheduler report. reportOnly suppresses the per-batch result
// tables (the sweep still runs, so a warm cache makes it cheap).
func scenarioSweep(args []string, reportOnly bool) error {
	fs := flag.NewFlagSet("scenario sweep", flag.ExitOnError)
	specPath := fs.String("spec", "", "JSON scenario matrix file (overrides the grid flags)")
	programs := fs.Int("programs", 5, "generated program count (preset mix cycle)")
	pseed := fs.Int64("pseed", 0, "base program seed")
	platforms := fs.String("platforms", "", "comma-separated platform names (built-in or zoo:...)")
	zoo := fs.Bool("zoo", false, "append the default platform zoo (4 topologies x 3 DVFS steps)")
	scheds := fs.String("sched", "default,gts", "comma-separated schedulers")
	configs := fs.String("configs", "", "comma-separated initial configs: <xLyB>, all-on, all")
	seeds := fs.String("seeds", "", "comma-separated simulator seeds (default 0)")
	scale := fs.String("scale", "small", "benchmark scale: small or paper")
	batch := fs.Int("batch", 0, "programs per campaign batch (0 = all in one)")
	jobs := fs.Int("j", runtime.NumCPU(), "worker pool width")
	workers := fs.Int("workers", 0, "run through N pull-based loopback workers over the distributed protocol (0 = in-process pool)")
	cacheDir := fs.String("cache", "", "on-disk result cache directory")
	timeout := fs.Duration("timeout", 0, "stop scheduling jobs after this duration (0 = none)")
	quiet := fs.Bool("q", false, "suppress per-job progress on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var m scenario.Matrix
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &m); err != nil {
			return fmt.Errorf("scenario matrix %s: %w", *specPath, err)
		}
	} else {
		m = scenario.Matrix{
			ProgramCount: *programs,
			ProgramSeed:  *pseed,
			Platforms:    splitList(*platforms),
			Schedulers:   splitList(*scheds),
			Configs:      splitList(*configs),
			Scale:        *scale,
			Batch:        *batch,
		}
		if *zoo {
			m.Zoo = &scenario.ZooParams{}
		}
		for _, s := range splitList(*seeds) {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return fmt.Errorf("bad seed %q: %w", s, err)
			}
			m.Seeds = append(m.Seeds, v)
		}
	}

	// Fail fast on typo-prone axes, before any program synthesizes or
	// simulates (satellite of the scenario subsystem: the same early
	// validation the campaign subcommand performs).
	if err := validateAxes(m.Platforms, m.Schedulers); err != nil {
		return err
	}

	// Remote dispatch works in smaller batches: a slow worker then gates one
	// slice of the program axis, not the whole matrix.
	m.AutoBatch(*workers)
	specs, err := m.Campaigns()
	if err != nil {
		return err
	}
	store, err := campaign.NewStore(*cacheDir)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	runner, cleanup, err := newRunner(*jobs, *workers, store)
	if err != nil {
		return err
	}
	defer cleanup()
	fmt.Fprintf(os.Stderr, "scenario: %d cells in %d batches on %d workers\n", m.Cells(), len(specs), max(*jobs, *workers))
	start := time.Now()
	var sets []*campaign.ResultSet
	var firstErr error
	for _, sp := range specs {
		expanded, err := sp.Expand()
		if err != nil {
			return err
		}
		outs, runErr := runner.Run(ctx, expanded, func(p campaign.Progress) {
			if *quiet {
				return
			}
			mark := " "
			if p.CacheHit {
				mark = "+"
			}
			if p.Err != "" {
				mark = "!"
			}
			fmt.Fprintf(os.Stderr, "[%4d/%4d]%s %s (%.2fs)\n", p.Done, p.Total, mark, p.Label, p.WallS)
		})
		if runErr != nil && firstErr == nil {
			firstErr = runErr
		}
		rs := campaign.Aggregate(sp.Name, outs)
		sets = append(sets, rs)
		if !reportOnly {
			fmt.Println(rs.Render())
		}
	}
	rep := scenario.BuildReport(m.Name, sets...)
	fmt.Println(rep.Render())
	fmt.Fprintf(os.Stderr, "scenario: %d batches in %v\n", len(specs), time.Since(start).Round(time.Millisecond))
	return firstErr
}

// validateAxes rejects unknown platform or scheduler names with the list of
// valid choices, before any compilation or simulation happens.
func validateAxes(platforms, schedulers []string) error {
	for _, p := range platforms {
		if _, err := hw.ByName(p); err != nil {
			return err
		}
	}
	for _, tok := range schedulers {
		if err := campaign.ValidateScheduler(tok); err != nil {
			return err
		}
	}
	return nil
}

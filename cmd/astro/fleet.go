package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"astro/internal/campaign"
	"astro/internal/tablefmt"
	"astro/internal/telemetry"
)

// cmdFleet implements `astro fleet top`: a live terminal dashboard over
// a coordinator's /work/fleet, /work/status and /metrics endpoints —
// top(1) for the worker fleet. Each frame shows queue depth and
// throughput counters, then one row per worker with liveness, rates and
// the oldest in-flight cell. It is read-only: nothing here can mutate
// queue state, so it is safe to leave running against a production
// sweep.
func cmdFleet(args []string) error {
	if len(args) < 1 || args[0] != "top" {
		return fmt.Errorf("usage: astro fleet top [-coordinator URL] [-token t] [-interval d] [-frames N]")
	}
	fs := flag.NewFlagSet("fleet top", flag.ContinueOnError)
	coordinator := fs.String("coordinator", "http://localhost:8080", "coordinator base URL (astro-serve or astro-experiments -remote)")
	token := fs.String("token", "", "bearer token for coordinators started with -token")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	frames := fs.Int("frames", 0, "stop after N frames (0 = run until interrupted)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	base := strings.TrimRight(*coordinator, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	for n := 0; ; n++ {
		frame, err := fetchFleetFrame(client, base, *token)
		if err != nil {
			return err
		}
		if n > 0 || *frames != 1 {
			fmt.Print("\x1b[2J\x1b[H") // clear + home between refreshes
		}
		fmt.Print(renderFleetTop(frame))
		if *frames > 0 && n+1 >= *frames {
			return nil
		}
		time.Sleep(*interval)
	}
}

// fleetFrame is one dashboard refresh's worth of coordinator state.
type fleetFrame struct {
	When    time.Time
	Stats   campaign.QueueStats
	Fleet   campaign.FleetStatus
	Metrics map[string]float64
}

// fetchFleetFrame polls the three read endpoints. /metrics is optional
// (older coordinators, scrape hiccups): the dashboard degrades to the
// queue/fleet tables rather than dying mid-watch.
func fetchFleetFrame(client *http.Client, base, token string) (*fleetFrame, error) {
	f := &fleetFrame{When: time.Now(), Metrics: map[string]float64{}}
	if err := getJSON(client, base+"/work/status", token, &f.Stats); err != nil {
		return nil, fmt.Errorf("poll %s/work/status: %w", base, err)
	}
	if err := getJSON(client, base+"/work/fleet", token, &f.Fleet); err != nil {
		return nil, fmt.Errorf("poll %s/work/fleet: %w", base, err)
	}
	if resp, err := client.Get(base + "/metrics"); err == nil {
		if resp.StatusCode == http.StatusOK {
			f.Metrics = telemetry.ParseText(io.LimitReader(resp.Body, 4<<20))
		}
		resp.Body.Close()
	}
	return f, nil
}

func getJSON(client *http.Client, url, token string, v any) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(v)
}

// renderFleetTop formats one dashboard frame. Split from the poll loop
// so the layout is testable without a live coordinator.
func renderFleetTop(f *fleetFrame) string {
	var b strings.Builder
	fmt.Fprintf(&b, "astro fleet top — %s\n\n", f.When.Format("15:04:05"))

	qt := tablefmt.NewTable("pending", "leased", "done", "requeues", "rejects", "duplicates", "renewals", "local done")
	qt.Row(f.Stats.Pending, f.Stats.Leased, f.Stats.Done, f.Stats.Requeues,
		f.Stats.Rejects, f.Stats.Duplicates, f.Stats.Renewals, f.Stats.LocalDone)
	b.WriteString(qt.String())

	if len(f.Metrics) > 0 {
		mt := tablefmt.NewTable("metric", "value")
		for _, name := range []string{
			`astro_queue_completed_total{kind="sim"}`,
			`astro_queue_completed_total{kind="train"}`,
			"astro_journal_events_total",
			"astro_trace_evictions_total",
			`astro_faults_injected_total{site="queue"}`,
		} {
			if v, ok := f.Metrics[name]; ok {
				mt.Row(name, v)
			}
		}
		b.WriteString("\n")
		b.WriteString(mt.String())
	}

	b.WriteString("\n")
	wt := tablefmt.NewTable("worker", "state", "leased", "done", "errors", "cells/s", "idle", "in-flight", "for")
	for _, w := range f.Fleet.Workers {
		state := w.State
		if state == "" {
			state = "active"
		}
		inflight, dur := "-", "-"
		if w.InFlight != "" {
			inflight = shortKey(w.InFlight)
			if w.InFlightKind != "" {
				inflight += " (" + w.InFlightKind + ")"
			}
			dur = fmt.Sprintf("%.1fs", w.InFlightS)
		}
		wt.Row(w.ID, state, w.Leased, w.Completed, w.Errors,
			fmt.Sprintf("%.2f", w.CellsPerSec), fmt.Sprintf("%.1fs", w.IdleS), inflight, dur)
	}
	if len(f.Fleet.Workers) == 0 {
		wt.Row("(no workers yet)", "-", "-", "-", "-", "-", "-", "-", "-")
	}
	b.WriteString(wt.String())
	return b.String()
}

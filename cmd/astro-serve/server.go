package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"

	"astro/internal/campaign"
	"astro/internal/hw"
	"astro/internal/scenario"
	"astro/internal/telemetry"
	"astro/internal/workloads"
)

// newServer wires the campaign engine into an HTTP handler. The API is
// JSON throughout:
//
//	GET    /healthz                  liveness probe (process up)
//	GET    /readyz                   readiness probe (store writable, sweeper live, fleet fresh)
//	GET    /api/benchmarks           bundled benchmark names
//	GET    /api/platforms            platform names
//	POST   /campaigns                submit a campaign.Spec; 202 + status
//	GET    /campaigns                status of every campaign, newest first
//	GET    /campaigns/{id}           one campaign's status
//	GET    /campaigns/{id}/results   aggregated result set (202 while running)
//	GET    /campaigns/{id}/events    Server-Sent Events progress stream
//	DELETE /campaigns/{id}           cancel a running campaign
//	POST   /scenarios                submit a scenario.Matrix; 202 + grouping
//	GET    /scenarios                every scenario, newest first
//	GET    /scenarios/{id}           one scenario's grouping + batch statuses
//	GET    /scenarios/{id}/report    scheduler report (202 while batches run)
//	GET    /scenarios/{id}/events    merged SSE stream across all batches
//	GET    /metrics                  Prometheus text exposition (process-wide)
//	POST   /work/lease               worker protocol: lease campaign cells
//	POST   /work/result              worker protocol: push a cell result
//	GET    /work/status              queue + per-worker fleet status
//	GET    /work/fleet               derived per-worker fleet view (rates, in-flight)
//	GET    /work/traces              coordinator-assembled per-cell traces
//	GET    /work/journal             flight-recorder events (cursor-paged; needs -journal)
//	GET    /work/agents/{key}        trained-agent snapshot exchange (fetch)
//	PUT    /work/agents/{key}        trained-agent snapshot exchange (publish)
//
// The /work endpoints (campaign.WorkHandler) are always mounted; they only
// hand out cells when the engine runs with -remote, but the agent exchange
// and status are live either way. Campaign SSE progress streams cover
// remote cells too — a leased cell's completion flows through the engine's
// progress path exactly like a locally simulated one.
//
// When pprofOn is true the net/http/pprof profiling endpoints are mounted
// under /debug/pprof/ (opt-in: profiles expose internals and cost CPU).
//
// workToken, when non-empty, guards every /work endpoint behind bearer
// auth (campaign.WithBearerAuth): workers must send
// "Authorization: Bearer <token>". The campaign/scenario API stays open —
// it is the /work surface that accepts result bytes into the store.
func newServer(eng *campaign.Engine, queue *campaign.WorkQueue, pprofOn bool, workToken string) http.Handler {
	mux := http.NewServeMux()
	scenarios := newScenarioStore()
	if queue != nil {
		mux.Handle("/work/", http.StripPrefix("/work",
			campaign.WithBearerAuth(workToken, campaign.WorkHandler(queue, eng.Store()))))
		h, _ := eng.Store().(campaign.Healther)
		mux.Handle("GET /readyz", campaign.ReadyHandler(queue, h))
	}
	mux.Handle("GET /metrics", telemetry.Handler(telemetry.Default))
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}
	writeErr := func(w http.ResponseWriter, code int, format string, args ...any) {
		writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
	}
	getCampaign := func(w http.ResponseWriter, r *http.Request) (*campaign.Campaign, bool) {
		id := r.PathValue("id")
		c, ok := eng.Get(id)
		if !ok {
			writeErr(w, http.StatusNotFound, "unknown campaign %q", id)
			return nil, false
		}
		return c, true
	}

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /api/benchmarks", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, workloads.Names())
	})
	mux.HandleFunc("GET /api/platforms", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, hw.PlatformNames())
	})

	mux.HandleFunc("POST /campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec campaign.Spec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, "bad campaign spec: %v", err)
			return
		}
		c, err := eng.Submit(spec)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		w.Header().Set("Location", "/campaigns/"+c.ID)
		writeJSON(w, http.StatusAccepted, c.Status())
	})

	mux.HandleFunc("GET /campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, eng.List())
	})

	mux.HandleFunc("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		if c, ok := getCampaign(w, r); ok {
			writeJSON(w, http.StatusOK, c.Status())
		}
	})

	mux.HandleFunc("GET /campaigns/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		c, ok := getCampaign(w, r)
		if !ok {
			return
		}
		rs := c.Results()
		if rs == nil {
			writeJSON(w, http.StatusAccepted, c.Status())
			return
		}
		writeJSON(w, http.StatusOK, rs)
	})

	mux.HandleFunc("DELETE /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		c, ok := getCampaign(w, r)
		if !ok {
			return
		}
		eng.Cancel(c.ID)
		writeJSON(w, http.StatusOK, c.Status())
	})

	mux.HandleFunc("POST /scenarios", func(w http.ResponseWriter, r *http.Request) {
		var m scenario.Matrix
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&m); err != nil {
			writeErr(w, http.StatusBadRequest, "bad scenario matrix: %v", err)
			return
		}
		run, err := scenarios.submit(eng, m)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		w.Header().Set("Location", "/scenarios/"+run.ID)
		writeJSON(w, http.StatusAccepted, run)
	})

	mux.HandleFunc("GET /scenarios", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, scenarios.list())
	})

	getScenario := func(w http.ResponseWriter, r *http.Request) (*scenarioRun, bool) {
		run, ok := scenarios.get(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, "unknown scenario %q", r.PathValue("id"))
		}
		return run, ok
	}

	mux.HandleFunc("GET /scenarios/{id}", func(w http.ResponseWriter, r *http.Request) {
		run, ok := getScenario(w, r)
		if !ok {
			return
		}
		statuses := make([]campaign.Status, 0, len(run.Campaigns))
		for _, id := range run.Campaigns {
			if c, ok := eng.Get(id); ok {
				statuses = append(statuses, c.Status())
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"scenario": run, "batches": statuses})
	})

	mux.HandleFunc("GET /scenarios/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		run, ok := getScenario(w, r)
		if !ok {
			return
		}
		rep, pending, failed, batches := scenarios.report(eng, run)
		if failed > 0 {
			// Per-batch statuses ride along so the client sees which
			// batches sank the report, and how far the others got.
			writeJSON(w, http.StatusConflict, map[string]any{
				"error": fmt.Sprintf("%d of %d batches failed or were cancelled; report unavailable",
					failed, len(run.Campaigns)),
				"failed_batches":  failed,
				"pending_batches": pending,
				"batches":         batches,
			})
			return
		}
		if pending > 0 {
			// Partial-fleet progress: done/total cells, cache hits and
			// errors per batch, not just a count of unfinished batches.
			writeJSON(w, http.StatusAccepted, map[string]any{
				"pending_batches": pending,
				"batches":         batches,
			})
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})

	mux.HandleFunc("GET /campaigns/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		c, ok := getCampaign(w, r)
		if !ok {
			return
		}
		flusher, canFlush := w.(http.Flusher)
		if !canFlush {
			writeErr(w, http.StatusInternalServerError, "streaming unsupported")
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
		w.WriteHeader(http.StatusOK)
		flusher.Flush()

		events, unsub := c.Subscribe()
		defer unsub()
		for {
			select {
			case <-r.Context().Done():
				return
			case ev, ok := <-events:
				if !ok {
					return
				}
				data, err := json.Marshal(ev)
				if err != nil {
					continue
				}
				fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
				flusher.Flush()
			}
		}
	})

	mux.HandleFunc("GET /scenarios/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		run, ok := getScenario(w, r)
		if !ok {
			return
		}
		flusher, canFlush := w.(http.Flusher)
		if !canFlush {
			writeErr(w, http.StatusInternalServerError, "streaming unsupported")
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
		w.WriteHeader(http.StatusOK)
		flusher.Flush()

		// Fan the per-batch campaign streams into one channel. Each batch
		// event is wrapped with its campaign ID so a dashboard can lay out
		// batches side by side; the merged stream ends when every batch has
		// published its terminal state event (all source channels closed).
		type batchEvent struct {
			Batch string `json:"batch"`
			campaign.Event
		}
		merged := make(chan batchEvent, 64)
		var wg sync.WaitGroup
		var unsubs []func()
		for _, id := range run.Campaigns {
			c, ok := eng.Get(id)
			if !ok {
				continue
			}
			events, unsub := c.Subscribe()
			unsubs = append(unsubs, unsub)
			wg.Add(1)
			go func(id string, events <-chan campaign.Event) {
				defer wg.Done()
				for ev := range events {
					select {
					case merged <- batchEvent{Batch: id, Event: ev}:
					case <-r.Context().Done():
						return
					}
				}
			}(id, events)
		}
		go func() { wg.Wait(); close(merged) }()
		defer func() {
			for _, unsub := range unsubs {
				unsub()
			}
		}()

		for {
			select {
			case <-r.Context().Done():
				return
			case ev, ok := <-merged:
				if !ok {
					return
				}
				data, err := json.Marshal(ev)
				if err != nil {
					continue
				}
				fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
				flusher.Flush()
			}
		}
	})

	return mux
}

// Command astro-serve turns the simulator into a service: an HTTP JSON API
// over the campaign engine. Clients POST declarative campaign specs
// (benchmark x platform x scheduler x config x seed grids), watch progress
// over Server-Sent Events, and fetch aggregated result sets. All campaigns
// share one worker pool and one content-addressed result store, so
// resubmitting a spec — or any spec overlapping previously simulated grid
// points — is served from cache.
//
// Usage:
//
//	astro-serve [-addr :8080] [-j N] [-cache dir]
//
// Quick tour (see README.md for a full example):
//
//	curl -s localhost:8080/campaigns -d '{"benchmarks":["parsec"],"configs":["all"]}'
//	curl -s localhost:8080/campaigns/c000001            # status
//	curl -N localhost:8080/campaigns/c000001/events     # SSE progress
//	curl -s localhost:8080/campaigns/c000001/results    # aggregated results
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"

	"astro/internal/campaign"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	jobs := flag.Int("j", runtime.NumCPU(), "campaign pool workers")
	cacheDir := flag.String("cache", "", "on-disk result cache directory (default: in-memory only)")
	flag.Parse()

	store, err := campaign.NewStore(*cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "astro-serve:", err)
		os.Exit(1)
	}
	eng := campaign.NewEngine(*jobs, store)
	fmt.Fprintf(os.Stderr, "astro-serve: listening on %s (%d workers, cache %s)\n",
		*addr, *jobs, cacheOrMem(*cacheDir))
	if err := http.ListenAndServe(*addr, newServer(eng)); err != nil {
		fmt.Fprintln(os.Stderr, "astro-serve:", err)
		os.Exit(1)
	}
}

func cacheOrMem(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}

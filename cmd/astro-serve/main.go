// Command astro-serve turns the simulator into a service: an HTTP JSON API
// over the campaign engine. Clients POST declarative campaign specs
// (benchmark x platform x scheduler x config x seed grids), watch progress
// over Server-Sent Events, and fetch aggregated result sets. All campaigns
// share one worker pool and one content-addressed result store, so
// resubmitting a spec — or any spec overlapping previously simulated grid
// points — is served from cache.
//
// With -remote, astro-serve is also the coordinator of a distributed
// campaign fleet: instead of simulating in-process it publishes campaign
// cells on the /work lease endpoints, and any number of `astro worker`
// processes — on this machine or others — pull cells, simulate, and push
// canonical results back. Leases expire and re-issue, so killing a worker
// loses nothing; results are byte-identical to local execution (a pinned
// test diffs the fingerprints).
//
// Usage:
//
//	astro-serve [-addr :8080] [-j N] [-cache dir] [-shards N] [-store-max-bytes N] [-hot-cache-bytes N] [-remote] [-lease-ttl d] [-token t] [-journal dir]
//
// Quick tour (see README.md for a full example):
//
//	curl -s localhost:8080/campaigns -d '{"benchmarks":["parsec"],"configs":["all"]}'
//	curl -s localhost:8080/campaigns/c000001            # status
//	curl -N localhost:8080/campaigns/c000001/events     # SSE progress
//	curl -s localhost:8080/campaigns/c000001/results    # aggregated results
//	curl -s localhost:8080/work/status                  # worker fleet status
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"astro/internal/campaign"
	"astro/internal/journal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	jobs := flag.Int("j", runtime.NumCPU(), "campaign pool workers (local execution and -remote fallback)")
	cacheDir := flag.String("cache", "", "on-disk result cache directory (default: in-memory only)")
	shards := flag.Int("shards", 0, "shard the result store by key prefix (0 = single directory; use with concurrent workers)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "cap the on-disk result store; LRU-evicts unpinned entries past the cap (0 = unbounded; requires -cache)")
	hotCacheBytes := flag.Int64("hot-cache-bytes", 0, "cap the in-memory hot result cache (0 with -store-max-bytes = same as the disk cap)")
	remote := flag.Bool("remote", false, "execute campaigns on pull-based workers (`astro worker`) instead of in-process")
	shipPrograms := flag.Bool("ship-programs", true, "attach compiled simulation programs to leased cells so warm workers skip recompilation (results are byte-identical either way)")
	leaseTTL := flag.Duration("lease-ttl", campaign.DefaultLeaseTTL, "how long a worker holds a cell before it re-leases")
	token := flag.String("token", "", "bearer token required on all /work endpoints (empty = open, trusted-network)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof profiling endpoints under /debug/pprof/")
	journalDir := flag.String("journal", "", "flight-recorder directory: journal every queue lifecycle event as segment-rotated JSONL (empty = off)")
	flag.Parse()

	storeCfg := campaign.StoreConfig{MaxBytes: *storeMaxBytes, HotBytes: *hotCacheBytes}
	var store campaign.ResultStore
	var err error
	stopCompact := func() {}
	if *shards > 0 {
		var ss *campaign.ShardedStore
		ss, err = campaign.NewShardedStoreWith(*cacheDir, *shards, storeCfg)
		if err == nil {
			store = ss
			// Background compaction keeps each shard's keys.idx honest
			// about evictions without ever blocking writers.
			stopCompact = ss.StartCompactor(0)
		}
	} else {
		store, err = campaign.NewStoreWith(*cacheDir, storeCfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "astro-serve:", err)
		os.Exit(1)
	}

	queue := campaign.NewWorkQueue(*leaseTTL)
	queue.Store = store // keep late results of cancelled campaigns
	closeJournal := func() {}
	if *journalDir != "" {
		jw, err := journal.Open(*journalDir, journal.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "astro-serve:", err)
			os.Exit(1)
		}
		queue.Events = jw
		closeJournal = func() { jw.Close() }
	}
	var runner campaign.Runner = &campaign.Pool{Workers: *jobs, Store: store}
	mode := "local pool"
	if *remote {
		// The local pool stays as the fallback for non-wireable jobs.
		runner = &campaign.RemoteRunner{
			Queue:        queue,
			Store:        store,
			Local:        campaign.Pool{Workers: *jobs, Store: store},
			ShipPrograms: *shipPrograms,
		}
		mode = "remote workers"
	}
	eng := campaign.NewEngineWith(runner, store)

	// Background sweep so expired leases requeue promptly even while no
	// worker is polling; stopped on shutdown with the server.
	stopSweep := queue.StartSweeper(0)

	srv := &http.Server{Addr: *addr, Handler: newServer(eng, queue, *pprofOn, *token)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "astro-serve: listening on %s (%s, %d pool workers, cache %s)\n",
		*addr, mode, *jobs, cacheOrMem(*cacheDir))
	select {
	case err := <-errc:
		stopSweep()
		stopCompact()
		closeJournal()
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "astro-serve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		// Graceful shutdown: stop the sweeper, let in-flight requests
		// (SSE streams aside) finish, then exit.
		fmt.Fprintln(os.Stderr, "astro-serve: shutting down")
		stopSweep()
		stopCompact()
		shCtx, done := context.WithTimeout(context.Background(), 5*time.Second)
		defer done()
		srv.Shutdown(shCtx)
		closeJournal()
	}
}

func cacheOrMem(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}

package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"astro/internal/campaign"
)

// TestServeMetricsEndpoint pins the /metrics surface: Prometheus text
// content type and the registry's sim counters present once a campaign has
// simulated something (the registry is process-wide, so the counters only
// ever grow — the assertion is presence, not value).
func TestServeMetricsEndpoint(t *testing.T) {
	srv := newTestServer(t)

	body := `{"benchmarks":["spin"],"seeds":[3]}`
	resp, err := http.Post(srv.URL+"/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st campaign.Status
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	waitDone(t, srv.URL, &st)

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %s", mresp.Status)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	text, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE astro_sim_runs_total counter",
		"astro_sim_instructions_total",
		"astro_pool_cells_total{result=\"executed\"}",
		"# TYPE astro_store_get_seconds histogram",
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("/metrics missing %q; got:\n%s", want, text)
		}
	}
}

// TestServeScenarioEvents pins the merged scenario SSE stream: the per-batch
// campaign streams fan into one connection, every event is tagged with its
// batch campaign ID, and the stream ends after every batch has published its
// terminal state event.
func TestServeScenarioEvents(t *testing.T) {
	srv := newTestServer(t)

	body := `{
		"name": "sse-scn",
		"program_count": 2,
		"program_seed": 901,
		"schedulers": ["default"],
		"seeds": [1, 2],
		"batch": 1
	}`
	resp, err := http.Post(srv.URL+"/scenarios", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var run scenarioRun
	if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || len(run.Campaigns) != 2 {
		t.Fatalf("POST /scenarios: code %d, %+v", resp.StatusCode, run)
	}

	// Subscribing replays each batch's full event log, so the stream is
	// complete even when the tiny batches finish before the GET lands.
	sse, err := http.Get(srv.URL + "/scenarios/" + run.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sse.Body.Close()
	if ct := sse.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	type batchEvent struct {
		Batch string `json:"batch"`
		campaign.Event
	}
	progressByBatch := map[string]int{}
	terminalByBatch := map[string]int{}
	scanner := bufio.NewScanner(sse.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev batchEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		if ev.Batch == "" {
			t.Fatalf("event missing batch tag: %q", line)
		}
		switch ev.Type {
		case "progress":
			progressByBatch[ev.Batch]++
		case "state":
			terminalByBatch[ev.Batch]++
			if ev.State != campaign.StateDone {
				t.Fatalf("batch %s ended %s (%s)", ev.Batch, ev.State, ev.Error)
			}
		}
	}
	// 2 batches x (1 program x 1 platform x 1 scheduler x 2 seeds) cells.
	for _, id := range run.Campaigns {
		if progressByBatch[id] != 2 || terminalByBatch[id] != 1 {
			t.Fatalf("batch %s: %d progress / %d state events (all: %v / %v)",
				id, progressByBatch[id], terminalByBatch[id], progressByBatch, terminalByBatch)
		}
	}
}

// waitDone polls a campaign's status until it leaves StateRunning.
func waitDone(t *testing.T, base string, st *campaign.Status) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		if getJSON(t, base+"/campaigns/"+st.ID, st); st.State != campaign.StateRunning {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s never finished: %+v", st.ID, st)
}

package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"astro/internal/campaign"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(newServer(campaign.NewEngine(4, nil), campaign.NewWorkQueue(0), false, ""))
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestServeCampaignLifecycle(t *testing.T) {
	srv := newTestServer(t)

	// Discovery endpoints.
	var names []string
	if code := getJSON(t, srv.URL+"/api/benchmarks", &names); code != 200 || len(names) == 0 {
		t.Fatalf("benchmarks: code %d, %d names", code, len(names))
	}
	if code := getJSON(t, srv.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz: %d", code)
	}

	// Submit a small campaign.
	body := `{"name":"http","benchmarks":["spin"],"schedulers":["default","gts"],"seeds":[1,2]}`
	resp, err := http.Post(srv.URL+"/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st campaign.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" || st.Total != 4 {
		t.Fatalf("submit: code %d, status %+v", resp.StatusCode, st)
	}

	// Stream progress to completion over SSE.
	sse, err := http.Get(srv.URL + "/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sse.Body.Close()
	if ct := sse.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var progress, terminal int
	scanner := bufio.NewScanner(sse.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev campaign.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		switch ev.Type {
		case "progress":
			progress++
		case "state":
			terminal++
			if ev.State != campaign.StateDone {
				t.Fatalf("terminal state %s (%s)", ev.State, ev.Error)
			}
		}
	}
	if progress != 4 || terminal != 1 {
		t.Fatalf("SSE delivered %d progress / %d state events", progress, terminal)
	}

	// Status and results after completion. The status carries the
	// cold-vs-cached split and the aggregate simulated-work throughput.
	if code := getJSON(t, srv.URL+"/campaigns/"+st.ID, &st); code != 200 || st.State != campaign.StateDone {
		t.Fatalf("status: code %d, %+v", code, st)
	}
	if st.ColdJobs != st.Total || st.CacheHits != 0 {
		t.Fatalf("first run of a fresh engine must be all cold: %+v", st)
	}
	// Cycle counters accumulate per checkpoint, so ultra-short runs may
	// legitimately report zero cycles; instructions are always present.
	if st.SimInstr == 0 {
		t.Fatalf("simulated-work metrics missing from status: %+v", st)
	}
	if st.SimCycles > 0 && st.SimCyclesPerSec <= 0 {
		t.Fatalf("cycles present but rate missing: %+v", st)
	}
	var rs campaign.ResultSet
	if code := getJSON(t, srv.URL+"/campaigns/"+st.ID+"/results", &rs); code != 200 {
		t.Fatalf("results code %d", code)
	}
	if rs.Total != 4 || rs.Errors != 0 || len(rs.Cells) != 2 || rs.Fingerprint == "" {
		t.Fatalf("results wrong: %+v", rs)
	}

	// The campaign list includes it.
	var list []campaign.Status
	if code := getJSON(t, srv.URL+"/campaigns", &list); code != 200 || len(list) != 1 {
		t.Fatalf("list: code %d, %+v", code, list)
	}
}

func TestServeRejectsBadSpecs(t *testing.T) {
	srv := newTestServer(t)
	cases := []struct {
		body string
		code int
	}{
		{`{not json`, http.StatusBadRequest},
		{`{"benchmarks":["nope"]}`, http.StatusUnprocessableEntity},
		{`{"benchmarks":["spin"],"bogus_field":1}`, http.StatusBadRequest},
		{`{}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp, err := http.Post(srv.URL+"/campaigns", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("body %q: code %d, want %d", tc.body, resp.StatusCode, tc.code)
		}
	}
	if code := getJSON(t, srv.URL+"/campaigns/c424242", nil); code != http.StatusNotFound {
		t.Fatalf("unknown campaign: code %d", code)
	}
}

func TestServeCancel(t *testing.T) {
	srv := newTestServer(t)
	body := `{"benchmarks":["matrixmul"],"seeds":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]}`
	resp, err := http.Post(srv.URL+"/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st campaign.Status
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/campaigns/"+st.ID, nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		getJSON(t, srv.URL+"/campaigns/"+st.ID, &st)
		if st.State != campaign.StateRunning {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State == campaign.StateRunning {
		t.Fatalf("campaign still running after cancel: %+v", st)
	}
}

// TestServeReadyz probes the readiness endpoint across the states an
// orchestrator's probe would see: not ready while the sweeper has never
// started, ready once it runs, with /healthz up throughout.
func TestServeReadyz(t *testing.T) {
	queue := campaign.NewWorkQueue(time.Minute)
	srv := httptest.NewServer(newServer(campaign.NewEngine(2, nil), queue, false, ""))
	t.Cleanup(srv.Close)

	if code := getJSON(t, srv.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	var st campaign.ReadyStatus
	if code := getJSON(t, srv.URL+"/readyz", &st); code != http.StatusServiceUnavailable || st.Ready {
		t.Fatalf("pre-sweeper readyz: code %d, %+v", code, st)
	}
	found := false
	for _, c := range st.Checks {
		if c.Name == "sweeper" && !c.OK {
			found = true
		}
	}
	if !found {
		t.Fatalf("readyz body does not name the failing sweeper check: %+v", st)
	}

	stop := queue.StartSweeper(0)
	defer stop()
	if code := getJSON(t, srv.URL+"/readyz", &st); code != 200 || !st.Ready {
		t.Fatalf("post-sweeper readyz: code %d, %+v", code, st)
	}
}

// TestServeRemoteCampaign runs a campaign through a -remote engine: the
// server's /work endpoints hand cells to a pull-based worker, and the
// campaign completes with results identical in shape to local execution.
func TestServeRemoteCampaign(t *testing.T) {
	store := campaign.NewMemStore()
	queue := campaign.NewWorkQueue(time.Minute)
	runner := &campaign.RemoteRunner{
		Queue: queue,
		Store: store,
		Local: campaign.Pool{Workers: 2, Store: store},
	}
	eng := campaign.NewEngineWith(runner, store)
	srv := httptest.NewServer(newServer(eng, queue, false, ""))
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &campaign.Worker{
		Coordinator: srv.URL + "/work",
		ID:          "serve-test-worker",
		Max:         2,
		Poll:        5 * time.Millisecond,
	}
	go w.Run(ctx)

	body := `{"name":"remote","benchmarks":["spin"],"schedulers":["default","gts"],"seeds":[1,2]}`
	resp, err := http.Post(srv.URL+"/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st campaign.Status
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()

	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		getJSON(t, srv.URL+"/campaigns/"+st.ID, &st)
		if st.State != campaign.StateRunning {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != campaign.StateDone || st.Done != 4 {
		t.Fatalf("remote campaign: %+v", st)
	}

	// The fleet status reflects the worker that did the cells.
	var qs campaign.QueueStats
	if code := getJSON(t, srv.URL+"/work/status", &qs); code != 200 {
		t.Fatalf("work status: %d", code)
	}
	if qs.Done != 4 || len(qs.Workers) != 1 || qs.Workers[0].Completed != 4 {
		t.Fatalf("queue stats: %+v", qs)
	}
}

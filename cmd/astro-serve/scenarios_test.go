package main

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"astro/internal/scenario"
)

func TestServeScenarioLifecycle(t *testing.T) {
	srv := newTestServer(t)

	// Submit a small 2-batch matrix: 2 programs x (1 board + 1 zoo machine)
	// x 2 schedulers x 2 seeds = 16 cells.
	body := `{
		"name": "http-scn",
		"program_count": 2,
		"program_seed": 900,
		"platforms": ["odroid-xu4"],
		"zoo": {"topologies": ["1L2B"], "ladder": [{"little_mhz": 1000, "big_mhz": 1600}]},
		"schedulers": ["default", "gts"],
		"seeds": [1, 2],
		"batch": 1
	}`
	resp, err := http.Post(srv.URL+"/scenarios", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var run scenarioRun
	if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /scenarios: %d", resp.StatusCode)
	}
	if len(run.Campaigns) != 2 || len(run.Programs) != 2 || len(run.Platforms) != 2 {
		t.Fatalf("unexpected grouping: %+v", run)
	}
	if run.Cells != 16 {
		t.Errorf("cells = %d, want 16", run.Cells)
	}

	// The report becomes available once both batches finish.
	var rep scenario.Report
	deadline := time.Now().Add(time.Minute)
	for {
		code := getJSON(t, srv.URL+"/scenarios/"+run.ID+"/report", &rep)
		if code == http.StatusOK {
			break
		}
		if code != http.StatusAccepted {
			t.Fatalf("report: %d", code)
		}
		if time.Now().After(deadline) {
			t.Fatal("scenario batches did not finish")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rep.Cells != 8 { // 2 programs x 2 platforms x 2 schedulers
		t.Errorf("report cells = %d, want 8", rep.Cells)
	}
	if len(rep.Schedulers) != 2 {
		t.Errorf("report schedulers: %+v", rep.Schedulers)
	}

	// Listing and status endpoints know the scenario.
	var runs []scenarioRun
	if code := getJSON(t, srv.URL+"/scenarios", &runs); code != 200 || len(runs) != 1 {
		t.Fatalf("GET /scenarios: code %d, %d runs", code, len(runs))
	}
	var detail struct {
		Batches []json.RawMessage `json:"batches"`
	}
	if code := getJSON(t, srv.URL+"/scenarios/"+run.ID, &detail); code != 200 || len(detail.Batches) != 2 {
		t.Fatalf("GET /scenarios/{id}: code %d, %d batches", code, len(detail.Batches))
	}
	if code := getJSON(t, srv.URL+"/scenarios/zzz", nil); code != http.StatusNotFound {
		t.Errorf("unknown scenario: %d", code)
	}

	// Generated programs are now registered and visible to discovery.
	var names []string
	getJSON(t, srv.URL+"/api/benchmarks", &names)
	found := false
	for _, n := range names {
		if n == run.Programs[0] {
			found = true
		}
	}
	if !found {
		t.Errorf("generated program %q not in /api/benchmarks", run.Programs[0])
	}

	// A scenario with a cancelled batch withholds its report (409) rather
	// than ranking schedulers over a partial contest.
	resp, err = http.Post(srv.URL+"/scenarios", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var run2 scenarioRun
	if err := json.NewDecoder(resp.Body).Decode(&run2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/campaigns/"+run2.Campaigns[0], nil)
	if cresp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		cresp.Body.Close()
	}
	deadline = time.Now().Add(time.Minute)
	for {
		code := getJSON(t, srv.URL+"/scenarios/"+run2.ID+"/report", nil)
		if code == http.StatusConflict {
			break
		}
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("report after cancel: %d", code)
		}
		// The cancel can race the tiny batch finishing cleanly; either the
		// conflict surfaces or everything completed before the DELETE landed.
		if code == http.StatusOK {
			t.Log("batch finished before the cancel landed; skipping 409 assertion")
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("report never settled after cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Bad matrices are rejected with 4xx.
	for _, bad := range []string{
		`{"program_count": 1, "schedulers": ["warp"]}`,
		`{"program_count": 1, "platforms": ["zoo:nope"]}`,
		`{"nonsense": true}`,
		`{`,
	} {
		resp, err := http.Post(srv.URL+"/scenarios", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("bad matrix %s: code %d", bad, resp.StatusCode)
		}
	}
}

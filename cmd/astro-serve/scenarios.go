package main

import (
	"fmt"
	"sort"
	"sync"

	"astro/internal/campaign"
	"astro/internal/scenario"
)

// scenarioRun tracks one submitted scenario matrix and the campaign batches
// it compiled into. The engine owns campaign lifecycles; this layer only
// groups them so clients can fetch a cross-batch scheduler report.
type scenarioRun struct {
	ID        string          `json:"id"`
	Name      string          `json:"name,omitempty"`
	Cells     int             `json:"cells"`
	Programs  []string        `json:"programs"`
	Platforms []string        `json:"platforms"`
	Campaigns []string        `json:"campaigns"`
	Matrix    scenario.Matrix `json:"matrix"`
}

// scenarioStore is the server's scenario registry.
type scenarioStore struct {
	mu   sync.Mutex
	seq  int
	runs map[string]*scenarioRun
}

func newScenarioStore() *scenarioStore {
	return &scenarioStore{runs: map[string]*scenarioRun{}}
}

// submit materializes the matrix, submits every batch to the engine and
// registers the grouping. Programs register into the workloads registry as
// a side effect of Materialize and stay registered for the server's
// lifetime (later matrices naming the same programs reuse them, and the
// shared store serves overlapping cells from cache).
func (ss *scenarioStore) submit(eng *campaign.Engine, m scenario.Matrix) (*scenarioRun, error) {
	specs, err := m.Campaigns() // materializes (registers programs) once
	if err != nil {
		return nil, err
	}
	run := &scenarioRun{
		Name:   m.Name,
		Matrix: m,
	}
	// The batches partition the program axis and share the platform axis,
	// so the grouping derives from the specs without re-materializing.
	for _, sp := range specs {
		run.Programs = append(run.Programs, sp.Benchmarks...)
	}
	run.Cells = m.Cells()
	run.Platforms = append(run.Platforms, specs[0].Platforms...)
	for _, sp := range specs {
		c, err := eng.Submit(sp)
		if err != nil {
			// Batches already submitted keep running; they are ordinary
			// campaigns the client can observe and cancel individually.
			return nil, fmt.Errorf("batch %q: %w", sp.Name, err)
		}
		run.Campaigns = append(run.Campaigns, c.ID)
	}
	ss.mu.Lock()
	ss.seq++
	run.ID = fmt.Sprintf("s%06d", ss.seq)
	ss.runs[run.ID] = run
	ss.mu.Unlock()
	return run, nil
}

func (ss *scenarioStore) get(id string) (*scenarioRun, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	r, ok := ss.runs[id]
	return r, ok
}

// list returns every scenario, newest first.
func (ss *scenarioStore) list() []*scenarioRun {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	out := make([]*scenarioRun, 0, len(ss.runs))
	for _, r := range ss.runs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	return out
}

// report builds the cross-batch scheduler report once every campaign of
// the scenario has finished cleanly. pending counts batches still running;
// failed counts batches that were cancelled, failed, or vanished — a
// report over a partial contest would rank schedulers authoritatively on
// incomplete data, so it is withheld. The returned batch statuses travel
// with either verdict, so a partial fleet shows *where* it is (done/total
// cells per batch, cache hits, errors) instead of an opaque 202/409.
func (ss *scenarioStore) report(eng *campaign.Engine, r *scenarioRun) (rep *scenario.Report, pending, failed int, batches []campaign.Status) {
	var sets []*campaign.ResultSet
	for _, id := range r.Campaigns {
		c, ok := eng.Get(id)
		if !ok {
			failed++
			// A placeholder keeps the batches list aligned with the failed
			// count, so the client can see *which* batch sank the report
			// even when the engine no longer knows the campaign.
			batches = append(batches, campaign.Status{
				ID: id, State: campaign.StateFailed, Error: "campaign no longer known to the engine",
			})
			continue
		}
		st := c.Status()
		batches = append(batches, st)
		switch st.State {
		case campaign.StateRunning:
			pending++
		case campaign.StateDone:
			sets = append(sets, c.Results())
		default: // failed or cancelled
			failed++
		}
	}
	if pending > 0 || failed > 0 {
		return nil, pending, failed, batches
	}
	return scenario.BuildReport(r.Name, sets...), 0, 0, batches
}

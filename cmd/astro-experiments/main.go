// Command astro-experiments regenerates every table and figure of the
// paper's evaluation. With -scale paper it reproduces the EXPERIMENTS.md
// numbers; -scale small is a fast smoke run.
//
// Usage:
//
//	astro-experiments [-scale small|paper] [-fig 1|3|4|6|9|10|11|table1|headline|all]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"astro/internal/experiments"
)

func main() {
	scaleStr := flag.String("scale", "small", "experiment scale: small or paper")
	fig := flag.String("fig", "all", "which artifact: 1,3,4,6,9,10,11,table1,headline,all")
	flag.Parse()

	sc := experiments.Small
	if *scaleStr == "paper" {
		sc = experiments.Paper
	} else if *scaleStr != "small" {
		fmt.Fprintln(os.Stderr, "astro-experiments: -scale must be small or paper")
		os.Exit(2)
	}

	if err := run(sc, *fig); err != nil {
		fmt.Fprintln(os.Stderr, "astro-experiments:", err)
		os.Exit(1)
	}
}

func run(sc experiments.Scale, fig string) error {
	var f9 *experiments.Fig9Result
	var f10 *experiments.Fig10Result
	var f11 *experiments.Fig11Result

	section := func(name string, f func() (string, error)) error {
		if fig != "all" && fig != name {
			return nil
		}
		start := time.Now()
		out, err := f()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println(out)
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if err := section("1", func() (string, error) {
		r, err := experiments.Fig1(sc)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}); err != nil {
		return err
	}
	if err := section("3", func() (string, error) {
		r, err := experiments.Fig3(sc)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}); err != nil {
		return err
	}
	if err := section("4", func() (string, error) {
		r, err := experiments.Fig4(sc)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}); err != nil {
		return err
	}
	if err := section("6", func() (string, error) {
		r, err := experiments.Fig6()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}); err != nil {
		return err
	}
	if err := section("9", func() (string, error) {
		r, err := experiments.Fig9(sc)
		if err != nil {
			return "", err
		}
		f9 = r
		return r.Render(), nil
	}); err != nil {
		return err
	}
	if err := section("10", func() (string, error) {
		r, err := experiments.Fig10(sc)
		if err != nil {
			return "", err
		}
		f10 = r
		return r.Render(), nil
	}); err != nil {
		return err
	}
	if err := section("11", func() (string, error) {
		r, err := experiments.Fig11()
		if err != nil {
			return "", err
		}
		f11 = r
		return r.Render(), nil
	}); err != nil {
		return err
	}
	if err := section("table1", func() (string, error) {
		return experiments.RenderTable1(), nil
	}); err != nil {
		return err
	}
	if err := section("headline", func() (string, error) {
		if f9 == nil && f10 == nil && f11 == nil {
			return "(headline needs figures 9/10/11 in the same invocation)", nil
		}
		return experiments.MakeHeadline(f9, f10, f11).Render(), nil
	}); err != nil {
		return err
	}
	return nil
}

// Command astro-experiments regenerates every table and figure of the
// paper's evaluation. With -scale paper it reproduces the EXPERIMENTS.md
// numbers; -scale small is a fast smoke run. Simulation sweeps execute on
// the campaign engine: -j widens the worker pool, -cache points at an
// on-disk result store so a re-run skips every simulation it has already
// performed, and -timeout stops scheduling new simulations once it
// expires (in-flight simulations and training finish).
//
// Usage:
//
//	astro-experiments [-scale small|paper] [-fig 1|3|4|6|9|10|11|table1|headline|all]
//	                  [-j N] [-cache dir] [-store-max-bytes N] [-hot-cache-bytes N]
//	                  [-coordinator URL] [-remote addr] [-lease-ttl d] [-timeout d]
//
// -coordinator fronts the store with a trained-agent snapshot exchange
// against a running astro-serve: fig10-style training cells finished on
// any machine pointing at the same coordinator are cache hits here, with
// inference-exact snapshots (results stay byte-identical).
//
// -remote turns this process into the coordinator of a worker fleet: it
// serves the /work lease endpoints on addr and every campaign cell —
// simulation jobs, hybrid-by-agent-key jobs, and fig10's training cells —
// leases out to `astro worker` processes instead of simulating in-process
// (the -j pool remains only as the fallback for non-wireable jobs). Point
// any number of workers at it:
//
//	astro-experiments -fig 10 -remote :8090 -cache /tmp/coord &
//	astro worker -coordinator http://localhost:8090 -id w1 &
//	astro worker -coordinator http://localhost:8090 -id w2
//
// Results are byte-identical to in-process execution, and a warm -cache
// re-run leases nothing at all. -lease-ttl sizes the worker leases; it may
// be shorter than the slowest cell, because workers renew their leases
// in-protocol while executing.
//
// Every requested figure runs even if an earlier one fails; the exit
// status is non-zero when any of them failed.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strings"
	"time"

	"astro/internal/campaign"
	"astro/internal/experiments"
	"astro/internal/journal"
	"astro/internal/telemetry"
)

func main() {
	scaleStr := flag.String("scale", "small", "experiment scale: small or paper")
	fig := flag.String("fig", "all", "which artifact: 1,3,4,6,9,10,11,table1,headline,all")
	jobs := flag.Int("j", runtime.NumCPU(), "campaign pool workers for simulation sweeps")
	cacheDir := flag.String("cache", "", "on-disk result cache directory (default: in-memory only)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "cap the on-disk result store; LRU-evicts unpinned entries past the cap (0 = unbounded; requires -cache)")
	hotCacheBytes := flag.Int64("hot-cache-bytes", 0, "cap the in-memory hot result cache (0 with -store-max-bytes = same as the disk cap)")
	coordinator := flag.String("coordinator", "", "astro-serve URL: exchange trained-agent snapshots with its store, so fig10-style training done on any machine warms this one (and vice versa)")
	remoteAddr := flag.String("remote", "", "listen address: become the coordinator of an `astro worker` fleet and lease every cell (simulations and training) to it")
	leaseTTL := flag.Duration("lease-ttl", campaign.DefaultLeaseTTL, "with -remote: how long a worker holds a cell between renewals")
	token := flag.String("token", "", "with -remote: bearer token required on the /work endpoints (empty = open)")
	timeout := flag.Duration("timeout", 0, "stop scheduling simulations after this duration; in-flight work finishes (0 = none)")
	pprofOn := flag.Bool("pprof", false, "with -remote: mount net/http/pprof endpoints under /debug/pprof/ on the coordinator")
	journalDir := flag.String("journal", "", "with -remote: flight-recorder directory, journaling every queue lifecycle event (empty = off)")
	flag.Parse()

	sc := experiments.Small
	if *scaleStr == "paper" {
		sc = experiments.Paper
	} else if *scaleStr != "small" {
		fmt.Fprintln(os.Stderr, "astro-experiments: -scale must be small or paper")
		os.Exit(2)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	store, err := campaign.NewStoreWith(*cacheDir, campaign.StoreConfig{MaxBytes: *storeMaxBytes, HotBytes: *hotCacheBytes})
	if err != nil {
		fmt.Fprintln(os.Stderr, "astro-experiments:", err)
		os.Exit(1)
	}
	var exec campaign.ResultStore = store
	if *coordinator != "" {
		exec = campaign.NewAgentExchange(strings.TrimRight(*coordinator, "/")+"/work", store)
	}
	cfg := experiments.ExecConfig{Workers: *jobs, Store: exec, Ctx: ctx}
	if *remoteAddr != "" {
		runner, stop, err := startCoordinator(*remoteAddr, *leaseTTL, *jobs, exec, *pprofOn, *token, *journalDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "astro-experiments:", err)
			os.Exit(1)
		}
		defer stop()
		cfg.Runner = runner
	}
	experiments.Configure(cfg)

	if n := run(sc, *fig); n > 0 {
		fmt.Fprintf(os.Stderr, "astro-experiments: %d artifact(s) failed\n", n)
		os.Exit(1)
	}
}

// startCoordinator mounts the worker protocol on addr and returns the
// RemoteRunner that leases this process's cells to the fleet. The local
// pool stays as the fallback for non-wireable jobs; with the whole paper
// suite declarative it sits idle, so a cold fig10 performs zero
// coordinator-local simulations or trainings.
//
// Beside the /work endpoints the coordinator serves GET /metrics
// (Prometheus text over the process-wide telemetry registry), GET
// /healthz (liveness) and GET /readyz (readiness: store writable,
// sweeper live, fleet fresh) so a long paper run is probe-able by the
// same tooling as astro-serve: curl /work/fleet for per-worker rates
// and in-flight cells, /metrics for queue depth, lease-wait and
// execute latency histograms. pprofOn additionally mounts
// /debug/pprof/; token, when non-empty, guards every /work endpoint
// behind bearer auth (point workers here with `astro worker -token`);
// journalDir, when non-empty, records every queue lifecycle event for
// `astro journal replay` and GET /work/journal. The returned stop
// halts the queue's background lease sweeper and closes the journal.
func startCoordinator(addr string, ttl time.Duration, poolWorkers int, store campaign.ResultStore, pprofOn bool, token, journalDir string) (*campaign.RemoteRunner, func(), error) {
	q := campaign.NewWorkQueue(ttl)
	q.Store = store // bank late results of timed-out figures
	closeJournal := func() {}
	if journalDir != "" {
		jw, err := journal.Open(journalDir, journal.Options{})
		if err != nil {
			return nil, nil, fmt.Errorf("-journal %s: %w", journalDir, err)
		}
		q.Events = jw
		closeJournal = func() { jw.Close() }
	}
	mux := http.NewServeMux()
	mux.Handle("/work/", http.StripPrefix("/work", campaign.WithBearerAuth(token, campaign.WorkHandler(q, store))))
	mux.Handle("GET /metrics", telemetry.Handler(telemetry.Default))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})
	healther, _ := store.(campaign.Healther)
	mux.Handle("GET /readyz", campaign.ReadyHandler(q, healther))
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("-remote %s: %w", addr, err)
	}
	stopSweep := q.StartSweeper(0) // requeue expired leases even when no worker is polling
	stop := func() { stopSweep(); closeJournal() }
	go http.Serve(ln, mux)
	fmt.Fprintf(os.Stderr, "astro-experiments: coordinating workers on %s (lease TTL %v); point `astro worker -coordinator http://<host>%s` here\n",
		ln.Addr(), ttl, addr)
	return &campaign.RemoteRunner{
		Queue:        q,
		Store:        store,
		Local:        campaign.Pool{Workers: poolWorkers, Store: store},
		ShipPrograms: true,
	}, stop, nil
}

// run executes the requested artifacts, continuing past failures, and
// returns how many failed.
func run(sc experiments.Scale, fig string) int {
	var f9 *experiments.Fig9Result
	var f10 *experiments.Fig10Result
	var f11 *experiments.Fig11Result

	failed := 0
	section := func(name string, f func() (string, error)) {
		if fig != "all" && fig != name {
			return
		}
		start := time.Now()
		out, err := f()
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "astro-experiments: %s: %v\n", name, err)
			return
		}
		fmt.Println(out)
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	section("1", func() (string, error) {
		r, err := experiments.Fig1(sc)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	section("3", func() (string, error) {
		r, err := experiments.Fig3(sc)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	section("4", func() (string, error) {
		r, err := experiments.Fig4(sc)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	section("6", func() (string, error) {
		r, err := experiments.Fig6()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
	section("9", func() (string, error) {
		r, err := experiments.Fig9(sc)
		if err != nil {
			return "", err
		}
		f9 = r
		return r.Render(), nil
	})
	section("10", func() (string, error) {
		r, err := experiments.Fig10(sc)
		if err != nil {
			return "", err
		}
		f10 = r
		return r.Render(), nil
	})
	section("11", func() (string, error) {
		r, err := experiments.Fig11()
		if err != nil {
			return "", err
		}
		f11 = r
		return r.Render(), nil
	})
	section("table1", func() (string, error) {
		return experiments.RenderTable1(), nil
	})
	section("headline", func() (string, error) {
		if f9 == nil && f10 == nil && f11 == nil {
			return "(headline needs figures 9/10/11 in the same invocation)", nil
		}
		return experiments.MakeHeadline(f9, f10, f11).Render(), nil
	})
	return failed
}

// Command astro-bench converts `go test -bench` output into the repo's
// BENCH_<n>.json baseline format so the performance trajectory is tracked
// PR-over-PR (benchmark name → ns/op, allocs/op, custom metrics).
//
// Usage:
//
//	go test -run '^$' -bench 'Burst|Observe|Fig1Workload' -benchmem ./... | go run ./cmd/astro-bench -o BENCH_2.json
//
// Multiple -count runs of the same benchmark are aggregated by minimum
// ns/op (the least-noise estimate on a shared machine); custom metrics keep
// the value from the fastest run.
//
// With -prev, the fresh run is additionally compared against a prior
// BENCH_<n>.json and the exit status turns non-zero when any pinned
// sim-throughput metric (Minstr/s) regresses by more than -max-regress
// percent. Only the throughput metrics gate — ns/op moves with benchtime
// and machine load, while instructions-per-second is the quantity the
// fast-path work actually promises.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's recorded numbers.
type Entry struct {
	N           int64              `json:"n"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"b_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_<n>.json schema.
type File struct {
	Schema     string           `json:"schema"`
	Go         string           `json:"go"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkBurstFast-8   2263   470445 ns/op   239.4 Minstr/s   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// extra matches one trailing "<value> <unit>" metric pair.
var extra = regexp.MustCompile(`([\d.]+) (\S+)`)

// Parse reads benchmark output and returns the aggregated entries.
func Parse(r io.Reader) (map[string]Entry, error) {
	out := map[string]Entry{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		e := Entry{N: n, NsPerOp: ns}
		for _, kv := range extra.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(kv[1], 64)
			if err != nil {
				continue
			}
			switch kv[2] {
			case "B/op":
				b := int64(v)
				e.BytesPerOp = &b
			case "allocs/op":
				a := int64(v)
				e.AllocsPerOp = &a
			default:
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[kv[2]] = v
			}
		}
		if prev, ok := out[name]; !ok || e.NsPerOp < prev.NsPerOp {
			out[name] = e
		}
	}
	return out, sc.Err()
}

// throughputMetric is the gated custom metric: simulated instructions per
// second, reported by the pinned sim fast-path benchmarks.
const throughputMetric = "Minstr/s"

// LoadBaseline reads and decodes a -prev baseline file. A path that does
// not exist is its own loud error: the usual cause is a numbering gap
// (regenerating BENCH_11 against a BENCH_10 that was never committed), and
// silently gating against nothing would let a regression ship — so the
// caller must run this preflight before writing any output.
func LoadBaseline(path string) (map[string]Entry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("baseline %s does not exist — check the BENCH_<n> numbering (the gate refuses to run against a missing file)", path)
	}
	if err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	var prev File
	if err := json.Unmarshal(data, &prev); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if len(prev.Benchmarks) == 0 {
		return nil, fmt.Errorf("baseline %s holds no benchmarks — gating against it would pass vacuously", path)
	}
	return prev.Benchmarks, nil
}

// Compare diffs the fresh entries against a prior baseline and returns one
// violation line per benchmark whose throughput metric dropped by more than
// maxRegressPct percent. Benchmarks missing from either side, or without
// the throughput metric, are skipped — the gate covers the pinned
// sim-throughput set, not every micro-benchmark.
func Compare(prev, cur map[string]Entry, maxRegressPct float64) []string {
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	var violations []string
	for _, name := range names {
		p, ok := prev[name]
		if !ok {
			continue
		}
		was, okP := p.Metrics[throughputMetric]
		now, okC := cur[name].Metrics[throughputMetric]
		if !okP || !okC || was <= 0 {
			continue
		}
		drop := (was - now) / was * 100
		if drop > maxRegressPct {
			violations = append(violations,
				fmt.Sprintf("%s: %s %.1f -> %.1f (-%.1f%%, limit %.0f%%)",
					name, throughputMetric, was, now, drop, maxRegressPct))
		}
	}
	return violations
}

func main() {
	outPath := flag.String("o", "", "output file (default stdout)")
	prevPath := flag.String("prev", "", "prior BENCH_<n>.json to gate against (exit 1 on throughput regression)")
	maxRegress := flag.Float64("max-regress", 15, "with -prev: max tolerated Minstr/s drop, percent")
	flag.Parse()

	// Preflight the baseline before consuming stdin or writing -o: a
	// missing or malformed -prev must not leave a fresh, ungated baseline
	// behind.
	var prevEntries map[string]Entry
	if *prevPath != "" {
		var err error
		if prevEntries, err = LoadBaseline(*prevPath); err != nil {
			fmt.Fprintf(os.Stderr, "astro-bench: -prev: %v\n", err)
			os.Exit(1)
		}
	}

	entries, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "astro-bench: %v\n", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "astro-bench: no benchmark lines on stdin")
		os.Exit(1)
	}
	file := File{Schema: "astro-bench-v1", Go: runtime.Version(), Benchmarks: entries}
	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "astro-bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *outPath == "" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "astro-bench: %v\n", err)
			os.Exit(1)
		}
		names := make([]string, 0, len(entries))
		for n := range entries {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("astro-bench: wrote %d benchmarks to %s (%s)\n", len(names), *outPath, strings.Join(names, ", "))
	}

	if *prevPath != "" {
		violations := Compare(prevEntries, entries, *maxRegress)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "astro-bench: regression vs %s: %s\n", *prevPath, v)
		}
		if len(violations) > 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "astro-bench: no >%.0f%% %s regressions vs %s\n", *maxRegress, throughputMetric, *prevPath)
	}
}

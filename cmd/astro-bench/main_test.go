package main

import (
	"os"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	out, err := Parse(strings.NewReader(`
goos: linux
BenchmarkBurstFast-8   	    2263	    470445 ns/op	       239.4 Minstr/s	       0 B/op	       0 allocs/op
BenchmarkBurstFast-8   	    2300	    460000 ns/op	       244.0 Minstr/s	       0 B/op	       0 allocs/op
BenchmarkObserve       	   12345	      9876.5 ns/op
PASS
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("parsed %d entries, want 2", len(out))
	}
	fast := out["BenchmarkBurstFast"]
	if fast.NsPerOp != 460000 { // min of the two runs
		t.Fatalf("ns/op = %v, want 460000", fast.NsPerOp)
	}
	if fast.Metrics["Minstr/s"] != 244.0 {
		t.Fatalf("metric = %v, want 244.0", fast.Metrics["Minstr/s"])
	}
	if fast.AllocsPerOp == nil || *fast.AllocsPerOp != 0 || fast.BytesPerOp == nil || *fast.BytesPerOp != 0 {
		t.Fatalf("allocs/bytes not parsed: %+v", fast)
	}
	obs := out["BenchmarkObserve"]
	if obs.NsPerOp != 9876.5 || obs.N != 12345 || obs.AllocsPerOp != nil {
		t.Fatalf("plain entry wrong: %+v", obs)
	}
}

func TestCompareGatesThroughput(t *testing.T) {
	entry := func(minstr float64) Entry {
		if minstr <= 0 {
			return Entry{NsPerOp: 100}
		}
		return Entry{NsPerOp: 100, Metrics: map[string]float64{"Minstr/s": minstr}}
	}
	prev := map[string]Entry{
		"BenchmarkBurstFast": entry(200),
		"BenchmarkBurstSlow": entry(100),
		"BenchmarkObserve":   entry(0), // no throughput metric: never gated
		"BenchmarkRemoved":   entry(300),
	}
	cur := map[string]Entry{
		"BenchmarkBurstFast": entry(160), // -20%: violation
		"BenchmarkBurstSlow": entry(90),  // -10%: within the limit
		"BenchmarkObserve":   entry(0),
		"BenchmarkAdded":     entry(50), // no baseline: skipped
	}
	violations := Compare(prev, cur, 15)
	if len(violations) != 1 {
		t.Fatalf("got %d violations, want 1: %v", len(violations), violations)
	}
	if !strings.Contains(violations[0], "BenchmarkBurstFast") || !strings.Contains(violations[0], "-20.0%") {
		t.Fatalf("violation line = %q", violations[0])
	}
	if v := Compare(prev, cur, 25); len(v) != 0 {
		t.Fatalf("25%% limit should pass, got %v", v)
	}
}

// TestLoadBaseline pins the -prev preflight: a missing baseline (the
// classic BENCH_<n> numbering gap) is a loud, specific error; so are
// malformed JSON and an empty benchmark set, which would gate vacuously.
// A valid file loads its entries.
func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()

	if _, err := LoadBaseline(dir + "/BENCH_41.json"); err == nil {
		t.Fatal("missing baseline accepted")
	} else if !strings.Contains(err.Error(), "does not exist") || !strings.Contains(err.Error(), "numbering") {
		t.Fatalf("missing baseline error not specific enough: %v", err)
	}

	junk := dir + "/junk.json"
	if err := os.WriteFile(junk, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(junk); err == nil {
		t.Fatal("malformed baseline accepted")
	}

	empty := dir + "/empty.json"
	if err := os.WriteFile(empty, []byte(`{"schema":"astro-bench-v1","benchmarks":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(empty); err == nil {
		t.Fatal("empty baseline accepted; the gate would pass vacuously")
	}

	good := dir + "/BENCH_9.json"
	body := `{"schema":"astro-bench-v1","benchmarks":{"BenchmarkBurstFast":{"n":100,"ns_per_op":1000,"metrics":{"Minstr/s":357.1}}}}`
	if err := os.WriteFile(good, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := LoadBaseline(good)
	if err != nil {
		t.Fatal(err)
	}
	if got := entries["BenchmarkBurstFast"].Metrics["Minstr/s"]; got != 357.1 {
		t.Fatalf("baseline throughput %v, want 357.1", got)
	}
}

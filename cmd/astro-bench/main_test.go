package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	out, err := Parse(strings.NewReader(`
goos: linux
BenchmarkBurstFast-8   	    2263	    470445 ns/op	       239.4 Minstr/s	       0 B/op	       0 allocs/op
BenchmarkBurstFast-8   	    2300	    460000 ns/op	       244.0 Minstr/s	       0 B/op	       0 allocs/op
BenchmarkObserve       	   12345	      9876.5 ns/op
PASS
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("parsed %d entries, want 2", len(out))
	}
	fast := out["BenchmarkBurstFast"]
	if fast.NsPerOp != 460000 { // min of the two runs
		t.Fatalf("ns/op = %v, want 460000", fast.NsPerOp)
	}
	if fast.Metrics["Minstr/s"] != 244.0 {
		t.Fatalf("metric = %v, want 244.0", fast.Metrics["Minstr/s"])
	}
	if fast.AllocsPerOp == nil || *fast.AllocsPerOp != 0 || fast.BytesPerOp == nil || *fast.BytesPerOp != 0 {
		t.Fatalf("allocs/bytes not parsed: %+v", fast)
	}
	obs := out["BenchmarkObserve"]
	if obs.NsPerOp != 9876.5 || obs.N != 12345 || obs.AllocsPerOp != nil {
		t.Fatalf("plain entry wrong: %+v", obs)
	}
}

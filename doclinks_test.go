package astro

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocLinks is the docs gate run by CI's docs job (and by every
// `go test ./...`): every relative link in every tracked markdown file
// must point at a path that exists in the repository. External links
// (http, https, mailto) and pure anchors are skipped — the check is for
// the cross-references (DESIGN.md ↔ EXPERIMENTS.md ↔ README.md ↔ source
// files) that silently rot as the tree is refactored.
func TestDocLinks(t *testing.T) {
	var mds []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if strings.HasPrefix(name, ".") && name != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".md") {
			mds = append(mds, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mds) == 0 {
		t.Fatal("no markdown files found — walking from the wrong directory?")
	}
	for _, md := range mds {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", md, m[0], resolved)
			}
		}
	}
}

package astro

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"unicode"
)

// mdLink matches inline markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// mdHeading matches ATX headings, whose GitHub-style anchors the fragment
// check below validates against.
var mdHeading = regexp.MustCompile(`(?m)^#{1,6}[ \t]+(.+?)[ \t]*$`)

// anchorSlug reduces a heading to its GitHub-style anchor: lowercase,
// punctuation dropped, spaces to hyphens. (Duplicate-heading "-1"
// suffixes are not modelled; the repo's docs keep headings unique.)
func anchorSlug(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// anchorsOf collects the anchor set of one markdown file.
func anchorsOf(t *testing.T, path string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	anchors := map[string]bool{}
	for _, m := range mdHeading.FindAllStringSubmatch(string(data), -1) {
		anchors[anchorSlug(m[1])] = true
	}
	return anchors
}

// TestDocLinks is the docs gate run by CI's docs job (and by every
// `go test ./...`): every relative link in every tracked markdown file
// must point at a path that exists in the repository, and every fragment
// on a markdown target (`DESIGN.md#distributed-campaigns-…`, or a pure
// `#anchor` within the same file) must resolve to a real heading's
// GitHub-style anchor there. External links (http, https, mailto) are
// skipped — the check is for the cross-references (DESIGN.md ↔
// EXPERIMENTS.md ↔ README.md ↔ source files) that silently rot as the
// tree is refactored and as sections are renamed.
func TestDocLinks(t *testing.T) {
	var mds []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if strings.HasPrefix(name, ".") && name != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".md") {
			mds = append(mds, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mds) == 0 {
		t.Fatal("no markdown files found — walking from the wrong directory?")
	}
	anchorCache := map[string]map[string]bool{}
	checkAnchor := func(md, link, target, fragment string) {
		if fragment == "" {
			return
		}
		anchors, ok := anchorCache[target]
		if !ok {
			anchors = anchorsOf(t, target)
			anchorCache[target] = anchors
		}
		if !anchors[fragment] {
			t.Errorf("%s: link %q names anchor #%s, which matches no heading in %s", md, link, fragment, target)
		}
	}
	for _, md := range mds {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue
			}
			fragment := ""
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target, fragment = target[:i], target[i+1:]
			}
			if target == "" {
				// Pure in-file anchor.
				checkAnchor(md, m[0], md, fragment)
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", md, m[0], resolved)
				continue
			}
			if strings.HasSuffix(resolved, ".md") {
				checkAnchor(md, m[0], resolved, fragment)
			}
		}
	}
}

package astro

import (
	"testing"
)

const demoSrc = `
func kernel(n int) {
	var i int;
	var x float = 1.0;
	for (i = 0; i < n; i = i + 1) { x = x * 1.000001 + 0.5; }
}
func main(scale int, threads int) {
	var i int;
	for (i = 0; i < threads; i = i + 1) { spawn kernel(scale); }
	join();
	sleep_ms(1);
}
`

func TestFacadePipeline(t *testing.T) {
	mod, err := Compile("demo", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := NewProgram(mod)
	if err != nil {
		t.Fatal(err)
	}
	phases := prog.Phases()
	if len(phases) != 2 {
		t.Fatalf("phases = %v", phases)
	}
	agent := prog.NewAgent(7)
	stats, pol, err := prog.Train(agent, TrainConfig{Episodes: 3, Seed: 5, Args: []int64{20000, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("stats = %v", stats)
	}
	static, err := prog.StaticBinary(pol)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(static, RunConfig{Args: []int64{20000, 4}, Seed: 9, UseGTS: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeS <= 0 || res.EnergyJ <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	hybrid, err := prog.HybridBinary()
	if err != nil {
		t.Fatal(err)
	}
	hres, err := Run(hybrid, RunConfig{
		Args: []int64{20000, 4}, Seed: 9, UseGTS: true,
		Hybrid: prog.NewHybridRuntime(agent, pol),
	})
	if err != nil {
		t.Fatal(err)
	}
	if hres.TimeS <= 0 {
		t.Fatal("hybrid run degenerate")
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	names := BenchmarkNames()
	if len(names) < 15 {
		t.Fatalf("only %d benchmarks", len(names))
	}
	mod, args, err := Benchmark("spin")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(mod, RunConfig{Args: args, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 {
		t.Fatal("no instructions retired")
	}
	if _, _, err := Benchmark("not-a-benchmark"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFacadePlatforms(t *testing.T) {
	if OdroidXU4().NumConfigs() != 24 {
		t.Error("XU4 configs")
	}
	if JetsonTK1().MaxBig() != 4 {
		t.Error("TK1 shape")
	}
}

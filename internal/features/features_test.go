package features

import (
	"testing"
	"testing/quick"

	"astro/internal/ir"
	"astro/internal/lang"
)

func analyze(t *testing.T, src string, opts Options) *ModuleInfo {
	t.Helper()
	m, err := lang.Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return AnalyzeModule(m, opts)
}

func phaseOf(t *testing.T, mi *ModuleInfo, name string) Phase {
	t.Helper()
	i, ok := mi.Module.FuncIndex[name]
	if !ok {
		t.Fatalf("function %q missing", name)
	}
	return mi.Funcs[i].Phase
}

const phasesSrc = `
var data [1024]float;
var buf [1024]float;
var tmp [1024]float;
var out [1024]float;
mutex m;
barrier gate;

// CPU bound: dense float arithmetic.
func compute(n int) float {
	var acc float = 0.0;
	var i int;
	for (i = 0; i < n; i = i + 1) {
		acc = acc + float(i) * 1.5 - acc / 2.5 + float(i * i);
	}
	return acc;
}

// IO bound: memory traffic plus file reads dominate (fills four arrays per
// iteration, like the paper's readMatrix).
func slurp(n int) {
	var i int;
	for (i = 0; i < n; i = i + 1) {
		data[i] = read_float();
		buf[i] = read_float();
		tmp[i] = read_float();
		out[i] = read_float();
	}
}

// Blocked: waits on a barrier.
func rendezvous() {
	barrier_wait(gate);
}

// Blocked: sleeps.
func nap() {
	sleep_ms(10);
}

// Blocked: network wait.
func poll() {
	var x int = net_recv();
	print_int(x);
}

// Lock-dominated: more than half the body is lock traffic.
func hotlock() {
	lock(m);
	unlock(m);
}

func main(scale int, threads int) {
	compute(scale);
	slurp(scale);
	rendezvous();
	nap();
	poll();
	hotlock();
}
`

func TestClassifyPhases(t *testing.T) {
	mi := analyze(t, phasesSrc, Options{})
	cases := map[string]Phase{
		"compute":    PhaseCPUBound,
		"slurp":      PhaseIOBound,
		"rendezvous": PhaseBlocked,
		"nap":        PhaseBlocked,
		"poll":       PhaseBlocked,
	}
	for name, want := range cases {
		if got := phaseOf(t, mi, name); got != want {
			i := mi.Module.FuncIndex[name]
			t.Errorf("%s: phase %v, want %v (vec %+v)", name, got, want, mi.Funcs[i].Vec)
		}
	}
}

func TestLockDensityBlocks(t *testing.T) {
	mi := analyze(t, phasesSrc, Options{})
	i := mi.Module.FuncIndex["hotlock"]
	v := mi.Funcs[i].Vec
	if v.LockDens <= 0.5 {
		t.Fatalf("hotlock LockDens = %v, expected > 0.5 (total %d)", v.LockDens, v.Total)
	}
	if mi.Funcs[i].Phase != PhaseBlocked {
		t.Errorf("hotlock phase = %v, want Blocked", mi.Funcs[i].Phase)
	}
}

func TestDensitiesSumAtMostOne(t *testing.T) {
	mi := analyze(t, phasesSrc, Options{})
	for _, f := range mi.Funcs {
		sum := f.Vec.IODens + f.Vec.MemDens + f.Vec.IntDens + f.Vec.FPDens + f.Vec.LockDens
		if sum > 1.0000001 {
			t.Errorf("%s: densities sum to %v > 1 (%+v)", f.Name, sum, f.Vec)
		}
	}
}

func TestNestingFactorAndIOWeight(t *testing.T) {
	mi := analyze(t, `
func flat() { print_int(1); }
func onedeep(n int) {
	var i int;
	for (i = 0; i < n; i = i + 1) { print_int(i); }
}
func twodeep(n int) {
	var i int;
	var j int;
	for (i = 0; i < n; i = i + 1) {
		for (j = 0; j < n; j = j + 1) { print_int(j); }
		print_int(i);
	}
}
func main() { flat(); onedeep(3); twodeep(3); }
`, Options{})
	get := func(name string) Vector {
		return mi.Funcs[mi.Module.FuncIndex[name]].Vec
	}
	if v := get("flat"); v.NestingFactor != 0 || v.IOWeight != 1 {
		t.Errorf("flat: %+v", v)
	}
	if v := get("onedeep"); v.NestingFactor != 1 || v.IOWeight != 10 {
		t.Errorf("onedeep: nesting=%d ioweight=%v", v.NestingFactor, v.IOWeight)
	}
	if v := get("twodeep"); v.NestingFactor != 2 || v.IOWeight != 110 {
		t.Errorf("twodeep: nesting=%d ioweight=%v, want 2 and 110", v.NestingFactor, v.IOWeight)
	}
}

func TestTransitiveBlockingPropagation(t *testing.T) {
	src := `
func helper() { sleep_ms(5); }
func caller() {
	var i int;
	for (i = 0; i < 100; i = i + 1) { helper(); }
}
func spawner() { spawn helper; }
func main() { caller(); }
`
	// spawn needs a call: fix source (spawn helper() requires parens).
	src = `
func helper() { sleep_ms(5); }
func caller() {
	var i int;
	for (i = 0; i < 100; i = i + 1) { helper(); }
}
func spawner() { spawn helper(); }
func main() { caller(); spawner(); }
`
	direct := analyze(t, src, Options{})
	if p := phaseOf(t, direct, "caller"); p == PhaseBlocked {
		t.Errorf("without transitivity caller should not be Blocked")
	}
	trans := analyze(t, src, Options{Transitive: true})
	if p := phaseOf(t, trans, "caller"); p != PhaseBlocked {
		t.Errorf("with transitivity caller = %v, want Blocked", p)
	}
	// Spawning a blocking function does not block the spawner.
	if p := phaseOf(t, trans, "spawner"); p == PhaseBlocked {
		t.Errorf("spawner should not inherit Blocked through spawn")
	}
}

func TestHistogram(t *testing.T) {
	mi := analyze(t, phasesSrc, Options{})
	h := mi.Histogram()
	total := 0
	for _, n := range h {
		total += n
	}
	if total != len(mi.Funcs) {
		t.Errorf("histogram total %d != %d funcs", total, len(mi.Funcs))
	}
	if h[PhaseBlocked] < 3 {
		t.Errorf("blocked count = %d, want >= 3", h[PhaseBlocked])
	}
}

func TestRangeIndex(t *testing.T) {
	bounds := []float64{0.25, 0.5}
	cases := []struct {
		v    float64
		want int
	}{
		{-1, 0}, {0, 0}, {0.249, 0}, {0.25, 1}, {0.49, 1}, {0.5, 2}, {100, 2},
	}
	for _, c := range cases {
		if got := RangeIndex(c.v, bounds); got != c.want {
			t.Errorf("RangeIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestRangeIndexPropertyMonotone(t *testing.T) {
	bounds := []float64{1, 10, 100}
	f := func(a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		return RangeIndex(a, bounds) <= RangeIndex(b, bounds)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExample34Space(t *testing.T) {
	s := NewExample34Space()
	if s.Cells() != 36 {
		t.Fatalf("Cells = %d, want 36 (paper: 3x3x4)", s.Cells())
	}
	// Function main of Fig. 6: ArithDens in [0,.25), IOWeight in [0,1),
	// Nesting in [0,1] -> cell (0,0,0).
	v := Vector{ArithDens: 0.1, NestingFactor: 1, IOWeight: 0.5}
	a, n, io := s.Cube(v)
	if a != 0 || n != 0 || io != 0 {
		t.Errorf("Cube = (%d,%d,%d), want (0,0,0)", a, n, io)
	}
	if id := s.CellID(v); id != 0 {
		t.Errorf("CellID = %d, want 0", id)
	}
	// All cell ids must be unique and within range.
	seen := map[int]bool{}
	for a := 0; a < 3; a++ {
		for n := 0; n < 3; n++ {
			for io := 0; io < 4; io++ {
				v := Vector{
					ArithDens:     []float64{0.1, 0.3, 0.7}[a],
					NestingFactor: []int{0, 2, 5}[n],
					IOWeight:      []float64{0, 5, 50, 500}[io],
				}
				id := s.CellID(v)
				if id < 0 || id >= s.Cells() {
					t.Fatalf("CellID out of range: %d", id)
				}
				if seen[id] {
					t.Fatalf("duplicate cell id %d", id)
				}
				seen[id] = true
			}
		}
	}
}

func TestEmptyFunctionVector(t *testing.T) {
	m := ir.NewModule("e")
	b := ir.NewBuilder(m, "empty", nil, ir.TVoid)
	b.Ret(ir.NoReg)
	v := Extract(m.Funcs[0])
	if v.IODens != 0 || v.MemDens != 0 || v.IntDens != 0 || v.FPDens != 0 {
		t.Errorf("empty function has nonzero densities: %+v", v)
	}
	if Classify(v) != PhaseOther {
		t.Errorf("empty function phase = %v, want Other", Classify(v))
	}
}

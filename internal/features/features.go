// Package features implements the paper's Phase-Extractor (Sec. 3.1.1): it
// mines code-level features from IR functions and classifies each function
// into one of four static program phases (Blocked, I/O-bound, CPU-bound,
// Other). These phases are what the instrumented program reports to the
// Astro runtime at function entries.
package features

import (
	"fmt"

	"astro/internal/ir"
)

// Phase is a static program phase, per the paper's four-way partition.
type Phase uint8

const (
	PhaseOther Phase = iota
	PhaseBlocked
	PhaseIOBound
	PhaseCPUBound

	NumPhases = 4
)

func (p Phase) String() string {
	switch p {
	case PhaseOther:
		return "Other"
	case PhaseBlocked:
		return "Blocked"
	case PhaseIOBound:
		return "IOBound"
	case PhaseCPUBound:
		return "CPUBound"
	}
	return fmt.Sprintf("Phase(%d)", uint8(p))
}

// Vector is the per-function code-feature vector. All densities share the
// same denominator: the function's instruction count minus materialized
// constants (which are operands, not instructions, in LLVM IR), plus the FP
// work of math-library calls (so sqrt-heavy kernels register as
// floating-point work the way their compiled bodies would in LLVM IR).
// The density features therefore sum to at most 1 and the classification
// predicates below are mutually exclusive, as in the paper.
type Vector struct {
	IODens   float64 // library calls performing I/O
	MemDens  float64 // loads and stores
	IntDens  float64 // integer ALU
	FPDens   float64 // floating-point ALU (incl. math-library FP work)
	LockDens float64 // lock/unlock operations

	Barrier bool // function invokes a multi-thread barrier (or join)
	Net     bool // function invokes a network wait
	Sleep   bool // function invokes an unconditional sleep

	// Extra features used in Example 3.4 / Fig. 6 of the paper.
	ArithDens     float64 // IntDens + FPDens
	NestingFactor int     // deepest loop nesting
	IOWeight      float64 // Σ 10^n over I/O calls nested in n loops

	Total int // raw instruction count (before FP-work expansion)
}

// Extract computes the feature vector of one function.
func Extract(f *ir.Function) Vector {
	c := ir.CountFunc(f)
	denom := float64(c.Total - c.Other + c.LibFPWork)
	v := Vector{Total: c.Total}
	if denom > 0 {
		v.IODens = float64(c.IOCalls) / denom
		v.MemDens = float64(c.Mem) / denom
		v.IntDens = float64(c.IntALU) / denom
		v.FPDens = float64(c.FPALU+c.LibFPWork) / denom
		v.LockDens = float64(c.LockOps) / denom
	}
	v.ArithDens = v.IntDens + v.FPDens
	v.Barrier = c.Barriers > 0
	v.NetCallsToFlags(c)

	info := ir.BuildCFG(f)
	v.NestingFactor = info.MaxLoopDepth()
	v.IOWeight = ioWeight(f, info)
	return v
}

// NetCallsToFlags sets the Net and Sleep flags from raw counts.
func (v *Vector) NetCallsToFlags(c ir.ClassCounts) {
	v.Net = c.NetCalls > 0
	v.Sleep = c.SleepOps > 0
}

// ioWeight implements the heuristic of Example 3.4: Σ 10^n for every I/O
// call nested in n loops.
func ioWeight(f *ir.Function, info *ir.CFGInfo) float64 {
	var w float64
	for bi, b := range f.Blocks {
		if info.RPOIx[bi] < 0 {
			continue
		}
		depth := info.LoopDepth[bi]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != ir.OpBuiltin {
				continue
			}
			if ir.Builtin(ir.BuiltinID(in.Sym)).IsIO {
				w += pow10(depth)
			}
		}
	}
	return w
}

func pow10(n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= 10
	}
	return r
}

// Classify maps a feature vector to a program phase using the paper's rules:
//
//	Blocked:  Barrier ∨ Net ∨ Sleep ∨ LockDens > 0.5
//	IOBound:  IODens + MemDens > 0.5 ∧ ¬Blocked ∧ LockDens = 0
//	CPUBound: IntDens + FPDens > 0.5 ∧ ¬Blocked
//	Other:    otherwise
func Classify(v Vector) Phase {
	blocked := v.Barrier || v.Net || v.Sleep || v.LockDens > 0.5
	if blocked {
		return PhaseBlocked
	}
	if v.IODens+v.MemDens > 0.5 && v.LockDens == 0 {
		return PhaseIOBound
	}
	if v.IntDens+v.FPDens > 0.5 {
		return PhaseCPUBound
	}
	return PhaseOther
}

// FuncInfo pairs a function with its features and phase.
type FuncInfo struct {
	Name  string
	Index int
	Vec   Vector
	Phase Phase
}

// ModuleInfo is the Phase-Extractor output for a whole module.
type ModuleInfo struct {
	Module *ir.Module
	Funcs  []FuncInfo // indexed by function index
}

// Options controls analysis.
type Options struct {
	// Transitive propagates the Barrier/Net/Sleep flags through user-function
	// calls: a function that calls a sleeping helper is itself flagged. The
	// paper instruments library calls directly, so the default is off; the
	// option exists as a documented extension (see DESIGN.md).
	Transitive bool
}

// AnalyzeModule extracts features and phases for every function.
func AnalyzeModule(m *ir.Module, opts Options) *ModuleInfo {
	mi := &ModuleInfo{Module: m}
	for i, f := range m.Funcs {
		v := Extract(f)
		mi.Funcs = append(mi.Funcs, FuncInfo{Name: f.Name, Index: i, Vec: v})
	}
	if opts.Transitive {
		propagateBlockingFlags(m, mi)
	}
	for i := range mi.Funcs {
		mi.Funcs[i].Phase = Classify(mi.Funcs[i].Vec)
	}
	return mi
}

// propagateBlockingFlags fixed-points Barrier/Net/Sleep over the call graph.
func propagateBlockingFlags(m *ir.Module, mi *ModuleInfo) {
	// callees[i] lists user functions called (or spawned) by function i.
	callees := make([][]int, len(m.Funcs))
	for i, f := range m.Funcs {
		seen := map[int]bool{}
		for _, b := range f.Blocks {
			for k := range b.Instrs {
				in := &b.Instrs[k]
				if in.Op == ir.OpCall { // spawn starts a new thread; the
					// spawner itself does not block, so OpSpawn is excluded.
					if !seen[int(in.Sym)] {
						seen[int(in.Sym)] = true
						callees[i] = append(callees[i], int(in.Sym))
					}
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for i := range mi.Funcs {
			for _, c := range callees[i] {
				cv := &mi.Funcs[c].Vec
				v := &mi.Funcs[i].Vec
				if cv.Barrier && !v.Barrier {
					v.Barrier = true
					changed = true
				}
				if cv.Net && !v.Net {
					v.Net = true
					changed = true
				}
				if cv.Sleep && !v.Sleep {
					v.Sleep = true
					changed = true
				}
			}
		}
	}
}

// PhaseOf returns the phase of function index i.
func (mi *ModuleInfo) PhaseOf(i int) Phase { return mi.Funcs[i].Phase }

// Histogram counts functions per phase.
func (mi *ModuleInfo) Histogram() [NumPhases]int {
	var h [NumPhases]int
	for _, f := range mi.Funcs {
		h[f.Phase]++
	}
	return h
}

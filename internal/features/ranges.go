package features

// Feature ranges, per Definition 3.3: contiguous intervals partitioning a
// feature's domain into equivalence classes. RangeIndex is the generic
// bucketing primitive used both here and by internal/perfmon for hardware
// phases.

// RangeIndex returns the index of the half-open interval containing v, given
// ascending interior boundaries. With boundaries [b0, b1] the intervals are
// (-inf, b0), [b0, b1), [b1, +inf), i.e. len(bounds)+1 buckets.
func RangeIndex(v float64, bounds []float64) int {
	i := 0
	for i < len(bounds) && v >= bounds[i] {
		i++
	}
	return i
}

// Example34Space reproduces the 3-feature space of Example 3.4 / Fig. 6 of
// the paper: arithmetic density in {[0,.25), [.25,.5), [.5,1]}, nesting
// factor in {[0,1], [2,3], [4,+inf)} and I/O weight in {[0,1), [1,10),
// [10,100), [100,+inf)} — 3 x 3 x 4 = 36 cells.
type Example34Space struct {
	ArithBounds   []float64
	NestingBounds []float64
	IOBounds      []float64
}

// NewExample34Space returns the space with the paper's boundaries.
func NewExample34Space() Example34Space {
	return Example34Space{
		ArithBounds:   []float64{0.25, 0.50},
		NestingBounds: []float64{2, 4},
		IOBounds:      []float64{1, 10, 100},
	}
}

// Cells returns the total number of cells in the space.
func (s Example34Space) Cells() int {
	return (len(s.ArithBounds) + 1) * (len(s.NestingBounds) + 1) * (len(s.IOBounds) + 1)
}

// Cube maps a feature vector to its (arith, nesting, io) cell coordinates.
func (s Example34Space) Cube(v Vector) (int, int, int) {
	return RangeIndex(v.ArithDens, s.ArithBounds),
		RangeIndex(float64(v.NestingFactor), s.NestingBounds),
		RangeIndex(v.IOWeight, s.IOBounds)
}

// CellID flattens cube coordinates into a single phase id in [0, Cells()).
func (s Example34Space) CellID(v Vector) int {
	a, n, io := s.Cube(v)
	return (a*(len(s.NestingBounds)+1)+n)*(len(s.IOBounds)+1) + io
}

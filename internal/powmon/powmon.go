// Package powmon is the power monitor of the reproduction: it integrates the
// hardware model's instantaneous power into energy (the role PowMon [32]
// plays on the Odroid) and optionally records a fixed-rate sample series
// (the role of the JetsonLeap/NI-6009 apparatus behind Fig. 3).
package powmon

// Meter integrates energy and tracks a resettable window for checkpoint
// rewards.
type Meter struct {
	totalJ  float64
	windowJ float64
}

// Add charges durS seconds at watts to both the total and the window.
func (m *Meter) Add(durS, watts float64) {
	j := durS * watts
	m.totalJ += j
	m.windowJ += j
}

// TotalJ returns cumulative energy in joules.
func (m *Meter) TotalJ() float64 { return m.totalJ }

// WindowJ returns energy accumulated since the last ResetWindow.
func (m *Meter) WindowJ() float64 { return m.windowJ }

// ResetWindow zeroes the window accumulator.
func (m *Meter) ResetWindow() { m.windowJ = 0 }

// Sample is one instantaneous power reading.
type Sample struct {
	TimeS float64
	Watts float64
}

// Series is a fixed-rate power trace.
type Series struct {
	IntervalS float64
	Samples   []Sample
}

// Append records a sample.
func (s *Series) Append(t, w float64) {
	s.Samples = append(s.Samples, Sample{TimeS: t, Watts: w})
}

// MeanWatts returns the average power over the series (0 if empty).
func (s *Series) MeanWatts() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.Samples {
		sum += x.Watts
	}
	return sum / float64(len(s.Samples))
}

// MaxWatts returns the peak power (0 if empty).
func (s *Series) MaxWatts() float64 {
	var max float64
	for _, x := range s.Samples {
		if x.Watts > max {
			max = x.Watts
		}
	}
	return max
}

// Window returns the samples with TimeS in [t0, t1).
func (s *Series) Window(t0, t1 float64) []Sample {
	var out []Sample
	for _, x := range s.Samples {
		if x.TimeS >= t0 && x.TimeS < t1 {
			out = append(out, x)
		}
	}
	return out
}

package powmon

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeterIntegration(t *testing.T) {
	var m Meter
	m.Add(2.0, 1.5) // 3 J
	m.Add(0.5, 4.0) // 2 J
	if got := m.TotalJ(); math.Abs(got-5) > 1e-12 {
		t.Errorf("TotalJ = %v", got)
	}
	if got := m.WindowJ(); math.Abs(got-5) > 1e-12 {
		t.Errorf("WindowJ = %v", got)
	}
	m.ResetWindow()
	if m.WindowJ() != 0 {
		t.Error("window not reset")
	}
	m.Add(1, 1)
	if got, want := m.TotalJ(), 6.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("TotalJ after reset = %v", got)
	}
	if got := m.WindowJ(); math.Abs(got-1) > 1e-12 {
		t.Errorf("WindowJ after reset = %v", got)
	}
}

// Property: total equals the sum of all window readings when windows are
// reset after each read.
func TestMeterWindowSumsToTotal(t *testing.T) {
	f := func(durs []float64) bool {
		var m Meter
		var sum float64
		for _, d := range durs {
			d = math.Abs(d)
			if d > 1e6 || math.IsNaN(d) || math.IsInf(d, 0) {
				d = 1
			}
			m.Add(d, 2.0)
			sum += m.WindowJ()
			m.ResetWindow()
		}
		return math.Abs(sum-m.TotalJ()) < 1e-6*(1+math.Abs(sum))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{IntervalS: 0.001}
	for i := 0; i < 10; i++ {
		s.Append(float64(i)*0.001, float64(i))
	}
	if got := s.MeanWatts(); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("MeanWatts = %v", got)
	}
	if got := s.MaxWatts(); got != 9 {
		t.Errorf("MaxWatts = %v", got)
	}
	win := s.Window(0.002, 0.005)
	if len(win) != 3 || win[0].Watts != 2 || win[2].Watts != 4 {
		t.Errorf("Window = %+v", win)
	}
	var empty Series
	if empty.MeanWatts() != 0 || empty.MaxWatts() != 0 {
		t.Error("empty series stats should be zero")
	}
}

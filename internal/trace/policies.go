package trace

import (
	"astro/internal/hw"
	"astro/internal/rl"
)

// FixedPolicy always consumes the same configuration (the paper's 4L4B and
// 1L0B baselines).
type FixedPolicy struct{ Config hw.Config }

// Name implements Policy.
func (f *FixedPolicy) Name() string { return "fixed-" + f.Config.String() }

// Reset implements Policy.
func (f *FixedPolicy) Reset() {}

// Choose implements Policy.
func (f *FixedPolicy) Choose(*Set, int, hw.Config, Row) hw.Config { return f.Config }

// RandomPolicy picks a uniformly random recorded configuration each step.
type RandomPolicy struct {
	Seed  uint64
	state uint64
}

// Name implements Policy.
func (r *RandomPolicy) Name() string { return "random" }

// Reset implements Policy.
func (r *RandomPolicy) Reset() { r.state = r.Seed*2862933555777941757 + 3037000493 }

// Choose implements Policy.
func (r *RandomPolicy) Choose(s *Set, _ int, cur hw.Config, _ Row) hw.Config {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	ids := s.Configs()
	return s.Plat.ConfigFromID(ids[int((x*2685821657736338717)%uint64(len(ids)))])
}

// oracleGoal selects what the oracle optimizes.
type oracleGoal uint8

const (
	goalTime oracleGoal = iota
	goalEnergy
)

// OraclePolicy is the paper's greedy oracle: knowing every configuration's
// behaviour at the current progress point, it picks the one with the best
// instantaneous time (Oracle T) or energy (Oracle E) for the next
// checkpoint. It is a greedy approximation, not a global optimum, exactly
// as described in RQ1.
type OraclePolicy struct {
	goal oracleGoal
}

// OracleT optimizes execution time.
func OracleT() *OraclePolicy { return &OraclePolicy{goal: goalTime} }

// OracleE optimizes energy.
func OracleE() *OraclePolicy { return &OraclePolicy{goal: goalEnergy} }

// Name implements Policy.
func (o *OraclePolicy) Name() string {
	if o.goal == goalTime {
		return "oracle-T"
	}
	return "oracle-E"
}

// Reset implements Policy.
func (o *OraclePolicy) Reset() {}

// Choose implements Policy. The greedy score for a candidate configuration
// is its instantaneous progress rate at the current progress point,
// including the reconfiguration cost when the candidate differs from the
// current configuration (a greedy decision that ignored switch cost would
// thrash between near-equal configurations).
func (o *OraclePolicy) Choose(s *Set, _ int, cur hw.Config, last Row) hw.Config {
	p := o.progressAfter(s, cur, last)
	lat := float64(s.Plat.SwitchLatencyUs) * 1e-6
	best := cur
	bestScore := 0.0
	first := true
	for _, id := range s.Configs() {
		tr := s.Traces[id]
		row, _, frac := tr.rowAt(minf(p, 0.999999))
		switching := tr.Config != cur
		var score float64
		if o.goal == goalTime {
			d := row.DurS
			if switching {
				d += lat
			}
			if d > 0 {
				score = frac / d // progress per second
			}
		} else {
			e := row.EnergyJ
			if switching {
				e += lat * (row.Watts() + s.Plat.IdleConfigPower(tr.Config)) / 2
			}
			if e > 0 {
				score = frac / e // progress per joule
			}
		}
		if first || score > bestScore {
			best, bestScore, first = tr.Config, score, false
		}
	}
	return best
}

func (o *OraclePolicy) progressAfter(s *Set, cur hw.Config, last Row) float64 {
	tr := s.Traces[s.Plat.ConfigID(cur)]
	// Locate the consumed row by index; progress after it is its cumFrac
	// end. Falls back to a fraction estimate for synthetic rows.
	if last.Index >= 0 && last.Index < len(tr.Rows) {
		return tr.cumFrac[last.Index+1]
	}
	return 1
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// RLPolicy replays with a Q-learning agent in the loop: Astro (with program
// phases) or Hipster (without). Train it by running Replay repeatedly with
// Learn=true, then evaluate with Learn=false.
type RLPolicy struct {
	Agent        rl.Agent
	Plat         *hw.Platform
	Gamma        float64 // reward exponent (2.0 = paper's Astro setting)
	UseProgPhase bool
	Learn        bool
	label        string

	prev    rl.State
	prevAct int
	hasPrev bool
	norm    rl.Normalizer
}

// NewAstroReplay builds the Astro replay policy.
func NewAstroReplay(agent rl.Agent, plat *hw.Platform, learn bool) *RLPolicy {
	return &RLPolicy{Agent: agent, Plat: plat, Gamma: 2.0, UseProgPhase: true, Learn: learn, label: "astro"}
}

// NewHipsterReplay builds the Hipster replay policy (no program phases).
func NewHipsterReplay(agent rl.Agent, plat *hw.Platform, learn bool) *RLPolicy {
	return &RLPolicy{Agent: agent, Plat: plat, Gamma: 2.0, UseProgPhase: false, Learn: learn, label: "hipster"}
}

// Name implements Policy.
func (p *RLPolicy) Name() string { return p.label }

// Reset implements Policy.
func (p *RLPolicy) Reset() {
	p.hasPrev = false
	if p.Learn {
		p.Agent.EndEpisode()
	}
}

// Choose implements Policy.
func (p *RLPolicy) Choose(s *Set, _ int, cur hw.Config, last Row) hw.Config {
	phase := 0
	if p.UseProgPhase {
		phase = int(last.ProgPhase)
	}
	st := rl.State{ConfigID: p.Plat.ConfigID(cur), ProgPhase: phase, HWPhaseID: last.HWPhaseID}
	if p.hasPrev && p.Learn {
		// The reward for the previous action covers the row just consumed
		// plus, when the action changed the configuration, the switch cost
		// (otherwise the learner would thrash between near-equal configs
		// for free).
		mips, watts := last.MIPS(), last.Watts()
		if s != nil && p.prev.ConfigID != st.ConfigID {
			lat := float64(s.Plat.SwitchLatencyUs) * 1e-6
			dur := last.DurS + lat
			en := last.EnergyJ + lat*(last.Watts()+s.Plat.IdleConfigPower(cur))/2
			if dur > 0 {
				mips = float64(last.Instr) / dur / 1e6
				watts = en / dur
			}
		}
		r := p.norm.Scale(rl.Reward(mips, watts, p.Gamma))
		p.Agent.Observe(p.prev, p.prevAct, r, st)
	}
	var a int
	if p.Learn {
		a = p.Agent.Select(st, true)
	} else {
		a = p.Agent.Best(st)
	}
	p.prev, p.prevAct, p.hasPrev = st, a, true
	return p.Plat.ConfigFromID(a)
}

// LadderPolicy replays Octopus-Man: a utilization-threshold ladder over
// configurations by capability (no learning, no reward).
type LadderPolicy struct {
	Plat     *hw.Platform
	UpUtil   float64
	DownUtil float64

	ladder []int
	pos    int
}

// NewOctopusReplay builds the Octopus-Man replay policy.
func NewOctopusReplay(plat *hw.Platform) *LadderPolicy {
	return &LadderPolicy{Plat: plat, UpUtil: 0.8, DownUtil: 0.3, ladder: plat.ConfigsByCapability()}
}

// Name implements Policy.
func (l *LadderPolicy) Name() string { return "octopus-man" }

// Reset implements Policy.
func (l *LadderPolicy) Reset() { l.pos = 0 }

// Choose implements Policy.
func (l *LadderPolicy) Choose(s *Set, _ int, cur hw.Config, last Row) hw.Config {
	util := last.HW.Util()
	if util >= l.UpUtil && l.pos+1 < len(l.ladder) {
		l.pos++
	} else if util <= l.DownUtil && l.pos > 0 {
		l.pos--
	}
	// The ladder may reference unrecorded configs when the set is partial;
	// Replay clamps those back to cur.
	return l.Plat.ConfigFromID(l.ladder[l.pos])
}

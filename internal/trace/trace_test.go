package trace

import (
	"math"
	"sync"
	"testing"

	"astro/internal/features"
	"astro/internal/hw"
	"astro/internal/instrument"
	"astro/internal/ir"
	"astro/internal/lang"
	"astro/internal/rl"
	"astro/internal/sim"
)

// A small barrier-synchronized iterative benchmark (fluidanimate-like) with
// enough parallel compute to distinguish configurations.
const benchSrc = `
barrier step;
func worker(iters int, n int) {
	var it int;
	var i int;
	var x float = 1.0;
	for (it = 0; it < iters; it = it + 1) {
		for (i = 0; i < n; i = i + 1) { x = x * 1.000001 + 0.5; }
		barrier_wait(step);
	}
}
func main(scale int, threads int) {
	barrier_init(step, threads);
	var i int;
	for (i = 0; i < threads; i = i + 1) { spawn worker(40, scale); }
	join();
}
`

var (
	cachedSets = map[int]*Set{}
	cachedMod  *ir.Module
	cachedMu   sync.Mutex
)

// buildSet records (once per process) a trace set over the test
// configurations; tests share it read-only except RLPolicy training, which
// only mutates its own agent.
func buildSet(t *testing.T, configs []hw.Config) (*Set, *ir.Module, *hw.Platform) {
	t.Helper()
	cachedMu.Lock()
	defer cachedMu.Unlock()
	plat := hw.OdroidXU4()
	if set, ok := cachedSets[len(configs)]; ok {
		return set, cachedMod, plat
	}
	mod, err := lang.Compile("bench", benchSrc)
	if err != nil {
		t.Fatal(err)
	}
	mi := features.AnalyzeModule(mod, features.Options{})
	instrMod, err := instrument.ForLearning(mod, mi)
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.Options{
		Args:        []int64{12000, 4},
		Seed:        1,
		CheckpointS: 200e-6,
		QuantumS:    50e-6,
		TickS:       100e-6,
	}
	set, err := RecordSet(instrMod, plat, opts, configs)
	if err != nil {
		t.Fatal(err)
	}
	cachedSets[len(configs)] = set
	cachedMod = instrMod
	return set, instrMod, plat
}

var testConfigs = []hw.Config{
	{Little: 1}, {Little: 4}, {Big: 1}, {Big: 4}, {Little: 4, Big: 4}, {Little: 2, Big: 2},
}

func TestRecordConservation(t *testing.T) {
	set, _, plat := buildSet(t, testConfigs)
	for id, tr := range set.Traces {
		var instr uint64
		var dur, energy float64
		for _, r := range tr.Rows {
			instr += r.Instr
			dur += r.DurS
			energy += r.EnergyJ
		}
		if instr != tr.TotalInstr {
			t.Errorf("%v: rows sum %d instr, total %d", plat.ConfigFromID(id), instr, tr.TotalInstr)
		}
		if math.Abs(dur-tr.TotalTimeS) > 1e-6+0.02*tr.TotalTimeS {
			t.Errorf("%v: rows sum %vs, total %vs", plat.ConfigFromID(id), dur, tr.TotalTimeS)
		}
		if energy > tr.TotalEnergy*1.05 {
			t.Errorf("%v: rows energy %v exceeds total %v", plat.ConfigFromID(id), energy, tr.TotalEnergy)
		}
	}
}

func TestTracesSameWork(t *testing.T) {
	set, _, _ := buildSet(t, testConfigs)
	for _, tr := range set.Traces {
		ratio := float64(tr.TotalInstr) / float64(set.Work)
		if ratio < 0.97 || ratio > 1.03 {
			t.Errorf("%v: instruction total %d deviates from reference %d",
				tr.Config, tr.TotalInstr, set.Work)
		}
	}
}

func TestFixedReplayMatchesTrace(t *testing.T) {
	set, _, plat := buildSet(t, testConfigs)
	for id, tr := range set.Traces {
		cfg := plat.ConfigFromID(id)
		res, err := set.Replay(&FixedPolicy{Config: cfg}, cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		if math.Abs(res.TimeS-tr.TotalTimeS) > 0.05*tr.TotalTimeS+1e-6 {
			t.Errorf("%v: replay %vs vs trace %vs", cfg, res.TimeS, tr.TotalTimeS)
		}
		if res.Switches != 0 {
			t.Errorf("%v: fixed replay switched %d times", cfg, res.Switches)
		}
	}
}

func TestOracleTBeatsEveryFixedConfig(t *testing.T) {
	set, _, plat := buildSet(t, testConfigs)
	oracle, err := set.Replay(OracleT(), plat.AllOn())
	if err != nil {
		t.Fatal(err)
	}
	// The oracle starts on 4L4B and must pay a forced first row plus one
	// switch before it can follow the best trace, hence the small absolute
	// allowance on top of the relative margin.
	allowance := 2*200e-6 + 2*150e-6
	for _, tr := range set.Traces {
		if oracle.TimeS > tr.TotalTimeS*1.05+allowance {
			t.Errorf("oracle-T %vs worse than fixed %v at %vs", oracle.TimeS, tr.Config, tr.TotalTimeS)
		}
	}
}

func TestOracleEBeatsEveryFixedConfigOnEnergy(t *testing.T) {
	set, _, plat := buildSet(t, testConfigs)
	oracle, err := set.Replay(OracleE(), hw.Config{Little: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Same allowance reasoning as the time oracle: boot row + one switch at
	// a conservative 2 W.
	allowance := (2*200e-6 + 2*150e-6) * 2.0
	for _, tr := range set.Traces {
		if oracle.EnergyJ > tr.TotalEnergy*1.05+allowance {
			t.Errorf("oracle-E %vJ worse than fixed %v at %vJ", oracle.EnergyJ, tr.Config, tr.TotalEnergy)
		}
	}
	_ = plat
}

func TestOraclesTradeOff(t *testing.T) {
	set, _, plat := buildSet(t, testConfigs)
	oT, err := set.Replay(OracleT(), plat.AllOn())
	if err != nil {
		t.Fatal(err)
	}
	oE, err := set.Replay(OracleE(), hw.Config{Little: 1})
	if err != nil {
		t.Fatal(err)
	}
	if oT.TimeS > oE.TimeS*1.0001 {
		t.Errorf("oracle-T time %v should not exceed oracle-E time %v", oT.TimeS, oE.TimeS)
	}
	if oE.EnergyJ > oT.EnergyJ*1.0001 {
		t.Errorf("oracle-E energy %v should not exceed oracle-T energy %v", oE.EnergyJ, oT.EnergyJ)
	}
}

func TestRandomPolicyRunsAndIsWorseThanOracle(t *testing.T) {
	set, _, plat := buildSet(t, testConfigs)
	rnd, err := set.Replay(&RandomPolicy{Seed: 7}, plat.AllOn())
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := set.Replay(OracleT(), plat.AllOn())
	if err != nil {
		t.Fatal(err)
	}
	if rnd.TimeS < oracle.TimeS {
		t.Errorf("random (%v) beat the time oracle (%v)", rnd.TimeS, oracle.TimeS)
	}
	if rnd.Switches == 0 {
		t.Error("random policy never switched")
	}
}

func TestAstroReplayLearnsToApproachOracle(t *testing.T) {
	set, _, plat := buildSet(t, testConfigs)
	agent := rl.NewDQN(plat.NumConfigs(), rl.DQNConfig{Seed: 13, LR: 0.06})
	pol := NewAstroReplay(agent, plat, true)
	for ep := 0; ep < 25; ep++ {
		if _, err := set.Replay(pol, plat.AllOn()); err != nil {
			t.Fatal(err)
		}
	}
	pol.Learn = false
	got, err := set.Replay(pol, plat.AllOn())
	if err != nil {
		t.Fatal(err)
	}
	oracle, _ := set.Replay(OracleT(), plat.AllOn())
	worst := 0.0
	for _, tr := range set.Traces {
		if tr.TotalTimeS > worst {
			worst = tr.TotalTimeS
		}
	}
	if got.TimeS > worst {
		t.Errorf("trained astro (%v) worse than worst fixed config (%v)", got.TimeS, worst)
	}
	t.Logf("astro %.6fs, oracle-T %.6fs, worst fixed %.6fs", got.TimeS, oracle.TimeS, worst)
}

func TestOctopusReplay(t *testing.T) {
	set, _, plat := buildSet(t, testConfigs)
	res, err := set.Replay(NewOctopusReplay(plat), hw.Config{Little: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeS <= 0 || res.EnergyJ <= 0 {
		t.Errorf("octopus replay degenerate: %+v", res)
	}
}

func TestReplayRejectsUnrecordedStart(t *testing.T) {
	set, _, _ := buildSet(t, testConfigs[:2])
	if _, err := set.Replay(OracleT(), hw.Config{Big: 3}); err == nil {
		t.Fatal("unrecorded start config accepted")
	}
}

func TestHipsterReplayIgnoresPhases(t *testing.T) {
	plat := hw.OdroidXU4()
	agent := rl.NewDQN(plat.NumConfigs(), rl.DQNConfig{Seed: 17})
	h := NewHipsterReplay(agent, plat, false)
	rowA := Row{ProgPhase: features.PhaseCPUBound, HWPhaseID: 5}
	rowB := Row{ProgPhase: features.PhaseBlocked, HWPhaseID: 5}
	cfg := plat.AllOn()
	a := h.Choose(nil, 0, cfg, rowA)
	h.Reset()
	b := h.Choose(nil, 0, cfg, rowB)
	if a != b {
		t.Error("hipster must not distinguish program phases")
	}
}

// Package trace implements the paper's simulated-environment methodology
// (Sec. 4.1): record one execution trace per hardware configuration, then
// combine the 24 traces by choosing, at each checkpoint, which
// configuration's behaviour to consume. Different choice policies yield the
// oracles (optimal energy / optimal time), the fixed and random baselines,
// and replay-trained Astro/Hipster/Octopus-Man.
package trace

import (
	"fmt"
	"math"

	"astro/internal/features"
	"astro/internal/hw"
	"astro/internal/ir"
	"astro/internal/perfmon"
	"astro/internal/sim"
)

// Row is one checkpoint's worth of recorded behaviour under a fixed
// configuration.
type Row struct {
	Index     int
	DurS      float64
	EnergyJ   float64
	Instr     uint64
	ProgPhase features.Phase
	HWPhaseID int
	HW        perfmon.Counters
}

// MIPS returns the row's instruction rate.
func (r Row) MIPS() float64 {
	if r.DurS == 0 {
		return 0
	}
	return float64(r.Instr) / r.DurS / 1e6
}

// Watts returns the row's average power.
func (r Row) Watts() float64 {
	if r.DurS == 0 {
		return 0
	}
	return r.EnergyJ / r.DurS
}

// Trace is a full fixed-configuration execution.
type Trace struct {
	Config      hw.Config
	Rows        []Row
	TotalInstr  uint64
	TotalTimeS  float64
	TotalEnergy float64

	cumFrac []float64 // cumFrac[i] = fraction of instructions before row i
}

func (tr *Trace) buildIndex() {
	tr.cumFrac = make([]float64, len(tr.Rows)+1)
	var cum uint64
	for i, r := range tr.Rows {
		tr.cumFrac[i] = float64(cum) / float64(tr.TotalInstr)
		cum += r.Instr
	}
	tr.cumFrac[len(tr.Rows)] = float64(cum) / float64(tr.TotalInstr)
}

// rowAt returns the row covering normalized progress p in [0,1) and the
// fraction of the whole program that row covers.
func (tr *Trace) rowAt(p float64) (Row, float64, float64) {
	// Binary search over cumFrac.
	lo, hi := 0, len(tr.Rows)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if tr.cumFrac[mid] <= p {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	frac := tr.cumFrac[lo+1] - tr.cumFrac[lo]
	return tr.Rows[lo], tr.cumFrac[lo], frac
}

// Record runs mod pinned to cfg and converts the checkpoint log into a
// trace. The tail of execution past the last checkpoint becomes a final
// synthetic row so that rows account for the whole run.
func Record(mod *ir.Module, plat *hw.Platform, cfg hw.Config, opts sim.Options) (*Trace, error) {
	opts.InitialConfig = cfg
	opts.Actuator = nil
	m, err := sim.New(mod, plat, opts)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	res, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("trace: config %v: %w", cfg, err)
	}
	tr := &Trace{Config: cfg, TotalInstr: res.Instructions, TotalTimeS: res.TimeS, TotalEnergy: res.EnergyJ}
	var instrSeen uint64
	var timeSeen, energySeen float64
	for _, ck := range res.Checkpoints {
		tr.Rows = append(tr.Rows, Row{
			Index:     ck.Index,
			DurS:      ck.DurS,
			EnergyJ:   ck.EnergyJ,
			Instr:     ck.HW.Instructions,
			ProgPhase: ck.ProgPhase,
			HWPhaseID: ck.HWPhase.ID(),
			HW:        ck.HW,
		})
		instrSeen += ck.HW.Instructions
		timeSeen += ck.DurS
		energySeen += ck.EnergyJ
	}
	if res.Instructions > instrSeen {
		last := Row{
			Index:     len(tr.Rows),
			DurS:      maxf(res.TimeS-timeSeen, 1e-9),
			EnergyJ:   maxf(res.EnergyJ-energySeen, 0),
			Instr:     res.Instructions - instrSeen,
			ProgPhase: features.PhaseOther,
		}
		if n := len(res.Checkpoints); n > 0 {
			last.ProgPhase = res.Checkpoints[n-1].ProgPhase
			last.HWPhaseID = res.Checkpoints[n-1].HWPhase.ID()
			last.HW = res.Checkpoints[n-1].HW
		}
		tr.Rows = append(tr.Rows, last)
	}
	if len(tr.Rows) == 0 || tr.TotalInstr == 0 {
		return nil, fmt.Errorf("trace: config %v produced an empty trace", cfg)
	}
	tr.buildIndex()
	return tr, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Set holds one trace per configuration for a single program+input.
type Set struct {
	Plat   *hw.Platform
	Traces map[int]*Trace // keyed by config id
	Work   uint64         // reference instruction total
}

// RecordSet records traces for every configuration in configs (all 24 by
// default if configs is nil). This is the expensive exhaustive step the
// paper performs once, for fluidanimate.
func RecordSet(mod *ir.Module, plat *hw.Platform, opts sim.Options, configs []hw.Config) (*Set, error) {
	if configs == nil {
		configs = plat.Configs()
	}
	s := &Set{Plat: plat, Traces: map[int]*Trace{}}
	for _, cfg := range configs {
		tr, err := Record(mod, plat, cfg, opts)
		if err != nil {
			return nil, err
		}
		s.Traces[plat.ConfigID(cfg)] = tr
		if s.Work == 0 {
			s.Work = tr.TotalInstr
		}
	}
	return s, nil
}

// Configs lists the recorded configuration ids.
func (s *Set) Configs() []int {
	var ids []int
	for id := 0; id < s.Plat.NumConfigs(); id++ {
		if _, ok := s.Traces[id]; ok {
			ids = append(ids, id)
		}
	}
	return ids
}

// Policy chooses the configuration to consume next during replay.
type Policy interface {
	Name() string
	// Choose inspects the row just consumed (under cur) and returns the
	// next configuration. step counts consumed rows.
	Choose(s *Set, step int, cur hw.Config, last Row) hw.Config
	// Reset is called at the start of each replay episode.
	Reset()
}

// ReplayResult is a simulated execution assembled from trace rows.
type ReplayResult struct {
	TimeS    float64
	EnergyJ  float64
	Switches int
	Steps    int
}

// Replay assembles an execution by consuming trace rows under pol,
// charging the platform's switch latency (at the average of the two
// configurations' recorded power) for every configuration change.
func (s *Set) Replay(pol Policy, start hw.Config) (ReplayResult, error) {
	pol.Reset()
	cur := start
	if _, ok := s.Traces[s.Plat.ConfigID(cur)]; !ok {
		return ReplayResult{}, fmt.Errorf("trace: start config %v not recorded", cur)
	}
	var out ReplayResult
	p := 0.0
	const eps = 1e-12
	maxRows := 0
	for _, tr := range s.Traces {
		if len(tr.Rows) > maxRows {
			maxRows = len(tr.Rows)
		}
	}
	stepCap := 50*maxRows*s.Plat.NumConfigs() + 10000
	for p < 1-eps {
		tr := s.Traces[s.Plat.ConfigID(cur)]
		row, rowStart, frac := tr.rowAt(p)
		if frac <= 0 {
			return out, fmt.Errorf("trace: empty row at progress %v in %v", p, cur)
		}
		// Consume the remainder of this row. Progress and row boundaries
		// come from different traces, so clamp the overlap into [0, 1] and
		// force strictly increasing progress (a switch can land p a few
		// ulps past the new trace's row end).
		into := (p - rowStart) / frac
		if into < 0 {
			into = 0
		}
		if into > 1 {
			into = 1
		}
		portion := 1 - into
		out.TimeS += row.DurS * portion
		out.EnergyJ += row.EnergyJ * portion
		np := rowStart + frac
		if np <= p {
			np = math.Nextafter(p, 2)
		}
		p = np
		out.Steps++
		if out.Steps > stepCap {
			return out, fmt.Errorf("trace: replay did not converge (%d steps)", out.Steps)
		}
		next := pol.Choose(s, out.Steps, cur, row)
		if _, ok := s.Traces[s.Plat.ConfigID(next)]; !ok {
			next = cur // policies may only pick recorded configs
		}
		if next != cur {
			lat := float64(s.Plat.SwitchLatencyUs) * 1e-6
			out.TimeS += lat
			out.EnergyJ += lat * (row.Watts() + s.Plat.IdleConfigPower(next)) / 2
			out.Switches++
			cur = next
		}
	}
	return out, nil
}

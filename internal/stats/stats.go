// Package stats provides the descriptive statistics and two-sample
// significance tests behind the paper's Fig. 10, which reports p-values for
// Astro's static and hybrid variants against GTS. Both a Welch t-test and a
// Mann-Whitney U test are provided; everything is implemented from scratch
// on the standard library.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the middle value (average of the two middle values for
// even lengths; 0 for empty input).
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MinMax returns the extremes (0,0 for empty input).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Summary bundles descriptive statistics of a sample. The JSON form feeds
// the campaign engine's aggregated result sets.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	SD     float64 `json:"sd"`
	Median float64 `json:"median"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	min, max := MinMax(xs)
	return Summary{
		N: len(xs), Mean: Mean(xs), SD: StdDev(xs),
		Median: Median(xs), Min: min, Max: max,
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g median=%.4g range=[%.4g, %.4g]",
		s.N, s.Mean, s.SD, s.Median, s.Min, s.Max)
}

// normCDF is the standard normal CDF.
func normCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// WelchT performs a two-sided Welch t-test and returns the t statistic,
// degrees of freedom and p-value. Degenerate inputs (n<2 or zero variance in
// both samples) return p=1 when means are equal and p=0 otherwise.
func WelchT(a, b []float64) (t, df, p float64) {
	n1, n2 := float64(len(a)), float64(len(b))
	if n1 < 2 || n2 < 2 {
		if Mean(a) == Mean(b) {
			return 0, 0, 1
		}
		return math.Inf(1), 0, 0
	}
	m1, m2 := Mean(a), Mean(b)
	v1, v2 := Variance(a), Variance(b)
	se2 := v1/n1 + v2/n2
	if se2 == 0 {
		if m1 == m2 {
			return 0, n1 + n2 - 2, 1
		}
		return math.Inf(1), n1 + n2 - 2, 0
	}
	t = (m1 - m2) / math.Sqrt(se2)
	df = se2 * se2 / ((v1*v1)/(n1*n1*(n1-1)) + (v2*v2)/(n2*n2*(n2-1)))
	p = tTestP(t, df)
	return t, df, p
}

// tTestP returns the two-sided p-value of a t statistic with df degrees of
// freedom: p = I_{df/(df+t^2)}(df/2, 1/2).
func tTestP(t, df float64) float64 {
	if math.IsInf(t, 0) {
		return 0
	}
	x := df / (df + t*t)
	p := RegIncBeta(df/2, 0.5, x)
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// via the standard continued-fraction expansion.
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lg1, _ := math.Lgamma(a + b)
	lg2, _ := math.Lgamma(a)
	lg3, _ := math.Lgamma(b)
	front := math.Exp(lg1 - lg2 - lg3 + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// (Lentz's algorithm).
func betaCF(a, b, x float64) float64 {
	const maxIter = 300
	const eps = 3e-14
	const fpmin = 1e-300
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// MannWhitneyU performs a two-sided Mann-Whitney U test using the normal
// approximation with tie correction and continuity correction. It returns
// the U statistic (for sample a) and the p-value. Samples of size < 3 fall
// back to p=1 (the approximation is meaningless there).
func MannWhitneyU(a, b []float64) (u, p float64) {
	n1, n2 := len(a), len(b)
	if n1 == 0 || n2 == 0 {
		return 0, 1
	}
	type obs struct {
		v    float64
		from int
	}
	all := make([]obs, 0, n1+n2)
	for _, x := range a {
		all = append(all, obs{x, 0})
	}
	for _, x := range b {
		all = append(all, obs{x, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Average ranks with tie groups; accumulate tie correction.
	n := len(all)
	ranks := make([]float64, n)
	var tieCorr float64
	for i := 0; i < n; {
		j := i
		for j < n && all[j].v == all[i].v {
			j++
		}
		r := float64(i+j+1) / 2 // average of ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = r
		}
		t := float64(j - i)
		tieCorr += t*t*t - t
		i = j
	}
	var r1 float64
	for i, o := range all {
		if o.from == 0 {
			r1 += ranks[i]
		}
	}
	u = r1 - float64(n1)*float64(n1+1)/2
	if n1 < 3 || n2 < 3 {
		return u, 1
	}
	nf, n1f, n2f := float64(n), float64(n1), float64(n2)
	mean := n1f * n2f / 2
	variance := n1f * n2f / 12 * ((nf + 1) - tieCorr/(nf*(nf-1)))
	if variance <= 0 {
		return u, 1
	}
	z := u - mean
	// Continuity correction toward the mean.
	switch {
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= math.Sqrt(variance)
	p = 2 * (1 - normCDF(math.Abs(z)))
	if p > 1 {
		p = 1
	}
	return u, p
}

package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDescriptive(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Mean(xs), 5, 1e-12) {
		t.Errorf("mean = %v", Mean(xs))
	}
	// Sample variance: sum sq dev = 32, n-1 = 7.
	if !almost(Variance(xs), 32.0/7, 1e-12) {
		t.Errorf("variance = %v", Variance(xs))
	}
	if !almost(Median(xs), 4.5, 1e-12) {
		t.Errorf("median = %v", Median(xs))
	}
	min, max := MinMax(xs)
	if min != 2 || max != 9 {
		t.Errorf("minmax = %v %v", min, max)
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	s := Summarize(xs)
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("summary %+v", s)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
	// Degenerate inputs.
	if Mean(nil) != 0 || Variance(nil) != 0 || Median(nil) != 0 {
		t.Error("empty input stats should be zero")
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x, want float64
	}{
		{1, 1, 0.5, 0.5},       // uniform CDF
		{1, 1, 0.25, 0.25},     // uniform CDF
		{2, 1, 0.5, 0.25},      // I_x(a,1) = x^a
		{1, 3, 0.3, 1 - 0.343}, // I_x(1,b) = 1-(1-x)^b
		{0.5, 0.5, 0.5, 0.5},   // arcsine distribution symmetry
		{5, 5, 0.5, 0.5},       // symmetry at a==b
	}
	for _, c := range cases {
		got := RegIncBeta(c.a, c.b, c.x)
		if !almost(got, c.want, 1e-10) {
			t.Errorf("I_%v(%v,%v) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Error("boundaries")
	}
}

func TestRegIncBetaComplementProperty(t *testing.T) {
	f := func(a8, b8, x8 uint8) bool {
		a := 0.5 + float64(a8%40)/4
		b := 0.5 + float64(b8%40)/4
		x := float64(x8%99+1) / 100
		lhs := RegIncBeta(a, b, x)
		rhs := 1 - RegIncBeta(b, a, 1-x)
		return almost(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelchTKnownValue(t *testing.T) {
	// Classic example: two small samples with a clear difference.
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.0, 23.9}
	tt, df, p := WelchT(a, b)
	// Reference values computed independently (Welch formulas by hand):
	// t = -2.835264, df = 27.71363; two-sided p from t tables ~ 0.0085.
	if !almost(tt, -2.835264, 1e-5) {
		t.Errorf("t = %v, want ~-2.835264", tt)
	}
	if !almost(df, 27.71363, 1e-4) {
		t.Errorf("df = %v, want ~27.71363", df)
	}
	if !almost(p, 0.0085, 0.0005) {
		t.Errorf("p = %v, want ~0.0085", p)
	}
}

func TestWelchTIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	tt, _, p := WelchT(a, a)
	if tt != 0 || p < 0.99 {
		t.Errorf("identical samples: t=%v p=%v", tt, p)
	}
}

func TestWelchTSymmetry(t *testing.T) {
	a := []float64{1.2, 3.4, 2.2, 4.8, 3.3}
	b := []float64{2.1, 5.3, 4.4, 6.2, 5.0}
	t1, _, p1 := WelchT(a, b)
	t2, _, p2 := WelchT(b, a)
	if !almost(t1, -t2, 1e-12) || !almost(p1, p2, 1e-12) {
		t.Errorf("asymmetric: (%v,%v) vs (%v,%v)", t1, p1, t2, p2)
	}
}

func TestWelchTDegenerate(t *testing.T) {
	if _, _, p := WelchT([]float64{1}, []float64{1, 2, 3}); p != 0 && p != 1 {
		t.Errorf("tiny sample p = %v", p)
	}
	// Zero variance, equal means.
	if _, _, p := WelchT([]float64{2, 2, 2}, []float64{2, 2, 2}); p != 1 {
		t.Errorf("constant equal p = %v", p)
	}
	// Zero variance, different means.
	if _, _, p := WelchT([]float64{2, 2, 2}, []float64{3, 3, 3}); p != 0 {
		t.Errorf("constant different p = %v", p)
	}
}

func TestMannWhitneyKnownBehaviour(t *testing.T) {
	// Clearly separated samples -> tiny p.
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b := []float64{101, 102, 103, 104, 105, 106, 107, 108}
	u, p := MannWhitneyU(a, b)
	if u != 0 {
		t.Errorf("U = %v, want 0 (complete separation)", u)
	}
	if p > 0.001 {
		t.Errorf("p = %v, want < 0.001", p)
	}
	// Interleaved samples -> large p.
	c := []float64{1, 3, 5, 7, 9, 11, 13, 15}
	d := []float64{2, 4, 6, 8, 10, 12, 14, 16}
	_, p2 := MannWhitneyU(c, d)
	if p2 < 0.5 {
		t.Errorf("interleaved p = %v, want large", p2)
	}
}

func TestMannWhitneySymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n1, n2 := 3+rng.Intn(10), 3+rng.Intn(10)
		a := make([]float64, n1)
		b := make([]float64, n2)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64() + 0.5
		}
		u1, p1 := MannWhitneyU(a, b)
		u2, p2 := MannWhitneyU(b, a)
		if !almost(p1, p2, 1e-9) {
			t.Fatalf("p asymmetric: %v vs %v", p1, p2)
		}
		// U1 + U2 = n1*n2.
		if !almost(u1+u2, float64(n1*n2), 1e-9) {
			t.Fatalf("U1+U2 = %v, want %v", u1+u2, n1*n2)
		}
		if p1 < 0 || p1 > 1 {
			t.Fatalf("p out of range: %v", p1)
		}
	}
}

func TestMannWhitneyTies(t *testing.T) {
	a := []float64{1, 1, 2, 2, 3, 3}
	b := []float64{2, 2, 3, 3, 4, 4}
	_, p := MannWhitneyU(a, b)
	if p <= 0 || p > 1 {
		t.Errorf("tied p = %v", p)
	}
	// All identical: maximal p.
	c := []float64{5, 5, 5, 5}
	_, p2 := MannWhitneyU(c, c)
	if p2 < 0.9 {
		t.Errorf("identical-ties p = %v", p2)
	}
}

func TestSignificanceMatchesEffectSize(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	gen := func(mean float64, n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = mean + rng.NormFloat64()
		}
		return xs
	}
	// Big effect vs no effect: both tests must rank them consistently.
	a := gen(0, 20)
	big := gen(3, 20)
	same := gen(0, 20)
	_, _, pBigT := WelchT(a, big)
	_, _, pSameT := WelchT(a, same)
	if !(pBigT < pSameT) {
		t.Errorf("welch: big-effect p %v !< no-effect p %v", pBigT, pSameT)
	}
	_, pBigU := MannWhitneyU(a, big)
	_, pSameU := MannWhitneyU(a, same)
	if !(pBigU < pSameU) {
		t.Errorf("mann-whitney: big-effect p %v !< no-effect p %v", pBigU, pSameU)
	}
	if pBigT > 0.01 || pBigU > 0.01 {
		t.Errorf("3-sigma shift not significant: t=%v u=%v", pBigT, pBigU)
	}
}

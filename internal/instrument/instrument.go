// Package instrument implements the paper's three instrumentation modes
// (Sec. 3.1.1, 3.3 and Fig. 8):
//
//   - Learning: log the static program phase at every function entry and
//     toggle the blocking flag around long-latency library calls, so the
//     Astro runtime can observe phases while training (Fig. 8a).
//   - Static: imprint a trained policy into the binary by requesting the
//     phase's best hardware configuration at the same points (Fig. 8b).
//   - Hybrid: emit determine-configuration calls that combine the static
//     phase hint with runtime hardware state (Fig. 8c).
//
// Passes never mutate their input: they deep-copy the module (via the
// binary codec) and return the instrumented copy. The package also provides
// the code-size accounting behind the paper's Fig. 11.
package instrument

import (
	"fmt"

	"astro/internal/features"
	"astro/internal/hw"
	"astro/internal/ir"
)

// Policy maps each static program phase to the hardware configuration that
// produced the best rewards during training (the paper's
// determine_active_configuration table).
type Policy struct {
	PerPhase [features.NumPhases]hw.Config
}

// Validate checks the policy against a platform.
func (p *Policy) Validate(plat *hw.Platform) error {
	for ph, cfg := range p.PerPhase {
		if !cfg.Valid(plat.MaxLittle(), plat.MaxBig()) {
			return fmt.Errorf("instrument: policy has invalid config %v for phase %v",
				cfg, features.Phase(ph))
		}
	}
	return nil
}

// Mode selects the instrumentation flavor.
type Mode uint8

const (
	Learning Mode = iota
	Static
	Hybrid
)

func (m Mode) String() string {
	switch m {
	case Learning:
		return "learning"
	case Static:
		return "static"
	case Hybrid:
		return "hybrid"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// longBlocking reports whether a builtin call is a long-latency blocker
// worth a phase toggle. Short buffered file reads and lock operations are
// excluded: their cost is microseconds, so tracking state around them would
// cost more than it informs (the trade-off the paper discusses for small
// inputs).
func longBlocking(id ir.BuiltinID) bool {
	switch id {
	case ir.BReadUserData, ir.BSleepMs, ir.BNetRecv, ir.BNetSend, ir.BBarrierWait, ir.BJoin:
		return true
	}
	return false
}

// configWorthy reports whether a blocking call's wait is predictably long
// enough to pay for a hardware reconfiguration (Fig. 8b's pattern around
// read_user_data). Barrier waits and joins get phase toggles only: their
// duration is data-dependent and switching around every barrier of an
// iterative kernel would thrash the hardware — the cost the paper notes can
// "overshadow the possible gains" on small inputs.
func configWorthy(id ir.BuiltinID) bool {
	switch id {
	case ir.BReadUserData, ir.BSleepMs, ir.BNetRecv, ir.BNetSend:
		return true
	}
	return false
}

// ForLearning returns a copy of mod instrumented for the training phase.
func ForLearning(mod *ir.Module, mi *features.ModuleInfo) (*ir.Module, error) {
	return apply(mod, mi, Learning, nil, nil)
}

// ForStatic returns a copy of mod with the trained policy imprinted as
// static configuration requests.
func ForStatic(mod *ir.Module, mi *features.ModuleInfo, plat *hw.Platform, pol *Policy) (*ir.Module, error) {
	if err := pol.Validate(plat); err != nil {
		return nil, err
	}
	return apply(mod, mi, Static, plat, pol)
}

// ForHybrid returns a copy of mod with determine-configuration calls that
// consult the resident policy at run time.
func ForHybrid(mod *ir.Module, mi *features.ModuleInfo) (*ir.Module, error) {
	return apply(mod, mi, Hybrid, nil, nil)
}

func apply(mod *ir.Module, mi *features.ModuleInfo, mode Mode, plat *hw.Platform, pol *Policy) (*ir.Module, error) {
	if mi.Module != mod {
		return nil, fmt.Errorf("instrument: feature info is for module %q, not %q", mi.Module.Name, mod.Name)
	}
	out, err := ir.Decode(ir.Encode(mod)) // deep copy
	if err != nil {
		return nil, fmt.Errorf("instrument: clone failed: %w", err)
	}
	for fi, f := range out.Funcs {
		phase := mi.Funcs[fi].Phase
		for _, blk := range f.Blocks {
			blk.Instrs = rewriteBlock(blk.Instrs, blk.ID == 0, phase, mode, plat, pol)
		}
	}
	if err := ir.Verify(out); err != nil {
		return nil, fmt.Errorf("instrument: instrumented module invalid: %w", err)
	}
	return out, nil
}

// entryOps returns the instrumentation prologue for a function of the given
// phase.
func entryOps(phase features.Phase, mode Mode, plat *hw.Platform, pol *Policy) []ir.Instr {
	switch mode {
	case Learning:
		return []ir.Instr{logPhase(phase)}
	case Static:
		return []ir.Instr{setConfig(plat, pol.PerPhase[phase]), logPhase(phase)}
	default: // Hybrid
		return []ir.Instr{determineConf(phase)}
	}
}

// blockerOps returns the ops inserted before/after a long blocking call.
// Configuration requests are added only when reconfigure is true.
func blockerOps(enclosing features.Phase, mode Mode, plat *hw.Platform, pol *Policy, reconfigure bool) (pre, post []ir.Instr) {
	pre = []ir.Instr{toggleBlocked(true)}
	post = []ir.Instr{toggleBlocked(false)}
	if !reconfigure {
		return pre, post
	}
	switch mode {
	case Static:
		pre = append(pre, setConfig(plat, pol.PerPhase[features.PhaseBlocked]))
		post = append(post, setConfig(plat, pol.PerPhase[enclosing]))
	case Hybrid:
		pre = append(pre, determineConf(features.PhaseBlocked))
		post = append(post, determineConf(enclosing))
	}
	return pre, post
}

func rewriteBlock(instrs []ir.Instr, isEntry bool, phase features.Phase, mode Mode, plat *hw.Platform, pol *Policy) []ir.Instr {
	out := make([]ir.Instr, 0, len(instrs)+4)
	if isEntry {
		out = append(out, entryOps(phase, mode, plat, pol)...)
	}
	for _, in := range instrs {
		if in.Op == ir.OpBuiltin && longBlocking(ir.BuiltinID(in.Sym)) {
			pre, post := blockerOps(phase, mode, plat, pol, configWorthy(ir.BuiltinID(in.Sym)))
			out = append(out, pre...)
			out = append(out, in)
			out = append(out, post...)
			continue
		}
		out = append(out, in)
	}
	return out
}

func logPhase(p features.Phase) ir.Instr {
	return ir.Instr{Op: ir.OpLogPhase, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Sym: -1, Imm: int64(p)}
}

func toggleBlocked(on bool) ir.Instr {
	v := int64(0)
	if on {
		v = 1
	}
	return ir.Instr{Op: ir.OpToggleBlocked, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Sym: -1, Imm: v}
}

func setConfig(plat *hw.Platform, cfg hw.Config) ir.Instr {
	return ir.Instr{Op: ir.OpSetConfig, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Sym: -1, Imm: int64(plat.ConfigID(cfg))}
}

func determineConf(p features.Phase) ir.Instr {
	return ir.Instr{Op: ir.OpDetermineConf, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Sym: -1, Imm: int64(p)}
}

// RuntimeLibBytes approximates the size of the Astro runtime library linked
// into final binaries (monitoring, NN inference, actuation). The paper's
// Fig. 11 shows this dominating the size increase, roughly constant across
// benchmarks.
const RuntimeLibBytes = 52 * 1024

// SizeReport is the Fig. 11 accounting for one benchmark.
type SizeReport struct {
	Name         string
	Original     int // plain binary
	Learning     int // learning instrumentation, statically linked, no lib
	Instrumented int // static/hybrid instrumentation + runtime library
}

// Sizes computes the code-size report for a module. Static and hybrid
// binaries differ by a handful of bytes (as in the paper), so one column
// covers both; we use the static flavor with a trivial policy.
func Sizes(mod *ir.Module, mi *features.ModuleInfo, plat *hw.Platform) (SizeReport, error) {
	rep := SizeReport{Name: mod.Name, Original: ir.EncodedSize(mod)}
	learn, err := ForLearning(mod, mi)
	if err != nil {
		return rep, err
	}
	rep.Learning = ir.EncodedSize(learn)
	pol := &Policy{}
	for i := range pol.PerPhase {
		pol.PerPhase[i] = plat.AllOn()
	}
	static, err := ForStatic(mod, mi, plat, pol)
	if err != nil {
		return rep, err
	}
	rep.Instrumented = ir.EncodedSize(static) + RuntimeLibBytes
	return rep, nil
}

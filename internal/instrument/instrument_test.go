package instrument

import (
	"strings"
	"testing"

	"astro/internal/features"
	"astro/internal/hw"
	"astro/internal/ir"
	"astro/internal/lang"
)

const testSrc = `
var data [256]float;
barrier gate;

func compute(n int) float {
	var acc float = 0.0;
	var i int;
	for (i = 0; i < n; i = i + 1) {
		acc = acc + float(i) * 1.5 - acc / 2.5;
	}
	return acc;
}

func waits() {
	read_user_data();
	sleep_ms(3);
	barrier_wait(gate);
}

func main(scale int, threads int) {
	barrier_init(gate, 1);
	print_float(compute(scale));
	waits();
}
`

func setup(t *testing.T) (*ir.Module, *features.ModuleInfo) {
	t.Helper()
	mod, err := lang.Compile("bench", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	return mod, features.AnalyzeModule(mod, features.Options{})
}

func countOps(m *ir.Module, op ir.Opcode) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == op {
					n++
				}
			}
		}
	}
	return n
}

func trivialPolicy(plat *hw.Platform) *Policy {
	p := &Policy{}
	p.PerPhase[features.PhaseOther] = hw.Config{Little: 2, Big: 2}
	p.PerPhase[features.PhaseBlocked] = hw.Config{Little: 1}
	p.PerPhase[features.PhaseIOBound] = hw.Config{Little: 2}
	p.PerPhase[features.PhaseCPUBound] = hw.Config{Big: 4}
	return p
}

func TestForLearningInsertsLogsAndToggles(t *testing.T) {
	mod, mi := setup(t)
	out, err := ForLearning(mod, mi)
	if err != nil {
		t.Fatal(err)
	}
	if got := countOps(out, ir.OpLogPhase); got != len(mod.Funcs) {
		t.Errorf("logphase count = %d, want %d (one per function)", got, len(mod.Funcs))
	}
	// waits() has 3 long blockers; main has print (not long) and the
	// instrumented calls; expect 2 toggles per long blocker.
	if got := countOps(out, ir.OpToggleBlocked); got != 6 {
		t.Errorf("toggle count = %d, want 6", got)
	}
	// Original module untouched.
	if countOps(mod, ir.OpLogPhase) != 0 {
		t.Error("input module was mutated")
	}
	if err := ir.Verify(out); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestForStaticInsertsSetConfig(t *testing.T) {
	mod, mi := setup(t)
	plat := hw.OdroidXU4()
	out, err := ForStatic(mod, mi, plat, trivialPolicy(plat))
	if err != nil {
		t.Fatal(err)
	}
	// One per function entry + 2 per config-worthy blocker (before/after):
	// read_user_data and sleep_ms qualify; barrier_wait gets toggles only.
	want := len(mod.Funcs) + 2*2
	if got := countOps(out, ir.OpSetConfig); got != want {
		t.Errorf("setconfig count = %d, want %d", got, want)
	}
	if got := countOps(out, ir.OpDetermineConf); got != 0 {
		t.Errorf("static must not contain determineconf, got %d", got)
	}
	// The compute function is CPU bound: its entry must request Big:4.
	ci := mod.FuncIndex["compute"]
	if mi.Funcs[ci].Phase != features.PhaseCPUBound {
		t.Fatalf("compute phase = %v", mi.Funcs[ci].Phase)
	}
	entry := out.Funcs[ci].Blocks[0].Instrs[0]
	if entry.Op != ir.OpSetConfig {
		t.Fatalf("compute entry op = %v", entry.Op.Name())
	}
	wantID := plat.ConfigID(hw.Config{Big: 4})
	if entry.Imm != int64(wantID) {
		t.Errorf("compute entry config id = %d, want %d", entry.Imm, wantID)
	}
}

func TestForHybridInsertsDetermineConf(t *testing.T) {
	mod, mi := setup(t)
	out, err := ForHybrid(mod, mi)
	if err != nil {
		t.Fatal(err)
	}
	want := len(mod.Funcs) + 2*2
	if got := countOps(out, ir.OpDetermineConf); got != want {
		t.Errorf("determineconf count = %d, want %d", got, want)
	}
	if got := countOps(out, ir.OpSetConfig); got != 0 {
		t.Errorf("hybrid must not contain setconfig, got %d", got)
	}
	// Blocker pre-op must carry the Blocked phase hint.
	wi := mod.FuncIndex["waits"]
	var hints []int64
	for _, b := range out.Funcs[wi].Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpDetermineConf {
				hints = append(hints, b.Instrs[i].Imm)
			}
		}
	}
	foundBlocked := false
	for _, h := range hints {
		if features.Phase(h) == features.PhaseBlocked {
			foundBlocked = true
		}
	}
	if !foundBlocked {
		t.Errorf("no Blocked hints in waits(): %v", hints)
	}
}

func TestPolicyValidation(t *testing.T) {
	mod, mi := setup(t)
	plat := hw.OdroidXU4()
	bad := &Policy{} // zero configs are invalid (0L0B)
	if _, err := ForStatic(mod, mi, plat, bad); err == nil {
		t.Fatal("invalid policy accepted")
	} else if !strings.Contains(err.Error(), "invalid config") {
		t.Fatalf("error = %v", err)
	}
}

func TestMismatchedFeatureInfoRejected(t *testing.T) {
	mod, _ := setup(t)
	other, err := lang.Compile("other", `func main() { }`)
	if err != nil {
		t.Fatal(err)
	}
	otherInfo := features.AnalyzeModule(other, features.Options{})
	if _, err := ForLearning(mod, otherInfo); err == nil {
		t.Fatal("mismatched module accepted")
	}
}

func TestSizesOrdering(t *testing.T) {
	mod, mi := setup(t)
	rep, err := Sizes(mod, mi, hw.OdroidXU4())
	if err != nil {
		t.Fatal(err)
	}
	if !(rep.Original < rep.Learning) {
		t.Errorf("learning (%d) must exceed original (%d)", rep.Learning, rep.Original)
	}
	if !(rep.Learning < rep.Instrumented) {
		t.Errorf("instrumented (%d) must exceed learning (%d)", rep.Instrumented, rep.Learning)
	}
	// The runtime library dominates, as in Fig. 11.
	if rep.Instrumented-rep.Original < RuntimeLibBytes {
		t.Errorf("instrumented growth %d < library size %d", rep.Instrumented-rep.Original, RuntimeLibBytes)
	}
	// Instrumentation growth without the library is small relative to it.
	growth := rep.Learning - rep.Original
	if growth <= 0 || growth > RuntimeLibBytes/4 {
		t.Errorf("learning growth = %d bytes, want small positive", growth)
	}
}

func TestModesString(t *testing.T) {
	if Learning.String() != "learning" || Static.String() != "static" || Hybrid.String() != "hybrid" {
		t.Error("mode strings")
	}
}

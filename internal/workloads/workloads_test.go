package workloads

import (
	"testing"

	"astro/internal/features"
	"astro/internal/hw"
	"astro/internal/ir"
	"astro/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	want := []string{
		"bfs", "blackscholes", "bodytrack", "cfd", "facesim", "ferret",
		"fluidanimate", "freqmine", "hotspot", "hotspot3d", "matrixmul",
		"particlefilter", "spin", "sradv2", "streamcluster", "swaptions", "vips",
	}
	if len(names) != len(want) {
		t.Fatalf("registry has %d entries, want %d: %v", len(names), len(want), names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	if len(Suite("parsec")) != 9 {
		t.Errorf("parsec suite size %d", len(Suite("parsec")))
	}
	if len(Suite("rodinia")) != 6 {
		t.Errorf("rodinia suite size %d", len(Suite("rodinia")))
	}
	if _, ok := ByName("freqmine"); !ok {
		t.Error("ByName(freqmine) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
}

func TestAllBenchmarksCompileAndVerify(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			mod, err := s.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if err := ir.Verify(mod); err != nil {
				t.Fatalf("verify: %v", err)
			}
			if mod.FuncByName("main") == nil {
				t.Fatal("no main")
			}
		})
	}
}

func TestAllBenchmarksRunAtSmallScale(t *testing.T) {
	plat := hw.OdroidXU4()
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			mod, err := s.Compile()
			if err != nil {
				t.Fatal(err)
			}
			m, err := sim.New(mod, plat, sim.Options{
				Args: s.SmallArgs(),
				Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.TimeS <= 0 || res.EnergyJ <= 0 || res.Instructions == 0 {
				t.Errorf("degenerate result: %+v", res)
			}
		})
	}
}

func TestBenchmarksAreDeterministic(t *testing.T) {
	plat := hw.OdroidXU4()
	for _, name := range []string{"fluidanimate", "bfs", "particlefilter"} {
		s, _ := ByName(name)
		mod, err := s.Compile()
		if err != nil {
			t.Fatal(err)
		}
		runOnce := func() (*sim.Result, error) {
			m, err := sim.New(mod, plat, sim.Options{Args: s.SmallArgs(), Seed: 3})
			if err != nil {
				return nil, err
			}
			return m.Run()
		}
		a, err := runOnce()
		if err != nil {
			t.Fatal(err)
		}
		b, err := runOnce()
		if err != nil {
			t.Fatal(err)
		}
		if a.TimeS != b.TimeS || a.EnergyJ != b.EnergyJ || a.Instructions != b.Instructions {
			t.Errorf("%s not deterministic", name)
		}
	}
}

// TestPhaseDiversity checks that the suite exposes all program phases to
// the scheduler: CPU-bound kernels, IO-bound readers and blocked waiters.
func TestPhaseDiversity(t *testing.T) {
	seen := map[features.Phase]string{}
	for _, s := range All() {
		mod, err := s.Compile()
		if err != nil {
			t.Fatal(err)
		}
		mi := features.AnalyzeModule(mod, features.Options{})
		for _, fi := range mi.Funcs {
			if _, ok := seen[fi.Phase]; !ok {
				seen[fi.Phase] = s.Name + "." + fi.Name
			}
		}
	}
	for p := features.Phase(0); p < features.NumPhases; p++ {
		if _, ok := seen[p]; !ok {
			t.Errorf("no benchmark function classifies as %v", p)
		}
	}
	t.Logf("phase witnesses: %v", seen)
}

// TestRegisterUnregister covers the runtime registration path used by
// generated scenario programs.
func TestRegisterUnregister(t *testing.T) {
	src := `func main(scale int, threads int) { print_int(scale); }`
	spec := Spec{Name: "scn-test-reg", Suite: "scenario", Source: src,
		DefaultScale: 1, SmallScale: 1, Threads: 1}
	if err := Register(spec); err != nil {
		t.Fatal(err)
	}
	defer Unregister(spec.Name)

	// Duplicate names are rejected, both against built-ins and re-registration.
	if err := Register(spec); err == nil {
		t.Error("re-registering the same name should fail")
	}
	if err := Register(Spec{Name: "freqmine", Suite: "scenario", Source: src}); err == nil {
		t.Error("shadowing a built-in benchmark should fail")
	}
	// Invalid specs are rejected up front.
	if err := Register(Spec{Name: "scn-bad", Suite: "nope", Source: src}); err == nil {
		t.Error("unknown suite should fail")
	}
	if err := Register(Spec{Name: "", Suite: "scenario", Source: src}); err == nil {
		t.Error("empty name should fail")
	}
	if err := Register(Spec{Name: "scn-empty", Suite: "scenario"}); err == nil {
		t.Error("empty source should fail")
	}

	// Expand sees the registered program via name, suite and glob patterns.
	for _, pats := range [][]string{{"scn-test-reg"}, {"scenario"}, {"scn-test-*"}} {
		specs, err := Expand(pats)
		if err != nil {
			t.Fatalf("Expand(%v): %v", pats, err)
		}
		if len(specs) != 1 || specs[0].Name != "scn-test-reg" {
			t.Errorf("Expand(%v) = %v", pats, specs)
		}
	}

	// Unregister removes it; built-ins are permanent.
	if !Unregister("scn-test-reg") {
		t.Error("Unregister should report removal")
	}
	if Unregister("scn-test-reg") {
		t.Error("second Unregister should report absence")
	}
	if _, ok := ByName("scn-test-reg"); ok {
		t.Error("benchmark still visible after Unregister")
	}
	if Unregister("freqmine") {
		t.Error("built-in benchmarks must not be unregisterable")
	}
	if _, ok := ByName("freqmine"); !ok {
		t.Error("freqmine vanished")
	}
}

// TestQualitativeShapes checks the headline behavioural contrasts the paper
// relies on.
func TestQualitativeShapes(t *testing.T) {
	plat := hw.OdroidXU4()
	timeOn := func(name string, cfg hw.Config) float64 {
		s, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		mod, err := s.Compile()
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.New(mod, plat, sim.Options{Args: s.SmallArgs(), Seed: 5, InitialConfig: cfg})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("%s on %v: %v", name, cfg, err)
		}
		return res.TimeS
	}

	// Freqmine parallelizes: 4 big cores clearly beat 1 big core.
	if t1, t4 := timeOn("freqmine", hw.Config{Big: 1}), timeOn("freqmine", hw.Config{Big: 4}); !(t4 < t1*0.6) {
		t.Errorf("freqmine: 4B (%.4fs) should be well under 1B (%.4fs)", t4, t1)
	}
	// Streamcluster does not: 4 cores buy little to nothing.
	if t1, t4 := timeOn("streamcluster", hw.Config{Big: 1}), timeOn("streamcluster", hw.Config{Big: 4}); t4 < t1*0.7 {
		t.Errorf("streamcluster: 4B (%.4fs) should NOT be much faster than 1B (%.4fs)", t4, t1)
	}
}

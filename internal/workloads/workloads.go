// Package workloads provides the benchmark programs of the evaluation,
// re-authored in astc so the whole pipeline (feature mining,
// instrumentation, simulation) exercises them exactly as the paper's LLVM
// toolchain exercises PARSEC and Rodinia. Each program is shaped to
// reproduce the qualitative behaviour the paper reports for its namesake:
// parallelism degree, memory footprint relative to the LITTLE/big L2s,
// lock/barrier structure, and I/O interleaving. All programs share the
// entry convention main(scale int, threads int): scale sets iteration
// counts (arrays are fixed at compile time), threads the worker count.
package workloads

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"astro/internal/ir"
	"astro/internal/lang"
)

// Spec describes one benchmark.
type Spec struct {
	Name   string
	Suite  string // one of Suites: "parsec", "rodinia", "micro", "scenario"
	Desc   string
	Source string

	// DefaultScale drives the experiment harness; SmallScale keeps unit
	// tests fast. Threads is the worker count used by the paper-style runs.
	DefaultScale int64
	SmallScale   int64
	Threads      int64
}

// Compile builds the benchmark's IR module.
func (s Spec) Compile() (*ir.Module, error) {
	m, err := lang.Compile(s.Name, s.Source)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", s.Name, err)
	}
	return m, nil
}

// Args returns (scale, threads) for the experiment scale.
func (s Spec) Args() []int64 { return []int64{s.DefaultScale, s.Threads} }

// SmallArgs returns (scale, threads) for fast test runs.
func (s Spec) SmallArgs() []int64 { return []int64{s.SmallScale, s.Threads} }

// Suites are the benchmark families Expand accepts as patterns. The
// built-in programs populate the first three; "scenario" holds generated
// programs registered at runtime (see internal/scenario).
var Suites = []string{"parsec", "rodinia", "micro", "scenario"}

// The registry is mutated at runtime by scenario generation (astro-serve
// registers generated programs while campaigns read concurrently), so every
// access goes through the mutex.
var (
	regMu    sync.RWMutex
	registry = map[string]Spec{}
)

// register adds a built-in benchmark at package init; duplicates are a
// programming error.
func register(s Spec) Spec {
	if err := Register(s); err != nil {
		panic(err)
	}
	return s
}

// Register adds a benchmark at runtime, rejecting duplicate names and specs
// that could not compile into the campaign pipeline (empty name or source,
// unknown suite).
func Register(s Spec) error {
	if s.Name == "" || s.Source == "" {
		return fmt.Errorf("workloads: register %q: name and source are required", s.Name)
	}
	suiteOK := false
	for _, su := range Suites {
		if s.Suite == su {
			suiteOK = true
		}
	}
	if !suiteOK {
		return fmt.Errorf("workloads: register %q: unknown suite %q (have %v)", s.Name, s.Suite, Suites)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		return fmt.Errorf("workloads: duplicate benchmark %q", s.Name)
	}
	registry[s.Name] = s
	return nil
}

// Unregister removes a runtime-registered benchmark, reporting whether it
// was present. Built-in benchmarks (suites other than "scenario") are
// permanent: the experiment drivers assume them.
func Unregister(name string) bool {
	regMu.Lock()
	defer regMu.Unlock()
	s, ok := registry[name]
	if !ok || s.Suite != "scenario" {
		return false
	}
	delete(registry, name)
	return true
}

// ByName looks a benchmark up.
func ByName(name string) (Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names lists registered benchmarks sorted by name.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []string
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every benchmark sorted by name, as one atomic snapshot of
// the registry.
func All() []Spec {
	regMu.RLock()
	out := make([]Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Suite returns the benchmarks of one suite sorted by name.
func Suite(suite string) []Spec {
	var out []Spec
	for _, s := range All() {
		if s.Suite == suite {
			out = append(out, s)
		}
	}
	return out
}

// Expand resolves benchmark patterns to specs, preserving pattern order and
// de-duplicating. A pattern is an exact benchmark name, a suite name
// ("parsec", "rodinia", "micro", "scenario"), "all", or a '*'-suffixed
// prefix glob ("hotspot*"). Campaign specs and CLI flags use this to name
// sweeps compactly.
func Expand(patterns []string) ([]Spec, error) {
	var out []Spec
	seen := map[string]bool{}
	add := func(s Spec) {
		if !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s)
		}
	}
	isSuite := func(pat string) bool {
		for _, su := range Suites {
			if pat == su {
				return true
			}
		}
		return false
	}
	for _, pat := range patterns {
		switch {
		case pat == "all":
			for _, s := range All() {
				add(s)
			}
		case isSuite(pat):
			for _, s := range Suite(pat) {
				add(s)
			}
		case strings.HasSuffix(pat, "*"):
			prefix := strings.TrimSuffix(pat, "*")
			matched := false
			for _, s := range All() {
				if strings.HasPrefix(s.Name, prefix) {
					add(s)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("workloads: pattern %q matches no benchmark", pat)
			}
		default:
			s, ok := ByName(pat)
			if !ok {
				return nil, fmt.Errorf("workloads: unknown benchmark %q (have %v)", pat, Names())
			}
			add(s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workloads: no benchmarks selected")
	}
	return out, nil
}

// Package workloads provides the benchmark programs of the evaluation,
// re-authored in astc so the whole pipeline (feature mining,
// instrumentation, simulation) exercises them exactly as the paper's LLVM
// toolchain exercises PARSEC and Rodinia. Each program is shaped to
// reproduce the qualitative behaviour the paper reports for its namesake:
// parallelism degree, memory footprint relative to the LITTLE/big L2s,
// lock/barrier structure, and I/O interleaving. All programs share the
// entry convention main(scale int, threads int): scale sets iteration
// counts (arrays are fixed at compile time), threads the worker count.
package workloads

import (
	"fmt"
	"sort"
	"strings"

	"astro/internal/ir"
	"astro/internal/lang"
)

// Spec describes one benchmark.
type Spec struct {
	Name   string
	Suite  string // "parsec", "rodinia" or "micro"
	Desc   string
	Source string

	// DefaultScale drives the experiment harness; SmallScale keeps unit
	// tests fast. Threads is the worker count used by the paper-style runs.
	DefaultScale int64
	SmallScale   int64
	Threads      int64
}

// Compile builds the benchmark's IR module.
func (s Spec) Compile() (*ir.Module, error) {
	m, err := lang.Compile(s.Name, s.Source)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", s.Name, err)
	}
	return m, nil
}

// Args returns (scale, threads) for the experiment scale.
func (s Spec) Args() []int64 { return []int64{s.DefaultScale, s.Threads} }

// SmallArgs returns (scale, threads) for fast test runs.
func (s Spec) SmallArgs() []int64 { return []int64{s.SmallScale, s.Threads} }

var registry = map[string]Spec{}

func register(s Spec) Spec {
	if _, dup := registry[s.Name]; dup {
		panic("workloads: duplicate benchmark " + s.Name)
	}
	registry[s.Name] = s
	return s
}

// ByName looks a benchmark up.
func ByName(name string) (Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// Names lists registered benchmarks sorted by name.
func Names() []string {
	var out []string
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every benchmark sorted by name.
func All() []Spec {
	var out []Spec
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// Suite returns the benchmarks of one suite sorted by name.
func Suite(suite string) []Spec {
	var out []Spec
	for _, s := range All() {
		if s.Suite == suite {
			out = append(out, s)
		}
	}
	return out
}

// Expand resolves benchmark patterns to specs, preserving pattern order and
// de-duplicating. A pattern is an exact benchmark name, a suite name
// ("parsec", "rodinia", "micro"), "all", or a '*'-suffixed prefix glob
// ("hotspot*"). Campaign specs and CLI flags use this to name sweeps
// compactly.
func Expand(patterns []string) ([]Spec, error) {
	var out []Spec
	seen := map[string]bool{}
	add := func(s Spec) {
		if !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "all":
			for _, s := range All() {
				add(s)
			}
		case pat == "parsec" || pat == "rodinia" || pat == "micro":
			for _, s := range Suite(pat) {
				add(s)
			}
		case strings.HasSuffix(pat, "*"):
			prefix := strings.TrimSuffix(pat, "*")
			matched := false
			for _, s := range All() {
				if strings.HasPrefix(s.Name, prefix) {
					add(s)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("workloads: pattern %q matches no benchmark", pat)
			}
		default:
			s, ok := ByName(pat)
			if !ok {
				return nil, fmt.Errorf("workloads: unknown benchmark %q (have %v)", pat, Names())
			}
			add(s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workloads: no benchmarks selected")
	}
	return out, nil
}

package workloads

// Micro benchmarks used by the paper's motivating sections.

// MatrixMul is the Fig. 2 program: read two matrices (file I/O), wait for
// user input between actions, multiply them (CPU), and print all three
// matrices. Its power profile drives the Fig. 3 experiment, and its
// functions populate the Fig. 6 feature-space mapping.
var MatrixMul = register(Spec{
	Name: "matrixmul", Suite: "micro",
	Desc:         "Fig. 2 phase demo: read, wait, multiply, print",
	DefaultScale: 64, SmallScale: 32, Threads: 1,
	Source: `
var m1 [4096]float;
var m2 [4096]float;
var m3 [4096]float;

// readMatrix fills n*n entries of a matrix from the input file
// (eight buffered reads per iteration, like a row read).
func read_matrix_a(n int) {
	var i int;
	var nn int = n * n;
	for (i = 0; i < nn; i = i + 8) {
		m1[i] = read_float();
		m1[i + 1] = read_float();
		m1[i + 2] = read_float();
		m1[i + 3] = read_float();
		m1[i + 4] = read_float();
		m1[i + 5] = read_float();
		m1[i + 6] = read_float();
		m1[i + 7] = read_float();
	}
}

func read_matrix_b(n int) {
	var i int;
	var nn int = n * n;
	for (i = 0; i < nn; i = i + 8) {
		m2[i] = read_float();
		m2[i + 1] = read_float();
		m2[i + 2] = read_float();
		m2[i + 3] = read_float();
		m2[i + 4] = read_float();
		m2[i + 5] = read_float();
		m2[i + 6] = read_float();
		m2[i + 7] = read_float();
	}
}

// mulMatrix computes m3 = m1 x m2 (n x n).
func mul_matrix(n int) {
	var i int;
	var j int;
	var k int;
	var acc float;
	for (i = 0; i < n; i = i + 1) {
		for (j = 0; j < n; j = j + 1) {
			acc = 0.0;
			for (k = 0; k < n; k = k + 1) {
				acc = acc + m1[i * n + k] * m2[k * n + j];
			}
			m3[i * n + j] = acc;
		}
	}
}

// printMatrix writes n*n entries to standard output (row-buffered).
func print_matrix_a(n int) {
	var i int;
	var nn int = n * n;
	for (i = 0; i < nn; i = i + 8) {
		print_float(m1[i]);
		print_float(m1[i + 1]);
		print_float(m1[i + 2]);
		print_float(m1[i + 3]);
		print_float(m1[i + 4]);
		print_float(m1[i + 5]);
		print_float(m1[i + 6]);
		print_float(m1[i + 7]);
	}
}

func print_matrix_b(n int) {
	var i int;
	var nn int = n * n;
	for (i = 0; i < nn; i = i + 8) {
		print_float(m2[i]);
		print_float(m2[i + 1]);
		print_float(m2[i + 2]);
		print_float(m2[i + 3]);
		print_float(m2[i + 4]);
		print_float(m2[i + 5]);
		print_float(m2[i + 6]);
		print_float(m2[i + 7]);
	}
}

func print_matrix_c(n int) {
	var i int;
	var nn int = n * n;
	for (i = 0; i < nn; i = i + 8) {
		print_float(m3[i]);
		print_float(m3[i + 1]);
		print_float(m3[i + 2]);
		print_float(m3[i + 3]);
		print_float(m3[i + 4]);
		print_float(m3[i + 5]);
		print_float(m3[i + 6]);
		print_float(m3[i + 7]);
	}
}

func main(scale int, threads int) {
	// scale is the matrix dimension n (n*n <= 4096).
	var n int = scale;
	if (n > 64) { n = 64; }
	read_matrix_a(n);
	read_user_data();
	read_matrix_b(n);
	read_user_data();
	mul_matrix(n);
	read_user_data();
	print_matrix_a(n);
	print_matrix_b(n);
	print_matrix_c(n);
	read_user_data();
}
`,
})

// Spin is a minimal CPU-bound kernel used by quickstart examples and
// calibration tests.
var Spin = register(Spec{
	Name: "spin", Suite: "micro",
	Desc:         "parallel FP spin kernel",
	DefaultScale: 60000, SmallScale: 10000, Threads: 4,
	Source: `
func worker(n int) {
	var i int;
	var x float = 1.0;
	for (i = 0; i < n; i = i + 1) {
		x = x * 1.000001 + 0.5;
	}
}

func main(scale int, threads int) {
	var i int;
	for (i = 0; i < threads; i = i + 1) {
		spawn worker(scale);
	}
	join();
}
`,
})

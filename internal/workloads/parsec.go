package workloads

// PARSEC-style benchmarks. Shapes follow the paper's observations:
// freqmine scales with cores (best time 0L4B), streamcluster is
// serialization-bound (best config 0L1B), fluidanimate is barrier-iterative
// with lock contention that penalizes 4L4B, swaptions is FP Monte Carlo
// where avoiding big cores saves power at some speed cost.

// Freqmine: frequent-itemset counting. Integer-dominated, embarrassingly
// parallel over transactions, private counters merged under one short lock.
var Freqmine = register(Spec{
	Name: "freqmine", Suite: "parsec",
	Desc:         "frequent-pattern mining: int-heavy, highly parallel",
	DefaultScale: 150, SmallScale: 40, Threads: 4,
	Source: `
var transactions [8192]int;
var supports [512]int;
mutex merge;

func initdata() {
	var i int;
	for (i = 0; i < 8192; i = i + 1) {
		transactions[i] = (i * 2654435761) % 65536;
	}
}

func mine(id int, scale int, threads int) {
	var local [512]int;
	var pass int;
	var i int;
	var item int;
	var lo int = id * 8192 / threads;
	var hi int = (id + 1) * 8192 / threads;
	for (pass = 0; pass < scale; pass = pass + 1) {
		for (i = lo; i < hi; i = i + 1) {
			item = transactions[i] % 512;
			// Candidate counting: integer hashing and tests.
			if ((item * 31 + pass) % 7 < 5) {
				local[item] = local[item] + 1;
			}
			item = (item * 131 + 7) % 512;
			if (item % 3 == 0) {
				local[item] = local[item] + 2;
			}
		}
	}
	lock(merge);
	for (i = 0; i < 512; i = i + 1) {
		supports[i] = supports[i] + local[i];
	}
	unlock(merge);
}

func main(scale int, threads int) {
	initdata();
	var i int;
	for (i = 0; i < threads; i = i + 1) {
		spawn mine(i, scale, threads);
	}
	join();
	print_int(supports[0]);
}
`,
})

// Streamcluster: online clustering dominated by a serial assignment phase
// protected by a global lock, so extra cores buy nothing (paper: best
// config is 0L1B).
var Streamcluster = register(Spec{
	Name: "streamcluster", Suite: "parsec",
	Desc:         "online clustering: serialization-bound, no parallel benefit",
	DefaultScale: 110, SmallScale: 25, Threads: 4,
	Source: `
var points [2048]float;
var centers [16]float;
var assign [2048]int;
var cost float;
mutex centerlock;

func initdata() {
	var i int;
	for (i = 0; i < 2048; i = i + 1) {
		points[i] = float(i % 97) * 0.31;
	}
	for (i = 0; i < 16; i = i + 1) {
		centers[i] = float(i) * 6.0;
	}
}

func cluster(id int, scale int, threads int) {
	var pass int;
	var i int;
	var j int;
	var best int;
	var d float;
	var bd float;
	var lo int = id * 2048 / threads;
	var hi int = (id + 1) * 2048 / threads;
	for (pass = 0; pass < scale; pass = pass + 1) {
		for (i = lo; i < hi; i = i + 8) {
			// Modest per-batch compute...
			bd = 0.0;
			for (j = 0; j < 8; j = j + 1) {
				d = points[i + j] - centers[(i + j) % 16];
				bd = bd + d * d;
			}
			best = i % 16;
			// ...then a serialized shared update; the convoy on this lock
			// is why extra cores buy streamcluster nothing (paper: best
			// configuration is 0L1B).
			lock(centerlock);
			assign[i] = best;
			cost = cost + bd;
			centers[best] = centers[best] * 0.999 + points[i] * 0.001;
			unlock(centerlock);
		}
	}
}

func main(scale int, threads int) {
	initdata();
	var i int;
	for (i = 0; i < threads; i = i + 1) {
		spawn cluster(i, scale, threads);
	}
	join();
	print_float(cost);
}
`,
})

// Fluidanimate: iterative particle simulation; each timestep computes
// forces (FP), scatters into shared grid cells under fine-grained locks,
// and barriers. Used by the paper for learning parameters and the Fig. 9
// trace study.
var Fluidanimate = register(Spec{
	Name: "fluidanimate", Suite: "parsec",
	Desc:         "fluid simulation: barrier-iterative, lock contention on cells",
	DefaultScale: 150, SmallScale: 25, Threads: 4,
	Source: `
var pos [4096]float;
var vel [4096]float;
var grid [256]float;
mutex cells[32];
barrier step;

func initdata() {
	var i int;
	for (i = 0; i < 4096; i = i + 1) {
		pos[i] = float(i % 211) * 0.47;
		vel[i] = 0.0;
	}
}

func forces(lo int, hi int) {
	var i int;
	var f float;
	for (i = lo; i < hi; i = i + 1) {
		f = pos[i] * 0.5 - vel[i] * 1.3 + sqrt(fabs(pos[i]) + 1.0);
		vel[i] = vel[i] + f * 0.01;
		pos[i] = pos[i] + vel[i] * 0.01;
	}
}

// Grid scatter: short critical sections; contention grows with active
// cores (the effect that slows 4L4B in the paper).
func scatter(lo int, hi int) {
	var i int;
	var cell int;
	for (i = lo; i < hi; i = i + 8) {
		cell = (i / 16) % 256;
		lock(cells[cell % 32]);
		grid[cell] = grid[cell] + pos[i];
		unlock(cells[cell % 32]);
	}
}

func advance(id int, scale int, threads int) {
	var it int;
	var lo int = id * 4096 / threads;
	var hi int = (id + 1) * 4096 / threads;
	for (it = 0; it < scale; it = it + 1) {
		forces(lo, hi);
		scatter(lo, hi);
		barrier_wait(step);
	}
}

func main(scale int, threads int) {
	initdata();
	barrier_init(step, threads);
	var i int;
	for (i = 0; i < threads; i = i + 1) {
		spawn advance(i, scale, threads);
	}
	join();
	print_float(grid[0]);
}
`,
})

// Blackscholes: option pricing, pure FP, embarrassingly parallel.
var Blackscholes = register(Spec{
	Name: "blackscholes", Suite: "parsec",
	Desc:         "option pricing: FP-dense, embarrassingly parallel",
	DefaultScale: 100, SmallScale: 20, Threads: 4,
	Source: `
var prices [2048]float;

func price(id int, scale int, threads int) {
	var pass int;
	var i int;
	var s float;
	var v float;
	var d1 float;
	var lo int = id * 2048 / threads;
	var hi int = (id + 1) * 2048 / threads;
	for (pass = 0; pass < scale; pass = pass + 1) {
		for (i = lo; i < hi; i = i + 1) {
			s = float(i % 100) + 50.0;
			v = 0.2 + float(pass % 10) * 0.01;
			d1 = (log(s / 100.0) + v * v * 0.5) / (v + 0.001);
			prices[i] = s * exp(0.0 - d1 * d1 * 0.5) / sqrt(6.2831853);
		}
	}
}

func main(scale int, threads int) {
	var i int;
	for (i = 0; i < threads; i = i + 1) {
		spawn price(i, scale, threads);
	}
	join();
	print_float(prices[0]);
}
`,
})

// Bodytrack: alternating parallel particle weighting and a serial
// resampling phase executed by worker 0 behind barriers.
var Bodytrack = register(Spec{
	Name: "bodytrack", Suite: "parsec",
	Desc:         "particle tracking: parallel weighting + serial resampling",
	DefaultScale: 120, SmallScale: 25, Threads: 4,
	Source: `
var weights [1024]float;
var particles [1024]float;
barrier frame;

// Parallel: likelihood of each particle (FP).
func weigh(lo int, hi int, it int) {
	var i int;
	var w float;
	for (i = lo; i < hi; i = i + 1) {
		w = particles[i] - float(it % 13);
		weights[i] = exp(0.0 - w * w * 0.01);
	}
}

// Serial: normalization + systematic resampling on worker 0.
func renormalize() {
	var i int;
	var acc float = 0.0;
	for (i = 0; i < 1024; i = i + 1) {
		acc = acc + weights[i];
	}
	for (i = 0; i < 1024; i = i + 1) {
		particles[i] = particles[i] * 0.9 + weights[i] / (acc + 0.001);
	}
}

func track(id int, scale int, threads int) {
	var it int;
	var lo int = id * 1024 / threads;
	var hi int = (id + 1) * 1024 / threads;
	for (it = 0; it < scale; it = it + 1) {
		weigh(lo, hi, it);
		barrier_wait(frame);
		if (id == 0) {
			renormalize();
		}
		barrier_wait(frame);
	}
}

func main(scale int, threads int) {
	var i int;
	for (i = 0; i < 1024; i = i + 1) {
		particles[i] = float(i % 61) * 0.3;
	}
	barrier_init(frame, threads);
	for (i = 0; i < threads; i = i + 1) {
		spawn track(i, scale, threads);
	}
	join();
	print_float(particles[0]);
}
`,
})

// Facesim: FP + memory heavy over a large mesh whose working set exceeds
// the LITTLE cluster's L2.
var Facesim = register(Spec{
	Name: "facesim", Suite: "parsec",
	Desc:         "mesh simulation: FP + large working set",
	DefaultScale: 12, SmallScale: 5, Threads: 4,
	Source: `
var mesh [98304]float;
var force [98304]float;
barrier tick;

func mesh_forces(lo int, hi int) {
	var i int;
	for (i = lo; i < hi; i = i + 1) {
		force[i] = mesh[i] * 0.98 + mesh[(i + 3) % 98304] * 0.01
			+ mesh[(i + 96) % 98304] * 0.01;
	}
}

func mesh_update(lo int, hi int) {
	var i int;
	for (i = lo; i < hi; i = i + 1) {
		mesh[i] = mesh[i] + force[i] * 0.05;
	}
}

func relax(id int, scale int, threads int) {
	var it int;
	var lo int = id * 98304 / threads;
	var hi int = (id + 1) * 98304 / threads;
	for (it = 0; it < scale; it = it + 1) {
		mesh_forces(lo, hi);
		mesh_update(lo, hi);
		barrier_wait(tick);
	}
}

func main(scale int, threads int) {
	var i int;
	for (i = 0; i < 98304; i = i + 1) {
		mesh[i] = float(i % 103) * 0.7;
	}
	barrier_init(tick, threads);
	for (i = 0; i < threads; i = i + 1) {
		spawn relax(i, scale, threads);
	}
	join();
	print_float(mesh[0]);
}
`,
})

// Ferret: similarity search pipeline alternating I/O (query load) and
// CPU-heavy feature extraction.
var Ferret = register(Spec{
	Name: "ferret", Suite: "parsec",
	Desc:         "similarity search: I/O + compute pipeline",
	DefaultScale: 50, SmallScale: 10, Threads: 4,
	Source: `
var queries [512]float;
var library [4096]float;
var results [512]float;
mutex out;

func initlib() {
	var i int;
	for (i = 0; i < 4096; i = i + 1) {
		library[i] = float(i % 173) * 0.13;
	}
}

func loadqueries() {
	var i int;
	for (i = 0; i < 64; i = i + 1) {
		queries[i] = read_float();
		queries[i + 64] = read_float();
		queries[i + 128] = read_float();
		queries[i + 192] = read_float();
	}
}

func search(id int, scale int, threads int) {
	var pass int;
	var q int;
	var j int;
	var best float;
	var d float;
	var lo int = id * 256 / threads;
	var hi int = (id + 1) * 256 / threads;
	for (pass = 0; pass < scale; pass = pass + 1) {
		for (q = lo; q < hi; q = q + 1) {
			best = 1000000.0;
			for (j = 0; j < 64; j = j + 1) {
				d = queries[q % 256] - library[(q * 64 + j) % 4096];
				d = d * d;
				if (d < best) { best = d; }
			}
			lock(out);
			results[q] = best;
			unlock(out);
		}
	}
}

func main(scale int, threads int) {
	initlib();
	loadqueries();
	var i int;
	for (i = 0; i < threads; i = i + 1) {
		spawn search(i, scale, threads);
	}
	join();
	print_float(results[0]);
}
`,
})

// Vips: image pipeline, streaming memory operations with moderate FP.
var Vips = register(Spec{
	Name: "vips", Suite: "parsec",
	Desc:         "image pipeline: streaming memory, moderate FP",
	DefaultScale: 16, SmallScale: 6, Threads: 4,
	Source: `
var image [65536]float;
var out [65536]float;
barrier stage;

// Stage 1: linear transform (stream).
func transform(lo int, hi int) {
	var i int;
	for (i = lo; i < hi; i = i + 1) {
		out[i] = image[i] * 1.1 + 3.0;
	}
}

// Stage 2: horizontal blur (stream with neighbours).
func blur(lo int, hi int) {
	var i int;
	for (i = lo; i < hi; i = i + 1) {
		image[i] = (out[i] + out[(i + 1) % 65536] + out[(i + 2) % 65536]) / 3.0;
	}
}

func process(id int, scale int, threads int) {
	var pass int;
	var lo int = id * 65536 / threads;
	var hi int = (id + 1) * 65536 / threads;
	for (pass = 0; pass < scale; pass = pass + 1) {
		transform(lo, hi);
		barrier_wait(stage);
		blur(lo, hi);
		barrier_wait(stage);
	}
}

func main(scale int, threads int) {
	var i int;
	for (i = 0; i < 65536; i = i + 1) {
		image[i] = float(i % 255);
	}
	barrier_init(stage, threads);
	for (i = 0; i < threads; i = i + 1) {
		spawn process(i, scale, threads);
	}
	join();
	print_float(image[0]);
}
`,
})

// Swaptions: Monte Carlo swaption pricing; heavy FP math on a tiny working
// set, fully parallel (paper: Astro-static saves power by avoiding big
// cores at some runtime cost).
var Swaptions = register(Spec{
	Name: "swaptions", Suite: "parsec",
	Desc:         "Monte Carlo pricing: FP math, tiny working set",
	DefaultScale: 80000, SmallScale: 25000, Threads: 4,
	Source: `
var prices [64]float;
mutex acc;

func simulate(id int, scale int, threads int) {
	var trial int;
	var r float;
	var path float;
	var sum float = 0.0;
	for (trial = 0; trial < scale; trial = trial + 1) {
		r = rand_float();
		path = exp(r * 0.3 - 0.045) * (1.0 + r * 0.01);
		path = path * exp(rand_float() * 0.2 - 0.02);
		if (path > 1.0) {
			sum = sum + log(path);
		}
	}
	lock(acc);
	prices[id % 64] = prices[id % 64] + sum;
	unlock(acc);
}

func main(scale int, threads int) {
	var i int;
	for (i = 0; i < threads; i = i + 1) {
		spawn simulate(i, scale, threads);
	}
	join();
	print_float(prices[0]);
}
`,
})

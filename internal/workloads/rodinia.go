package workloads

// Rodinia-style benchmarks, the device-experiment set of Fig. 10. Each
// program separates compute kernels from the orchestration loop that calls
// barrier_wait, the way the C originals separate hot functions from their
// pthreads driver: the Phase-Extractor then classifies kernels by their own
// mix while drivers (which invoke barriers) classify as Blocked.

// Hotspot: 2-D thermal stencil, barrier-iterative, FP + memory with a
// working set that fits the big cluster's L2.
var Hotspot = register(Spec{
	Name: "hotspot", Suite: "rodinia",
	Desc:         "2-D thermal stencil",
	DefaultScale: 30, SmallScale: 6, Threads: 4,
	Source: `
var temp [16384]float;
var power [16384]float;
var next [16384]float;
barrier step;

func compute_row(lo int, hi int) {
	var i int;
	for (i = lo; i < hi; i = i + 1) {
		next[i] = temp[i] * 0.6
			+ temp[(i + 1) % 16384] * 0.1
			+ temp[(i + 16383) % 16384] * 0.1
			+ temp[(i + 128) % 16384] * 0.1
			+ temp[(i + 16256) % 16384] * 0.1
			+ power[i] * 0.05;
	}
}

func commit_row(lo int, hi int) {
	var i int;
	for (i = lo; i < hi; i = i + 1) {
		temp[i] = next[i];
	}
}

func stencil(id int, scale int, threads int) {
	var it int;
	var lo int = id * 16384 / threads;
	var hi int = (id + 1) * 16384 / threads;
	for (it = 0; it < scale; it = it + 1) {
		compute_row(lo, hi);
		barrier_wait(step);
		commit_row(lo, hi);
		barrier_wait(step);
	}
}

func main(scale int, threads int) {
	var i int;
	for (i = 0; i < 16384; i = i + 1) {
		temp[i] = 60.0 + float(i % 37);
		power[i] = float(i % 11) * 0.4;
	}
	barrier_init(step, threads);
	for (i = 0; i < threads; i = i + 1) {
		spawn stencil(i, scale, threads);
	}
	join();
	print_float(temp[0]);
}
`,
})

// Hotspot3D: the 3-D variant with a working set that overflows the LITTLE
// cluster's L2, making memory behaviour configuration-dependent.
var Hotspot3D = register(Spec{
	Name: "hotspot3d", Suite: "rodinia",
	Desc:         "3-D thermal stencil: large working set",
	DefaultScale: 6, SmallScale: 3, Threads: 4,
	Source: `
var temp [131072]float;
var next [131072]float;
barrier step;

func compute_slab(lo int, hi int) {
	var i int;
	for (i = lo; i < hi; i = i + 1) {
		next[i] = temp[i] * 0.5
			+ temp[(i + 1) % 131072] * 0.1
			+ temp[(i + 131071) % 131072] * 0.1
			+ temp[(i + 256) % 131072] * 0.1
			+ temp[(i + 65536) % 131072] * 0.2;
	}
}

func commit_slab(lo int, hi int) {
	var i int;
	for (i = lo; i < hi; i = i + 1) {
		temp[i] = next[i];
	}
}

func stencil(id int, scale int, threads int) {
	var it int;
	var lo int = id * 131072 / threads;
	var hi int = (id + 1) * 131072 / threads;
	for (it = 0; it < scale; it = it + 1) {
		compute_slab(lo, hi);
		barrier_wait(step);
		commit_slab(lo, hi);
		barrier_wait(step);
	}
}

func main(scale int, threads int) {
	var i int;
	for (i = 0; i < 131072; i = i + 1) {
		temp[i] = 45.0 + float(i % 53);
	}
	barrier_init(step, threads);
	for (i = 0; i < threads; i = i + 1) {
		spawn stencil(i, scale, threads);
	}
	join();
	print_float(temp[0]);
}
`,
})

// CFD: regular flux kernel, very FP-dense, streaming reads, the "regular
// kernel-like" application where the paper observes hybrid Astro doing well.
var CFD = register(Spec{
	Name: "cfd", Suite: "rodinia",
	Desc:         "flux computation: regular, FP-dense",
	DefaultScale: 20, SmallScale: 7, Threads: 4,
	Source: `
var density [32768]float;
var momentum [32768]float;
var flux [32768]float;
barrier sweep;

func flux_kernel(lo int, hi int) {
	var i int;
	var v float;
	var p float;
	for (i = lo; i < hi; i = i + 1) {
		v = momentum[i] / (density[i] + 0.001);
		p = 0.4 * (density[i] - 0.5 * v * v);
		flux[i] = momentum[i] * v + p;
		momentum[i] = momentum[i] - flux[i] * 0.001;
	}
}

func compute(id int, scale int, threads int) {
	var it int;
	var lo int = id * 32768 / threads;
	var hi int = (id + 1) * 32768 / threads;
	for (it = 0; it < scale; it = it + 1) {
		flux_kernel(lo, hi);
		barrier_wait(sweep);
	}
}

func main(scale int, threads int) {
	var i int;
	for (i = 0; i < 32768; i = i + 1) {
		density[i] = 1.0 + float(i % 17) * 0.01;
		momentum[i] = float(i % 29) * 0.1;
	}
	barrier_init(sweep, threads);
	for (i = 0; i < threads; i = i + 1) {
		spawn compute(i, scale, threads);
	}
	join();
	print_float(flux[0]);
}
`,
})

// Sradv2: speckle-reducing anisotropic diffusion; two stencil passes with
// divisions and exponentials per iteration.
var Sradv2 = register(Spec{
	Name: "sradv2", Suite: "rodinia",
	Desc:         "image despeckling: two-pass stencil with FP division",
	DefaultScale: 16, SmallScale: 4, Threads: 4,
	Source: `
var img [24576]float;
var coef [24576]float;
barrier pass;

func diffusion_coeffs(lo int, hi int) {
	var i int;
	var g float;
	for (i = lo; i < hi; i = i + 1) {
		g = (img[(i + 1) % 24576] - img[i]) / (img[i] + 1.0);
		coef[i] = 1.0 / (1.0 + g * g);
	}
}

func apply_diffusion(lo int, hi int) {
	var i int;
	for (i = lo; i < hi; i = i + 1) {
		img[i] = img[i] + 0.05 * coef[i] * (img[(i + 128) % 24576] - img[i]);
	}
}

func srad(id int, scale int, threads int) {
	var it int;
	var lo int = id * 24576 / threads;
	var hi int = (id + 1) * 24576 / threads;
	for (it = 0; it < scale; it = it + 1) {
		diffusion_coeffs(lo, hi);
		barrier_wait(pass);
		apply_diffusion(lo, hi);
		barrier_wait(pass);
	}
}

func main(scale int, threads int) {
	var i int;
	for (i = 0; i < 24576; i = i + 1) {
		img[i] = exp(float(i % 43) * 0.05);
	}
	barrier_init(pass, threads);
	for (i = 0; i < threads; i = i + 1) {
		spawn srad(i, scale, threads);
	}
	join();
	print_float(img[0]);
}
`,
})

// ParticleFilter: alternates parallel FP likelihood evaluation with a
// serial lock-heavy resampling phase — the benchmark where the paper's
// static instrumentation gets stuck in a bad configuration and hybrid wins.
var ParticleFilter = register(Spec{
	Name: "particlefilter", Suite: "rodinia",
	Desc:         "particle filter: phase-alternating, static-unfriendly",
	DefaultScale: 40, SmallScale: 8, Threads: 4,
	Source: `
var particles [2048]float;
var weights [2048]float;
var cdf [2048]float;
mutex wsum;
var total float;
barrier phase;

func likelihoods(lo int, hi int, it int) {
	var i int;
	var d float;
	for (i = lo; i < hi; i = i + 1) {
		d = particles[i] - float(it % 19);
		weights[i] = exp(0.0 - d * d * 0.02) + 0.0001;
	}
}

func accumulate(lo int, hi int) {
	var i int;
	for (i = lo; i < hi; i = i + 4) {
		lock(wsum);
		total = total + weights[i] + weights[i + 1] + weights[i + 2] + weights[i + 3];
		unlock(wsum);
	}
}

func resample(it int) {
	var i int;
	cdf[0] = weights[0];
	for (i = 1; i < 2048; i = i + 1) {
		cdf[i] = cdf[i - 1] + weights[i];
	}
	for (i = 0; i < 2048; i = i + 1) {
		particles[i] = particles[(i * 7 + it) % 2048] * 0.98 + 0.1;
	}
	total = 0.0;
}

func filter(id int, scale int, threads int) {
	var it int;
	var lo int = id * 2048 / threads;
	var hi int = (id + 1) * 2048 / threads;
	for (it = 0; it < scale; it = it + 1) {
		likelihoods(lo, hi, it);
		accumulate(lo, hi);
		barrier_wait(phase);
		if (id == 0) {
			resample(it);
		}
		barrier_wait(phase);
	}
}

func main(scale int, threads int) {
	var i int;
	for (i = 0; i < 2048; i = i + 1) {
		particles[i] = float(i % 31) * 0.6;
	}
	barrier_init(phase, threads);
	for (i = 0; i < threads; i = i + 1) {
		spawn filter(i, scale, threads);
	}
	join();
	print_float(particles[0]);
}
`,
})

// BFS: level-synchronous breadth-first search over a synthetic graph with
// irregular (pseudo-random) memory accesses: low IPC, integer + memory
// bound.
var BFS = register(Spec{
	Name: "bfs", Suite: "rodinia",
	Desc:         "breadth-first search: irregular memory, low IPC",
	DefaultScale: 20, SmallScale: 8, Threads: 4,
	Source: `
var level [65536]int;
var frontier int;
mutex flock;
barrier round;

func expand(lo int, hi int, r int) int {
	var v int;
	var e int;
	var w int;
	var found int = 0;
	for (v = lo; v < hi; v = v + 1) {
		if (level[v] == r) {
			// Expand 6 pseudo-random edges.
			for (e = 0; e < 6; e = e + 1) {
				w = (v * 1103515245 + e * 12345 + 7) % 65536;
				if (w < 0) { w = 0 - w; }
				if (level[w] == 0) {
					level[w] = r + 1;
					found = found + 1;
				}
			}
		}
	}
	return found;
}

func explore(id int, scale int, threads int) {
	var r int;
	var found int;
	var lo int = id * 65536 / threads;
	var hi int = (id + 1) * 65536 / threads;
	for (r = 1; r <= scale; r = r + 1) {
		found = expand(lo, hi, r);
		lock(flock);
		frontier = frontier + found;
		unlock(flock);
		barrier_wait(round);
	}
}

func main(scale int, threads int) {
	level[1] = 1;
	barrier_init(round, threads);
	var i int;
	for (i = 0; i < threads; i = i + 1) {
		spawn explore(i, scale, threads);
	}
	join();
	print_int(frontier);
}
`,
})

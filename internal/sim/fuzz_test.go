package sim_test

// Differential fuzz battery for the execution tiers. The fuzzer drives the
// scenario generator (seeded synthesis of astc programs with threads,
// mutexes, barriers and mixed phase structure) and requires all three
// tiers — the compiled fast path, the legacy interpreter, and a program
// round-tripped through its canonical byte encoding — to produce
// byte-identical canonical results: final state, event trace, checkpoint
// stream and per-core cycle counters all live in EncodeResult's output.
// It also pins that compiling the same module twice yields byte-identical
// EncodeProgram output (content-addressing would silently break otherwise).
//
// This lives in package sim_test because the scenario generator transitively
// imports sim (scenario → campaign → sim).
//
// The committed corpus under testdata/fuzz/FuzzDifferentialTiers replays as
// ordinary subtests in plain `go test` runs, so the battery is part of
// tier-1 even when no fuzz engine is attached. CI additionally runs a short
// `-fuzz` smoke (see .github/workflows).

import (
	"bytes"
	"testing"

	"astro/internal/hw"
	"astro/internal/ir"
	"astro/internal/scenario"
	"astro/internal/sim"
)

// fuzzModule synthesizes a module from clamped fuzz inputs. Clamping keeps
// every mutated input inside the generator's validated parameter space
// (counts small enough that a single case runs in well under a second)
// while still letting the fuzzer steer phase mix, threading, loop shape
// and contention independently.
func fuzzModule(t *testing.T, seed int64, cpu, io, blocked, mixed, threads, depth, trip, mutexes uint8, barrier bool) (*ir.Module, []int64) {
	t.Helper()
	pp := scenario.ProgramParams{
		Seed:      seed,
		CPU:       int(cpu % 3),
		IO:        int(io % 2),
		Blocked:   int(blocked % 2),
		Mixed:     int(mixed % 2),
		Threads:   1 + int(threads%4),
		LoopDepth: 1 + int(depth%2),
		Trip:      4 + int(trip%12),
		Mutexes:   int(mutexes % 3),
		Barrier:   barrier,
	}
	if pp.CPU+pp.IO+pp.Blocked+pp.Mixed == 0 {
		pp.CPU = 1
	}
	spec, err := scenario.Generate(pp)
	if err != nil {
		t.Fatalf("scenario.Generate(%+v): %v", pp, err)
	}
	mod, err := spec.Compile()
	if err != nil {
		t.Fatalf("compile %s: %v", spec.Name, err)
	}
	return mod, spec.SmallArgs()
}

func FuzzDifferentialTiers(f *testing.F) {
	// Seeds cover the interesting structural corners: pure CPU, IO+blocked,
	// mutex contention, barrier stepping, deep loops, and the kitchen sink.
	f.Add(int64(1), uint8(1), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), false)
	f.Add(int64(2), uint8(2), uint8(1), uint8(0), uint8(0), uint8(1), uint8(0), uint8(5), uint8(0), false)
	f.Add(int64(3), uint8(0), uint8(1), uint8(1), uint8(0), uint8(2), uint8(0), uint8(0), uint8(0), false)
	f.Add(int64(4), uint8(1), uint8(0), uint8(0), uint8(1), uint8(3), uint8(1), uint8(7), uint8(2), false)
	f.Add(int64(5), uint8(1), uint8(1), uint8(1), uint8(1), uint8(3), uint8(1), uint8(11), uint8(2), true)
	f.Add(int64(6), uint8(2), uint8(0), uint8(1), uint8(0), uint8(2), uint8(1), uint8(3), uint8(1), true)
	f.Add(int64(7), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), false)
	f.Add(int64(20260808), uint8(2), uint8(1), uint8(1), uint8(1), uint8(3), uint8(1), uint8(11), uint8(2), true)

	plat := hw.OdroidXU4()
	f.Fuzz(func(t *testing.T, seed int64, cpu, io, blocked, mixed, threads, depth, trip, mutexes uint8, barrier bool) {
		mod, args := fuzzModule(t, seed, cpu, io, blocked, mixed, threads, depth, trip, mutexes, barrier)

		// Small quantum so bursts are interrupted mid-stream, exercising
		// suspension and resumption at chain-superop element boundaries.
		opts := sim.Options{
			Seed:          seed,
			Args:          args,
			CheckpointS:   400e-6,
			QuantumS:      50e-6,
			TickS:         200e-6,
			CaptureOutput: true,
			BoundsCheck:   true,
		}

		run := func(o sim.Options, prog *sim.Program) []byte {
			m, err := sim.NewWithProgram(mod, plat, o, prog)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			res, err := m.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			data, err := sim.EncodeResult(res)
			if err != nil {
				t.Fatalf("EncodeResult: %v", err)
			}
			return data
		}

		fast := run(opts, nil)

		legacyOpts := opts
		legacyOpts.LegacyInterp = true
		legacy := run(legacyOpts, nil)
		if !bytes.Equal(fast, legacy) {
			t.Fatalf("fast path diverged from legacy interpreter\nfast:   %.400s\nlegacy: %.400s", fast, legacy)
		}

		enc := sim.EncodeProgram(sim.CompileModule(mod), plat)
		if enc2 := sim.EncodeProgram(sim.CompileModule(mod), plat); !bytes.Equal(enc, enc2) {
			t.Fatal("EncodeProgram not deterministic across independent compiles")
		}
		prog, err := sim.DecodeProgram(enc, mod, plat)
		if err != nil {
			t.Fatalf("DecodeProgram: %v", err)
		}
		decoded := run(opts, prog)
		if !bytes.Equal(fast, decoded) {
			t.Fatalf("bytecode tier diverged from fast path\nfast:    %.400s\ndecoded: %.400s", fast, decoded)
		}
	})
}

// TestRoundTripScenarioModules hammers the codec with 200 seeded synthetic
// modules spanning the scenario parameter space: double-compile encode
// determinism and decode→re-encode byte identity for each. Complements the
// registry sweep in bytecode_test.go with generated program shapes.
func TestRoundTripScenarioModules(t *testing.T) {
	plat := hw.OdroidXU4()
	for i := 0; i < 200; i++ {
		pp := scenario.ProgramParams{
			Seed:      int64(1000 + i),
			CPU:       1 + i%3,
			IO:        i % 2,
			Blocked:   (i / 2) % 2,
			Mixed:     (i / 4) % 2,
			Threads:   1 + i%8,
			LoopDepth: 1 + i%4,
			Trip:      4 + i%29,
			Mutexes:   i % 4,
			Barrier:   i%3 == 0,
		}
		spec, err := scenario.Generate(pp)
		if err != nil {
			t.Fatalf("seed %d: Generate: %v", pp.Seed, err)
		}
		mod, err := spec.Compile()
		if err != nil {
			t.Fatalf("seed %d: compile: %v", pp.Seed, err)
		}
		enc := sim.EncodeProgram(sim.CompileModule(mod), plat)
		if enc2 := sim.EncodeProgram(sim.CompileModule(mod), plat); !bytes.Equal(enc, enc2) {
			t.Fatalf("seed %d: EncodeProgram not deterministic", pp.Seed)
		}
		prog, err := sim.DecodeProgram(enc, mod, plat)
		if err != nil {
			t.Fatalf("seed %d: DecodeProgram: %v", pp.Seed, err)
		}
		if re := sim.EncodeProgram(prog, plat); !bytes.Equal(enc, re) {
			t.Fatalf("seed %d: decoded program re-encodes differently", pp.Seed)
		}
	}
}

package sim

import (
	"fmt"
	"math"

	"astro/internal/features"
	"astro/internal/ir"
)

type tState uint8

const (
	tsReady tState = iota
	tsRunning
	tsBlocked
	tsDone
)

// blockReason records why a thread is blocked, for diagnostics and for the
// effective-phase computation at checkpoints.
type blockReason uint8

const (
	brNone blockReason = iota
	brSleep
	brIO
	brNet
	brLock
	brBarrier
	brJoin
)

// Thread is a simulated thread of execution.
type Thread struct {
	ID       int
	parentID int
	state    tState
	reason   blockReason

	frames    []frame
	stackBase int64
	sp        int64

	coreHint int // core the thread last ran on (-1 initially)
	children int
	joining  bool

	// Instrumentation state (Sec. 3.2.1: the Log component).
	phase       features.Phase
	blockedFlag bool

	// Per-thread deterministic RNG for rand_int/rand_float.
	rng uint64

	instr uint64 // instructions retired

	// Load is an EWMA of recent CPU demand maintained for OS policies
	// (GTS-style load tracking). busyAcc accumulates busy seconds since the
	// last tick.
	Load    float64
	busyAcc float64

	migrPenaltyS float64 // latency charged to the next burst after migration

	// Frame-storage recycling: register files and array-base tables of
	// popped frames are kept for reuse by later calls, so a steady-state
	// call/return cycle performs no heap allocations. Frames are strictly
	// LIFO per thread, which makes the top of the free list almost always
	// the right size for the next call.
	regPool [][]uint64
	arrPool [][]int64
}

// allocRegs returns a zeroed register file of length n, reusing a recycled
// one when possible (matching the make() the allocation path used to do).
func (t *Thread) allocRegs(n int) []uint64 {
	if k := len(t.regPool); k > 0 {
		if s := t.regPool[k-1]; cap(s) >= n {
			t.regPool = t.regPool[:k-1]
			s = s[:n]
			clear(s)
			return s
		}
	}
	return make([]uint64, n)
}

// allocArrays returns an array-base table of length n; every entry is
// assigned by the caller, so recycled storage needs no zeroing.
func (t *Thread) allocArrays(n int) []int64 {
	if k := len(t.arrPool); k > 0 {
		if s := t.arrPool[k-1]; cap(s) >= n {
			t.arrPool = t.arrPool[:k-1]
			return s[:n]
		}
	}
	return make([]int64, n)
}

// Phase returns the thread's current static program phase, accounting for
// the blocking-region toggle.
func (t *Thread) Phase() features.Phase {
	if t.blockedFlag || t.state == tsBlocked {
		return features.PhaseBlocked
	}
	return t.phase
}

// State exposes a coarse view for policies: true if the thread is ready or
// running.
func (t *Thread) Runnable() bool { return t.state == tsReady || t.state == tsRunning }

// Ready reports whether the thread is queued (not running, blocked or done);
// only ready threads can be migrated.
func (t *Thread) Ready() bool { return t.state == tsReady }

// Core returns the core the thread last ran on (or was queued to).
func (t *Thread) Core() int { return t.coreHint }

// Instructions returns the thread's retired instruction count.
func (t *Thread) Instructions() uint64 { return t.instr }

// NewThreadForTest builds a detached Thread with the given observable
// scheduling state. It exists solely so OS-policy packages can unit-test
// placement decisions; such threads must never be handed to a Machine.
func NewThreadForTest(load float64, instr uint64, core int) *Thread {
	return &Thread{Load: load, instr: instr, coreHint: core, state: tsReady}
}

type frame struct {
	fn     *ir.Function
	fnIdx  int32 // index of fn in the module (fast-path code lookup)
	regs   []uint64
	arrays []int64 // base cell address per frame array
	block  int32
	pc     int32
	retReg int32 // caller register receiving the return value (NoReg: none)
	spSave int64
}

// Register bit conversion helpers: registers and memory cells hold raw
// 64-bit payloads; the static type decides interpretation.
func f2b(f float64) uint64 { return math.Float64bits(f) }
func b2f(b uint64) float64 { return math.Float64frombits(b) }

// newThread creates a thread running fn(args...) with int arguments (the
// main-thread entry path).
func (m *Machine) newThread(parent int, fnIdx int, args []int64) (*Thread, error) {
	fn := m.mod.Funcs[fnIdx]
	regs := make([]uint64, len(fn.Regs))
	for i, a := range args {
		regs[i] = uint64(a)
	}
	return m.newThreadBits(parent, fnIdx, regs)
}

// newThreadBits creates a thread whose entry frame registers are pre-filled
// (spawn path, where arguments may be floats).
func (m *Machine) newThreadBits(parent int, fnIdx int, regs []uint64) (*Thread, error) {
	fn := m.mod.Funcs[fnIdx]
	if len(m.threads) >= m.opts.MaxThreads {
		return nil, fmt.Errorf("sim: thread limit %d exceeded", m.opts.MaxThreads)
	}
	id := len(m.threads)
	t := &Thread{
		ID:        id,
		parentID:  parent,
		state:     tsReady,
		coreHint:  -1,
		stackBase: m.mod.GlobalCells() + int64(id)*m.opts.StackCells,
		rng:       uint64(m.opts.Seed)*0x9E3779B97F4A7C15 + uint64(id)*0xBF58476D1CE4E5B9 + 1,
	}
	t.sp = t.stackBase
	full := make([]uint64, len(fn.Regs))
	copy(full, regs)
	if _, err := m.pushFramePrepared(t, fnIdx, fn, full, ir.NoReg); err != nil {
		return nil, err
	}
	m.threads = append(m.threads, t)
	m.live++
	m.runnable++
	return t, nil
}

// pushFramePrepared installs a frame whose register file is pre-filled with
// arguments.
func (m *Machine) pushFramePrepared(t *Thread, fnIdx int, fn *ir.Function, regs []uint64, retReg int32) (*frame, error) {
	if len(t.frames) >= 10000 {
		return nil, fmt.Errorf("sim: call depth limit in thread %d (%s)", t.ID, fn.Name)
	}
	fr := frame{
		fn:     fn,
		fnIdx:  int32(fnIdx),
		regs:   regs,
		retReg: retReg,
		spSave: t.sp,
	}
	if n := len(fn.Arrays); n > 0 {
		fr.arrays = t.allocArrays(n)
		for i, a := range fn.Arrays {
			fr.arrays[i] = t.sp
			t.sp += a.Size
		}
		if t.sp-t.stackBase > m.opts.StackCells {
			return nil, fmt.Errorf("sim: stack overflow in thread %d calling %s (%d cells > %d)",
				t.ID, fn.Name, t.sp-t.stackBase, m.opts.StackCells)
		}
		// Zero the freshly allocated frame arrays for determinism.
		for i := fr.arrays[0]; i < t.sp; i++ {
			m.mem[i] = 0
		}
	}
	t.frames = append(t.frames, fr)
	return &t.frames[len(t.frames)-1], nil
}

// popFrame returns from the current function, writing retBits into the
// caller's return register if requested. It reports whether the thread has
// finished.
func (t *Thread) popFrame(retBits uint64, hasRet bool) bool {
	fr := &t.frames[len(t.frames)-1]
	t.sp = fr.spSave
	retReg := fr.retReg
	t.regPool = append(t.regPool, fr.regs)
	if fr.arrays != nil {
		t.arrPool = append(t.arrPool, fr.arrays)
	}
	fr.regs, fr.arrays, fr.fn = nil, nil, nil
	t.frames = t.frames[:len(t.frames)-1]
	if len(t.frames) == 0 {
		return true
	}
	if hasRet && retReg != ir.NoReg {
		caller := &t.frames[len(t.frames)-1]
		caller.regs[retReg] = retBits
	}
	return false
}

// threadRand is the per-thread xorshift64* generator.
func (t *Thread) threadRand() uint64 {
	x := t.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	t.rng = x
	return x * 2685821657736338717
}

func (t *Thread) threadRandFloat() float64 {
	return float64(t.threadRand()>>11) / (1 << 53)
}

// placeThread asks the OS policy for a core and enqueues the thread there.
func (m *Machine) placeThread(t *Thread) {
	ci := m.opts.OS.PlaceThread(m, t)
	c := m.cores[ci]
	if !c.active {
		// Policy bug fallback: first active core.
		for _, cc := range m.cores {
			if cc.active {
				c = cc
				break
			}
		}
	}
	if t.coreHint >= 0 && t.coreHint != c.idx {
		t.migrPenaltyS += float64(m.plat.MigrationLatencyUs) * 1e-6
		m.migrations++
	}
	t.coreHint = c.idx
	t.state = tsReady
	c.runq = append(c.runq, t)
	m.scheduleCoreRun(c, maxf(m.now, c.availAt))
}

// MigrateThread moves a ready thread to another core's queue (used by OS
// policies during rebalancing). Running or blocked threads are not moved.
func (m *Machine) MigrateThread(t *Thread, toCore int) bool {
	if t.state != tsReady || !m.cores[toCore].active {
		return false
	}
	from := m.cores[t.coreHint]
	found := false
	for i, q := range from.runq {
		if q == t {
			from.runq = append(from.runq[:i], from.runq[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return false
	}
	to := m.cores[toCore]
	if to.idx != t.coreHint {
		t.migrPenaltyS += float64(m.plat.MigrationLatencyUs) * 1e-6
		m.migrations++
	}
	t.coreHint = to.idx
	to.runq = append(to.runq, t)
	m.scheduleCoreRun(to, maxf(m.now, to.availAt))
	return true
}

// blockThread removes the running thread from its core.
func (m *Machine) blockThread(t *Thread, why blockReason) {
	t.state = tsBlocked
	t.reason = why
	m.runnable--
}

// wakeAt schedules a thread wake event.
func (m *Machine) wakeAt(t *Thread, at float64) {
	m.wakes++
	m.schedule(event{time: at, kind: evWake, thread: t.ID})
}

// handleWake makes a blocked thread runnable again.
func (m *Machine) handleWake(tid int) {
	t := m.threads[tid]
	if t.state != tsBlocked {
		return // e.g. woken by both timer and event; ignore stale wake
	}
	t.reason = brNone
	m.runnable++
	m.placeThread(t)
}

// wakeRelease wakes a thread released by another thread (lock handoff,
// barrier release, join completion), charging the scheduler wake-up latency
// on the critical path.
func (m *Machine) wakeRelease(t *Thread) {
	if t.state != tsBlocked {
		return
	}
	m.wakeAt(t, m.now+m.opts.WakeLatencyS)
}

// exitThread finalizes a finished thread.
func (m *Machine) exitThread(t *Thread) {
	t.state = tsDone
	m.live--
	m.runnable--
	if t.parentID >= 0 {
		p := m.threads[t.parentID]
		p.children--
		if p.joining && p.children == 0 {
			p.joining = false
			m.wakeRelease(p)
		}
	}
	if m.live == 0 {
		// Completion time is the finishing core's busy frontier.
		if m.doneTime < m.now {
			m.doneTime = m.now
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

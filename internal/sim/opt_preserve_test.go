package sim

// Semantic preservation of the IR optimizer: every differential program and
// every bundled benchmark must produce identical output before and after
// ir.Optimize.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"astro/internal/hw"
	"astro/internal/ir"
	"astro/internal/workloads"
)

func runModule(t *testing.T, mod *ir.Module, args []int64, seed int64) *Result {
	t.Helper()
	m, err := New(mod, hw.OdroidXU4(), Options{Args: args, Seed: seed, CaptureOutput: true, BoundsCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOptimizePreservesDifferentialPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		var prints []string
		for i := 0; i < 4; i++ {
			prints = append(prints, fmt.Sprintf("\tprint_int(%s);", genExpr(rng, 4).src()))
		}
		src := pickHelpers + "func main() {\n" + strings.Join(prints, "\n") + "\n}\n"
		orig := compile(t, src)
		opt := compile(t, src)
		n := ir.Optimize(opt)
		if err := ir.Verify(opt); err != nil {
			t.Fatalf("trial %d: optimized module invalid: %v", trial, err)
		}
		a := runModule(t, orig, nil, int64(trial))
		b := runModule(t, opt, nil, int64(trial))
		if len(a.Output) != len(b.Output) {
			t.Fatalf("trial %d: output lengths differ (%d rewrites)", trial, n)
		}
		for i := range a.Output {
			if a.Output[i] != b.Output[i] {
				t.Fatalf("trial %d: output %d differs: %s vs %s (%d rewrites)\n%s",
					trial, i, a.Output[i], b.Output[i], n, src)
			}
		}
		// Folding must not make programs slower.
		if n > 0 && b.Instructions > a.Instructions {
			t.Errorf("trial %d: optimized ran more instructions (%d > %d)",
				trial, b.Instructions, a.Instructions)
		}
	}
}

func TestOptimizePreservesBenchmarks(t *testing.T) {
	for _, name := range []string{"freqmine", "particlefilter", "bfs", "matrixmul"} {
		spec, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		orig, err := spec.Compile()
		if err != nil {
			t.Fatal(err)
		}
		opt, err := spec.Compile()
		if err != nil {
			t.Fatal(err)
		}
		ir.Optimize(opt)
		if err := ir.Verify(opt); err != nil {
			t.Fatalf("%s: optimized module invalid: %v", name, err)
		}
		a := runModule(t, orig, spec.SmallArgs(), 5)
		b := runModule(t, opt, spec.SmallArgs(), 5)
		if len(a.Output) == 0 || len(a.Output) != len(b.Output) {
			t.Fatalf("%s: outputs %d vs %d", name, len(a.Output), len(b.Output))
		}
		for i := range a.Output {
			if a.Output[i] != b.Output[i] {
				t.Fatalf("%s: output differs: %s vs %s", name, a.Output[i], b.Output[i])
			}
		}
	}
}

// Package sim is the execution substrate of the reproduction: a
// deterministic discrete-event simulator of a big.LITTLE machine that runs
// compiled (and possibly instrumented) IR programs on simulated cores with
// private L1 / per-cluster L2 caches, an OS-level thread scheduler, hardware
// performance counters, a power meter, and periodic actuation checkpoints.
//
// It stands in for the paper's Odroid XU4 + Linux (GTS) + PowMon stack. The
// machine executes threads in bursts: pure compute runs freely inside a
// burst, while every globally-visible operation (locks, barriers, I/O,
// spawns, configuration changes) executes only when its core holds the
// minimum virtual clock, which makes the simulation deterministic for a
// given seed.
package sim

import (
	"fmt"

	"astro/internal/cache"
	"astro/internal/hw"
	"astro/internal/ir"
	"astro/internal/perfmon"
	"astro/internal/powmon"
)

// Options configures a machine run.
type Options struct {
	Seed int64
	Args []int64 // arguments for main (must match its int parameters)

	InitialConfig hw.Config // zero value means all cores on

	QuantumS    float64 // scheduling quantum (default 100 µs)
	TickS       float64 // OS load-balance period (default 1 ms)
	CheckpointS float64 // actuation/monitoring period (default 2 ms; the
	// paper uses 500 ms on minutes-long runs — we scale the whole time axis
	// down, keeping the checkpoints-per-run ratio, see DESIGN.md)
	SampleS  float64 // power sample period (0 = sampling off)
	MaxTimeS float64 // simulation time limit (default 300 s)

	MaxThreads int   // default 64
	StackCells int64 // per-thread stack cells (default 16384)

	OS       OSPolicy     // nil = least-loaded round-robin
	Actuator Actuator     // nil = no actuation (fixed config)
	Hybrid   HybridPolicy // consulted by OpDetermineConf instrumentation

	BoundsCheck   bool // array bounds checking (default on via New)
	CaptureOutput bool
	MaxOutput     int // default 10000 entries

	// LegacyInterp disables the precompiled fast path and interprets the IR
	// structure directly (the original per-instruction decoder). The two
	// paths produce byte-identical results — differential tests pin this —
	// so the flag exists for cross-checking and for isolating fast-path
	// regressions, not for behavioural choice.
	LegacyInterp bool

	// Blocking latencies (seconds). Zero values take defaults. These model
	// the simulated board's I/O paths, scaled with the time axis.
	UserInputLatencyS float64 // read_user_data (default 3 ms)
	FileReadLatencyS  float64 // read_int/read_float (default 2 µs)
	WriteLatencyS     float64 // print_* (default 1.5 µs)
	NetLatencyS       float64 // net_recv (default 300 µs); net_send is 1/4

	// WakeLatencyS is the scheduler wake-up cost charged on the critical
	// path when a blocked thread is released (contended lock handoff,
	// barrier release, join completion) — the futex-wake path on a real
	// kernel. It is what makes contended synchronization slower than
	// uncontended execution. Default 0.4 µs.
	WakeLatencyS float64
}

func (o *Options) setDefaults() {
	if o.QuantumS == 0 {
		o.QuantumS = 100e-6
	}
	if o.TickS == 0 {
		o.TickS = 1e-3
	}
	if o.CheckpointS == 0 {
		o.CheckpointS = 2e-3
	}
	if o.MaxTimeS == 0 {
		o.MaxTimeS = 300
	}
	if o.MaxThreads == 0 {
		o.MaxThreads = 64
	}
	if o.StackCells == 0 {
		o.StackCells = 16384
	}
	if o.MaxOutput == 0 {
		o.MaxOutput = 10000
	}
	if o.UserInputLatencyS == 0 {
		o.UserInputLatencyS = 3e-3
	}
	if o.FileReadLatencyS == 0 {
		o.FileReadLatencyS = 2e-6
	}
	if o.WriteLatencyS == 0 {
		o.WriteLatencyS = 1.5e-6
	}
	if o.NetLatencyS == 0 {
		o.NetLatencyS = 300e-6
	}
	if o.WakeLatencyS == 0 {
		o.WakeLatencyS = 0.4e-6
	}
}

// Result summarizes a completed run.
type Result struct {
	TimeS        float64
	EnergyJ      float64
	Instructions uint64
	Checkpoints  []Checkpoint
	Samples      *powmon.Series // nil unless SampleS > 0
	Output       []string       // print_* output if captured
	OutputTrunc  bool
	Switches     int // configuration changes applied
	Migrations   int // thread migrations
	FinalConfig  hw.Config
}

// MIPS returns average millions of instructions per second.
func (r *Result) MIPS() float64 {
	if r.TimeS == 0 {
		return 0
	}
	return float64(r.Instructions) / r.TimeS / 1e6
}

// AvgWatts returns average power over the run.
func (r *Result) AvgWatts() float64 {
	if r.TimeS == 0 {
		return 0
	}
	return r.EnergyJ / r.TimeS
}

// Machine is a single simulated big.LITTLE board executing one program.
type Machine struct {
	plat *hw.Platform
	mod  *ir.Module
	prog *Program // precompiled fast-path code (nil with Options.LegacyInterp)
	opts Options

	mem      []uint64
	cores    []*core
	l2       map[hw.CoreType]*cache.Cache
	threads  []*Thread
	live     int // threads not yet done
	runnable int

	locks    []lockState
	barriers []barrierState

	cfg      hw.Config
	now      float64
	doneTime float64
	events   eventHeap
	seq      uint64
	wakes    int // outstanding wake events (deadlock detection)

	meter      powmon.Meter
	samples    *powmon.Series
	output     []string
	outTrunc   bool
	switches   int
	migrations int

	// Telemetry accumulators: plain (non-atomic) per-run totals, flushed
	// to the shared registry with one atomic add each in finish(). They
	// are never read by the simulation itself.
	quanta  uint64
	tCycles uint64

	ckIndex     int
	checkpoints []Checkpoint
	lastHW      perfmon.HWPhase

	rngState uint64
	err      error
}

type lockState struct {
	held    bool
	owner   int
	waiters []int // thread ids, FIFO
}

type barrierState struct {
	parties int
	waiting []int
}

type core struct {
	idx    int
	spec   *hw.CoreSpec
	hier   cache.Hierarchy
	costs  costTable // resolved per-class cycle costs for spec
	active bool

	costv costVariant // per-instruction charges specialized for costs (nil with LegacyInterp)

	cur        *Thread
	runq       []*Thread
	availAt    float64 // busy frontier: earliest next burst start
	idleFrom   float64 // start of current idle period (energy accounting)
	runPending bool    // an evCoreRun is queued

	burstStart, burstEnd, burstPower float64

	// Window performance counters (reset each checkpoint).
	wInstr, wCycles, wAcc, wMiss uint64
	wBusy                        float64

	tInstr uint64 // total retired
}

// New builds a machine for the module on the platform. The module must have
// a main function whose parameters are all int and match len(opts.Args).
func New(mod *ir.Module, plat *hw.Platform, opts Options) (*Machine, error) {
	return NewWithProgram(mod, plat, opts, nil)
}

// NewWithProgram builds a machine that executes an already-compiled program
// — typically one decoded from its canonical byte encoding (DecodeProgram)
// after being shipped over the wire — instead of compiling mod itself. prog
// must have been compiled from (or decoded against) exactly this module;
// since compilation and decoding both bind the module pointer, that is
// checked by identity. A nil prog compiles locally through the cache, and
// Options.LegacyInterp ignores prog entirely: the program is an acceleration
// structure, never a behavioural input (DESIGN.md invariant 12).
func NewWithProgram(mod *ir.Module, plat *hw.Platform, opts Options, prog *Program) (*Machine, error) {
	opts.setDefaults()
	if prog != nil && prog.mod != mod {
		return nil, fmt.Errorf("sim: program was compiled from a different module than %q", mod.Name)
	}
	mainFn := mod.FuncByName("main")
	if mainFn == nil {
		return nil, fmt.Errorf("sim: module %q has no main", mod.Name)
	}
	if len(opts.Args) != len(mainFn.Params) {
		return nil, fmt.Errorf("sim: main takes %d args, got %d", len(mainFn.Params), len(opts.Args))
	}
	for i, p := range mainFn.Params {
		if p != ir.TInt {
			return nil, fmt.Errorf("sim: main parameter %d must be int", i)
		}
	}
	cfg := opts.InitialConfig
	if cfg.Cores() == 0 {
		cfg = plat.AllOn()
	}
	if !cfg.Valid(plat.MaxLittle(), plat.MaxBig()) {
		return nil, fmt.Errorf("sim: invalid initial config %v", cfg)
	}
	m := &Machine{
		plat:     plat,
		mod:      mod,
		opts:     opts,
		locks:    make([]lockState, mod.NumMutex),
		barriers: make([]barrierState, mod.NumBarrier),
		l2:       map[hw.CoreType]*cache.Cache{},
		rngState: uint64(opts.Seed)*2654435761 + 0x9E3779B97F4A7C15,
	}
	memCells := mod.GlobalCells() + int64(opts.MaxThreads)*opts.StackCells
	m.mem = make([]uint64, memCells)
	for ct, kb := range plat.L2KB {
		m.l2[ct] = cache.MustNew(kb*1024, plat.L2Ways, plat.LineBytes)
	}
	for i := range plat.Cores {
		spec := &plat.Cores[i]
		c := &core{
			idx:   i,
			spec:  spec,
			costs: makeCostTable(spec),
			hier: cache.Hierarchy{
				L1c: cache.MustNew(plat.L1KB*1024, plat.L1Ways, plat.LineBytes),
				L2c: m.l2[spec.Type],
			},
		}
		m.cores = append(m.cores, c)
	}
	if !opts.LegacyInterp {
		if prog != nil {
			m.prog = prog
		} else {
			m.prog = CompiledProgram(mod)
		}
		// Bind each core's cost-specialized charge arrays up front: the
		// variant build is the per-core-cost specialization pass, and doing
		// it here keeps the steady-state quantum at 0 allocs/op.
		for _, c := range m.cores {
			c.costv = m.prog.variant(c.costs)
		}
	}
	for _, ci := range plat.ActiveCores(cfg) {
		m.cores[ci].active = true
	}
	m.cfg = cfg
	if opts.SampleS > 0 {
		m.samples = &powmon.Series{IntervalS: opts.SampleS}
	}
	if m.opts.OS == nil {
		m.opts.OS = &LeastLoaded{}
	}
	return m, nil
}

// Accessors used by OS policies, actuators and tests.

// Platform returns the machine's hardware description.
func (m *Machine) Platform() *hw.Platform { return m.plat }

// Config returns the current hardware configuration.
func (m *Machine) Config() hw.Config { return m.cfg }

// Now returns the current virtual time in seconds.
func (m *Machine) Now() float64 { return m.now }

// ActiveCoreIDs lists the currently active core indices.
func (m *Machine) ActiveCoreIDs() []int {
	var out []int
	for _, c := range m.cores {
		if c.active {
			out = append(out, c.idx)
		}
	}
	return out
}

// CoreType returns the type of core i.
func (m *Machine) CoreType(i int) hw.CoreType { return m.cores[i].spec.Type }

// QueueLen returns the run-queue length of core i (including the running
// thread).
func (m *Machine) QueueLen(i int) int {
	c := m.cores[i]
	n := len(c.runq)
	if c.cur != nil {
		n++
	}
	return n
}

// LastHWPhase returns the hardware phase observed at the latest checkpoint.
func (m *Machine) LastHWPhase() perfmon.HWPhase { return m.lastHW }

// Threads returns the live thread handles (for policies).
func (m *Machine) Threads() []*Thread {
	var out []*Thread
	for _, t := range m.threads {
		if t.state != tsDone {
			out = append(out, t)
		}
	}
	return out
}

// rand64 is the machine-level deterministic RNG (xorshift64*).
func (m *Machine) rand64() uint64 {
	x := m.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	m.rngState = x
	return x * 2685821657736338717
}

// randFloat returns a uniform float64 in [0, 1).
func (m *Machine) randFloat() float64 {
	return float64(m.rand64()>>11) / (1 << 53)
}

// jitter returns base scaled by a deterministic factor in [1-f, 1+f].
func (m *Machine) jitter(base, f float64) float64 {
	return base * (1 + f*(2*m.randFloat()-1))
}

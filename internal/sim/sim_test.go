package sim

import (
	"strings"
	"testing"

	"astro/internal/hw"
	"astro/internal/ir"
	"astro/internal/lang"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := lang.Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func run(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	res, err := runE(t, src, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func runE(t *testing.T, src string, opts Options) (*Result, error) {
	t.Helper()
	mod := compile(t, src)
	opts.CaptureOutput = true
	opts.BoundsCheck = true
	m, err := New(mod, hw.OdroidXU4(), opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m.Run()
}

func TestFibonacciCorrect(t *testing.T) {
	res := run(t, `
func fib(n int) int {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() { print_int(fib(15)); }
`, Options{})
	if len(res.Output) != 1 || res.Output[0] != "610" {
		t.Fatalf("output = %v, want [610]", res.Output)
	}
	if res.TimeS <= 0 || res.EnergyJ <= 0 || res.Instructions == 0 {
		t.Errorf("result: %+v", res)
	}
}

func TestArithmeticAndControlFlow(t *testing.T) {
	res := run(t, `
func main() {
	var s int = 0;
	var i int;
	for (i = 0; i < 100; i = i + 1) {
		if (i % 3 == 0) { s = s + i; } else { s = s - 1; }
	}
	print_int(s);
	var x float = 2.0;
	x = sqrt(x * 8.0);
	print_float(x);
	var b bool = 3 > 2 && 1 < 2 || false;
	if (b) { print_int(1); } else { print_int(0); }
	print_int(min(3, max(1, 2)));
	print_int(abs(-42));
}
`, Options{})
	// s = sum of multiples of 3 below 100 (0,3,...,99 -> 1683) minus 66.
	want := []string{"1617", "4", "1", "2", "42"}
	if len(res.Output) != len(want) {
		t.Fatalf("output = %v, want %v", res.Output, want)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Errorf("output[%d] = %q, want %q", i, res.Output[i], want[i])
		}
	}
}

func TestArraysAndGlobals(t *testing.T) {
	res := run(t, `
var acc int;
var table [64]int;
func main() {
	var local [16]float;
	var i int;
	for (i = 0; i < 64; i = i + 1) { table[i] = i * 2; }
	for (i = 0; i < 16; i = i + 1) { local[i] = float(i) * 0.5; }
	acc = table[10] + table[63] + int(local[8] * 2.0);
	print_int(acc);
}
`, Options{})
	// 20 + 126 + 8 = 154
	if len(res.Output) != 1 || res.Output[0] != "154" {
		t.Fatalf("output = %v, want [154]", res.Output)
	}
}

func TestSpawnJoinAndLocks(t *testing.T) {
	res := run(t, `
var counter int;
mutex m;
func worker(n int) {
	var i int;
	for (i = 0; i < n; i = i + 1) {
		lock(m);
		counter = counter + 1;
		unlock(m);
	}
}
func main() {
	var i int;
	for (i = 0; i < 4; i = i + 1) { spawn worker(500); }
	join();
	print_int(counter);
}
`, Options{})
	if len(res.Output) != 1 || res.Output[0] != "2000" {
		t.Fatalf("counter = %v, want [2000] (lock mutual exclusion)", res.Output)
	}
}

func TestBarrierSynchronization(t *testing.T) {
	res := run(t, `
var ready int;
var sum int;
mutex m;
barrier gate;
func worker(id int) {
	lock(m);
	ready = ready + 1;
	unlock(m);
	barrier_wait(gate);
	// After the barrier every worker must observe all arrivals.
	lock(m);
	sum = sum + ready;
	unlock(m);
}
func main() {
	barrier_init(gate, 4);
	var i int;
	for (i = 0; i < 4; i = i + 1) { spawn worker(i); }
	join();
	print_int(sum);
}
`, Options{})
	if len(res.Output) != 1 || res.Output[0] != "16" {
		t.Fatalf("sum = %v, want [16] (4 workers x ready=4)", res.Output)
	}
}

func TestDeterminism(t *testing.T) {
	src := `
var counter int;
mutex m;
func worker(n int) {
	var i int;
	var x float = 0.0;
	for (i = 0; i < n; i = i + 1) {
		x = x + sqrt(float(i));
		if (i % 64 == 0) {
			lock(m);
			counter = counter + 1;
			unlock(m);
		}
	}
}
func main() {
	spawn worker(3000);
	spawn worker(2000);
	spawn worker(1000);
	join();
	print_int(counter);
}
`
	a := run(t, src, Options{Seed: 42})
	b := run(t, src, Options{Seed: 42})
	if a.TimeS != b.TimeS || a.EnergyJ != b.EnergyJ || a.Instructions != b.Instructions {
		t.Fatalf("same seed diverged: %v/%v, %v/%v, %d/%d",
			a.TimeS, b.TimeS, a.EnergyJ, b.EnergyJ, a.Instructions, b.Instructions)
	}
	c := run(t, src, Options{Seed: 43})
	if a.TimeS == c.TimeS && a.EnergyJ == c.EnergyJ {
		t.Log("different seeds produced identical results (possible but suspicious)")
	}
}

func TestMoreCoresHelpParallelWork(t *testing.T) {
	src := `
func worker(n int) {
	var i int;
	var x float = 1.0;
	for (i = 0; i < n; i = i + 1) { x = x * 1.000001 + 0.5; }
}
func main() {
	var i int;
	for (i = 0; i < 4; i = i + 1) { spawn worker(40000); }
	join();
}
`
	one := run(t, src, Options{InitialConfig: hw.Config{Big: 1}})
	four := run(t, src, Options{InitialConfig: hw.Config{Big: 4}})
	if !(four.TimeS < one.TimeS/2) {
		t.Errorf("4 big cores (%.6fs) should be >2x faster than 1 (%.6fs)", four.TimeS, one.TimeS)
	}
}

func TestBigFasterLittleCheaper(t *testing.T) {
	src := `
func main() {
	var i int;
	var x float = 1.0;
	for (i = 0; i < 60000; i = i + 1) { x = x * 1.000001 + 0.5; }
}
`
	big := run(t, src, Options{InitialConfig: hw.Config{Big: 1}})
	little := run(t, src, Options{InitialConfig: hw.Config{Little: 1}})
	if !(big.TimeS < little.TimeS) {
		t.Errorf("big (%.6fs) should beat LITTLE (%.6fs)", big.TimeS, little.TimeS)
	}
	if !(big.AvgWatts() > little.AvgWatts()) {
		t.Errorf("big power (%.3fW) should exceed LITTLE (%.3fW)", big.AvgWatts(), little.AvgWatts())
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"div by zero", `func main() { var z int = 0; print_int(7 / z); }`, "division by zero"},
		{"array oob", `func main() { var a [4]int; var i int = 9; a[i] = 1; }`, "out of range"},
		{"global oob", `var g [4]int; func main() { var i int = -1; g[i] = 1; }`, "out of range"},
		{"bad unlock", `mutex m; func main() { unlock(m); }`, "does not hold"},
		{"uninit barrier", `barrier b; func main() { barrier_wait(b); }`, "before barrier_init"},
		{"bad mutex id", `func main() { lock(5); }`, "no such mutex"},
		{"bad barrier parties", `barrier b; func main() { barrier_init(b, 0); barrier_wait(b); }`, "invalid party"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := runE(t, c.src, Options{})
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q, want containing %q", err, c.want)
			}
		})
	}
}

func TestDeadlockDetected(t *testing.T) {
	_, err := runE(t, `
mutex m;
func main() {
	lock(m);
	lock(m);
}
`, Options{})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestRunawayProgramHitsMaxTime(t *testing.T) {
	_, err := runE(t, `
func main() {
	while (true) { sleep_ms(10); }
}
`, Options{MaxTimeS: 0.05})
	if err == nil || !strings.Contains(err.Error(), "MaxTimeS") {
		t.Fatalf("err = %v, want MaxTimeS exceeded", err)
	}
}

func TestSleepAdvancesTime(t *testing.T) {
	res := run(t, `func main() { sleep_ms(20); }`, Options{})
	if res.TimeS < 0.020 {
		t.Errorf("TimeS = %v, want >= 0.020", res.TimeS)
	}
	if res.TimeS > 0.030 {
		t.Errorf("TimeS = %v, sleep should dominate", res.TimeS)
	}
}

func TestCheckpointsRecorded(t *testing.T) {
	res := run(t, `
func main() {
	var i int;
	var x float = 1.0;
	for (i = 0; i < 200000; i = i + 1) { x = x * 1.000001 + 0.5; }
}
`, Options{CheckpointS: 1e-3})
	if len(res.Checkpoints) < 2 {
		t.Fatalf("only %d checkpoints", len(res.Checkpoints))
	}
	for _, ck := range res.Checkpoints {
		if ck.EnergyJ <= 0 {
			t.Errorf("checkpoint %d: energy %v", ck.Index, ck.EnergyJ)
		}
		if ck.DurS != 1e-3 {
			t.Errorf("checkpoint %d: dur %v", ck.Index, ck.DurS)
		}
	}
	// A single-threaded CPU loop on an 8-core machine: utilization bucket 0
	// (1/8 = 12.5% < 20%).
	mid := res.Checkpoints[len(res.Checkpoints)/2]
	if mid.HWPhase.CPUBucket != 0 {
		t.Errorf("CPU bucket = %d, want 0 (util=%v)", mid.HWPhase.CPUBucket, mid.HW.Util())
	}
	if mid.HW.IPC() <= 0 {
		t.Errorf("IPC = %v", mid.HW.IPC())
	}
}

func TestPowerSampling(t *testing.T) {
	res := run(t, `
func main() {
	var i int;
	var x float = 1.0;
	for (i = 0; i < 40000; i = i + 1) { x = x * 1.000001 + 0.5; }
	sleep_ms(5);
	for (i = 0; i < 40000; i = i + 1) { x = x * 1.000001 + 0.5; }
}
`, Options{SampleS: 100e-6, InitialConfig: hw.Config{Big: 1}})
	if res.Samples == nil || len(res.Samples.Samples) < 20 {
		t.Fatal("sampling did not produce a series")
	}
	// During the sleep the board must draw close to idle power; during
	// compute, more.
	min, max := res.Samples.Samples[0].Watts, res.Samples.Samples[0].Watts
	for _, s := range res.Samples.Samples {
		if s.Watts < min {
			min = s.Watts
		}
		if s.Watts > max {
			max = s.Watts
		}
	}
	if !(max > min*1.5) {
		t.Errorf("power range [%v, %v] shows no phases", min, max)
	}
}

func TestEnergyIsTimePowerConsistent(t *testing.T) {
	res := run(t, `
func main() {
	var i int;
	var x float = 1.0;
	for (i = 0; i < 50000; i = i + 1) { x = x * 1.000001 + 0.5; }
}
`, Options{InitialConfig: hw.Config{Big: 2}})
	p := hw.OdroidXU4()
	lo := p.IdleConfigPower(hw.Config{Big: 2}) * res.TimeS * 0.5
	hi := p.MaxConfigPower(hw.Config{Big: 2}) * res.TimeS * 1.5
	if res.EnergyJ < lo || res.EnergyJ > hi {
		t.Errorf("energy %v J outside physical bounds [%v, %v]", res.EnergyJ, lo, hi)
	}
}

func TestThreadLimit(t *testing.T) {
	_, err := runE(t, `
func w() { sleep_ms(1); }
func main() {
	var i int;
	for (i = 0; i < 100; i = i + 1) { spawn w(); }
	join();
}
`, Options{MaxThreads: 8})
	if err == nil || !strings.Contains(err.Error(), "thread limit") {
		t.Fatalf("err = %v, want thread limit", err)
	}
}

func TestStackOverflowDetected(t *testing.T) {
	_, err := runE(t, `
func deep(n int) {
	var pad [512]float;
	pad[0] = float(n);
	if (n > 0) { deep(n - 1); }
}
func main() { deep(1000); }
`, Options{})
	if err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Fatalf("err = %v, want stack overflow", err)
	}
}

func TestMainArgsPassed(t *testing.T) {
	mod := compile(t, `func main(a int, b int) { print_int(a * 100 + b); }`)
	m, err := New(mod, hw.OdroidXU4(), Options{Args: []int64{7, 3}, CaptureOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != "703" {
		t.Fatalf("output = %v", res.Output)
	}
	// Arg count mismatch rejected.
	if _, err := New(mod, hw.OdroidXU4(), Options{}); err == nil {
		t.Fatal("missing args accepted")
	}
}

func TestMachineRunsOnce(t *testing.T) {
	mod := compile(t, `func main() { }`)
	m, err := New(mod, hw.OdroidXU4(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestRandBuiltinsDeterministicPerSeed(t *testing.T) {
	src := `func main() { print_int(rand_int(1000)); print_float(rand_float); }`
	// fix: rand_float is a call
	src = `func main() { print_int(rand_int(1000)); print_float(rand_float()); }`
	a := run(t, src, Options{Seed: 5})
	b := run(t, src, Options{Seed: 5})
	if a.Output[0] != b.Output[0] || a.Output[1] != b.Output[1] {
		t.Fatalf("rand not deterministic: %v vs %v", a.Output, b.Output)
	}
}

package sim

// Differential testing: generate random arithmetic/logic expression
// programs, evaluate them both with a host-side Go evaluator and with the
// full compile-to-IR + simulate pipeline, and require identical results.
// This covers the front end's lowering, the verifier and the interpreter's
// instruction semantics in one sweep.

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"astro/internal/hw"
	"astro/internal/ir"
	"astro/internal/workloads"
)

// expr is a host-evaluable random expression tree over int.
type expr interface {
	src() string
	eval() int64
}

type lit struct{ v int64 }

func (l lit) src() string { return fmt.Sprintf("%d", l.v) }
func (l lit) eval() int64 { return l.v }

type binop struct {
	op   string
	l, r expr
}

func (b binop) src() string { return "(" + b.l.src() + " " + b.op + " " + b.r.src() + ")" }
func (b binop) eval() int64 {
	x, y := b.l.eval(), b.r.eval()
	switch b.op {
	case "+":
		return x + y
	case "-":
		return x - y
	case "*":
		return x * y
	case "/":
		return x / y
	case "%":
		return x % y
	}
	panic("bad op")
}

type condop struct {
	cmp       string
	a, b      expr
	then, els expr
}

func (c condop) src() string {
	// Lowered via a helper function with if/else, exercising control flow.
	return fmt.Sprintf("pick%s(%s, %s, %s, %s)", c.cmpName(), c.a.src(), c.b.src(), c.then.src(), c.els.src())
}

func (c condop) cmpName() string {
	switch c.cmp {
	case "<":
		return "lt"
	case "<=":
		return "le"
	case "==":
		return "eq"
	}
	return "ne"
}

func (c condop) eval() int64 {
	var t bool
	switch c.cmp {
	case "<":
		t = c.a.eval() < c.b.eval()
	case "<=":
		t = c.a.eval() <= c.b.eval()
	case "==":
		t = c.a.eval() == c.b.eval()
	default:
		t = c.a.eval() != c.b.eval()
	}
	if t {
		return c.then.eval()
	}
	return c.els.eval()
}

// genExpr builds a random tree of the given depth. Divisors are shifted
// away from zero so host and simulated evaluation are both defined.
func genExpr(rng *rand.Rand, depth int) expr {
	if depth == 0 || rng.Intn(4) == 0 {
		return lit{int64(rng.Intn(199) - 99)}
	}
	switch rng.Intn(7) {
	case 0, 1:
		return binop{"+", genExpr(rng, depth-1), genExpr(rng, depth-1)}
	case 2:
		return binop{"-", genExpr(rng, depth-1), genExpr(rng, depth-1)}
	case 3:
		return binop{"*", genExpr(rng, depth-1), genExpr(rng, depth-1)}
	case 4:
		// Divisor strictly positive: d = |sub| + 1 via host-side constant.
		d := int64(rng.Intn(97) + 1)
		return binop{"/", genExpr(rng, depth-1), lit{d}}
	case 5:
		d := int64(rng.Intn(97) + 1)
		return binop{"%", genExpr(rng, depth-1), lit{d}}
	default:
		cmps := []string{"<", "<=", "==", "!="}
		return condop{
			cmp:  cmps[rng.Intn(len(cmps))],
			a:    genExpr(rng, depth-1),
			b:    genExpr(rng, depth-1),
			then: genExpr(rng, depth-1),
			els:  genExpr(rng, depth-1),
		}
	}
}

const pickHelpers = `
func picklt(a int, b int, t int, e int) int {
	if (a < b) { return t; }
	return e;
}
func pickle(a int, b int, t int, e int) int {
	if (a <= b) { return t; }
	return e;
}
func pickeq(a int, b int, t int, e int) int {
	if (a == b) { return t; }
	return e;
}
func pickne(a int, b int, t int, e int) int {
	if (a != b) { return t; }
	return e;
}
`

func TestDifferentialExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(20260610))
	plat := hw.OdroidXU4()
	for trial := 0; trial < 60; trial++ {
		var exprs []expr
		var prints []string
		for i := 0; i < 5; i++ {
			e := genExpr(rng, 4)
			exprs = append(exprs, e)
			prints = append(prints, fmt.Sprintf("\tprint_int(%s);", e.src()))
		}
		src := pickHelpers + "func main() {\n" + strings.Join(prints, "\n") + "\n}\n"
		mod := compile(t, src)
		m, err := New(mod, plat, Options{CaptureOutput: true, BoundsCheck: true, Seed: int64(trial)})
		if err != nil {
			t.Fatalf("trial %d: New: %v\n%s", trial, err, src)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("trial %d: Run: %v\n%s", trial, err, src)
		}
		if len(res.Output) != len(exprs) {
			t.Fatalf("trial %d: %d outputs, want %d", trial, len(res.Output), len(exprs))
		}
		for i, e := range exprs {
			want := fmt.Sprintf("%d", e.eval())
			if res.Output[i] != want {
				t.Fatalf("trial %d expr %d: simulated %s, host %s\nexpr: %s",
					trial, i, res.Output[i], want, e.src())
			}
		}
	}
}

// runEncoded executes mod on plat and returns the canonical result bytes.
func runEncoded(t *testing.T, mod *ir.Module, plat *hw.Platform, opts Options) []byte {
	t.Helper()
	m, err := New(mod, plat, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	data, err := EncodeResult(res)
	if err != nil {
		t.Fatalf("EncodeResult: %v", err)
	}
	return data
}

// runEncodedProgram executes mod through the full bytecode tier — compile,
// encode to the canonical byte format, decode back, execute the decoded
// program via NewWithProgram — and returns the canonical result bytes.
func runEncodedProgram(t *testing.T, mod *ir.Module, plat *hw.Platform, opts Options) []byte {
	t.Helper()
	prog, err := DecodeProgram(EncodeProgram(CompileModule(mod), plat), mod, plat)
	if err != nil {
		t.Fatalf("DecodeProgram: %v", err)
	}
	m, err := NewWithProgram(mod, plat, opts, prog)
	if err != nil {
		t.Fatalf("NewWithProgram: %v", err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	data, err := EncodeResult(res)
	if err != nil {
		t.Fatalf("EncodeResult: %v", err)
	}
	return data
}

// TestDifferentialFastPathWorkloads runs every bundled workload (parsec,
// rodinia and micro suites) on all three execution tiers — the default
// compiled fast path, the legacy interpreter, and the bytecode tier (the
// program round-tripped through its canonical byte encoding) — and requires
// the canonical result encodings to be byte-identical: same times,
// energies, counters, checkpoints and outputs. This is the contract that
// lets any tier replace any other for all campaign and experiment runs
// without perturbing cached results (DESIGN.md invariant 12).
func TestDifferentialFastPathWorkloads(t *testing.T) {
	plat := hw.OdroidXU4()
	for _, spec := range workloads.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			mod, err := spec.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			opts := Options{
				Seed:          7,
				Args:          spec.SmallArgs(),
				CheckpointS:   400e-6,
				QuantumS:      50e-6,
				TickS:         200e-6,
				CaptureOutput: true,
				BoundsCheck:   true,
			}
			fast := runEncoded(t, mod, plat, opts)
			legacy := opts
			legacy.LegacyInterp = true
			slow := runEncoded(t, mod, plat, legacy)
			if !bytes.Equal(fast, slow) {
				t.Fatalf("fast path diverged from interpreter:\nfast:   %.400s\nlegacy: %.400s", fast, slow)
			}
			decoded := runEncodedProgram(t, mod, plat, opts)
			if !bytes.Equal(fast, decoded) {
				t.Fatalf("bytecode tier diverged from fast path:\nfast:    %.400s\ndecoded: %.400s", fast, decoded)
			}
		})
	}
}

// cyclingActuator deterministically rotates the hardware configuration at
// every checkpoint, exercising requestConfig (hotplug stalls, migrations,
// L1 invalidation) under both execution paths.
type cyclingActuator struct {
	plat *hw.Platform
	n    int
}

func (a *cyclingActuator) Name() string { return "cycling-test" }

func (a *cyclingActuator) OnCheckpoint(m *Machine, ck Checkpoint) hw.Config {
	a.n++
	return a.plat.ConfigFromID(a.n % a.plat.NumConfigs())
}

// TestDifferentialFastPathActuated cross-checks the paths under config
// churn: every checkpoint switches configuration, forcing migrations,
// displaced run queues and cache invalidations between bursts.
func TestDifferentialFastPathActuated(t *testing.T) {
	plat := hw.OdroidXU4()
	spec, ok := workloads.ByName("fluidanimate")
	if !ok {
		t.Fatal("fluidanimate not registered")
	}
	mod, err := spec.Compile()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	base := Options{
		Seed:          11,
		Args:          spec.SmallArgs(),
		CheckpointS:   160e-6,
		QuantumS:      50e-6,
		TickS:         100e-6,
		CaptureOutput: true,
		BoundsCheck:   true,
	}
	run := func(opts Options) []byte {
		opts.Actuator = &cyclingActuator{plat: plat}
		return runEncoded(t, mod, plat, opts)
	}
	fast := run(base)
	legacy := base
	legacy.LegacyInterp = true
	slow := run(legacy)
	if !bytes.Equal(fast, slow) {
		t.Fatalf("actuated fast path diverged from interpreter:\nfast:   %.400s\nlegacy: %.400s", fast, slow)
	}
	bytecodeOpts := base
	bytecodeOpts.Actuator = &cyclingActuator{plat: plat}
	decoded := runEncodedProgram(t, mod, plat, bytecodeOpts)
	if !bytes.Equal(fast, decoded) {
		t.Fatalf("actuated bytecode tier diverged from fast path:\nfast:    %.400s\ndecoded: %.400s", fast, decoded)
	}
}

// TestDifferentialFloatKernels cross-checks float arithmetic through an
// accumulation loop whose result is computed host-side with identical
// operation order.
func TestDifferentialFloatKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(200)
		a := 0.5 + rng.Float64()
		b := rng.Float64()
		src := fmt.Sprintf(`
func main() {
	var acc float = 0.0;
	var i int;
	for (i = 0; i < %d; i = i + 1) {
		acc = acc * %v + float(i) * %v;
	}
	print_float(acc);
}
`, n, a, b)
		var acc float64
		for i := 0; i < n; i++ {
			acc = acc*a + float64(i)*b
		}
		res := run(t, src, Options{Seed: int64(trial)})
		want := fmt.Sprintf("%g", acc)
		if res.Output[0] != want {
			t.Fatalf("trial %d: simulated %s, host %s (n=%d a=%v b=%v)",
				trial, res.Output[0], want, n, a, b)
		}
	}
}

package sim

import (
	"math"

	"astro/internal/cache"
	"astro/internal/features"
	"astro/internal/hw"
	"astro/internal/ir"
)

// burstStatus describes how a burst of execution ended.
type burstStatus uint8

const (
	stRun     burstStatus = iota // keep going (internal)
	stQuantum                    // budget exhausted
	stSync                       // stopped before a synchronizing op
	stBlocked                    // thread blocked
	stDone                       // thread finished
	stErr                        // runtime error (machine failed)
)

// burstCtx accumulates the cost and mix of one burst.
type burstCtx struct {
	cycles float64
	instr  uint64
	fp     uint64
	acc    uint64
	miss   uint64
}

// coreStep runs one scheduling step on core c: pick a thread if needed,
// execute (at most one sync op plus a burst of pure compute), account time,
// energy and counters, then reschedule.
func (m *Machine) coreStep(c *core) {
	if c.cur == nil {
		if len(c.runq) == 0 {
			return // idle; a placeThread will re-arm us
		}
		c.cur = c.runq[0]
		// Pop-front by copy-down: re-slicing from the front leaks capacity
		// and makes the enqueue side reallocate under sustained rotation.
		copy(c.runq, c.runq[1:])
		c.runq = c.runq[:len(c.runq)-1]
		c.cur.state = tsRunning
	}
	m.quanta++ // telemetry accumulator only; flushed once at run end
	t := c.cur
	start := maxf(m.now, c.availAt)
	if c.active && start > c.idleFrom {
		m.meter.Add(start-c.idleFrom, c.spec.IdleWatts)
	}

	var bc burstCtx
	budget := m.opts.QuantumS * c.spec.CyclesPerSecond()
	status := stRun

	// Execute at most one synchronizing instruction, globally ordered.
	if in, ok := m.nextInstr(t); ok && isSyncOp(in) {
		status = m.execSync(c, t, in, &bc)
	}
	if m.err != nil {
		return
	}
	// The sync op may have disabled this core or migrated the thread.
	if c.cur != t {
		m.finishBurst(c, t, start, &bc)
		return
	}
	if status == stRun {
		if m.prog != nil {
			status = m.runBurstFast(c, t, budget, &bc)
		} else {
			status = m.runBurst(c, t, budget, &bc)
		}
	}
	if m.err != nil {
		return
	}
	end := m.finishBurst(c, t, start, &bc)

	switch status {
	case stDone:
		c.cur = nil
		m.exitThread(t)
		if m.live == 0 {
			if end > m.doneTime {
				m.doneTime = end
			}
			return
		}
		m.scheduleCoreRun(c, end)
	case stBlocked:
		c.cur = nil
		m.scheduleCoreRun(c, end)
	case stQuantum:
		if len(c.runq) > 0 {
			t.state = tsReady
			c.runq = append(c.runq, t)
			c.cur = nil
		}
		m.scheduleCoreRun(c, end)
	default: // stSync or stRun: resume on next event
		m.scheduleCoreRun(c, end)
	}
}

// finishBurst converts accumulated cycles to time, charges energy and
// updates counters; returns the burst end time.
func (m *Machine) finishBurst(c *core, t *Thread, start float64, bc *burstCtx) float64 {
	dur := bc.cycles / c.spec.CyclesPerSecond()
	if t.migrPenaltyS > 0 {
		dur += t.migrPenaltyS
		t.migrPenaltyS = 0
	}
	end := start + dur
	if dur > 0 {
		mix := hw.BurstMix{}
		if bc.instr > 0 {
			mix.FPFrac = float64(bc.fp) / float64(bc.instr)
		}
		if bc.acc > 0 {
			mix.MissRate = float64(bc.miss) / float64(bc.acc)
		}
		pw := c.spec.BusyPower(mix)
		m.meter.Add(dur, pw)
		c.burstStart, c.burstEnd, c.burstPower = start, end, pw
	}
	c.availAt = end
	c.idleFrom = end
	c.wBusy += dur
	c.wInstr += bc.instr
	c.wCycles += uint64(bc.cycles)
	m.tCycles += uint64(bc.cycles)
	c.wAcc += bc.acc
	c.wMiss += bc.miss
	c.tInstr += bc.instr
	t.instr += bc.instr
	t.busyAcc += dur
	return end
}

// nextInstr returns the instruction the thread will execute next.
func (m *Machine) nextInstr(t *Thread) (*ir.Instr, bool) {
	if len(t.frames) == 0 {
		return nil, false
	}
	fr := &t.frames[len(t.frames)-1]
	blk := fr.fn.Blocks[fr.block]
	if int(fr.pc) >= len(blk.Instrs) {
		return nil, false
	}
	return &blk.Instrs[fr.pc], true
}

// isSyncOp reports whether the instruction has globally visible effects and
// must execute at a globally ordered point.
func isSyncOp(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpSpawn, ir.OpSetConfig, ir.OpDetermineConf:
		return true
	case ir.OpBuiltin:
		id := ir.BuiltinID(in.Sym)
		if id == ir.BBarrierInit {
			return true
		}
		bi := ir.Builtin(id)
		return bi.Blocking || bi.IsLock || bi.IsBarrier || bi.IsIO || bi.IsNet || bi.IsSleep
	}
	return false
}

// runBurst interprets pure instructions until the cycle budget is exhausted,
// a sync op is reached, or the thread finishes.
func (m *Machine) runBurst(c *core, t *Thread, budget float64, bc *burstCtx) burstStatus {
	spec := c.spec
	for bc.cycles < budget {
		fr := &t.frames[len(t.frames)-1]
		in := &fr.fn.Blocks[fr.block].Instrs[fr.pc]
		switch in.Op {
		case ir.OpNop:
			bc.cycles += 1
			fr.pc++

		case ir.OpConstI:
			fr.regs[in.Dst] = uint64(in.Imm)
			bc.cycles += spec.CPIIntALU * 0.5
			fr.pc++
		case ir.OpConstF:
			fr.regs[in.Dst] = f2b(in.FImm)
			bc.cycles += spec.CPIIntALU * 0.5
			fr.pc++
		case ir.OpMov:
			fr.regs[in.Dst] = fr.regs[in.A]
			bc.cycles += spec.CPIIntALU * 0.5
			fr.pc++

		case ir.OpAdd:
			fr.regs[in.Dst] = uint64(int64(fr.regs[in.A]) + int64(fr.regs[in.B]))
			bc.cycles += spec.CPIIntALU
			fr.pc++
		case ir.OpSub:
			fr.regs[in.Dst] = uint64(int64(fr.regs[in.A]) - int64(fr.regs[in.B]))
			bc.cycles += spec.CPIIntALU
			fr.pc++
		case ir.OpMul:
			fr.regs[in.Dst] = uint64(int64(fr.regs[in.A]) * int64(fr.regs[in.B]))
			bc.cycles += spec.CPIIntALU * 2
			fr.pc++
		case ir.OpDiv:
			d := int64(fr.regs[in.B])
			if d == 0 {
				m.fail("integer division by zero in %s (thread %d)", fr.fn.Name, t.ID)
				return stErr
			}
			fr.regs[in.Dst] = uint64(int64(fr.regs[in.A]) / d)
			bc.cycles += spec.CPIIntALU * 6
			fr.pc++
		case ir.OpRem:
			d := int64(fr.regs[in.B])
			if d == 0 {
				m.fail("integer remainder by zero in %s (thread %d)", fr.fn.Name, t.ID)
				return stErr
			}
			fr.regs[in.Dst] = uint64(int64(fr.regs[in.A]) % d)
			bc.cycles += spec.CPIIntALU * 6
			fr.pc++
		case ir.OpAnd:
			fr.regs[in.Dst] = fr.regs[in.A] & fr.regs[in.B]
			bc.cycles += spec.CPIIntALU
			fr.pc++
		case ir.OpOr:
			fr.regs[in.Dst] = fr.regs[in.A] | fr.regs[in.B]
			bc.cycles += spec.CPIIntALU
			fr.pc++
		case ir.OpXor:
			fr.regs[in.Dst] = fr.regs[in.A] ^ fr.regs[in.B]
			bc.cycles += spec.CPIIntALU
			fr.pc++
		case ir.OpShl:
			fr.regs[in.Dst] = uint64(int64(fr.regs[in.A]) << (uint64(fr.regs[in.B]) & 63))
			bc.cycles += spec.CPIIntALU
			fr.pc++
		case ir.OpShr:
			fr.regs[in.Dst] = uint64(int64(fr.regs[in.A]) >> (uint64(fr.regs[in.B]) & 63))
			bc.cycles += spec.CPIIntALU
			fr.pc++
		case ir.OpNeg:
			fr.regs[in.Dst] = uint64(-int64(fr.regs[in.A]))
			bc.cycles += spec.CPIIntALU
			fr.pc++
		case ir.OpNot:
			if fr.regs[in.A] == 0 {
				fr.regs[in.Dst] = 1
			} else {
				fr.regs[in.Dst] = 0
			}
			bc.cycles += spec.CPIIntALU
			fr.pc++
		case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
			a, b := int64(fr.regs[in.A]), int64(fr.regs[in.B])
			fr.regs[in.Dst] = boolBit(intCmp(in.Op, a, b))
			bc.cycles += spec.CPIIntALU
			fr.pc++

		case ir.OpFAdd:
			fr.regs[in.Dst] = f2b(b2f(fr.regs[in.A]) + b2f(fr.regs[in.B]))
			bc.cycles += spec.CPIFPALU
			bc.fp++
			fr.pc++
		case ir.OpFSub:
			fr.regs[in.Dst] = f2b(b2f(fr.regs[in.A]) - b2f(fr.regs[in.B]))
			bc.cycles += spec.CPIFPALU
			bc.fp++
			fr.pc++
		case ir.OpFMul:
			fr.regs[in.Dst] = f2b(b2f(fr.regs[in.A]) * b2f(fr.regs[in.B]))
			bc.cycles += spec.CPIFPALU
			bc.fp++
			fr.pc++
		case ir.OpFDiv:
			fr.regs[in.Dst] = f2b(b2f(fr.regs[in.A]) / b2f(fr.regs[in.B]))
			bc.cycles += spec.CPIFPALU * 4
			bc.fp++
			fr.pc++
		case ir.OpFNeg:
			fr.regs[in.Dst] = f2b(-b2f(fr.regs[in.A]))
			bc.cycles += spec.CPIFPALU
			bc.fp++
			fr.pc++
		case ir.OpFEq, ir.OpFNe, ir.OpFLt, ir.OpFLe, ir.OpFGt, ir.OpFGe:
			a, b := b2f(fr.regs[in.A]), b2f(fr.regs[in.B])
			fr.regs[in.Dst] = boolBit(floatCmp(in.Op, a, b))
			bc.cycles += spec.CPIFPALU
			bc.fp++
			fr.pc++
		case ir.OpI2F:
			fr.regs[in.Dst] = f2b(float64(int64(fr.regs[in.A])))
			bc.cycles += spec.CPIFPALU
			bc.fp++
			fr.pc++
		case ir.OpF2I:
			fr.regs[in.Dst] = uint64(int64(b2f(fr.regs[in.A])))
			bc.cycles += spec.CPIFPALU
			bc.fp++
			fr.pc++

		case ir.OpLocalAddr:
			idx := in.Imm
			if in.A != ir.NoReg {
				idx = int64(fr.regs[in.A])
			}
			if m.opts.BoundsCheck && (idx < 0 || idx >= fr.fn.Arrays[in.Sym].Size) {
				m.fail("index %d out of range for array %s[%d] in %s (thread %d)",
					idx, fr.fn.Arrays[in.Sym].Name, fr.fn.Arrays[in.Sym].Size, fr.fn.Name, t.ID)
				return stErr
			}
			fr.regs[in.Dst] = uint64(fr.arrays[in.Sym] + idx)
			bc.cycles += spec.CPIIntALU
			fr.pc++
		case ir.OpGlobalAddr:
			idx := in.Imm
			if in.A != ir.NoReg {
				idx = int64(fr.regs[in.A])
			}
			g := &m.mod.Globals[in.Sym]
			if m.opts.BoundsCheck && (idx < 0 || idx >= g.Size) {
				m.fail("index %d out of range for global %s[%d] in %s (thread %d)",
					idx, g.Name, g.Size, fr.fn.Name, t.ID)
				return stErr
			}
			fr.regs[in.Dst] = uint64(m.mod.GlobalBase(int(in.Sym)) + idx)
			bc.cycles += spec.CPIIntALU
			fr.pc++

		case ir.OpLoadI, ir.OpLoadF:
			addr := int64(fr.regs[in.A])
			if addr < 0 || addr >= int64(len(m.mem)) {
				m.fail("load from invalid address %d in %s (thread %d)", addr, fr.fn.Name, t.ID)
				return stErr
			}
			fr.regs[in.Dst] = m.mem[addr]
			bc.cycles += spec.CPIMem + m.memLatency(c, addr, bc)
			fr.pc++
		case ir.OpStoreI, ir.OpStoreF:
			addr := int64(fr.regs[in.A])
			if addr < 0 || addr >= int64(len(m.mem)) {
				m.fail("store to invalid address %d in %s (thread %d)", addr, fr.fn.Name, t.ID)
				return stErr
			}
			m.mem[addr] = fr.regs[in.B]
			bc.cycles += spec.CPIMem + m.memLatency(c, addr, bc)
			fr.pc++

		case ir.OpBr:
			fr.block = in.A
			fr.pc = 0
			bc.cycles += spec.CPIBranch
		case ir.OpCBr:
			if fr.regs[in.A] != 0 {
				fr.block = in.B
			} else {
				fr.block = in.C
			}
			fr.pc = 0
			bc.cycles += spec.CPIBranch
		case ir.OpRet:
			var bits uint64
			hasRet := in.A != ir.NoReg
			if hasRet {
				bits = fr.regs[in.A]
			}
			bc.cycles += spec.CPICall
			bc.instr++
			if t.popFrame(bits, hasRet) {
				return stDone
			}
			continue // frame changed; do not advance pc here

		case ir.OpCall:
			callee := m.mod.Funcs[in.Sym]
			regs := t.allocRegs(len(callee.Regs))
			for i, a := range in.Args {
				regs[i] = fr.regs[a]
			}
			fr.pc++ // return to the next instruction
			if _, err := m.pushFramePrepared(t, int(in.Sym), callee, regs, in.Dst); err != nil {
				m.fail("%v", err)
				return stErr
			}
			bc.cycles += spec.CPICall
			bc.instr++
			continue

		case ir.OpBuiltin:
			id := ir.BuiltinID(in.Sym)
			if isSyncOp(in) {
				return stSync
			}
			m.execPureBuiltin(c, t, fr, in, id, bc)
			fr.pc++

		case ir.OpLogPhase:
			t.phase = features.Phase(in.Imm)
			bc.cycles += 25
			fr.pc++
		case ir.OpToggleBlocked:
			t.blockedFlag = in.Imm != 0
			bc.cycles += 20
			fr.pc++

		case ir.OpSpawn, ir.OpSetConfig, ir.OpDetermineConf:
			return stSync

		default:
			m.fail("unknown opcode %s in %s", in.Op.Name(), fr.fn.Name)
			return stErr
		}
		bc.instr++
	}
	return stQuantum
}

// memLatency performs a cache access and returns the added latency cycles.
func (m *Machine) memLatency(c *core, addr int64, bc *burstCtx) float64 {
	bc.acc++
	switch c.hier.Access(uint64(addr) * 8) {
	case cache.L1:
		return c.spec.L1HitCycles
	case cache.L2:
		return c.spec.L2HitCycles
	default:
		bc.miss++
		return c.spec.L2HitCycles + c.spec.DRAMCycles(m.plat.DRAMLatencyNs)
	}
}

// execPureBuiltin executes builtins with no globally visible effects.
func (m *Machine) execPureBuiltin(c *core, t *Thread, fr *frame, in *ir.Instr, id ir.BuiltinID, bc *burstCtx) {
	bi := ir.Builtin(id)
	bc.cycles += float64(bi.BaseCycles)
	bc.fp += uint64(bi.FPWork)
	set := func(bits uint64) {
		if in.Dst != ir.NoReg {
			fr.regs[in.Dst] = bits
		}
	}
	argF := func(i int) float64 { return b2f(fr.regs[in.Args[i]]) }
	argI := func(i int) int64 { return int64(fr.regs[in.Args[i]]) }
	switch id {
	case ir.BTid:
		set(uint64(t.ID))
	case ir.BNumCores:
		set(uint64(int64(m.cfg.Cores())))
	case ir.BClockMs:
		now := m.now + bc.cycles/c.spec.CyclesPerSecond()
		set(uint64(int64(now * 1000)))
	case ir.BRandInt:
		n := argI(0)
		if n <= 0 {
			set(0)
		} else {
			set(t.threadRand() % uint64(n))
		}
	case ir.BRandFloat:
		set(f2b(t.threadRandFloat()))
	case ir.BSqrt:
		set(f2b(math.Sqrt(argF(0))))
	case ir.BSin:
		set(f2b(math.Sin(argF(0))))
	case ir.BCos:
		set(f2b(math.Cos(argF(0))))
	case ir.BExp:
		set(f2b(math.Exp(argF(0))))
	case ir.BLog:
		set(f2b(math.Log(argF(0))))
	case ir.BPow:
		set(f2b(math.Pow(argF(0), argF(1))))
	case ir.BFabs:
		set(f2b(math.Abs(argF(0))))
	case ir.BFloor:
		set(f2b(math.Floor(argF(0))))
	case ir.BAbsI:
		v := argI(0)
		if v < 0 {
			v = -v
		}
		set(uint64(v))
	case ir.BMinI:
		a, b := argI(0), argI(1)
		if b < a {
			a = b
		}
		set(uint64(a))
	case ir.BMaxI:
		a, b := argI(0), argI(1)
		if b > a {
			a = b
		}
		set(uint64(a))
	default:
		m.fail("builtin %s reached pure execution path", bi.Name)
	}
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func intCmp(op ir.Opcode, a, b int64) bool {
	switch op {
	case ir.OpEq:
		return a == b
	case ir.OpNe:
		return a != b
	case ir.OpLt:
		return a < b
	case ir.OpLe:
		return a <= b
	case ir.OpGt:
		return a > b
	default:
		return a >= b
	}
}

func floatCmp(op ir.Opcode, a, b float64) bool {
	switch op {
	case ir.OpFEq:
		return a == b
	case ir.OpFNe:
		return a != b
	case ir.OpFLt:
		return a < b
	case ir.OpFLe:
		return a <= b
	case ir.OpFGt:
		return a > b
	default:
		return a >= b
	}
}

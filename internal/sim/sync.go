package sim

import (
	"fmt"

	"astro/internal/features"
	"astro/internal/hw"
	"astro/internal/ir"
)

// execSync executes one synchronizing instruction at a globally ordered
// point in virtual time (the machine's event loop guarantees every earlier
// event has been processed). Blocking operations advance the program counter
// first, so the thread resumes after the call once woken.
func (m *Machine) execSync(c *core, t *Thread, in *ir.Instr, bc *burstCtx) burstStatus {
	fr := &t.frames[len(t.frames)-1]
	bc.instr++
	switch in.Op {
	case ir.OpSpawn:
		fr.pc++
		bc.cycles += 2500 // thread-creation overhead
		callee := m.mod.Funcs[in.Sym]
		regs := make([]uint64, len(callee.Regs))
		for i, a := range in.Args {
			regs[i] = fr.regs[a]
		}
		nt, err := m.newThreadBits(t.ID, int(in.Sym), regs)
		if err != nil {
			m.fail("%v", err)
			return stErr
		}
		t.children++
		m.placeThread(nt)
		return stRun

	case ir.OpSetConfig:
		fr.pc++
		bc.cycles += 60
		cfg := m.plat.ConfigFromID(int(in.Imm))
		if !cfg.Valid(m.plat.MaxLittle(), m.plat.MaxBig()) {
			m.fail("setconfig with invalid id %d", in.Imm)
			return stErr
		}
		m.requestConfig(cfg)
		return stRun

	case ir.OpDetermineConf:
		fr.pc++
		bc.cycles += 450 // reads performance counters before deciding
		if m.opts.Hybrid != nil {
			cfg := m.opts.Hybrid.DetermineConfig(HybridState{
				Phase:   features.Phase(in.Imm),
				Config:  m.cfg,
				HWPhase: m.lastHW,
				TimeS:   m.now,
			})
			if cfg.Valid(m.plat.MaxLittle(), m.plat.MaxBig()) {
				m.requestConfig(cfg)
			}
		}
		return stRun

	case ir.OpBuiltin:
		return m.execSyncBuiltin(c, t, fr, in, bc)
	}
	m.fail("non-sync op %s reached execSync", in.Op.Name())
	return stErr
}

func (m *Machine) execSyncBuiltin(c *core, t *Thread, fr *frame, in *ir.Instr, bc *burstCtx) burstStatus {
	id := ir.BuiltinID(in.Sym)
	bi := ir.Builtin(id)
	bc.cycles += float64(bi.BaseCycles)
	fr.pc++ // resume after the call in every outcome
	set := func(bits uint64) {
		if in.Dst != ir.NoReg {
			fr.regs[in.Dst] = bits
		}
	}
	argI := func(i int) int64 { return int64(fr.regs[in.Args[i]]) }
	argF := func(i int) float64 { return b2f(fr.regs[in.Args[i]]) }

	switch id {
	case ir.BLock:
		mid := argI(0)
		if mid < 0 || mid >= int64(len(m.locks)) {
			m.fail("lock(%d): no such mutex (have %d)", mid, len(m.locks))
			return stErr
		}
		ls := &m.locks[mid]
		if !ls.held {
			ls.held = true
			ls.owner = t.ID
			return stRun
		}
		ls.waiters = append(ls.waiters, t.ID)
		m.blockThread(t, brLock)
		return stBlocked

	case ir.BUnlock:
		mid := argI(0)
		if mid < 0 || mid >= int64(len(m.locks)) {
			m.fail("unlock(%d): no such mutex", mid)
			return stErr
		}
		ls := &m.locks[mid]
		if !ls.held || ls.owner != t.ID {
			m.fail("unlock(%d) by thread %d which does not hold it", mid, t.ID)
			return stErr
		}
		if len(ls.waiters) > 0 {
			next := ls.waiters[0]
			ls.waiters = ls.waiters[1:]
			ls.owner = next // direct handoff
			m.wakeRelease(m.threads[next])
		} else {
			ls.held = false
		}
		return stRun

	case ir.BBarrierInit:
		bid, parties := argI(0), argI(1)
		if bid < 0 || bid >= int64(len(m.barriers)) {
			m.fail("barrier_init(%d): no such barrier", bid)
			return stErr
		}
		if parties <= 0 || parties > int64(m.opts.MaxThreads) {
			m.fail("barrier_init(%d, %d): invalid party count", bid, parties)
			return stErr
		}
		m.barriers[bid].parties = int(parties)
		return stRun

	case ir.BBarrierWait:
		bid := argI(0)
		if bid < 0 || bid >= int64(len(m.barriers)) {
			m.fail("barrier_wait(%d): no such barrier", bid)
			return stErr
		}
		bs := &m.barriers[bid]
		if bs.parties == 0 {
			m.fail("barrier_wait(%d) before barrier_init", bid)
			return stErr
		}
		bs.waiting = append(bs.waiting, t.ID)
		if len(bs.waiting) >= bs.parties {
			for _, tid := range bs.waiting {
				if tid != t.ID {
					m.wakeRelease(m.threads[tid])
				}
			}
			bs.waiting = bs.waiting[:0]
			return stRun
		}
		m.blockThread(t, brBarrier)
		return stBlocked

	case ir.BJoin:
		if t.children == 0 {
			return stRun
		}
		t.joining = true
		m.blockThread(t, brJoin)
		return stBlocked

	case ir.BSleepMs:
		ms := argI(0)
		if ms < 0 {
			ms = 0
		}
		m.blockThread(t, brSleep)
		m.wakeAt(t, m.now+float64(ms)*1e-3)
		return stBlocked

	case ir.BReadUserData:
		set(t.threadRand() % 10)
		m.blockThread(t, brIO)
		m.wakeAt(t, m.now+m.jitter(m.opts.UserInputLatencyS, 0.4))
		return stBlocked

	case ir.BReadInt:
		set(t.threadRand() % 1000)
		m.blockThread(t, brIO)
		m.wakeAt(t, m.now+m.jitter(m.opts.FileReadLatencyS, 0.5))
		return stBlocked

	case ir.BReadFloat:
		set(f2b(t.threadRandFloat()))
		m.blockThread(t, brIO)
		m.wakeAt(t, m.now+m.jitter(m.opts.FileReadLatencyS, 0.5))
		return stBlocked

	case ir.BPrintInt:
		m.emit(fmt.Sprintf("%d", argI(0)))
		m.blockThread(t, brIO)
		m.wakeAt(t, m.now+m.jitter(m.opts.WriteLatencyS, 0.3))
		return stBlocked

	case ir.BPrintFloat:
		m.emit(fmt.Sprintf("%g", argF(0)))
		m.blockThread(t, brIO)
		m.wakeAt(t, m.now+m.jitter(m.opts.WriteLatencyS, 0.3))
		return stBlocked

	case ir.BPrintChar:
		m.emit(string(rune(argI(0))))
		m.blockThread(t, brIO)
		m.wakeAt(t, m.now+m.jitter(m.opts.WriteLatencyS, 0.3))
		return stBlocked

	case ir.BNetRecv:
		set(t.threadRand() % 4096)
		m.blockThread(t, brNet)
		m.wakeAt(t, m.now+m.jitter(m.opts.NetLatencyS, 0.5))
		return stBlocked

	case ir.BNetSend:
		m.blockThread(t, brNet)
		m.wakeAt(t, m.now+m.jitter(m.opts.NetLatencyS/4, 0.5))
		return stBlocked
	}
	m.fail("builtin %s reached sync execution path", bi.Name)
	return stErr
}

// emit records program output when capture is enabled.
func (m *Machine) emit(s string) {
	if !m.opts.CaptureOutput {
		return
	}
	if len(m.output) >= m.opts.MaxOutput {
		m.outTrunc = true
		return
	}
	m.output = append(m.output, s)
}

// requestConfig applies a hardware configuration change: newly disabled
// cores hand their threads back to the scheduler, newly enabled cores come
// online after the switch latency, and every core stalls for the switch
// (modelling the hotplug freeze the paper identifies as the cost that can
// "overshadow possible gains" on small inputs).
func (m *Machine) requestConfig(cfg hw.Config) {
	if cfg == m.cfg || !cfg.Valid(m.plat.MaxLittle(), m.plat.MaxBig()) {
		return
	}
	m.switches++
	m.cfg = cfg
	stallEnd := m.now + float64(m.plat.SwitchLatencyUs)*1e-6

	want := make([]bool, len(m.cores))
	for _, ci := range m.plat.ActiveCores(cfg) {
		want[ci] = true
	}
	var displaced []*Thread
	for _, c := range m.cores {
		switch {
		case c.active && !want[c.idx]:
			c.active = false
			c.hier.L1c.Invalidate()
			if c.cur != nil {
				c.cur.state = tsReady
				displaced = append(displaced, c.cur)
				c.cur = nil
			}
			displaced = append(displaced, c.runq...)
			c.runq = c.runq[:0]
		case !c.active && want[c.idx]:
			c.active = true
			c.hier.L1c.Invalidate()
			c.availAt = maxf(c.availAt, stallEnd)
			c.idleFrom = stallEnd
		case c.active:
			// Settle idle energy, then freeze through the switch.
			if c.idleFrom < m.now && c.availAt <= m.now {
				m.meter.Add(m.now-c.idleFrom, c.spec.IdleWatts)
			}
			c.availAt = maxf(c.availAt, stallEnd)
			c.idleFrom = maxf(c.idleFrom, stallEnd)
		}
	}
	for _, t := range displaced {
		t.state = tsReady
		m.placeThread(t)
	}
	// Kick the newly enabled cores so they pull queued work.
	for _, c := range m.cores {
		if c.active && len(c.runq) > 0 {
			m.scheduleCoreRun(c, c.availAt)
		}
	}
}

package sim

// Micro-benchmarks and allocation-regression pins for the burst executor —
// the inner loop every experiment in the repo ultimately spends its time in.
// The benchmarks drive coreStep directly (one scheduling quantum per call)
// so they measure the burst path without event-loop or setup noise, and the
// steady-state loop is asserted allocation-free with testing.AllocsPerRun.
//
// Regenerate the committed BENCH_*.json baseline (and gate the pinned
// Minstr/s throughput metrics against the prior one) with:
//
//	(go test -run '^$' -bench 'BenchmarkBurst|BenchmarkCoreStepCalls|BenchmarkFig1Workload' -benchmem -benchtime 0.5s -count 3 ./internal/sim/
//	 go test -run '^$' -bench 'BenchmarkObserve' -benchmem -benchtime 0.5s -count 3 ./internal/rl/) \
//	  | go run ./cmd/astro-bench -o BENCH_6.json -prev BENCH_5.json -max-regress 15

import (
	"testing"

	"astro/internal/hw"
	"astro/internal/ir"
	"astro/internal/lang"
	"astro/internal/workloads"
)

// benchSources: one ALU/FP-heavy kernel (dispatch-bound, the fast path's
// best case) and one memory-walking kernel (cache-model-bound).
const benchSpinSrc = `
func main() {
	var x float = 1.0;
	var i int = 0;
	while (1 == 1) {
		x = x * 1.000001 + 0.5;
		i = i + 1;
		if (i > 1000000000) { i = 0; }
	}
}
`

const benchMemSrc = `
var buf[4096] int;
func main() {
	var i int = 0;
	var s int = 0;
	while (1 == 1) {
		s = s + buf[i % 4096];
		buf[(i * 7) % 4096] = s;
		i = i + 1;
	}
}
`

// benchMachine builds a machine running src and performs the boot steps of
// Run (create main, place it, pop the initial core-run event) so coreStep
// can be driven directly.
func benchMachine(tb testing.TB, src string, legacy bool) (*Machine, *core) {
	tb.Helper()
	mod, err := lang.Compile("bench", src)
	if err != nil {
		tb.Fatalf("compile: %v", err)
	}
	m, err := New(mod, hw.OdroidXU4(), Options{
		Seed:         1,
		LegacyInterp: legacy,
		MaxThreads:   2,
		StackCells:   4096,
	})
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	main, err := m.newThread(-1, m.mod.FuncIndex["main"], nil)
	if err != nil {
		tb.Fatalf("newThread: %v", err)
	}
	m.placeThread(main)
	e := m.events.pop()
	c := m.cores[e.core]
	c.runPending = false
	return m, c
}

// step runs one quantum and re-arms the core (what the event loop does
// between core-run events for a spinning thread).
func step(m *Machine, c *core) {
	m.coreStep(c)
	e := m.events.pop()
	m.now = e.time
	m.cores[e.core].runPending = false
}

func benchCoreStep(b *testing.B, src string, legacy bool) {
	m, c := benchMachine(b, src, legacy)
	step(m, c) // warm caches and pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(m, c)
	}
	b.StopTimer()
	if m.err != nil {
		b.Fatal(m.err)
	}
	t := m.threads[0]
	b.ReportMetric(float64(t.instr)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkBurstFast / BenchmarkBurstLegacy measure the same ALU-heavy
// quantum on the precompiled fast path and on the legacy interpreter; their
// ns/op ratio is the fast-path speedup on pure compute.
func BenchmarkBurstFast(b *testing.B)   { benchCoreStep(b, benchSpinSrc, false) }
func BenchmarkBurstLegacy(b *testing.B) { benchCoreStep(b, benchSpinSrc, true) }

// BenchmarkBurstMemFast / BenchmarkBurstMemLegacy do the same for a
// memory-walking kernel where the shared cache model bounds the gain.
func BenchmarkBurstMemFast(b *testing.B)   { benchCoreStep(b, benchMemSrc, false) }
func BenchmarkBurstMemLegacy(b *testing.B) { benchCoreStep(b, benchMemSrc, true) }

// callHeavySrc exercises the call/return path (frame push/pop, register
// file recycling) rather than straight-line compute.
const benchCallSrc = `
func leaf(a int, b int) int {
	return a * 2 + b;
}
func main() {
	var i int = 0;
	var s int = 0;
	while (1 == 1) {
		s = leaf(s, i);
		i = i + 1;
		if (i > 1000000000) { i = 0; }
	}
}
`

func BenchmarkCoreStepCalls(b *testing.B) { benchCoreStep(b, benchCallSrc, false) }

// BenchmarkFig1WorkloadFast / BenchmarkFig1WorkloadLegacy run one complete
// simulation of each Fig. 1 benchmark (freqmine, streamcluster) per
// iteration — the end-to-end cold cost of one fig1 sweep cell, machine
// construction included, on each execution path.
func benchFig1Workloads(b *testing.B, legacy bool) {
	type prog struct {
		mod  *ir.Module
		args []int64
	}
	var progs []prog
	for _, name := range []string{"freqmine", "streamcluster"} {
		spec, ok := workloads.ByName(name)
		if !ok {
			b.Fatalf("workload %s not registered", name)
		}
		mod, err := spec.Compile()
		if err != nil {
			b.Fatal(err)
		}
		progs = append(progs, prog{mod, spec.SmallArgs()})
	}
	plat := hw.OdroidXU4()
	b.ReportAllocs()
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			m, err := New(p.mod, plat, Options{
				Seed:         13,
				Args:         p.args,
				CheckpointS:  400e-6,
				QuantumS:     50e-6,
				TickS:        200e-6,
				LegacyInterp: legacy,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := m.Run()
			if err != nil {
				b.Fatal(err)
			}
			instr += res.Instructions
		}
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

func BenchmarkFig1WorkloadFast(b *testing.B)   { benchFig1Workloads(b, false) }
func BenchmarkFig1WorkloadLegacy(b *testing.B) { benchFig1Workloads(b, true) }

// TestSteadyStateBurstZeroAllocs pins the allocation discipline: once warm,
// a scheduling quantum — burst execution, accounting, event push/pop —
// performs zero heap allocations, for both pure-compute and call-heavy
// steady states, on both execution paths.
func TestSteadyStateBurstZeroAllocs(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		legacy bool
	}{
		{"fast/alu", benchSpinSrc, false},
		{"fast/mem", benchMemSrc, false},
		{"fast/calls", benchCallSrc, false},
		{"legacy/alu", benchSpinSrc, true},
		{"legacy/calls", benchCallSrc, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m, c := benchMachine(t, tc.src, tc.legacy)
			for i := 0; i < 32; i++ {
				step(m, c) // reach steady state (pools, heap capacity)
			}
			if m.err != nil {
				t.Fatal(m.err)
			}
			allocs := testing.AllocsPerRun(100, func() { step(m, c) })
			if allocs != 0 {
				t.Fatalf("steady-state quantum allocates %.1f objects/run, want 0", allocs)
			}
		})
	}
}

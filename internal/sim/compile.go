package sim

// IR precompilation: the fast execution path lowers each ir.Module once into
// a flat, densely indexed instruction stream so the burst interpreter spends
// its time on instruction semantics instead of decoding. Per instruction the
// compiler resolves everything that is static:
//
//   - branch targets become flat indices into the function's code array
//     (no Blocks[b].Instrs[pc] double indirection on the hot path);
//   - per-instruction cycle costs collapse to a cost-class index into a tiny
//     per-core table precomputed from the core spec (the products the legacy
//     interpreter recomputes every step, e.g. CPIIntALU*0.5, are computed
//     once — the same float operands and operations, so the values are
//     bit-identical);
//   - float constants are pre-converted to their register bit patterns;
//   - global base addresses are pre-resolved (the legacy path recomputes the
//     O(sym) declaration-order prefix sum on every global access);
//   - builtins carry their base cost, FP work and sync classification.
//
// The compiled form is a pure acceleration structure: thread frames keep
// their canonical (block, pc) position at every burst boundary, so the sync
// executor, the monitor and the legacy interpreter all keep working
// unchanged, and a machine can be flipped between paths with
// Options.LegacyInterp. Differential tests pin the two paths to
// byte-identical results on every bundled workload.

import (
	"sync"

	"astro/internal/hw"
	"astro/internal/ir"
)

// Cost classes: the static per-instruction cycle costs of interp.go, keyed
// so a per-core-spec table lookup replaces the multiply. clsFixed costs are
// spec-independent and stored on the instruction itself.
const (
	clsFixed   uint8 = iota // spec-independent (nop, builtins, instrumentation)
	clsIntHalf              // CPIIntALU * 0.5 (const, mov)
	clsInt                  // CPIIntALU
	clsInt2                 // CPIIntALU * 2 (mul)
	clsInt6                 // CPIIntALU * 6 (div, rem)
	clsFP                   // CPIFPALU
	clsFP4                  // CPIFPALU * 4 (fdiv)
	clsMem                  // CPIMem (+ dynamic cache latency)
	clsBranch               // CPIBranch
	clsCall                 // CPICall (call, ret)
	nCostClasses
)

// costTable holds one core type's resolved per-class cycle costs.
type costTable [nCostClasses]float64

// makeCostTable precomputes the class costs for a core spec. Each entry is
// built with exactly the float operations the legacy interpreter performs
// inline, so the looked-up values are bit-identical to the recomputed ones.
func makeCostTable(spec *hw.CoreSpec) costTable {
	var t costTable
	t[clsIntHalf] = spec.CPIIntALU * 0.5
	t[clsInt] = spec.CPIIntALU
	t[clsInt2] = spec.CPIIntALU * 2
	t[clsInt6] = spec.CPIIntALU * 6
	t[clsFP] = spec.CPIFPALU
	t[clsFP4] = spec.CPIFPALU * 4
	t[clsMem] = spec.CPIMem
	t[clsBranch] = spec.CPIBranch
	t[clsCall] = spec.CPICall
	return t
}

// cinstr is one pre-decoded instruction in the flat stream, sized to fit a
// single cache line (56 bytes). Field use mirrors ir.Instr except where
// decoding resolved something:
//
//	OpBr:         a = flat branch target
//	OpCBr:        a = cond reg, b/c = flat then/else targets
//	OpConstF:     imm = float bit pattern (pre-converted)
//	OpLocalAddr:  aux = array size (bounds check)
//	OpGlobalAddr: aux = global base cell (size rechecked via the module)
//	OpBuiltin:    imm = base cycles, aux = FP work, sync precomputed
//
// Call/spawn/builtin argument registers live in the function's shared args
// arena (argOff/argN), not in a per-instruction slice: that keeps cinstr
// pointer-free-sized and one line wide.
type cinstr struct {
	op     ir.Opcode
	cls    uint8
	sync   bool  // must execute at a globally ordered point
	argN   uint8 // argument count in the args arena
	dst    int32
	a      int32
	b      int32
	c      int32
	sym    int32
	blk    int32 // source block (frame write-back at burst boundaries)
	pc     int32 // source pc within blk
	argOff int32 // offset into compiledFunc.args
	imm    int64
	aux    int64
}

// Superinstructions: the front end lowers expressions into highly regular
// adjacent pairs — materialize a constant then consume it, compute then move
// into the named variable, compare then conditionally branch. Fusing such a
// pair into one pre-decoded superop halves the dispatch count on typical
// straight-line code, which is where an interpreter whose per-op semantics
// are a handful of host instructions spends most of its time.
//
// Fusion never changes observable behaviour:
//
//   - only infallible, non-jumping, register-only ops fuse as the first
//     element (no loads/stores, div/rem, calls, builtins), so the first
//     element cannot leave the burst;
//   - the second element's cinstr stays in place at its original flat index
//     (the superop replaces the FIRST element only and advances the pc by
//     two), so a quantum that expires between the two halves suspends with
//     the frame pointing at the second element's ordinary instruction;
//   - the per-element cycle charges and the budget check between the two
//     halves are preserved exactly, so cycle accounting is bit-identical to
//     unfused execution.
//
// The superop values extend ir's opcode space contiguously, keeping the
// dispatch switch a dense jump table.
const (
	opConstConst   ir.Opcode = ir.OpDetermineConf + 1 + iota // ConstI/F ; ConstI/F
	opConstMov                                               // ConstI/F ; Mov
	opMovConst                                               // Mov ; ConstI/F
	opMovMov                                                 // Mov ; Mov
	opConstIBin                                              // ConstI ; int binop
	opConstFBin                                              // ConstF ; fp binop
	opBinMovI                                                // int binop ; Mov
	opBinMovF                                                // fp binop ; Mov
	opCmpCBr                                                 // int compare ; CBr on its result
	opConstBinMovI                                           // ConstI ; int binop ; Mov of its result
	opConstBinMovF                                           // ConstF ; fp binop ; Mov of its result
	opConstCmpCBr                                            // ConstI ; int compare ; CBr on its result
	opLAddrLoad                                              // LocalAddr ; Load of it
	opLAddrStore                                             // LocalAddr ; Store through it
	opGAddrLoad                                              // GlobalAddr ; Load of it
	opGAddrStore                                             // GlobalAddr ; Store through it

	// Chain superops: second-level fusion over ADJACENT superop heads (see
	// fuseChains). The head of the second constituent superop keeps its
	// original cinstr in place — the chain handler reads that cinstr's
	// fields directly, and a quantum that expires mid-chain suspends at a
	// constituent boundary whose instruction executes standalone.
	opIChain5      // opConstIBin ; opConstBinMovI   (5 elements)
	opFChain5      // opConstFBin ; opConstBinMovF   (5 elements)
	opIncCmpBr     // opConstBinMovI ; opConstCmpCBr (6 elements)
	opConst2CmpBr  // opConstConst ; opCmpCBr        (4 elements)
	opIBinIBin     // opConstIBin ; opConstIBin      (4 elements)
	opFBinFBin     // opConstFBin ; opConstFBin      (4 elements)
	opMovConstBinI // opMovConst ; opBinMovI         (4 elements)
	opBinMovICmpBr // opBinMovI ; opConstCmpCBr      (5 elements)
)

// Superop field use (the first element keeps dst/imm/a as compiled):
//
//	opConstConst: dst,imm = first const   | c = second dst, aux = second imm
//	opConstMov:   dst,imm = const         | c = mov dst, a = mov src
//	opMovConst:   dst,a = mov             | c = const dst, aux = const imm
//	opMovMov:     dst,a = first mov       | c = second dst, b = second src
//	opConstIBin:  dst,imm = const         | sym = bin op, a = bin dst, b/c = operands
//	opConstFBin:  dst,imm = const (bits)  | sym = bin op, a = bin dst, b/c = operands
//	opBinMovI/F:  sym = bin op, dst = bin dst, a/b = operands | c = mov dst
//	opCmpCBr:     sym = cmp op, dst = cmp dst, a/b = operands | c = then, aux = else
//	opConstBinMov*: as opConstIBin/FBin    | aux = mov dst
//	opConstCmpCBr:  as opConstIBin (cmp)   | aux = then | else<<32
//	op*AddrLoad:  addr fields as compiled  | c = load dst
//	op*AddrStore: addr fields as compiled  | c = stored-value reg
//
// (Loads and stores do not distinguish int/float at execution time — cells
// carry raw bits — so one superop covers both typed variants.)
//
// (For opConstMov the mov source is usually the constant's register, but
// fusion does not require it; the handler reads the register file after the
// constant write, which preserves either data flow.)

func isConstProducer(op ir.Opcode) bool { return op == ir.OpConstI || op == ir.OpConstF }

func isIntBin(op ir.Opcode) bool {
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		return true
	}
	return false
}

func isFPBin(op ir.Opcode) bool {
	switch op {
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		return true
	}
	return false
}

func isIntCmp(op ir.Opcode) bool {
	switch op {
	case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		return true
	}
	return false
}

// fusePairs runs the peephole over one block's instructions (blocks cannot
// be entered mid-stream, so only intra-block pairs fuse).
func fusePairs(code []cinstr) {
	for i := 0; i+1 < len(code); i++ {
		a, b := &code[i], &code[i+1]
		switch {
		case a.op == ir.OpLocalAddr && (b.op == ir.OpLoadI || b.op == ir.OpLoadF) && b.a == a.dst:
			a.op = opLAddrLoad
			a.c = b.dst
		case a.op == ir.OpLocalAddr && (b.op == ir.OpStoreI || b.op == ir.OpStoreF) && b.a == a.dst:
			a.op = opLAddrStore
			a.c = b.b
		case a.op == ir.OpGlobalAddr && (b.op == ir.OpLoadI || b.op == ir.OpLoadF) && b.a == a.dst:
			a.op = opGAddrLoad
			a.c = b.dst
		case a.op == ir.OpGlobalAddr && (b.op == ir.OpStoreI || b.op == ir.OpStoreF) && b.a == a.dst:
			a.op = opGAddrStore
			a.c = b.b
		case isIntCmp(a.op) && b.op == ir.OpCBr && b.a == a.dst:
			a.sym = int32(a.op)
			a.op = opCmpCBr
			a.c = b.b
			a.aux = int64(b.c)
		case isConstProducer(a.op) && isConstProducer(b.op):
			a.op = opConstConst
			a.c = b.dst
			a.aux = b.imm
		case isConstProducer(a.op) && b.op == ir.OpMov:
			a.op = opConstMov
			a.c = b.dst
			a.a = b.a
		case a.op == ir.OpMov && isConstProducer(b.op):
			a.op = opMovConst
			a.c = b.dst
			a.aux = b.imm
		case a.op == ir.OpMov && b.op == ir.OpMov:
			a.op = opMovMov
			a.c = b.dst
			a.b = b.a
		case a.op == ir.OpConstI && isIntBin(b.op):
			a.op = opConstIBin
			a.sym = int32(b.op)
			a.a = b.dst
			a.b = b.a
			a.c = b.b
		case a.op == ir.OpConstF && isFPBin(b.op):
			a.op = opConstFBin
			a.sym = int32(b.op)
			a.a = b.dst
			a.b = b.a
			a.c = b.b
		case isIntBin(a.op) && b.op == ir.OpMov && b.a == a.dst:
			a.sym = int32(a.op)
			a.op = opBinMovI
			a.c = b.dst
		case isFPBin(a.op) && b.op == ir.OpMov && b.a == a.dst:
			a.sym = int32(a.op)
			a.op = opBinMovF
			a.c = b.dst
		default:
			continue
		}
		i++ // consumed the pair; the second element stays as the resume point
	}
	// Second pass: grow const+bin pairs into the front end's canonical
	// triples (assignment: const, op, mov-into-variable; loop test: const,
	// compare, branch). The second and third elements keep their original
	// cinstrs as mid-sequence resume points.
	for i := 0; i+2 < len(code); i++ {
		a := &code[i]
		third := &code[i+2]
		switch {
		case a.op == opConstIBin && third.op == ir.OpMov && third.a == a.a:
			a.op = opConstBinMovI
			a.aux = int64(third.dst)
			i += 2
		case a.op == opConstFBin && third.op == ir.OpMov && third.a == a.a:
			a.op = opConstBinMovF
			a.aux = int64(third.dst)
			i += 2
		case a.op == opConstIBin && isIntCmp(ir.Opcode(a.sym)) &&
			third.op == ir.OpCBr && third.a == a.a:
			a.op = opConstCmpCBr
			a.aux = int64(third.b) | int64(third.c)<<32
			i += 2
		}
	}
	// Third pass: chain ADJACENT superops. Only the first head's opcode
	// changes; every constituent cinstr — including the second superop's
	// head — keeps its original form in place, so a quantum that expires
	// between any two elements suspends on an instruction that executes
	// standalone. The shapes cover the front end's hottest emissions: the
	// constant-operand expression ladder (`x = x*c1 + c2` lowers to
	// ConstF;FMul;ConstF;FAdd), the statement seam where an assignment's
	// Mov pairs with the next statement's constant (Mov;Const;bin;Mov),
	// the induction step flowing into its guard (bin;Mov;Const;cmp;CBr),
	// and the two-constant loop test (Const;Const;cmp;CBr).
	for i := 0; i < len(code); i++ {
		a := &code[i]
		switch a.op {
		case opConstIBin:
			if i+4 < len(code) && code[i+2].op == opConstBinMovI {
				a.op = opIChain5
				i += 4
			} else if i+3 < len(code) && code[i+2].op == opConstIBin {
				a.op = opIBinIBin
				i += 3
			}
		case opConstFBin:
			if i+4 < len(code) && code[i+2].op == opConstBinMovF {
				a.op = opFChain5
				i += 4
			} else if i+3 < len(code) && code[i+2].op == opConstFBin {
				a.op = opFBinFBin
				i += 3
			}
		case opConstBinMovI:
			if i+5 < len(code) && code[i+3].op == opConstCmpCBr {
				a.op = opIncCmpBr
				i += 5
			}
		case opConstConst:
			if i+3 < len(code) && code[i+2].op == opCmpCBr {
				a.op = opConst2CmpBr
				i += 3
			}
		case opMovConst:
			if i+3 < len(code) && code[i+2].op == opBinMovI {
				a.op = opMovConstBinI
				i += 3
			}
		case opBinMovI:
			if i+4 < len(code) && code[i+2].op == opConstCmpCBr {
				a.op = opBinMovICmpBr
				i += 4
			}
		}
	}
}

// compiledFunc is one function's flat instruction stream. Blocks are laid
// out in declaration order, so flat(pc) = blockStart[block] + pc.
type compiledFunc struct {
	fn         *ir.Function
	code       []cinstr
	blockStart []int32
	args       []int32 // shared argument-register arena
}

// argRegs returns the argument registers of a call/spawn/builtin.
func (cf *compiledFunc) argRegs(ci *cinstr) []int32 {
	return cf.args[ci.argOff : int(ci.argOff)+int(ci.argN)]
}

// Program is a module lowered for fast dispatch: the bytecode tier's
// in-memory form. The instruction stream is immutable and safe for
// concurrent machines; per-core-cost specializations are built lazily and
// cached on the Program (see variant). A Program round-trips through the
// canonical byte encoding (EncodeProgram/DecodeProgram) without changing
// what it executes.
type Program struct {
	mod   *ir.Module
	funcs []compiledFunc

	mu       sync.Mutex
	variants map[costTable]costVariant
}

// costVariant is a Program's per-core-cost specialization: for one core
// cost table, the fully resolved cycle charge of every flat instruction,
// indexed [func][flat pc]. Baking the table into a flat array turns the
// hot-path charge into a single load with no class dispatch; each entry is
// the exact float makeCostTable produces (or the fixed cost interp.go
// hard-codes), so cycle accounting stays bit-identical to the unspecialized
// paths.
type costVariant [][]float64

// variant returns the cost-specialized charge arrays for one core cost
// table, building and caching them on first use. Machines bind a variant
// per core at construction time, so the hot path never allocates.
func (p *Program) variant(t costTable) costVariant {
	p.mu.Lock()
	defer p.mu.Unlock()
	if v, ok := p.variants[t]; ok {
		return v
	}
	v := make(costVariant, len(p.funcs))
	for i := range p.funcs {
		code := p.funcs[i].code
		costs := make([]float64, len(code))
		for j := range code {
			costs[j] = staticCost(&code[j], &t)
		}
		v[i] = costs
	}
	if p.variants == nil {
		p.variants = map[costTable]costVariant{}
	}
	p.variants[t] = v
	return v
}

// staticCost resolves one instruction's cycle charge under a cost table.
// clsFixed instructions carry the spec-independent costs interp.go charges
// inline; sync ops never charge inside a burst (they bill through the sync
// executor), so their entry is never read.
func staticCost(ci *cinstr, t *costTable) float64 {
	if ci.cls != clsFixed {
		return t[ci.cls]
	}
	switch ci.op {
	case ir.OpNop:
		return 1
	case ir.OpLogPhase:
		return 25
	case ir.OpToggleBlocked:
		return 20
	case ir.OpBuiltin:
		return float64(ci.imm)
	}
	return 0
}

// CompileModule lowers every function of the module into the flat
// register-machine stream, superop fusion included. Compilation is
// deterministic: two compiles of equal modules produce identical streams,
// and EncodeProgram pins that determinism down to the byte.
func CompileModule(mod *ir.Module) *Program {
	p := &Program{mod: mod, funcs: make([]compiledFunc, len(mod.Funcs))}
	for i, fn := range mod.Funcs {
		p.funcs[i] = compileFunc(mod, fn)
	}
	return p
}

func compileFunc(mod *ir.Module, fn *ir.Function) compiledFunc {
	cf := compiledFunc{fn: fn, blockStart: make([]int32, len(fn.Blocks))}
	total := 0
	for i, b := range fn.Blocks {
		cf.blockStart[i] = int32(total)
		total += len(b.Instrs)
	}
	cf.code = make([]cinstr, 0, total)
	for bi, b := range fn.Blocks {
		for pc := range b.Instrs {
			cf.code = append(cf.code, compileInstr(mod, fn, &cf, &b.Instrs[pc], int32(bi), int32(pc)))
		}
	}
	for bi := range fn.Blocks {
		start := cf.blockStart[bi]
		end := int32(len(cf.code))
		if bi+1 < len(fn.Blocks) {
			end = cf.blockStart[bi+1]
		}
		fusePairs(cf.code[start:end])
	}
	return cf
}

func compileInstr(mod *ir.Module, fn *ir.Function, cf *compiledFunc, in *ir.Instr, blk, pc int32) cinstr {
	ci := cinstr{
		op: in.Op, dst: in.Dst, a: in.A, b: in.B, c: in.C,
		sym: in.Sym, imm: in.Imm, blk: blk, pc: pc,
	}
	if n := len(in.Args); n > 0 {
		if n > 255 {
			// The front end cannot produce this (parameter lists are tiny),
			// but fail safe rather than truncate.
			panic("sim: compile: more than 255 call arguments")
		}
		ci.argOff = int32(len(cf.args))
		ci.argN = uint8(n)
		cf.args = append(cf.args, in.Args...)
	}
	switch in.Op {
	case ir.OpConstI:
		ci.cls = clsIntHalf
	case ir.OpConstF:
		ci.cls = clsIntHalf
		ci.imm = int64(f2b(in.FImm))
	case ir.OpMov:
		ci.cls = clsIntHalf
	case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpNeg, ir.OpNot, ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		ci.cls = clsInt
	case ir.OpMul:
		ci.cls = clsInt2
	case ir.OpDiv, ir.OpRem:
		ci.cls = clsInt6
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFNeg,
		ir.OpFEq, ir.OpFNe, ir.OpFLt, ir.OpFLe, ir.OpFGt, ir.OpFGe,
		ir.OpI2F, ir.OpF2I:
		ci.cls = clsFP
	case ir.OpFDiv:
		ci.cls = clsFP4
	case ir.OpLocalAddr:
		ci.cls = clsInt
		ci.aux = fn.Arrays[in.Sym].Size
	case ir.OpGlobalAddr:
		ci.cls = clsInt
		ci.aux = mod.GlobalBase(int(in.Sym))
	case ir.OpLoadI, ir.OpLoadF, ir.OpStoreI, ir.OpStoreF:
		ci.cls = clsMem
	case ir.OpBr:
		ci.cls = clsBranch
		ci.a = cf.blockStart[in.A]
	case ir.OpCBr:
		ci.cls = clsBranch
		ci.b = cf.blockStart[in.B]
		ci.c = cf.blockStart[in.C]
	case ir.OpRet, ir.OpCall:
		ci.cls = clsCall
	case ir.OpBuiltin:
		bi := ir.Builtin(ir.BuiltinID(in.Sym))
		ci.imm = int64(bi.BaseCycles)
		ci.aux = int64(bi.FPWork)
		ci.sync = isSyncOp(in)
	case ir.OpSpawn, ir.OpSetConfig, ir.OpDetermineConf:
		ci.sync = true
	}
	return ci
}

// Compiled programs are cached per module so a campaign that simulates the
// same module thousands of times pays the lowering cost once. The cache is
// bounded (FIFO) rather than process-global-unbounded so a long-running
// astro-serve does not pin every module it ever compiled (the same concern
// that keeps campaign.Job module hashes per-job).
const progCacheCap = 64

var progCache struct {
	mu    sync.Mutex
	m     map[*ir.Module]*Program
	order []*ir.Module
}

// CompiledProgram returns the cached lowering of mod, compiling on miss.
// The cache is keyed by module pointer, so callers that decode a fresh
// module per job (workers) never hit it — shipping the encoded program over
// the wire is what removes that recompilation.
func CompiledProgram(mod *ir.Module) *Program {
	progCache.mu.Lock()
	if p, ok := progCache.m[mod]; ok {
		progCache.mu.Unlock()
		mCompileHit.Inc()
		return p
	}
	progCache.mu.Unlock()

	p := CompileModule(mod)

	progCache.mu.Lock()
	defer progCache.mu.Unlock()
	if progCache.m == nil {
		progCache.m = map[*ir.Module]*Program{}
	}
	if cached, ok := progCache.m[mod]; ok {
		return cached // raced with another machine; keep one copy
	}
	if len(progCache.order) >= progCacheCap {
		evict := progCache.order[0]
		progCache.order = progCache.order[1:]
		delete(progCache.m, evict)
	}
	progCache.m[mod] = p
	progCache.order = append(progCache.order, p.mod)
	mCompiles.Inc()
	mSuperops.Add(countSuperops(p))
	return p
}

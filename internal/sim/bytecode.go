package sim

// Canonical byte encoding of compiled programs — the bytecode tier's wire
// and store format. EncodeProgram flattens a Program (the superop-fused
// register-machine stream of compile.go) plus the platform's distinct
// big/LITTLE cost tables into a deterministic byte string: two independent
// compiles of equal modules encode identically, so compiled programs
// content-address exactly like results and trained agents (the campaign
// store keys them by module hash + cost-table identity, see
// campaign.ProgramKey).
//
// The format defends itself in three layers:
//
//   - a version derived from the opcode-space size, so a stream compiled by
//     a different compiler generation (more or fewer superops) is refused
//     rather than misdispatched;
//   - the source module's content hash and the platform's cost-table
//     identity, so an artifact can never silently attach to the wrong
//     module or the wrong silicon;
//   - a sha256 trailer over the whole payload, so corruption fails loudly
//     instead of decoding into a plausible-looking stream.
//
// DecodeProgram re-checks all three plus the structural invariants the
// dispatcher relies on, and rebuilds the per-core-cost specialization for
// every table carried in the header — a decoded program is ready to run
// with zero compilation work (invariant 12 pins that it also runs
// byte-identically to a locally compiled one).

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"astro/internal/hw"
	"astro/internal/ir"
)

const bcMagic = "ASTROBC1"

// encoder/decoder mirror ir's varint codec (ir keeps its own unexported):
// uvarint/varint scalars, big-endian float bits, length-prefixed strings.
type encoder struct{ buf []byte }

func (e *encoder) u64(v uint64)  { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) i64(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) f64(v float64) { e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(v)) }
func (e *encoder) str(s string)  { e.u64(uint64(len(s))); e.buf = append(e.buf, s...) }

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("sim: program artifact: truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("sim: program artifact: truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.err = fmt.Errorf("sim: program artifact: truncated float at offset %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if d.off+int(n) > len(d.buf) {
		d.err = fmt.Errorf("sim: program artifact: truncated string at offset %d", d.off)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// bcVersion pins the opcode space: superop values extend ir's opcodes
// contiguously, so the first unused value identifies the compiler
// generation. Adding or removing a superop changes the dispatch contract
// and must invalidate every cached artifact — deriving the version from the
// last opcode makes that automatic.
const bcVersion = uint64(opBinMovICmpBr) + 1

// bcChecksumLen is the length of the sha256 prefix trailing the payload.
const bcChecksumLen = 8

// moduleHashHex is the content address of a module: the sha256 of its
// canonical ir encoding (the same value campaign.ModuleHash computes;
// duplicated here because sim must stay importable from campaign).
func moduleHashHex(m *ir.Module) string {
	sum := sha256.Sum256(ir.Encode(m))
	return hex.EncodeToString(sum[:])
}

// distinctCostTables returns the platform's distinct per-core cost tables in
// first-appearance core order — for a big.LITTLE platform, the LITTLE and
// big tables. Order is deterministic, so the encoding and identity are too.
func distinctCostTables(plat *hw.Platform) []costTable {
	var tables []costTable
	for i := range plat.Cores {
		t := makeCostTable(&plat.Cores[i])
		dup := false
		for _, seen := range tables {
			if seen == t {
				dup = true
				break
			}
		}
		if !dup {
			tables = append(tables, t)
		}
	}
	return tables
}

// CostTableID is the content identity of a platform's cost model: a sha256
// over the bit patterns of every distinct per-core cost table in core
// order. Two platforms with the same ID charge bit-identical cycles per
// instruction class, so a program artifact specialized for one is valid for
// the other; campaign.ProgramKey includes it so artifacts never cross cost
// models.
func CostTableID(plat *hw.Platform) string {
	h := sha256.New()
	h.Write([]byte("astro-costtable-v1\n"))
	var buf [8]byte
	for _, t := range distinctCostTables(plat) {
		for _, v := range t {
			binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// EncodeProgram serializes a compiled program to the canonical byte format,
// specialized for (and pinned to) plat's cost tables. The bytes are
// deterministic: same module, same platform, same compiler generation →
// same bytes, across processes.
func EncodeProgram(p *Program, plat *hw.Platform) []byte {
	e := &encoder{buf: append([]byte(nil), bcMagic...)}
	e.u64(bcVersion)
	e.str(moduleHashHex(p.mod))
	e.str(CostTableID(plat))
	tables := distinctCostTables(plat)
	e.u64(uint64(len(tables)))
	for _, t := range tables {
		for _, v := range t {
			e.f64(v)
		}
	}
	e.u64(uint64(len(p.funcs)))
	for i := range p.funcs {
		cf := &p.funcs[i]
		e.u64(uint64(len(cf.blockStart)))
		for _, s := range cf.blockStart {
			e.u64(uint64(s))
		}
		e.u64(uint64(len(cf.args)))
		for _, a := range cf.args {
			e.i64(int64(a))
		}
		e.u64(uint64(len(cf.code)))
		for j := range cf.code {
			ci := &cf.code[j]
			e.u64(uint64(ci.op))
			e.u64(uint64(ci.cls))
			if ci.sync {
				e.u64(1)
			} else {
				e.u64(0)
			}
			e.u64(uint64(ci.argN))
			e.i64(int64(ci.dst))
			e.i64(int64(ci.a))
			e.i64(int64(ci.b))
			e.i64(int64(ci.c))
			e.i64(int64(ci.sym))
			e.i64(int64(ci.blk))
			e.i64(int64(ci.pc))
			e.i64(int64(ci.argOff))
			e.i64(ci.imm)
			e.i64(ci.aux)
		}
	}
	sum := sha256.Sum256(e.buf)
	return append(e.buf, sum[:bcChecksumLen]...)
}

// ProgramBytesCurrent reports whether data plausibly holds an artifact of
// the current compiler generation — magic and version only, no integrity
// check. Coordinators use it to refuse shipping stale store artifacts
// (e.g. cached by an older build) that every worker would reject anyway.
func ProgramBytesCurrent(data []byte) bool {
	if len(data) < len(bcMagic) || string(data[:len(bcMagic)]) != bcMagic {
		return false
	}
	v, n := binary.Uvarint(data[len(bcMagic):])
	return n > 0 && v == bcVersion
}

// DecodeProgram rebuilds a Program from its canonical encoding, verifying
// integrity (sha256 trailer), provenance (module hash must match mod,
// cost-table identity and bit patterns must match plat) and structure (the
// flat-stream invariants the dispatcher indexes by). The returned program
// is bound to mod and already specialized for plat's cost tables, so
// executing it performs no compilation work. Any mismatch is an error: the
// caller falls back to compiling locally, never to trusting the bytes.
func DecodeProgram(data []byte, mod *ir.Module, plat *hw.Platform) (*Program, error) {
	if len(data) < len(bcMagic)+bcChecksumLen || string(data[:len(bcMagic)]) != bcMagic {
		return nil, fmt.Errorf("sim: program artifact: bad magic")
	}
	payload, trailer := data[:len(data)-bcChecksumLen], data[len(data)-bcChecksumLen:]
	sum := sha256.Sum256(payload)
	if string(sum[:bcChecksumLen]) != string(trailer) {
		return nil, fmt.Errorf("sim: program artifact: checksum mismatch (corrupt bytes)")
	}
	d := &decoder{buf: payload, off: len(bcMagic)}
	if v := d.u64(); d.err == nil && v != bcVersion {
		return nil, fmt.Errorf("sim: program artifact: version %d, want %d (compiler generation changed)", v, bcVersion)
	}
	if h := d.str(); d.err == nil && h != moduleHashHex(mod) {
		return nil, fmt.Errorf("sim: program artifact was compiled from a different module than %q", mod.Name)
	}
	if id := d.str(); d.err == nil && id != CostTableID(plat) {
		return nil, fmt.Errorf("sim: program artifact was specialized for a different cost table than platform %q", plat.Name)
	}
	localTables := distinctCostTables(plat)
	nTables := d.u64()
	if d.err == nil && int(nTables) != len(localTables) {
		return nil, fmt.Errorf("sim: program artifact: %d cost tables, platform has %d", nTables, len(localTables))
	}
	tables := make([]costTable, 0, len(localTables))
	for i := 0; i < int(nTables) && d.err == nil; i++ {
		var t costTable
		for k := range t {
			t[k] = d.f64()
		}
		if d.err == nil && t != localTables[i] {
			return nil, fmt.Errorf("sim: program artifact: cost table %d does not match platform %q bit-for-bit", i, plat.Name)
		}
		tables = append(tables, t)
	}
	nf := d.u64()
	if d.err == nil && int(nf) != len(mod.Funcs) {
		return nil, fmt.Errorf("sim: program artifact: %d functions, module has %d", nf, len(mod.Funcs))
	}
	p := &Program{mod: mod, funcs: make([]compiledFunc, len(mod.Funcs))}
	for i := 0; i < int(nf) && d.err == nil; i++ {
		fn := mod.Funcs[i]
		cf := compiledFunc{fn: fn}
		nb := d.u64()
		if d.err == nil && int(nb) != len(fn.Blocks) {
			return nil, fmt.Errorf("sim: program artifact: func %q has %d block starts, want %d", fn.Name, nb, len(fn.Blocks))
		}
		cf.blockStart = make([]int32, int(nb))
		for j := 0; j < int(nb) && d.err == nil; j++ {
			cf.blockStart[j] = int32(d.u64())
		}
		na := d.u64()
		for j := uint64(0); j < na && d.err == nil; j++ {
			cf.args = append(cf.args, int32(d.i64()))
		}
		total := 0
		for _, b := range fn.Blocks {
			total += len(b.Instrs)
		}
		nc := d.u64()
		if d.err == nil && int(nc) != total {
			return nil, fmt.Errorf("sim: program artifact: func %q has %d instructions, module has %d", fn.Name, nc, total)
		}
		cf.code = make([]cinstr, int(nc))
		for j := 0; j < int(nc) && d.err == nil; j++ {
			ci := &cf.code[j]
			op := d.u64()
			if d.err == nil && op >= bcVersion {
				return nil, fmt.Errorf("sim: program artifact: opcode %d out of range in %q", op, fn.Name)
			}
			ci.op = ir.Opcode(op)
			cls := d.u64()
			if d.err == nil && cls >= uint64(nCostClasses) {
				return nil, fmt.Errorf("sim: program artifact: cost class %d out of range in %q", cls, fn.Name)
			}
			ci.cls = uint8(cls)
			ci.sync = d.u64() != 0
			ci.argN = uint8(d.u64())
			ci.dst = int32(d.i64())
			ci.a = int32(d.i64())
			ci.b = int32(d.i64())
			ci.c = int32(d.i64())
			ci.sym = int32(d.i64())
			ci.blk = int32(d.i64())
			ci.pc = int32(d.i64())
			ci.argOff = int32(d.i64())
			ci.imm = d.i64()
			ci.aux = d.i64()
			if d.err == nil && int(ci.argOff)+int(ci.argN) > len(cf.args) {
				return nil, fmt.Errorf("sim: program artifact: argument window out of range in %q", fn.Name)
			}
		}
		// Structural sanity on block layout: starts must be monotone and in
		// range, or frame (block, pc) ↔ flat-index conversion would index
		// out of the stream.
		for j := 0; j < int(nb) && d.err == nil; j++ {
			s := cf.blockStart[j]
			if s < 0 || int(s) > total || (j > 0 && s < cf.blockStart[j-1]) {
				return nil, fmt.Errorf("sim: program artifact: block layout out of range in %q", fn.Name)
			}
		}
		p.funcs[i] = cf
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("sim: program artifact: %d trailing bytes", len(payload)-d.off)
	}
	// Apply the specialization pass for every cost table the artifact was
	// pinned to, so machines built from this program bind their variant
	// without compiling or building anything.
	for _, t := range tables {
		p.variant(t)
	}
	mProgDecode.Inc()
	return p, nil
}

package sim

import (
	"math"

	"astro/internal/cache"
	"astro/internal/features"
	"astro/internal/ir"
)

// runBurstFast is the precompiled twin of runBurst: identical instruction
// semantics, identical float accounting order (every cycle addition uses the
// same operand values in the same sequence, so results are byte-identical to
// the legacy interpreter), executed over the module's flat instruction
// stream with hot state (code array, flat pc, register file, counters) held
// in locals. Frames keep their canonical (block, pc) position: it is decoded
// to a flat index on entry and written back at every burst boundary, so
// everything outside the burst loop is path-agnostic.
func (m *Machine) runBurstFast(c *core, t *Thread, budget float64, bc *burstCtx) burstStatus {
	prog := m.prog
	mem := m.mem
	cycles, nInstr := bc.cycles, bc.instr
	fp, acc, miss := bc.fp, bc.acc, bc.miss
	// The core's per-class costs are loop constants; hoisting them into
	// locals lets the compiler keep the hot ones in registers.
	cIntHalf := c.costs[clsIntHalf]
	cInt := c.costs[clsInt]
	cInt2 := c.costs[clsInt2]
	cInt6 := c.costs[clsInt6]
	cFP := c.costs[clsFP]
	cFP4 := c.costs[clsFP4]
	cMem := c.costs[clsMem]
	cBranch := c.costs[clsBranch]
	cCall := c.costs[clsCall]

	bounds := m.opts.BoundsCheck

	fr := &t.frames[len(t.frames)-1]
	cf := &prog.funcs[fr.fnIdx]
	code := cf.code
	fpc := int(cf.blockStart[fr.block]) + int(fr.pc)
	regs := fr.regs
	arrays := fr.arrays
	// costv is the program's specialization for this core's cost table: the
	// resolved charge of every flat instruction (see Program.variant). Fused
	// handlers read it instead of re-dispatching on the constituent's class,
	// which removes the second-element cost branches; the stored floats are
	// the exact makeCostTable values, so accounting is unchanged.
	costv := c.costv
	costs := costv[fr.fnIdx]

	status := stQuantum
loop:
	for cycles < budget {
		ci := &code[fpc]
		switch ci.op {
		case ir.OpNop:
			cycles += 1
			fpc++

		case ir.OpConstI, ir.OpConstF:
			regs[ci.dst] = uint64(ci.imm)
			cycles += cIntHalf
			fpc++
		case ir.OpMov:
			regs[ci.dst] = regs[ci.a]
			cycles += cIntHalf
			fpc++

		case ir.OpAdd:
			regs[ci.dst] = uint64(int64(regs[ci.a]) + int64(regs[ci.b]))
			cycles += cInt
			fpc++
		case ir.OpSub:
			regs[ci.dst] = uint64(int64(regs[ci.a]) - int64(regs[ci.b]))
			cycles += cInt
			fpc++
		case ir.OpMul:
			regs[ci.dst] = uint64(int64(regs[ci.a]) * int64(regs[ci.b]))
			cycles += cInt2
			fpc++
		case ir.OpDiv:
			d := int64(regs[ci.b])
			if d == 0 {
				m.fail("integer division by zero in %s (thread %d)", cf.fn.Name, t.ID)
				status = stErr
				break loop
			}
			regs[ci.dst] = uint64(int64(regs[ci.a]) / d)
			cycles += cInt6
			fpc++
		case ir.OpRem:
			d := int64(regs[ci.b])
			if d == 0 {
				m.fail("integer remainder by zero in %s (thread %d)", cf.fn.Name, t.ID)
				status = stErr
				break loop
			}
			regs[ci.dst] = uint64(int64(regs[ci.a]) % d)
			cycles += cInt6
			fpc++
		case ir.OpAnd:
			regs[ci.dst] = regs[ci.a] & regs[ci.b]
			cycles += cInt
			fpc++
		case ir.OpOr:
			regs[ci.dst] = regs[ci.a] | regs[ci.b]
			cycles += cInt
			fpc++
		case ir.OpXor:
			regs[ci.dst] = regs[ci.a] ^ regs[ci.b]
			cycles += cInt
			fpc++
		case ir.OpShl:
			regs[ci.dst] = uint64(int64(regs[ci.a]) << (regs[ci.b] & 63))
			cycles += cInt
			fpc++
		case ir.OpShr:
			regs[ci.dst] = uint64(int64(regs[ci.a]) >> (regs[ci.b] & 63))
			cycles += cInt
			fpc++
		case ir.OpNeg:
			regs[ci.dst] = uint64(-int64(regs[ci.a]))
			cycles += cInt
			fpc++
		case ir.OpNot:
			if regs[ci.a] == 0 {
				regs[ci.dst] = 1
			} else {
				regs[ci.dst] = 0
			}
			cycles += cInt
			fpc++
		case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
			a, b := int64(regs[ci.a]), int64(regs[ci.b])
			regs[ci.dst] = boolBit(intCmp(ci.op, a, b))
			cycles += cInt
			fpc++

		case ir.OpFAdd:
			regs[ci.dst] = f2b(b2f(regs[ci.a]) + b2f(regs[ci.b]))
			cycles += cFP
			fp++
			fpc++
		case ir.OpFSub:
			regs[ci.dst] = f2b(b2f(regs[ci.a]) - b2f(regs[ci.b]))
			cycles += cFP
			fp++
			fpc++
		case ir.OpFMul:
			regs[ci.dst] = f2b(b2f(regs[ci.a]) * b2f(regs[ci.b]))
			cycles += cFP
			fp++
			fpc++
		case ir.OpFDiv:
			regs[ci.dst] = f2b(b2f(regs[ci.a]) / b2f(regs[ci.b]))
			cycles += cFP4
			fp++
			fpc++
		case ir.OpFNeg:
			regs[ci.dst] = f2b(-b2f(regs[ci.a]))
			cycles += cFP
			fp++
			fpc++
		case ir.OpFEq, ir.OpFNe, ir.OpFLt, ir.OpFLe, ir.OpFGt, ir.OpFGe:
			a, b := b2f(regs[ci.a]), b2f(regs[ci.b])
			regs[ci.dst] = boolBit(floatCmp(ci.op, a, b))
			cycles += cFP
			fp++
			fpc++
		case ir.OpI2F:
			regs[ci.dst] = f2b(float64(int64(regs[ci.a])))
			cycles += cFP
			fp++
			fpc++
		case ir.OpF2I:
			regs[ci.dst] = uint64(int64(b2f(regs[ci.a])))
			cycles += cFP
			fp++
			fpc++

		case ir.OpLocalAddr:
			idx := ci.imm
			if ci.a != ir.NoReg {
				idx = int64(regs[ci.a])
			}
			if bounds && (idx < 0 || idx >= ci.aux) {
				ad := &cf.fn.Arrays[ci.sym]
				m.fail("index %d out of range for array %s[%d] in %s (thread %d)",
					idx, ad.Name, ad.Size, cf.fn.Name, t.ID)
				status = stErr
				break loop
			}
			regs[ci.dst] = uint64(arrays[ci.sym] + idx)
			cycles += cInt
			fpc++
		case ir.OpGlobalAddr:
			idx := ci.imm
			if ci.a != ir.NoReg {
				idx = int64(regs[ci.a])
			}
			if bounds && (idx < 0 || idx >= m.mod.Globals[ci.sym].Size) {
				g := &m.mod.Globals[ci.sym]
				m.fail("index %d out of range for global %s[%d] in %s (thread %d)",
					idx, g.Name, g.Size, cf.fn.Name, t.ID)
				status = stErr
				break loop
			}
			regs[ci.dst] = uint64(ci.aux + idx)
			cycles += cInt
			fpc++

		case ir.OpLoadI, ir.OpLoadF:
			addr := int64(regs[ci.a])
			if addr < 0 || addr >= int64(len(mem)) {
				m.fail("load from invalid address %d in %s (thread %d)", addr, cf.fn.Name, t.ID)
				status = stErr
				break loop
			}
			regs[ci.dst] = mem[addr]
			acc++
			var lat float64
			switch c.hier.Access(uint64(addr) * 8) {
			case cache.L1:
				lat = c.spec.L1HitCycles
			case cache.L2:
				lat = c.spec.L2HitCycles
			default:
				miss++
				lat = c.spec.L2HitCycles + c.spec.DRAMCycles(m.plat.DRAMLatencyNs)
			}
			cycles += cMem + lat
			fpc++
		case ir.OpStoreI, ir.OpStoreF:
			addr := int64(regs[ci.a])
			if addr < 0 || addr >= int64(len(mem)) {
				m.fail("store to invalid address %d in %s (thread %d)", addr, cf.fn.Name, t.ID)
				status = stErr
				break loop
			}
			mem[addr] = regs[ci.b]
			acc++
			var lat float64
			switch c.hier.Access(uint64(addr) * 8) {
			case cache.L1:
				lat = c.spec.L1HitCycles
			case cache.L2:
				lat = c.spec.L2HitCycles
			default:
				miss++
				lat = c.spec.L2HitCycles + c.spec.DRAMCycles(m.plat.DRAMLatencyNs)
			}
			cycles += cMem + lat
			fpc++

		case ir.OpBr:
			fpc = int(ci.a)
			cycles += cBranch
		case ir.OpCBr:
			if regs[ci.a] != 0 {
				fpc = int(ci.b)
			} else {
				fpc = int(ci.c)
			}
			cycles += cBranch

		case ir.OpRet:
			var bits uint64
			hasRet := ci.a != ir.NoReg
			if hasRet {
				bits = regs[ci.a]
			}
			cycles += cCall
			nInstr++
			if t.popFrame(bits, hasRet) {
				status = stDone
				break loop
			}
			fr = &t.frames[len(t.frames)-1]
			cf = &prog.funcs[fr.fnIdx]
			code = cf.code
			costs = costv[fr.fnIdx]
			fpc = int(cf.blockStart[fr.block]) + int(fr.pc)
			regs = fr.regs
			arrays = fr.arrays
			continue // frame changed; do not advance pc here

		case ir.OpCall:
			callee := m.mod.Funcs[ci.sym]
			nregs := t.allocRegs(len(callee.Regs))
			for i, a := range cf.argRegs(ci) {
				nregs[i] = regs[a]
			}
			fr.block, fr.pc = ci.blk, ci.pc+1 // return to the next instruction
			if _, err := m.pushFramePrepared(t, int(ci.sym), callee, nregs, ci.dst); err != nil {
				m.fail("%v", err)
				status = stErr
				break loop
			}
			cycles += cCall
			nInstr++
			fr = &t.frames[len(t.frames)-1]
			cf = &prog.funcs[ci.sym]
			code = cf.code
			costs = costv[ci.sym]
			fpc = 0
			regs = fr.regs
			arrays = fr.arrays
			continue

		case ir.OpBuiltin:
			if ci.sync {
				status = stSync
				break loop
			}
			cycles += float64(ci.imm) // base cycles
			fp += uint64(ci.aux)
			m.execPureBuiltinFast(c, t, cf, ci, regs, cycles)
			fpc++

		case ir.OpLogPhase:
			t.phase = features.Phase(ci.imm)
			cycles += 25
			fpc++
		case ir.OpToggleBlocked:
			t.blockedFlag = ci.imm != 0
			cycles += 20
			fpc++

		case ir.OpSpawn, ir.OpSetConfig, ir.OpDetermineConf:
			status = stSync
			break loop

		// Fused pairs (see compile.go): one dispatch, two instructions. The
		// first half charges its cycles and retires before the inter-element
		// budget check; expiry suspends at the second element's ordinary
		// instruction, so accounting matches unfused execution bit for bit.
		case opConstConst:
			regs[ci.dst] = uint64(ci.imm)
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc++
				break loop
			}
			regs[ci.c] = uint64(ci.aux)
			cycles += cIntHalf
			fpc += 2
		case opConstMov:
			regs[ci.dst] = uint64(ci.imm)
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc++
				break loop
			}
			regs[ci.c] = regs[ci.a]
			cycles += cIntHalf
			fpc += 2
		case opMovConst:
			regs[ci.dst] = regs[ci.a]
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc++
				break loop
			}
			regs[ci.c] = uint64(ci.aux)
			cycles += cIntHalf
			fpc += 2
		case opMovMov:
			regs[ci.dst] = regs[ci.a]
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc++
				break loop
			}
			regs[ci.c] = regs[ci.b]
			cycles += cIntHalf
			fpc += 2
		case opConstIBin:
			regs[ci.dst] = uint64(ci.imm)
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc++
				break loop
			}
			regs[ci.a] = intBinExec(ir.Opcode(ci.sym), regs[ci.b], regs[ci.c])
			cycles += costs[fpc+1]
			fpc += 2
		case opConstFBin:
			regs[ci.dst] = uint64(ci.imm)
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc++
				break loop
			}
			regs[ci.a] = fpBinExec(ir.Opcode(ci.sym), regs[ci.b], regs[ci.c])
			cycles += costs[fpc+1]
			fp++
			fpc += 2
		case opBinMovI:
			regs[ci.dst] = intBinExec(ir.Opcode(ci.sym), regs[ci.a], regs[ci.b])
			cycles += costs[fpc]
			nInstr++
			if cycles >= budget {
				fpc++
				break loop
			}
			regs[ci.c] = regs[ci.dst]
			cycles += cIntHalf
			fpc += 2
		case opBinMovF:
			regs[ci.dst] = fpBinExec(ir.Opcode(ci.sym), regs[ci.a], regs[ci.b])
			cycles += costs[fpc]
			fp++
			nInstr++
			if cycles >= budget {
				fpc++
				break loop
			}
			regs[ci.c] = regs[ci.dst]
			cycles += cIntHalf
			fpc += 2
		case opLAddrLoad, opLAddrStore, opGAddrLoad, opGAddrStore:
			idx := ci.imm
			if ci.a != ir.NoReg {
				idx = int64(regs[ci.a])
			}
			var cell int64
			if ci.op == opLAddrLoad || ci.op == opLAddrStore {
				if bounds && (idx < 0 || idx >= ci.aux) {
					ad := &cf.fn.Arrays[ci.sym]
					m.fail("index %d out of range for array %s[%d] in %s (thread %d)",
						idx, ad.Name, ad.Size, cf.fn.Name, t.ID)
					status = stErr
					break loop
				}
				cell = arrays[ci.sym] + idx
			} else {
				if bounds && (idx < 0 || idx >= m.mod.Globals[ci.sym].Size) {
					g := &m.mod.Globals[ci.sym]
					m.fail("index %d out of range for global %s[%d] in %s (thread %d)",
						idx, g.Name, g.Size, cf.fn.Name, t.ID)
					status = stErr
					break loop
				}
				cell = ci.aux + idx
			}
			regs[ci.dst] = uint64(cell)
			cycles += cInt
			nInstr++
			if cycles >= budget {
				fpc++
				break loop
			}
			addr := int64(regs[ci.dst])
			if ci.op == opLAddrLoad || ci.op == opGAddrLoad {
				if addr < 0 || addr >= int64(len(mem)) {
					m.fail("load from invalid address %d in %s (thread %d)", addr, cf.fn.Name, t.ID)
					status = stErr
					break loop
				}
				regs[ci.c] = mem[addr]
			} else {
				if addr < 0 || addr >= int64(len(mem)) {
					m.fail("store to invalid address %d in %s (thread %d)", addr, cf.fn.Name, t.ID)
					status = stErr
					break loop
				}
				mem[addr] = regs[ci.c]
			}
			acc++
			var lat float64
			switch c.hier.Access(uint64(addr) * 8) {
			case cache.L1:
				lat = c.spec.L1HitCycles
			case cache.L2:
				lat = c.spec.L2HitCycles
			default:
				miss++
				lat = c.spec.L2HitCycles + c.spec.DRAMCycles(m.plat.DRAMLatencyNs)
			}
			cycles += cMem + lat
			fpc += 2

		case opConstBinMovI:
			regs[ci.dst] = uint64(ci.imm)
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc++
				break loop
			}
			regs[ci.a] = intBinExec(ir.Opcode(ci.sym), regs[ci.b], regs[ci.c])
			cycles += costs[fpc+1]
			nInstr++
			if cycles >= budget {
				fpc += 2
				break loop
			}
			regs[ci.aux] = regs[ci.a]
			cycles += cIntHalf
			fpc += 3
		case opConstBinMovF:
			regs[ci.dst] = uint64(ci.imm)
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc++
				break loop
			}
			regs[ci.a] = fpBinExec(ir.Opcode(ci.sym), regs[ci.b], regs[ci.c])
			cycles += costs[fpc+1]
			fp++
			nInstr++
			if cycles >= budget {
				fpc += 2
				break loop
			}
			regs[ci.aux] = regs[ci.a]
			cycles += cIntHalf
			fpc += 3
		case opConstCmpCBr:
			regs[ci.dst] = uint64(ci.imm)
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc++
				break loop
			}
			bit := boolBit(intCmp(ir.Opcode(ci.sym), int64(regs[ci.b]), int64(regs[ci.c])))
			regs[ci.a] = bit
			cycles += cInt
			nInstr++
			if cycles >= budget {
				fpc += 2
				break loop
			}
			if bit != 0 {
				fpc = int(int32(ci.aux))
			} else {
				fpc = int(int32(ci.aux >> 32))
			}
			cycles += cBranch
		case opCmpCBr:
			a, b := int64(regs[ci.a]), int64(regs[ci.b])
			bit := boolBit(intCmp(ir.Opcode(ci.sym), a, b))
			regs[ci.dst] = bit
			cycles += cInt
			nInstr++
			if cycles >= budget {
				fpc++
				break loop
			}
			if bit != 0 {
				fpc = int(ci.c)
			} else {
				fpc = int(ci.aux)
			}
			cycles += cBranch

		// Chained superops (see compile.go): one dispatch over two adjacent
		// superops. ci2 is the second constituent's head cinstr, untouched in
		// place; per-element charges, retirements and inter-element budget
		// checks replicate standalone execution exactly, and every suspension
		// point is a constituent boundary.
		case opIChain5: // ConstI; int bin; ConstI; int bin; Mov
			regs[ci.dst] = uint64(ci.imm)
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc++
				break loop
			}
			regs[ci.a] = intBinExec(ir.Opcode(ci.sym), regs[ci.b], regs[ci.c])
			cycles += costs[fpc+1]
			nInstr++
			if cycles >= budget {
				fpc += 2
				break loop
			}
			ci2 := &code[fpc+2]
			regs[ci2.dst] = uint64(ci2.imm)
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc += 3
				break loop
			}
			regs[ci2.a] = intBinExec(ir.Opcode(ci2.sym), regs[ci2.b], regs[ci2.c])
			cycles += costs[fpc+3]
			nInstr++
			if cycles >= budget {
				fpc += 4
				break loop
			}
			regs[ci2.aux] = regs[ci2.a]
			cycles += cIntHalf
			fpc += 5
		case opFChain5: // ConstF; fp bin; ConstF; fp bin; Mov
			regs[ci.dst] = uint64(ci.imm)
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc++
				break loop
			}
			regs[ci.a] = fpBinExec(ir.Opcode(ci.sym), regs[ci.b], regs[ci.c])
			cycles += costs[fpc+1]
			fp++
			nInstr++
			if cycles >= budget {
				fpc += 2
				break loop
			}
			ci2 := &code[fpc+2]
			regs[ci2.dst] = uint64(ci2.imm)
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc += 3
				break loop
			}
			regs[ci2.a] = fpBinExec(ir.Opcode(ci2.sym), regs[ci2.b], regs[ci2.c])
			cycles += costs[fpc+3]
			fp++
			nInstr++
			if cycles >= budget {
				fpc += 4
				break loop
			}
			regs[ci2.aux] = regs[ci2.a]
			cycles += cIntHalf
			fpc += 5
		case opIncCmpBr: // ConstI; int bin; Mov; ConstI; int cmp; CBr
			regs[ci.dst] = uint64(ci.imm)
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc++
				break loop
			}
			regs[ci.a] = intBinExec(ir.Opcode(ci.sym), regs[ci.b], regs[ci.c])
			cycles += costs[fpc+1]
			nInstr++
			if cycles >= budget {
				fpc += 2
				break loop
			}
			regs[ci.aux] = regs[ci.a]
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc += 3
				break loop
			}
			ci2 := &code[fpc+3]
			regs[ci2.dst] = uint64(ci2.imm)
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc += 4
				break loop
			}
			bit := boolBit(intCmp(ir.Opcode(ci2.sym), int64(regs[ci2.b]), int64(regs[ci2.c])))
			regs[ci2.a] = bit
			cycles += cInt
			nInstr++
			if cycles >= budget {
				fpc += 5
				break loop
			}
			if bit != 0 {
				fpc = int(int32(ci2.aux))
			} else {
				fpc = int(int32(ci2.aux >> 32))
			}
			cycles += cBranch
		case opConst2CmpBr: // ConstI/F; ConstI/F; int cmp; CBr
			regs[ci.dst] = uint64(ci.imm)
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc++
				break loop
			}
			regs[ci.c] = uint64(ci.aux)
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc += 2
				break loop
			}
			ci2 := &code[fpc+2]
			bit := boolBit(intCmp(ir.Opcode(ci2.sym), int64(regs[ci2.a]), int64(regs[ci2.b])))
			regs[ci2.dst] = bit
			cycles += cInt
			nInstr++
			if cycles >= budget {
				fpc += 3
				break loop
			}
			if bit != 0 {
				fpc = int(ci2.c)
			} else {
				fpc = int(ci2.aux)
			}
			cycles += cBranch
		case opIBinIBin: // ConstI; int bin; ConstI; int bin
			regs[ci.dst] = uint64(ci.imm)
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc++
				break loop
			}
			regs[ci.a] = intBinExec(ir.Opcode(ci.sym), regs[ci.b], regs[ci.c])
			cycles += costs[fpc+1]
			nInstr++
			if cycles >= budget {
				fpc += 2
				break loop
			}
			ci2 := &code[fpc+2]
			regs[ci2.dst] = uint64(ci2.imm)
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc += 3
				break loop
			}
			regs[ci2.a] = intBinExec(ir.Opcode(ci2.sym), regs[ci2.b], regs[ci2.c])
			cycles += costs[fpc+3]
			fpc += 4
		case opFBinFBin: // ConstF; fp bin; ConstF; fp bin
			regs[ci.dst] = uint64(ci.imm)
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc++
				break loop
			}
			regs[ci.a] = fpBinExec(ir.Opcode(ci.sym), regs[ci.b], regs[ci.c])
			cycles += costs[fpc+1]
			fp++
			nInstr++
			if cycles >= budget {
				fpc += 2
				break loop
			}
			ci2 := &code[fpc+2]
			regs[ci2.dst] = uint64(ci2.imm)
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc += 3
				break loop
			}
			regs[ci2.a] = fpBinExec(ir.Opcode(ci2.sym), regs[ci2.b], regs[ci2.c])
			cycles += costs[fpc+3]
			fp++
			fpc += 4
		case opMovConstBinI: // Mov; ConstI; int bin; Mov
			regs[ci.dst] = regs[ci.a]
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc++
				break loop
			}
			regs[ci.c] = uint64(ci.aux)
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc += 2
				break loop
			}
			ci2 := &code[fpc+2]
			regs[ci2.dst] = intBinExec(ir.Opcode(ci2.sym), regs[ci2.a], regs[ci2.b])
			cycles += costs[fpc+2]
			nInstr++
			if cycles >= budget {
				fpc += 3
				break loop
			}
			regs[ci2.c] = regs[ci2.dst]
			cycles += cIntHalf
			fpc += 4
		case opBinMovICmpBr: // int bin; Mov; ConstI; int cmp; CBr
			regs[ci.dst] = intBinExec(ir.Opcode(ci.sym), regs[ci.a], regs[ci.b])
			cycles += costs[fpc]
			nInstr++
			if cycles >= budget {
				fpc++
				break loop
			}
			regs[ci.c] = regs[ci.dst]
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc += 2
				break loop
			}
			ci2 := &code[fpc+2]
			regs[ci2.dst] = uint64(ci2.imm)
			cycles += cIntHalf
			nInstr++
			if cycles >= budget {
				fpc += 3
				break loop
			}
			bit := boolBit(intCmp(ir.Opcode(ci2.sym), int64(regs[ci2.b]), int64(regs[ci2.c])))
			regs[ci2.a] = bit
			cycles += cInt
			nInstr++
			if cycles >= budget {
				fpc += 4
				break loop
			}
			if bit != 0 {
				fpc = int(int32(ci2.aux))
			} else {
				fpc = int(int32(ci2.aux >> 32))
			}
			cycles += cBranch

		default:
			m.fail("unknown opcode %s in %s", ci.op.Name(), cf.fn.Name)
			status = stErr
			break loop
		}
		nInstr++
	}

	bc.cycles, bc.instr = cycles, nInstr
	bc.fp, bc.acc, bc.miss = fp, acc, miss
	if status != stDone {
		// Write the canonical frame position back (next instruction to run).
		ci := &code[fpc]
		fr.block, fr.pc = ci.blk, ci.pc
	}
	return status
}

// intBinExec executes the second half of a fused integer pair; each arm is
// the exact expression of the corresponding standalone case.
func intBinExec(op ir.Opcode, x, y uint64) uint64 {
	switch op {
	case ir.OpAdd:
		return uint64(int64(x) + int64(y))
	case ir.OpSub:
		return uint64(int64(x) - int64(y))
	case ir.OpMul:
		return uint64(int64(x) * int64(y))
	case ir.OpAnd:
		return x & y
	case ir.OpOr:
		return x | y
	case ir.OpXor:
		return x ^ y
	case ir.OpShl:
		return uint64(int64(x) << (y & 63))
	case ir.OpShr:
		return uint64(int64(x) >> (y & 63))
	default: // comparisons
		return boolBit(intCmp(op, int64(x), int64(y)))
	}
}

// fpBinExec is intBinExec's floating-point counterpart.
func fpBinExec(op ir.Opcode, x, y uint64) uint64 {
	a, b := b2f(x), b2f(y)
	switch op {
	case ir.OpFAdd:
		return f2b(a + b)
	case ir.OpFSub:
		return f2b(a - b)
	case ir.OpFMul:
		return f2b(a * b)
	default: // OpFDiv
		return f2b(a / b)
	}
}

// execPureBuiltinFast mirrors execPureBuiltin over a pre-decoded
// instruction. The instruction's base cycles and FP work have already been
// charged by the caller; cycles carries the running burst total (clock_ms
// reads it, exactly as the legacy path reads bc.cycles after the charge).
func (m *Machine) execPureBuiltinFast(c *core, t *Thread, cf *compiledFunc, ci *cinstr, regs []uint64, cycles float64) {
	id := ir.BuiltinID(ci.sym)
	args := cf.argRegs(ci)
	set := func(bits uint64) {
		if ci.dst != ir.NoReg {
			regs[ci.dst] = bits
		}
	}
	argF := func(i int) float64 { return b2f(regs[args[i]]) }
	argI := func(i int) int64 { return int64(regs[args[i]]) }
	switch id {
	case ir.BTid:
		set(uint64(t.ID))
	case ir.BNumCores:
		set(uint64(int64(m.cfg.Cores())))
	case ir.BClockMs:
		now := m.now + cycles/c.spec.CyclesPerSecond()
		set(uint64(int64(now * 1000)))
	case ir.BRandInt:
		n := argI(0)
		if n <= 0 {
			set(0)
		} else {
			set(t.threadRand() % uint64(n))
		}
	case ir.BRandFloat:
		set(f2b(t.threadRandFloat()))
	case ir.BSqrt:
		set(f2b(math.Sqrt(argF(0))))
	case ir.BSin:
		set(f2b(math.Sin(argF(0))))
	case ir.BCos:
		set(f2b(math.Cos(argF(0))))
	case ir.BExp:
		set(f2b(math.Exp(argF(0))))
	case ir.BLog:
		set(f2b(math.Log(argF(0))))
	case ir.BPow:
		set(f2b(math.Pow(argF(0), argF(1))))
	case ir.BFabs:
		set(f2b(math.Abs(argF(0))))
	case ir.BFloor:
		set(f2b(math.Floor(argF(0))))
	case ir.BAbsI:
		v := argI(0)
		if v < 0 {
			v = -v
		}
		set(uint64(v))
	case ir.BMinI:
		a, b := argI(0), argI(1)
		if b < a {
			a = b
		}
		set(uint64(a))
	case ir.BMaxI:
		a, b := argI(0), argI(1)
		if b > a {
			a = b
		}
		set(uint64(a))
	default:
		m.fail("builtin %s reached pure execution path", ir.Builtin(id).Name)
	}
}

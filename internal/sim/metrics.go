package sim

import "astro/internal/telemetry"

// Telemetry instruments for the simulator, registered on the shared
// Default registry. All of them are flushed off the hot path: per-run
// totals accumulate in plain Machine/core fields during execution and
// land here with one atomic add each when Run finishes, so the
// steady-state quantum stays 0 allocs/op and free of atomic traffic
// (see DESIGN.md invariant 8). Compile-side counters fire once per
// module, under the progCache lock that already serializes compilation.
var (
	mRuns       = telemetry.Default.Counter("astro_sim_runs_total", "Completed Machine.Run executions.")
	mQuanta     = telemetry.Default.Counter("astro_sim_quanta_total", "Scheduling quanta executed across all runs.")
	mInstr      = telemetry.Default.Counter("astro_sim_instructions_total", "Simulated instructions retired.")
	mCycles     = telemetry.Default.Counter("astro_sim_cycles_total", "Simulated core cycles consumed by compute bursts.")
	mSuperops   = telemetry.Default.Counter("astro_sim_superops_total", "Fused superops emitted by the fast-path compiler (static count).")
	mCompiles   = telemetry.Default.Counter("astro_sim_compiles_total", "Module fast-path compilations (progCache misses).")
	mCompileHit = telemetry.Default.Counter("astro_sim_compile_cache_hits_total", "progCache hits for already-compiled modules.")
	mProgDecode = telemetry.Default.Counter("astro_sim_program_decodes_total", "Compiled programs rebuilt from their canonical byte encoding.")
)

// countSuperops returns the number of fused superop slots in a compiled
// program — a static property of the module, counted once at compile
// time rather than per executed instruction.
func countSuperops(p *Program) uint64 {
	var n uint64
	for i := range p.funcs {
		for j := range p.funcs[i].code {
			if p.funcs[i].code[j].op >= opConstConst {
				n++
			}
		}
	}
	return n
}

package sim

import (
	"encoding/json"
	"fmt"
)

// Canonical result serialization. The campaign engine keys simulations by
// the content hash of their inputs and stores results by value; the bytes
// produced here are the stored value. encoding/json emits struct fields in
// declaration order with a fixed float format, so for a given Result the
// encoding is byte-stable — which is what lets the campaign determinism
// tests compare whole result sets bytewise across worker counts and across
// cache hits.

// EncodeResult serializes a result to its canonical byte form.
func EncodeResult(r *Result) ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("sim: cannot encode nil result")
	}
	return json.Marshal(r)
}

// DecodeResult parses a result previously produced by EncodeResult.
func DecodeResult(data []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("sim: decode result: %w", err)
	}
	return &r, nil
}

// Fingerprint returns a short stable identity for a set of option knobs,
// used in simulation cache keys. Interface-valued fields (OS, Actuator,
// Hybrid) are the caller's responsibility: they carry behaviour that the
// caller must name in its own part of the key, so Fingerprint rejects
// options that still have them set.
func (o Options) Fingerprint() (string, error) {
	if o.OS != nil || o.Actuator != nil || o.Hybrid != nil {
		return "", fmt.Errorf("sim: options fingerprint requires nil OS/Actuator/Hybrid (name policies separately)")
	}
	// %+v covers every scalar field, including ones added later, in
	// declaration order.
	return fmt.Sprintf("%+v", o), nil
}

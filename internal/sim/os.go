package sim

// OSPolicy is the OS-level thread scheduler: it decides where runnable
// threads go and periodically rebalances queues. GTS (ARM's Global Task
// Scheduling, the paper's baseline) is implemented on this interface in
// internal/sched.
type OSPolicy interface {
	Name() string
	// PlaceThread picks an active core for a thread that just became
	// runnable.
	PlaceThread(m *Machine, t *Thread) int
	// Rebalance runs once per OS tick and may migrate ready threads.
	Rebalance(m *Machine)
}

// LeastLoaded is the default placement policy: put runnable threads on the
// active core with the shortest queue (preferring the thread's previous
// core on ties, to keep caches warm), and even out queue lengths on ticks.
type LeastLoaded struct{}

// Name implements OSPolicy.
func (*LeastLoaded) Name() string { return "least-loaded" }

// PlaceThread implements OSPolicy.
func (*LeastLoaded) PlaceThread(m *Machine, t *Thread) int {
	best := -1
	bestLen := 0
	for _, ci := range m.ActiveCoreIDs() {
		l := m.QueueLen(ci)
		if best == -1 || l < bestLen || (l == bestLen && ci == t.coreHint) {
			best, bestLen = ci, l
		}
	}
	return best
}

// Rebalance implements OSPolicy: move ready threads from the longest to the
// shortest queue until lengths differ by at most one.
func (*LeastLoaded) Rebalance(m *Machine) {
	active := m.ActiveCoreIDs()
	if len(active) < 2 {
		return
	}
	for iter := 0; iter < 16; iter++ {
		minC, maxC := -1, -1
		minL, maxL := 0, 0
		for _, ci := range active {
			l := m.QueueLen(ci)
			if minC == -1 || l < minL {
				minC, minL = ci, l
			}
			if maxC == -1 || l > maxL {
				maxC, maxL = ci, l
			}
		}
		if maxL-minL <= 1 {
			return
		}
		moved := false
		for _, t := range m.cores[maxC].runq {
			if m.MigrateThread(t, minC) {
				moved = true
				break
			}
		}
		if !moved {
			return
		}
	}
}

package sim

import (
	"astro/internal/features"
	"astro/internal/hw"
	"astro/internal/perfmon"
)

// Checkpoint is the data the Monitor hands the actuator every checkpoint
// interval (Fig. 7: OS config + instructions, Log program phase, PerfMon
// hardware phase, PowMon energy).
type Checkpoint struct {
	Index     int
	TimeS     float64
	DurS      float64
	Config    hw.Config
	ProgPhase features.Phase
	HW        perfmon.Counters
	HWPhase   perfmon.HWPhase
	EnergyJ   float64 // energy consumed in the window (cores + SoC base)
}

// MIPS returns millions of instructions per second in the window.
func (ck Checkpoint) MIPS() float64 {
	if ck.DurS == 0 {
		return 0
	}
	return float64(ck.HW.Instructions) / ck.DurS / 1e6
}

// Watts returns mean power in the window.
func (ck Checkpoint) Watts() float64 {
	if ck.DurS == 0 {
		return 0
	}
	return ck.EnergyJ / ck.DurS
}

// Actuator is the adaptation hook invoked at every checkpoint; it returns
// the hardware configuration to adopt next (returning the current one means
// no change). Astro, Hipster and Octopus-Man implement this in
// internal/sched.
type Actuator interface {
	Name() string
	OnCheckpoint(m *Machine, ck Checkpoint) hw.Config
}

// HybridPolicy is consulted by hybrid instrumentation (OpDetermineConf):
// the program itself asks for a configuration at phase boundaries, combining
// the compile-time phase hint with the latest hardware state.
type HybridPolicy interface {
	DetermineConfig(s HybridState) hw.Config
}

// HybridState is what a hybrid decision gets to see.
type HybridState struct {
	Phase   features.Phase
	Config  hw.Config
	HWPhase perfmon.HWPhase
	TimeS   float64
}

// checkpoint assembles window monitors, logs the checkpoint and lets the
// actuator adapt.
func (m *Machine) checkpoint() {
	dur := m.opts.CheckpointS
	var ctr perfmon.Counters
	nActive := 0
	for _, c := range m.cores {
		if c.active {
			nActive++
			// Settle idle energy so the window reward sees it.
			if c.idleFrom < m.now && c.availAt <= m.now {
				m.meter.Add(m.now-c.idleFrom, c.spec.IdleWatts)
				c.idleFrom = m.now
			}
		}
		ctr.Instructions += c.wInstr
		ctr.Cycles += c.wCycles
		ctr.CacheAccesses += c.wAcc
		ctr.CacheMisses += c.wMiss
		ctr.BusySeconds += c.wBusy
		c.wInstr, c.wCycles, c.wAcc, c.wMiss, c.wBusy = 0, 0, 0, 0, 0
	}
	ctr.WindowSeconds = dur * float64(nActive)

	ck := Checkpoint{
		Index:     m.ckIndex,
		TimeS:     m.now,
		DurS:      dur,
		Config:    m.cfg,
		ProgPhase: m.programPhase(),
		HW:        ctr,
		HWPhase:   perfmon.Bucketize(ctr),
		EnergyJ:   m.meter.WindowJ() + m.plat.BasePowerWatts*dur,
	}
	m.ckIndex++
	m.lastHW = ck.HWPhase
	m.meter.ResetWindow()
	m.checkpoints = append(m.checkpoints, ck)

	if m.opts.Actuator != nil {
		want := m.opts.Actuator.OnCheckpoint(m, ck)
		m.requestConfig(want)
	}
}

// programPhase derives the program-wide phase reported to the actuator
// (the paper's Log component tracks "the code region currently under
// execution"): the majority logged phase over runnable threads — the code
// actually occupying cores. Only when nothing is runnable does the program
// report Blocked. Ties prefer the more specific phase (CPUBound > IOBound >
// Blocked > Other); the poster leaves the multithreaded aggregation open,
// see DESIGN.md.
func (m *Machine) programPhase() features.Phase {
	var counts [features.NumPhases]int
	any := false
	for _, t := range m.threads {
		if t.state != tsRunning && t.state != tsReady {
			continue
		}
		counts[t.Phase()]++
		any = true
	}
	if !any {
		for _, t := range m.threads {
			if t.state != tsDone {
				return features.PhaseBlocked
			}
		}
		return features.PhaseOther
	}
	best := features.Phase(0)
	for p := features.Phase(1); p < features.NumPhases; p++ {
		if counts[p] >= counts[best] {
			best = p
		}
	}
	return best
}

// updateLoads refreshes the per-thread load EWMA used by GTS-style
// policies. Called once per OS tick.
func (m *Machine) updateLoads() {
	alpha := 0.25
	for _, t := range m.threads {
		if t.state == tsDone {
			continue
		}
		u := t.busyAcc / m.opts.TickS
		if u > 1 {
			u = 1
		}
		t.busyAcc = 0
		t.Load = (1-alpha)*t.Load + alpha*u
	}
}

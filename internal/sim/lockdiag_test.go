package sim

import (
	"testing"

	"astro/internal/hw"
)

// TestLockSerialBound guards the contended-lock timing model: critical
// sections are mutually exclusive and every contended handoff pays the
// scheduler wake latency, so hammering one lock from 4 cores must be
// SLOWER than doing the same total work uncontended on one thread (lock
// convoys are expensive on real kernels, and the paper's streamcluster /
// fluidanimate behaviour depends on this).
func TestLockSerialBound(t *testing.T) {
	parallel := `
var c int;
mutex m;
func w(n int) {
	var i int;
	for (i = 0; i < n; i = i + 1) {
		lock(m);
		c = c + 1;
		unlock(m);
	}
}
func main() {
	spawn w(2000); spawn w(2000); spawn w(2000); spawn w(2000);
	join();
	print_int(c);
}
`
	serial := `
var c int;
mutex m;
func w(n int) {
	var i int;
	for (i = 0; i < n; i = i + 1) {
		lock(m);
		c = c + 1;
		unlock(m);
	}
}
func main() {
	w(8000);
	print_int(c);
}
`
	p := run(t, parallel, Options{InitialConfig: hw.Config{Big: 4}})
	s := run(t, serial, Options{InitialConfig: hw.Config{Big: 4}})
	t.Logf("parallel=%.6fs serial=%.6fs ratio=%.2f", p.TimeS, s.TimeS, p.TimeS/s.TimeS)
	if p.Output[0] != "8000" || s.Output[0] != "8000" {
		t.Fatalf("lost updates: %v %v", p.Output, s.Output)
	}
	if !(p.TimeS > s.TimeS) {
		t.Errorf("contended locking (%.6fs) must be slower than uncontended (%.6fs)", p.TimeS, s.TimeS)
	}
}

package sim

// Round-trip and rejection tests for the canonical program encoding. The
// property battery over the scenario generator's synthetic modules lives in
// fuzz_test.go (package sim_test — the generator transitively imports sim).

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"astro/internal/hw"
	"astro/internal/lang"
	"astro/internal/workloads"
)

// eqPrograms compares the executable content of two programs: the flat
// instruction streams, block layouts and argument arenas, plus the bound
// function identities. (Lazily built cost variants are deliberately not
// part of program identity.)
func eqPrograms(a, b *Program) bool {
	if len(a.funcs) != len(b.funcs) {
		return false
	}
	for i := range a.funcs {
		af, bf := &a.funcs[i], &b.funcs[i]
		if af.fn != bf.fn ||
			!reflect.DeepEqual(af.code, bf.code) ||
			!reflect.DeepEqual(af.blockStart, bf.blockStart) ||
			!reflect.DeepEqual(af.args, bf.args) {
			return false
		}
	}
	return true
}

// TestProgramRoundTripWorkloads pins, for every workload in the registry:
// EncodeProgram is deterministic across two independent compiles, and
// DecodeProgram(Encode(p)) reproduces p exactly — same streams, same
// layouts, same bytes when re-encoded.
func TestProgramRoundTripWorkloads(t *testing.T) {
	plat := hw.OdroidXU4()
	for _, spec := range workloads.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			mod, err := spec.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			p1 := CompileModule(mod)
			p2 := CompileModule(mod)
			enc1 := EncodeProgram(p1, plat)
			enc2 := EncodeProgram(p2, plat)
			if !bytes.Equal(enc1, enc2) {
				t.Fatalf("EncodeProgram not deterministic across independent compiles")
			}
			dec, err := DecodeProgram(enc1, mod, plat)
			if err != nil {
				t.Fatalf("DecodeProgram: %v", err)
			}
			if !eqPrograms(p1, dec) {
				t.Fatalf("decoded program differs from compiled program")
			}
			if re := EncodeProgram(dec, plat); !bytes.Equal(enc1, re) {
				t.Fatalf("re-encoding the decoded program changed the bytes")
			}
		})
	}
}

// goldenSrc is deliberately tiny but exercises constants, float and int
// arithmetic, a loop (branches, comparisons, superop and chain fusion) and
// a builtin, so most encoder fields appear in the golden bytes.
const goldenSrc = `
func main() {
	var x float = 1.0;
	var i int = 0;
	while (i < 10) {
		x = x * 1.5 + 0.25;
		i = i + 1;
	}
	print_float(x);
}
`

// TestProgramGoldenEncoding pins the exact canonical encoding of a small
// module on the odroid-xu4 cost tables. Any format drift — field order,
// varint widths, header layout, opcode-space growth (bcVersion) — fails
// this test loudly. Regenerate with ASTRO_UPDATE_GOLDEN=1 after an
// intentional format change.
func TestProgramGoldenEncoding(t *testing.T) {
	mod, err := lang.Compile("golden", goldenSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	enc := EncodeProgram(CompileModule(mod), hw.OdroidXU4())
	var b strings.Builder
	h := hex.EncodeToString(enc)
	for len(h) > 64 {
		b.WriteString(h[:64])
		b.WriteByte('\n')
		h = h[64:]
	}
	b.WriteString(h)
	b.WriteByte('\n')
	got := b.String()

	path := filepath.Join("testdata", "program_golden.hex")
	if os.Getenv("ASTRO_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with ASTRO_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("canonical program encoding drifted from %s.\n"+
			"If the format change is intentional, regenerate with ASTRO_UPDATE_GOLDEN=1 "+
			"and call out the compatibility break in DESIGN.md.\ngot:\n%swant:\n%s",
			path, got, want)
	}
}

// TestDecodeProgramRejects drives every refusal path: corruption,
// truncation, wrong module, wrong cost table, and a foreign compiler
// generation. Each must produce an error — never a silently wrong program.
func TestDecodeProgramRejects(t *testing.T) {
	plat := hw.OdroidXU4()
	mod, err := lang.Compile("golden", goldenSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	enc := EncodeProgram(CompileModule(mod), plat)

	t.Run("corrupt-byte", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[len(bad)/2] ^= 0x40
		if _, err := DecodeProgram(bad, mod, plat); err == nil || !strings.Contains(err.Error(), "corrupt") {
			t.Fatalf("corrupt bytes: got %v, want checksum error", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := DecodeProgram(enc[:len(enc)-3], mod, plat); err == nil {
			t.Fatal("truncated bytes decoded successfully")
		}
		if _, err := DecodeProgram(enc[:4], mod, plat); err == nil {
			t.Fatal("short bytes decoded successfully")
		}
	})
	t.Run("wrong-module", func(t *testing.T) {
		other, err := lang.Compile("other", "func main() { print_int(1); }")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeProgram(enc, other, plat); err == nil || !strings.Contains(err.Error(), "different module") {
			t.Fatalf("wrong module: got %v", err)
		}
	})
	t.Run("wrong-cost-table", func(t *testing.T) {
		pp := hw.DefaultZooParams()
		pp.LittleBlend = 0.5 // a "medium" LITTLE: interpolated CPIs, different table bits
		zoo, err := pp.Platform()
		if err != nil {
			t.Fatal(err)
		}
		if CostTableID(zoo) == CostTableID(plat) {
			t.Fatal("test platforms unexpectedly share a cost-table identity")
		}
		if _, err := DecodeProgram(enc, mod, zoo); err == nil || !strings.Contains(err.Error(), "cost table") {
			t.Fatalf("wrong cost table: got %v", err)
		}
	})
	t.Run("foreign-version", func(t *testing.T) {
		// bcVersion fits one varint byte right after the magic; bump it and
		// re-sign so only the generation check can object.
		bad := append([]byte(nil), enc[:len(enc)-bcChecksumLen]...)
		bad[len(bcMagic)]++
		sum := sha256.Sum256(bad)
		bad = append(bad, sum[:bcChecksumLen]...)
		if _, err := DecodeProgram(bad, mod, plat); err == nil || !strings.Contains(err.Error(), "generation") {
			t.Fatalf("foreign version: got %v", err)
		}
		if ProgramBytesCurrent(bad) {
			t.Fatal("ProgramBytesCurrent accepted a foreign generation")
		}
	})
	if !ProgramBytesCurrent(enc) {
		t.Fatal("ProgramBytesCurrent rejected a current artifact")
	}
	if ProgramBytesCurrent(nil) || ProgramBytesCurrent([]byte("ASTROIR1")) {
		t.Fatal("ProgramBytesCurrent accepted junk")
	}
}

// TestCostTableIDDistinguishes pins that the identity is a function of the
// cost-table bits: equal tables (xu4 and tk1 share the calibrated A7/A15
// CPIs) collapse to one ID, interpolated tables get another.
func TestCostTableIDDistinguishes(t *testing.T) {
	xu4 := hw.OdroidXU4()
	if CostTableID(xu4) != CostTableID(hw.JetsonTK1()) {
		t.Fatal("xu4 and tk1 share CPI tables but got different cost-table IDs")
	}
	pp := hw.DefaultZooParams()
	pp.BigBlend = 0.75
	zoo, err := pp.Platform()
	if err != nil {
		t.Fatal(err)
	}
	if CostTableID(xu4) == CostTableID(zoo) {
		t.Fatal("interpolated zoo platform collided with xu4's cost-table ID")
	}
}

package sim

import (
	"fmt"
)

// Event kinds, in tie-break priority order at equal times.
type evKind uint8

const (
	evWake       evKind = iota // a blocked thread becomes runnable
	evCoreRun                  // a core should execute its next burst
	evTick                     // OS load-balance tick
	evCheckpoint               // actuation checkpoint
	evSample                   // power sample
)

type event struct {
	time   float64
	kind   evKind
	core   int
	thread int
	seq    uint64
}

// eventHeap is a binary min-heap ordered by (time, kind, seq). It is typed
// (no container/heap) because the heap interface boxes every pushed and
// popped element into an interface value, which costs one heap allocation
// per scheduled event — the dominant steady-state allocation of a run.
// (time, kind, seq) is a strict total order (seq is unique), so the pop
// sequence is fully determined by the comparator and simulation determinism
// does not depend on the heap's internal arrangement.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	a, b := h[i], h[j]
	if a.time != b.time {
		return a.time < b.time
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	hh := *h
	i := len(hh) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !hh.less(i, p) {
			break
		}
		hh[i], hh[p] = hh[p], hh[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	hh := *h
	top := hh[0]
	n := len(hh) - 1
	hh[0] = hh[n]
	hh = hh[:n]
	*h = hh
	i := 0
	for {
		s := i
		if l := 2*i + 1; l < n && hh.less(l, s) {
			s = l
		}
		if r := 2*i + 2; r < n && hh.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		hh[i], hh[s] = hh[s], hh[i]
		i = s
	}
	return top
}

func (m *Machine) schedule(e event) {
	m.seq++
	e.seq = m.seq
	m.events.push(e)
}

// scheduleCoreRun arms a core-run event unless one is already pending.
func (m *Machine) scheduleCoreRun(c *core, at float64) {
	if c.runPending || !c.active {
		return
	}
	c.runPending = true
	if at < m.now {
		at = m.now
	}
	m.schedule(event{time: at, kind: evCoreRun, core: c.idx})
}

// Run executes the program to completion and returns the result.
func (m *Machine) Run() (*Result, error) {
	if m.threads != nil {
		return nil, fmt.Errorf("sim: machine already ran")
	}
	// Boot: create the main thread and start the periodic machinery.
	main, err := m.newThread(-1, m.mod.FuncIndex["main"], m.opts.Args)
	if err != nil {
		return nil, err
	}
	m.placeThread(main)
	m.schedule(event{time: m.opts.TickS, kind: evTick})
	m.schedule(event{time: m.opts.CheckpointS, kind: evCheckpoint})
	if m.opts.SampleS > 0 {
		m.schedule(event{time: 0, kind: evSample})
	}

	for m.live > 0 {
		if m.err != nil {
			return nil, m.err
		}
		if len(m.events) == 0 {
			return nil, fmt.Errorf("sim: no events with %d live threads (internal error)", m.live)
		}
		e := m.events.pop()
		if e.time > m.opts.MaxTimeS {
			return nil, fmt.Errorf("sim: exceeded MaxTimeS=%gs (deadlock or runaway program)", m.opts.MaxTimeS)
		}
		if e.time > m.now {
			m.now = e.time
		}
		switch e.kind {
		case evWake:
			m.wakes--
			m.handleWake(e.thread)
		case evCoreRun:
			c := m.cores[e.core]
			c.runPending = false
			if c.active {
				m.coreStep(c)
			}
		case evTick:
			m.updateLoads()
			m.opts.OS.Rebalance(m)
			if m.live > 0 {
				m.schedule(event{time: m.now + m.opts.TickS, kind: evTick})
			}
		case evCheckpoint:
			m.checkpoint()
			if m.live > 0 {
				m.schedule(event{time: m.now + m.opts.CheckpointS, kind: evCheckpoint})
			}
		case evSample:
			m.samplePower()
			if m.live > 0 {
				m.schedule(event{time: m.now + m.opts.SampleS, kind: evSample})
			}
		}
		if m.live > 0 && m.runnable == 0 && m.wakes == 0 {
			return nil, fmt.Errorf("sim: deadlock at t=%.6fs: %d threads blocked", m.now, m.live)
		}
	}
	if m.err != nil {
		return nil, m.err
	}
	return m.finish(), nil
}

func (m *Machine) finish() *Result {
	end := m.doneTime
	// Account trailing idle energy on active cores and SoC base power.
	for _, c := range m.cores {
		if c.active && c.idleFrom < end {
			m.meter.Add(end-c.idleFrom, c.spec.IdleWatts)
			c.idleFrom = end
		}
	}
	m.meter.Add(end, m.plat.BasePowerWatts)
	var instr uint64
	for _, c := range m.cores {
		instr += c.tInstr
	}
	mRuns.Inc()
	mQuanta.Add(m.quanta)
	mInstr.Add(instr)
	mCycles.Add(m.tCycles)
	return &Result{
		TimeS:        end,
		EnergyJ:      m.meter.TotalJ(),
		Instructions: instr,
		Checkpoints:  m.checkpoints,
		Samples:      m.samples,
		Output:       m.output,
		OutputTrunc:  m.outTrunc,
		Switches:     m.switches,
		Migrations:   m.migrations,
		FinalConfig:  m.cfg,
	}
}

// fail aborts the run with a runtime error.
func (m *Machine) fail(format string, args ...any) {
	if m.err == nil {
		m.err = fmt.Errorf("sim: t=%.6fs: %s", m.now, fmt.Sprintf(format, args...))
	}
}

// samplePower records an instantaneous whole-board power reading, as the
// JetsonLeap apparatus would.
func (m *Machine) samplePower() {
	if m.samples == nil {
		return
	}
	w := m.plat.BasePowerWatts
	for _, c := range m.cores {
		if !c.active {
			continue
		}
		if m.now >= c.burstStart && m.now < c.burstEnd {
			w += c.burstPower
		} else {
			w += c.spec.IdleWatts
		}
	}
	m.samples.Append(m.now, w)
}

package scenario

import (
	"fmt"

	"astro/internal/campaign"
	"astro/internal/hw"
	"astro/internal/workloads"
)

// Matrix is the declarative scenario description: generated programs ×
// platforms (explicit and zoo-generated) × schedulers × simulator seeds. It
// is the JSON body of POST /scenarios on astro-serve and the -spec input of
// `astro scenario`. A matrix compiles down to campaign.Spec batches, so the
// whole campaign machinery (worker pool, content-addressed cache, engine
// lifecycle) applies unchanged.
type Matrix struct {
	Name string `json:"name,omitempty"`

	// Programs to synthesize, by explicit parameters.
	Programs []ProgramParams `json:"programs,omitempty"`
	// ProgramCount generates this many additional programs with seeds
	// ProgramSeed, ProgramSeed+1, ... cycling through a fixed spread of
	// phase-mix presets (CPU-heavy, IO-heavy, blocked, balanced,
	// lock-contended).
	ProgramCount int   `json:"program_count,omitempty"`
	ProgramSeed  int64 `json:"program_seed,omitempty"`

	// Platforms are explicit names (built-in boards or canonical zoo
	// names); Zoo appends a generated family. At least one of the two must
	// yield a platform; an entirely empty platform axis defaults to
	// campaign.DefaultPlatform.
	Platforms []string   `json:"platforms,omitempty"`
	Zoo       *ZooParams `json:"zoo,omitempty"`

	// Schedulers, Configs, Seeds, Scale and Sim carry the campaign.Spec
	// semantics (and defaults) unchanged.
	Schedulers []string       `json:"schedulers,omitempty"`
	Configs    []string       `json:"configs,omitempty"`
	Seeds      []int64        `json:"seeds,omitempty"`
	Scale      string         `json:"scale,omitempty"`
	Sim        campaign.Knobs `json:"sim,omitempty"`

	// Batch bounds the programs per emitted campaign.Spec (0 = all in
	// one). Large matrices batch so astro-serve campaigns stay individually
	// observable and cancellable.
	Batch int `json:"batch,omitempty"`
}

// programPresets is the deterministic spread ProgramCount cycles through.
// Index i also modulates loop depth and trip count so no two presets in a
// row synthesize structurally identical programs.
var programPresets = []ProgramParams{
	{CPU: 4, IO: 1, Blocked: 0, Mixed: 1},                            // compute-heavy
	{CPU: 1, IO: 4, Blocked: 1, Mixed: 0},                            // io-heavy
	{CPU: 1, IO: 1, Blocked: 3, Mixed: 1, Mutexes: 2},                // blocked/waiting
	{CPU: 2, IO: 2, Blocked: 2, Mixed: 2, Barrier: true},             // balanced, barrier-stepped
	{CPU: 2, IO: 1, Blocked: 2, Mixed: 1, Mutexes: 4, Barrier: true}, // lock-contended
}

// programParams resolves the full program list (explicit + preset-cycled).
func (m *Matrix) programParams() []ProgramParams {
	out := append([]ProgramParams(nil), m.Programs...)
	for i := 0; i < m.ProgramCount; i++ {
		pp := programPresets[i%len(programPresets)]
		pp.Seed = m.ProgramSeed + int64(i)
		pp.LoopDepth = 1 + i%3
		pp.Trip = 8 << (i % 3)
		out = append(out, pp)
	}
	return out
}

// Materialize synthesizes every program and registers it with the workloads
// registry (idempotently: re-materializing a matrix that names already-
// registered programs is fine as long as the sources agree). It returns the
// program names and the full platform axis in deterministic order.
func (m *Matrix) Materialize() (programs []string, platforms []string, err error) {
	pps := m.programParams()
	if len(pps) == 0 {
		return nil, nil, fmt.Errorf("scenario: matrix needs at least one program (programs or program_count)")
	}
	seen := map[string]bool{}
	for _, pp := range pps {
		spec, err := Generate(pp)
		if err != nil {
			return nil, nil, err
		}
		if seen[spec.Name] {
			continue
		}
		seen[spec.Name] = true
		if err := ensureRegistered(spec); err != nil {
			return nil, nil, err
		}
		programs = append(programs, spec.Name)
	}

	platforms = append(platforms, m.Platforms...)
	if m.Zoo != nil {
		zoo, err := m.Zoo.Platforms()
		if err != nil {
			return nil, nil, err
		}
		platforms = append(platforms, zoo...)
	}
	pseen := map[string]bool{}
	uniq := platforms[:0]
	for _, p := range platforms {
		if !pseen[p] {
			pseen[p] = true
			uniq = append(uniq, p)
		}
	}
	return programs, uniq, nil
}

// ensureRegistered registers a generated spec, treating an exact duplicate
// (same name, same source) as success. Name collisions with different
// sources are impossible for generator output (names encode the parameters)
// but are still guarded against.
func ensureRegistered(s workloads.Spec) error {
	err := workloads.Register(s)
	if err == nil {
		return nil
	}
	if ex, ok := workloads.ByName(s.Name); ok && ex.Source == s.Source && ex.Suite == s.Suite {
		return nil
	}
	return err
}

// Unregister removes the matrix's generated programs from the workloads
// registry (e.g. after a one-shot CLI sweep). Safe to call whether or not
// Materialize ran.
func (m *Matrix) Unregister() {
	for _, pp := range m.programParams() {
		workloads.Unregister(pp.Name())
	}
}

// AutoBatch sizes Batch for remote dispatch: when workers > 1 and no
// explicit Batch is set, programs are split so the matrix compiles to
// roughly two campaign batches per worker — small enough that a slow or
// dying worker never gates the whole sweep behind one giant batch, large
// enough that per-batch overhead (submission, aggregation, reporting) stays
// negligible. Batching only regroups jobs; every job key is unchanged, so
// batch size can never affect results or cache identity (the remote
// byte-identity test runs batched and unbatched grids against each other).
func (m *Matrix) AutoBatch(workers int) {
	if m.Batch != 0 || workers <= 1 {
		return
	}
	pnames := map[string]bool{}
	for _, pp := range m.programParams() {
		pnames[pp.Name()] = true
	}
	programs := len(pnames)
	if programs <= 1 {
		return
	}
	target := 2 * workers // desired batch count
	b := (programs + target - 1) / target
	if b < 1 {
		b = 1
	}
	m.Batch = b
}

// Campaigns compiles the matrix into campaign specs: programs are batched
// (Batch per spec; one spec when Batch is 0) and every other axis carries
// over verbatim. Each spec validates against the campaign engine's own
// rules before being returned.
func (m *Matrix) Campaigns() ([]campaign.Spec, error) {
	programs, platforms, err := m.Materialize()
	if err != nil {
		return nil, err
	}
	batch := m.Batch
	if batch <= 0 || batch > len(programs) {
		batch = len(programs)
	}
	name := m.Name
	if name == "" {
		name = "scenario"
	}
	var specs []campaign.Spec
	for lo := 0; lo < len(programs); lo += batch {
		hi := lo + batch
		if hi > len(programs) {
			hi = len(programs)
		}
		sp := campaign.Spec{
			Name:       fmt.Sprintf("%s/batch%d", name, len(specs)),
			Benchmarks: append([]string(nil), programs[lo:hi]...),
			Platforms:  append([]string(nil), platforms...),
			Schedulers: append([]string(nil), m.Schedulers...),
			Configs:    append([]string(nil), m.Configs...),
			Seeds:      append([]int64(nil), m.Seeds...),
			Scale:      m.Scale,
			Sim:        m.Sim,
		}
		if len(specs) == 0 && hi == len(programs) {
			sp.Name = name // single batch keeps the bare name
		}
		if err := sp.Validate(); err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// Cells returns the grid size the matrix expands to (jobs across all
// batches), without compiling any program. Duplicate programs and
// platforms are deduplicated exactly as Materialize deduplicates them
// (program names encode their parameters, so name identity is program
// identity).
func (m *Matrix) Cells() int {
	pnames := map[string]bool{}
	for _, pp := range m.programParams() {
		pnames[pp.Name()] = true
	}
	programs := len(pnames)
	plats := map[string]bool{}
	for _, p := range m.Platforms {
		plats[p] = true
	}
	if m.Zoo != nil {
		if zoo, err := m.Zoo.Platforms(); err == nil {
			for _, p := range zoo {
				plats[p] = true
			}
		}
	}
	if len(plats) == 0 {
		plats[campaign.DefaultPlatform] = true
	}
	scheds := len(m.Schedulers)
	if scheds == 0 {
		scheds = 1
	}
	seeds := len(m.Seeds)
	if seeds == 0 {
		seeds = 1
	}
	// The config axis expands per platform: "all" sweeps every valid
	// configuration of that board, any other token is one cell.
	platformConfigs := 0
	for p := range plats {
		configs := 0
		for _, c := range m.Configs {
			if c == "all" {
				if plat, err := hw.ByName(p); err == nil {
					configs += plat.NumConfigs()
				}
			} else {
				configs++
			}
		}
		if len(m.Configs) == 0 {
			configs = 1
		}
		platformConfigs += configs
	}
	return programs * scheds * seeds * platformConfigs
}

package scenario

import (
	"bytes"
	"strings"
	"testing"

	"astro/internal/features"
	"astro/internal/hw"
	"astro/internal/ir"
	"astro/internal/sim"
)

// TestGenerateDeterministic pins the determinism contract: same params in,
// byte-identical source and byte-identical ir.Encode out.
func TestGenerateDeterministic(t *testing.T) {
	pp := ProgramParams{Seed: 42, CPU: 2, IO: 2, Blocked: 2, Mixed: 2, Mutexes: 2, Barrier: true}
	a, err := Generate(pp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(pp)
	if err != nil {
		t.Fatal(err)
	}
	if a.Source != b.Source {
		t.Fatal("same params produced different source")
	}
	ma, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ir.Encode(ma), ir.Encode(mb)) {
		t.Fatal("same params produced different IR encodings")
	}
	// Different seeds diversify the source.
	c, err := Generate(ProgramParams{Seed: 43, CPU: 2, IO: 2, Blocked: 2, Mixed: 2, Mutexes: 2, Barrier: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Source == a.Source {
		t.Error("different seeds produced identical source")
	}
}

// TestGeneratedPhaseMix verifies that every generated phase function
// classifies into its requested bucket across a spread of seeds and knobs.
func TestGeneratedPhaseMix(t *testing.T) {
	want := map[string]features.Phase{
		"cpu_": features.PhaseCPUBound,
		"io_":  features.PhaseIOBound,
		"blk_": features.PhaseBlocked,
		"mix_": features.PhaseOther,
	}
	for seed := int64(0); seed < 12; seed++ {
		pp := ProgramParams{
			Seed: seed, CPU: 2, IO: 2, Blocked: 3, Mixed: 2,
			LoopDepth: 1 + int(seed)%4,
			Trip:      8 << (seed % 5),
			Mutexes:   int(seed) % 9,
			Barrier:   seed%2 == 0,
		}
		spec, err := Generate(pp)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := spec.Compile()
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, spec.Source)
		}
		if err := ir.Verify(mod); err != nil {
			t.Fatalf("seed %d: verify: %v", seed, err)
		}
		mi := features.AnalyzeModule(mod, features.Options{})
		for _, fi := range mi.Funcs {
			for pfx, ph := range want {
				if strings.HasPrefix(fi.Name, pfx) && fi.Phase != ph {
					t.Errorf("seed %d: %s classifies as %v, want %v (vec %+v)",
						seed, fi.Name, fi.Phase, ph, fi.Vec)
				}
			}
		}
	}
}

// TestGeneratedProgramsRun executes a few generated programs end-to-end on
// both a built-in board and a zoo platform.
func TestGeneratedProgramsRun(t *testing.T) {
	plats := []string{"odroid-xu4", hw.PlatformParams{Little: 2, Big: 2, LittleMHz: 1000, BigMHz: 1800, BigBlend: 1}.String()}
	for seed := int64(0); seed < 3; seed++ {
		spec, err := Generate(ProgramParams{Seed: seed, Mutexes: 2, Barrier: seed%2 == 0, Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		mod, err := spec.Compile()
		if err != nil {
			t.Fatal(err)
		}
		for _, pn := range plats {
			plat, err := hw.ByName(pn)
			if err != nil {
				t.Fatal(err)
			}
			m, err := sim.New(mod, plat, sim.Options{Args: spec.SmallArgs(), Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Run()
			if err != nil {
				t.Fatalf("seed %d on %s: %v", seed, pn, err)
			}
			if res.TimeS <= 0 || res.EnergyJ <= 0 || res.Instructions == 0 {
				t.Errorf("seed %d on %s: degenerate result %+v", seed, pn, res)
			}
		}
	}
}

func TestProgramParamsValidate(t *testing.T) {
	bad := []ProgramParams{
		{CPU: -1},
		{CPU: 17},
		{CPU: 1, Threads: 17},
		{CPU: 1, LoopDepth: 5},
		{CPU: 1, Trip: 1},
		{CPU: 1, Trip: 8192},
		{CPU: 1, Mutexes: 9},
		{CPU: 1, DefaultScale: 1, SmallScale: 2},
	}
	for _, pp := range bad {
		if err := pp.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", pp)
		}
	}
	if err := (ProgramParams{}).Validate(); err != nil {
		t.Errorf("zero params should canonicalize to a valid default mix: %v", err)
	}
}

package scenario

import (
	"fmt"

	"astro/internal/hw"
)

// DVFSStep is one operating point of a platform ladder: the two cluster
// clocks that scale together under a governor.
type DVFSStep struct {
	LittleMHz int `json:"little_mhz"`
	BigMHz    int `json:"big_mhz"`
}

// ZooParams declares a generated platform family: the cross product of
// big.LITTLE topologies, a DVFS frequency ladder, and big-cluster blend
// points (cost tables interpolated between the A7 and A15 models). Every
// resulting machine is named canonically (hw.PlatformParams.String), so the
// list of names alone reproduces the zoo anywhere.
type ZooParams struct {
	// Topologies in xLyB notation ("2L4B"); default a four-machine spread
	// around the measured boards.
	Topologies []string `json:"topologies,omitempty"`

	// Ladder of DVFS operating points; default three steps from
	// low-power to the Odroid's performance governor.
	Ladder []DVFSStep `json:"ladder,omitempty"`

	// BigBlends are cost-table interpolation points for the big cluster
	// (1 = pure A15, 0.5 = a "medium" core); default [1]. The LITTLE
	// cluster always uses the calibrated A7 table.
	BigBlends []float64 `json:"big_blends,omitempty"`
}

func (zp ZooParams) topologies() []string {
	if len(zp.Topologies) == 0 {
		return []string{"4L4B", "2L4B", "4L2B", "1L4B"}
	}
	return zp.Topologies
}

func (zp ZooParams) ladder() []DVFSStep {
	if len(zp.Ladder) == 0 {
		return []DVFSStep{{800, 1200}, {1000, 1600}, {1400, 2000}}
	}
	return zp.Ladder
}

func (zp ZooParams) bigBlends() []float64 {
	if len(zp.BigBlends) == 0 {
		return []float64{1}
	}
	return zp.BigBlends
}

// Platforms enumerates the zoo deterministically (topology-major, then
// ladder step, then blend) and returns canonical platform names, validated.
func (zp ZooParams) Platforms() ([]string, error) {
	var names []string
	for _, topo := range zp.topologies() {
		cfg, err := hw.ParseConfig(topo)
		if err != nil {
			return nil, fmt.Errorf("scenario: zoo topology %q: %w", topo, err)
		}
		for _, step := range zp.ladder() {
			for _, blend := range zp.bigBlends() {
				pp := hw.PlatformParams{
					Little: cfg.Little, Big: cfg.Big,
					LittleMHz: step.LittleMHz, BigMHz: step.BigMHz,
					LittleBlend: 0, BigBlend: blend,
				}
				if err := pp.Validate(); err != nil {
					return nil, fmt.Errorf("scenario: zoo %s @ %d/%d MHz: %w",
						topo, step.LittleMHz, step.BigMHz, err)
				}
				names = append(names, pp.String())
			}
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("scenario: zoo expands to zero platforms")
	}
	return names, nil
}

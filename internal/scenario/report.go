package scenario

import (
	"fmt"
	"sort"
	"strings"

	"astro/internal/campaign"
	"astro/internal/stats"
	"astro/internal/tablefmt"
)

// Report aggregates one or more campaign result sets along the scheduler
// axis: for every (program, platform, config) group the schedulers compete
// on the energy-delay product, and a scheduler's cells are scored against
// the group's time/energy Pareto frontier.
type Report struct {
	Name string `json:"name,omitempty"`
	// Groups is the number of (program, platform, config) contests scored.
	Groups int `json:"groups"`
	// Cells is the number of scheduler cells across all groups.
	Cells int `json:"cells"`
	// Schedulers are scored entries sorted by wins (desc), then name.
	Schedulers []SchedulerScore `json:"schedulers"`
}

// SchedulerScore is one scheduler's aggregate standing.
type SchedulerScore struct {
	Scheduler string `json:"scheduler"`
	Cells     int    `json:"cells"`
	// Wins counts groups where this scheduler had the (strictly or jointly)
	// lowest mean energy-delay product; Losses the rest of its groups.
	Wins   int `json:"wins"`
	Losses int `json:"losses"`
	// Pareto counts this scheduler's cells on their group's time/energy
	// Pareto frontier (not dominated by any other scheduler in the group).
	Pareto int `json:"pareto"`
	// EDP summarizes the scheduler's mean energy-delay products (J·s), and
	// NormEDP the per-group ratio to the group's best EDP (1 = always
	// best; 1.2 = 20% above the winner on average).
	EDP     stats.Summary `json:"edp"`
	NormEDP stats.Summary `json:"norm_edp"`
}

// cellEDP is a cell's mean energy-delay product.
func cellEDP(c campaign.Cell) float64 { return c.Time.Mean * c.Energy.Mean }

// dominates reports whether cell a Pareto-dominates cell b on (time,
// energy): no worse on both axes, strictly better on at least one.
func dominates(a, b campaign.Cell) bool {
	if a.Time.Mean > b.Time.Mean || a.Energy.Mean > b.Energy.Mean {
		return false
	}
	return a.Time.Mean < b.Time.Mean || a.Energy.Mean < b.Energy.Mean
}

// BuildReport scores the scheduler contest over the given result sets.
// Cells with errors or no successful runs are excluded. Groups with a
// single scheduler still contribute EDP summaries but no win/loss signal.
func BuildReport(name string, sets ...*campaign.ResultSet) *Report {
	type group struct {
		key   string
		cells []campaign.Cell
	}
	byKey := map[string]*group{}
	var order []string
	for _, rs := range sets {
		if rs == nil {
			continue
		}
		for _, c := range rs.Cells {
			if c.Time.N == 0 { // all seeds errored
				continue
			}
			key := strings.Join([]string{c.Benchmark, c.Platform, c.Config}, "\x00")
			g, ok := byKey[key]
			if !ok {
				g = &group{key: key}
				byKey[key] = g
				order = append(order, key)
			}
			g.cells = append(g.cells, c)
		}
	}
	sort.Strings(order)

	scores := map[string]*SchedulerScore{}
	var schedOrder []string
	score := func(name string) *SchedulerScore {
		s, ok := scores[name]
		if !ok {
			s = &SchedulerScore{Scheduler: name}
			scores[name] = s
			schedOrder = append(schedOrder, name)
		}
		return s
	}

	rep := &Report{Name: name}
	edps := map[string][]float64{}
	norms := map[string][]float64{}
	for _, key := range order {
		g := byKey[key]
		rep.Groups++
		best := cellEDP(g.cells[0])
		for _, c := range g.cells[1:] {
			if e := cellEDP(c); e < best {
				best = e
			}
		}
		for _, c := range g.cells {
			rep.Cells++
			s := score(c.Scheduler)
			s.Cells++
			e := cellEDP(c)
			edps[c.Scheduler] = append(edps[c.Scheduler], e)
			if best > 0 {
				norms[c.Scheduler] = append(norms[c.Scheduler], e/best)
			}
			if len(g.cells) > 1 {
				if e == best {
					s.Wins++
				} else {
					s.Losses++
				}
			}
			onFrontier := true
			for _, o := range g.cells {
				if o.Scheduler != c.Scheduler && dominates(o, c) {
					onFrontier = false
					break
				}
			}
			if onFrontier {
				s.Pareto++
			}
		}
	}

	for _, name := range schedOrder {
		s := scores[name]
		s.EDP = stats.Summarize(edps[name])
		s.NormEDP = stats.Summarize(norms[name])
		rep.Schedulers = append(rep.Schedulers, *s)
	}
	sort.Slice(rep.Schedulers, func(i, j int) bool {
		a, b := rep.Schedulers[i], rep.Schedulers[j]
		if a.Wins != b.Wins {
			return a.Wins > b.Wins
		}
		return a.Scheduler < b.Scheduler
	})
	return rep
}

// Render formats the report for terminals.
func (r *Report) Render() string {
	var sb strings.Builder
	name := r.Name
	if name == "" {
		name = "scenario"
	}
	fmt.Fprintf(&sb, "SCENARIO %s — %d groups, %d scheduler cells\n", name, r.Groups, r.Cells)
	sb.WriteString("win = lowest mean energy-delay product in its (program, platform, config) group\n\n")
	tb := tablefmt.NewTable("scheduler", "cells", "wins", "losses", "pareto", "mean EDP (J·s)", "norm EDP", "worst norm")
	for _, s := range r.Schedulers {
		tb.Row(s.Scheduler, s.Cells, s.Wins, s.Losses, s.Pareto, s.EDP.Mean, s.NormEDP.Mean, s.NormEDP.Max)
	}
	sb.WriteString(tb.String())
	return sb.String()
}

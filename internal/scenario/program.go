// Package scenario turns the reproduction's fixed evaluation (18 hand-
// ported benchmarks on two boards) into a generated one: seeded synthesis
// of astc programs with controllable phase structure, a parametric
// big.LITTLE platform zoo, and a declarative matrix that compiles program ×
// platform × scheduler × seed grids down to campaign specs.
//
// Determinism contract: every generator in this package is a pure function
// of its parameters. The same ProgramParams always yield the same astc
// source text, hence the same IR module and the same ir.Encode bytes, hence
// the same campaign job keys — so scenario sweeps hit the content-addressed
// result store exactly like hand-written benchmarks do. The only source of
// variety is the explicit Seed, threaded through a private math/rand stream
// (never the global one, never time or map order). Generated names encode
// their parameters (programs: "scn-<seed>-c2-i1-..."; platforms: the
// canonical "zoo:..." names of internal/hw), so name identity is object
// identity across processes and machines.
//
// Matrix compiles the generated axes into campaign.Spec batches. Batching
// (Batch, AutoBatch) only regroups jobs — job keys are independent of
// batch size, worker count and execution backend, so a matrix swept
// in-process, through -workers loopback clusters, or across a distributed
// fleet produces byte-identical result sets against the same store.
package scenario

import (
	"fmt"
	"math/rand"
	"strings"

	"astro/internal/workloads"
)

// ProgramParams are the synthesis knobs for one generated program. The
// zero value of a count field means "none of that bucket"; an all-zero mix
// is rejected. Knobs deliberately mirror the feature axes of
// internal/features: the generator emits functions that the Phase-Extractor
// classifies into the requested buckets, which is pinned by tests.
type ProgramParams struct {
	Seed int64 `json:"seed"`

	// Phase mix: how many functions of each static phase the program has.
	CPU     int `json:"cpu"`     // CPU-bound kernels (int/FP arithmetic chains)
	IO      int `json:"io"`      // IO-bound readers/writers
	Blocked int `json:"blocked"` // blocked waiters (sleep/net/lock-dense)
	Mixed   int `json:"mixed"`   // balanced bodies that classify as Other

	Threads int `json:"threads"` // worker thread count (default 4, max 16)

	// Loop structure of CPU kernels: nesting depth (1..4, default 2) and
	// base trip count (default 16; per-function trips jitter in
	// [trip/2, trip], resampled from the seed).
	LoopDepth int `json:"loop_depth"`
	Trip      int `json:"trip"`

	// Contention: number of mutexes worker threads contend on inside their
	// main loop (0 = no lock glue, max 8), and whether workers barrier-step
	// each iteration.
	Mutexes int  `json:"mutexes"`
	Barrier bool `json:"barrier"`

	// Campaign scales (workloads.Spec DefaultScale/SmallScale); defaults 6/2.
	DefaultScale int64 `json:"default_scale"`
	SmallScale   int64 `json:"small_scale"`
}

// Canon fills defaults, returning the canonical parameter set (the one the
// program name encodes).
func (pp ProgramParams) Canon() ProgramParams {
	if pp.CPU == 0 && pp.IO == 0 && pp.Blocked == 0 && pp.Mixed == 0 {
		pp.CPU, pp.IO, pp.Blocked, pp.Mixed = 2, 1, 1, 1
	}
	if pp.Threads == 0 {
		pp.Threads = 4
	}
	if pp.LoopDepth == 0 {
		pp.LoopDepth = 2
	}
	if pp.Trip == 0 {
		pp.Trip = 16
	}
	if pp.DefaultScale == 0 {
		pp.DefaultScale = 6
	}
	if pp.SmallScale == 0 {
		pp.SmallScale = 2
	}
	return pp
}

// Validate rejects parameter sets outside the generator's envelope.
func (pp ProgramParams) Validate() error {
	c := pp.Canon()
	for name, v := range map[string]int{"cpu": c.CPU, "io": c.IO, "blocked": c.Blocked, "mixed": c.Mixed} {
		if v < 0 || v > 16 {
			return fmt.Errorf("scenario: %s function count %d out of range [0, 16]", name, v)
		}
	}
	if c.CPU+c.IO+c.Blocked+c.Mixed == 0 {
		return fmt.Errorf("scenario: program needs at least one phase function")
	}
	if c.Threads < 1 || c.Threads > 16 {
		return fmt.Errorf("scenario: threads %d out of range [1, 16]", c.Threads)
	}
	if c.LoopDepth < 1 || c.LoopDepth > 4 {
		return fmt.Errorf("scenario: loop depth %d out of range [1, 4]", c.LoopDepth)
	}
	if c.Trip < 2 || c.Trip > 4096 {
		return fmt.Errorf("scenario: trip count %d out of range [2, 4096]", c.Trip)
	}
	if c.Mutexes < 0 || c.Mutexes > 8 {
		return fmt.Errorf("scenario: mutex count %d out of range [0, 8]", c.Mutexes)
	}
	if c.SmallScale < 1 || c.DefaultScale < c.SmallScale {
		return fmt.Errorf("scenario: scales (default %d, small %d) must satisfy 1 <= small <= default",
			c.DefaultScale, c.SmallScale)
	}
	return nil
}

// Name derives the program's benchmark name. It encodes every parameter
// that influences the generated source or the campaign arguments, so equal
// names imply identical programs (mirroring the zoo platform naming).
func (pp ProgramParams) Name() string {
	c := pp.Canon()
	bar := 0
	if c.Barrier {
		bar = 1
	}
	return fmt.Sprintf("scn-%d-c%d-i%d-b%d-x%d-t%d-d%d-r%d-m%d-w%d-s%dx%d",
		c.Seed, c.CPU, c.IO, c.Blocked, c.Mixed, c.Threads,
		c.LoopDepth, c.Trip, c.Mutexes, bar, c.DefaultScale, c.SmallScale)
}

// Generate synthesizes the program and returns it as a registrable
// workloads spec (suite "scenario"). Same params in, byte-identical source
// out.
func Generate(pp ProgramParams) (workloads.Spec, error) {
	if err := pp.Validate(); err != nil {
		return workloads.Spec{}, err
	}
	c := pp.Canon()
	g := &progGen{p: c, rng: rand.New(rand.NewSource(c.Seed))}
	src := g.source()
	return workloads.Spec{
		Name:         c.Name(),
		Suite:        "scenario",
		Desc:         fmt.Sprintf("generated: %d cpu / %d io / %d blocked / %d mixed funcs, %d threads", c.CPU, c.IO, c.Blocked, c.Mixed, c.Threads),
		Source:       src,
		DefaultScale: c.DefaultScale,
		SmallScale:   c.SmallScale,
		Threads:      int64(c.Threads),
	}, nil
}

// progGen carries the synthesis state: parameters, the seeded stream, and
// the emitted phase-function names in worker call order.
type progGen struct {
	p     ProgramParams
	rng   *rand.Rand
	funcs []string
	sb    strings.Builder
}

func (g *progGen) trip() int {
	t := g.p.Trip/2 + g.rng.Intn(g.p.Trip/2+1)
	if t < 2 {
		t = 2
	}
	return t
}

// coef draws a small FP coefficient in (0, 1], printed with a fixed format
// so source text is reproducible.
func (g *progGen) coef() string {
	return fmt.Sprintf("0.%03d", 1+g.rng.Intn(999))
}

func (g *progGen) line(format string, args ...any) {
	fmt.Fprintf(&g.sb, format+"\n", args...)
}

func (g *progGen) source() string {
	g.line("// Generated by internal/scenario; do not edit. %s", g.p.Name())
	g.line("var data [1024]float;")
	g.line("var buf [1024]float;")
	g.line("var acc [64]float;")
	if g.p.Mutexes > 0 || g.p.Blocked > 0 {
		g.line("mutex mu[8];")
	}
	if g.p.Barrier {
		g.line("barrier step;")
	}
	g.line("")
	for i := 0; i < g.p.CPU; i++ {
		g.cpuFunc(i)
	}
	for i := 0; i < g.p.IO; i++ {
		g.ioFunc(i)
	}
	for i := 0; i < g.p.Blocked; i++ {
		g.blockedFunc(i)
	}
	for i := 0; i < g.p.Mixed; i++ {
		g.mixedFunc(i)
	}
	g.workerFunc()
	g.mainFunc()
	return g.sb.String()
}

// cpuFunc emits a CPU-bound kernel: a depth-nested loop over scalar
// arithmetic chains. Every non-control instruction it lowers to is int or
// FP ALU work, so IntDens+FPDens dominates regardless of depth.
func (g *progGen) cpuFunc(i int) {
	name := fmt.Sprintf("cpu_%d", i)
	g.funcs = append(g.funcs, name)
	depth := 1 + g.rng.Intn(g.p.LoopDepth)
	useFP := g.rng.Intn(2) == 0
	g.line("func %s(id int) {", name)
	indent := "\t"
	for d := 0; d < depth; d++ {
		g.line("%svar i%d int;", indent, d)
	}
	if useFP {
		g.line("%svar s float = %s;", indent, g.coef())
		g.line("%svar t float = %s;", indent, g.coef())
	} else {
		g.line("%svar a int = %d;", indent, 1+g.rng.Intn(9))
		g.line("%svar b int = %d;", indent, 1+g.rng.Intn(9))
	}
	for d := 0; d < depth; d++ {
		trip := g.trip()
		if d > 0 {
			trip = 2 + g.rng.Intn(3) // keep nested work polynomial, not explosive
		}
		g.line("%sfor (i%d = 0; i%d < %d; i%d = i%d + 1) {", indent, d, d, trip, d, d)
		indent += "\t"
	}
	lines := 4 + g.rng.Intn(4)
	for l := 0; l < lines; l++ {
		if useFP {
			switch g.rng.Intn(3) {
			case 0:
				g.line("%ss = s * %s + %s;", indent, g.coef(), g.coef())
			case 1:
				g.line("%st = t + s * %s;", indent, g.coef())
			default:
				g.line("%ss = s - t * %s;", indent, g.coef())
			}
		} else {
			switch g.rng.Intn(3) {
			case 0:
				g.line("%sa = a * %d + %d;", indent, 3+g.rng.Intn(5), 1+g.rng.Intn(7))
			case 1:
				g.line("%sb = b + a / %d;", indent, 2+g.rng.Intn(6))
			default:
				g.line("%sa = a - b %% %d;", indent, 5+g.rng.Intn(11))
			}
		}
	}
	if useFP && g.rng.Intn(2) == 0 {
		g.line("%st = t + sqrt(fabs(s) + %s);", indent, g.coef())
	}
	for d := depth - 1; d >= 0; d-- {
		indent = indent[:len(indent)-1]
		g.line("%s}", indent)
	}
	if useFP {
		g.line("\tacc[id %% 64] = s + t;")
	} else {
		g.line("\tacc[id %% 64] = float(a + b);")
	}
	g.line("}")
	g.line("")
}

// ioFunc emits an IO-bound function: unrolled blocking reads/writes through
// a private slice of buf, so IODens+MemDens dominates and LockDens is 0.
func (g *progGen) ioFunc(i int) {
	name := fmt.Sprintf("io_%d", i)
	g.funcs = append(g.funcs, name)
	g.line("func %s(id int) {", name)
	g.line("\tvar i int;")
	g.line("\tvar base int = (id %% 16) * 64;")
	g.line("\tfor (i = 0; i < %d; i = i + 1) {", g.trip())
	reads := 3 + g.rng.Intn(3)
	for r := 0; r < reads; r++ {
		g.line("\t\tbuf[base] = buf[base] + read_float();")
	}
	writes := 2 + g.rng.Intn(2)
	for w := 0; w < writes; w++ {
		g.line("\t\tprint_float(buf[base + %d]);", g.rng.Intn(64))
	}
	g.line("\t}")
	g.line("}")
	g.line("")
}

// blockedFunc emits a Blocked-phase function. Three variants map to the
// three blocking traits the Phase-Extractor recognizes: an unconditional
// sleep, a network wait, and a lock-dense body (LockDens > 0.5).
func (g *progGen) blockedFunc(i int) {
	name := fmt.Sprintf("blk_%d", i)
	g.funcs = append(g.funcs, name)
	g.line("func %s(id int) {", name)
	switch g.rng.Intn(3) {
	case 0: // sleeper
		g.line("\tvar i int;")
		g.line("\tfor (i = 0; i < %d; i = i + 1) {", 1+g.rng.Intn(2))
		g.line("\t\tsleep_ms(1);")
		g.line("\t\tacc[id %% 64] = acc[id %% 64] + %s;", g.coef())
		g.line("\t}")
	case 1: // network round-trip
		g.line("\tnet_send(id);")
		g.line("\tacc[id %% 64] = acc[id %% 64] + float(net_recv());")
	default: // lock-dense: a run of short critical sections on one mutex
		g.line("\tvar m int = mu[id %% 8];")
		pairs := 6 + g.rng.Intn(3)
		for p := 0; p < pairs; p++ {
			g.line("\tlock(m);")
			if p == pairs/2 {
				g.line("\tacc[id %% 64] = acc[id %% 64] + %s;", g.coef())
			}
			g.line("\tunlock(m);")
		}
	}
	g.line("}")
	g.line("")
}

// mixedFunc emits a body balanced between memory traffic and arithmetic so
// that neither the IO/Mem nor the Int/FP predicate crosses 0.5: it
// classifies as Other.
func (g *progGen) mixedFunc(i int) {
	name := fmt.Sprintf("mix_%d", i)
	g.funcs = append(g.funcs, name)
	g.line("func %s(id int) {", name)
	g.line("\tvar i int;")
	g.line("\tvar x float = %s;", g.coef())
	// The loop index addresses arrays directly, so the trip is capped at
	// the shared 1024-element footprint.
	trip := g.trip()
	if trip > 1024 {
		trip = 1024
	}
	g.line("\tfor (i = 0; i < %d; i = i + 1) {", trip)
	pairs := 2 + g.rng.Intn(2)
	for p := 0; p < pairs; p++ {
		// One memory-heavy statement (3 addr + 2 loads + 1 store = 6 Mem,
		// 1 FP, no index arithmetic) paired with one arithmetic statement
		// (2 FP) keeps both densities in the 0.40-0.49 band, under both
		// classification thresholds.
		g.line("\t\tdata[i] = data[i] + buf[i];")
		g.line("\t\tx = x * %s + %s;", g.coef(), g.coef())
	}
	g.line("\t}")
	g.line("\tacc[id %% 64] = x;")
	g.line("}")
	g.line("")
}

// workerFunc emits the per-thread driver: scale iterations over every phase
// function (order shuffled per seed), optional mutex contention glue, and
// the optional barrier step.
func (g *progGen) workerFunc() {
	order := append([]string(nil), g.funcs...)
	g.rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
	g.line("func worker(id int, scale int, threads int) {")
	g.line("\tvar it int;")
	g.line("\tfor (it = 0; it < scale; it = it + 1) {")
	for _, fn := range order {
		g.line("\t\t%s(id);", fn)
	}
	if g.p.Mutexes > 0 {
		g.line("\t\tlock(mu[id %% %d]);", g.p.Mutexes)
		g.line("\t\tacc[0] = acc[0] + acc[id %% 64];")
		g.line("\t\tunlock(mu[id %% %d]);", g.p.Mutexes)
	}
	if g.p.Barrier {
		g.line("\t\tbarrier_wait(step);")
	}
	g.line("\t}")
	g.line("}")
	g.line("")
}

func (g *progGen) mainFunc() {
	g.line("func main(scale int, threads int) {")
	g.line("\tvar i int;")
	g.line("\tfor (i = 0; i < 1024; i = i + 1) {")
	g.line("\t\tdata[i] = float(i %% 97) * %s;", g.coef())
	g.line("\t\tbuf[i] = float(i %% 31) * %s;", g.coef())
	g.line("\t}")
	if g.p.Barrier {
		g.line("\tbarrier_init(step, threads);")
	}
	g.line("\tfor (i = 0; i < threads; i = i + 1) {")
	g.line("\t\tspawn worker(i, scale, threads);")
	g.line("\t}")
	g.line("\tjoin();")
	g.line("\tprint_float(acc[0]);")
	g.line("}")
}

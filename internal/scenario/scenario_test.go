package scenario

import (
	"strings"
	"testing"
	"time"

	"astro/internal/campaign"
	"astro/internal/hw"
)

func TestZooPlatformsDeterministic(t *testing.T) {
	zp := ZooParams{
		Topologies: []string{"2L2B", "1L4B"},
		Ladder:     []DVFSStep{{800, 1200}, {1400, 2000}},
		BigBlends:  []float64{0.5, 1},
	}
	a, err := zp.Platforms()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2*2*2 {
		t.Fatalf("zoo size %d, want 8: %v", len(a), a)
	}
	b, _ := zp.Platforms()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("zoo enumeration not deterministic: %v vs %v", a, b)
		}
		if _, err := hw.ByName(a[i]); err != nil {
			t.Errorf("zoo name %q does not build: %v", a[i], err)
		}
	}
	// Defaults expand non-trivially and build.
	def, err := ZooParams{}.Platforms()
	if err != nil {
		t.Fatal(err)
	}
	if len(def) != 4*3*1 {
		t.Errorf("default zoo size %d, want 12", len(def))
	}
	if _, err := (ZooParams{Topologies: []string{"notatopo"}}).Platforms(); err == nil {
		t.Error("bad topology should error")
	}
}

// sweepMatrix is the shared ≥200-cell acceptance matrix: 5 generated
// programs × 5 platforms (2 boards + 3 zoo machines) × 2 schedulers × 4
// seeds = 200 jobs.
func sweepMatrix() Matrix {
	return Matrix{
		Name:         "acceptance",
		ProgramCount: 5,
		ProgramSeed:  100,
		Platforms:    []string{"odroid-xu4", "jetson-tk1"},
		Zoo: &ZooParams{
			Topologies: []string{"2L2B"},
			Ladder:     []DVFSStep{{800, 1200}, {1000, 1600}, {1400, 2000}},
			BigBlends:  []float64{0.5},
		},
		Schedulers: []string{"default", "gts"},
		Seeds:      []int64{0, 1, 2, 3},
		Sim:        campaign.Knobs{MaxTimeS: 0.25},
	}
}

// TestMatrixDeterministicJobKeys pins the end-to-end determinism contract:
// expanding the same matrix twice yields identical campaign job hashes in
// identical order, and every job is cacheable.
func TestMatrixDeterministicJobKeys(t *testing.T) {
	m := sweepMatrix()
	defer m.Unregister()
	keys := func() []string {
		specs, err := m.Campaigns()
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, sp := range specs {
			jobs, err := sp.Expand()
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range jobs {
				k, ok := j.Key()
				if !ok {
					t.Fatalf("job %s not cacheable", j.Label)
				}
				out = append(out, k)
			}
		}
		return out
	}
	a, b := keys(), keys()
	if len(a) != 200 {
		t.Fatalf("matrix expands to %d jobs, want 200", len(a))
	}
	if m.Cells() != 200 {
		t.Errorf("Cells() = %d, want 200", m.Cells())
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job key %d differs between expansions", i)
		}
	}
}

// TestMatrixSweepThroughEngine runs the 200-cell matrix through the
// campaign engine twice against one store: the cold pass simulates every
// cell, the warm pass must perform zero fresh simulations. The scheduler
// report built from the results must cover the full grid.
func TestMatrixSweepThroughEngine(t *testing.T) {
	m := sweepMatrix()
	defer m.Unregister()
	specs, err := m.Campaigns()
	if err != nil {
		t.Fatal(err)
	}
	eng := campaign.NewEngine(4, nil)

	run := func(sp campaign.Spec) campaign.Status {
		c, err := eng.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(3 * time.Minute)
		for {
			st := c.Status()
			if st.State != campaign.StateRunning {
				if st.State != campaign.StateDone {
					t.Fatalf("campaign %s finished %s: %s", sp.Name, st.State, st.Error)
				}
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("campaign %s timed out (%d/%d done)", sp.Name, st.Done, st.Total)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	var cold, warm []*campaign.ResultSet
	total := 0
	for _, sp := range specs {
		st := run(sp)
		total += st.Total
		if st.Errors != 0 {
			t.Fatalf("cold pass had %d errors", st.Errors)
		}
		c, _ := eng.Get(st.ID)
		cold = append(cold, c.Results())
	}
	if total != 200 {
		t.Fatalf("engine ran %d jobs, want 200", total)
	}
	for _, sp := range specs {
		st := run(sp)
		if st.ColdJobs != 0 || st.CacheHits != st.Total {
			t.Fatalf("warm pass simulated fresh: %d cold, %d/%d hits",
				st.ColdJobs, st.CacheHits, st.Total)
		}
		c, _ := eng.Get(st.ID)
		warm = append(warm, c.Results())
	}
	// Byte-identical result sets, cold vs warm.
	for i := range cold {
		if cold[i].Fingerprint != warm[i].Fingerprint {
			t.Fatalf("batch %d: warm fingerprint differs from cold", i)
		}
	}

	rep := BuildReport(m.Name, cold...)
	if rep.Groups != 25 { // 5 programs x 5 platforms x 1 config
		t.Errorf("report groups = %d, want 25", rep.Groups)
	}
	if rep.Cells != 50 { // x 2 schedulers
		t.Errorf("report cells = %d, want 50", rep.Cells)
	}
	if len(rep.Schedulers) != 2 {
		t.Fatalf("report schedulers = %v", rep.Schedulers)
	}
	wins, losses := 0, 0
	for _, s := range rep.Schedulers {
		wins += s.Wins
		losses += s.Losses
		if s.Cells != 25 {
			t.Errorf("%s scored %d cells, want 25", s.Scheduler, s.Cells)
		}
		if s.NormEDP.Min < 1 && s.NormEDP.N > 0 {
			t.Errorf("%s norm EDP min %.3f < 1", s.Scheduler, s.NormEDP.Min)
		}
		if s.Pareto == 0 {
			t.Errorf("%s has no Pareto-optimal cells at all", s.Scheduler)
		}
	}
	// Every group produces one winner; joint winners can push wins above
	// groups but wins+losses always equals the contested cell count.
	if wins+losses != rep.Cells {
		t.Errorf("wins %d + losses %d != cells %d", wins, losses, rep.Cells)
	}
	out := rep.Render()
	if !strings.Contains(out, "gts") || !strings.Contains(out, "default") {
		t.Errorf("rendered report missing schedulers:\n%s", out)
	}
}

// TestMatrixCellsMatchesExpansion pins Cells() against the real job count,
// including the per-platform "all" config expansion and axis dedup.
func TestMatrixCellsMatchesExpansion(t *testing.T) {
	dupZoo, _ := (&ZooParams{Topologies: []string{"2L2B"}, Ladder: []DVFSStep{{800, 1200}}}).Platforms()
	for _, m := range []Matrix{
		{ProgramCount: 1, Platforms: []string{"odroid-xu4"}, Configs: []string{"all", "2L2B"}},
		{ProgramCount: 2, Platforms: []string{"odroid-xu4", "jetson-tk1"}, Configs: []string{"all"}, Seeds: []int64{1, 2}},
		{ProgramCount: 1}, // every axis defaulted
		{ // platform listed explicitly AND emitted by the zoo: deduped
			ProgramCount: 1,
			Platforms:    dupZoo,
			Zoo:          &ZooParams{Topologies: []string{"2L2B"}, Ladder: []DVFSStep{{800, 1200}}},
		},
	} {
		m := m
		defer m.Unregister()
		specs, err := m.Campaigns()
		if err != nil {
			t.Fatal(err)
		}
		jobs := 0
		for _, sp := range specs {
			ex, err := sp.Expand()
			if err != nil {
				t.Fatal(err)
			}
			jobs += len(ex)
		}
		if got := m.Cells(); got != jobs {
			t.Errorf("Cells() = %d, expansion = %d jobs (%+v)", got, jobs, m)
		}
	}
}

func TestMatrixBatching(t *testing.T) {
	m := sweepMatrix()
	m.Batch = 2
	defer m.Unregister()
	specs, err := m.Campaigns()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 { // 5 programs in batches of 2
		t.Fatalf("batched into %d specs, want 3", len(specs))
	}
	names := map[string]bool{}
	progs := 0
	for _, sp := range specs {
		if names[sp.Name] {
			t.Errorf("duplicate batch name %q", sp.Name)
		}
		names[sp.Name] = true
		progs += len(sp.Benchmarks)
	}
	if progs != 5 {
		t.Errorf("batches cover %d programs, want 5", progs)
	}
}

func TestMatrixValidation(t *testing.T) {
	if _, err := (&Matrix{}).Campaigns(); err == nil {
		t.Error("empty matrix should fail")
	}
	bad := Matrix{ProgramCount: 1, Schedulers: []string{"warp-drive"}}
	defer bad.Unregister()
	if _, err := bad.Campaigns(); err == nil {
		t.Error("unknown scheduler should fail spec validation")
	}
	badPlat := Matrix{ProgramCount: 1, Platforms: []string{"zoo:bogus"}}
	defer badPlat.Unregister()
	if _, err := badPlat.Campaigns(); err == nil {
		t.Error("malformed zoo platform should fail spec validation")
	}
}

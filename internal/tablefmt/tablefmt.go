// Package tablefmt renders the experiment results as plain-text tables and
// ASCII plots (scatter and time series), standing in for the paper's
// figures in a terminal-friendly form.
package tablefmt

import (
	"fmt"
	"math"
	"strings"
)

// Table accumulates rows and renders aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000 || math.Abs(v) < 0.001:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var sb strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", width[i]-len(c)))
		}
		sb.WriteString("\n")
	}
	writeRow(t.header)
	total := 0
	for _, w := range width {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(cols-1)))
	sb.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// Point is a labelled 2-D point for scatter plots.
type Point struct {
	X, Y  float64
	Label string
}

// Scatter renders points on a w x h character grid with axis ranges derived
// from the data. Labels mark their point with their first rune.
func Scatter(points []Point, w, h int, xlabel, ylabel string) string {
	if len(points) == 0 || w < 8 || h < 4 {
		return "(no data)\n"
	}
	minX, maxX := points[0].X, points[0].X
	minY, maxY := points[0].Y, points[0].Y
	for _, p := range points[1:] {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, h)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", w))
	}
	for _, p := range points {
		x := int(float64(w-1) * (p.X - minX) / (maxX - minX))
		y := int(float64(h-1) * (p.Y - minY) / (maxY - minY))
		row := h - 1 - y
		mark := '*'
		if p.Label != "" {
			mark = []rune(p.Label)[0]
		}
		grid[row][x] = mark
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (y: %.4g..%.4g)\n", ylabel, minY, maxY)
	for _, row := range grid {
		sb.WriteString("|")
		sb.WriteString(string(row))
		sb.WriteString("\n")
	}
	sb.WriteString("+")
	sb.WriteString(strings.Repeat("-", w))
	sb.WriteString("\n")
	fmt.Fprintf(&sb, " %s (x: %.4g..%.4g)\n", xlabel, minX, maxX)
	return sb.String()
}

// Series renders a y-over-x line as an ASCII strip chart of height h.
func Series(xs, ys []float64, w, h int, title string) string {
	if len(xs) == 0 || len(xs) != len(ys) || w < 8 || h < 3 {
		return "(no data)\n"
	}
	// Downsample to w columns by averaging buckets.
	cols := make([]float64, w)
	counts := make([]int, w)
	minX, maxX := xs[0], xs[0]
	for _, x := range xs {
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	for i, x := range xs {
		c := int(float64(w-1) * (x - minX) / (maxX - minX))
		cols[c] += ys[i]
		counts[c]++
	}
	minY, maxY := math.Inf(1), math.Inf(-1)
	for i := range cols {
		if counts[i] > 0 {
			cols[i] /= float64(counts[i])
			minY = math.Min(minY, cols[i])
			maxY = math.Max(maxY, cols[i])
		}
	}
	if math.IsInf(minY, 1) {
		return "(no data)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, h)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", w))
	}
	for c := 0; c < w; c++ {
		if counts[c] == 0 {
			continue
		}
		y := int(float64(h-1) * (cols[c] - minY) / (maxY - minY))
		grid[h-1-y][c] = '#'
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%.4g..%.4g)\n", title, minY, maxY)
	for _, row := range grid {
		sb.WriteString("|")
		sb.WriteString(string(row))
		sb.WriteString("\n")
	}
	sb.WriteString("+")
	sb.WriteString(strings.Repeat("-", w))
	sb.WriteString("\n")
	return sb.String()
}

package tablefmt

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "time (s)", "energy (J)")
	tb.Row("freqmine", 2.9012, 10.43)
	tb.Row("streamcluster", 0.48, 0.69)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(out, "freqmine") || !strings.Contains(out, "streamcluster") {
		t.Error("rows missing")
	}
	// Columns aligned: the second column starts at the same offset.
	idx1 := strings.Index(lines[2], "2.901")
	idx2 := strings.Index(lines[3], "0.48")
	if idx1 != idx2 {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("v")
	tb.Row(0.0)
	tb.Row(123456.0)
	tb.Row(0.000012)
	out := tb.String()
	foundZero := false
	for _, line := range strings.Split(out, "\n") {
		if strings.TrimSpace(line) == "0" {
			foundZero = true
		}
	}
	if !foundZero {
		t.Errorf("zero formatting:\n%s", out)
	}
	if !strings.Contains(out, "1.23e+05") && !strings.Contains(out, "123456") {
		t.Errorf("large float formatting:\n%s", out)
	}
}

func TestScatterPlacesExtremes(t *testing.T) {
	pts := []Point{
		{X: 0, Y: 0, Label: "a"},
		{X: 10, Y: 5, Label: "b"},
		{X: 5, Y: 2.5},
	}
	out := Scatter(pts, 40, 10, "time", "energy")
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") || !strings.Contains(out, "*") {
		t.Errorf("markers missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// 'a' is at min x/min y -> bottom-left region; 'b' top-right.
	var aRow, bRow int
	for i, l := range lines {
		if strings.Contains(l, "a") {
			aRow = i
		}
		if strings.Contains(l, "b") {
			bRow = i
		}
	}
	if !(bRow < aRow) {
		t.Errorf("b (high y) should be above a:\n%s", out)
	}
}

func TestScatterDegenerate(t *testing.T) {
	if out := Scatter(nil, 40, 10, "x", "y"); !strings.Contains(out, "no data") {
		t.Error("empty scatter")
	}
	// Single point must not divide by zero.
	out := Scatter([]Point{{X: 1, Y: 1}}, 20, 5, "x", "y")
	if !strings.Contains(out, "*") {
		t.Errorf("single point missing:\n%s", out)
	}
}

func TestSeriesShape(t *testing.T) {
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		xs = append(xs, float64(i))
		if i >= 50 && i < 150 {
			ys = append(ys, 6) // high plateau
		} else {
			ys = append(ys, 2)
		}
	}
	out := Series(xs, ys, 60, 8, "power (W)")
	if !strings.Contains(out, "#") {
		t.Fatalf("no marks:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// The top row should contain marks only in the middle section.
	top := lines[1]
	if !strings.Contains(top, "#") {
		t.Errorf("plateau not at top:\n%s", out)
	}
	if strings.HasPrefix(strings.TrimPrefix(top, "|"), "#") {
		t.Errorf("plateau should not start at column 0:\n%s", out)
	}
}

func TestSeriesDegenerate(t *testing.T) {
	if out := Series(nil, nil, 40, 6, "t"); !strings.Contains(out, "no data") {
		t.Error("empty series accepted")
	}
	if out := Series([]float64{1}, []float64{2, 3}, 40, 6, "t"); !strings.Contains(out, "no data") {
		t.Error("mismatched series accepted")
	}
}

package experiments

import (
	"strings"
	"testing"

	"astro/internal/stats"
)

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trace study is slow")
	}
	r, err := Fig9(Small)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := []string{"4L4B", "1L0B", "Oracle(E)", "Oracle(T)", "Astro", "Hipster", "Octopus-Man", "Random"}
	if len(r.Rows) != len(wantRows) {
		t.Fatalf("%d rows, want %d", len(r.Rows), len(wantRows))
	}
	for _, name := range wantRows {
		row := r.Row(name)
		if row == nil {
			t.Fatalf("missing strategy %s", name)
		}
		if row.TimeS <= 0 || row.EnergyJ <= 0 {
			t.Errorf("%s: degenerate row %+v", name, row)
		}
	}
	ot, oe := r.Row("Oracle(T)"), r.Row("Oracle(E)")
	astro, slow := r.Row("Astro"), r.Row("1L0B")
	rnd := r.Row("Random")
	// Oracle(T) must be the fastest strategy (small numeric slack).
	for _, row := range r.Rows {
		if row.TimeS < ot.TimeS*0.999 {
			t.Errorf("%s (%.6fs) beat Oracle(T) (%.6fs)", row.Strategy, row.TimeS, ot.TimeS)
		}
	}
	// Oracle(E) must use the least energy.
	for _, row := range r.Rows {
		if row.EnergyJ < oe.EnergyJ*0.999 {
			t.Errorf("%s (%.6fJ) beat Oracle(E) (%.6fJ)", row.Strategy, row.EnergyJ, oe.EnergyJ)
		}
	}
	// The paper's big contrasts: 1L0B is far slower than Astro; Astro is
	// within striking distance of the time oracle and beats random.
	if !(slow.TimeS > astro.TimeS*2) {
		t.Errorf("1L0B (%.6fs) should be >2x Astro (%.6fs)", slow.TimeS, astro.TimeS)
	}
	if !(astro.TimeS <= rnd.TimeS*1.001) {
		t.Errorf("Astro (%.6fs) should not lose to Random (%.6fs)", astro.TimeS, rnd.TimeS)
	}
	if astro.TimeS > ot.TimeS*2.0 {
		t.Errorf("Astro (%.6fs) too far from Oracle(T) (%.6fs)", astro.TimeS, ot.TimeS)
	}
	out := r.Render()
	for _, want := range []string{"FIG 9", "RQ1", "RQ2", "RQ3"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("device study is slow")
	}
	r, err := Fig10(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("%d rows, want 7", len(r.Rows))
	}
	for _, row := range r.Rows {
		for _, cell := range []Fig10Cell{row.GTS, row.Static, row.Hybrid} {
			if len(cell.Times) != r.Samples {
				t.Fatalf("%s: %d samples, want %d", row.Benchmark, len(cell.Times), r.Samples)
			}
			for i := range cell.Times {
				if cell.Times[i] <= 0 || cell.Energies[i] <= 0 {
					t.Errorf("%s: degenerate sample", row.Benchmark)
				}
			}
		}
		for _, p := range []float64{row.PStatic, row.PHybrid, row.PStaticE, row.PHybridE} {
			if p < 0 || p > 1 {
				t.Errorf("%s: p-value %v out of range", row.Benchmark, p)
			}
		}
		// A flavour can lose (the paper's particlefilter static does), but
		// nothing should blow up past 4x GTS.
		g := stats.Mean(row.GTS.Times)
		if s := stats.Mean(row.Static.Times); s > g*4 {
			t.Errorf("%s: static %.6fs vs GTS %.6fs (blow-up)", row.Benchmark, s, g)
		}
		if h := stats.Mean(row.Hybrid.Times); h > g*4 {
			t.Errorf("%s: hybrid %.6fs vs GTS %.6fs (blow-up)", row.Benchmark, h, g)
		}
	}
	tw, ew := r.Wins()
	if tw < 3 {
		t.Errorf("Astro beats GTS on only %d/7 benchmarks (time):\n%s", tw, r.Render())
	}
	if ew < 4 {
		t.Errorf("Astro beats GTS on only %d/7 benchmarks (energy):\n%s", ew, r.Render())
	}
	if !strings.Contains(r.Render(), "RQ4") {
		t.Error("render missing RQ4")
	}
}

func TestHeadlineFromFig9(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	f9, err := Fig9(Small)
	if err != nil {
		t.Fatal(err)
	}
	h := MakeHeadline(f9, nil, nil)
	if h.Fixed1LVsAstroTimeX < 2 {
		t.Errorf("1L0B/Astro time ratio %v too small", h.Fixed1LVsAstroTimeX)
	}
	if !strings.Contains(h.Render(), "measured") {
		t.Error("headline render broken")
	}
}

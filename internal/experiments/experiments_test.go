package experiments

import (
	"strings"
	"testing"

	"astro/internal/features"
	"astro/internal/hw"
)

func TestFig1SmallShape(t *testing.T) {
	r, err := Fig1(Small)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"freqmine", "streamcluster"} {
		pts := r.Points[name]
		if len(pts) != 24 {
			t.Fatalf("%s: %d points, want 24", name, len(pts))
		}
		for _, p := range pts {
			if p.ClockS <= 0 || p.EnergyJ <= 0 {
				t.Errorf("%s %v: degenerate point %+v", name, p.Config, p)
			}
			if p.RelSD > 0.25 {
				t.Errorf("%s %v: rel SD %.3f too high", name, p.Config, p.RelSD)
			}
		}
	}
	// Paper's observation: freqmine's best-time config uses several cores;
	// streamcluster's does not benefit from many cores.
	if r.BestT["freqmine"].Cores() < 3 {
		t.Errorf("freqmine best-time config %v should use several cores", r.BestT["freqmine"])
	}
	if r.BestT["streamcluster"].Cores() > 2 {
		t.Errorf("streamcluster best-time config %v should use few cores", r.BestT["streamcluster"])
	}
	// Best energy differs from best time for at least one benchmark
	// (the energy/time trade-off of Fig. 1).
	if r.BestT["freqmine"] == r.BestE["freqmine"] && r.BestT["streamcluster"] == r.BestE["streamcluster"] {
		t.Error("no energy/time trade-off found in either benchmark")
	}
	if !strings.Contains(r.Render(), "best time") {
		t.Error("render missing summary")
	}
}

func TestFig3PowerPhases(t *testing.T) {
	r, err := Fig3(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series.Samples) < 50 {
		t.Fatalf("only %d power samples", len(r.Series.Samples))
	}
	if len(r.Segments) < 3 {
		t.Fatalf("only %d phase segments: %+v", len(r.Segments), r.Segments)
	}
	min, max := r.PhaseRange()
	if !(max > min*1.1) {
		t.Errorf("phase power range [%v, %v] too flat", min, max)
	}
	// The zoom must show big drawing clearly more than LITTLE (Fig. 3b).
	if !(r.BigWatts > r.LittleWatts*1.2) {
		t.Errorf("big %.3fW vs LITTLE %.3fW: no gap", r.BigWatts, r.LittleWatts)
	}
	out := r.Render()
	for _, want := range []string{"FIG 3", "segment", "zoom"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig4NoSingleWinner(t *testing.T) {
	r, err := Fig4(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("%d rows, want 7", len(r.Rows))
	}
	plat := hw.OdroidXU4()
	for _, row := range r.Rows {
		if !row.Best1.Valid(plat.MaxLittle(), plat.MaxBig()) || !row.Best5.Valid(plat.MaxLittle(), plat.MaxBig()) {
			t.Errorf("%s: invalid best configs %v/%v", row.Benchmark, row.Best1, row.Best5)
		}
		if row.FastestS <= 0 {
			t.Errorf("%s: degenerate fastest time", row.Benchmark)
		}
	}
	if r.DistinctBest5() < 2 {
		t.Errorf("single winner across all applications contradicts the paper's observation:\n%s", r.Render())
	}
}

func TestFig6Mapping(t *testing.T) {
	r, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if r.Cells != 36 {
		t.Fatalf("cells = %d, want 36", r.Cells)
	}
	byName := map[string]Fig6Row{}
	for _, row := range r.Rows {
		byName[row.Function] = row
		if row.CellID < 0 || row.CellID >= 36 {
			t.Errorf("%s: cell id %d out of range", row.Function, row.CellID)
		}
	}
	mul := byName["mul_matrix"]
	if mul.Nesting != 3 {
		t.Errorf("mul_matrix nesting = %d, want 3", mul.Nesting)
	}
	if mul.Phase != features.PhaseCPUBound {
		t.Errorf("mul_matrix phase = %v", mul.Phase)
	}
	read := byName["read_matrix_a"]
	if read.IOWeight < 10 {
		t.Errorf("read_matrix_a IO weight = %v, want >= 10 (I/O in a loop)", read.IOWeight)
	}
	if read.Phase != features.PhaseIOBound {
		t.Errorf("read_matrix_a phase = %v", read.Phase)
	}
	// Functions must not all land in one cell.
	cells := map[int]bool{}
	for _, row := range r.Rows {
		cells[row.CellID] = true
	}
	if len(cells) < 2 {
		t.Error("all functions in one feature cell")
	}
}

func TestFig11Shape(t *testing.T) {
	r, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Reports) != 8 {
		t.Fatalf("%d reports, want 8", len(r.Reports))
	}
	for _, rep := range r.Reports {
		if !(rep.Original < rep.Learning && rep.Learning < rep.Instrumented) {
			t.Errorf("%s: sizes not increasing: %+v", rep.Name, rep)
		}
	}
	if !strings.Contains(r.Render(), "FIG 11") {
		t.Error("render broken")
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 14 {
		t.Fatalf("%d rows, want 14", len(rows))
	}
	last := rows[len(rows)-1]
	if !strings.Contains(last.Work, "Astro") || !last.Learn || !last.Runtime || !last.Auto || !last.Source {
		t.Errorf("Astro row wrong: %+v", last)
	}
	// Astro must be the only hybrid learner (the paper's differentiator).
	for _, r := range rows[:len(rows)-1] {
		if r.Learn && strings.Contains(r.Level, "C") && strings.Contains(r.Level, "O") {
			t.Errorf("%s also a hybrid learner, contradicting the taxonomy", r.Work)
		}
	}
	if !strings.Contains(RenderTable1(), "TABLE 1") {
		t.Error("render broken")
	}
}

func TestHeadlineRender(t *testing.T) {
	f11, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	h := MakeHeadline(nil, nil, f11)
	out := h.Render()
	for _, want := range []string{"RQ1", "RQ2", "RQ3", "RQ4", "RQ5"} {
		if !strings.Contains(out, want) {
			t.Errorf("headline missing %s", want)
		}
	}
	if h.MeanLearningGrowthPct <= 0 {
		t.Errorf("learning growth = %v", h.MeanLearningGrowthPct)
	}
}

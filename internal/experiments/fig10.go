package experiments

import (
	"fmt"
	"strings"
	"sync"

	"astro/internal/campaign"
	"astro/internal/hw"
	"astro/internal/ir"
	"astro/internal/rl"
	"astro/internal/sched"
	"astro/internal/sim"
	"astro/internal/stats"
	"astro/internal/tablefmt"
)

// Fig10Cell is one (benchmark, treatment) sample set.
type Fig10Cell struct {
	Times    []float64
	Energies []float64
}

// Fig10Row is one benchmark's three-way comparison.
type Fig10Row struct {
	Benchmark string
	GTS       Fig10Cell
	Static    Fig10Cell
	Hybrid    Fig10Cell

	// Two-sided Mann-Whitney p-values against GTS, on runtimes (as the
	// paper annotates its boxplots).
	PStatic float64
	PHybrid float64
	// Energy p-values.
	PStaticE float64
	PHybridE float64
}

// Fig10Result reproduces Fig. 10 (Sec. 4.2): GTS vs Astro-static vs
// Astro-hybrid on the device benchmarks, n samples each, with p-values.
type Fig10Result struct {
	Scale   Scale
	Samples int
	Rows    []Fig10Row
}

// fig10Benchmarks mirrors the paper's device-experiment set.
var fig10Benchmarks = []string{
	"hotspot3d", "cfd", "hotspot", "sradv2", "particlefilter", "bfs", "swaptions",
}

// Training hyperparameters for Fig. 10's per-benchmark agent. The hybrid
// treatment's cache key is derived from these same constants, so changing
// them automatically invalidates cached hybrid results.
const (
	fig10DQNSeed   = 301
	fig10LR        = 0.05
	fig10TrainSeed = 41
)

// Fig10 trains Astro per benchmark, extracts the static policy, and runs
// the three treatments with per-sample seeds. Each benchmark's pipeline
// (train, then sample) is independent and internally deterministic, so the
// benchmarks run concurrently up to the configured pool width, with rows
// assembled in benchmark order; the per-treatment sample sets go through
// the campaign pool as job batches.
func Fig10(sc Scale) (*Fig10Result, error) {
	n := samplesFor(sc)
	out := &Fig10Result{Scale: sc, Samples: n}
	rows := make([]*Fig10Row, len(fig10Benchmarks))
	errs := make([]error, len(fig10Benchmarks))
	sem := make(chan struct{}, Workers())
	var wg sync.WaitGroup
	for i, name := range fig10Benchmarks {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i], errs[i] = fig10One(hw.OdroidXU4(), name, sc, n)
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fig10: %s: %w", fig10Benchmarks[i], err)
		}
	}
	for _, row := range rows {
		out.Rows = append(out.Rows, *row)
	}
	return out, nil
}

func fig10One(plat *hw.Platform, name string, sc Scale, n int) (*Fig10Row, error) {
	art, err := prepare(name)
	if err != nil {
		return nil, err
	}
	args := argsFor(sc, art.spec)

	// Train the Q-learner on the learning-instrumented binary, with finer
	// checkpoints than evaluation so each episode yields more updates.
	agent := rl.NewDQN(plat.NumConfigs(), rl.DQNConfig{Seed: fig10DQNSeed, LR: fig10LR})
	act := sched.NewAstro(agent, plat, true)
	base := simOpts(sc, 0)
	base.OS = sched.NewGTS()
	base.CheckpointS /= 2
	if _, err := sched.Train(art.learning, plat, act, sched.TrainOptions{
		Episodes: episodesFor(sc),
		Seed:     fig10TrainSeed,
		Args:     args,
		SimOpts:  base,
	}); err != nil {
		return nil, err
	}
	pol := sched.ExtractPolicyVisited(agent, plat, act.Visits())
	staticMod, err := art.static(plat, pol)
	if err != nil {
		return nil, err
	}

	row := &Fig10Row{Benchmark: name}
	// The three treatments x n samples are one campaign batch. GTS and
	// static runs are plain cacheable jobs (the static policy is imprinted
	// in the module, so the module hash carries it). Hybrid runs consult the
	// trained agent at runtime: the agent lives outside the module, so its
	// identity is spelled out in HybridKey (it is a pure function of the
	// training inputs listed there), and the jobs share an Exclusive tag
	// because DQN inference reuses scratch buffers that must not be raced.
	hybridKey := fmt.Sprintf("fig10-hybrid:%s:%s:ep%d:dqn%d:lr%g:train%d:pol=%v",
		name, sc, episodesFor(sc), fig10DQNSeed, fig10LR, fig10TrainSeed, pol.PerPhase)
	var jobs []*campaign.Job
	addJobs := func(kind string, mod *ir.Module, hybrid bool) {
		for s := 0; s < n; s++ {
			j := &campaign.Job{
				Index:     len(jobs),
				Label:     fmt.Sprintf("fig10/%s/%s/sample%d", name, kind, s),
				Benchmark: name,
				Module:    mod,
				OS:        "gts",
				Seed:      int64(9000 + 97*s),
				Args:      args,
				Opts:      simOpts(sc, 0),
			}
			if hybrid {
				j.Hybrid = func() sim.HybridPolicy {
					hr := sched.NewHybridRuntime(agent, plat)
					hr.Policy = pol
					return hr
				}
				j.HybridKey = hybridKey
				j.Exclusive = "fig10-hybrid/" + name
			}
			jobs = append(jobs, j)
		}
	}
	addJobs("gts", art.plain, false)
	addJobs("static", staticMod, false)
	addJobs("hybrid", art.hybrid, true)
	// Serial within a benchmark: Fig10 already parallelizes across
	// benchmarks, so a nested parallel batch would oversubscribe to
	// Workers^2 concurrent simulations.
	results, err := runBatchSerial(jobs)
	if err != nil {
		return nil, err
	}
	cellOf := func(start int) Fig10Cell {
		var cell Fig10Cell
		for s := 0; s < n; s++ {
			res := results[start+s]
			cell.Times = append(cell.Times, res.TimeS)
			cell.Energies = append(cell.Energies, res.EnergyJ)
		}
		return cell
	}
	row.GTS, row.Static, row.Hybrid = cellOf(0), cellOf(n), cellOf(2*n)

	_, row.PStatic = stats.MannWhitneyU(row.Static.Times, row.GTS.Times)
	_, row.PHybrid = stats.MannWhitneyU(row.Hybrid.Times, row.GTS.Times)
	_, row.PStaticE = stats.MannWhitneyU(row.Static.Energies, row.GTS.Energies)
	_, row.PHybridE = stats.MannWhitneyU(row.Hybrid.Energies, row.GTS.Energies)
	return row, nil
}

// Wins counts the benchmarks where each Astro flavour beats GTS on mean
// runtime and on mean energy.
func (r *Fig10Result) Wins() (timeWins, energyWins int) {
	for _, row := range r.Rows {
		g := stats.Mean(row.GTS.Times)
		if stats.Mean(row.Static.Times) < g || stats.Mean(row.Hybrid.Times) < g {
			timeWins++
		}
		ge := stats.Mean(row.GTS.Energies)
		if stats.Mean(row.Static.Energies) < ge || stats.Mean(row.Hybrid.Energies) < ge {
			energyWins++
		}
	}
	return
}

// Render formats the comparison.
func (r *Fig10Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FIG 10 — GTS vs Astro static (S) vs hybrid (H), %d samples (%s scale)\n\n", r.Samples, r.Scale)
	tb := tablefmt.NewTable("benchmark", "GTS time", "S time", "H time", "p(S)", "p(H)",
		"GTS J", "S J", "H J", "pE(S)", "pE(H)")
	for _, row := range r.Rows {
		tb.Row(row.Benchmark,
			stats.Mean(row.GTS.Times), stats.Mean(row.Static.Times), stats.Mean(row.Hybrid.Times),
			row.PStatic, row.PHybrid,
			stats.Mean(row.GTS.Energies), stats.Mean(row.Static.Energies), stats.Mean(row.Hybrid.Energies),
			row.PStaticE, row.PHybridE)
	}
	sb.WriteString(tb.String())
	tw, ew := r.Wins()
	fmt.Fprintf(&sb, "\nRQ4: Astro (static or hybrid) faster than GTS on %d/%d benchmarks; more energy-efficient on %d/%d\n",
		tw, len(r.Rows), ew, len(r.Rows))
	return sb.String()
}

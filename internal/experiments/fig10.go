package experiments

import (
	"fmt"
	"strings"

	"astro/internal/hw"
	"astro/internal/rl"
	"astro/internal/sched"
	"astro/internal/sim"
	"astro/internal/stats"
	"astro/internal/tablefmt"
)

// Fig10Cell is one (benchmark, treatment) sample set.
type Fig10Cell struct {
	Times    []float64
	Energies []float64
}

// Fig10Row is one benchmark's three-way comparison.
type Fig10Row struct {
	Benchmark string
	GTS       Fig10Cell
	Static    Fig10Cell
	Hybrid    Fig10Cell

	// Two-sided Mann-Whitney p-values against GTS, on runtimes (as the
	// paper annotates its boxplots).
	PStatic float64
	PHybrid float64
	// Energy p-values.
	PStaticE float64
	PHybridE float64
}

// Fig10Result reproduces Fig. 10 (Sec. 4.2): GTS vs Astro-static vs
// Astro-hybrid on the device benchmarks, n samples each, with p-values.
type Fig10Result struct {
	Scale   Scale
	Samples int
	Rows    []Fig10Row
}

// fig10Benchmarks mirrors the paper's device-experiment set.
var fig10Benchmarks = []string{
	"hotspot3d", "cfd", "hotspot", "sradv2", "particlefilter", "bfs", "swaptions",
}

// Fig10 trains Astro per benchmark, extracts the static policy, and runs
// the three treatments with per-sample seeds.
func Fig10(sc Scale) (*Fig10Result, error) {
	plat := hw.OdroidXU4()
	n := samplesFor(sc)
	out := &Fig10Result{Scale: sc, Samples: n}
	for _, name := range fig10Benchmarks {
		row, err := fig10One(plat, name, sc, n)
		if err != nil {
			return nil, fmt.Errorf("fig10: %s: %w", name, err)
		}
		out.Rows = append(out.Rows, *row)
	}
	return out, nil
}

func fig10One(plat *hw.Platform, name string, sc Scale, n int) (*Fig10Row, error) {
	art, err := prepare(name)
	if err != nil {
		return nil, err
	}
	args := argsFor(sc, art.spec)

	// Train the Q-learner on the learning-instrumented binary, with finer
	// checkpoints than evaluation so each episode yields more updates.
	agent := rl.NewDQN(plat.NumConfigs(), rl.DQNConfig{Seed: 301, LR: 0.05})
	act := sched.NewAstro(agent, plat, true)
	base := simOpts(sc, 0)
	base.OS = sched.NewGTS()
	base.CheckpointS /= 2
	if _, err := sched.Train(art.learning, plat, act, sched.TrainOptions{
		Episodes: episodesFor(sc),
		Seed:     41,
		Args:     args,
		SimOpts:  base,
	}); err != nil {
		return nil, err
	}
	pol := sched.ExtractPolicyVisited(agent, plat, act.Visits())
	staticMod, err := art.static(plat, pol)
	if err != nil {
		return nil, err
	}

	row := &Fig10Row{Benchmark: name}
	sample := func(build func(seed int64) (*sim.Machine, error)) (Fig10Cell, error) {
		var cell Fig10Cell
		for s := 0; s < n; s++ {
			m, err := build(int64(9000 + 97*s))
			if err != nil {
				return cell, err
			}
			res, err := m.Run()
			if err != nil {
				return cell, err
			}
			cell.Times = append(cell.Times, res.TimeS)
			cell.Energies = append(cell.Energies, res.EnergyJ)
		}
		return cell, nil
	}

	// GTS baseline: all cores on, ARM's scheduler, no actuation.
	if row.GTS, err = sample(func(seed int64) (*sim.Machine, error) {
		o := simOpts(sc, seed)
		o.Args = args
		o.OS = sched.NewGTS()
		return sim.New(art.plain, plat, o)
	}); err != nil {
		return nil, err
	}
	// Astro static: trained policy imprinted in the binary.
	if row.Static, err = sample(func(seed int64) (*sim.Machine, error) {
		o := simOpts(sc, seed)
		o.Args = args
		o.OS = sched.NewGTS()
		return sim.New(staticMod, plat, o)
	}); err != nil {
		return nil, err
	}
	// Astro hybrid: determine-configuration calls consult the trained agent
	// with the latest hardware phase.
	if row.Hybrid, err = sample(func(seed int64) (*sim.Machine, error) {
		o := simOpts(sc, seed)
		o.Args = args
		o.OS = sched.NewGTS()
		hr := sched.NewHybridRuntime(agent, plat)
		hr.Policy = pol
		o.Hybrid = hr
		return sim.New(art.hybrid, plat, o)
	}); err != nil {
		return nil, err
	}

	_, row.PStatic = stats.MannWhitneyU(row.Static.Times, row.GTS.Times)
	_, row.PHybrid = stats.MannWhitneyU(row.Hybrid.Times, row.GTS.Times)
	_, row.PStaticE = stats.MannWhitneyU(row.Static.Energies, row.GTS.Energies)
	_, row.PHybridE = stats.MannWhitneyU(row.Hybrid.Energies, row.GTS.Energies)
	return row, nil
}

// Wins counts the benchmarks where each Astro flavour beats GTS on mean
// runtime and on mean energy.
func (r *Fig10Result) Wins() (timeWins, energyWins int) {
	for _, row := range r.Rows {
		g := stats.Mean(row.GTS.Times)
		if stats.Mean(row.Static.Times) < g || stats.Mean(row.Hybrid.Times) < g {
			timeWins++
		}
		ge := stats.Mean(row.GTS.Energies)
		if stats.Mean(row.Static.Energies) < ge || stats.Mean(row.Hybrid.Energies) < ge {
			energyWins++
		}
	}
	return
}

// Render formats the comparison.
func (r *Fig10Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FIG 10 — GTS vs Astro static (S) vs hybrid (H), %d samples (%s scale)\n\n", r.Samples, r.Scale)
	tb := tablefmt.NewTable("benchmark", "GTS time", "S time", "H time", "p(S)", "p(H)",
		"GTS J", "S J", "H J", "pE(S)", "pE(H)")
	for _, row := range r.Rows {
		tb.Row(row.Benchmark,
			stats.Mean(row.GTS.Times), stats.Mean(row.Static.Times), stats.Mean(row.Hybrid.Times),
			row.PStatic, row.PHybrid,
			stats.Mean(row.GTS.Energies), stats.Mean(row.Static.Energies), stats.Mean(row.Hybrid.Energies),
			row.PStaticE, row.PHybridE)
	}
	sb.WriteString(tb.String())
	tw, ew := r.Wins()
	fmt.Fprintf(&sb, "\nRQ4: Astro (static or hybrid) faster than GTS on %d/%d benchmarks; more energy-efficient on %d/%d\n",
		tw, len(r.Rows), ew, len(r.Rows))
	return sb.String()
}

package experiments

import (
	"fmt"
	"strings"

	"astro/internal/campaign"
	"astro/internal/hw"
	"astro/internal/ir"
	"astro/internal/rl"
	"astro/internal/sched"
	"astro/internal/sim"
	"astro/internal/stats"
	"astro/internal/tablefmt"
)

// Fig10Cell is one (benchmark, treatment) sample set.
type Fig10Cell struct {
	Times    []float64
	Energies []float64
}

// Fig10Row is one benchmark's three-way comparison.
type Fig10Row struct {
	Benchmark string
	GTS       Fig10Cell
	Static    Fig10Cell
	Hybrid    Fig10Cell

	// Two-sided Mann-Whitney p-values against GTS, on runtimes (as the
	// paper annotates its boxplots).
	PStatic float64
	PHybrid float64
	// Energy p-values.
	PStaticE float64
	PHybridE float64
}

// Fig10Result reproduces Fig. 10 (Sec. 4.2): GTS vs Astro-static vs
// Astro-hybrid on the device benchmarks, n samples each, with p-values.
type Fig10Result struct {
	Scale   Scale
	Samples int
	Rows    []Fig10Row
}

// fig10Benchmarks mirrors the paper's device-experiment set.
var fig10Benchmarks = []string{
	"hotspot3d", "cfd", "hotspot", "sradv2", "particlefilter", "bfs", "swaptions",
}

// Training hyperparameters for Fig. 10's per-benchmark agent. The hybrid
// treatment's cache key is derived from these same constants, so changing
// them automatically invalidates cached hybrid results.
const (
	fig10DQNSeed   = 301
	fig10LR        = 0.05
	fig10TrainSeed = 41
)

// Fig10 trains Astro per benchmark, extracts the static policy, and runs
// the three treatments with per-sample seeds. The pipeline has two phases,
// both scaled by the configured pool width:
//
//  1. Training: every (benchmark, hyper-parameter) cell is independent, so
//     the cells train concurrently through the configured Trainer — the
//     in-process pool, or training leases to a worker fleet under a remote
//     runner — and each trained agent is content-addressed in the shared
//     store: a warm-cache re-run restores the agents instead of
//     re-training (the former ~30s residual of a warm paper suite).
//  2. Sampling: the 7 benchmarks x 3 treatments x n samples form one
//     campaign batch on the shared runner. Hybrid jobs are declarative —
//     they name their trained agent by snapshot content key (AgentKey), so
//     they are cacheable, wireable to remote workers, and free of the
//     Exclusive serialization the old in-process factory form needed.
func Fig10(sc Scale) (*Fig10Result, error) {
	n := samplesFor(sc)
	plat := hw.OdroidXU4()
	out := &Fig10Result{Scale: sc, Samples: n}

	arts := make([]*learningArtifacts, len(fig10Benchmarks))
	specs := make([]*campaign.TrainSpec, len(fig10Benchmarks))
	for i, name := range fig10Benchmarks {
		art, err := prepare(name)
		if err != nil {
			return nil, fmt.Errorf("fig10: %s: %w", name, err)
		}
		arts[i] = art
		// Train with finer checkpoints than evaluation so each episode
		// yields more updates.
		base := simOpts(sc, 0)
		base.CheckpointS /= 2
		specs[i] = &campaign.TrainSpec{
			Label:    "fig10/train/" + name,
			Module:   art.learning,
			OS:       "gts",
			Agent:    "dqn",
			DQN:      rl.DQNConfig{Seed: fig10DQNSeed, LR: fig10LR},
			Episodes: episodesFor(sc),
			Seed:     fig10TrainSeed,
			Args:     argsFor(sc, art.spec),
			Opts:     base,
		}
	}
	trained, err := trainBatch(specs)
	if err != nil {
		return nil, fmt.Errorf("fig10: %w", err)
	}

	var jobs []*campaign.Job
	starts := make([]int, len(fig10Benchmarks))
	for i, name := range fig10Benchmarks {
		art := arts[i]
		agent := trained[i].Agent
		args := argsFor(sc, art.spec)
		pol := sched.ExtractPolicyVisited(agent, plat, trained[i].Visits)
		staticMod, err := art.static(plat, pol)
		if err != nil {
			return nil, fmt.Errorf("fig10: %s: %w", name, err)
		}
		// GTS and static runs are plain cacheable jobs (the static policy is
		// imprinted in the module, so the module hash carries it). Hybrid
		// runs consult the trained agent at runtime: the agent lives outside
		// the module, so the job names it declaratively by its snapshot
		// content key — the executing process (this one, or a remote worker
		// that leased the cell) restores the snapshot and rebuilds the
		// hybrid runtime from it, bit-identically.
		agentKey, err := specs[i].Key()
		if err != nil {
			return nil, fmt.Errorf("fig10: %s: %w", name, err)
		}
		// The declarative form needs the snapshot in the store. TrainCell's
		// cache fill is best-effort (a full disk must not fail training), so
		// if the bytes are missing, fall back to the in-process factory
		// around the live agent — under the *same* content key ("agent:" +
		// snapshot key is exactly what an agent-keyed job hashes), so the
		// degraded run stays cacheable and byte-identical, it merely cannot
		// lease its hybrid cells out.
		_, haveSnapshot := Store().Get(agentKey)
		starts[i] = len(jobs)
		addJobs := func(kind string, mod *ir.Module, hybrid bool) {
			for s := 0; s < n; s++ {
				j := &campaign.Job{
					Index:     len(jobs),
					Label:     fmt.Sprintf("fig10/%s/%s/sample%d", name, kind, s),
					Benchmark: name,
					Module:    mod,
					OS:        "gts",
					Seed:      int64(9000 + 97*s),
					Args:      args,
					Opts:      simOpts(sc, 0),
				}
				if hybrid {
					if haveSnapshot {
						j.AgentKey = agentKey
						j.Agents = Store()
					} else {
						j.Hybrid = func() sim.HybridPolicy {
							hr := sched.NewHybridRuntime(agent, plat)
							hr.Policy = pol
							return hr
						}
						j.HybridKey = "agent:" + agentKey
						// The shared live agent reuses inference scratch;
						// serialize its samples (restored snapshots need no
						// such tag — each execution gets a private agent).
						j.Exclusive = "fig10-hybrid/" + name
					}
				}
				jobs = append(jobs, j)
			}
		}
		addJobs("gts", art.plain, false)
		addJobs("static", staticMod, false)
		addJobs("hybrid", art.hybrid, true)
	}
	results, err := runBatch(jobs)
	if err != nil {
		return nil, fmt.Errorf("fig10: %w", err)
	}

	for i, name := range fig10Benchmarks {
		row := Fig10Row{Benchmark: name}
		cellOf := func(start int) Fig10Cell {
			var cell Fig10Cell
			for s := 0; s < n; s++ {
				res := results[start+s]
				cell.Times = append(cell.Times, res.TimeS)
				cell.Energies = append(cell.Energies, res.EnergyJ)
			}
			return cell
		}
		row.GTS, row.Static, row.Hybrid = cellOf(starts[i]), cellOf(starts[i]+n), cellOf(starts[i]+2*n)
		_, row.PStatic = stats.MannWhitneyU(row.Static.Times, row.GTS.Times)
		_, row.PHybrid = stats.MannWhitneyU(row.Hybrid.Times, row.GTS.Times)
		_, row.PStaticE = stats.MannWhitneyU(row.Static.Energies, row.GTS.Energies)
		_, row.PHybridE = stats.MannWhitneyU(row.Hybrid.Energies, row.GTS.Energies)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Wins counts the benchmarks where each Astro flavour beats GTS on mean
// runtime and on mean energy.
func (r *Fig10Result) Wins() (timeWins, energyWins int) {
	for _, row := range r.Rows {
		g := stats.Mean(row.GTS.Times)
		if stats.Mean(row.Static.Times) < g || stats.Mean(row.Hybrid.Times) < g {
			timeWins++
		}
		ge := stats.Mean(row.GTS.Energies)
		if stats.Mean(row.Static.Energies) < ge || stats.Mean(row.Hybrid.Energies) < ge {
			energyWins++
		}
	}
	return
}

// Render formats the comparison.
func (r *Fig10Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FIG 10 — GTS vs Astro static (S) vs hybrid (H), %d samples (%s scale)\n\n", r.Samples, r.Scale)
	tb := tablefmt.NewTable("benchmark", "GTS time", "S time", "H time", "p(S)", "p(H)",
		"GTS J", "S J", "H J", "pE(S)", "pE(H)")
	for _, row := range r.Rows {
		tb.Row(row.Benchmark,
			stats.Mean(row.GTS.Times), stats.Mean(row.Static.Times), stats.Mean(row.Hybrid.Times),
			row.PStatic, row.PHybrid,
			stats.Mean(row.GTS.Energies), stats.Mean(row.Static.Energies), stats.Mean(row.Hybrid.Energies),
			row.PStaticE, row.PHybridE)
	}
	sb.WriteString(tb.String())
	tw, ew := r.Wins()
	fmt.Fprintf(&sb, "\nRQ4: Astro (static or hybrid) faster than GTS on %d/%d benchmarks; more energy-efficient on %d/%d\n",
		tw, len(r.Rows), ew, len(r.Rows))
	return sb.String()
}

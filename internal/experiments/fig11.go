package experiments

import (
	"fmt"
	"strings"

	"astro/internal/features"
	"astro/internal/hw"
	"astro/internal/instrument"
	"astro/internal/tablefmt"
)

// Fig11Result reproduces Fig. 11: binary sizes of the original, learning
// and final instrumented versions of each benchmark.
type Fig11Result struct {
	Reports []instrument.SizeReport
}

// fig11Benchmarks mirrors the paper's set.
var fig11Benchmarks = []string{
	"hotspot3d", "cfd", "hotspot", "particlefilter", "swaptions", "bfs", "fluidanimate", "sradv2",
}

// Fig11 computes the size reports (purely static).
func Fig11() (*Fig11Result, error) {
	plat := hw.OdroidXU4()
	out := &Fig11Result{}
	for _, name := range fig11Benchmarks {
		mod, _, err := compileBench(name)
		if err != nil {
			return nil, err
		}
		mi := features.AnalyzeModule(mod, features.Options{})
		rep, err := instrument.Sizes(mod, mi, plat)
		if err != nil {
			return nil, fmt.Errorf("fig11: %s: %w", name, err)
		}
		out.Reports = append(out.Reports, rep)
	}
	return out, nil
}

// Render formats the size table.
func (r *Fig11Result) Render() string {
	var sb strings.Builder
	sb.WriteString("FIG 11 — Code size (bytes): original vs learning vs instrumented (incl. runtime lib)\n\n")
	tb := tablefmt.NewTable("benchmark", "original", "learning", "instrumented", "learning growth", "lib share")
	for _, rep := range r.Reports {
		growth := fmt.Sprintf("%.1f%%", 100*float64(rep.Learning-rep.Original)/float64(rep.Original))
		libShare := fmt.Sprintf("%.0f%%", 100*float64(instrument.RuntimeLibBytes)/float64(rep.Instrumented-rep.Original))
		tb.Row(rep.Name, rep.Original, rep.Learning, rep.Instrumented, growth, libShare)
	}
	sb.WriteString(tb.String())
	sb.WriteString("\nThe runtime library dominates the size increase and is constant across benchmarks;\n")
	sb.WriteString("instrumentation itself grows binaries by a few percent (as in the paper).\n")
	return sb.String()
}

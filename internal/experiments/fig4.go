package experiments

import (
	"fmt"
	"strings"

	"astro/internal/campaign"
	"astro/internal/hw"
	"astro/internal/tablefmt"
)

// Fig4Row is one application's best configurations under slowdown budgets.
type Fig4Row struct {
	Benchmark string
	Fastest   hw.Config
	FastestS  float64
	Best1     hw.Config // min energy within 1% slowdown of fastest
	Best5     hw.Config // min energy within 5% slowdown
}

// Fig4Result reproduces Fig. 4: for seven PARSEC applications, the
// configuration that minimizes energy subject to a 1% / 5% slowdown bound
// relative to the fastest configuration. The paper's point — there is no
// single winner — shows up as distinct configurations per application.
type Fig4Result struct {
	Scale Scale
	Rows  []Fig4Row
}

// fig4Benchmarks mirrors the applications in the paper's figure.
var fig4Benchmarks = []string{
	"blackscholes", "bodytrack", "facesim", "ferret", "streamcluster", "vips", "freqmine",
}

// Fig4 runs the sweep: the 7 x 24 (benchmark x configuration) grid is one
// campaign batch executed on the shared pool.
func Fig4(sc Scale) (*Fig4Result, error) {
	plat := hw.OdroidXU4()
	out := &Fig4Result{Scale: sc}
	configs := plat.Configs()
	var jobs []*campaign.Job
	for _, name := range fig4Benchmarks {
		mod, spec, err := compileBench(name)
		if err != nil {
			return nil, err
		}
		for _, cfg := range configs {
			jobs = append(jobs, &campaign.Job{
				Index:     len(jobs),
				Label:     fmt.Sprintf("fig4/%s/%v", name, cfg),
				Benchmark: name,
				Module:    mod,
				Config:    cfg,
				Seed:      17,
				Args:      argsFor(sc, spec),
				Opts:      simOpts(sc, 0),
			})
		}
	}
	results, err := runBatch(jobs)
	if err != nil {
		return nil, fmt.Errorf("fig4: %w", err)
	}
	for bi, name := range fig4Benchmarks {
		type pt struct {
			cfg  hw.Config
			time float64
			en   float64
		}
		var pts []pt
		for ci, cfg := range configs {
			res := results[bi*len(configs)+ci]
			pts = append(pts, pt{cfg, res.TimeS, res.EnergyJ})
		}
		fastest := pts[0]
		for _, p := range pts[1:] {
			if p.time < fastest.time {
				fastest = p
			}
		}
		pick := func(slack float64) hw.Config {
			best := fastest
			for _, p := range pts {
				if p.time <= fastest.time*(1+slack) && p.en < best.en {
					best = p
				}
			}
			return best.cfg
		}
		out.Rows = append(out.Rows, Fig4Row{
			Benchmark: name,
			Fastest:   fastest.cfg,
			FastestS:  fastest.time,
			Best1:     pick(0.01),
			Best5:     pick(0.05),
		})
	}
	return out, nil
}

// DistinctBest5 counts how many different configurations win at the 5%
// budget (the "no single winner" observation).
func (r *Fig4Result) DistinctBest5() int {
	seen := map[hw.Config]bool{}
	for _, row := range r.Rows {
		seen[row.Best5] = true
	}
	return len(seen)
}

// Render formats the result.
func (r *Fig4Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FIG 4 — Best configurations under slowdown budgets (%s scale)\n\n", r.Scale)
	tb := tablefmt.NewTable("benchmark", "fastest", "time (s)", "best @1% loss", "best @5% loss")
	for _, row := range r.Rows {
		tb.Row(row.Benchmark, row.Fastest.String(), row.FastestS, row.Best1.String(), row.Best5.String())
	}
	sb.WriteString(tb.String())
	fmt.Fprintf(&sb, "\ndistinct winners at 5%% budget: %d of %d applications\n",
		r.DistinctBest5(), len(r.Rows))
	return sb.String()
}

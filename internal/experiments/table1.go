package experiments

import (
	"strings"

	"astro/internal/tablefmt"
)

// Table1Row is one prior-work entry in the taxonomy.
type Table1Row struct {
	Work    string
	Level   string // Architecture, OS, Compiler, Library and combinations
	Source  bool   // requires/modifies source code
	Auto    bool   // no user intervention
	Runtime bool   // exploits runtime information
	Learn   bool   // adapts a model to runtime conditions
}

// Table1 reproduces the paper's taxonomy of solutions to SPha (Table 1).
// The data is the paper's own classification; it is included so the
// generated report covers every table in the evaluation.
func Table1() []Table1Row {
	return []Table1Row{
		{"Poesia et al. [24]", "C", true, true, false, true},
		{"Barik et al. [2]", "C", true, true, true, false},
		{"Rossbach et al. [26]", "C/L", true, false, true, false},
		{"Luk et al. [16]", "C/L", true, false, true, false},
		{"Joao et al. [13]", "A/L", true, false, false, false},
		{"Lukefahr et al. [17]", "A", false, true, false, false},
		{"Van Craeynest et al. [30]", "A", false, true, false, false},
		{"Nishtala et al. (Hipster) [20]", "O", false, true, true, true},
		{"Petrucci et al. (Octopus-Man) [22]", "O", false, true, true, false},
		{"Augonnet et al. (StarPU) [1]", "L", true, false, false, false},
		{"Piccoli et al. [23]", "O/C", true, true, true, false},
		{"Tang et al. (ReQoS) [29]", "O/C", true, true, true, false},
		{"Cong & Yuan [8]", "O/C", true, true, true, false},
		{"Astro (this work)", "O/C", true, true, true, true},
	}
}

// RenderTable1 formats the taxonomy.
func RenderTable1() string {
	yn := func(b bool) string {
		if b {
			return "Yes"
		}
		return "No"
	}
	var sb strings.Builder
	sb.WriteString("TABLE 1 — Taxonomy of solutions to SPha (paper's classification)\n\n")
	tb := tablefmt.NewTable("work", "level", "source", "auto", "runtime", "learn")
	for _, r := range Table1() {
		tb.Row(r.Work, r.Level, yn(r.Source), yn(r.Auto), yn(r.Runtime), yn(r.Learn))
	}
	sb.WriteString(tb.String())
	sb.WriteString("\nAstro is the only hybrid (O/C) approach that also learns from runtime conditions.\n")
	return sb.String()
}

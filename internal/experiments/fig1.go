package experiments

import (
	"fmt"
	"strings"

	"astro/internal/campaign"
	"astro/internal/hw"
	"astro/internal/stats"
	"astro/internal/tablefmt"
)

// Fig1Point is one configuration's averaged outcome for one benchmark.
type Fig1Point struct {
	Config      hw.Config
	CoreSeconds float64 // clock time x active cores (the paper's X axis)
	ClockS      float64
	EnergyJ     float64
	RelSD       float64 // relative standard deviation of clock time
}

// Fig1Result reproduces Fig. 1: the energy-vs-time footprint of freqmine
// and streamcluster across every hardware configuration.
type Fig1Result struct {
	Scale  Scale
	Points map[string][]Fig1Point // benchmark -> per-config points
	BestT  map[string]hw.Config
	BestE  map[string]hw.Config
	BestED map[string]hw.Config // best energy-delay product
}

// Fig1 runs the experiment. reps executions per configuration are averaged
// (the paper uses 10; variance stays tiny, which TestFig1 verifies).
func Fig1(sc Scale) (*Fig1Result, error) {
	reps := 2
	if sc == Paper {
		reps = 5
	}
	plat := hw.OdroidXU4()
	out := &Fig1Result{
		Scale:  sc,
		Points: map[string][]Fig1Point{},
		BestT:  map[string]hw.Config{},
		BestE:  map[string]hw.Config{},
		BestED: map[string]hw.Config{},
	}
	// The whole cross-product (benchmark x configuration x repetition) is one
	// campaign batch: embarrassingly parallel, cached across re-runs.
	benches := []string{"freqmine", "streamcluster"}
	configs := plat.Configs()
	var jobs []*campaign.Job
	for _, name := range benches {
		mod, spec, err := compileBench(name)
		if err != nil {
			return nil, err
		}
		for _, cfg := range configs {
			for r := 0; r < reps; r++ {
				jobs = append(jobs, &campaign.Job{
					Index:     len(jobs),
					Label:     fmt.Sprintf("fig1/%s/%v/rep%d", name, cfg, r),
					Benchmark: name,
					Module:    mod,
					Config:    cfg,
					Seed:      int64(1000*r + 13),
					Args:      argsFor(sc, spec),
					Opts:      simOpts(sc, 0),
				})
			}
		}
	}
	results, err := runBatch(jobs)
	if err != nil {
		return nil, fmt.Errorf("fig1: %w", err)
	}

	next := 0
	for _, name := range benches {
		for _, cfg := range configs {
			var times, energies []float64
			for r := 0; r < reps; r++ {
				res := results[next]
				next++
				times = append(times, res.TimeS)
				energies = append(energies, res.EnergyJ)
			}
			mt := stats.Mean(times)
			pt := Fig1Point{
				Config:      cfg,
				ClockS:      mt,
				CoreSeconds: mt * float64(cfg.Cores()),
				EnergyJ:     stats.Mean(energies),
			}
			if mt > 0 {
				pt.RelSD = stats.StdDev(times) / mt
			}
			out.Points[name] = append(out.Points[name], pt)
		}
		out.BestT[name] = argbest(out.Points[name], func(p Fig1Point) float64 { return p.ClockS })
		out.BestE[name] = argbest(out.Points[name], func(p Fig1Point) float64 { return p.EnergyJ })
		out.BestED[name] = argbest(out.Points[name], func(p Fig1Point) float64 { return p.EnergyJ * p.ClockS })
	}
	return out, nil
}

func argbest(pts []Fig1Point, key func(Fig1Point) float64) hw.Config {
	best := pts[0]
	for _, p := range pts[1:] {
		if key(p) < key(best) {
			best = p
		}
	}
	return best.Config
}

// Render formats the experiment as tables plus an ASCII scatter per
// benchmark.
func (r *Fig1Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FIG 1 — Energy vs processing time across %d configurations (%s scale)\n\n",
		len(r.Points["freqmine"]), r.Scale)
	for _, name := range []string{"freqmine", "streamcluster"} {
		tb := tablefmt.NewTable("config", "core-seconds", "clock (s)", "energy (J)", "relSD")
		var pts []tablefmt.Point
		for _, p := range r.Points[name] {
			tb.Row(p.Config.String(), p.CoreSeconds, p.ClockS, p.EnergyJ, p.RelSD)
			pts = append(pts, tablefmt.Point{X: p.CoreSeconds, Y: p.EnergyJ})
		}
		fmt.Fprintf(&sb, "%s:\n%s\n", name, tb.String())
		sb.WriteString(tablefmt.Scatter(pts, 64, 12, "core-seconds", "energy (J)"))
		fmt.Fprintf(&sb, "best time: %v   best energy: %v   best E*T: %v\n\n",
			r.BestT[name], r.BestE[name], r.BestED[name])
	}
	return sb.String()
}

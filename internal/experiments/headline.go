package experiments

import (
	"fmt"
	"strings"

	"astro/internal/stats"
)

// Headline summarizes the RQ1-RQ5 claims from the figure results, in the
// same shape the paper states them (percentages relative to oracles,
// baselines and GTS).
type Headline struct {
	// RQ1 (Fig. 9).
	AstroVsOracleTTimePct   float64 // paper: ~ +10%
	AstroVsOracleTEnergyPct float64 // paper: ~ +8%
	AstroVsOracleEEnergyPct float64 // paper: ~ +15%
	// RQ2 (Fig. 9).
	FixedAllOnVsAstroTimePct float64 // paper: 4L4B ~ +45% slower
	Fixed1LVsAstroTimeX      float64 // paper: 1L0B ~ 15x slower
	Fixed1LVsAstroEnergyX    float64 // paper: ~3.6x more energy
	// RQ3 (Fig. 9).
	AstroVsHipsterTimePct   float64 // paper: Astro ~17% faster
	AstroVsOctopusTimePct   float64 // paper: ~15% faster
	AstroVsHipsterEnergyPct float64 // paper: ~ +6% more energy
	AstroVsOctopusEnergyPct float64 // paper: ~ +4% more energy
	// RQ4 (Fig. 10).
	TimeWins, EnergyWins, Benchmarks int
	// RQ5 (Fig. 11).
	MeanLearningGrowthPct float64
}

// MakeHeadline derives the summary from completed experiments.
func MakeHeadline(f9 *Fig9Result, f10 *Fig10Result, f11 *Fig11Result) *Headline {
	h := &Headline{}
	if f9 != nil {
		a, ot, oe := f9.Row("Astro"), f9.Row("Oracle(T)"), f9.Row("Oracle(E)")
		if a != nil && ot != nil {
			h.AstroVsOracleTTimePct = 100 * (a.TimeS/ot.TimeS - 1)
			h.AstroVsOracleTEnergyPct = 100 * (a.EnergyJ/ot.EnergyJ - 1)
		}
		if a != nil && oe != nil {
			h.AstroVsOracleEEnergyPct = 100 * (a.EnergyJ/oe.EnergyJ - 1)
		}
		if f, s := f9.Row("4L4B"), f9.Row("1L0B"); a != nil && f != nil && s != nil {
			h.FixedAllOnVsAstroTimePct = 100 * (f.TimeS/a.TimeS - 1)
			h.Fixed1LVsAstroTimeX = s.TimeS / a.TimeS
			h.Fixed1LVsAstroEnergyX = s.EnergyJ / a.EnergyJ
		}
		if hp, oc := f9.Row("Hipster"), f9.Row("Octopus-Man"); a != nil && hp != nil && oc != nil {
			h.AstroVsHipsterTimePct = 100 * (1 - a.TimeS/hp.TimeS)
			h.AstroVsOctopusTimePct = 100 * (1 - a.TimeS/oc.TimeS)
			h.AstroVsHipsterEnergyPct = 100 * (a.EnergyJ/hp.EnergyJ - 1)
			h.AstroVsOctopusEnergyPct = 100 * (a.EnergyJ/oc.EnergyJ - 1)
		}
	}
	if f10 != nil {
		h.TimeWins, h.EnergyWins = f10.Wins()
		h.Benchmarks = len(f10.Rows)
	}
	if f11 != nil {
		var growths []float64
		for _, rep := range f11.Reports {
			growths = append(growths, 100*float64(rep.Learning-rep.Original)/float64(rep.Original))
		}
		h.MeanLearningGrowthPct = stats.Mean(growths)
	}
	return h
}

// Render formats the headline summary.
func (h *Headline) Render() string {
	var sb strings.Builder
	sb.WriteString("HEADLINE — paper claims vs this reproduction\n\n")
	fmt.Fprintf(&sb, "RQ1  Astro vs Oracle(T) time:    paper ~ +10%%   measured %+.1f%%\n", h.AstroVsOracleTTimePct)
	fmt.Fprintf(&sb, "RQ1  Astro vs Oracle(T) energy:  paper ~ +8%%    measured %+.1f%%\n", h.AstroVsOracleTEnergyPct)
	fmt.Fprintf(&sb, "RQ1  Astro vs Oracle(E) energy:  paper ~ +15%%   measured %+.1f%%\n", h.AstroVsOracleEEnergyPct)
	fmt.Fprintf(&sb, "RQ2  4L4B vs Astro time:         paper ~ +45%%   measured %+.1f%%\n", h.FixedAllOnVsAstroTimePct)
	fmt.Fprintf(&sb, "RQ2  1L0B vs Astro:              paper ~15x time, 3.6x energy   measured %.1fx / %.1fx\n",
		h.Fixed1LVsAstroTimeX, h.Fixed1LVsAstroEnergyX)
	fmt.Fprintf(&sb, "RQ3  Astro faster than Hipster:  paper ~17%%     measured %+.1f%%\n", h.AstroVsHipsterTimePct)
	fmt.Fprintf(&sb, "RQ3  Astro faster than Octopus:  paper ~15%%     measured %+.1f%%\n", h.AstroVsOctopusTimePct)
	fmt.Fprintf(&sb, "RQ3  Astro energy vs Hipster:    paper ~ +6%%    measured %+.1f%%\n", h.AstroVsHipsterEnergyPct)
	fmt.Fprintf(&sb, "RQ3  Astro energy vs Octopus:    paper ~ +4%%    measured %+.1f%%\n", h.AstroVsOctopusEnergyPct)
	fmt.Fprintf(&sb, "RQ4  Astro beats GTS:            paper 6/7 time, 5/7 energy   measured %d/%d time, %d/%d energy\n",
		h.TimeWins, h.Benchmarks, h.EnergyWins, h.Benchmarks)
	fmt.Fprintf(&sb, "RQ5  learning-binary growth:     paper 'small'  measured mean %+.1f%%, library dominates final size\n",
		h.MeanLearningGrowthPct)
	return sb.String()
}

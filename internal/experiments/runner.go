package experiments

import (
	"context"
	"sync"

	"astro/internal/campaign"
	"astro/internal/sim"
)

// The figure drivers execute their simulation sweeps through a shared
// campaign pool instead of inline loops: sweeps become job batches that run
// on -j workers with content-addressed caching, so astro-experiments -j 8
// parallelizes every cross-product and a re-run against a warm cache skips
// the simulations entirely. The default executor is serial with an
// in-process cache, which keeps `go test` behaviour identical to the old
// inline loops (the simulator is deterministic, so worker count never
// changes results — internal/campaign's determinism tests hold the proof).
var (
	execMu   sync.RWMutex
	execPool = &campaign.Pool{Workers: 1, Store: campaign.NewMemStore()}
	execCtx  = context.Background()
)

// ExecConfig reconfigures the shared executor. Zero/nil fields keep the
// current setting.
type ExecConfig struct {
	Workers int                  // pool width (astro-experiments -j)
	Store   campaign.ResultStore // result cache (e.g. disk-backed for warm re-runs)
	Ctx     context.Context      // deadline/cancellation (astro-experiments -timeout)
}

// Configure applies cfg to the executor used by all figure drivers.
func Configure(cfg ExecConfig) {
	execMu.Lock()
	defer execMu.Unlock()
	if cfg.Workers > 0 {
		execPool = &campaign.Pool{Workers: cfg.Workers, Store: execPool.Store, Retries: execPool.Retries}
	}
	if cfg.Store != nil {
		execPool = &campaign.Pool{Workers: execPool.Workers, Store: cfg.Store, Retries: execPool.Retries}
	}
	if cfg.Ctx != nil {
		execCtx = cfg.Ctx
	}
}

// Workers reports the configured pool width; drivers with serial
// per-benchmark stages (training) use it to bound benchmark-level
// concurrency.
func Workers() int {
	execMu.RLock()
	defer execMu.RUnlock()
	return execPool.Workers
}

// Store returns the executor's result store. Figure drivers use it to
// memoize trained agents next to the simulation results they produce, so a
// disk-backed -cache directory also persists training across runs.
func Store() campaign.ResultStore {
	execMu.RLock()
	defer execMu.RUnlock()
	return execPool.Store
}

// runBatch executes jobs on the shared pool and returns their results in
// job order, failing on the first job error.
func runBatch(jobs []*campaign.Job) ([]*sim.Result, error) {
	execMu.RLock()
	pool, ctx := execPool, execCtx
	execMu.RUnlock()
	outs, err := pool.Run(ctx, jobs, nil)
	if err != nil {
		return nil, err
	}
	return campaign.Results(outs)
}

package experiments

import (
	"context"
	"sync"

	"astro/internal/campaign"
	"astro/internal/sim"
)

// The figure drivers execute their simulation sweeps through a shared
// campaign runner instead of inline loops: sweeps become job batches that
// run on -j workers with content-addressed caching, so astro-experiments
// -j 8 parallelizes every cross-product and a re-run against a warm cache
// skips the simulations entirely. The runner is pluggable: the default is
// an in-process pool (which keeps `go test` behaviour identical to the old
// inline loops), and cmd/astro-experiments swaps in a
// campaign.RemoteRunner when it coordinates a worker fleet — the simulator
// is deterministic, so the backend never changes results, only where the
// cycles burn (internal/campaign's determinism and remote byte-identity
// tests hold the proof). Training batches route through the same seam:
// when the runner also implements campaign.Trainer (both Pool and
// RemoteRunner do), fig10-style training cells follow the runner — leased
// to the fleet under a remote runner, sharded in-process otherwise.
var (
	execMu      sync.RWMutex
	execWorkers                      = 1
	execStore   campaign.ResultStore = campaign.NewMemStore()
	execRunner  campaign.Runner      = &campaign.Pool{Workers: 1, Store: execStore}
	execCtx                          = context.Background()
	execCustom  bool                 // a caller-supplied Runner is installed; don't rebuild the pool over it
)

// ExecConfig reconfigures the shared executor. Zero/nil fields keep the
// current setting.
type ExecConfig struct {
	Workers int                  // pool width (astro-experiments -j)
	Store   campaign.ResultStore // result cache (e.g. disk-backed for warm re-runs)
	Ctx     context.Context      // deadline/cancellation (astro-experiments -timeout)
	// Runner overrides the execution backend entirely (astro-experiments
	// -remote builds a campaign.RemoteRunner). When nil, the executor is an
	// in-process pool over Workers and Store.
	Runner campaign.Runner
}

// Configure applies cfg to the executor used by all figure drivers.
func Configure(cfg ExecConfig) {
	execMu.Lock()
	defer execMu.Unlock()
	if cfg.Workers > 0 {
		execWorkers = cfg.Workers
	}
	if cfg.Store != nil {
		execStore = cfg.Store
	}
	if cfg.Ctx != nil {
		execCtx = cfg.Ctx
	}
	if cfg.Runner != nil {
		execRunner, execCustom = cfg.Runner, true
		return
	}
	if execCustom {
		// "Zero/nil fields keep the current setting": a later Configure
		// that only tweaks Workers/Store/Ctx must not silently demote an
		// installed RemoteRunner back to an in-process pool. To revert,
		// pass the pool explicitly.
		return
	}
	execRunner = &campaign.Pool{Workers: execWorkers, Store: execStore}
}

// Workers reports the configured pool width; drivers with serial
// per-benchmark stages (training) use it to bound benchmark-level
// concurrency.
func Workers() int {
	execMu.RLock()
	defer execMu.RUnlock()
	return execWorkers
}

// Store returns the executor's result store. Figure drivers use it to
// memoize trained agents next to the simulation results they produce, so a
// disk-backed -cache directory also persists training across runs.
func Store() campaign.ResultStore {
	execMu.RLock()
	defer execMu.RUnlock()
	return execStore
}

// runBatch executes jobs on the shared runner and returns their results in
// job order, failing on the first job error.
func runBatch(jobs []*campaign.Job) ([]*sim.Result, error) {
	execMu.RLock()
	runner, ctx := execRunner, execCtx
	execMu.RUnlock()
	outs, err := runner.Run(ctx, jobs, nil)
	if err != nil {
		return nil, err
	}
	return campaign.Results(outs)
}

// trainBatch executes training cells on the shared runner's Trainer (both
// backends implement it; TrainCells is the safety net for a custom runner
// that does not), so fig10's per-benchmark training distributes exactly
// like its sampling.
func trainBatch(specs []*campaign.TrainSpec) ([]*campaign.Trained, error) {
	execMu.RLock()
	runner, ctx, store, workers := execRunner, execCtx, execStore, execWorkers
	execMu.RUnlock()
	if tr, ok := runner.(campaign.Trainer); ok {
		return tr.Train(ctx, specs)
	}
	return campaign.TrainCells(store, specs, workers)
}

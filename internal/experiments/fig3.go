package experiments

import (
	"fmt"
	"sort"
	"strings"

	"astro/internal/hw"
	"astro/internal/powmon"
	"astro/internal/tablefmt"
)

// Fig3Segment labels a stretch of the power profile with the program phase
// active at its checkpoints.
type Fig3Segment struct {
	StartS, EndS float64
	Label        string
	MeanWatts    float64
}

// Fig3Result reproduces Fig. 3: the JetsonLeap-style power profile of the
// matrix-multiplication program of Fig. 2 on the TK1 platform, plus the
// big-vs-LITTLE zoom of its final (print) phase.
type Fig3Result struct {
	Scale    Scale
	Series   *powmon.Series
	Segments []Fig3Segment

	// Zoom (Fig. 3b): the same program pinned to one big vs one LITTLE
	// core; mean power of each during the run.
	BigWatts    float64
	LittleWatts float64
}

// Fig3 runs the power-profile experiment on the learning-instrumented
// binary, so checkpoints carry the logged program phases that label the
// profile's segments.
func Fig3(sc Scale) (*Fig3Result, error) {
	plat := hw.JetsonTK1()
	art, err := prepare("matrixmul")
	if err != nil {
		return nil, err
	}
	opts := simOpts(sc, 5)
	opts.Args = argsFor(sc, art.spec)
	opts.SampleS = 50e-6 // the NI-6009's 1 kHz, on our scaled time axis
	opts.CheckpointS = 200e-6
	res, err := runFixed(art.learning, plat, hw.Config{Little: 1, Big: 4}, opts)
	if err != nil {
		return nil, fmt.Errorf("fig3: %w", err)
	}
	out := &Fig3Result{Scale: sc, Series: res.Samples}
	// Build labelled segments by merging consecutive checkpoints with the
	// same program phase.
	var seg *Fig3Segment
	flush := func(end float64) {
		if seg != nil {
			seg.EndS = end
			win := res.Samples.Window(seg.StartS, end)
			var sum float64
			for _, s := range win {
				sum += s.Watts
			}
			if len(win) > 0 {
				seg.MeanWatts = sum / float64(len(win))
			}
			out.Segments = append(out.Segments, *seg)
			seg = nil
		}
	}
	for _, ck := range res.Checkpoints {
		label := ck.ProgPhase.String()
		if seg == nil || seg.Label != label {
			flush(ck.TimeS - ck.DurS)
			seg = &Fig3Segment{StartS: ck.TimeS - ck.DurS, Label: label}
		}
	}
	flush(res.TimeS)

	// Zoom: big vs LITTLE single-core runs of the same program. The
	// program is wait-dominated, so compare the busy plateaus (mean of the
	// top half of power samples), which is what Fig. 3b's zoom displays.
	zoom := func(cfg hw.Config) (float64, error) {
		o := simOpts(sc, 6)
		o.Args = argsFor(sc, art.spec)
		o.SampleS = 50e-6
		r, err := runFixed(art.learning, plat, cfg, o)
		if err != nil {
			return 0, err
		}
		return plateauWatts(r.Samples), nil
	}
	if out.BigWatts, err = zoom(hw.Config{Big: 1}); err != nil {
		return nil, fmt.Errorf("fig3 zoom big: %w", err)
	}
	if out.LittleWatts, err = zoom(hw.Config{Little: 1}); err != nil {
		return nil, fmt.Errorf("fig3 zoom LITTLE: %w", err)
	}
	return out, nil
}

// plateauWatts returns the mean of the top decile of power samples — the
// busy plateaus of a wait-dominated profile (the program spends most of its
// time blocked on input, so lower quantiles are all idle board power).
func plateauWatts(s *powmon.Series) float64 {
	if s == nil || len(s.Samples) == 0 {
		return 0
	}
	ws := make([]float64, len(s.Samples))
	for i, x := range s.Samples {
		ws[i] = x.Watts
	}
	sort.Float64s(ws)
	top := ws[len(ws)*9/10:]
	if len(top) == 0 {
		top = ws
	}
	var sum float64
	for _, w := range top {
		sum += w
	}
	return sum / float64(len(top))
}

// PhaseRange returns the min and max of segment mean power, showing the
// valleys (waiting) and plateaus (multiply) of the profile.
func (r *Fig3Result) PhaseRange() (min, max float64) {
	if len(r.Segments) == 0 {
		return 0, 0
	}
	min, max = r.Segments[0].MeanWatts, r.Segments[0].MeanWatts
	for _, s := range r.Segments[1:] {
		if s.MeanWatts < min {
			min = s.MeanWatts
		}
		if s.MeanWatts > max {
			max = s.MeanWatts
		}
	}
	return min, max
}

// Render formats the profile.
func (r *Fig3Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FIG 3 — Power profile of the Fig. 2 matrix program (TK1, %s scale)\n\n", r.Scale)
	xs := make([]float64, len(r.Series.Samples))
	ys := make([]float64, len(r.Series.Samples))
	for i, s := range r.Series.Samples {
		xs[i] = s.TimeS * 1000
		ys[i] = s.Watts
	}
	sb.WriteString(tablefmt.Series(xs, ys, 72, 10, "power (W) over time (ms)"))
	tb := tablefmt.NewTable("segment", "start (ms)", "end (ms)", "phase", "mean W")
	for i, s := range r.Segments {
		tb.Row(i, s.StartS*1000, s.EndS*1000, s.Label, s.MeanWatts)
	}
	sb.WriteString("\n")
	sb.WriteString(tb.String())
	fmt.Fprintf(&sb, "\nFig 3b zoom — same program single-core: big %.3f W vs LITTLE %.3f W (ratio %.2fx)\n",
		r.BigWatts, r.LittleWatts, r.BigWatts/r.LittleWatts)
	return sb.String()
}

package experiments

import (
	"fmt"
	"strings"

	"astro/internal/features"
	"astro/internal/tablefmt"
)

// Fig6Row maps one function of the Fig. 2 program into the 3-feature space
// of Example 3.4 (arithmetic density, I/O weight, nesting factor).
type Fig6Row struct {
	Function  string
	ArithDens float64
	IOWeight  float64
	Nesting   int
	Cell      [3]int // (arith, nesting, io) range indices
	CellID    int
	Phase     features.Phase
}

// Fig6Result reproduces Fig. 6: the function-to-program-phase mapping.
type Fig6Result struct {
	Rows  []Fig6Row
	Cells int
}

// Fig6 runs the (purely static) analysis.
func Fig6() (*Fig6Result, error) {
	mod, _, err := compileBench("matrixmul")
	if err != nil {
		return nil, err
	}
	mi := features.AnalyzeModule(mod, features.Options{})
	space := features.NewExample34Space()
	out := &Fig6Result{Cells: space.Cells()}
	for _, fi := range mi.Funcs {
		a, n, io := space.Cube(fi.Vec)
		out.Rows = append(out.Rows, Fig6Row{
			Function:  fi.Name,
			ArithDens: fi.Vec.ArithDens,
			IOWeight:  fi.Vec.IOWeight,
			Nesting:   fi.Vec.NestingFactor,
			Cell:      [3]int{a, n, io},
			CellID:    space.CellID(fi.Vec),
			Phase:     fi.Phase,
		})
	}
	return out, nil
}

// Render formats the mapping.
func (r *Fig6Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FIG 6 — Function -> phase mapping in the %d-cell feature space of Example 3.4\n\n", r.Cells)
	tb := tablefmt.NewTable("function", "arith dens", "I/O weight", "nesting", "cell (a,n,io)", "cell id", "phase")
	for _, row := range r.Rows {
		tb.Row(row.Function, row.ArithDens, row.IOWeight, row.Nesting,
			fmt.Sprintf("(%d,%d,%d)", row.Cell[0], row.Cell[1], row.Cell[2]), row.CellID, row.Phase.String())
	}
	sb.WriteString(tb.String())
	return sb.String()
}

package experiments

import (
	"fmt"
	"strings"

	"astro/internal/hw"
	"astro/internal/rl"
	"astro/internal/tablefmt"
	"astro/internal/trace"
)

// Fig9Row is one strategy's outcome on the fluidanimate trace study.
type Fig9Row struct {
	Strategy string
	TimeS    float64
	EnergyJ  float64
	Switches int
}

// Fig9Result reproduces Fig. 9 (Sec. 4.1): the simulated-environment
// comparison on fluidanimate traces between fixed configurations, the
// greedy oracles, Astro, Hipster, Octopus-Man and a random chooser.
type Fig9Result struct {
	Scale Scale
	Rows  []Fig9Row
}

// Fig9 records one trace per configuration and replays the strategies.
func Fig9(sc Scale) (*Fig9Result, error) {
	plat := hw.OdroidXU4()
	art, err := prepare("fluidanimate")
	if err != nil {
		return nil, err
	}
	opts := simOpts(sc, 3)
	opts.Args = argsFor(sc, art.spec)
	// Finer checkpoints than the device experiments: the replay study needs
	// many rows per trace for the learners to see phase structure (the
	// paper's traces span hundreds of 500 ms checkpoints).
	opts.CheckpointS /= 2.5
	set, err := trace.RecordSet(art.learning, plat, opts, nil) // all 24 configs
	if err != nil {
		return nil, fmt.Errorf("fig9: %w", err)
	}

	start := plat.AllOn()
	out := &Fig9Result{Scale: sc}
	add := func(name string, res trace.ReplayResult) {
		out.Rows = append(out.Rows, Fig9Row{
			Strategy: name, TimeS: res.TimeS, EnergyJ: res.EnergyJ, Switches: res.Switches,
		})
	}

	// Fixed baselines of the figure.
	for _, cfg := range []hw.Config{{Little: 4, Big: 4}, {Little: 1}} {
		res, err := set.Replay(&trace.FixedPolicy{Config: cfg}, cfg)
		if err != nil {
			return nil, err
		}
		add(cfg.String(), res)
	}
	// Oracles.
	oe, err := set.Replay(trace.OracleE(), start)
	if err != nil {
		return nil, err
	}
	add("Oracle(E)", oe)
	ot, err := set.Replay(trace.OracleT(), start)
	if err != nil {
		return nil, err
	}
	add("Oracle(T)", ot)

	// Astro: train the neural Q-learner on replays, then exploit. Replays
	// are cheap (no simulation), so the training budget is generous.
	episodes := 12 * episodesFor(sc)
	astroAgent := rl.NewDQN(plat.NumConfigs(), rl.DQNConfig{Seed: 101, LR: 0.05})
	astro := trace.NewAstroReplay(astroAgent, plat, true)
	for ep := 0; ep < episodes; ep++ {
		if _, err := set.Replay(astro, start); err != nil {
			return nil, err
		}
	}
	astro.Learn = false
	ar, err := set.Replay(astro, start)
	if err != nil {
		return nil, err
	}
	add("Astro", ar)

	// Hipster: same learner without program phases.
	hipAgent := rl.NewDQN(plat.NumConfigs(), rl.DQNConfig{Seed: 102, LR: 0.05})
	hip := trace.NewHipsterReplay(hipAgent, plat, true)
	for ep := 0; ep < episodes; ep++ {
		if _, err := set.Replay(hip, start); err != nil {
			return nil, err
		}
	}
	hip.Learn = false
	hr, err := set.Replay(hip, start)
	if err != nil {
		return nil, err
	}
	add("Hipster", hr)

	// Octopus-Man ladder and the random control.
	or, err := set.Replay(trace.NewOctopusReplay(plat), hw.Config{Little: 1})
	if err != nil {
		return nil, err
	}
	add("Octopus-Man", or)
	rr, err := set.Replay(&trace.RandomPolicy{Seed: 31}, start)
	if err != nil {
		return nil, err
	}
	add("Random", rr)

	return out, nil
}

// Row returns a strategy's row (nil if absent).
func (r *Fig9Result) Row(name string) *Fig9Row {
	for i := range r.Rows {
		if r.Rows[i].Strategy == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// Render formats the comparison.
func (r *Fig9Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FIG 9 — Scheduling strategies on fluidanimate traces (%s scale)\n\n", r.Scale)
	tb := tablefmt.NewTable("strategy", "time (s)", "energy (J)", "switches")
	for _, row := range r.Rows {
		tb.Row(row.Strategy, row.TimeS, row.EnergyJ, row.Switches)
	}
	sb.WriteString(tb.String())
	if a, ot, oe := r.Row("Astro"), r.Row("Oracle(T)"), r.Row("Oracle(E)"); a != nil && ot != nil && oe != nil {
		fmt.Fprintf(&sb, "\nRQ1: Astro vs Oracle(T): %+.1f%% time, %+.1f%% energy; vs Oracle(E): %+.1f%% energy\n",
			100*(a.TimeS/ot.TimeS-1), 100*(a.EnergyJ/ot.EnergyJ-1), 100*(a.EnergyJ/oe.EnergyJ-1))
	}
	if a, f, s := r.Row("Astro"), r.Row("4L4B"), r.Row("1L0B"); a != nil && f != nil && s != nil {
		fmt.Fprintf(&sb, "RQ2: 4L4B is %+.1f%% time vs Astro (energy %+.1f%%); 1L0B is %.1fx slower, %.1fx more energy\n",
			100*(f.TimeS/a.TimeS-1), 100*(f.EnergyJ/a.EnergyJ-1), s.TimeS/a.TimeS, s.EnergyJ/a.EnergyJ)
	}
	if a, h, o := r.Row("Astro"), r.Row("Hipster"), r.Row("Octopus-Man"); a != nil && h != nil && o != nil {
		fmt.Fprintf(&sb, "RQ3: Astro vs Hipster: %+.1f%% time, %+.1f%% energy; vs Octopus-Man: %+.1f%% time, %+.1f%% energy\n",
			100*(a.TimeS/h.TimeS-1), 100*(a.EnergyJ/h.EnergyJ-1),
			100*(a.TimeS/o.TimeS-1), 100*(a.EnergyJ/o.EnergyJ-1))
	}
	return sb.String()
}

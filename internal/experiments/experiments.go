// Package experiments regenerates every table and figure of the paper's
// evaluation (Figs. 1, 3, 4, 6, 9, 10, 11 and Table 1, plus the headline
// RQ1-RQ5 numbers). Each driver returns a structured result with a
// Render method producing the terminal-friendly form recorded in
// EXPERIMENTS.md. See DESIGN.md for the experiment index.
package experiments

import (
	"fmt"

	"astro/internal/features"
	"astro/internal/hw"
	"astro/internal/instrument"
	"astro/internal/ir"
	"astro/internal/sim"
	"astro/internal/workloads"
)

// Scale selects experiment effort: Small keeps CI runs fast; Paper is the
// scale used for the recorded EXPERIMENTS.md results.
type Scale int

const (
	Small Scale = iota
	Paper
)

func (s Scale) String() string {
	if s == Paper {
		return "paper"
	}
	return "small"
}

// simOpts returns the base simulator options for a scale.
func simOpts(s Scale, seed int64) sim.Options {
	if s == Paper {
		return sim.Options{
			Seed:        seed,
			CheckpointS: 1e-3,
			QuantumS:    100e-6,
			TickS:       500e-6,
		}
	}
	return sim.Options{
		Seed:        seed,
		CheckpointS: 400e-6,
		QuantumS:    50e-6,
		TickS:       200e-6,
	}
}

// argsFor returns the benchmark arguments for a scale.
func argsFor(s Scale, spec workloads.Spec) []int64 {
	if s == Paper {
		return spec.Args()
	}
	return spec.SmallArgs()
}

// episodesFor returns the Q-learning training budget for a scale.
func episodesFor(s Scale) int {
	if s == Paper {
		return 18
	}
	return 10
}

// samplesFor returns the per-treatment sample count (Fig. 10 uses 5, like
// the paper).
func samplesFor(s Scale) int {
	if s == Paper {
		return 5
	}
	return 3
}

// compileBench compiles a registered benchmark or fails loudly (registry
// entries are covered by tests).
func compileBench(name string) (*ir.Module, workloads.Spec, error) {
	spec, ok := workloads.ByName(name)
	if !ok {
		return nil, spec, fmt.Errorf("experiments: unknown benchmark %q", name)
	}
	mod, err := spec.Compile()
	if err != nil {
		return nil, spec, err
	}
	return mod, spec, nil
}

// runFixed executes mod pinned to cfg and returns the result.
func runFixed(mod *ir.Module, plat *hw.Platform, cfg hw.Config, opts sim.Options) (*sim.Result, error) {
	opts.InitialConfig = cfg
	m, err := sim.New(mod, plat, opts)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// learningArtifacts bundles a benchmark's instrumented variants.
type learningArtifacts struct {
	spec     workloads.Spec
	plain    *ir.Module
	info     *features.ModuleInfo
	learning *ir.Module
	hybrid   *ir.Module
}

func prepare(name string) (*learningArtifacts, error) {
	mod, spec, err := compileBench(name)
	if err != nil {
		return nil, err
	}
	mi := features.AnalyzeModule(mod, features.Options{})
	learn, err := instrument.ForLearning(mod, mi)
	if err != nil {
		return nil, err
	}
	hyb, err := instrument.ForHybrid(mod, mi)
	if err != nil {
		return nil, err
	}
	return &learningArtifacts{spec: spec, plain: mod, info: mi, learning: learn, hybrid: hyb}, nil
}

func (a *learningArtifacts) static(plat *hw.Platform, pol *instrument.Policy) (*ir.Module, error) {
	return instrument.ForStatic(a.plain, a.info, plat, pol)
}

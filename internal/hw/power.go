package hw

// BurstMix summarizes the instruction mix of an execution burst, as needed
// by the power model: the fraction of floating-point work and the L2 miss
// rate drive the dynamic-power adders.
type BurstMix struct {
	FPFrac   float64 // FP instructions / total instructions
	MissRate float64 // L2 misses / memory accesses
}

// BusyPower returns a core's instantaneous power while executing with the
// given mix.
func (s *CoreSpec) BusyPower(mix BurstMix) float64 {
	return s.ActiveWatts + s.FPExtraWatts*clamp01(mix.FPFrac) + s.MemExtraWatts*clamp01(mix.MissRate)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// IdleConfigPower returns the platform power when all cores in config c are
// idle: base power plus per-core idle power. Cores not in c draw nothing
// (hotplugged off).
func (p *Platform) IdleConfigPower(c Config) float64 {
	w := p.BasePowerWatts
	for _, ci := range p.ActiveCores(c) {
		w += p.Cores[ci].IdleWatts
	}
	return w
}

// MaxConfigPower returns an upper bound on platform power under c (all
// cores busy on FP-heavy, miss-heavy work); useful for sanity checks and
// plot scaling.
func (p *Platform) MaxConfigPower(c Config) float64 {
	w := p.BasePowerWatts
	for _, ci := range p.ActiveCores(c) {
		w += p.Cores[ci].BusyPower(BurstMix{FPFrac: 1, MissRate: 1})
	}
	return w
}

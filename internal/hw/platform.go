package hw

// Core parameter sets. The A15 is a 3-wide out-of-order core; the A7 a
// 2-wide in-order core. CPI and power figures follow published
// characterizations of the Exynos 5422 (big ≈ 5x the power of LITTLE at
// ≈ 1.9x the int throughput, more on FP).

func cortexA15(freqMHz int) CoreSpec {
	return CoreSpec{
		Type:          Big,
		FreqMHz:       freqMHz,
		CPIIntALU:     0.6,
		CPIFPALU:      1.1,
		CPIMem:        0.7,
		CPIBranch:     1.0,
		CPICall:       2.0,
		L1HitCycles:   1.0,
		L2HitCycles:   12.0,
		IdleWatts:     0.12,
		ActiveWatts:   1.55,
		FPExtraWatts:  0.45,
		MemExtraWatts: 0.30,
	}
}

func cortexA7(freqMHz int) CoreSpec {
	return CoreSpec{
		Type:          Little,
		FreqMHz:       freqMHz,
		CPIIntALU:     1.1,
		CPIFPALU:      4.0,
		CPIMem:        1.4,
		CPIBranch:     1.4,
		CPICall:       3.0,
		L1HitCycles:   1.0,
		L2HitCycles:   9.0,
		IdleWatts:     0.02,
		ActiveWatts:   0.31,
		FPExtraWatts:  0.09,
		MemExtraWatts: 0.06,
	}
}

// OdroidXU4 models the paper's primary evaluation board: a Samsung Exynos
// 5422 with 4 Cortex-A15 cores at 2.0 GHz and 4 Cortex-A7 cores at 1.4 GHz,
// run with the "performance" governor (fixed maximum frequency), 24 valid
// hardware configurations.
func OdroidXU4() *Platform {
	p := &Platform{
		Name:          "odroid-xu4",
		L1KB:          32,
		L1Ways:        4,
		LineBytes:     64,
		L2KB:          map[CoreType]int{Big: 2048, Little: 512},
		L2Ways:        16,
		DRAMLatencyNs: 100,
		// Hotplug and migration latencies are scaled down with the
		// reproduction's compressed virtual-time axis (paper runs are
		// minutes with 500 ms checkpoints; ours are tens of milliseconds
		// with ~1 ms checkpoints), keeping the switch-cost-to-phase-length
		// ratio in the regime the paper discusses. See DESIGN.md.
		SwitchLatencyUs:    40,
		MigrationLatencyUs: 12,
		BasePowerWatts:     0.35,
	}
	for i := 0; i < 4; i++ {
		p.LittleIdx = append(p.LittleIdx, len(p.Cores))
		p.Cores = append(p.Cores, cortexA7(1400))
	}
	for i := 0; i < 4; i++ {
		p.BigIdx = append(p.BigIdx, len(p.Cores))
		p.Cores = append(p.Cores, cortexA15(2000))
	}
	return p
}

// JetsonTK1 models the Nvidia Tegra K1 board used for the power-profile
// experiment (Fig. 2/3): 4 Cortex-A15 cores plus one low-power companion
// core. It offers far fewer configurations than the XU4 (as the paper
// notes), but pairs with the JetsonLeap-style 1 kHz power sampler.
func JetsonTK1() *Platform {
	p := &Platform{
		Name:          "jetson-tk1",
		L1KB:          32,
		L1Ways:        4,
		LineBytes:     64,
		L2KB:          map[CoreType]int{Big: 2048, Little: 512},
		L2Ways:        16,
		DRAMLatencyNs: 95,
		// Scaled with the virtual-time axis; see OdroidXU4.
		SwitchLatencyUs:    40,
		MigrationLatencyUs: 12,
		BasePowerWatts:     1.3, // whole-board measurement, as with JetsonLeap
	}
	p.LittleIdx = append(p.LittleIdx, len(p.Cores))
	p.Cores = append(p.Cores, cortexA7(1000))
	for i := 0; i < 4; i++ {
		p.BigIdx = append(p.BigIdx, len(p.Cores))
		p.Cores = append(p.Cores, cortexA15(2300))
	}
	return p
}

// Platforms lists the built-in platforms by name.
func Platforms() map[string]func() *Platform {
	return map[string]func() *Platform{
		"odroid-xu4": OdroidXU4,
		"jetson-tk1": JetsonTK1,
	}
}

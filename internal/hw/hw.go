// Package hw models the heterogeneous big.LITTLE platforms the paper runs
// on: core specifications (timing and power), the space of hardware
// configurations (Definition 2.1: which cores are active), and the
// platform-level parameters the simulator needs (caches, switch costs).
//
// Absolute constants are calibrated to published Cortex-A15/Cortex-A7
// characteristics (Exynos 5422 in the Odroid XU4); the reproduction targets
// behavioural shape, not board-exact joules (see DESIGN.md).
//
// # Canonical platform names
//
// ByName resolves both the built-in boards ("odroid-xu4", "jetson-tk1")
// and generated zoo machines. A zoo name is canonical and self-describing:
//
//	zoo:<L>L<B>B:l<littleMHz>@<littleBlend>:b<bigMHz>@<bigBlend>
//
// encodes every PlatformParams field, and ByName rebuilds the identical
// machine from the name alone (blends are quantized to 0.01 so
// print/parse round-trips exactly; interpolated L2 capacities snap to
// powers of two for the set-associative cache model). This contract is
// load-bearing for every cache layer above: campaign job keys and
// trained-agent keys hash the platform *name*, so two processes — or two
// machines in a distributed fleet — that agree on a name agree on the
// simulated hardware, and the content-addressed stores stay sound across
// them. TestPlatformParamsRoundTrip and the hw parse tests pin it.
package hw

import "fmt"

// CoreType distinguishes LITTLE (low-power, in-order) from big
// (high-performance, out-of-order) cores.
type CoreType uint8

const (
	Little CoreType = iota
	Big
)

func (t CoreType) String() string {
	if t == Big {
		return "big"
	}
	return "LITTLE"
}

// Config is a hardware configuration: how many LITTLE and big cores are
// active (the paper's xLyB notation). The all-off configuration is invalid.
type Config struct {
	Little int
	Big    int
}

func (c Config) String() string { return fmt.Sprintf("%dL%dB", c.Little, c.Big) }

// Cores returns the total number of active cores.
func (c Config) Cores() int { return c.Little + c.Big }

// Valid reports whether the configuration is usable on a platform with the
// given core counts: within bounds and at least one core on.
func (c Config) Valid(maxLittle, maxBig int) bool {
	return c.Little >= 0 && c.Big >= 0 &&
		c.Little <= maxLittle && c.Big <= maxBig &&
		c.Cores() > 0
}

// CoreSpec describes one core's timing and power model.
type CoreSpec struct {
	Type    CoreType
	FreqMHz int

	// Cycles per instruction by class (pipeline issue cost; memory
	// instructions add cache/DRAM latency on top).
	CPIIntALU float64
	CPIFPALU  float64
	CPIMem    float64 // issue cost of a load/store, excluding miss latency
	CPIBranch float64
	CPICall   float64

	// Cache latencies in cycles (hit in the given level).
	L1HitCycles float64
	L2HitCycles float64
	// DRAM latency is platform-wide in nanoseconds; the per-core cycle cost
	// is DRAMLatencyNs * FreqMHz / 1000.

	// Power model (Watts). Instantaneous core power =
	//   IdleWatts                                  when on but idle
	//   ActiveWatts + FPExtraWatts*fpFrac + MemExtraWatts*missRate  when busy
	IdleWatts     float64
	ActiveWatts   float64
	FPExtraWatts  float64
	MemExtraWatts float64
}

// CyclesPerSecond returns the core clock rate in Hz.
func (s *CoreSpec) CyclesPerSecond() float64 { return float64(s.FreqMHz) * 1e6 }

// DRAMCycles converts a DRAM latency in ns to cycles at this core's clock.
func (s *CoreSpec) DRAMCycles(dramNs float64) float64 {
	return dramNs * float64(s.FreqMHz) / 1000.0
}

// Platform is a complete big.LITTLE machine description.
type Platform struct {
	Name  string
	Cores []CoreSpec

	// Index lists per type; cores are activated deterministically from the
	// front of these lists.
	LittleIdx []int
	BigIdx    []int

	// Cache geometry.
	L1KB      int
	L1Ways    int
	LineBytes int
	L2KB      map[CoreType]int // shared L2 per cluster
	L2Ways    int

	DRAMLatencyNs float64

	// Cost of hardware reconfiguration (core on/off + task migration), and
	// uncore/SoC base power charged whenever the board is on.
	SwitchLatencyUs    float64
	MigrationLatencyUs float64
	BasePowerWatts     float64
}

// MaxLittle returns the number of LITTLE cores present.
func (p *Platform) MaxLittle() int { return len(p.LittleIdx) }

// MaxBig returns the number of big cores present.
func (p *Platform) MaxBig() int { return len(p.BigIdx) }

// NumConfigs returns the number of valid configurations:
// (L+1)*(B+1) - 1 (the paper's 24 for the Odroid XU4).
func (p *Platform) NumConfigs() int {
	return (p.MaxLittle()+1)*(p.MaxBig()+1) - 1
}

// ConfigID maps a configuration to a dense id in [0, NumConfigs()).
// The all-off configuration has no id.
func (p *Platform) ConfigID(c Config) int {
	return c.Little*(p.MaxBig()+1) + c.Big - 1
}

// ConfigFromID inverts ConfigID.
func (p *Platform) ConfigFromID(id int) Config {
	n := id + 1
	return Config{Little: n / (p.MaxBig() + 1), Big: n % (p.MaxBig() + 1)}
}

// Configs enumerates all valid configurations in id order.
func (p *Platform) Configs() []Config {
	var out []Config
	for id := 0; id < p.NumConfigs(); id++ {
		out = append(out, p.ConfigFromID(id))
	}
	return out
}

// ActiveCores returns the core indices active under c, deterministically
// choosing the first cores of each type.
func (p *Platform) ActiveCores(c Config) []int {
	out := make([]int, 0, c.Cores())
	for i := 0; i < c.Little && i < len(p.LittleIdx); i++ {
		out = append(out, p.LittleIdx[i])
	}
	for i := 0; i < c.Big && i < len(p.BigIdx); i++ {
		out = append(out, p.BigIdx[i])
	}
	return out
}

// AllOn returns the configuration with every core active.
func (p *Platform) AllOn() Config {
	return Config{Little: p.MaxLittle(), Big: p.MaxBig()}
}

// Capability is a rough throughput score used by ladder policies
// (Octopus-Man): big cores count in proportion to their single-thread
// advantage over LITTLE cores.
func (p *Platform) Capability(c Config) float64 {
	bigBoost := 1.0
	if len(p.BigIdx) > 0 && len(p.LittleIdx) > 0 {
		b := &p.Cores[p.BigIdx[0]]
		l := &p.Cores[p.LittleIdx[0]]
		// Throughput ratio on int work: freq ratio x CPI ratio.
		bigBoost = (float64(b.FreqMHz) / float64(l.FreqMHz)) * (l.CPIIntALU / b.CPIIntALU)
	}
	return float64(c.Little) + bigBoost*float64(c.Big)
}

// ConfigsByCapability returns config ids sorted by ascending capability,
// tie-broken by fewer big cores then by id (a deterministic "ladder").
func (p *Platform) ConfigsByCapability() []int {
	ids := make([]int, p.NumConfigs())
	for i := range ids {
		ids[i] = i
	}
	// Insertion sort: n is tiny (24) and this avoids importing sort for a
	// custom multi-key comparison.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			a, b := p.ConfigFromID(ids[j-1]), p.ConfigFromID(ids[j])
			ca, cb := p.Capability(a), p.Capability(b)
			swap := false
			if ca > cb {
				swap = true
			} else if ca == cb && a.Big > b.Big {
				swap = true
			} else if ca == cb && a.Big == b.Big && ids[j-1] > ids[j] {
				swap = true
			}
			if !swap {
				break
			}
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	return ids
}

package hw

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseConfig parses the paper's xLyB notation ("2L3B", case-insensitive)
// back into a Config. It accepts exactly the format Config.String emits.
func ParseConfig(s string) (Config, error) {
	up := strings.ToUpper(strings.TrimSpace(s))
	li := strings.IndexByte(up, 'L')
	if li <= 0 || !strings.HasSuffix(up, "B") {
		return Config{}, fmt.Errorf("hw: config %q is not of the form <n>L<m>B", s)
	}
	l, err := strconv.Atoi(up[:li])
	if err != nil {
		return Config{}, fmt.Errorf("hw: config %q: bad LITTLE count: %w", s, err)
	}
	b, err := strconv.Atoi(up[li+1 : len(up)-1])
	if err != nil {
		return Config{}, fmt.Errorf("hw: config %q: bad big count: %w", s, err)
	}
	c := Config{Little: l, Big: b}
	if c.Cores() == 0 || l < 0 || b < 0 {
		return Config{}, fmt.Errorf("hw: config %q has no active cores", s)
	}
	return c, nil
}

// ByName returns a fresh instance of a built-in platform ("odroid-xu4",
// "jetson-tk1").
func ByName(name string) (*Platform, error) {
	mk, ok := Platforms()[name]
	if !ok {
		var have []string
		for n := range Platforms() {
			have = append(have, n)
		}
		return nil, fmt.Errorf("hw: unknown platform %q (have %v)", name, have)
	}
	return mk(), nil
}

package hw

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ParseConfig parses the paper's xLyB notation ("2L3B", case-insensitive)
// back into a Config. It accepts exactly the format Config.String emits.
func ParseConfig(s string) (Config, error) {
	up := strings.ToUpper(strings.TrimSpace(s))
	li := strings.IndexByte(up, 'L')
	if li <= 0 || !strings.HasSuffix(up, "B") {
		return Config{}, fmt.Errorf("hw: config %q is not of the form <n>L<m>B", s)
	}
	l, err := strconv.Atoi(up[:li])
	if err != nil {
		return Config{}, fmt.Errorf("hw: config %q: bad LITTLE count: %w", s, err)
	}
	b, err := strconv.Atoi(up[li+1 : len(up)-1])
	if err != nil {
		return Config{}, fmt.Errorf("hw: config %q: bad big count: %w", s, err)
	}
	c := Config{Little: l, Big: b}
	if c.Cores() == 0 || l < 0 || b < 0 {
		return Config{}, fmt.Errorf("hw: config %q has no active cores", s)
	}
	return c, nil
}

// ByName returns a fresh instance of a platform: a built-in board
// ("odroid-xu4", "jetson-tk1") or a parametric zoo machine named by its
// canonical "zoo:..." form (see PlatformParams). Because zoo names encode
// every parameter, equal names always denote identical platforms.
func ByName(name string) (*Platform, error) {
	if mk, ok := Platforms()[name]; ok {
		return mk(), nil
	}
	if IsZooName(name) {
		pp, err := ParsePlatformParams(name)
		if err != nil {
			return nil, err
		}
		return pp.Platform()
	}
	return nil, fmt.Errorf("hw: unknown platform %q (have %v or zoo:<L>L<B>B:l<MHz>@<blend>:b<MHz>@<blend>)",
		name, PlatformNames())
}

// PlatformNames lists the built-in platform names, sorted.
func PlatformNames() []string {
	var names []string
	for n := range Platforms() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

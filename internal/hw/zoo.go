package hw

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// The platform zoo generalizes the two measured boards into a parametric
// family of big.LITTLE machines: variable cluster sizes, cluster clock
// rates (DVFS operating points), and cost tables linearly interpolated
// between the calibrated Cortex-A7 and Cortex-A15 models.
//
// A zoo platform is identified entirely by its canonical name
// ("zoo:<L>L<B>B:l<MHz>@<blend>:b<MHz>@<blend>"), so the name alone
// reconstructs the machine in any process. That property is load-bearing:
// campaign job keys hash the platform *name*, and the content-addressed
// result store is only sound if equal names imply identical platforms.

// Bounds on zoo parameters. Counts above 16 per cluster or clocks outside
// the embedded big.LITTLE envelope would leave the regime the cost tables
// were calibrated for.
const (
	MaxZooCores  = 16
	MinZooMHz    = 200
	MaxZooMHz    = 4000
	zooNamePfx   = "zoo:"
	blendDecimal = 100 // blends are quantized to 1/100 steps for round-trip
)

// PlatformParams describes one zoo platform. Blend selects the cluster's
// cost/power table: 0 is the calibrated Cortex-A7, 1 the Cortex-A15, and
// intermediate values interpolate linearly (a "medium" core). Blends are
// quantized to 0.01 steps so that String/ParsePlatformParams round-trip
// exactly.
type PlatformParams struct {
	Little int `json:"little"`
	Big    int `json:"big"`

	LittleMHz int `json:"little_mhz"`
	BigMHz    int `json:"big_mhz"`

	LittleBlend float64 `json:"little_blend"` // default 0 (pure A7)
	BigBlend    float64 `json:"big_blend"`    // default 1 (pure A15)
}

// Canon returns the canonical form: zero clock rates are filled with the
// Odroid defaults (1400/2000 MHz) and blends are quantized. Blends are
// otherwise taken as given — 0 is a legal value for a big cluster (an
// all-A7-table machine) — so start from DefaultZooParams for the
// conventional A7/A15 split.
func (pp PlatformParams) Canon() PlatformParams {
	if pp.LittleMHz == 0 {
		pp.LittleMHz = 1400
	}
	if pp.BigMHz == 0 {
		pp.BigMHz = 2000
	}
	pp.LittleBlend = quantBlend(pp.LittleBlend)
	pp.BigBlend = quantBlend(pp.BigBlend)
	return pp
}

// DefaultZooParams is a canonical starting point: an Odroid-shaped 4L4B
// board with pure A7 LITTLE and pure A15 big clusters.
func DefaultZooParams() PlatformParams {
	return PlatformParams{Little: 4, Big: 4, LittleMHz: 1400, BigMHz: 2000, LittleBlend: 0, BigBlend: 1}
}

func quantBlend(b float64) float64 {
	return math.Round(b*blendDecimal) / blendDecimal
}

func fmtBlend(b float64) string {
	return strconv.FormatFloat(b, 'f', 2, 64)
}

// Validate reports whether the (canonicalized) parameters describe a
// buildable machine.
func (pp PlatformParams) Validate() error {
	c := pp.Canon()
	if c.Little < 0 || c.Big < 0 || c.Little > MaxZooCores || c.Big > MaxZooCores {
		return fmt.Errorf("hw: zoo cluster sizes %dL%dB out of range [0, %d]", c.Little, c.Big, MaxZooCores)
	}
	if c.Little+c.Big == 0 {
		return fmt.Errorf("hw: zoo platform needs at least one core")
	}
	for _, mhz := range []int{c.LittleMHz, c.BigMHz} {
		if mhz < MinZooMHz || mhz > MaxZooMHz {
			return fmt.Errorf("hw: zoo clock %d MHz out of range [%d, %d]", mhz, MinZooMHz, MaxZooMHz)
		}
	}
	for _, b := range []float64{c.LittleBlend, c.BigBlend} {
		if b < 0 || b > 1 {
			return fmt.Errorf("hw: zoo blend %.2f out of range [0, 1]", b)
		}
	}
	return nil
}

// String renders the canonical zoo name, e.g. "zoo:2L4B:l1000@0.00:b1800@1.00".
func (pp PlatformParams) String() string {
	c := pp.Canon()
	return fmt.Sprintf("%s%dL%dB:l%d@%s:b%d@%s",
		zooNamePfx, c.Little, c.Big,
		c.LittleMHz, fmtBlend(c.LittleBlend),
		c.BigMHz, fmtBlend(c.BigBlend))
}

// IsZooName reports whether name is in the zoo namespace.
func IsZooName(name string) bool { return strings.HasPrefix(name, zooNamePfx) }

// ParsePlatformParams parses a canonical zoo name back into parameters.
// It accepts exactly the format String emits.
func ParsePlatformParams(name string) (PlatformParams, error) {
	var pp PlatformParams
	if !IsZooName(name) {
		return pp, fmt.Errorf("hw: %q is not a zoo platform name (want %q prefix)", name, zooNamePfx)
	}
	parts := strings.Split(strings.TrimPrefix(name, zooNamePfx), ":")
	if len(parts) != 3 {
		return pp, fmt.Errorf("hw: zoo name %q: want zoo:<L>L<B>B:l<MHz>@<blend>:b<MHz>@<blend>", name)
	}
	cfg, err := ParseConfig(parts[0])
	if err != nil {
		return pp, fmt.Errorf("hw: zoo name %q: %w", name, err)
	}
	pp.Little, pp.Big = cfg.Little, cfg.Big
	if pp.LittleMHz, pp.LittleBlend, err = parseCluster(parts[1], 'l'); err != nil {
		return PlatformParams{}, fmt.Errorf("hw: zoo name %q: %w", name, err)
	}
	if pp.BigMHz, pp.BigBlend, err = parseCluster(parts[2], 'b'); err != nil {
		return PlatformParams{}, fmt.Errorf("hw: zoo name %q: %w", name, err)
	}
	if err := pp.Validate(); err != nil {
		return PlatformParams{}, err
	}
	// Only canonical names are accepted: job keys hash the name string, so
	// synonymous spellings of one machine ("l0" canon-filled to 1400 MHz,
	// "b@0.004" quantized to "b@0.00") would fragment the result store and
	// mislabel results. Canon is therefore required, not applied.
	if got := pp.String(); got != name {
		return PlatformParams{}, fmt.Errorf("hw: zoo name %q is not canonical (want %q)", name, got)
	}
	return pp, nil
}

// parseCluster parses one "<tag><MHz>@<blend>" segment.
func parseCluster(s string, tag byte) (mhz int, blend float64, err error) {
	if len(s) == 0 || s[0] != tag {
		return 0, 0, fmt.Errorf("cluster %q: want %q prefix", s, string(tag))
	}
	body := s[1:]
	at := strings.IndexByte(body, '@')
	if at < 0 {
		return 0, 0, fmt.Errorf("cluster %q: missing @<blend>", s)
	}
	if mhz, err = strconv.Atoi(body[:at]); err != nil {
		return 0, 0, fmt.Errorf("cluster %q: bad clock: %w", s, err)
	}
	if blend, err = strconv.ParseFloat(body[at+1:], 64); err != nil {
		return 0, 0, fmt.Errorf("cluster %q: bad blend: %w", s, err)
	}
	return mhz, quantBlend(blend), nil
}

// lerp interpolates a scalar model parameter between the A7 and A15 tables.
func lerp(a, b, t float64) float64 { return a + (b-a)*t }

// blendCore builds a core whose cost/power table sits at fraction t between
// the calibrated Cortex-A7 (t=0) and Cortex-A15 (t=1) models, clocked at
// freqMHz, tagged with the cluster's scheduling type.
func blendCore(typ CoreType, freqMHz int, t float64) CoreSpec {
	a, b := cortexA7(freqMHz), cortexA15(freqMHz)
	return CoreSpec{
		Type:          typ,
		FreqMHz:       freqMHz,
		CPIIntALU:     lerp(a.CPIIntALU, b.CPIIntALU, t),
		CPIFPALU:      lerp(a.CPIFPALU, b.CPIFPALU, t),
		CPIMem:        lerp(a.CPIMem, b.CPIMem, t),
		CPIBranch:     lerp(a.CPIBranch, b.CPIBranch, t),
		CPICall:       lerp(a.CPICall, b.CPICall, t),
		L1HitCycles:   lerp(a.L1HitCycles, b.L1HitCycles, t),
		L2HitCycles:   lerp(a.L2HitCycles, b.L2HitCycles, t),
		IdleWatts:     lerp(a.IdleWatts, b.IdleWatts, t),
		ActiveWatts:   lerp(a.ActiveWatts, b.ActiveWatts, t),
		FPExtraWatts:  lerp(a.FPExtraWatts, b.FPExtraWatts, t),
		MemExtraWatts: lerp(a.MemExtraWatts, b.MemExtraWatts, t),
	}
}

// l2KB maps a blend to the cluster's L2 capacity: interpolated between the
// LITTLE (512 KB) and big (2048 KB) clusters, then snapped to the nearest
// power of two — the simulator's set-associative cache model requires a
// power-of-two set count.
func l2KB(blend float64) int {
	kb := lerp(512, 2048, blend)
	p := 512
	for p*2 <= 2048 && float64(p*2)-kb < kb-float64(p) {
		p *= 2
	}
	return p
}

// Platform materializes the zoo machine. The cache geometry follows the
// Odroid XU4; per-cluster L2 capacity interpolates between the LITTLE
// (512 KB) and big (2048 KB) clusters with the blend, and uncore power
// scales linearly with core count (0.25 W board + 12.5 mW per core, which
// reproduces the XU4's 0.35 W at 8 cores).
func (pp PlatformParams) Platform() (*Platform, error) {
	if err := pp.Validate(); err != nil {
		return nil, err
	}
	c := pp.Canon()
	p := &Platform{
		Name:      c.String(),
		L1KB:      32,
		L1Ways:    4,
		LineBytes: 64,
		L2KB: map[CoreType]int{
			Little: l2KB(c.LittleBlend),
			Big:    l2KB(c.BigBlend),
		},
		L2Ways:             16,
		DRAMLatencyNs:      100,
		SwitchLatencyUs:    40,
		MigrationLatencyUs: 12,
		BasePowerWatts:     0.25 + 0.0125*float64(c.Little+c.Big),
	}
	for i := 0; i < c.Little; i++ {
		p.LittleIdx = append(p.LittleIdx, len(p.Cores))
		p.Cores = append(p.Cores, blendCore(Little, c.LittleMHz, c.LittleBlend))
	}
	for i := 0; i < c.Big; i++ {
		p.BigIdx = append(p.BigIdx, len(p.Cores))
		p.Cores = append(p.Cores, blendCore(Big, c.BigMHz, c.BigBlend))
	}
	return p, nil
}

package hw

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseConfigRoundTrip(t *testing.T) {
	for _, c := range []Config{
		{Little: 0, Big: 1}, {Little: 1, Big: 0}, {Little: 4, Big: 4},
		{Little: 2, Big: 3}, {Little: 16, Big: 1},
	} {
		got, err := ParseConfig(c.String())
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", c.String(), err)
		}
		if got != c {
			t.Errorf("ParseConfig(%q) = %v, want %v", c.String(), got, c)
		}
	}
	// Case-insensitivity and whitespace, as documented.
	if got, err := ParseConfig("  2l3b "); err != nil || (got != Config{Little: 2, Big: 3}) {
		t.Errorf("ParseConfig lenient form = %v, %v", got, err)
	}
}

func TestParseConfigMalformed(t *testing.T) {
	for _, s := range []string{
		"", "L", "B", "LB", "2L", "3B", "2L3", "xLyB", "2.5L3B",
		"0L0B", "-1L2B", "2L-3B", "2 L 3 B", "2L3B4",
	} {
		if c, err := ParseConfig(s); err == nil {
			t.Errorf("ParseConfig(%q) = %v, want error", s, c)
		}
	}
}

func TestPlatformParamsRoundTrip(t *testing.T) {
	cases := []PlatformParams{
		DefaultZooParams(),
		{Little: 0, Big: 8, LittleMHz: 1000, BigMHz: 2400, BigBlend: 1},
		{Little: 6, Big: 0, LittleMHz: 600, BigMHz: 2000, LittleBlend: 0.25},
		{Little: 2, Big: 2, LittleMHz: 800, BigMHz: 1600, LittleBlend: 0.1, BigBlend: 0.9},
	}
	for _, pp := range cases {
		name := pp.String()
		got, err := ParsePlatformParams(name)
		if err != nil {
			t.Fatalf("ParsePlatformParams(%q): %v", name, err)
		}
		if got != pp.Canon() {
			t.Errorf("round-trip %q: got %+v, want %+v", name, got, pp.Canon())
		}
		if got.String() != name {
			t.Errorf("re-print of %q = %q", name, got.String())
		}
	}
}

func TestPlatformParamsMalformed(t *testing.T) {
	for _, s := range []string{
		"zoo:",                            // empty body
		"zoo:4L4B",                        // missing clusters
		"zoo:4L4B:l1400@0.00",             // one cluster only
		"zoo:4L4B:b2000@1.00:l1400@0.00",  // swapped cluster tags
		"zoo:4L4B:l1400:b2000@1.00",       // missing blend
		"zoo:4L4B:l@0.0:b2000@1.00",       // missing clock
		"zoo:4L4B:lfast@0.0:b2000@1.00",   // non-numeric clock
		"zoo:4L4B:l1400@x:b2000@1.00",     // non-numeric blend
		"zoo:4L4B:l1400@0.00:b2000@1.50",  // blend out of range
		"zoo:4L4B:l50@0.00:b2000@1.00",    // clock below range
		"zoo:4L4B:l1400@0.00:b9000@1.00",  // clock above range
		"zoo:0L0B:l1400@0.00:b2000@1.00",  // no cores
		"zoo:17L4B:l1400@0.00:b2000@1.00", // cluster too large
		"odroid-xu4",                      // not a zoo name
		// Non-canonical spellings of a valid machine are rejected: job keys
		// hash the name, so synonyms would fragment the result store.
		"zoo:4L4B:l0@0.00:b2000@1.00",     // zero clock (canon would fill 1400)
		"zoo:4L4B:l1400@0.004:b2000@1.00", // blend quantizes to 0.00
		"zoo:4L4B:l1400@0.1:b2000@1.00",   // blend needs two decimals
		"zoo:4L4B:l1400@0.00:b2000@1",     // likewise
	} {
		if pp, err := ParsePlatformParams(s); err == nil {
			t.Errorf("ParsePlatformParams(%q) = %+v, want error", s, pp)
		}
	}
}

func TestByNameZoo(t *testing.T) {
	pp := PlatformParams{Little: 2, Big: 4, LittleMHz: 1000, BigMHz: 1800, BigBlend: 0.75}
	p, err := ByName(pp.String())
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != pp.String() {
		t.Errorf("platform name %q, want %q", p.Name, pp.String())
	}
	if p.MaxLittle() != 2 || p.MaxBig() != 4 {
		t.Errorf("topology %dL%dB, want 2L4B", p.MaxLittle(), p.MaxBig())
	}
	// Same name twice must build an identical machine (cache-key soundness).
	q, err := ByName(pp.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Error("two builds of the same zoo name differ")
	}

	if _, err := ByName("no-such-board"); err == nil || !strings.Contains(err.Error(), "zoo:") {
		t.Errorf("unknown-platform error should list choices and the zoo form, got %v", err)
	}
	if _, err := ByName("zoo:bogus"); err == nil {
		t.Error("malformed zoo name should error")
	}
}

func TestZooBlendInterpolation(t *testing.T) {
	mk := func(blend float64) *Platform {
		p, err := PlatformParams{Little: 1, Big: 1, LittleMHz: 1400, BigMHz: 1400,
			LittleBlend: blend, BigBlend: blend}.Platform()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a7, mid, a15 := mk(0), mk(0.5), mk(1)
	// Endpoints reproduce the calibrated tables.
	if got, want := a7.Cores[0].CPIIntALU, cortexA7(1400).CPIIntALU; got != want {
		t.Errorf("blend 0 CPIIntALU = %v, want %v", got, want)
	}
	if got, want := a15.Cores[1].CPIFPALU, cortexA15(1400).CPIFPALU; got != want {
		t.Errorf("blend 1 CPIFPALU = %v, want %v", got, want)
	}
	// Midpoint sits strictly between on a monotone axis.
	if !(mid.Cores[0].ActiveWatts > a7.Cores[0].ActiveWatts && mid.Cores[0].ActiveWatts < a15.Cores[1].ActiveWatts) {
		t.Errorf("blend 0.5 ActiveWatts %v not between %v and %v",
			mid.Cores[0].ActiveWatts, a7.Cores[0].ActiveWatts, a15.Cores[1].ActiveWatts)
	}
}

package hw

import (
	"testing"
	"testing/quick"
)

func TestXU4Shape(t *testing.T) {
	p := OdroidXU4()
	if p.MaxLittle() != 4 || p.MaxBig() != 4 {
		t.Fatalf("core counts: %dL %dB", p.MaxLittle(), p.MaxBig())
	}
	if p.NumConfigs() != 24 {
		t.Fatalf("NumConfigs = %d, want 24 (paper: 5x5-1)", p.NumConfigs())
	}
	if len(p.Cores) != 8 {
		t.Fatalf("cores = %d", len(p.Cores))
	}
	for _, i := range p.LittleIdx {
		if p.Cores[i].Type != Little {
			t.Errorf("core %d should be LITTLE", i)
		}
	}
	for _, i := range p.BigIdx {
		if p.Cores[i].Type != Big {
			t.Errorf("core %d should be big", i)
		}
	}
	if p.Cores[p.BigIdx[0]].FreqMHz != 2000 || p.Cores[p.LittleIdx[0]].FreqMHz != 1400 {
		t.Error("paper frequencies: big 2.0GHz, LITTLE 1.4GHz")
	}
}

func TestConfigIDRoundTrip(t *testing.T) {
	p := OdroidXU4()
	seen := map[int]bool{}
	for l := 0; l <= 4; l++ {
		for b := 0; b <= 4; b++ {
			if l == 0 && b == 0 {
				continue
			}
			c := Config{Little: l, Big: b}
			if !c.Valid(4, 4) {
				t.Fatalf("%v should be valid", c)
			}
			id := p.ConfigID(c)
			if id < 0 || id >= p.NumConfigs() {
				t.Fatalf("%v id=%d out of range", c, id)
			}
			if seen[id] {
				t.Fatalf("duplicate id %d", id)
			}
			seen[id] = true
			if got := p.ConfigFromID(id); got != c {
				t.Fatalf("round trip %v -> %d -> %v", c, id, got)
			}
		}
	}
	if (Config{}).Valid(4, 4) {
		t.Error("0L0B must be invalid")
	}
	if (Config{Little: 5}).Valid(4, 4) {
		t.Error("5L0B must be invalid on XU4")
	}
}

func TestConfigIDRoundTripQuick(t *testing.T) {
	p := OdroidXU4()
	f := func(id uint8) bool {
		i := int(id) % p.NumConfigs()
		c := p.ConfigFromID(i)
		return c.Valid(p.MaxLittle(), p.MaxBig()) && p.ConfigID(c) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigsEnumeration(t *testing.T) {
	p := OdroidXU4()
	cs := p.Configs()
	if len(cs) != 24 {
		t.Fatalf("len = %d", len(cs))
	}
	if cs[0].String() != "0L1B" {
		t.Errorf("first config %v, want 0L1B", cs[0])
	}
	last := cs[len(cs)-1]
	if last.String() != "4L4B" {
		t.Errorf("last config %v, want 4L4B", last)
	}
}

func TestActiveCores(t *testing.T) {
	p := OdroidXU4()
	cores := p.ActiveCores(Config{Little: 2, Big: 1})
	if len(cores) != 3 {
		t.Fatalf("active = %v", cores)
	}
	if p.Cores[cores[0]].Type != Little || p.Cores[cores[2]].Type != Big {
		t.Errorf("ordering wrong: %v", cores)
	}
	// Determinism: the same prefix of cores is always used.
	again := p.ActiveCores(Config{Little: 2, Big: 1})
	for i := range cores {
		if cores[i] != again[i] {
			t.Fatal("ActiveCores not deterministic")
		}
	}
	if n := len(p.ActiveCores(p.AllOn())); n != 8 {
		t.Errorf("AllOn active = %d", n)
	}
}

func TestCapabilityMonotone(t *testing.T) {
	p := OdroidXU4()
	// Adding a core of either type strictly increases capability.
	base := Config{Little: 1, Big: 1}
	if !(p.Capability(Config{Little: 2, Big: 1}) > p.Capability(base)) {
		t.Error("adding LITTLE should increase capability")
	}
	if !(p.Capability(Config{Little: 1, Big: 2}) > p.Capability(base)) {
		t.Error("adding big should increase capability")
	}
	// A big core is worth more than a LITTLE one.
	if !(p.Capability(Config{Big: 1}) > p.Capability(Config{Little: 1})) {
		t.Error("big must outrank LITTLE")
	}
}

func TestConfigsByCapabilityLadder(t *testing.T) {
	p := OdroidXU4()
	ladder := p.ConfigsByCapability()
	if len(ladder) != 24 {
		t.Fatalf("ladder size %d", len(ladder))
	}
	for i := 1; i < len(ladder); i++ {
		ca := p.Capability(p.ConfigFromID(ladder[i-1]))
		cb := p.Capability(p.ConfigFromID(ladder[i]))
		if ca > cb {
			t.Fatalf("ladder not ascending at %d: %v then %v", i, ca, cb)
		}
	}
	if first := p.ConfigFromID(ladder[0]); first.String() != "1L0B" {
		t.Errorf("weakest rung %v, want 1L0B", first)
	}
	if last := p.ConfigFromID(ladder[23]); last.String() != "4L4B" {
		t.Errorf("strongest rung %v, want 4L4B", last)
	}
}

func TestPowerModelOrdering(t *testing.T) {
	p := OdroidXU4()
	big := &p.Cores[p.BigIdx[0]]
	little := &p.Cores[p.LittleIdx[0]]
	intMix := BurstMix{}
	fpMix := BurstMix{FPFrac: 1}
	if !(big.BusyPower(intMix) > little.BusyPower(intMix)) {
		t.Error("big must draw more power than LITTLE")
	}
	if !(big.BusyPower(fpMix) > big.BusyPower(intMix)) {
		t.Error("FP work must draw more power")
	}
	if !(big.BusyPower(intMix) > big.IdleWatts) {
		t.Error("busy must exceed idle")
	}
	// Published shape: A15 burns roughly 4-6x an A7 on the same work.
	ratio := big.BusyPower(intMix) / little.BusyPower(intMix)
	if ratio < 3 || ratio > 8 {
		t.Errorf("big/LITTLE power ratio = %v, want within [3, 8]", ratio)
	}
}

func TestIdleAndMaxConfigPower(t *testing.T) {
	p := OdroidXU4()
	if !(p.IdleConfigPower(Config{Big: 4, Little: 4}) > p.IdleConfigPower(Config{Little: 1})) {
		t.Error("more cores, more idle power")
	}
	for _, c := range p.Configs() {
		if !(p.MaxConfigPower(c) > p.IdleConfigPower(c)) {
			t.Errorf("%v: max <= idle", c)
		}
	}
	if got := p.IdleConfigPower(Config{Little: 1}); got <= p.BasePowerWatts {
		t.Errorf("idle power %v must exceed base %v", got, p.BasePowerWatts)
	}
}

func TestBigFasterOnIntAndFP(t *testing.T) {
	p := OdroidXU4()
	big := &p.Cores[p.BigIdx[0]]
	little := &p.Cores[p.LittleIdx[0]]
	// Time per int-ALU op in ns.
	bigNs := big.CPIIntALU / big.CyclesPerSecond() * 1e9
	littleNs := little.CPIIntALU / little.CyclesPerSecond() * 1e9
	if !(bigNs < littleNs) {
		t.Error("big must be faster on int work")
	}
	speedup := littleNs / bigNs
	if speedup < 1.5 || speedup > 4 {
		t.Errorf("big int speedup = %v, want in [1.5, 4] (GTS-era figures ~1.9x)", speedup)
	}
	bigFP := big.CPIFPALU / big.CyclesPerSecond()
	littleFP := little.CPIFPALU / little.CyclesPerSecond()
	if littleFP/bigFP < speedup {
		t.Error("FP gap must be at least as large as int gap")
	}
}

func TestDRAMCycles(t *testing.T) {
	p := OdroidXU4()
	big := &p.Cores[p.BigIdx[0]]
	little := &p.Cores[p.LittleIdx[0]]
	// The same 100ns costs more cycles at the higher clock.
	if !(big.DRAMCycles(p.DRAMLatencyNs) > little.DRAMCycles(p.DRAMLatencyNs)) {
		t.Error("DRAM cycles must scale with frequency")
	}
	if got := big.DRAMCycles(100); got != 200 {
		t.Errorf("2GHz x 100ns = %v cycles, want 200", got)
	}
}

func TestTK1Shape(t *testing.T) {
	p := JetsonTK1()
	if p.MaxLittle() != 1 || p.MaxBig() != 4 {
		t.Fatalf("TK1 cores: %dL %dB", p.MaxLittle(), p.MaxBig())
	}
	if p.NumConfigs() != 9 {
		t.Errorf("TK1 NumConfigs = %d, want 9", p.NumConfigs())
	}
	if _, ok := Platforms()["jetson-tk1"]; !ok {
		t.Error("platform registry missing jetson-tk1")
	}
}

package lang

import (
	"strconv"
	"strings"
)

// Lex tokenizes an astc source string. Comments run from "//" to newline.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case isAlpha(c):
			start, l0, c0 := i, line, col
			for i < n && (isAlpha(src[i]) || isDigit(src[i])) {
				advance(1)
			}
			word := src[start:i]
			if k, ok := keywords[word]; ok {
				toks = append(toks, Token{Kind: k, Text: word, Line: l0, Col: c0})
			} else {
				toks = append(toks, Token{Kind: TIdent, Text: word, Line: l0, Col: c0})
			}
		case isDigit(c):
			start, l0, c0 := i, line, col
			isFloat := false
			for i < n && isDigit(src[i]) {
				advance(1)
			}
			if i < n && src[i] == '.' && i+1 < n && isDigit(src[i+1]) {
				isFloat = true
				advance(1)
				for i < n && isDigit(src[i]) {
					advance(1)
				}
			}
			if i < n && (src[i] == 'e' || src[i] == 'E') {
				j := i + 1
				if j < n && (src[j] == '+' || src[j] == '-') {
					j++
				}
				if j < n && isDigit(src[j]) {
					isFloat = true
					advance(j - i)
					for i < n && isDigit(src[i]) {
						advance(1)
					}
				}
			}
			text := src[start:i]
			if isFloat {
				f, err := strconv.ParseFloat(text, 64)
				if err != nil {
					return nil, errf(l0, c0, "bad float literal %q: %v", text, err)
				}
				toks = append(toks, Token{Kind: TFloatLit, Text: text, F: f, Line: l0, Col: c0})
			} else {
				v, err := strconv.ParseInt(text, 10, 64)
				if err != nil {
					return nil, errf(l0, c0, "bad int literal %q: %v", text, err)
				}
				toks = append(toks, Token{Kind: TIntLit, Text: text, Int: v, Line: l0, Col: c0})
			}
		default:
			l0, c0 := line, col
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			var k TokKind
			var txt string
			switch two {
			case "==":
				k, txt = TEq, two
			case "!=":
				k, txt = TNe, two
			case "<=":
				k, txt = TLe, two
			case ">=":
				k, txt = TGe, two
			case "&&":
				k, txt = TAndAnd, two
			case "||":
				k, txt = TOrOr, two
			}
			if txt != "" {
				advance(2)
				toks = append(toks, Token{Kind: k, Text: txt, Line: l0, Col: c0})
				continue
			}
			switch c {
			case '(':
				k = TLParen
			case ')':
				k = TRParen
			case '{':
				k = TLBrace
			case '}':
				k = TRBrace
			case '[':
				k = TLBrack
			case ']':
				k = TRBrack
			case ',':
				k = TComma
			case ';':
				k = TSemi
			case '=':
				k = TAssign
			case '<':
				k = TLt
			case '>':
				k = TGt
			case '+':
				k = TPlus
			case '-':
				k = TMinus
			case '*':
				k = TStar
			case '/':
				k = TSlash
			case '%':
				k = TPercent
			case '!':
				k = TBang
			default:
				return nil, errf(l0, c0, "unexpected character %q", string(c))
			}
			advance(1)
			toks = append(toks, Token{Kind: k, Text: string(c), Line: l0, Col: c0})
		}
	}
	toks = append(toks, Token{Kind: TEOF, Line: line, Col: col})
	return toks, nil
}

func isAlpha(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// FormatTokens renders a token stream, used in tests and debugging.
func FormatTokens(toks []Token) string {
	var sb strings.Builder
	for i, t := range toks {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if t.Kind == TIdent || t.Kind == TIntLit || t.Kind == TFloatLit {
			sb.WriteString(t.Text)
		} else {
			sb.WriteString(t.Kind.String())
		}
	}
	return sb.String()
}

package lang

import (
	"strings"
	"testing"
	"testing/quick"
)

func lexKinds(t *testing.T, src string) []TokKind {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	kinds := make([]TokKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	return kinds
}

func TestLexBasics(t *testing.T) {
	kinds := lexKinds(t, "func main() { var x int = 1 + 2; }")
	want := []TokKind{TFunc, TIdent, TLParen, TRParen, TLBrace, TVar, TIdent, TKwInt,
		TAssign, TIntLit, TPlus, TIntLit, TSemi, TRBrace, TEOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	kinds := lexKinds(t, "== != <= >= < > && || ! = + - * / %")
	want := []TokKind{TEq, TNe, TLe, TGe, TLt, TGt, TAndAnd, TOrOr, TBang, TAssign,
		TPlus, TMinus, TStar, TSlash, TPercent, TEOF}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("42 3.5 1e3 2.5e-2 7")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TIntLit || toks[0].Int != 42 {
		t.Errorf("tok0 = %+v", toks[0])
	}
	if toks[1].Kind != TFloatLit || toks[1].F != 3.5 {
		t.Errorf("tok1 = %+v", toks[1])
	}
	if toks[2].Kind != TFloatLit || toks[2].F != 1000 {
		t.Errorf("tok2 = %+v", toks[2])
	}
	if toks[3].Kind != TFloatLit || toks[3].F != 0.025 {
		t.Errorf("tok3 = %+v", toks[3])
	}
	if toks[4].Kind != TIntLit || toks[4].Int != 7 {
		t.Errorf("tok4 = %+v", toks[4])
	}
}

func TestLexComments(t *testing.T) {
	kinds := lexKinds(t, "x // a comment with = and func\ny")
	want := []TokKind{TIdent, TIdent, TEOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b\n\tc")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("b at %d:%d", toks[1].Line, toks[1].Col)
	}
	if toks[2].Line != 3 || toks[2].Col != 2 {
		t.Errorf("c at %d:%d", toks[2].Line, toks[2].Col)
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := Lex("iff format whiles for2 spawn")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if toks[i].Kind != TIdent {
			t.Errorf("token %d (%q) lexed as %v, want identifier", i, toks[i].Text, toks[i].Kind)
		}
	}
	if toks[4].Kind != TSpawn {
		t.Errorf("spawn lexed as %v", toks[4].Kind)
	}
}

func TestLexRejectsBadChars(t *testing.T) {
	for _, src := range []string{"a $ b", "x @", "\"string\"", "a & b", "a | b"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) accepted", src)
		}
	}
}

// Property: lexing never panics and always terminates with EOF for arbitrary
// printable input that contains no illegal characters.
func TestLexQuickNoPanics(t *testing.T) {
	alphabet := "abc123.,;(){}[]=<>!&|+-*/% \n\tfuncvarwhile"
	f := func(idx []uint8) bool {
		var sb strings.Builder
		for _, i := range idx {
			sb.WriteByte(alphabet[int(i)%len(alphabet)])
		}
		toks, err := Lex(sb.String())
		if err != nil {
			return true // rejected inputs are fine
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == TEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatTokens(t *testing.T) {
	toks, err := Lex("x = 1;")
	if err != nil {
		t.Fatal(err)
	}
	got := FormatTokens(toks)
	if !strings.Contains(got, "x") || !strings.Contains(got, "1") {
		t.Errorf("FormatTokens = %q", got)
	}
}

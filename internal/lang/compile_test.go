package lang

import (
	"strings"
	"testing"

	"astro/internal/ir"
)

func mustCompile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := Compile("test", src)
	if err != nil {
		t.Fatalf("Compile: %v\nsource:\n%s", err, src)
	}
	return m
}

func TestCompileMinimal(t *testing.T) {
	m := mustCompile(t, `func main() { }`)
	f := m.FuncByName("main")
	if f == nil {
		t.Fatal("main missing")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Implicit void return.
	term := f.Blocks[len(f.Blocks)-1].Terminator()
	if term.Op != ir.OpRet {
		t.Errorf("terminator %v", term.Op.Name())
	}
}

func TestCompileArithmeticAndLoop(t *testing.T) {
	m := mustCompile(t, `
func sum(n int) int {
	var s int = 0;
	var i int;
	for (i = 0; i < n; i = i + 1) {
		s = s + i;
	}
	return s;
}
func main() { var r int = sum(10); print_int(r); }
`)
	f := m.FuncByName("sum")
	info := ir.BuildCFG(f)
	if len(info.Loops) != 1 {
		t.Errorf("sum has %d loops, want 1", len(info.Loops))
	}
	c := ir.CountFunc(f)
	if c.IntALU == 0 || c.Ctrl == 0 {
		t.Errorf("counts: %+v", c)
	}
}

func TestCompileGlobalsMutexesBarriers(t *testing.T) {
	m := mustCompile(t, `
var counter int;
var table [128]float;
mutex m;
mutex rows[8];
barrier gate;

func worker(id int) {
	lock(m);
	counter = counter + 1;
	unlock(m);
	lock(rows[id % 8]);
	table[id] = float(id);
	unlock(rows[id % 8]);
	barrier_wait(gate);
}
func main() {
	barrier_init(gate, 4);
	var i int;
	for (i = 0; i < 4; i = i + 1) { spawn worker(i); }
	join();
}
`)
	if m.NumMutex != 9 {
		t.Errorf("NumMutex = %d, want 9", m.NumMutex)
	}
	if m.NumBarrier != 1 {
		t.Errorf("NumBarrier = %d, want 1", m.NumBarrier)
	}
	if len(m.Globals) != 2 || m.Globals[1].Size != 128 {
		t.Errorf("globals = %+v", m.Globals)
	}
	c := ir.CountFunc(m.FuncByName("worker"))
	if c.LockOps != 4 {
		t.Errorf("worker LockOps = %d, want 4", c.LockOps)
	}
	if c.Barriers != 1 {
		t.Errorf("worker Barriers = %d, want 1", c.Barriers)
	}
	mc := ir.CountFunc(m.FuncByName("main"))
	if mc.Call == 0 {
		t.Errorf("main should contain spawn (call class): %+v", mc)
	}
	if mc.Barriers != 1 { // join
		t.Errorf("main Barriers = %d, want 1 (join)", mc.Barriers)
	}
}

func TestCompileShortCircuit(t *testing.T) {
	m := mustCompile(t, `
func f(a int, b int) bool {
	return a > 0 && b > 0 || a < -10;
}
func main() { }
`)
	f := m.FuncByName("f")
	// Short-circuit lowering must produce branching control flow.
	if len(f.Blocks) < 5 {
		t.Errorf("expected >=5 blocks from short-circuit lowering, got %d", len(f.Blocks))
	}
}

func TestCompileRecursion(t *testing.T) {
	m := mustCompile(t, `
func fib(n int) int {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() { print_int(fib(10)); }
`)
	if m.FuncByName("fib") == nil {
		t.Fatal("fib missing")
	}
}

func TestCompileForwardReference(t *testing.T) {
	mustCompile(t, `
func main() { later(); }
func later() { }
`)
}

func TestCompileMathBuiltins(t *testing.T) {
	m := mustCompile(t, `
func main() {
	var x float = sqrt(2.0) + sin(1.0) * cos(0.5);
	x = exp(x) / log(x + 10.0);
	x = pow(x, 2.0) + fabs(-x) + floor(x);
	var n int = abs(-3) + min(1, 2) + max(3, 4);
	print_float(x);
	print_int(n);
}
`)
	c := ir.CountFunc(m.FuncByName("main"))
	if c.Lib < 10 {
		t.Errorf("Lib = %d, want >= 10", c.Lib)
	}
	if c.LibFPWork < 30 {
		t.Errorf("LibFPWork = %d, want >= 30", c.LibFPWork)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"undefined var", `func main() { x = 1; }`, "undefined variable"},
		{"undefined func", `func main() { frobnicate(); }`, "undefined function"},
		{"type mismatch assign", `func main() { var x int; x = 1.5; }`, "cannot assign"},
		{"type mismatch init", `func main() { var x int = 1.5; }`, "cannot initialize"},
		{"mixed arith", `func main() { var x float = 1.0 + 2; }`, "mismatched types"},
		{"bad condition", `func main() { if (1) { } }`, "must be bool"},
		{"while condition", `func main() { while (1.5) { } }`, "must be bool"},
		{"bad return void", `func f() int { return; } func main() { }`, "missing return value"},
		{"return from void", `func f() { return 1; } func main() { }`, "void function"},
		{"wrong arity", `func f(x int) { } func main() { f(); }`, "expects 1 arguments"},
		{"wrong arg type", `func f(x int) { } func main() { f(1.5); }`, "argument 1"},
		{"builtin arg type", `func main() { print_int(1.5); }`, "argument 1"},
		{"void as value", `func f() { } func main() { var x int = f(); }`, "used as value"},
		{"void builtin as value", `func main() { var x int = print_int(1); }`, "used as value"},
		{"redeclared", `func main() { var x int; var x int; }`, "redeclared"},
		{"dup global", `var g int; var g float; func main() { }`, "already declared"},
		{"dup func", `func f() { } func f() { } func main() { }`, "already declared"},
		{"shadow builtin", `func sqrt(x float) float { return x; } func main() { }`, "shadows a builtin"},
		{"break outside", `func main() { break; }`, "break outside loop"},
		{"continue outside", `func main() { continue; }`, "continue outside loop"},
		{"array as value", `func main() { var a [4]int; var x int = a; }`, "array"},
		{"assign to array", `func main() { var a [4]int; a = 3; }`, "cannot assign to array"},
		{"index scalar", `func main() { var x int; x = x[0]; }`, "not an array"},
		{"float index", `func main() { var a [4]int; a[1.5] = 0; }`, "index must be int"},
		{"global init", `var g int = 3; func main() { }`, "not allowed"},
		{"negate bool", `func main() { var b bool = -true; }`, "cannot negate"},
		{"not int", `func main() { var b bool = !3; }`, "requires bool"},
		{"and on ints", `func main() { var b bool = 1 && 2; }`, "requires bool"},
		{"rem float", `func main() { var x float = 1.0 % 2.0; }`, "not defined on float"},
		{"spawn nonvoid", `func f() int { return 1; } func main() { spawn f(); }`, "must return void"},
		{"spawn undefined", `func main() { spawn nothere(); }`, "undefined function"},
		{"expr stmt", `func main() { var x int; x + 1; }`, "must be a call"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile("t", c.src)
			if err == nil {
				t.Fatalf("compiled successfully, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q, want containing %q", err, c.want)
			}
		})
	}
}

func TestCompileAllBlocksTerminated(t *testing.T) {
	srcs := []string{
		`func f(n int) int { if (n > 0) { return 1; } return 0; } func main() { }`,
		`func f(n int) int { if (n > 0) { return 1; } else { return 2; } } func main() { }`,
		`func f(n int) float { while (n > 0) { n = n - 1; } } func main() { }`, // falls off: implicit 0.0
		`func main() { var i int; for (i = 0; i < 3; i = i + 1) { if (i == 1) { break; } continue; } }`,
	}
	for _, src := range srcs {
		m := mustCompile(t, src)
		for _, f := range m.Funcs {
			for _, blk := range f.Blocks {
				term := blk.Terminator()
				if term == nil || !term.Op.IsTerminator() {
					t.Errorf("unterminated block in %s:\n%s", f.Name, ir.DisassembleFunc(m, f))
				}
			}
		}
	}
}

func TestCompiledModuleAlwaysVerifies(t *testing.T) {
	// A grab bag of legal programs; Compile runs ir.Verify internally, but we
	// double-check here to keep the invariant explicit.
	srcs := []string{
		`func main() { print_int(tid()); }`,
		`var g [256]int; func main() { var i int; for (i = 0; i < 256; i = i + 1) { g[i] = i * i; } }`,
		`func main() { var x int = rand_int(100); sleep_ms(x); }`,
		`func pi() float { return 3.14159; } func main() { print_float(pi()); }`,
		`func main() { if (net_recv() > 0) { net_send(1); } }`,
	}
	for _, src := range srcs {
		m := mustCompile(t, src)
		if err := ir.Verify(m); err != nil {
			t.Errorf("Verify: %v\n%s", err, src)
		}
	}
}

func TestMustCompilePanicsOnBadSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic")
		}
	}()
	MustCompile("bad", "func {")
}

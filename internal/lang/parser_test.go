package lang

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\nsource:\n%s", err, src)
	}
	return f
}

func TestParseFuncAndGlobals(t *testing.T) {
	f := mustParse(t, `
var g int;
var buf [64]float;
mutex m;
mutex cells[16];
barrier gate;

func helper(x int, y float) float {
	return y;
}

func main(scale int, threads int) {
	var z float = helper(g, 1.5);
	z = z + 1.0;
}
`)
	if len(f.Funcs) != 2 || f.Funcs[0].Name != "helper" || f.Funcs[1].Name != "main" {
		t.Fatalf("funcs = %+v", f.Funcs)
	}
	if f.Funcs[0].Ret != TyFloat || len(f.Funcs[0].Params) != 2 {
		t.Errorf("helper signature wrong: %+v", f.Funcs[0])
	}
	if len(f.Globals) != 2 || f.Globals[1].ArraySize != 64 {
		t.Errorf("globals = %+v", f.Globals)
	}
	if len(f.Mutexes) != 2 || f.Mutexes[1].Count != 16 {
		t.Errorf("mutexes = %+v", f.Mutexes)
	}
	if len(f.Barriers) != 1 {
		t.Errorf("barriers = %+v", f.Barriers)
	}
}

func TestParsePrecedence(t *testing.T) {
	f := mustParse(t, `func f() int { return 1 + 2 * 3 == 7 && true || false; }`)
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	or, ok := ret.Value.(*BinaryExpr)
	if !ok || or.Op != BOr {
		t.Fatalf("top is %T, want || binary", ret.Value)
	}
	and, ok := or.X.(*BinaryExpr)
	if !ok || and.Op != BAnd {
		t.Fatalf("or.X is %T/%v, want &&", or.X, and.Op)
	}
	eq, ok := and.X.(*BinaryExpr)
	if !ok || eq.Op != BEq {
		t.Fatalf("and.X wrong")
	}
	add, ok := eq.X.(*BinaryExpr)
	if !ok || add.Op != BAdd {
		t.Fatalf("eq.X wrong")
	}
	mul, ok := add.Y.(*BinaryExpr)
	if !ok || mul.Op != BMul {
		t.Fatalf("add.Y is %T, want *", add.Y)
	}
}

func TestParseControlFlow(t *testing.T) {
	f := mustParse(t, `
func main() {
	var i int;
	for (i = 0; i < 10; i = i + 1) {
		if (i % 2 == 0) {
			continue;
		} else if (i > 7) {
			break;
		} else {
			print_int(i);
		}
	}
	while (i > 0) {
		i = i - 1;
	}
}
`)
	body := f.Funcs[0].Body
	forStmt, ok := body.Stmts[1].(*ForStmt)
	if !ok {
		t.Fatalf("stmt 1 is %T", body.Stmts[1])
	}
	if forStmt.Init == nil || forStmt.Cond == nil || forStmt.Post == nil || forStmt.Body == nil {
		t.Fatal("for parts missing")
	}
	ifStmt, ok := forStmt.Body.Stmts[0].(*IfStmt)
	if !ok {
		t.Fatalf("for body stmt is %T", forStmt.Body.Stmts[0])
	}
	if ifStmt.Else == nil {
		t.Fatal("else-if chain missing")
	}
	if _, ok := body.Stmts[2].(*WhileStmt); !ok {
		t.Fatalf("stmt 2 is %T", body.Stmts[2])
	}
}

func TestParseSpawn(t *testing.T) {
	f := mustParse(t, `
func worker(id int) { }
func main() {
	spawn worker(0);
	spawn worker(1);
	join();
}
`)
	main := f.Funcs[1].Body
	s0, ok := main.Stmts[0].(*SpawnStmt)
	if !ok || s0.Call.Name != "worker" {
		t.Fatalf("spawn parse: %+v", main.Stmts[0])
	}
	if _, ok := main.Stmts[2].(*ExprStmt); !ok {
		t.Fatalf("join statement is %T", main.Stmts[2])
	}
}

func TestParseIndexAndCast(t *testing.T) {
	f := mustParse(t, `
func main() {
	var a [10]float;
	var i int = 3;
	a[i] = float(i) * 2.0;
	i = int(a[i + 1]);
}
`)
	body := f.Funcs[0].Body
	asn, ok := body.Stmts[2].(*AssignStmt)
	if !ok {
		t.Fatalf("stmt 2 is %T", body.Stmts[2])
	}
	if _, ok := asn.Target.(*IndexExpr); !ok {
		t.Fatalf("target is %T", asn.Target)
	}
	mul := asn.Value.(*BinaryExpr)
	if _, ok := mul.X.(*CastExpr); !ok {
		t.Fatalf("cast missing: %T", mul.X)
	}
}

func TestParseForWithEmptyParts(t *testing.T) {
	mustParse(t, `func main() { var i int; for (;;) { break; } for (; i < 3;) { i = i + 1; } }`)
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"func", "expected identifier"},
		{"func f( { }", "expected"},
		{"func f() { var x int }", "expected"},
		{"func f() { x = ; }", "expected expression"},
		{"var a [0]int;", "positive"},
		{"mutex m[-1];", "expected"},
		{"func f() { spawn 3; }", "spawn requires a function call"},
		{"func f() { if (1) { } else 3 }", "expected"},
		{"3 + 4;", "expected declaration"},
		{"func f() { a[1 = 2; }", "expected"},
		{"func f() { return 1 }", "expected"},
		{"var a [10]int = 3;", "initializers"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q, want containing %q", c.src, err, c.want)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("func f() {\n  var x int\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	var e *Error
	if ok := errorAs(err, &e); !ok {
		t.Fatalf("error is %T", err)
	}
	if e.Line < 2 {
		t.Errorf("error line = %d, want >= 2", e.Line)
	}
}

func errorAs(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

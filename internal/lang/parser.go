package lang

import "fmt"

// Parse lexes and parses an astc source file.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.file()
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k TokKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errf(t.Line, t.Col, "expected %s, found %s", k, describe(t))
	}
	p.next()
	return t, nil
}

func describe(t Token) string {
	switch t.Kind {
	case TIdent:
		return fmt.Sprintf("identifier %q", t.Text)
	case TIntLit, TFloatLit:
		return fmt.Sprintf("literal %s", t.Text)
	case TEOF:
		return "end of file"
	default:
		return fmt.Sprintf("%q", t.Kind.String())
	}
}

func (p *parser) file() (*File, error) {
	f := &File{}
	for p.cur().Kind != TEOF {
		switch p.cur().Kind {
		case TFunc:
			fd, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fd)
		case TVar:
			vd, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			f.Globals = append(f.Globals, vd)
		case TMutex:
			t := p.next()
			name, err := p.expect(TIdent)
			if err != nil {
				return nil, err
			}
			count := int64(1)
			if p.accept(TLBrack) {
				szTok, err := p.expect(TIntLit)
				if err != nil {
					return nil, err
				}
				count = szTok.Int
				if count <= 0 {
					return nil, errf(szTok.Line, szTok.Col, "mutex array size must be positive")
				}
				if _, err := p.expect(TRBrack); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(TSemi); err != nil {
				return nil, err
			}
			f.Mutexes = append(f.Mutexes, &MutexDecl{Name: name.Text, Count: count, Line: t.Line})
		case TBarrier:
			t := p.next()
			name, err := p.expect(TIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TSemi); err != nil {
				return nil, err
			}
			f.Barriers = append(f.Barriers, &BarrierDecl{Name: name.Text, Line: t.Line})
		default:
			t := p.cur()
			return nil, errf(t.Line, t.Col, "expected declaration, found %s", describe(t))
		}
	}
	return f, nil
}

func (p *parser) typeName() (TypeName, error) {
	t := p.cur()
	switch t.Kind {
	case TKwInt:
		p.next()
		return TyInt, nil
	case TKwFloat:
		p.next()
		return TyFloat, nil
	case TKwBool:
		p.next()
		return TyBool, nil
	}
	return TyVoid, errf(t.Line, t.Col, "expected type, found %s", describe(t))
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	t, _ := p.expect(TFunc)
	name, err := p.expect(TIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TLParen); err != nil {
		return nil, err
	}
	var params []Param
	for p.cur().Kind != TRParen {
		if len(params) > 0 {
			if _, err := p.expect(TComma); err != nil {
				return nil, err
			}
		}
		pn, err := p.expect(TIdent)
		if err != nil {
			return nil, err
		}
		pt, err := p.typeName()
		if err != nil {
			return nil, err
		}
		params = append(params, Param{Name: pn.Text, Type: pt})
	}
	p.next() // consume )
	ret := TyVoid
	if k := p.cur().Kind; k == TKwInt || k == TKwFloat || k == TKwBool {
		ret, _ = p.typeName()
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name.Text, Params: params, Ret: ret, Body: body, Line: t.Line}, nil
}

// varDecl parses "var name type [= expr];" or "var name [N]type;".
func (p *parser) varDecl() (*VarDecl, error) {
	t, _ := p.expect(TVar)
	name, err := p.expect(TIdent)
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Name: name.Text, ArraySize: -1, Line: t.Line}
	if p.accept(TLBrack) {
		szTok, err := p.expect(TIntLit)
		if err != nil {
			return nil, err
		}
		if szTok.Int <= 0 {
			return nil, errf(szTok.Line, szTok.Col, "array size must be positive")
		}
		d.ArraySize = szTok.Int
		if _, err := p.expect(TRBrack); err != nil {
			return nil, err
		}
	}
	d.Type, err = p.typeName()
	if err != nil {
		return nil, err
	}
	if p.accept(TAssign) {
		if d.ArraySize >= 0 {
			return nil, errf(t.Line, t.Col, "array variables cannot have initializers")
		}
		d.Init, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TSemi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) block() (*BlockStmt, error) {
	t, err := p.expect(TLBrace)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Line: t.Line}
	for p.cur().Kind != TRBrace {
		if p.cur().Kind == TEOF {
			return nil, errf(t.Line, t.Col, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // consume }
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case TLBrace:
		return p.block()
	case TVar:
		d, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		return &VarStmt{Decl: d}, nil
	case TIf:
		p.next()
		if _, err := p.expect(TLParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TRParen); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els *BlockStmt
		if p.accept(TElse) {
			if p.cur().Kind == TIf {
				// else-if: wrap in a block
				s, err := p.stmt()
				if err != nil {
					return nil, err
				}
				els = &BlockStmt{Stmts: []Stmt{s}, Line: t.Line}
			} else {
				els, err = p.block()
				if err != nil {
					return nil, err
				}
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Line: t.Line}, nil
	case TWhile:
		p.next()
		if _, err := p.expect(TLParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TRParen); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: t.Line}, nil
	case TFor:
		p.next()
		if _, err := p.expect(TLParen); err != nil {
			return nil, err
		}
		f := &ForStmt{Line: t.Line}
		if p.cur().Kind != TSemi {
			a, err := p.simpleAssign()
			if err != nil {
				return nil, err
			}
			f.Init = a
		}
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
		if p.cur().Kind != TSemi {
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			f.Cond = cond
		}
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
		if p.cur().Kind != TRParen {
			a, err := p.simpleAssign()
			if err != nil {
				return nil, err
			}
			f.Post = a
		}
		if _, err := p.expect(TRParen); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		f.Body = body
		return f, nil
	case TReturn:
		p.next()
		r := &ReturnStmt{Line: t.Line}
		if p.cur().Kind != TSemi {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.Value = v
		}
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
		return r, nil
	case TBreak:
		p.next()
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.Line}, nil
	case TContinue:
		p.next()
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.Line}, nil
	case TSpawn:
		p.next()
		e, err := p.postfix()
		if err != nil {
			return nil, err
		}
		call, ok := e.(*CallExpr)
		if !ok {
			return nil, errf(t.Line, t.Col, "spawn requires a function call")
		}
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
		return &SpawnStmt{Call: call, Line: t.Line}, nil
	case TIdent:
		// Either an assignment or a call statement.
		if p.peek().Kind == TAssign || p.peek().Kind == TLBrack {
			a, err := p.simpleAssign()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TSemi); err != nil {
				return nil, err
			}
			return a, nil
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
		return &ExprStmt{X: e, Line: t.Line}, nil
	default:
		return nil, errf(t.Line, t.Col, "expected statement, found %s", describe(t))
	}
}

// simpleAssign parses "target = expr" without the trailing semicolon.
// Target is ident or ident[expr]. Note ident[expr] can also start an
// assignment like "a[i] = v" — we disambiguate by requiring '=' after the
// target.
func (p *parser) simpleAssign() (*AssignStmt, error) {
	t, err := p.expect(TIdent)
	if err != nil {
		return nil, err
	}
	var target Expr = &Ident{Name: t.Text, Line: t.Line, Col: t.Col}
	if p.accept(TLBrack) {
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TRBrack); err != nil {
			return nil, err
		}
		target = &IndexExpr{Name: t.Text, Index: idx, Line: t.Line, Col: t.Col}
	}
	if _, err := p.expect(TAssign); err != nil {
		return nil, err
	}
	v, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &AssignStmt{Target: target, Value: v, Line: t.Line}, nil
}

// Expression parsing by precedence climbing.

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	x, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TOrOr {
		t := p.next()
		y, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: BOr, X: x, Y: y, Line: t.Line, Col: t.Col}
	}
	return x, nil
}

func (p *parser) andExpr() (Expr, error) {
	x, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TAndAnd {
		t := p.next()
		y, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: BAnd, X: x, Y: y, Line: t.Line, Col: t.Col}
	}
	return x, nil
}

var cmpOps = map[TokKind]BinOp{
	TEq: BEq, TNe: BNe, TLt: BLt, TLe: BLe, TGt: BGt, TGe: BGe,
}

func (p *parser) cmpExpr() (Expr, error) {
	x, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := cmpOps[p.cur().Kind]
		if !ok {
			return x, nil
		}
		t := p.next()
		y, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: op, X: x, Y: y, Line: t.Line, Col: t.Col}
	}
}

func (p *parser) addExpr() (Expr, error) {
	x, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.cur().Kind {
		case TPlus:
			op = BAdd
		case TMinus:
			op = BSub
		default:
			return x, nil
		}
		t := p.next()
		y, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: op, X: x, Y: y, Line: t.Line, Col: t.Col}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	x, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.cur().Kind {
		case TStar:
			op = BMul
		case TSlash:
			op = BDiv
		case TPercent:
			op = BRem
		default:
			return x, nil
		}
		t := p.next()
		y, err := p.unary()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: op, X: x, Y: y, Line: t.Line, Col: t.Col}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TMinus:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: UNeg, X: x, Line: t.Line, Col: t.Col}, nil
	case TBang:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: UNot, X: x, Line: t.Line, Col: t.Col}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TIntLit:
		p.next()
		return &IntLit{Value: t.Int, Line: t.Line, Col: t.Col}, nil
	case TFloatLit:
		p.next()
		return &FloatLit{Value: t.F, Line: t.Line, Col: t.Col}, nil
	case TTrue:
		p.next()
		return &BoolLit{Value: true, Line: t.Line, Col: t.Col}, nil
	case TFalse:
		p.next()
		return &BoolLit{Value: false, Line: t.Line, Col: t.Col}, nil
	case TLParen:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TRParen); err != nil {
			return nil, err
		}
		return x, nil
	case TKwInt, TKwFloat:
		// Cast: int(expr) / float(expr).
		to := TyInt
		if t.Kind == TKwFloat {
			to = TyFloat
		}
		p.next()
		if _, err := p.expect(TLParen); err != nil {
			return nil, err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TRParen); err != nil {
			return nil, err
		}
		return &CastExpr{To: to, X: x, Line: t.Line, Col: t.Col}, nil
	case TIdent:
		p.next()
		switch p.cur().Kind {
		case TLParen:
			p.next()
			var args []Expr
			for p.cur().Kind != TRParen {
				if len(args) > 0 {
					if _, err := p.expect(TComma); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			p.next()
			return &CallExpr{Name: t.Text, Args: args, Line: t.Line, Col: t.Col}, nil
		case TLBrack:
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TRBrack); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: t.Text, Index: idx, Line: t.Line, Col: t.Col}, nil
		}
		return &Ident{Name: t.Text, Line: t.Line, Col: t.Col}, nil
	default:
		return nil, errf(t.Line, t.Col, "expected expression, found %s", describe(t))
	}
}

package lang

import (
	"fmt"

	"astro/internal/ir"
)

// Compile parses, type-checks and lowers an astc source string into an IR
// module named name. The resulting module always passes ir.Verify.
func Compile(name, src string) (*ir.Module, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileFile(name, file)
}

// MustCompile is Compile that panics on error, for registering embedded
// benchmark sources whose validity is covered by tests.
func MustCompile(name, src string) *ir.Module {
	m, err := Compile(name, src)
	if err != nil {
		panic(fmt.Sprintf("lang: compiling %s: %v", name, err))
	}
	return m
}

// CompileFile lowers a parsed file.
func CompileFile(name string, file *File) (*ir.Module, error) {
	c := &compiler{
		mod:      ir.NewModule(name),
		funcs:    map[string]*FuncDecl{},
		globals:  map[string]globalSym{},
		mutexes:  map[string]mutexSym{},
		barriers: map[string]int{},
	}
	if err := c.collect(file); err != nil {
		return nil, err
	}
	for _, fd := range file.Funcs {
		if err := c.lowerFunc(fd); err != nil {
			return nil, err
		}
	}
	if err := ir.Verify(c.mod); err != nil {
		return nil, fmt.Errorf("lang: internal error, lowered module invalid: %w", err)
	}
	return c.mod, nil
}

type globalSym struct {
	idx   int // index into mod.Globals
	ty    TypeName
	array bool
}

type mutexSym struct {
	base  int
	count int64
}

type compiler struct {
	mod      *ir.Module
	funcs    map[string]*FuncDecl
	globals  map[string]globalSym
	mutexes  map[string]mutexSym
	barriers map[string]int
}

func tyToIR(t TypeName) ir.Type {
	switch t {
	case TyInt, TyBool:
		return ir.TInt
	case TyFloat:
		return ir.TFloat
	}
	return ir.TVoid
}

func irToTy(t ir.Type) TypeName {
	switch t {
	case ir.TInt:
		return TyInt
	case ir.TFloat:
		return TyFloat
	}
	return TyVoid
}

// collect registers all module-level symbols and function signatures so that
// bodies can reference them in any order.
func (c *compiler) collect(file *File) error {
	taken := map[string]int{} // name -> line, across all namespaces
	claim := func(name string, line int) error {
		if prev, ok := taken[name]; ok {
			return errf(line, 1, "%q already declared at line %d", name, prev)
		}
		taken[name] = line
		return nil
	}
	for _, g := range file.Globals {
		if err := claim(g.Name, g.Line); err != nil {
			return err
		}
		if g.Init != nil {
			return errf(g.Line, 1, "global %q: initializers are not allowed at module scope; assign in main", g.Name)
		}
		size := g.ArraySize
		isArray := size >= 0
		if !isArray {
			size = 1
		}
		c.globals[g.Name] = globalSym{idx: len(c.mod.Globals), ty: g.Type, array: isArray}
		c.mod.Globals = append(c.mod.Globals, ir.GlobalDecl{Name: g.Name, Size: size, Elem: tyToIR(g.Type)})
	}
	for _, mx := range file.Mutexes {
		if err := claim(mx.Name, mx.Line); err != nil {
			return err
		}
		c.mutexes[mx.Name] = mutexSym{base: c.mod.NumMutex, count: mx.Count}
		c.mod.NumMutex += int(mx.Count)
	}
	for _, br := range file.Barriers {
		if err := claim(br.Name, br.Line); err != nil {
			return err
		}
		c.barriers[br.Name] = c.mod.NumBarrier
		c.mod.NumBarrier++
	}
	for _, fd := range file.Funcs {
		if err := claim(fd.Name, fd.Line); err != nil {
			return err
		}
		if _, isBuiltin := ir.BuiltinByName(fd.Name); isBuiltin {
			return errf(fd.Line, 1, "function %q shadows a builtin", fd.Name)
		}
		c.funcs[fd.Name] = fd
		// Pre-create signatures so calls can be lowered before bodies.
		params := make([]ir.Type, len(fd.Params))
		for i, p := range fd.Params {
			params[i] = tyToIR(p.Type)
		}
		f := &ir.Function{
			Name:    fd.Name,
			Params:  params,
			Ret:     tyToIR(fd.Ret),
			Regs:    append([]ir.Type(nil), params...),
			SrcLine: fd.Line,
		}
		c.mod.FuncIndex[fd.Name] = len(c.mod.Funcs)
		c.mod.Funcs = append(c.mod.Funcs, f)
	}
	return nil
}

// localSym is a function-scope binding.
type localSym struct {
	isArray bool
	reg     int32 // scalar register
	arr     int32 // frame array index
	ty      TypeName
}

type loopCtx struct {
	brk  *ir.Block
	cont *ir.Block
}

type funcLower struct {
	c      *compiler
	b      *ir.Builder
	fd     *FuncDecl
	scopes []map[string]localSym
	loops  []loopCtx
}

func (c *compiler) lowerFunc(fd *FuncDecl) error {
	idx := c.mod.FuncIndex[fd.Name]
	f := c.mod.Funcs[idx]
	// Point an ir.Builder at the pre-created function (signatures were
	// registered in collect so forward references resolve).
	bb := &ir.Builder{M: c.mod, F: f}
	entry := &ir.Block{ID: 0}
	f.Blocks = append(f.Blocks, entry)
	bb.SetBlock(entry)

	fl := &funcLower{c: c, b: bb, fd: fd}
	fl.push()
	for i, p := range fd.Params {
		if err := fl.declare(p.Name, localSym{reg: int32(i), ty: p.Type}, fd.Line); err != nil {
			return err
		}
	}
	if err := fl.lowerBlock(fd.Body); err != nil {
		return err
	}
	fl.pop()

	// Patch any block that does not end in a terminator with a default
	// return (falling off the end of a non-void function returns zero).
	for _, blk := range f.Blocks {
		t := blk.Terminator()
		if t != nil && t.Op.IsTerminator() {
			continue
		}
		bb.SetBlock(blk)
		switch f.Ret {
		case ir.TVoid:
			bb.Ret(ir.NoReg)
		case ir.TInt:
			bb.Ret(bb.ConstI(0))
		case ir.TFloat:
			bb.Ret(bb.ConstF(0))
		}
	}
	return nil
}

func (fl *funcLower) push() { fl.scopes = append(fl.scopes, map[string]localSym{}) }
func (fl *funcLower) pop()  { fl.scopes = fl.scopes[:len(fl.scopes)-1] }

func (fl *funcLower) declare(name string, s localSym, line int) error {
	top := fl.scopes[len(fl.scopes)-1]
	if _, ok := top[name]; ok {
		return errf(line, 1, "%q redeclared in this scope", name)
	}
	top[name] = s
	return nil
}

func (fl *funcLower) lookup(name string) (localSym, bool) {
	for i := len(fl.scopes) - 1; i >= 0; i-- {
		if s, ok := fl.scopes[i][name]; ok {
			return s, true
		}
	}
	return localSym{}, false
}

func (fl *funcLower) lowerBlock(b *BlockStmt) error {
	fl.push()
	defer fl.pop()
	for _, s := range b.Stmts {
		if err := fl.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fl *funcLower) lowerStmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		return fl.lowerBlock(s)
	case *VarStmt:
		return fl.lowerVar(s.Decl)
	case *AssignStmt:
		return fl.lowerAssign(s)
	case *IfStmt:
		return fl.lowerIf(s)
	case *WhileStmt:
		return fl.lowerWhile(s)
	case *ForStmt:
		return fl.lowerFor(s)
	case *ReturnStmt:
		return fl.lowerReturn(s)
	case *BreakStmt:
		if len(fl.loops) == 0 {
			return errf(s.Line, 1, "break outside loop")
		}
		fl.b.Br(fl.loops[len(fl.loops)-1].brk)
		fl.b.SetBlock(fl.b.NewBlock())
		return nil
	case *ContinueStmt:
		if len(fl.loops) == 0 {
			return errf(s.Line, 1, "continue outside loop")
		}
		fl.b.Br(fl.loops[len(fl.loops)-1].cont)
		fl.b.SetBlock(fl.b.NewBlock())
		return nil
	case *ExprStmt:
		call, ok := s.X.(*CallExpr)
		if !ok {
			return errf(s.Line, 1, "expression statement must be a call")
		}
		_, _, err := fl.lowerCall(call, true)
		return err
	case *SpawnStmt:
		return fl.lowerSpawn(s)
	}
	return fmt.Errorf("lang: unknown statement %T", s)
}

func (fl *funcLower) lowerVar(d *VarDecl) error {
	if d.ArraySize >= 0 {
		arr := fl.b.NewArray(d.Name, d.ArraySize, tyToIR(d.Type))
		return fl.declare(d.Name, localSym{isArray: true, arr: arr, ty: d.Type}, d.Line)
	}
	reg := fl.b.NewReg(tyToIR(d.Type))
	if d.Init != nil {
		v, ty, err := fl.lowerExpr(d.Init)
		if err != nil {
			return err
		}
		if tyToIR(ty) != tyToIR(d.Type) {
			return errf(d.Line, 1, "cannot initialize %s %q with %s value", d.Type, d.Name, ty)
		}
		fl.b.Emit(ir.Instr{Op: ir.OpMov, Dst: reg, A: v, B: ir.NoReg, C: ir.NoReg, Sym: -1})
	} else {
		switch tyToIR(d.Type) {
		case ir.TInt:
			fl.b.Emit(ir.Instr{Op: ir.OpConstI, Dst: reg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Sym: -1})
		case ir.TFloat:
			fl.b.Emit(ir.Instr{Op: ir.OpConstF, Dst: reg, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Sym: -1})
		}
	}
	return fl.declare(d.Name, localSym{reg: reg, ty: d.Type}, d.Line)
}

func (fl *funcLower) lowerAssign(s *AssignStmt) error {
	v, vty, err := fl.lowerExpr(s.Value)
	if err != nil {
		return err
	}
	switch t := s.Target.(type) {
	case *Ident:
		if ls, ok := fl.lookup(t.Name); ok {
			if ls.isArray {
				return errf(t.Line, t.Col, "cannot assign to array %q", t.Name)
			}
			if tyToIR(ls.ty) != tyToIR(vty) {
				return errf(t.Line, t.Col, "cannot assign %s to %s %q", vty, ls.ty, t.Name)
			}
			fl.b.Emit(ir.Instr{Op: ir.OpMov, Dst: ls.reg, A: v, B: ir.NoReg, C: ir.NoReg, Sym: -1})
			return nil
		}
		if gs, ok := fl.c.globals[t.Name]; ok {
			if gs.array {
				return errf(t.Line, t.Col, "cannot assign to array %q", t.Name)
			}
			if tyToIR(gs.ty) != tyToIR(vty) {
				return errf(t.Line, t.Col, "cannot assign %s to %s %q", vty, gs.ty, t.Name)
			}
			addr := fl.b.NewReg(ir.TInt)
			fl.b.Emit(ir.Instr{Op: ir.OpGlobalAddr, Dst: addr, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Sym: int32(gs.idx)})
			fl.store(addr, v, gs.ty)
			return nil
		}
		return errf(t.Line, t.Col, "undefined variable %q", t.Name)
	case *IndexExpr:
		addr, ety, err := fl.lowerAddr(t)
		if err != nil {
			return err
		}
		if tyToIR(ety) != tyToIR(vty) {
			return errf(t.Line, t.Col, "cannot store %s into %s array %q", vty, ety, t.Name)
		}
		fl.store(addr, v, ety)
		return nil
	}
	return errf(s.Line, 1, "invalid assignment target")
}

func (fl *funcLower) store(addr, v int32, ty TypeName) {
	op := ir.OpStoreI
	if tyToIR(ty) == ir.TFloat {
		op = ir.OpStoreF
	}
	fl.b.Emit(ir.Instr{Op: op, Dst: ir.NoReg, A: addr, B: v, C: ir.NoReg, Sym: -1})
}

// lowerAddr computes the address of name[index]; works for local arrays,
// global arrays and mutex arrays (whose "element type" is int: the mutex id).
// Constant indices fold into the address instruction's immediate, matching
// the constant-GEP folding a production compiler performs.
func (fl *funcLower) lowerAddr(t *IndexExpr) (int32, TypeName, error) {
	idx := ir.NoReg
	imm := int64(0)
	if lit, ok := t.Index.(*IntLit); ok {
		imm = lit.Value
	} else {
		r, ity, err := fl.lowerExpr(t.Index)
		if err != nil {
			return 0, TyVoid, err
		}
		if ity != TyInt {
			return 0, TyVoid, errf(t.Line, t.Col, "array index must be int, got %s", ity)
		}
		idx = r
	}
	if ls, ok := fl.lookup(t.Name); ok {
		if !ls.isArray {
			return 0, TyVoid, errf(t.Line, t.Col, "%q is not an array", t.Name)
		}
		addr := fl.b.NewReg(ir.TInt)
		fl.b.Emit(ir.Instr{Op: ir.OpLocalAddr, Dst: addr, A: idx, B: ir.NoReg, C: ir.NoReg, Sym: ls.arr, Imm: imm})
		return addr, ls.ty, nil
	}
	if gs, ok := fl.c.globals[t.Name]; ok {
		if !gs.array {
			return 0, TyVoid, errf(t.Line, t.Col, "%q is not an array", t.Name)
		}
		addr := fl.b.NewReg(ir.TInt)
		fl.b.Emit(ir.Instr{Op: ir.OpGlobalAddr, Dst: addr, A: idx, B: ir.NoReg, C: ir.NoReg, Sym: int32(gs.idx), Imm: imm})
		return addr, gs.ty, nil
	}
	return 0, TyVoid, errf(t.Line, t.Col, "undefined array %q", t.Name)
}

func (fl *funcLower) lowerIf(s *IfStmt) error {
	cond, cty, err := fl.lowerExpr(s.Cond)
	if err != nil {
		return err
	}
	if cty != TyBool {
		return errf(s.Line, 1, "if condition must be bool, got %s", cty)
	}
	then := fl.b.NewBlock()
	end := fl.b.NewBlock()
	els := end
	if s.Else != nil {
		els = fl.b.NewBlock()
	}
	fl.b.CBr(cond, then, els)
	fl.b.SetBlock(then)
	if err := fl.lowerBlock(s.Then); err != nil {
		return err
	}
	fl.brIfOpen(end)
	if s.Else != nil {
		fl.b.SetBlock(els)
		if err := fl.lowerBlock(s.Else); err != nil {
			return err
		}
		fl.brIfOpen(end)
	}
	fl.b.SetBlock(end)
	return nil
}

// brIfOpen emits a branch to target if the current block lacks a terminator.
func (fl *funcLower) brIfOpen(target *ir.Block) {
	blk := fl.b.Block()
	if t := blk.Terminator(); t != nil && t.Op.IsTerminator() {
		return
	}
	fl.b.Br(target)
}

func (fl *funcLower) lowerWhile(s *WhileStmt) error {
	header := fl.b.NewBlock()
	body := fl.b.NewBlock()
	end := fl.b.NewBlock()
	fl.b.Br(header)
	fl.b.SetBlock(header)
	cond, cty, err := fl.lowerExpr(s.Cond)
	if err != nil {
		return err
	}
	if cty != TyBool {
		return errf(s.Line, 1, "while condition must be bool, got %s", cty)
	}
	fl.b.CBr(cond, body, end)
	fl.b.SetBlock(body)
	fl.loops = append(fl.loops, loopCtx{brk: end, cont: header})
	err = fl.lowerBlock(s.Body)
	fl.loops = fl.loops[:len(fl.loops)-1]
	if err != nil {
		return err
	}
	fl.brIfOpen(header)
	fl.b.SetBlock(end)
	return nil
}

func (fl *funcLower) lowerFor(s *ForStmt) error {
	if s.Init != nil {
		if err := fl.lowerAssign(s.Init); err != nil {
			return err
		}
	}
	header := fl.b.NewBlock()
	body := fl.b.NewBlock()
	post := fl.b.NewBlock()
	end := fl.b.NewBlock()
	fl.b.Br(header)
	fl.b.SetBlock(header)
	if s.Cond != nil {
		cond, cty, err := fl.lowerExpr(s.Cond)
		if err != nil {
			return err
		}
		if cty != TyBool {
			return errf(s.Line, 1, "for condition must be bool, got %s", cty)
		}
		fl.b.CBr(cond, body, end)
	} else {
		fl.b.Br(body)
	}
	fl.b.SetBlock(body)
	fl.loops = append(fl.loops, loopCtx{brk: end, cont: post})
	err := fl.lowerBlock(s.Body)
	fl.loops = fl.loops[:len(fl.loops)-1]
	if err != nil {
		return err
	}
	fl.brIfOpen(post)
	fl.b.SetBlock(post)
	if s.Post != nil {
		if err := fl.lowerAssign(s.Post); err != nil {
			return err
		}
	}
	fl.b.Br(header)
	fl.b.SetBlock(end)
	return nil
}

func (fl *funcLower) lowerReturn(s *ReturnStmt) error {
	want := fl.fd.Ret
	if s.Value == nil {
		if want != TyVoid {
			return errf(s.Line, 1, "missing return value in %s function", want)
		}
		fl.b.Ret(ir.NoReg)
	} else {
		if want == TyVoid {
			return errf(s.Line, 1, "void function cannot return a value")
		}
		v, ty, err := fl.lowerExpr(s.Value)
		if err != nil {
			return err
		}
		if tyToIR(ty) != tyToIR(want) {
			return errf(s.Line, 1, "cannot return %s from %s function", ty, want)
		}
		fl.b.Ret(v)
	}
	fl.b.SetBlock(fl.b.NewBlock())
	return nil
}

func (fl *funcLower) lowerSpawn(s *SpawnStmt) error {
	fd, ok := fl.c.funcs[s.Call.Name]
	if !ok {
		return errf(s.Line, 1, "spawn of undefined function %q", s.Call.Name)
	}
	if fd.Ret != TyVoid {
		return errf(s.Line, 1, "spawned function %q must return void", s.Call.Name)
	}
	args, err := fl.lowerArgs(s.Call, fd.Params)
	if err != nil {
		return err
	}
	fl.b.Spawn(fl.c.mod.FuncIndex[s.Call.Name], args...)
	return nil
}

func (fl *funcLower) lowerArgs(call *CallExpr, params []Param) ([]int32, error) {
	if len(call.Args) != len(params) {
		return nil, errf(call.Line, call.Col, "%q expects %d arguments, got %d", call.Name, len(params), len(call.Args))
	}
	args := make([]int32, len(call.Args))
	for i, a := range call.Args {
		v, ty, err := fl.lowerExpr(a)
		if err != nil {
			return nil, err
		}
		if tyToIR(ty) != tyToIR(params[i].Type) {
			return nil, errf(call.Line, call.Col, "%q argument %d: cannot use %s as %s", call.Name, i+1, ty, params[i].Type)
		}
		args[i] = v
	}
	return args, nil
}

// lowerCall lowers a call to a user function or builtin. asStmt permits
// void results.
func (fl *funcLower) lowerCall(call *CallExpr, asStmt bool) (int32, TypeName, error) {
	if fd, ok := fl.c.funcs[call.Name]; ok {
		args, err := fl.lowerArgs(call, fd.Params)
		if err != nil {
			return 0, TyVoid, err
		}
		dst := ir.NoReg
		if fd.Ret != TyVoid {
			dst = fl.b.NewReg(tyToIR(fd.Ret))
		} else if !asStmt {
			return 0, TyVoid, errf(call.Line, call.Col, "void function %q used as value", call.Name)
		}
		fl.b.Call(fl.c.mod.FuncIndex[call.Name], dst, args...)
		return dst, fd.Ret, nil
	}
	id, ok := ir.BuiltinByName(call.Name)
	if !ok {
		return 0, TyVoid, errf(call.Line, call.Col, "undefined function %q", call.Name)
	}
	bi := ir.Builtin(id)
	if len(call.Args) != len(bi.Params) {
		return 0, TyVoid, errf(call.Line, call.Col, "%q expects %d arguments, got %d", call.Name, len(bi.Params), len(call.Args))
	}
	args := make([]int32, len(call.Args))
	for i, a := range call.Args {
		v, ty, err := fl.lowerExpr(a)
		if err != nil {
			return 0, TyVoid, err
		}
		if tyToIR(ty) != bi.Params[i] {
			return 0, TyVoid, errf(call.Line, call.Col, "%q argument %d: cannot use %s as %v", call.Name, i+1, ty, bi.Params[i])
		}
		args[i] = v
	}
	if bi.Ret == ir.TVoid && !asStmt {
		return 0, TyVoid, errf(call.Line, call.Col, "void builtin %q used as value", call.Name)
	}
	dst := fl.b.CallB(id, args...)
	return dst, irToTy(bi.Ret), nil
}

func (fl *funcLower) lowerExpr(e Expr) (int32, TypeName, error) {
	switch e := e.(type) {
	case *IntLit:
		r := fl.b.ConstI(e.Value)
		return r, TyInt, nil
	case *FloatLit:
		r := fl.b.ConstF(e.Value)
		return r, TyFloat, nil
	case *BoolLit:
		v := int64(0)
		if e.Value {
			v = 1
		}
		r := fl.b.ConstI(v)
		return r, TyBool, nil
	case *Ident:
		return fl.lowerIdent(e)
	case *IndexExpr:
		return fl.lowerIndex(e)
	case *CallExpr:
		return fl.lowerCall(e, false)
	case *CastExpr:
		return fl.lowerCast(e)
	case *UnaryExpr:
		return fl.lowerUnary(e)
	case *BinaryExpr:
		return fl.lowerBinary(e)
	}
	return 0, TyVoid, fmt.Errorf("lang: unknown expression %T", e)
}

func (fl *funcLower) lowerIdent(e *Ident) (int32, TypeName, error) {
	if ls, ok := fl.lookup(e.Name); ok {
		if ls.isArray {
			return 0, TyVoid, errf(e.Line, e.Col, "array %q used as value", e.Name)
		}
		return ls.reg, ls.ty, nil
	}
	if gs, ok := fl.c.globals[e.Name]; ok {
		if gs.array {
			return 0, TyVoid, errf(e.Line, e.Col, "array %q used as value", e.Name)
		}
		addr := fl.b.NewReg(ir.TInt)
		fl.b.Emit(ir.Instr{Op: ir.OpGlobalAddr, Dst: addr, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Sym: int32(gs.idx)})
		return fl.load(addr, gs.ty), gs.ty, nil
	}
	if ms, ok := fl.c.mutexes[e.Name]; ok {
		return fl.b.ConstI(int64(ms.base)), TyInt, nil
	}
	if bidx, ok := fl.c.barriers[e.Name]; ok {
		return fl.b.ConstI(int64(bidx)), TyInt, nil
	}
	return 0, TyVoid, errf(e.Line, e.Col, "undefined variable %q", e.Name)
}

func (fl *funcLower) load(addr int32, ty TypeName) int32 {
	if tyToIR(ty) == ir.TFloat {
		r := fl.b.NewReg(ir.TFloat)
		fl.b.Emit(ir.Instr{Op: ir.OpLoadF, Dst: r, A: addr, B: ir.NoReg, C: ir.NoReg, Sym: -1})
		return r
	}
	r := fl.b.NewReg(ir.TInt)
	fl.b.Emit(ir.Instr{Op: ir.OpLoadI, Dst: r, A: addr, B: ir.NoReg, C: ir.NoReg, Sym: -1})
	return r
}

func (fl *funcLower) lowerIndex(e *IndexExpr) (int32, TypeName, error) {
	// Mutex arrays index to a mutex id (an int), without memory traffic.
	if ms, ok := fl.c.mutexes[e.Name]; ok {
		idx, ity, err := fl.lowerExpr(e.Index)
		if err != nil {
			return 0, TyVoid, err
		}
		if ity != TyInt {
			return 0, TyVoid, errf(e.Line, e.Col, "mutex index must be int")
		}
		base := fl.b.ConstI(int64(ms.base))
		r := fl.b.Bin(ir.OpAdd, ir.TInt, base, idx)
		return r, TyInt, nil
	}
	addr, ety, err := fl.lowerAddr(e)
	if err != nil {
		return 0, TyVoid, err
	}
	return fl.load(addr, ety), ety, nil
}

func (fl *funcLower) lowerCast(e *CastExpr) (int32, TypeName, error) {
	v, ty, err := fl.lowerExpr(e.X)
	if err != nil {
		return 0, TyVoid, err
	}
	switch e.To {
	case TyInt:
		if tyToIR(ty) == ir.TFloat {
			return fl.b.Un(ir.OpF2I, ir.TInt, v), TyInt, nil
		}
		return v, TyInt, nil // int/bool reinterpreted
	case TyFloat:
		if tyToIR(ty) == ir.TInt {
			return fl.b.Un(ir.OpI2F, ir.TFloat, v), TyFloat, nil
		}
		return v, TyFloat, nil
	}
	return 0, TyVoid, errf(e.Line, e.Col, "invalid cast")
}

func (fl *funcLower) lowerUnary(e *UnaryExpr) (int32, TypeName, error) {
	v, ty, err := fl.lowerExpr(e.X)
	if err != nil {
		return 0, TyVoid, err
	}
	switch e.Op {
	case UNeg:
		switch ty {
		case TyInt:
			return fl.b.Un(ir.OpNeg, ir.TInt, v), TyInt, nil
		case TyFloat:
			return fl.b.Un(ir.OpFNeg, ir.TFloat, v), TyFloat, nil
		}
		return 0, TyVoid, errf(e.Line, e.Col, "cannot negate %s", ty)
	case UNot:
		if ty != TyBool {
			return 0, TyVoid, errf(e.Line, e.Col, "! requires bool, got %s", ty)
		}
		return fl.b.Un(ir.OpNot, ir.TInt, v), TyBool, nil
	}
	return 0, TyVoid, errf(e.Line, e.Col, "unknown unary operator")
}

var intBinOps = map[BinOp]ir.Opcode{
	BAdd: ir.OpAdd, BSub: ir.OpSub, BMul: ir.OpMul, BDiv: ir.OpDiv, BRem: ir.OpRem,
	BEq: ir.OpEq, BNe: ir.OpNe, BLt: ir.OpLt, BLe: ir.OpLe, BGt: ir.OpGt, BGe: ir.OpGe,
}

var floatBinOps = map[BinOp]ir.Opcode{
	BAdd: ir.OpFAdd, BSub: ir.OpFSub, BMul: ir.OpFMul, BDiv: ir.OpFDiv,
	BEq: ir.OpFEq, BNe: ir.OpFNe, BLt: ir.OpFLt, BLe: ir.OpFLe, BGt: ir.OpFGt, BGe: ir.OpFGe,
}

func (fl *funcLower) lowerBinary(e *BinaryExpr) (int32, TypeName, error) {
	if e.Op == BAnd || e.Op == BOr {
		return fl.lowerShortCircuit(e)
	}
	x, xt, err := fl.lowerExpr(e.X)
	if err != nil {
		return 0, TyVoid, err
	}
	y, yt, err := fl.lowerExpr(e.Y)
	if err != nil {
		return 0, TyVoid, err
	}
	isCmp := e.Op >= BEq && e.Op <= BGe
	// bool == bool / bool != bool are integer comparisons.
	if (xt == TyBool || yt == TyBool) && (e.Op == BEq || e.Op == BNe) {
		if tyToIR(xt) != ir.TInt || tyToIR(yt) != ir.TInt {
			return 0, TyVoid, errf(e.Line, e.Col, "cannot compare %s and %s", xt, yt)
		}
		return fl.b.Bin(intBinOps[e.Op], ir.TInt, x, y), TyBool, nil
	}
	if xt != yt {
		return 0, TyVoid, errf(e.Line, e.Col, "operator %s: mismatched types %s and %s", e.Op, xt, yt)
	}
	switch xt {
	case TyInt:
		op, ok := intBinOps[e.Op]
		if !ok {
			return 0, TyVoid, errf(e.Line, e.Col, "operator %s not defined on int", e.Op)
		}
		res := fl.b.Bin(op, ir.TInt, x, y)
		if isCmp {
			return res, TyBool, nil
		}
		return res, TyInt, nil
	case TyFloat:
		op, ok := floatBinOps[e.Op]
		if !ok {
			return 0, TyVoid, errf(e.Line, e.Col, "operator %s not defined on float", e.Op)
		}
		if isCmp {
			return fl.b.Bin(op, ir.TInt, x, y), TyBool, nil
		}
		return fl.b.Bin(op, ir.TFloat, x, y), TyFloat, nil
	default:
		return 0, TyVoid, errf(e.Line, e.Col, "operator %s not defined on %s", e.Op, xt)
	}
}

// lowerShortCircuit lowers && and || with control flow so the right operand
// only evaluates when needed.
func (fl *funcLower) lowerShortCircuit(e *BinaryExpr) (int32, TypeName, error) {
	x, xt, err := fl.lowerExpr(e.X)
	if err != nil {
		return 0, TyVoid, err
	}
	if xt != TyBool {
		return 0, TyVoid, errf(e.Line, e.Col, "operator %s requires bool operands, got %s", e.Op, xt)
	}
	res := fl.b.NewReg(ir.TInt)
	evalY := fl.b.NewBlock()
	short := fl.b.NewBlock()
	end := fl.b.NewBlock()
	if e.Op == BAnd {
		fl.b.CBr(x, evalY, short)
	} else {
		fl.b.CBr(x, short, evalY)
	}
	fl.b.SetBlock(evalY)
	y, yt, err := fl.lowerExpr(e.Y)
	if err != nil {
		return 0, TyVoid, err
	}
	if yt != TyBool {
		return 0, TyVoid, errf(e.Line, e.Col, "operator %s requires bool operands, got %s", e.Op, yt)
	}
	fl.b.Emit(ir.Instr{Op: ir.OpMov, Dst: res, A: y, B: ir.NoReg, C: ir.NoReg, Sym: -1})
	fl.b.Br(end)
	fl.b.SetBlock(short)
	v := int64(0)
	if e.Op == BOr {
		v = 1
	}
	fl.b.Emit(ir.Instr{Op: ir.OpConstI, Dst: res, A: ir.NoReg, B: ir.NoReg, C: ir.NoReg, Sym: -1, Imm: v})
	fl.b.Br(end)
	fl.b.SetBlock(end)
	return res, TyBool, nil
}

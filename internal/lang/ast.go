package lang

// TypeName is a source-level type.
type TypeName uint8

const (
	TyVoid TypeName = iota
	TyInt
	TyFloat
	TyBool
)

func (t TypeName) String() string {
	switch t {
	case TyVoid:
		return "void"
	case TyInt:
		return "int"
	case TyFloat:
		return "float"
	case TyBool:
		return "bool"
	}
	return "?"
}

// File is a parsed astc source file.
type File struct {
	Funcs    []*FuncDecl
	Globals  []*VarDecl
	Mutexes  []*MutexDecl
	Barriers []*BarrierDecl
}

// Param is a function parameter.
type Param struct {
	Name string
	Type TypeName
}

// FuncDecl declares a function.
type FuncDecl struct {
	Name   string
	Params []Param
	Ret    TypeName // TyVoid if none
	Body   *BlockStmt
	Line   int
}

// VarDecl declares a scalar or array variable (local or global).
type VarDecl struct {
	Name      string
	Type      TypeName
	ArraySize int64 // -1 for scalars
	Init      Expr  // optional, scalars only
	Line      int
}

// MutexDecl declares one mutex or an array of them.
type MutexDecl struct {
	Name  string
	Count int64 // 1 for "mutex m;"
	Line  int
}

// BarrierDecl declares a barrier object.
type BarrierDecl struct {
	Name string
	Line int
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is "{ ... }".
type BlockStmt struct {
	Stmts []Stmt
	Line  int
}

// VarStmt is a local variable declaration.
type VarStmt struct{ Decl *VarDecl }

// AssignStmt is "target = value;". Target is *Ident or *IndexExpr.
type AssignStmt struct {
	Target Expr
	Value  Expr
	Line   int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else *BlockStmt // nil if absent
	Line int
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Line int
}

// ForStmt is a C-style for loop. Init and Post may be nil.
type ForStmt struct {
	Init *AssignStmt
	Cond Expr // nil means true
	Post *AssignStmt
	Body *BlockStmt
	Line int
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	Value Expr // nil for void
	Line  int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt jumps to the innermost loop's next iteration.
type ContinueStmt struct{ Line int }

// ExprStmt is a call used as a statement.
type ExprStmt struct {
	X    Expr
	Line int
}

// SpawnStmt starts a new thread running a function call.
type SpawnStmt struct {
	Call *CallExpr
	Line int
}

func (*BlockStmt) stmtNode()    {}
func (*VarStmt) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}
func (*SpawnStmt) stmtNode()    {}

// Expr is an expression node.
type Expr interface {
	exprNode()
	Pos() (line, col int)
}

// BinOp enumerates binary operators.
type BinOp uint8

const (
	BAdd BinOp = iota
	BSub
	BMul
	BDiv
	BRem
	BEq
	BNe
	BLt
	BLe
	BGt
	BGe
	BAnd // &&
	BOr  // ||
)

var binOpNames = [...]string{"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||"}

func (op BinOp) String() string { return binOpNames[op] }

// UnOp enumerates unary operators.
type UnOp uint8

const (
	UNeg UnOp = iota // -
	UNot             // !
)

// BinaryExpr is "x op y".
type BinaryExpr struct {
	Op        BinOp
	X, Y      Expr
	Line, Col int
}

// UnaryExpr is "op x".
type UnaryExpr struct {
	Op        UnOp
	X         Expr
	Line, Col int
}

// CallExpr is "name(args...)", either a user function or a builtin.
type CallExpr struct {
	Name      string
	Args      []Expr
	Line, Col int
}

// CastExpr is "int(x)" or "float(x)".
type CastExpr struct {
	To        TypeName
	X         Expr
	Line, Col int
}

// Ident references a variable, mutex or barrier.
type Ident struct {
	Name      string
	Line, Col int
}

// IndexExpr is "name[index]".
type IndexExpr struct {
	Name      string
	Index     Expr
	Line, Col int
}

// IntLit is an integer literal.
type IntLit struct {
	Value     int64
	Line, Col int
}

// FloatLit is a float literal.
type FloatLit struct {
	Value     float64
	Line, Col int
}

// BoolLit is true/false.
type BoolLit struct {
	Value     bool
	Line, Col int
}

func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*CastExpr) exprNode()   {}
func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*BoolLit) exprNode()    {}

func (e *BinaryExpr) Pos() (int, int) { return e.Line, e.Col }
func (e *UnaryExpr) Pos() (int, int)  { return e.Line, e.Col }
func (e *CallExpr) Pos() (int, int)   { return e.Line, e.Col }
func (e *CastExpr) Pos() (int, int)   { return e.Line, e.Col }
func (e *Ident) Pos() (int, int)      { return e.Line, e.Col }
func (e *IndexExpr) Pos() (int, int)  { return e.Line, e.Col }
func (e *IntLit) Pos() (int, int)     { return e.Line, e.Col }
func (e *FloatLit) Pos() (int, int)   { return e.Line, e.Col }
func (e *BoolLit) Pos() (int, int)    { return e.Line, e.Col }

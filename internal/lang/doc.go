package lang

// Language reference for astc.
//
// astc is deliberately small: enough C to express the paper's parallel
// benchmarks (compute kernels, pthreads-style workers, locks, barriers,
// blocking library calls) while keeping the compiler and the machine model
// fully analyzable.
//
// # Grammar
//
//	file        := decl*
//	decl        := funcDecl | varDecl | mutexDecl | barrierDecl
//	funcDecl    := "func" IDENT "(" [param ("," param)*] ")" [type] block
//	param       := IDENT type
//	type        := "int" | "float" | "bool"
//	varDecl     := "var" IDENT type ["=" expr] ";"            (scalar)
//	             | "var" IDENT "[" INT "]" type ";"           (array)
//	mutexDecl   := "mutex" IDENT ["[" INT "]"] ";"
//	barrierDecl := "barrier" IDENT ";"
//
//	block       := "{" stmt* "}"
//	stmt        := varDecl | assign ";" | call ";" | block
//	             | "if" "(" expr ")" block ["else" (block | ifStmt)]
//	             | "while" "(" expr ")" block
//	             | "for" "(" [assign] ";" [expr] ";" [assign] ")" block
//	             | "return" [expr] ";" | "break" ";" | "continue" ";"
//	             | "spawn" call ";"
//	assign      := lvalue "=" expr
//	lvalue      := IDENT | IDENT "[" expr "]"
//
//	expr        := orExpr
//	orExpr      := andExpr ("||" andExpr)*
//	andExpr     := cmpExpr ("&&" cmpExpr)*
//	cmpExpr     := addExpr (("=="|"!="|"<"|"<="|">"|">=") addExpr)*
//	addExpr     := mulExpr (("+"|"-") mulExpr)*
//	mulExpr     := unary (("*"|"/"|"%") unary)*
//	unary       := ("-"|"!") unary | postfix
//	postfix     := INT | FLOAT | "true" | "false" | "(" expr ")"
//	             | ("int"|"float") "(" expr ")"                (cast)
//	             | IDENT | IDENT "[" expr "]" | IDENT "(" args ")"
//
// Comments run from "//" to end of line.
//
// # Semantics
//
//   - int is 64-bit signed; float is IEEE-754 double; bool is distinct in
//     the type system (conditions must be bool) but lowers to int 0/1.
//   - No implicit conversions: mix types via int(x) / float(x).
//   - Arrays are fixed-size, 1-D, not assignable or passable; globals are
//     zero-initialized and must not have initializers (initialize in main).
//   - && and || short-circuit. / and % on int trap on zero divisors
//     (simulation runtime error); float division follows IEEE.
//   - Every program starts at main; the simulator passes its int arguments
//     (conventionally main(scale int, threads int)).
//   - "spawn f(args);" starts a simulated thread running void function f;
//     "join();" blocks until all threads spawned by the caller finish.
//   - Mutex identifiers (and mutex[i] elements) evaluate to integer lock
//     ids accepted by lock()/unlock(); barrier identifiers likewise for
//     barrier_init(b, parties)/barrier_wait(b).
//
// # Builtins
//
// I/O (block the thread; classified IO by the Phase-Extractor):
// read_user_data() int, read_int() int, read_float() float,
// print_int(int), print_float(float), print_char(int).
//
// Network (Net trait): net_send(int), net_recv() int.
// Timing (Sleep trait): sleep_ms(int).
// Synchronization (Lock/Barrier traits): lock(int), unlock(int),
// barrier_init(int, int), barrier_wait(int), join().
//
// Runtime queries: tid() int, num_cores() int, clock_ms() int.
// Deterministic per-thread randomness: rand_int(n) int in [0, n),
// rand_float() float in [0, 1).
//
// Math (counted as FP work): sqrt, sin, cos, exp, log, pow, fabs, floor on
// float; abs, min, max on int.

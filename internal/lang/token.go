// Package lang implements the front end for astc, the small C-like language
// used to author the benchmark programs in this reproduction. It stands in
// for the paper's Clang/LLVM front end: astc sources are lexed, parsed,
// type-checked and lowered to the internal/ir register IR that the
// Phase-Extractor mines and the simulator executes.
//
// The language has int/float/bool scalars, fixed-size 1-D arrays, global
// variables, mutexes and barriers, functions, if/while/for control flow,
// spawn for thread creation, and a library of builtins (I/O, net, sleep,
// locks, barriers, math) whose traits drive phase classification.
package lang

import "fmt"

// TokKind enumerates token kinds.
type TokKind uint8

const (
	TEOF TokKind = iota
	TIdent
	TIntLit
	TFloatLit

	// Keywords.
	TFunc
	TVar
	TIf
	TElse
	TWhile
	TFor
	TReturn
	TBreak
	TContinue
	TSpawn
	TMutex
	TBarrier
	TTrue
	TFalse
	TKwInt
	TKwFloat
	TKwBool

	// Punctuation and operators.
	TLParen
	TRParen
	TLBrace
	TRBrace
	TLBrack
	TRBrack
	TComma
	TSemi
	TAssign
	TEq
	TNe
	TLt
	TLe
	TGt
	TGe
	TPlus
	TMinus
	TStar
	TSlash
	TPercent
	TAndAnd
	TOrOr
	TBang
)

var kindNames = map[TokKind]string{
	TEOF: "EOF", TIdent: "identifier", TIntLit: "int literal", TFloatLit: "float literal",
	TFunc: "func", TVar: "var", TIf: "if", TElse: "else", TWhile: "while", TFor: "for",
	TReturn: "return", TBreak: "break", TContinue: "continue", TSpawn: "spawn",
	TMutex: "mutex", TBarrier: "barrier", TTrue: "true", TFalse: "false",
	TKwInt: "int", TKwFloat: "float", TKwBool: "bool",
	TLParen: "(", TRParen: ")", TLBrace: "{", TRBrace: "}", TLBrack: "[", TRBrack: "]",
	TComma: ",", TSemi: ";", TAssign: "=", TEq: "==", TNe: "!=",
	TLt: "<", TLe: "<=", TGt: ">", TGe: ">=",
	TPlus: "+", TMinus: "-", TStar: "*", TSlash: "/", TPercent: "%",
	TAndAnd: "&&", TOrOr: "||", TBang: "!",
}

func (k TokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

var keywords = map[string]TokKind{
	"func": TFunc, "var": TVar, "if": TIf, "else": TElse, "while": TWhile,
	"for": TFor, "return": TReturn, "break": TBreak, "continue": TContinue,
	"spawn": TSpawn, "mutex": TMutex, "barrier": TBarrier,
	"true": TTrue, "false": TFalse,
	"int": TKwInt, "float": TKwFloat, "bool": TKwBool,
}

// Token is a lexed token with source position.
type Token struct {
	Kind TokKind
	Text string
	Int  int64
	F    float64
	Line int
	Col  int
}

// Error is a front-end diagnostic with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// Package journal is the fleet's flight recorder: an append-only,
// segment-rotated JSONL event log with deterministic encoding, crash-safe
// appends, and cursor-based reads. The coordinator journals every work
// queue lifecycle transition (enqueue, lease, renew, complete, reject,
// requeue, drain, quarantine, injected fault, ...) so a crashed or killed
// process leaves a durable, replayable account of what its scheduler
// decided and why — the forensic counterpart of the in-memory /metrics
// and /work/traces views, which vanish with the process.
//
// Design constraints, in priority order:
//
//   - Inert: the journal is write-only from the queue's point of view.
//     Nothing in the campaign machinery ever reads it back, so it can
//     never influence scheduling decisions, cache keys, result bytes, or
//     fingerprints (DESIGN.md invariant 10).
//   - Crash-safe: each event is one JSON line appended in a single write;
//     segment rollover closes the old segment with an fsync and creates
//     the next with a fresh name, never rewriting bytes in place. A torn
//     final line (the process died mid-append) is detected and discarded
//     on both read and reopen, so recovery is automatic and loses at most
//     the event being written at the instant of death.
//   - Deterministic encoding: events marshal with a fixed field order
//     (Go struct order) and no floating timestamps beyond the writer's
//     stamp, so identical event sequences produce identical bytes and a
//     journal diff is a semantic diff.
//
// Segments are named journal-<first-seq>.jsonl with a fixed-width decimal
// sequence number, so lexical filename order is seq order and a reader
// can skip whole segments below its cursor without opening them.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Event types. The vocabulary mirrors the work queue's state machines
// (see DESIGN.md "Distributed campaigns"): cell lifecycle transitions,
// worker lifecycle transitions, and chaos seams.
const (
	EvEnqueue    = "enqueue"    // fresh cell registered (key, kind, campaign)
	EvLease      = "lease"      // cell leased to a worker (key, worker, attempt)
	EvRenew      = "renew"      // heartbeat renewed N held leases (worker, n)
	EvComplete   = "complete"   // validated result accepted, cell done (key, worker, kind)
	EvError      = "error"      // worker reported an execution failure (key, worker; cause held|stale)
	EvReject     = "reject"     // submission failed validation (key, worker; cause held|stale)
	EvDuplicate  = "duplicate"  // submission for an already-done cell (key, worker)
	EvRequeue    = "requeue"    // cell returned to the queue front (key, worker; cause expire|drain|error|reject)
	EvFail       = "fail"       // cell permanently failed, attempts exhausted (key, worker, cause)
	EvBank       = "bank"       // valid result for an untracked key banked to the store (key, worker)
	EvCancel     = "cancel"     // last waiter cancelled a pending cell; cell dropped (key)
	EvDrain      = "drain"      // worker flipped active -> draining (worker)
	EvResume     = "resume"     // worker returned to active (worker)
	EvQuarantine = "quarantine" // worker quarantined after repeated rejects (worker)
	EvFault      = "fault"      // injected fault fired coordinator-side (key, worker, cause)
)

// Event is one journaled transition. Fields are omitempty so each line
// carries only what its type needs; Seq and T are stamped by the Writer
// at append time (callers leave them zero).
type Event struct {
	Seq      uint64 `json:"seq"`
	T        int64  `json:"t,omitempty"` // unix nanoseconds, writer-local clock
	Type     string `json:"type"`
	Key      string `json:"key,omitempty"`      // cell content key
	Worker   string `json:"worker,omitempty"`   // worker ID
	Campaign string `json:"campaign,omitempty"` // engine campaign ID (enqueue only)
	Kind     string `json:"kind,omitempty"`     // "sim" or "train"
	Cause    string `json:"cause,omitempty"`    // type-specific detail (see constants)
	Attempt  int    `json:"attempt,omitempty"`  // lease attempt number (lease only)
	N        int    `json:"n,omitempty"`        // batch size (renew only)
}

// Options tunes a Writer. The zero value is a sane production default.
type Options struct {
	// SegmentBytes is the rotation threshold: when the current segment
	// reaches it, the segment is fsynced, closed, and a new one started.
	// 0 selects 4 MiB. Rotation is the cheap durability point — every
	// completed segment is fully on disk.
	SegmentBytes int64

	// SyncEvery fsyncs the current segment after every N appends. 0 means
	// sync only on rotation and Close (fast; a crash can lose the tail of
	// the current segment). 1 makes every event durable before Record
	// returns (slow; use for forensic-critical runs).
	SyncEvery int
}

const defaultSegmentBytes = 4 << 20

// segPrefix/segSuffix frame segment filenames: journal-<%020d first-seq>.jsonl.
const (
	segPrefix = "journal-"
	segSuffix = ".jsonl"
)

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, segSuffix)
}

// segFirstSeq parses a segment filename's first-seq, or returns false.
func segFirstSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Writer appends events to a journal directory. Safe for concurrent use;
// Record is the only mutating entry point. The zero Writer is not usable —
// construct with Open.
type Writer struct {
	dir  string
	opts Options

	mu        sync.Mutex
	f         *os.File
	size      int64
	seq       uint64 // last assigned sequence number
	sinceSync int
	err       error // first unrecoverable append error, sticky
}

// Open creates (or reopens for append) the journal in dir. Reopening
// resumes sequence numbering after the last complete event on disk; a
// torn final line from a crashed writer is truncated away first, so the
// segment is again a whole number of events.
func Open(dir string, opts Options) (*Writer, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	w := &Writer{dir: dir, opts: opts}
	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return w, nil // first Record creates segment 1 lazily
	}
	last := segs[len(segs)-1]
	path := filepath.Join(dir, last.name)
	clean, lastSeq, err := repairTail(path)
	if err != nil {
		return nil, err
	}
	if lastSeq == 0 {
		// The final segment holds no complete event (created and torn
		// immediately): its first-seq names the next event to write.
		w.seq = last.firstSeq - 1
	} else {
		w.seq = lastSeq
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: reopen segment: %w", err)
	}
	w.f, w.size = f, clean
	return w, nil
}

// repairTail truncates a segment to its last complete line and returns
// the clean size plus the last complete event's seq (0 if none).
func repairTail(path string) (int64, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("journal: %w", err)
	}
	clean := len(data)
	if clean > 0 && data[clean-1] != '\n' {
		if i := bytes.LastIndexByte(data, '\n'); i >= 0 {
			clean = i + 1
		} else {
			clean = 0
		}
		if err := os.Truncate(path, int64(clean)); err != nil {
			return 0, 0, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	var lastSeq uint64
	for _, line := range bytes.Split(data[:clean], []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var ev Event
		if json.Unmarshal(line, &ev) == nil && ev.Seq > lastSeq {
			lastSeq = ev.Seq
		}
	}
	return int64(clean), lastSeq, nil
}

// Record stamps ev with the next sequence number and the writer's clock,
// appends it, and returns the assigned seq. Append errors are sticky:
// once the disk fails, every later Record reports the first error and the
// journal stops growing — callers treating the journal as observational
// (the work queue does) may ignore the error; forensic callers check it.
func (w *Writer) Record(ev Event) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	ev.Seq = w.seq + 1
	ev.T = time.Now().UnixNano()
	line, err := json.Marshal(ev)
	if err != nil {
		return 0, fmt.Errorf("journal: encode: %w", err)
	}
	line = append(line, '\n')
	if w.f == nil {
		if err := w.openSegmentLocked(ev.Seq); err != nil {
			w.err = err
			return 0, err
		}
	}
	if _, err := w.f.Write(line); err != nil {
		w.err = fmt.Errorf("journal: append: %w", err)
		return 0, w.err
	}
	w.seq = ev.Seq
	w.size += int64(len(line))
	w.sinceSync++
	if w.opts.SyncEvery > 0 && w.sinceSync >= w.opts.SyncEvery {
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("journal: sync: %w", err)
			return w.seq, w.err
		}
		w.sinceSync = 0
	}
	if w.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			w.err = err
			return w.seq, err
		}
	}
	return w.seq, nil
}

// openSegmentLocked starts the segment whose first event will be firstSeq.
func (w *Writer) openSegmentLocked(firstSeq uint64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segName(firstSeq)),
		os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: open segment: %w", err)
	}
	w.f, w.size, w.sinceSync = f, 0, 0
	return nil
}

// rotateLocked seals the current segment (fsync, so every completed
// segment is durable) and arranges for the next Record to start a new
// one. The directory entry is synced so the sealed segment's name
// survives a crash too.
func (w *Writer) rotateLocked() error {
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		w.f = nil
		return fmt.Errorf("journal: seal segment: %w", err)
	}
	if err := w.f.Close(); err != nil {
		w.f = nil
		return fmt.Errorf("journal: seal segment: %w", err)
	}
	w.f = nil
	if d, err := os.Open(w.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Sync flushes the current segment to stable storage.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("journal: sync: %w", err)
		return w.err
	}
	w.sinceSync = 0
	return nil
}

// Close syncs and closes the current segment. The Writer is unusable
// afterwards.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return w.err
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	if w.err == nil && err != nil {
		w.err = fmt.Errorf("journal: close: %w", err)
	}
	return w.err
}

// Seq returns the last assigned sequence number (0 before any Record).
func (w *Writer) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Err returns the writer's sticky error, if any append has failed.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// ReadSince lets a live Writer serve cursor reads over its own directory
// (GET /work/journal does this). Events are written unbuffered, so the
// directory is always current up to the torn-tail tolerance.
func (w *Writer) ReadSince(cursor uint64, max int) ([]Event, error) {
	return ReadSince(w.dir, cursor, max)
}

type segInfo struct {
	name     string
	firstSeq uint64
}

// segments lists the journal's segment files in seq order.
func segments(dir string) ([]segInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var segs []segInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := segFirstSeq(e.Name()); ok {
			segs = append(segs, segInfo{name: e.Name(), firstSeq: first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// ReadSince returns up to max events with Seq > cursor from the journal
// in dir, in sequence order (max <= 0 means all). Whole segments below
// the cursor are skipped by filename without being opened. A torn final
// line (crashed writer) is silently ignored; it will either be truncated
// away by the next Open or simply never parse.
func ReadSince(dir string, cursor uint64, max int) ([]Event, error) {
	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	var out []Event
	for i, seg := range segs {
		// Skip a segment entirely when the next segment starts at or
		// below cursor+1 — every event here is <= cursor.
		if i+1 < len(segs) && segs[i+1].firstSeq <= cursor+1 {
			continue
		}
		f, err := os.Open(filepath.Join(dir, seg.name))
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 64<<10), 8<<20)
		var tail []byte
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var ev Event
			if err := json.Unmarshal(line, &ev); err != nil {
				// A non-final unparseable line is corruption, not a torn
				// append; remember it and fail only if lines follow.
				tail = append(tail[:0], line...)
				continue
			}
			if tail != nil {
				f.Close()
				return nil, fmt.Errorf("journal: corrupt line in %s before %d", seg.name, ev.Seq)
			}
			if ev.Seq <= cursor {
				continue
			}
			out = append(out, ev)
			if max > 0 && len(out) >= max {
				f.Close()
				return out, nil
			}
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("journal: read %s: %w", seg.name, err)
		}
	}
	return out, nil
}

package journal

import "sort"

// Replay reconstructs queue and fleet state from an event stream — the
// crash-forensic half of the flight recorder. Feeding it every event of a
// run yields exactly the counters the live queue reported in /work/status
// (the journal-replay tests pin this equality), and feeding it a crashed
// coordinator's journal yields the state at the instant of death: which
// cells were in flight, who held them, what had already completed.
//
// The state machine is event-level, not a re-implementation of the
// queue: each event type maps to one transition, so replay is total and
// order-insensitive within the documented tolerance (a completion's
// journal line is written after its result bytes reach the store, so a
// racing duplicate may precede its completion; both orders replay to the
// same state).

// WorkerState is one worker's replayed view (the WorkerStatus counters
// that are derivable from the journal).
type WorkerState struct {
	Completed int    `json:"completed"`
	Errors    int    `json:"errors"`
	Rejects   int    `json:"rejects,omitempty"`
	State     string `json:"state,omitempty"` // "", "draining", "quarantined"
}

// State is the replayed end-state of a journal.
type State struct {
	Events  int    `json:"events"`   // events replayed
	LastSeq uint64 `json:"last_seq"` // highest sequence seen

	// Queue counters, matching QueueStats field-for-field.
	Pending    int    `json:"pending"` // cells enqueued but not leased at end of log
	Leased     int    `json:"leased"`  // cells leased and unresolved at end of log
	Done       int    `json:"done"`    // completes + fails
	Completes  int    `json:"completes"`
	Fails      int    `json:"fails"`
	Requeues   uint64 `json:"requeues"`
	Rejects    uint64 `json:"rejects"`
	Duplicates uint64 `json:"duplicates"`
	Renewals   uint64 `json:"renewals"`

	// Forensic extras.
	Enqueued uint64 `json:"enqueued"`
	Leases   uint64 `json:"leases"`
	Banked   uint64 `json:"banked"`
	Faults   uint64 `json:"faults"`
	Cancels  uint64 `json:"cancels"`

	Workers map[string]*WorkerState `json:"workers,omitempty"`

	completed map[string]bool // keys that completed successfully
	banked    map[string]bool // untracked keys whose bytes were banked
	pending   map[string]bool // live pending keys at end of log
	leased    map[string]string
}

// CompletedKeys returns every key the journal says completed successfully,
// sorted. These are the keys the store audit checks: each must be banked.
func (s *State) CompletedKeys() []string {
	keys := make([]string, 0, len(s.completed))
	for k := range s.completed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// BankedKeys returns the untracked keys whose valid results were banked
// (late results of withdrawn cells), sorted.
func (s *State) BankedKeys() []string {
	keys := make([]string, 0, len(s.banked))
	for k := range s.banked {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// InFlight returns the cells unresolved at the end of the log: key ->
// holding worker ("" while pending). After a crash these are the cells
// the dead coordinator still owed its campaigns.
func (s *State) InFlight() map[string]string {
	out := make(map[string]string, len(s.pending)+len(s.leased))
	for k := range s.pending {
		out[k] = ""
	}
	for k, w := range s.leased {
		out[k] = w
	}
	return out
}

// Replay runs the event stream through the state machine and returns the
// end state. Events must be in journal order (ReadSince returns them so).
func Replay(events []Event) *State {
	s := &State{
		Workers:   map[string]*WorkerState{},
		completed: map[string]bool{},
		banked:    map[string]bool{},
		pending:   map[string]bool{},
		leased:    map[string]string{},
	}
	worker := func(id string) *WorkerState {
		if id == "" {
			return &WorkerState{} // discard: malformed event, keep replay total
		}
		w, ok := s.Workers[id]
		if !ok {
			w = &WorkerState{}
			s.Workers[id] = w
		}
		return w
	}
	resolve := func(key string) {
		delete(s.pending, key)
		delete(s.leased, key)
	}
	for _, ev := range events {
		s.Events++
		if ev.Seq > s.LastSeq {
			s.LastSeq = ev.Seq
		}
		switch ev.Type {
		case EvEnqueue:
			s.Enqueued++
			s.pending[ev.Key] = true
		case EvLease:
			s.Leases++
			worker(ev.Worker)
			delete(s.pending, ev.Key)
			s.leased[ev.Key] = ev.Worker
		case EvRenew:
			s.Renewals += uint64(ev.N)
			worker(ev.Worker)
		case EvComplete:
			s.Completes++
			s.Done++
			worker(ev.Worker).Completed++
			resolve(ev.Key)
			s.completed[ev.Key] = true
		case EvError:
			worker(ev.Worker).Errors++
		case EvReject:
			s.Rejects++
			w := worker(ev.Worker)
			w.Errors++
			w.Rejects++
		case EvDuplicate:
			s.Duplicates++
		case EvRequeue:
			s.Requeues++
			resolve(ev.Key)
			s.pending[ev.Key] = true
		case EvFail:
			s.Fails++
			s.Done++
			resolve(ev.Key)
		case EvBank:
			s.Banked++
			s.banked[ev.Key] = true
		case EvCancel:
			s.Cancels++
			resolve(ev.Key)
		case EvDrain:
			worker(ev.Worker).State = "draining"
		case EvResume:
			w := worker(ev.Worker)
			w.State = ""
			w.Rejects = 0 // Resume closes the quarantine circuit breaker
		case EvQuarantine:
			worker(ev.Worker).State = "quarantined"
		case EvFault:
			s.Faults++
		}
	}
	s.Pending = len(s.pending)
	s.Leased = len(s.leased)
	return s
}

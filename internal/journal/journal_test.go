package journal

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestAppendReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"k1", "k2", "k3"}
	for i, k := range keys {
		seq, err := w.Record(Event{Type: EvEnqueue, Key: k, Kind: "sim"})
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq %d, want %d", seq, i+1)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	evs, err := ReadSince(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("read %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) || ev.Key != keys[i] || ev.Type != EvEnqueue || ev.T == 0 {
			t.Fatalf("event %d malformed: %+v", i, ev)
		}
	}

	// Cursor reads: everything after seq 2.
	evs, err = ReadSince(dir, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Seq != 3 {
		t.Fatalf("cursor read got %+v, want only seq 3", evs)
	}
	// Max limiting.
	evs, err = ReadSince(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[1].Seq != 2 {
		t.Fatalf("max-limited read got %+v, want seqs 1,2", evs)
	}
	// Cursor at the end: empty, not an error.
	if evs, err := ReadSince(dir, 3, 0); err != nil || len(evs) != 0 {
		t.Fatalf("read past end: %v, %v", evs, err)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	ev := Event{Seq: 7, T: 42, Type: EvLease, Key: "abc", Worker: "w1", Attempt: 2}
	a, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(ev)
	if !bytes.Equal(a, b) {
		t.Fatalf("encoding not deterministic: %s vs %s", a, b)
	}
	want := `{"seq":7,"t":42,"type":"lease","key":"abc","worker":"w1","attempt":2}`
	if string(a) != want {
		t.Fatalf("encoding drifted:\n got %s\nwant %s", a, want)
	}
}

func TestSegmentRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so every couple of events rotates.
	w, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	const total = 20
	for i := 0; i < total; i++ {
		if _, err := w.Record(Event{Type: EvLease, Key: "key", Worker: "w"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}

	evs, err := ReadSince(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != total {
		t.Fatalf("read %d events across segments, want %d", len(evs), total)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	// A cursor inside a later segment skips earlier segments but loses
	// nothing.
	evs, err = ReadSince(dir, uint64(total)-3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 || evs[0].Seq != uint64(total)-2 {
		t.Fatalf("tail read got %d events starting %d", len(evs), evs[0].Seq)
	}

	// Reopen resumes numbering.
	w2, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w2.Record(Event{Type: EvComplete, Key: "key", Worker: "w"})
	if err != nil {
		t.Fatal(err)
	}
	if seq != total+1 {
		t.Fatalf("reopened writer assigned seq %d, want %d", seq, total+1)
	}
	w2.Close()
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Record(Event{Type: EvEnqueue, Key: "k"}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Simulate a crash mid-append: a partial line with no newline.
	segs, _ := segments(dir)
	path := filepath.Join(dir, segs[len(segs)-1].name)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":4,"type":"comp`)
	f.Close()

	// The reader ignores the torn line.
	evs, err := ReadSince(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("reader saw %d events with torn tail, want 3", len(evs))
	}

	// Reopen truncates it and resumes at seq 4.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w2.Record(Event{Type: EvComplete, Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Fatalf("post-recovery seq %d, want 4", seq)
	}
	w2.Close()
	evs, err = ReadSince(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 4 || evs[3].Seq != 4 || evs[3].Type != EvComplete {
		t.Fatalf("post-recovery journal: %+v", evs)
	}
}

func TestCorruptMiddleLineFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(dir, Options{})
	w.Record(Event{Type: EvEnqueue, Key: "k"})
	w.Close()
	segs, _ := segments(dir)
	path := filepath.Join(dir, segs[0].name)
	data, _ := os.ReadFile(path)
	// Garbage line followed by a valid line: corruption, not a torn tail.
	data = append(data, []byte("not json\n")...)
	valid, _ := json.Marshal(Event{Seq: 2, Type: EvComplete, Key: "k"})
	data = append(data, valid...)
	data = append(data, '\n')
	os.WriteFile(path, data, 0o644)
	if _, err := ReadSince(dir, 0, 0); err == nil {
		t.Fatal("corrupt middle line read silently")
	}
}

func TestReplayStateMachine(t *testing.T) {
	evs := []Event{
		{Seq: 1, Type: EvEnqueue, Key: "a", Kind: "sim", Campaign: "c1"},
		{Seq: 2, Type: EvEnqueue, Key: "b", Kind: "sim"},
		{Seq: 3, Type: EvEnqueue, Key: "c", Kind: "train"},
		{Seq: 4, Type: EvLease, Key: "a", Worker: "w1", Attempt: 1},
		{Seq: 5, Type: EvLease, Key: "b", Worker: "w2", Attempt: 1},
		{Seq: 6, Type: EvRenew, Worker: "w1", N: 1},
		{Seq: 7, Type: EvComplete, Key: "a", Worker: "w1", Kind: "sim"},
		{Seq: 8, Type: EvReject, Key: "b", Worker: "w2", Cause: "held"},
		{Seq: 9, Type: EvRequeue, Key: "b", Worker: "w2", Cause: "reject"},
		{Seq: 10, Type: EvLease, Key: "b", Worker: "w1", Attempt: 2},
		{Seq: 11, Type: EvError, Key: "b", Worker: "w1", Cause: "held"},
		{Seq: 12, Type: EvRequeue, Key: "b", Worker: "w1", Cause: "error"},
		{Seq: 13, Type: EvQuarantine, Worker: "w2"},
		{Seq: 14, Type: EvDuplicate, Key: "a", Worker: "w2"},
		{Seq: 15, Type: EvDrain, Worker: "w1"},
		{Seq: 16, Type: EvFault, Key: "c", Worker: "w1", Cause: "drop_complete"},
		{Seq: 17, Type: EvBank, Key: "z", Worker: "w3"},
		{Seq: 18, Type: EvCancel, Key: "c"},
	}
	st := Replay(evs)
	if st.Events != len(evs) || st.LastSeq != 18 {
		t.Fatalf("events=%d lastseq=%d", st.Events, st.LastSeq)
	}
	if st.Enqueued != 3 || st.Leases != 3 || st.Completes != 1 || st.Done != 1 {
		t.Fatalf("counts: %+v", st)
	}
	if st.Requeues != 2 || st.Rejects != 1 || st.Duplicates != 1 || st.Renewals != 1 ||
		st.Banked != 1 || st.Faults != 1 || st.Cancels != 1 {
		t.Fatalf("counters: %+v", st)
	}
	// b is pending (requeued, never resolved); a done; c cancelled.
	if st.Pending != 1 || st.Leased != 0 {
		t.Fatalf("population: pending=%d leased=%d", st.Pending, st.Leased)
	}
	if inf := st.InFlight(); len(inf) != 1 || inf["b"] != "" {
		t.Fatalf("in-flight: %+v", inf)
	}
	if got := st.CompletedKeys(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("completed keys %v", got)
	}
	if got := st.BankedKeys(); len(got) != 1 || got[0] != "z" {
		t.Fatalf("banked keys %v", got)
	}
	w1 := st.Workers["w1"]
	if w1 == nil || w1.Completed != 1 || w1.Errors != 1 || w1.State != "draining" {
		t.Fatalf("w1: %+v", w1)
	}
	w2 := st.Workers["w2"]
	if w2 == nil || w2.Errors != 1 || w2.Rejects != 1 || w2.State != "quarantined" {
		t.Fatalf("w2: %+v", w2)
	}
	// Resume clears quarantine and the reject count.
	st = Replay(append(evs, Event{Seq: 19, Type: EvResume, Worker: "w2"}))
	w2 = st.Workers["w2"]
	if w2.State != "" || w2.Rejects != 0 {
		t.Fatalf("w2 after resume: %+v", w2)
	}
}

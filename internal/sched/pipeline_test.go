package sched

import (
	"testing"

	"astro/internal/features"
	"astro/internal/hw"
	"astro/internal/instrument"
	"astro/internal/ir"
	"astro/internal/lang"
	"astro/internal/rl"
	"astro/internal/sim"
)

func compileT(t *testing.T, src string) *ir.Module {
	t.Helper()
	mod, err := lang.Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return mod
}

// phasedSrc alternates a CPU-heavy kernel with long blocking waits, giving
// the learner distinguishable phases.
const phasedSrc = `
func kernel(n int) {
	var i int;
	var x float = 1.0;
	for (i = 0; i < n; i = i + 1) { x = x * 1.000001 + 0.5; }
}
func pause() {
	sleep_ms(1);
}
func main(scale int, threads int) {
	var r int;
	for (r = 0; r < 4; r = r + 1) {
		var i int;
		for (i = 0; i < threads; i = i + 1) { spawn kernel(scale); }
		join();
		pause();
	}
}
`

// TestTrainExtractInstrumentPipeline exercises the full Astro toolchain:
// analyze -> learning instrumentation -> Q-learning training -> policy
// extraction -> static and hybrid final binaries -> execution.
func TestTrainExtractInstrumentPipeline(t *testing.T) {
	mod := compileT(t, phasedSrc)
	plat := hw.OdroidXU4()
	mi := features.AnalyzeModule(mod, features.Options{})

	learnMod, err := instrument.ForLearning(mod, mi)
	if err != nil {
		t.Fatal(err)
	}
	agent := rl.NewDQN(plat.NumConfigs(), rl.DQNConfig{Seed: 11})
	act := NewAstro(agent, plat, true)
	base := sim.Options{CheckpointS: 500e-6, QuantumS: 50e-6, TickS: 250e-6}
	stats, err := Train(learnMod, plat, act, TrainOptions{
		Episodes: 5,
		Seed:     21,
		Args:     []int64{30000, 4},
		SimOpts:  base,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 5 {
		t.Fatalf("episodes = %d", len(stats))
	}
	for _, s := range stats {
		if s.TimeS <= 0 || s.EnergyJ <= 0 {
			t.Errorf("episode %d: degenerate stats %+v", s.Episode, s)
		}
	}

	pol := ExtractPolicy(agent, plat)
	if err := pol.Validate(plat); err != nil {
		t.Fatal(err)
	}

	staticMod, err := instrument.ForStatic(mod, mi, plat, pol)
	if err != nil {
		t.Fatal(err)
	}
	so := base
	so.Args = []int64{30000, 4}
	so.Seed = 77
	m, err := sim.New(staticMod, plat, so)
	if err != nil {
		t.Fatal(err)
	}
	resStatic, err := m.Run()
	if err != nil {
		t.Fatalf("static run: %v", err)
	}
	if resStatic.TimeS <= 0 {
		t.Fatal("static run produced no time")
	}

	hybridMod, err := instrument.ForHybrid(mod, mi)
	if err != nil {
		t.Fatal(err)
	}
	ho := base
	ho.Args = []int64{30000, 4}
	ho.Seed = 77
	ho.Hybrid = NewHybridRuntime(agent, plat)
	hm, err := sim.New(hybridMod, plat, ho)
	if err != nil {
		t.Fatal(err)
	}
	resHybrid, err := hm.Run()
	if err != nil {
		t.Fatalf("hybrid run: %v", err)
	}
	if resHybrid.TimeS <= 0 {
		t.Fatal("hybrid run produced no time")
	}
	// Both final binaries ran with phase instrumentation active: the static
	// one must have issued at least one configuration request.
	if resStatic.Switches == 0 && resStatic.FinalConfig == plat.AllOn() {
		t.Log("static run never changed configuration (policy may be all-on everywhere)")
	}
}

// TestLearningBeatsPathologicalFixed trains briefly and checks the learned
// policy avoids the worst fixed configuration (1L0B on a parallel CPU
// benchmark) — the essence of the paper's RQ2.
func TestLearningBeatsPathologicalFixed(t *testing.T) {
	mod := compileT(t, phasedSrc)
	plat := hw.OdroidXU4()
	mi := features.AnalyzeModule(mod, features.Options{})
	learnMod, err := instrument.ForLearning(mod, mi)
	if err != nil {
		t.Fatal(err)
	}
	base := sim.Options{CheckpointS: 500e-6, QuantumS: 50e-6, TickS: 250e-6}
	args := []int64{60000, 4}

	agent := rl.NewDQN(plat.NumConfigs(), rl.DQNConfig{Seed: 5})
	act := NewAstro(agent, plat, true)
	if _, err := Train(learnMod, plat, act, TrainOptions{Episodes: 8, Seed: 31, Args: args, SimOpts: base}); err != nil {
		t.Fatal(err)
	}

	runWith := func(a sim.Actuator, initial hw.Config) float64 {
		so := base
		so.Args = args
		so.Seed = 99
		so.Actuator = a
		so.InitialConfig = initial
		m, err := sim.New(learnMod, plat, so)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.TimeS
	}

	act.Learn = false
	astroTime := runWith(act, plat.AllOn())
	worstTime := runWith(&Fixed{Config: hw.Config{Little: 1}}, hw.Config{Little: 1})
	if !(astroTime < worstTime/1.8) {
		t.Errorf("astro %.6fs should be >1.8x faster than pinned 1L0B %.6fs", astroTime, worstTime)
	}
}

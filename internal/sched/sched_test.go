package sched

import (
	"testing"

	"astro/internal/features"
	"astro/internal/hw"
	"astro/internal/perfmon"
	"astro/internal/rl"
	"astro/internal/sim"
)

// fakeEnv simulates checkpoint generation: the reward of the configuration
// chosen at checkpoint i is observed at checkpoint i+1, like the real
// monitor. goodCfg earns 4x the MIPS of any other config at equal power.
type fakeEnv struct {
	plat    *hw.Platform
	goodCfg hw.Config
	phase   features.Phase
}

func (e *fakeEnv) checkpoint(idx int, cfg hw.Config) sim.Checkpoint {
	mips := 200.0
	if cfg == e.goodCfg {
		mips = 1600.0
	}
	instr := uint64(mips * 1e6 * 1e-3)
	return sim.Checkpoint{
		Index:     idx,
		TimeS:     float64(idx) * 1e-3,
		DurS:      1e-3,
		Config:    cfg,
		ProgPhase: e.phase,
		HW:        perfmon.Counters{Instructions: instr, Cycles: instr, BusySeconds: 1e-3, WindowSeconds: 8e-3},
		HWPhase:   perfmon.HWPhase{IPCBucket: 1, CPUBucket: 0},
		EnergyJ:   3.0 * 1e-3, // 3 W
	}
}

func TestAstroActuatorLearnsGoodConfig(t *testing.T) {
	plat := hw.OdroidXU4()
	good := hw.Config{Big: 4}
	env := &fakeEnv{plat: plat, goodCfg: good, phase: features.PhaseCPUBound}
	agent := rl.NewDQN(plat.NumConfigs(), rl.DQNConfig{Seed: 1, LR: 0.08})
	act := NewAstro(agent, plat, true)

	cfg := plat.AllOn()
	for ep := 0; ep < 30; ep++ {
		for i := 0; i < 60; i++ {
			cfg = act.OnCheckpoint(nil, env.checkpoint(i, cfg))
		}
		act.EndEpisode()
	}
	// Exploit: the greedy policy should now find the good config quickly.
	act.Learn = false
	cfg = plat.AllOn()
	hits := 0
	for i := 0; i < 20; i++ {
		cfg = act.OnCheckpoint(nil, env.checkpoint(i, cfg))
		if cfg == good {
			hits++
		}
	}
	if hits < 15 {
		t.Errorf("exploitation picked %v only %d/20 times", good, hits)
	}
}

func TestHipsterIgnoresProgramPhase(t *testing.T) {
	plat := hw.OdroidXU4()
	agent := rl.NewDQN(plat.NumConfigs(), rl.DQNConfig{Seed: 2})
	h := NewHipster(agent, plat, true)
	if h.Name() != "hipster" {
		t.Errorf("name = %q", h.Name())
	}
	ckA := sim.Checkpoint{Config: plat.AllOn(), ProgPhase: features.PhaseCPUBound}
	ckB := sim.Checkpoint{Config: plat.AllOn(), ProgPhase: features.PhaseBlocked}
	if h.state(ckA) != h.state(ckB) {
		t.Error("hipster state must not depend on program phase")
	}
	a := NewAstro(agent, plat, true)
	if a.state(ckA) == a.state(ckB) {
		t.Error("astro state must depend on program phase")
	}
}

func TestExtractPolicyProducesValidConfigs(t *testing.T) {
	plat := hw.OdroidXU4()
	agent := rl.NewTabular(plat.NumConfigs(), 3)
	// Teach the table: CPU phase loves 0L4B, Blocked loves 1L0B.
	cpuCfg := plat.ConfigID(hw.Config{Big: 4})
	littleCfg := plat.ConfigID(hw.Config{Little: 1})
	for hwp := 0; hwp < 81; hwp++ {
		for cfg := 0; cfg < plat.NumConfigs(); cfg++ {
			sCPU := rl.State{ConfigID: cfg, ProgPhase: int(features.PhaseCPUBound), HWPhaseID: hwp}
			agent.Observe(sCPU, cpuCfg, 1.0, sCPU)
			sBlk := rl.State{ConfigID: cfg, ProgPhase: int(features.PhaseBlocked), HWPhaseID: hwp}
			agent.Observe(sBlk, littleCfg, 1.0, sBlk)
		}
	}
	pol := ExtractPolicy(agent, plat)
	if pol.PerPhase[features.PhaseCPUBound] != (hw.Config{Big: 4}) {
		t.Errorf("CPU phase -> %v, want 0L4B", pol.PerPhase[features.PhaseCPUBound])
	}
	if pol.PerPhase[features.PhaseBlocked] != (hw.Config{Little: 1}) {
		t.Errorf("Blocked phase -> %v, want 1L0B", pol.PerPhase[features.PhaseBlocked])
	}
	for p, cfg := range pol.PerPhase {
		if !cfg.Valid(plat.MaxLittle(), plat.MaxBig()) {
			t.Errorf("phase %d: invalid config %v", p, cfg)
		}
	}
}

func TestOctopusManLadder(t *testing.T) {
	plat := hw.OdroidXU4()
	o := NewOctopusMan(plat)
	mkCk := func(util float64) sim.Checkpoint {
		return sim.Checkpoint{
			DurS: 1e-3,
			HW:   perfmon.Counters{BusySeconds: util, WindowSeconds: 1},
		}
	}
	start := o.Rung()
	var cfg hw.Config
	for i := 0; i < 5; i++ {
		cfg = o.OnCheckpoint(nil, mkCk(0.95))
	}
	if o.Rung() != start+5 {
		t.Errorf("rung after 5 saturated windows = %d, want %d", o.Rung(), start+5)
	}
	capUp := plat.Capability(cfg)
	for i := 0; i < 3; i++ {
		cfg = o.OnCheckpoint(nil, mkCk(0.05))
	}
	if !(plat.Capability(cfg) < capUp) {
		t.Error("low utilization must descend the ladder")
	}
	// Bounds: never below rung 0, never past the top.
	for i := 0; i < 100; i++ {
		o.OnCheckpoint(nil, mkCk(0.0))
	}
	if o.Rung() != 0 {
		t.Errorf("rung bottomed at %d", o.Rung())
	}
	for i := 0; i < 100; i++ {
		cfg = o.OnCheckpoint(nil, mkCk(1.0))
	}
	if o.Rung() != plat.NumConfigs()-1 {
		t.Errorf("rung topped at %d", o.Rung())
	}
	if cfg != plat.AllOn() {
		t.Errorf("top rung config = %v", cfg)
	}
	// Mid-utilization holds steady.
	r := o.Rung()
	o.OnCheckpoint(nil, mkCk(0.5))
	if o.Rung() != r {
		t.Error("mid utilization should not move the ladder")
	}
}

func TestFixedAndRandomActuators(t *testing.T) {
	plat := hw.OdroidXU4()
	f := &Fixed{Config: hw.Config{Little: 2, Big: 1}}
	if f.Name() != "fixed-2L1B" {
		t.Errorf("name = %q", f.Name())
	}
	if got := f.OnCheckpoint(nil, sim.Checkpoint{}); got != f.Config {
		t.Errorf("fixed returned %v", got)
	}
	r := &Random{Plat: plat, Seed: 9}
	seen := map[hw.Config]bool{}
	for i := 0; i < 200; i++ {
		cfg := r.OnCheckpoint(nil, sim.Checkpoint{})
		if !cfg.Valid(plat.MaxLittle(), plat.MaxBig()) {
			t.Fatalf("random produced invalid %v", cfg)
		}
		seen[cfg] = true
	}
	if len(seen) < 10 {
		t.Errorf("random visited only %d configs", len(seen))
	}
}

func testMachine(t *testing.T) *sim.Machine {
	t.Helper()
	mod := compileT(t, `func main() { }`)
	m, err := sim.New(mod, hw.OdroidXU4(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGTSPlacement(t *testing.T) {
	m := testMachine(t)
	g := NewGTS()
	heavy := sim.NewThreadForTest(0.9, 1000, 0)
	light := sim.NewThreadForTest(0.05, 1000, 5)
	fresh := sim.NewThreadForTest(0, 0, -1)
	if ci := g.PlaceThread(m, heavy); m.CoreType(ci) != hw.Big {
		t.Errorf("heavy thread placed on %v core", m.CoreType(ci))
	}
	if ci := g.PlaceThread(m, light); m.CoreType(ci) != hw.Little {
		t.Errorf("light thread placed on %v core", m.CoreType(ci))
	}
	if ci := g.PlaceThread(m, fresh); m.CoreType(ci) != hw.Big {
		t.Errorf("new thread placed on %v core (GTS is performance-first)", m.CoreType(ci))
	}
}

func TestGTSPlacementWithoutBigCores(t *testing.T) {
	mod := compileT(t, `func main() { }`)
	m, err := sim.New(mod, hw.OdroidXU4(), sim.Options{InitialConfig: hw.Config{Little: 3}})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGTS()
	heavy := sim.NewThreadForTest(0.9, 1000, 0)
	ci := g.PlaceThread(m, heavy)
	if m.CoreType(ci) != hw.Little {
		t.Errorf("with no big cores active, placement must fall back to LITTLE")
	}
}

func TestGTSRunsRealWorkload(t *testing.T) {
	src := `
func spin(n int) {
	var i int;
	var x float = 1.0;
	for (i = 0; i < n; i = i + 1) { x = x * 1.000001 + 0.5; }
}
func light() {
	var i int;
	for (i = 0; i < 6; i = i + 1) { sleep_ms(1); }
}
func main() {
	spawn spin(60000);
	spawn spin(60000);
	spawn light();
	spawn light();
	join();
}
`
	mod := compileT(t, src)
	run := func(os sim.OSPolicy) float64 {
		m, err := sim.New(mod, hw.OdroidXU4(), sim.Options{OS: os, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.TimeS
	}
	gts := run(NewGTS())
	def := run(nil) // least-loaded default
	if gts > def*1.5 {
		t.Errorf("GTS (%.6fs) much slower than default policy (%.6fs)", gts, def)
	}
}

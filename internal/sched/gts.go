package sched

import (
	"astro/internal/hw"
	"astro/internal/sim"
)

// GTS reimplements ARM's Global Task Scheduling, the paper's OS baseline:
// every core is visible to the scheduler; per-task load tracking migrates
// compute-intensive tasks to big cores and light tasks to LITTLE cores,
// with periodic balancing to avoid crowding the big cluster (Sec. 4.2).
type GTS struct {
	// UpLoad is the tracked-load threshold above which a task belongs on a
	// big core; DownLoad the threshold below which it belongs on a LITTLE.
	UpLoad   float64
	DownLoad float64
}

// NewGTS returns GTS with the default thresholds.
func NewGTS() *GTS { return &GTS{UpLoad: 0.55, DownLoad: 0.25} }

// Name implements sim.OSPolicy.
func (g *GTS) Name() string { return "gts" }

func (g *GTS) split(m *sim.Machine) (bigs, littles []int) {
	for _, ci := range m.ActiveCoreIDs() {
		if m.CoreType(ci) == hw.Big {
			bigs = append(bigs, ci)
		} else {
			littles = append(littles, ci)
		}
	}
	return
}

func leastLoaded(m *sim.Machine, cores []int, prefer int) int {
	best := -1
	bestLen := 0
	for _, ci := range cores {
		l := m.QueueLen(ci)
		if best == -1 || l < bestLen || (l == bestLen && ci == prefer) {
			best, bestLen = ci, l
		}
	}
	return best
}

// PlaceThread implements sim.OSPolicy. New tasks start on big cores
// (performance-first, as GTS does); thereafter tracked load decides.
func (g *GTS) PlaceThread(m *sim.Machine, t *sim.Thread) int {
	bigs, littles := g.split(m)
	switch {
	case len(bigs) == 0:
		return leastLoaded(m, littles, t.Core())
	case len(littles) == 0:
		return leastLoaded(m, bigs, t.Core())
	case t.Instructions() == 0 || t.Load >= g.UpLoad:
		return leastLoaded(m, bigs, t.Core())
	case t.Load <= g.DownLoad:
		return leastLoaded(m, littles, t.Core())
	default:
		all := append(append([]int(nil), bigs...), littles...)
		return leastLoaded(m, all, t.Core())
	}
}

// Rebalance implements sim.OSPolicy: up-migrate heavy tasks stuck on LITTLE
// cores, down-migrate light tasks hogging big cores, then even out queue
// lengths inside each cluster.
func (g *GTS) Rebalance(m *sim.Machine) {
	bigs, littles := g.split(m)
	if len(bigs) > 0 && len(littles) > 0 {
		for _, t := range m.Threads() {
			if !t.Ready() {
				continue
			}
			onBig := m.CoreType(t.Core()) == hw.Big
			if !onBig && t.Load >= g.UpLoad {
				target := leastLoaded(m, bigs, t.Core())
				if m.QueueLen(target) <= m.QueueLen(t.Core()) {
					m.MigrateThread(t, target)
				}
			} else if onBig && t.Load > 0 && t.Load <= g.DownLoad {
				target := leastLoaded(m, littles, t.Core())
				if m.QueueLen(target) <= m.QueueLen(t.Core())+1 {
					m.MigrateThread(t, target)
				}
			}
		}
	}
	g.evenCluster(m, bigs)
	g.evenCluster(m, littles)
}

func (g *GTS) evenCluster(m *sim.Machine, cores []int) {
	if len(cores) < 2 {
		return
	}
	for iter := 0; iter < 8; iter++ {
		minC, maxC := -1, -1
		minL, maxL := 0, 0
		for _, ci := range cores {
			l := m.QueueLen(ci)
			if minC == -1 || l < minL {
				minC, minL = ci, l
			}
			if maxC == -1 || l > maxL {
				maxC, maxL = ci, l
			}
		}
		if maxL-minL <= 1 {
			return
		}
		moved := false
		for _, t := range m.Threads() {
			if t.Ready() && t.Core() == maxC && m.MigrateThread(t, minC) {
				moved = true
				break
			}
		}
		if !moved {
			return
		}
	}
}

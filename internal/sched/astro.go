// Package sched implements the schedulers evaluated in the paper:
//
//   - Astro (Sec. 3.2): the checkpoint actuator driving Q-learning over
//     (configuration, program phase, hardware phase) states, in learning and
//     exploitation modes, plus static-policy extraction and the hybrid
//     runtime consulted by instrumented binaries.
//   - Hipster [20]: the same reward and learner but with a purely dynamic
//     state (no program phases), as the paper's customization describes.
//   - Octopus-Man [22]: the profiling/threshold ladder without learning.
//   - GTS: ARM's Global Task Scheduling, the OS baseline (big-first
//     placement by tracked load, periodic balancing).
package sched

import (
	"fmt"

	"astro/internal/features"
	"astro/internal/hw"
	"astro/internal/instrument"
	"astro/internal/ir"
	"astro/internal/perfmon"
	"astro/internal/rl"
	"astro/internal/sim"
)

// AstroActuator is the paper's actuation loop (Fig. 7): at every checkpoint
// it computes the reward of the previous action, updates the learner, and
// chooses the next hardware configuration.
type AstroActuator struct {
	Agent rl.Agent
	Plat  *hw.Platform
	// Gamma is the reward exponent (Definition 3.7): 1.0 optimizes energy,
	// 2.0 emphasizes performance (the paper's choice).
	Gamma float64
	// Learn enables exploration and online updates; exploitation mode only
	// queries the trained policy.
	Learn bool
	// UseProgPhase distinguishes Astro (true) from Hipster (false): Hipster
	// sees only the dynamic hardware state.
	UseProgPhase bool

	name       string
	prev       rl.State
	prevAction int
	hasPrev    bool
	norm       rl.Normalizer

	// visits records the states seen while learning; ExtractPolicyVisited
	// votes over them so the static policy reflects experienced states
	// rather than the approximator's extrapolation.
	visits []rl.State
}

// Visits returns the states observed during learning.
func (a *AstroActuator) Visits() []rl.State { return a.visits }

// NewAstro builds the Astro actuator.
func NewAstro(agent rl.Agent, plat *hw.Platform, learn bool) *AstroActuator {
	return &AstroActuator{
		Agent: agent, Plat: plat, Gamma: 2.0, Learn: learn,
		UseProgPhase: true, name: "astro",
	}
}

// NewHipster builds the Hipster variant: identical learner and reward but
// no program-phase awareness.
func NewHipster(agent rl.Agent, plat *hw.Platform, learn bool) *AstroActuator {
	return &AstroActuator{
		Agent: agent, Plat: plat, Gamma: 2.0, Learn: learn,
		UseProgPhase: false, name: "hipster",
	}
}

// Name implements sim.Actuator.
func (a *AstroActuator) Name() string { return a.name }

// state maps a checkpoint to the learner's state.
func (a *AstroActuator) state(ck sim.Checkpoint) rl.State {
	phase := 0
	if a.UseProgPhase {
		phase = int(ck.ProgPhase)
	}
	return rl.State{
		ConfigID:  a.Plat.ConfigID(ck.Config),
		ProgPhase: phase,
		HWPhaseID: ck.HWPhase.ID(),
	}
}

// OnCheckpoint implements sim.Actuator.
func (a *AstroActuator) OnCheckpoint(m *sim.Machine, ck sim.Checkpoint) hw.Config {
	s := a.state(ck)
	if a.Learn {
		a.visits = append(a.visits, s)
		if a.hasPrev {
			r := a.norm.Scale(rl.Reward(ck.MIPS(), ck.Watts(), a.Gamma))
			a.Agent.Observe(a.prev, a.prevAction, r, s)
		}
	}
	var action int
	if a.Learn {
		action = a.Agent.Select(s, true)
	} else {
		action = a.Agent.Best(s)
	}
	a.prev, a.prevAction, a.hasPrev = s, action, true
	return a.Plat.ConfigFromID(action)
}

// EndEpisode finishes one training run.
func (a *AstroActuator) EndEpisode() {
	a.Agent.EndEpisode()
	a.hasPrev = false
}

// TrainOptions configures the training loop.
type TrainOptions struct {
	Episodes int // default 12
	Seed     int64
	Args     []int64     // program arguments
	SimOpts  sim.Options // base options (Actuator/Seed overwritten per episode)
}

// EpisodeStat records one training episode's outcome, used to show
// convergence (the paper's claim that compiler hints speed it up).
type EpisodeStat struct {
	Episode int
	TimeS   float64
	EnergyJ float64
	Reward  float64 // whole-run MIPS^gamma/W, unscaled
}

// Train runs the learning-instrumented module repeatedly, updating the
// actuator's agent online, and returns per-episode statistics.
func Train(mod *ir.Module, plat *hw.Platform, act *AstroActuator, opts TrainOptions) ([]EpisodeStat, error) {
	if opts.Episodes == 0 {
		opts.Episodes = 12
	}
	var stats []EpisodeStat
	for ep := 0; ep < opts.Episodes; ep++ {
		so := opts.SimOpts
		so.Actuator = act
		so.Seed = opts.Seed + int64(ep)*7919
		so.Args = opts.Args
		m, err := sim.New(mod, plat, so)
		if err != nil {
			return stats, fmt.Errorf("sched: train episode %d: %w", ep, err)
		}
		res, err := m.Run()
		if err != nil {
			return stats, fmt.Errorf("sched: train episode %d: %w", ep, err)
		}
		act.EndEpisode()
		stats = append(stats, EpisodeStat{
			Episode: ep,
			TimeS:   res.TimeS,
			EnergyJ: res.EnergyJ,
			Reward:  rl.Reward(res.MIPS(), res.AvgWatts(), act.Gamma),
		})
	}
	return stats, nil
}

// TrainedAgent bundles everything a training run produces that downstream
// consumers need: the agent itself (hybrid runtimes query it), the visited
// states (policy extraction votes over them) and the per-episode statistics
// (convergence figures). It is the unit the campaign layer memoizes.
type TrainedAgent struct {
	Agent  rl.Agent
	Visits []rl.State
	Stats  []EpisodeStat
}

// TrainAstro is the bundled training entry point: build the named agent
// kind ("dqn" or "tabular", using cfg for both — the tabular learner takes
// cfg.Seed), wrap it in an Astro (or Hipster, when hipster is set) actuator
// with the given reward exponent (0 means the paper's 2.0), and run the
// training loop. The result is a pure function of (mod, plat, agentKind,
// cfg, hipster, gamma, opts) — the property the campaign trained-agent
// cache keys rely on.
func TrainAstro(mod *ir.Module, plat *hw.Platform, agentKind string, cfg rl.DQNConfig,
	hipster bool, gamma float64, opts TrainOptions) (*TrainedAgent, error) {
	var agent rl.Agent
	switch agentKind {
	case "", "dqn":
		agent = rl.NewDQN(plat.NumConfigs(), cfg)
	case "tabular":
		agent = rl.NewTabular(plat.NumConfigs(), cfg.Seed)
	default:
		return nil, fmt.Errorf("sched: unknown agent kind %q (have \"dqn\", \"tabular\")", agentKind)
	}
	var act *AstroActuator
	if hipster {
		act = NewHipster(agent, plat, true)
	} else {
		act = NewAstro(agent, plat, true)
	}
	if gamma != 0 {
		act.Gamma = gamma
	}
	stats, err := Train(mod, plat, act, opts)
	if err != nil {
		return nil, err
	}
	return &TrainedAgent{Agent: agent, Visits: act.Visits(), Stats: stats}, nil
}

// ExtractPolicy derives the per-phase static policy from a trained agent by
// majority vote of the greedy action across all hardware phases and current
// configurations (the knowledge "imprinted" into the final binary,
// Sec. 3.3).
func ExtractPolicy(agent rl.Agent, plat *hw.Platform) *instrument.Policy {
	pol := &instrument.Policy{}
	for p := 0; p < features.NumPhases; p++ {
		pol.PerPhase[p] = voteForPhase(agent, plat, p, nil)
	}
	return pol
}

// ExtractPolicyVisited is ExtractPolicy restricted, per phase, to the
// states actually visited during training. Voting over experienced states
// keeps the function-approximator's extrapolation noise out of the
// imprinted policy. Phases with too little evidence (under minVisits
// checkpoints) inherit the dominant phase's configuration rather than
// trusting extrapolation: pinning an exotic configuration on a region the
// training never observed is how static policies go pathological.
func ExtractPolicyVisited(agent rl.Agent, plat *hw.Platform, visits []rl.State) *instrument.Policy {
	const minVisits = 8
	byPhase := map[int][]rl.State{}
	for _, s := range visits {
		byPhase[s.ProgPhase] = append(byPhase[s.ProgPhase], s)
	}
	dominant, dominantN := 0, -1
	for p := 0; p < features.NumPhases; p++ {
		if n := len(byPhase[p]); n > dominantN {
			dominant, dominantN = p, n
		}
	}
	pol := &instrument.Policy{}
	var fallback hw.Config
	if dominantN > 0 {
		fallback = voteForPhase(agent, plat, dominant, byPhase[dominant])
	} else {
		fallback = plat.AllOn()
	}
	for p := 0; p < features.NumPhases; p++ {
		if len(byPhase[p]) >= minVisits {
			pol.PerPhase[p] = voteForPhase(agent, plat, p, byPhase[p])
		} else {
			pol.PerPhase[p] = fallback
		}
	}
	return pol
}

// voteForPhase tallies greedy actions for one program phase; states lists
// the visited states to vote over (nil means the full product of hardware
// phases and configurations).
func voteForPhase(agent rl.Agent, plat *hw.Platform, phase int, states []rl.State) hw.Config {
	n := plat.NumConfigs()
	votes := make([]int, n)
	if len(states) == 0 {
		for hwp := 0; hwp < perfmon.NumPhases; hwp++ {
			for cfg := 0; cfg < n; cfg++ {
				votes[agent.Best(rl.State{ConfigID: cfg, ProgPhase: phase, HWPhaseID: hwp})]++
			}
		}
	} else {
		for _, s := range states {
			s.ProgPhase = phase
			votes[agent.Best(s)]++
		}
	}
	best := 0
	for a := 1; a < n; a++ {
		if votes[a] > votes[best] {
			best = a
		}
	}
	return plat.ConfigFromID(best)
}

// HybridRuntime implements sim.HybridPolicy: the resident Astro library
// consulted by hybrid-instrumented binaries at phase boundaries. Per the
// paper (Fig. 8c and the Fig. 10 caption), the hybrid "uses runtime
// information to improve on the static decisions": it starts from the
// imprinted per-phase policy and deviates to the learner's choice only when
// the learner's value estimate beats the static choice by a clear margin in
// the current hardware phase. It also rate-limits decisions so hot call
// paths cannot thrash the hardware.
type HybridRuntime struct {
	Agent  rl.Agent
	Plat   *hw.Platform
	Policy *instrument.Policy // static base decisions; nil = pure agent
	// Margin is the Q-value advantage the agent needs to override the
	// static policy (default 0.05 in scaled-reward units).
	Margin float64
	// MinDwellS suppresses re-decisions closer together than this (default
	// 500 µs).
	MinDwellS float64

	lastT   float64
	lastCfg hw.Config
	started bool
}

// NewHybridRuntime builds the resident policy around a trained agent and
// the extracted static policy.
func NewHybridRuntime(agent rl.Agent, plat *hw.Platform) *HybridRuntime {
	return &HybridRuntime{Agent: agent, Plat: plat, Margin: 0.15, MinDwellS: 500e-6}
}

// DetermineConfig implements sim.HybridPolicy.
func (h *HybridRuntime) DetermineConfig(s sim.HybridState) hw.Config {
	if h.started && s.TimeS-h.lastT < h.MinDwellS {
		return h.lastCfg
	}
	st := rl.State{
		ConfigID:  h.Plat.ConfigID(s.Config),
		ProgPhase: int(s.Phase),
		HWPhaseID: s.HWPhase.ID(),
	}
	cfg := h.Plat.ConfigFromID(h.Agent.Best(st))
	if h.Policy != nil {
		static := h.Policy.PerPhase[s.Phase]
		if h.Agent.Q(st, h.Plat.ConfigID(cfg))-h.Agent.Q(st, h.Plat.ConfigID(static)) < h.Margin {
			cfg = static
		}
	}
	h.lastT, h.lastCfg, h.started = s.TimeS, cfg, true
	return cfg
}

package sched

import (
	"astro/internal/hw"
	"astro/internal/sim"
)

// OctopusMan reimplements the profiling mechanism of Octopus-Man [22] as
// the paper uses it: a threshold-driven ladder over configurations ordered
// by capability, with no notion of reward or learning. High utilization
// climbs to a stronger configuration, low utilization steps down to save
// energy.
type OctopusMan struct {
	Plat     *hw.Platform
	UpUtil   float64 // climb when window utilization >= this (default 0.8)
	DownUtil float64 // descend when utilization <= this (default 0.3)

	ladder []int
	pos    int
}

// NewOctopusMan builds the ladder policy starting at the weakest rung.
func NewOctopusMan(plat *hw.Platform) *OctopusMan {
	return &OctopusMan{
		Plat:     plat,
		UpUtil:   0.8,
		DownUtil: 0.3,
		ladder:   plat.ConfigsByCapability(),
	}
}

// Name implements sim.Actuator.
func (o *OctopusMan) Name() string { return "octopus-man" }

// Rung returns the current ladder position (for tests).
func (o *OctopusMan) Rung() int { return o.pos }

// OnCheckpoint implements sim.Actuator.
func (o *OctopusMan) OnCheckpoint(m *sim.Machine, ck sim.Checkpoint) hw.Config {
	util := ck.HW.Util()
	if util >= o.UpUtil && o.pos+1 < len(o.ladder) {
		o.pos++
	} else if util <= o.DownUtil && o.pos > 0 {
		o.pos--
	}
	return o.Plat.ConfigFromID(o.ladder[o.pos])
}

// Fixed is an actuator that pins one configuration (the paper's immutable
// best-configuration baselines, RQ2).
type Fixed struct {
	Config hw.Config
}

// Name implements sim.Actuator.
func (f *Fixed) Name() string { return "fixed-" + f.Config.String() }

// OnCheckpoint implements sim.Actuator.
func (f *Fixed) OnCheckpoint(m *sim.Machine, ck sim.Checkpoint) hw.Config {
	return f.Config
}

// Random chooses the next configuration uniformly at random each
// checkpoint (the no-intelligence control of Fig. 9's comparison).
type Random struct {
	Plat *hw.Platform
	Seed uint64
}

// Name implements sim.Actuator.
func (r *Random) Name() string { return "random" }

// OnCheckpoint implements sim.Actuator.
func (r *Random) OnCheckpoint(m *sim.Machine, ck sim.Checkpoint) hw.Config {
	// xorshift64* keeps the actuator self-contained and deterministic.
	x := r.Seed*2862933555777941757 + 3037000493
	r.Seed = x
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	id := int((x * 2685821657736338717) % uint64(r.Plat.NumConfigs()))
	return r.Plat.ConfigFromID(id)
}

package rl

import (
	"fmt"
	"math"
	"math/rand"

	"astro/internal/features"
	"astro/internal/perfmon"
)

// State is the Q-learning state of Definition 3.2: hardware configuration,
// static program phase and dynamic hardware phase.
type State struct {
	ConfigID  int // dense configuration id (hw.Platform.ConfigID)
	ProgPhase int // features.Phase
	HWPhaseID int // perfmon.HWPhase.ID()
}

// EncodeDim returns the input dimension of the network encoding for a
// platform with nConfigs configurations.
func EncodeDim(nConfigs int) int {
	return nConfigs + features.NumPhases + 12 // 4 counters x 3 buckets
}

// Encode produces the network input: one-hot configuration, one-hot program
// phase, and one-hot buckets of the four hardware counters.
func Encode(s State, nConfigs int, dst []float64) []float64 {
	dim := EncodeDim(nConfigs)
	if cap(dst) < dim {
		dst = make([]float64, dim)
	}
	dst = dst[:dim]
	for i := range dst {
		dst[i] = 0
	}
	if s.ConfigID >= 0 && s.ConfigID < nConfigs {
		dst[s.ConfigID] = 1
	}
	if s.ProgPhase >= 0 && s.ProgPhase < features.NumPhases {
		dst[nConfigs+s.ProgPhase] = 1
	}
	h := perfmon.FromID(s.HWPhaseID)
	base := nConfigs + features.NumPhases
	dst[base+h.IPCBucket] = 1
	dst[base+3+h.CMABucket] = 1
	dst[base+6+h.CMIBucket] = 1
	dst[base+9+h.CPUBucket] = 1
	return dst
}

// Reward is the paper's metric MIPS^gamma / Watt (Definition 3.7 and the
// discussion that follows): gamma=1 optimizes energy, gamma=2 maximizes the
// inverse energy-delay product, emphasizing performance.
func Reward(mips, watts, gamma float64) float64 {
	if watts <= 0 || mips < 0 {
		return 0
	}
	return math.Pow(mips, gamma) / watts
}

// ScaleReward compresses rewards to a range the learners handle well
// (MIPS²/W spans many orders of magnitude): log1p then a constant divisor.
// Prefer Normalizer for online learning — log compression flattens the
// differences between good and mediocre configurations.
func ScaleReward(r float64) float64 {
	if r < 0 {
		r = 0
	}
	return math.Log1p(r) / 10
}

// Normalizer rescales raw rewards into [0, 1] against a slowly decaying
// running maximum, preserving the ratios between configurations (a config
// with half the reward really looks half as good to the learner).
type Normalizer struct {
	max float64
}

// Scale normalizes r and updates the running maximum.
func (n *Normalizer) Scale(r float64) float64 {
	if r < 0 {
		r = 0
	}
	n.max *= 0.999 // slow decay tracks non-stationary reward magnitudes
	if r > n.max {
		n.max = r
	}
	if n.max <= 0 {
		return 0
	}
	return r / n.max
}

// Agent is a Q-learning policy over States with NumActions() actions
// (one per hardware configuration).
type Agent interface {
	Name() string
	NumActions() int
	// Select picks an action, exploring when explore is true.
	Select(s State, explore bool) int
	// Best returns the greedy action.
	Best(s State) int
	// Q returns the current value estimate for (s, action).
	Q(s State, action int) float64
	// Observe records a transition: acting with action in prev yielded
	// reward (already scaled) and led to next.
	Observe(prev State, action int, reward float64, next State)
	// EndEpisode signals the end of a training run (decays exploration).
	EndEpisode()
}

// DQNConfig parameterizes the neural Q-learner.
type DQNConfig struct {
	Hidden   int     // hidden layer width (default 48)
	LR       float64 // SGD learning rate (default 0.03)
	Discount float64 // TD discount (default 0.6)
	Eps0     float64 // initial exploration rate (default 0.5)
	EpsMin   float64 // exploration floor (default 0.03)
	EpsDecay float64 // per-episode decay (default 0.9)
	Seed     int64
	// Replay controls experience replay: each Observe also trains on
	// Replay transitions sampled from a ring buffer, which makes the
	// learner usable with the few hundred checkpoints a training run
	// yields. 0 uses the default of 6; negative disables replay.
	Replay int
}

func (c *DQNConfig) setDefaults() {
	if c.Hidden == 0 {
		c.Hidden = 48
	}
	if c.LR == 0 {
		c.LR = 0.03
	}
	if c.Discount == 0 {
		c.Discount = 0.6
	}
	if c.Eps0 == 0 {
		c.Eps0 = 0.5
	}
	if c.EpsMin == 0 {
		c.EpsMin = 0.03
	}
	if c.EpsDecay == 0 {
		c.EpsDecay = 0.9
	}
	if c.Replay == 0 {
		c.Replay = 6
	}
}

// transition is one stored experience for replay.
type transition struct {
	prev   State
	action int
	reward float64
	next   State
}

// DQN is the paper's neural-network Q-learner: states in, one Q-value per
// configuration out, trained online by TD(0) gradient descent with a small
// experience-replay buffer.
type DQN struct {
	cfg      DQNConfig
	nActions int
	nConfigs int
	net      *Network
	eps      float64
	rng      *rand.Rand
	scratch  []float64

	buf    []transition
	bufCap int
	bufPos int
}

// NewDQN builds the neural agent for a platform with nConfigs
// configurations (actions select the next configuration).
func NewDQN(nConfigs int, cfg DQNConfig) *DQN {
	cfg.setDefaults()
	return &DQN{
		cfg:      cfg,
		nActions: nConfigs,
		nConfigs: nConfigs,
		net:      NewNetwork(cfg.Seed, EncodeDim(nConfigs), cfg.Hidden, nConfigs),
		eps:      cfg.Eps0,
		rng:      rand.New(rand.NewSource(cfg.Seed + 1)),
		bufCap:   4096,
	}
}

// Name implements Agent.
func (d *DQN) Name() string { return "dqn" }

// NumActions implements Agent.
func (d *DQN) NumActions() int { return d.nActions }

// Epsilon returns the current exploration rate.
func (d *DQN) Epsilon() float64 { return d.eps }

// Select implements Agent.
func (d *DQN) Select(s State, explore bool) int {
	if explore && d.rng.Float64() < d.eps {
		return d.rng.Intn(d.nActions)
	}
	return d.Best(s)
}

// Best implements Agent.
func (d *DQN) Best(s State) int {
	d.scratch = Encode(s, d.nConfigs, d.scratch)
	q := d.net.Forward(d.scratch)
	best := 0
	for a := 1; a < len(q); a++ {
		if q[a] > q[best] {
			best = a
		}
	}
	return best
}

// Q implements Agent.
func (d *DQN) Q(s State, action int) float64 {
	d.scratch = Encode(s, d.nConfigs, d.scratch)
	return d.net.Forward(d.scratch)[action]
}

// Observe implements Agent: one TD(0) SGD step on the new transition plus
// replayed steps on past experience.
func (d *DQN) Observe(prev State, action int, reward float64, next State) {
	if action < 0 || action >= d.nActions {
		panic(fmt.Sprintf("rl: action %d out of range", action))
	}
	d.step(transition{prev, action, reward, next})
	tr := transition{prev, action, reward, next}
	if len(d.buf) < d.bufCap {
		d.buf = append(d.buf, tr)
	} else {
		d.buf[d.bufPos] = tr
		d.bufPos = (d.bufPos + 1) % d.bufCap
	}
	for i := 0; i < d.cfg.Replay && len(d.buf) > 1; i++ {
		d.step(d.buf[d.rng.Intn(len(d.buf))])
	}
}

func (d *DQN) step(tr transition) {
	d.scratch = Encode(tr.next, d.nConfigs, d.scratch)
	q := d.net.Forward(d.scratch)
	maxQ := q[0]
	for _, v := range q[1:] {
		if v > maxQ {
			maxQ = v
		}
	}
	target := tr.reward + d.cfg.Discount*maxQ
	d.scratch = Encode(tr.prev, d.nConfigs, d.scratch)
	d.net.TrainAction(d.scratch, tr.action, target, d.cfg.LR)
}

// EndEpisode implements Agent.
func (d *DQN) EndEpisode() {
	d.eps *= d.cfg.EpsDecay
	if d.eps < d.cfg.EpsMin {
		d.eps = d.cfg.EpsMin
	}
}

// Tabular is a classic table-based Q-learner over the discrete state space
// (|configs| x 4 program phases x 81 hardware phases). It serves as the
// ablation counterpart to the paper's neural learner.
type Tabular struct {
	nActions int
	nConfigs int
	alpha    float64
	discount float64
	eps      float64
	epsMin   float64
	epsDecay float64
	q        []float64
	rng      *rand.Rand
	seed     int64
}

// NewTabular builds the table-based agent.
func NewTabular(nConfigs int, seed int64) *Tabular {
	nStates := nConfigs * features.NumPhases * perfmon.NumPhases
	return &Tabular{
		nActions: nConfigs,
		nConfigs: nConfigs,
		seed:     seed,
		alpha:    0.3,
		discount: 0.6,
		eps:      0.5,
		epsMin:   0.03,
		epsDecay: 0.9,
		q:        make([]float64, nStates*nConfigs),
		rng:      rand.New(rand.NewSource(seed + 2)),
	}
}

// SetParams overrides the learning hyper-parameters. Zero values keep the
// current setting.
func (t *Tabular) SetParams(alpha, discount, eps0, epsMin, epsDecay float64) {
	if alpha != 0 {
		t.alpha = alpha
	}
	if discount != 0 {
		t.discount = discount
	}
	if eps0 != 0 {
		t.eps = eps0
	}
	if epsMin != 0 {
		t.epsMin = epsMin
	}
	if epsDecay != 0 {
		t.epsDecay = epsDecay
	}
}

func (t *Tabular) stateIndex(s State) int {
	c := s.ConfigID
	if c < 0 || c >= t.nConfigs {
		c = 0
	}
	p := s.ProgPhase
	if p < 0 || p >= features.NumPhases {
		p = 0
	}
	h := s.HWPhaseID
	if h < 0 || h >= perfmon.NumPhases {
		h = 0
	}
	return (c*features.NumPhases+p)*perfmon.NumPhases + h
}

// Name implements Agent.
func (t *Tabular) Name() string { return "tabular" }

// NumActions implements Agent.
func (t *Tabular) NumActions() int { return t.nActions }

// Select implements Agent.
func (t *Tabular) Select(s State, explore bool) int {
	if explore && t.rng.Float64() < t.eps {
		return t.rng.Intn(t.nActions)
	}
	return t.Best(s)
}

// Best implements Agent.
func (t *Tabular) Best(s State) int {
	base := t.stateIndex(s) * t.nActions
	best := 0
	for a := 1; a < t.nActions; a++ {
		if t.q[base+a] > t.q[base+best] {
			best = a
		}
	}
	return best
}

// Q implements Agent.
func (t *Tabular) Q(s State, action int) float64 {
	return t.q[t.stateIndex(s)*t.nActions+action]
}

// Observe implements Agent: classic Q-learning update.
func (t *Tabular) Observe(prev State, action int, reward float64, next State) {
	nb := t.stateIndex(next) * t.nActions
	maxQ := t.q[nb]
	for a := 1; a < t.nActions; a++ {
		if t.q[nb+a] > maxQ {
			maxQ = t.q[nb+a]
		}
	}
	i := t.stateIndex(prev)*t.nActions + action
	t.q[i] += t.alpha * (reward + t.discount*maxQ - t.q[i])
}

// EndEpisode implements Agent.
func (t *Tabular) EndEpisode() {
	t.eps *= t.epsDecay
	if t.eps < t.epsMin {
		t.eps = t.epsMin
	}
}

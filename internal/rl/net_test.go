package rl

import (
	"math"
	"math/rand"
	"testing"
)

func TestNetworkShapes(t *testing.T) {
	n := NewNetwork(1, 5, 8, 3)
	if n.NumInputs() != 5 || n.NumOutputs() != 3 {
		t.Fatalf("dims %d/%d", n.NumInputs(), n.NumOutputs())
	}
	out := n.Forward([]float64{1, 0, -1, 0.5, 2})
	if len(out) != 3 {
		t.Fatalf("out len %d", len(out))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad input size accepted")
		}
	}()
	n.Forward([]float64{1})
}

func TestNetworkDeterministicInit(t *testing.T) {
	a := NewNetwork(7, 4, 6, 2)
	b := NewNetwork(7, 4, 6, 2)
	x := []float64{0.1, -0.2, 0.3, 0.4}
	oa := append([]float64(nil), a.Forward(x)...)
	ob := b.Forward(x)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("same seed, different outputs: %v vs %v", oa, ob)
		}
	}
	c := NewNetwork(8, 4, 6, 2)
	oc := c.Forward(x)
	same := true
	for i := range oa {
		if oa[i] != oc[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical networks")
	}
}

// TestGradientCheck compares backprop gradients against numeric
// differentiation on a small network.
func TestGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := NewNetwork(3, 4, 6, 2)
	x := []float64{0.3, -0.7, 1.1, 0.2}
	target := 0.9
	action := 1

	// loss(theta) = 0.5-ish squared error on output[action]; TrainAction
	// uses d = out-target (i.e. gradient of 0.5*d^2... it uses d directly,
	// so effective loss is 0.5*d^2 scaled by 2; we only compare directions
	// via finite differences of 0.5*d^2 against half the applied update).
	loss := func() float64 {
		out := n.Forward(x)
		d := out[action] - target
		return 0.5 * d * d
	}

	w0, b0 := n.Weights()
	// Pick a few random weights and compare numeric gradient with the
	// update applied by TrainAction at learning rate lr.
	const eps = 1e-6
	const lr = 1e-3
	for trial := 0; trial < 12; trial++ {
		l := rng.Intn(len(w0))
		o := rng.Intn(len(w0[l]))
		i := rng.Intn(len(w0[l][o]))

		if err := n.SetWeights(w0, b0); err != nil {
			t.Fatal(err)
		}
		n.w[l][o][i] = w0[l][o][i] + eps
		lp := loss()
		n.w[l][o][i] = w0[l][o][i] - eps
		lm := loss()
		numeric := (lp - lm) / (2 * eps)

		if err := n.SetWeights(w0, b0); err != nil {
			t.Fatal(err)
		}
		n.TrainAction(x, action, target, lr)
		applied := (w0[l][o][i] - n.w[l][o][i]) / lr // = dLoss/dw (for 0.5d^2)

		if math.Abs(numeric-applied) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("w[%d][%d][%d]: numeric %v vs backprop %v", l, o, i, numeric, applied)
		}
	}
}

func TestTrainVectorLearnsXOR(t *testing.T) {
	n := NewNetwork(3, 2, 16, 1)
	data := [][2][]float64{
		{{0, 0}, {0}},
		{{0, 1}, {1}},
		{{1, 0}, {1}},
		{{1, 1}, {0}},
	}
	rng := rand.New(rand.NewSource(9))
	for epoch := 0; epoch < 4000; epoch++ {
		d := data[rng.Intn(4)]
		n.TrainVector(d[0], d[1], 0.05)
	}
	for _, d := range data {
		got := n.Forward(d[0])[0]
		if math.Abs(got-d[1][0]) > 0.25 {
			t.Errorf("xor(%v) = %v, want %v", d[0], got, d[1][0])
		}
	}
}

func TestTrainActionConverges(t *testing.T) {
	n := NewNetwork(4, 3, 12, 4)
	x := []float64{1, 0, 0}
	for i := 0; i < 500; i++ {
		n.TrainAction(x, 2, 5.0, 0.05)
	}
	out := n.Forward(x)
	if math.Abs(out[2]-5.0) > 0.2 {
		t.Errorf("out[2] = %v, want ~5.0", out[2])
	}
}

func TestSetWeightsRejectsBadShapes(t *testing.T) {
	a := NewNetwork(1, 3, 4, 2)
	b := NewNetwork(1, 3, 5, 2)
	w, bb := b.Weights()
	if err := a.SetWeights(w, bb); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

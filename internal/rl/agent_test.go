package rl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"astro/internal/features"
	"astro/internal/perfmon"
)

func TestEncodeOneHots(t *testing.T) {
	nConfigs := 24
	s := State{ConfigID: 5, ProgPhase: int(features.PhaseCPUBound), HWPhaseID: perfmon.HWPhase{IPCBucket: 2, CMABucket: 1, CMIBucket: 0, CPUBucket: 2}.ID()}
	x := Encode(s, nConfigs, nil)
	if len(x) != EncodeDim(nConfigs) {
		t.Fatalf("dim %d, want %d", len(x), EncodeDim(nConfigs))
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	if sum != 6 { // config + phase + 4 counter buckets
		t.Errorf("one-hot sum = %v, want 6", sum)
	}
	if x[5] != 1 {
		t.Error("config one-hot missing")
	}
	if x[nConfigs+int(features.PhaseCPUBound)] != 1 {
		t.Error("phase one-hot missing")
	}
	base := nConfigs + features.NumPhases
	if x[base+2] != 1 || x[base+3+1] != 1 || x[base+6+0] != 1 || x[base+9+2] != 1 {
		t.Errorf("hw buckets wrong: %v", x[base:])
	}
}

func TestEncodeReusesBuffer(t *testing.T) {
	buf := make([]float64, EncodeDim(24))
	out := Encode(State{}, 24, buf)
	if &out[0] != &buf[0] {
		t.Error("Encode did not reuse the buffer")
	}
}

func TestRewardShape(t *testing.T) {
	// gamma=1: performance per watt; gamma=2 emphasizes performance.
	if Reward(100, 2, 1) != 50 {
		t.Errorf("Reward(100,2,1) = %v", Reward(100, 2, 1))
	}
	if Reward(100, 2, 2) != 5000 {
		t.Errorf("Reward(100,2,2) = %v", Reward(100, 2, 2))
	}
	if Reward(100, 0, 2) != 0 || Reward(-5, 2, 2) != 0 {
		t.Error("degenerate rewards must be 0")
	}
	// With gamma=2, doubling speed at double power is an improvement
	// (energy-delay product falls).
	if !(Reward(200, 4, 2) > Reward(100, 2, 2)) {
		t.Error("gamma=2 must prefer 2x speed at 2x power")
	}
	// With gamma=1 it is a wash.
	if math.Abs(Reward(200, 4, 1)-Reward(100, 2, 1)) > 1e-12 {
		t.Error("gamma=1 must be indifferent to proportional scaling")
	}
}

func TestScaleRewardMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return ScaleReward(a) <= ScaleReward(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if ScaleReward(-5) != 0 {
		t.Error("negative rewards clamp to 0")
	}
}

// syntheticMDP is a tiny deterministic environment for agent tests: the
// program cycles through program phases, and each phase has a known best
// action. Reward depends only on (phase, action).
type syntheticMDP struct {
	rewards  [][]float64 // [phase][action]
	nPhases  int
	nActions int
}

func (e *syntheticMDP) bestAction(phase int) int {
	best := 0
	for a := 1; a < e.nActions; a++ {
		if e.rewards[phase][a] > e.rewards[phase][best] {
			best = a
		}
	}
	return best
}

func trainAgent(t *testing.T, agent Agent, e *syntheticMDP, episodes, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	for ep := 0; ep < episodes; ep++ {
		phase := 0
		cfg := rng.Intn(agent.NumActions())
		s := State{ConfigID: cfg, ProgPhase: phase, HWPhaseID: 0}
		for i := 0; i < steps; i++ {
			a := agent.Select(s, true)
			r := ScaleReward(e.rewards[phase][a])
			phase = (phase + 1) % e.nPhases
			next := State{ConfigID: a, ProgPhase: phase, HWPhaseID: 0}
			agent.Observe(s, a, r, next)
			s = next
		}
		agent.EndEpisode()
	}
}

func mdpFor(nActions int) *syntheticMDP {
	e := &syntheticMDP{nPhases: 3, nActions: nActions}
	e.rewards = make([][]float64, e.nPhases)
	for p := range e.rewards {
		e.rewards[p] = make([]float64, nActions)
		for a := range e.rewards[p] {
			// Phase p prefers action 2p+1; reward decays with distance.
			d := float64(a - (2*p + 1))
			e.rewards[p][a] = 1000 / (1 + d*d)
		}
	}
	return e
}

// greedyReturn rolls the environment forward under the agent's greedy
// policy and returns the mean raw reward per step.
func greedyReturn(agent Agent, e *syntheticMDP, steps int) float64 {
	phase := 0
	s := State{ConfigID: 0, ProgPhase: phase, HWPhaseID: 0}
	var total float64
	for i := 0; i < steps; i++ {
		a := agent.Best(s)
		total += e.rewards[phase][a]
		phase = (phase + 1) % e.nPhases
		s = State{ConfigID: a, ProgPhase: phase, HWPhaseID: 0}
	}
	return total / float64(steps)
}

func optimalReturn(e *syntheticMDP) float64 {
	var total float64
	for p := 0; p < e.nPhases; p++ {
		total += e.rewards[p][e.bestAction(p)]
	}
	return total / float64(e.nPhases)
}

func TestTabularLearnsPhaseDependentPolicy(t *testing.T) {
	e := mdpFor(8)
	agent := NewTabular(8, 1)
	agent.SetParams(0.3, 0.3, 0.6, 0.05, 0.95)
	trainAgent(t, agent, e, 120, 150)
	got := greedyReturn(agent, e, 300)
	want := optimalReturn(e)
	if got < 0.85*want {
		t.Errorf("greedy return %v < 85%% of optimal %v", got, want)
	}
}

func TestDQNLearnsPhaseDependentPolicy(t *testing.T) {
	e := mdpFor(8)
	agent := NewDQN(8, DQNConfig{Seed: 3, LR: 0.05, Discount: 0.3})
	trainAgent(t, agent, e, 80, 150)
	got := greedyReturn(agent, e, 300)
	want := optimalReturn(e)
	if got < 0.75*want {
		t.Errorf("greedy return %v < 75%% of optimal %v", got, want)
	}
	// The learner must beat a uniformly random policy by a clear margin.
	var random float64
	for p := 0; p < e.nPhases; p++ {
		for a := 0; a < e.nActions; a++ {
			random += e.rewards[p][a]
		}
	}
	random /= float64(e.nPhases * e.nActions)
	if got <= random {
		t.Errorf("greedy return %v does not beat random %v", got, random)
	}
}

func TestEpsilonDecay(t *testing.T) {
	d := NewDQN(4, DQNConfig{Seed: 1, Eps0: 0.5, EpsDecay: 0.5, EpsMin: 0.1})
	if d.Epsilon() != 0.5 {
		t.Fatalf("eps0 = %v", d.Epsilon())
	}
	for i := 0; i < 10; i++ {
		d.EndEpisode()
	}
	if d.Epsilon() != 0.1 {
		t.Errorf("eps floor = %v, want 0.1", d.Epsilon())
	}
}

func TestAgentsDeterministicGivenSeed(t *testing.T) {
	e := mdpFor(6)
	a1 := NewDQN(6, DQNConfig{Seed: 42})
	a2 := NewDQN(6, DQNConfig{Seed: 42})
	trainAgent(t, a1, e, 10, 50)
	trainAgent(t, a2, e, 10, 50)
	for p := 0; p < 3; p++ {
		s := State{ConfigID: 0, ProgPhase: p, HWPhaseID: 0}
		if a1.Best(s) != a2.Best(s) {
			t.Fatalf("same-seed DQNs diverged at phase %d", p)
		}
		if a1.Q(s, 1) != a2.Q(s, 1) {
			t.Fatalf("same-seed Q values diverged")
		}
	}
}

func TestTabularStateIndexBounds(t *testing.T) {
	tab := NewTabular(24, 0)
	// Out-of-range states must not panic (clamped to 0).
	weird := []State{
		{ConfigID: -1, ProgPhase: -1, HWPhaseID: -1},
		{ConfigID: 99, ProgPhase: 99, HWPhaseID: 9999},
	}
	for _, s := range weird {
		_ = tab.Best(s)
		tab.Observe(s, 0, 0.5, s)
	}
}

// TestObserveSteadyStateZeroAllocs pins the per-checkpoint learning cost:
// once the replay ring is full, a DQN.Observe (one TD step plus replayed
// steps) performs zero heap allocations, and Tabular.Observe never
// allocates. Training throughput is what makes the paper suite's residual
// warm-cache time, so regressions here are regressions everywhere.
func TestObserveSteadyStateZeroAllocs(t *testing.T) {
	d := NewDQN(24, DQNConfig{Seed: 5})
	s := State{ConfigID: 3, ProgPhase: 2, HWPhaseID: 40}
	for i := 0; i < 5000; i++ {
		d.Observe(s, i%24, 0.5, s) // fill the replay ring
	}
	if allocs := testing.AllocsPerRun(200, func() { d.Observe(s, 1, 0.5, s) }); allocs != 0 {
		t.Fatalf("DQN.Observe allocates %.1f objects/run in steady state, want 0", allocs)
	}
	tab := NewTabular(24, 5)
	if allocs := testing.AllocsPerRun(200, func() { tab.Observe(s, 1, 0.5, s) }); allocs != 0 {
		t.Fatalf("Tabular.Observe allocates %.1f objects/run, want 0", allocs)
	}
}

// BenchmarkObserve measures one Q-learning update with replay (the
// per-checkpoint cost of the Astro runtime while learning).
func BenchmarkObserve(b *testing.B) {
	d := NewDQN(24, DQNConfig{Seed: 5})
	s := State{ConfigID: 3, ProgPhase: 2, HWPhaseID: 40}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(s, i%24, 0.5, s)
	}
}

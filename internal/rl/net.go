// Package rl implements the learning machinery of the Astro system
// (Sec. 3.2.2): a small multi-layer neural network trained by gradient
// descent, used as a Q-function approximator over states
// (configuration, program phase, hardware phase), plus a tabular Q-learner
// used as an ablation baseline. The reward is the paper's weighted
// performance-per-watt, MIPS^gamma / Watt.
package rl

import (
	"fmt"
	"math"
	"math/rand"
)

// Network is a fully connected MLP with ReLU hidden layers and a linear
// output layer.
type Network struct {
	sizes []int
	// w[l][out][in], b[l][out] for layer l connecting sizes[l] -> sizes[l+1].
	w [][][]float64
	b [][]float64

	// Scratch buffers reused across Forward/Train calls.
	acts [][]float64 // acts[0] = input copy, acts[l+1] = layer l output
	zs   [][]float64 // pre-activation values
	errs [][]float64 // backprop deltas
	grad []float64   // output-gradient scratch (training is allocation-free)
}

// NewNetwork builds a network with the given layer sizes (at least input
// and output), deterministically initialized (He initialization) from seed.
func NewNetwork(seed int64, sizes ...int) *Network {
	if len(sizes) < 2 {
		panic(fmt.Sprintf("rl: network needs >=2 layer sizes, got %v", sizes))
	}
	rng := rand.New(rand.NewSource(seed))
	n := &Network{sizes: append([]int(nil), sizes...)}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		scale := math.Sqrt(2.0 / float64(in))
		wl := make([][]float64, out)
		for o := range wl {
			row := make([]float64, in)
			for i := range row {
				row[i] = rng.NormFloat64() * scale
			}
			wl[o] = row
		}
		n.w = append(n.w, wl)
		n.b = append(n.b, make([]float64, out))
	}
	n.acts = make([][]float64, len(sizes))
	n.zs = make([][]float64, len(sizes)-1)
	n.errs = make([][]float64, len(sizes)-1)
	n.grad = make([]float64, sizes[len(sizes)-1])
	for i, s := range sizes {
		n.acts[i] = make([]float64, s)
		if i > 0 {
			n.zs[i-1] = make([]float64, s)
			n.errs[i-1] = make([]float64, s)
		}
	}
	return n
}

// NumInputs returns the input dimension.
func (n *Network) NumInputs() int { return n.sizes[0] }

// NumOutputs returns the output dimension.
func (n *Network) NumOutputs() int { return n.sizes[len(n.sizes)-1] }

// Forward runs inference; the returned slice is owned by the network and
// valid until the next call.
func (n *Network) Forward(x []float64) []float64 {
	if len(x) != n.sizes[0] {
		panic(fmt.Sprintf("rl: input size %d, want %d", len(x), n.sizes[0]))
	}
	copy(n.acts[0], x)
	last := len(n.w) - 1
	for l := 0; l < len(n.w); l++ {
		in := n.acts[l]
		for o := range n.w[l] {
			row := n.w[l][o]
			z := n.b[l][o]
			for i, v := range in {
				z += row[i] * v
			}
			n.zs[l][o] = z
			if l == last {
				n.acts[l+1][o] = z // linear output
			} else if z > 0 {
				n.acts[l+1][o] = z // ReLU
			} else {
				n.acts[l+1][o] = 0
			}
		}
	}
	return n.acts[len(n.acts)-1]
}

// TrainAction performs one SGD step pushing output[action] toward target
// (squared loss on that single output, as in TD learning); other outputs
// are untouched. Returns the pre-update squared error.
func (n *Network) TrainAction(x []float64, action int, target, lr float64) float64 {
	out := n.Forward(x)
	diff := out[action] - target
	grad := n.grad
	for i := range grad {
		grad[i] = 0
	}
	grad[action] = diff
	n.backprop(grad, lr)
	return diff * diff
}

// TrainVector performs one SGD step toward a full target vector (mean
// squared loss). Returns the pre-update loss.
func (n *Network) TrainVector(x, target []float64, lr float64) float64 {
	out := n.Forward(x)
	if len(target) != len(out) {
		panic("rl: target size mismatch")
	}
	grad := n.grad
	var loss float64
	for i := range out {
		d := out[i] - target[i]
		grad[i] = d
		loss += d * d
	}
	n.backprop(grad, lr)
	return loss / float64(len(out))
}

// backprop propagates the output-layer gradient (dLoss/dOutput) and applies
// an SGD update with learning rate lr. Must be called right after Forward
// (it reuses the stored activations).
func (n *Network) backprop(outGrad []float64, lr float64) {
	last := len(n.w) - 1
	copy(n.errs[last], outGrad) // linear output layer: delta = grad
	for l := last - 1; l >= 0; l-- {
		next := n.errs[l+1]
		for o := range n.errs[l] {
			if n.zs[l][o] <= 0 { // ReLU derivative
				n.errs[l][o] = 0
				continue
			}
			var s float64
			for k := range next {
				s += next[k] * n.w[l+1][k][o]
			}
			n.errs[l][o] = s
		}
	}
	for l := range n.w {
		in := n.acts[l]
		for o, d := range n.errs[l] {
			if d == 0 {
				continue
			}
			row := n.w[l][o]
			step := lr * d
			for i, v := range in {
				row[i] -= step * v
			}
			n.b[l][o] -= step
		}
	}
}

// Weights exposes a deep copy of the parameters (for tests and snapshots).
func (n *Network) Weights() ([][][]float64, [][]float64) {
	w := make([][][]float64, len(n.w))
	for l := range n.w {
		w[l] = make([][]float64, len(n.w[l]))
		for o := range n.w[l] {
			w[l][o] = append([]float64(nil), n.w[l][o]...)
		}
	}
	b := make([][]float64, len(n.b))
	for l := range n.b {
		b[l] = append([]float64(nil), n.b[l]...)
	}
	return w, b
}

// SetWeights installs parameters (shape must match).
func (n *Network) SetWeights(w [][][]float64, b [][]float64) error {
	if len(w) != len(n.w) || len(b) != len(n.b) {
		return fmt.Errorf("rl: weight shape mismatch")
	}
	for l := range w {
		if len(w[l]) != len(n.w[l]) || len(b[l]) != len(n.b[l]) {
			return fmt.Errorf("rl: layer %d shape mismatch", l)
		}
		for o := range w[l] {
			if len(w[l][o]) != len(n.w[l][o]) {
				return fmt.Errorf("rl: layer %d row %d shape mismatch", l, o)
			}
			copy(n.w[l][o], w[l][o])
		}
		copy(n.b[l], b[l])
	}
	return nil
}

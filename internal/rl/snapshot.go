package rl

import (
	"encoding/json"
	"fmt"
)

// Snapshot is a serializable capture of a trained agent, exact for
// inference: a restored agent returns bit-identical Best and Q answers for
// every state, because the parameters round-trip losslessly (encoding/json
// emits float64 with the shortest representation that parses back to the
// same value). That is the property the trained-agent cache needs — policy
// extraction and hybrid-runtime decisions are pure functions of Best/Q.
//
// Continued *training* from a snapshot is supported but not bit-identical
// to continuing the original: the exploration RNG restarts from the
// configured seed and the DQN replay ring restarts empty. Callers that
// memoize trained agents must treat training as finished at snapshot time
// (the campaign trained-agent cache keys include the full training recipe,
// so a cached agent is only ever reused for inference).
type Snapshot struct {
	Kind     string  `json:"kind"` // "dqn" | "tabular"
	NConfigs int     `json:"n_configs"`
	Eps      float64 `json:"eps"` // exploration rate at capture time

	// DQN state.
	Config  *DQNConfig    `json:"dqn_config,omitempty"`
	Weights [][][]float64 `json:"w,omitempty"`
	Biases  [][]float64   `json:"b,omitempty"`

	// Tabular state.
	Q        []float64 `json:"q,omitempty"`
	Alpha    float64   `json:"alpha,omitempty"`
	Discount float64   `json:"discount,omitempty"`
	EpsMin   float64   `json:"eps_min,omitempty"`
	EpsDecay float64   `json:"eps_decay,omitempty"`
	Seed     int64     `json:"seed,omitempty"` // tabular RNG seed
}

// Snapshot captures the DQN's learned parameters and hyper-parameters.
func (d *DQN) Snapshot() *Snapshot {
	cfg := d.cfg
	w, b := d.net.Weights()
	return &Snapshot{
		Kind:     "dqn",
		NConfigs: d.nConfigs,
		Eps:      d.eps,
		Config:   &cfg,
		Weights:  w,
		Biases:   b,
	}
}

// Snapshot captures the tabular learner's Q-table and hyper-parameters.
func (t *Tabular) Snapshot() *Snapshot {
	return &Snapshot{
		Kind:     "tabular",
		NConfigs: t.nConfigs,
		Eps:      t.eps,
		Q:        append([]float64(nil), t.q...),
		Alpha:    t.alpha,
		Discount: t.discount,
		EpsMin:   t.epsMin,
		EpsDecay: t.epsDecay,
		Seed:     t.seed,
	}
}

// Restore reconstructs the captured agent.
func (s *Snapshot) Restore() (Agent, error) {
	switch s.Kind {
	case "dqn":
		if s.Config == nil {
			return nil, fmt.Errorf("rl: dqn snapshot missing config")
		}
		d := NewDQN(s.NConfigs, *s.Config)
		if err := d.net.SetWeights(s.Weights, s.Biases); err != nil {
			return nil, fmt.Errorf("rl: restore dqn: %w", err)
		}
		d.eps = s.Eps
		return d, nil
	case "tabular":
		t := NewTabular(s.NConfigs, s.Seed)
		if len(s.Q) != len(t.q) {
			return nil, fmt.Errorf("rl: restore tabular: q size %d, want %d", len(s.Q), len(t.q))
		}
		copy(t.q, s.Q)
		t.eps = s.Eps
		if s.Alpha != 0 {
			t.alpha = s.Alpha
		}
		if s.Discount != 0 {
			t.discount = s.Discount
		}
		if s.EpsMin != 0 {
			t.epsMin = s.EpsMin
		}
		if s.EpsDecay != 0 {
			t.epsDecay = s.EpsDecay
		}
		return t, nil
	}
	return nil, fmt.Errorf("rl: unknown snapshot kind %q", s.Kind)
}

// Encode serializes the snapshot.
func (s *Snapshot) Encode() ([]byte, error) {
	return json.Marshal(s)
}

// DecodeSnapshot parses an encoded snapshot.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("rl: decode snapshot: %w", err)
	}
	return &s, nil
}

package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometryValidation(t *testing.T) {
	bad := [][3]int{
		{0, 4, 64},
		{1024, 0, 64},
		{1024, 4, 0},
		{1024, 4, 48},    // line size not power of two
		{1000, 4, 64},    // does not divide
		{64 * 12, 4, 64}, // 3 sets, not power of two
	}
	for _, g := range bad {
		if _, err := New(g[0], g[1], g[2]); err == nil {
			t.Errorf("New(%v) accepted", g)
		}
	}
	if _, err := New(32*1024, 4, 64); err != nil {
		t.Errorf("32KB 4-way rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(3, 3, 3)
}

func TestHitAfterMiss(t *testing.T) {
	c := MustNew(1024, 2, 64)
	if c.Access(0x100) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x100) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x13f) { // same 64B line as 0x100
		t.Fatal("same-line access missed")
	}
	if c.Access(0x140) { // next line
		t.Fatal("different line hit")
	}
	h, m := c.Stats()
	if h != 2 || m != 2 {
		t.Fatalf("stats = %d/%d, want 2/2", h, m)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 2 sets, 64B lines -> 256B cache. Lines mapping to set 0:
	// addresses 0, 128, 256, ... (tag alternates).
	c := MustNew(256, 2, 64)
	c.Access(0)   // set0: [0]
	c.Access(128) // set0: [128, 0]
	c.Access(0)   // touch 0 -> [0, 128]
	c.Access(256) // evict 128 -> [256, 0]
	if !c.Probe(0) {
		t.Error("0 should be resident (recently used)")
	}
	if c.Probe(128) {
		t.Error("128 should be evicted (LRU)")
	}
	if !c.Probe(256) {
		t.Error("256 should be resident")
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c := MustNew(256, 2, 64)
	c.Access(0)
	c.Access(128)
	h0, m0 := c.Stats()
	for i := 0; i < 10; i++ {
		c.Probe(0)
		c.Probe(512)
	}
	h1, m1 := c.Stats()
	if h0 != h1 || m0 != m1 {
		t.Error("Probe changed counters")
	}
	// LRU order unchanged: 0 is LRU, inserting a new line evicts it... no:
	// order is [128, 0]; inserting 256 evicts 0.
	c.Access(256)
	if c.Probe(0) {
		t.Error("probe must not refresh LRU position")
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(1024, 4, 64)
	for a := uint64(0); a < 1024; a += 64 {
		c.Access(a)
	}
	c.Invalidate()
	if c.Probe(0) || c.Probe(512) {
		t.Error("lines survived invalidation")
	}
	c.ResetStats()
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Error("ResetStats failed")
	}
}

func TestWorkingSetBehaviour(t *testing.T) {
	// A working set that fits entirely in the cache must converge to ~100%
	// hits; one that is 2x the cache size with LRU + sequential sweep must
	// miss every access (the pathological LRU streaming case).
	c := MustNew(4096, 4, 64)
	small := make([]uint64, 0)
	for a := uint64(0); a < 2048; a += 64 {
		small = append(small, a)
	}
	for pass := 0; pass < 3; pass++ {
		for _, a := range small {
			c.Access(a)
		}
	}
	h, m := c.Stats()
	if float64(h)/float64(h+m) < 0.6 {
		t.Errorf("small working set hit rate %v too low", float64(h)/float64(h+m))
	}

	c2 := MustNew(4096, 4, 64)
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < 8192; a += 64 {
			c2.Access(a)
		}
	}
	h2, m2 := c2.Stats()
	if h2 > m2/4 {
		t.Errorf("streaming working set should mostly miss: %d hits %d misses", h2, m2)
	}
}

// Property: hits+misses equals the number of Access calls; contents never
// exceed capacity.
func TestAccessCountInvariant(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := MustNew(512, 2, 32)
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		h, m := c.Stats()
		if h+m != uint64(len(addrs)) {
			return false
		}
		resident := 0
		for _, set := range c.sets {
			if len(set) > c.ways {
				return false
			}
			for _, l := range set {
				if l.valid {
					resident++
				}
			}
		}
		return resident <= 512/32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: after accessing address A, an immediate re-access hits,
// regardless of history.
func TestRecencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := MustNew(2048, 4, 64)
	for i := 0; i < 5000; i++ {
		a := uint64(rng.Intn(1 << 20))
		c.Access(a)
		if !c.Probe(a) {
			t.Fatalf("address %#x absent immediately after access", a)
		}
	}
}

func TestHierarchy(t *testing.T) {
	l2 := MustNew(4096, 4, 64)
	h := &Hierarchy{L1c: MustNew(512, 2, 64), L2c: l2}
	if lvl := h.Access(0x40); lvl != Miss {
		t.Fatalf("cold access = %v", lvl)
	}
	if lvl := h.Access(0x40); lvl != L1 {
		t.Fatalf("second access = %v, want L1", lvl)
	}
	// Evict from tiny L1 by streaming, then re-access: should hit in L2.
	for a := uint64(0x1000); a < 0x1000+2048; a += 64 {
		h.Access(a)
	}
	if h.L1c.Probe(0x40) {
		t.Fatal("0x40 should be gone from L1")
	}
	if lvl := h.Access(0x40); lvl != L2 {
		t.Fatalf("re-access = %v, want L2", lvl)
	}
	// L1-only hierarchy.
	solo := &Hierarchy{L1c: MustNew(512, 2, 64)}
	if lvl := solo.Access(0x80); lvl != Miss {
		t.Fatalf("solo cold = %v", lvl)
	}
	if lvl := solo.Access(0x80); lvl != L1 {
		t.Fatalf("solo second = %v", lvl)
	}
	if Miss.String() != "DRAM" || L1.String() != "L1" || L2.String() != "L2" {
		t.Error("Level strings")
	}
}

// Package cache implements a set-associative LRU cache simulator used for
// the per-core L1 and per-cluster L2 caches of the big.LITTLE machine model.
// It supplies the hit/miss outcomes that drive both the timing model (miss
// latency) and the hardware-phase performance counters (CMA, CMI).
package cache

import "fmt"

// Level identifies where an access was satisfied.
type Level uint8

const (
	Miss Level = iota // DRAM
	L1
	L2
)

func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	}
	return "DRAM"
}

// Cache is one set-associative LRU cache.
type Cache struct {
	sets      [][]line
	ways      int
	lineShift uint
	setMask   uint64

	hits   uint64
	misses uint64
}

type line struct {
	tag   uint64
	valid bool
	// age implements LRU: lower = more recently used (index order maintained
	// by move-to-front inside the set slice).
}

// New builds a cache of sizeBytes with the given associativity and line
// size. Size, ways and line size must make a power-of-two number of sets.
func New(sizeBytes, ways, lineBytes int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry %d/%d/%d", sizeBytes, ways, lineBytes)
	}
	if lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d not a power of two", lineBytes)
	}
	numLines := sizeBytes / lineBytes
	if numLines == 0 || numLines%ways != 0 {
		return nil, fmt.Errorf("cache: %dB/%d-way/%dB-line does not divide evenly", sizeBytes, ways, lineBytes)
	}
	numSets := numLines / ways
	if numSets&(numSets-1) != 0 {
		return nil, fmt.Errorf("cache: %d sets not a power of two", numSets)
	}
	c := &Cache{
		sets:    make([][]line, numSets),
		ways:    ways,
		setMask: uint64(numSets - 1),
	}
	for lineBytes > 1 {
		lineBytes >>= 1
		c.lineShift++
	}
	for i := range c.sets {
		c.sets[i] = make([]line, 0, ways)
	}
	return c, nil
}

// MustNew is New that panics on bad geometry (programmer error).
func MustNew(sizeBytes, ways, lineBytes int) *Cache {
	c, err := New(sizeBytes, ways, lineBytes)
	if err != nil {
		panic(err)
	}
	return c
}

// Access looks up byteAddr, updating LRU state, and reports whether it hit.
// On miss the line is installed (allocate-on-miss for reads and writes).
func (c *Cache) Access(byteAddr uint64) bool {
	tag := byteAddr >> c.lineShift
	set := c.sets[tag&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			// Move to front (most recently used).
			l := set[i]
			copy(set[1:i+1], set[:i])
			set[0] = l
			c.hits++
			return true
		}
	}
	c.misses++
	// Install at front, evicting LRU (the last element) if full.
	if len(set) < c.ways {
		set = append(set, line{})
		c.sets[tag&c.setMask] = set
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = line{tag: tag, valid: true}
	return false
}

// Probe reports whether byteAddr is resident without touching LRU state or
// counters.
func (c *Cache) Probe(byteAddr uint64) bool {
	tag := byteAddr >> c.lineShift
	set := c.sets[tag&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Stats returns cumulative hits and misses.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// ResetStats zeroes the counters without invalidating contents.
func (c *Cache) ResetStats() { c.hits, c.misses = 0, 0 }

// Invalidate empties the cache (e.g., power-gating a core or cluster).
func (c *Cache) Invalidate() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
}

// Hierarchy is a two-level cache path (a core's L1 backed by its cluster's
// shared L2). DRAM is implicit below L2.
type Hierarchy struct {
	L1c *Cache
	L2c *Cache // shared; may be nil for L1-only configurations
}

// Access walks the hierarchy and returns the level that satisfied the
// access.
func (h *Hierarchy) Access(byteAddr uint64) Level {
	if h.L1c.Access(byteAddr) {
		return L1
	}
	if h.L2c != nil && h.L2c.Access(byteAddr) {
		return L2
	}
	return Miss
}

// Package perfmon implements the paper's hardware-phase abstraction
// (Sec. 3.1.2): periodic performance-counter readings (IPC, cache miss
// ratios, CPU utilization) are discretized into buckets whose product forms
// 81 hardware phases. The actuator reads these without any program
// instrumentation.
package perfmon

import "fmt"

// Counters is one monitoring window's worth of aggregate hardware counters.
type Counters struct {
	Instructions  uint64
	Cycles        uint64
	CacheAccesses uint64
	CacheMisses   uint64
	BusySeconds   float64 // total core-busy time in the window
	WindowSeconds float64 // window duration x number of active cores
}

// IPC returns instructions per cycle (0 when no cycles elapsed).
func (c Counters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// CMA returns cache misses per cache access.
func (c Counters) CMA() float64 {
	if c.CacheAccesses == 0 {
		return 0
	}
	return float64(c.CacheMisses) / float64(c.CacheAccesses)
}

// CMI returns cache misses per instruction.
func (c Counters) CMI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.CacheMisses) / float64(c.Instructions)
}

// Util returns CPU utilization in [0, 1].
func (c Counters) Util() float64 {
	if c.WindowSeconds == 0 {
		return 0
	}
	u := c.BusySeconds / c.WindowSeconds
	if u > 1 {
		u = 1
	}
	return u
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Instructions += o.Instructions
	c.Cycles += o.Cycles
	c.CacheAccesses += o.CacheAccesses
	c.CacheMisses += o.CacheMisses
	c.BusySeconds += o.BusySeconds
	c.WindowSeconds += o.WindowSeconds
}

// Bucket boundaries, exactly as listed in the paper.
var (
	IPCBounds = []float64{0.5, 1.0}     // [0,.5) [.5,1) [1,+inf)
	CMABounds = []float64{0.01, 0.05}   // [0,1%) [1%,5%) [5%,+inf)
	CMIBounds = []float64{0.001, 0.005} // [0,.1%) [.1%,.5%) [.5%,+inf)
	CPUBounds = []float64{0.20, 0.50}   // [0,20%) [20%,50%) [50%,+inf)
)

// NumPhases is the number of hardware phases: 3^4 = 81.
const NumPhases = 81

// HWPhase is a bucketed hardware state.
type HWPhase struct {
	IPCBucket int
	CMABucket int
	CMIBucket int
	CPUBucket int
}

// ID flattens the phase to [0, NumPhases).
func (h HWPhase) ID() int {
	return ((h.IPCBucket*3+h.CMABucket)*3+h.CMIBucket)*3 + h.CPUBucket
}

// FromID inverts ID.
func FromID(id int) HWPhase {
	var h HWPhase
	h.CPUBucket = id % 3
	id /= 3
	h.CMIBucket = id % 3
	id /= 3
	h.CMABucket = id % 3
	id /= 3
	h.IPCBucket = id % 3
	return h
}

func (h HWPhase) String() string {
	return fmt.Sprintf("ipc%d/cma%d/cmi%d/cpu%d", h.IPCBucket, h.CMABucket, h.CMIBucket, h.CPUBucket)
}

func bucket(v float64, bounds []float64) int {
	i := 0
	for i < len(bounds) && v >= bounds[i] {
		i++
	}
	return i
}

// Bucketize maps counters to their hardware phase.
func Bucketize(c Counters) HWPhase {
	return HWPhase{
		IPCBucket: bucket(c.IPC(), IPCBounds),
		CMABucket: bucket(c.CMA(), CMABounds),
		CMIBucket: bucket(c.CMI(), CMIBounds),
		CPUBucket: bucket(c.Util(), CPUBounds),
	}
}

package perfmon

import (
	"testing"
	"testing/quick"
)

func TestDerivedMetrics(t *testing.T) {
	c := Counters{
		Instructions:  1000,
		Cycles:        2000,
		CacheAccesses: 400,
		CacheMisses:   8,
		BusySeconds:   0.3,
		WindowSeconds: 1.0,
	}
	if got := c.IPC(); got != 0.5 {
		t.Errorf("IPC = %v", got)
	}
	if got := c.CMA(); got != 0.02 {
		t.Errorf("CMA = %v", got)
	}
	if got := c.CMI(); got != 0.008 {
		t.Errorf("CMI = %v", got)
	}
	if got := c.Util(); got != 0.3 {
		t.Errorf("Util = %v", got)
	}
}

func TestZeroWindowSafe(t *testing.T) {
	var c Counters
	if c.IPC() != 0 || c.CMA() != 0 || c.CMI() != 0 || c.Util() != 0 {
		t.Error("zero counters must produce zero metrics")
	}
}

func TestUtilClamped(t *testing.T) {
	c := Counters{BusySeconds: 5, WindowSeconds: 1}
	if c.Util() != 1 {
		t.Errorf("Util = %v, want clamped to 1", c.Util())
	}
}

func TestAdd(t *testing.T) {
	a := Counters{Instructions: 1, Cycles: 2, CacheAccesses: 3, CacheMisses: 4, BusySeconds: 5, WindowSeconds: 6}
	b := a
	a.Add(b)
	if a.Instructions != 2 || a.Cycles != 4 || a.CacheAccesses != 6 || a.CacheMisses != 8 ||
		a.BusySeconds != 10 || a.WindowSeconds != 12 {
		t.Errorf("Add: %+v", a)
	}
}

func TestPaperBuckets(t *testing.T) {
	cases := []struct {
		c    Counters
		want HWPhase
	}{
		// IPC 0.4 -> bucket 0; CMA 0 -> 0; CMI 0 -> 0; util 0.1 -> 0.
		{Counters{Instructions: 400, Cycles: 1000, BusySeconds: 0.1, WindowSeconds: 1}, HWPhase{0, 0, 0, 0}},
		// IPC 1.5 -> 2; CMA 6% -> 2; CMI 4% -> 2; util 0.9 -> 2.
		{Counters{Instructions: 1500, Cycles: 1000, CacheAccesses: 1000, CacheMisses: 60,
			BusySeconds: 0.9, WindowSeconds: 1}, HWPhase{2, 2, 2, 2}},
		// Boundary values land in the upper bucket ([0.5, 1.0) style).
		{Counters{Instructions: 500, Cycles: 1000, BusySeconds: 0.2, WindowSeconds: 1}, HWPhase{1, 0, 0, 1}},
	}
	for i, c := range cases {
		if got := Bucketize(c.c); got != c.want {
			t.Errorf("case %d: %v, want %v (ipc=%v cma=%v cmi=%v util=%v)",
				i, got, c.want, c.c.IPC(), c.c.CMA(), c.c.CMI(), c.c.Util())
		}
	}
}

func TestCMIBucketBoundary(t *testing.T) {
	// CMI exactly 0.5% must be in the top bucket.
	c := Counters{Instructions: 1000, Cycles: 1000, CacheAccesses: 100, CacheMisses: 5,
		BusySeconds: 1, WindowSeconds: 1}
	h := Bucketize(c)
	if h.CMIBucket != 2 {
		t.Errorf("CMI bucket = %d, want 2 (cmi=%v)", h.CMIBucket, c.CMI())
	}
	if h.CMABucket != 2 {
		t.Errorf("CMA bucket = %d, want 2 (cma=%v)", h.CMABucket, c.CMA())
	}
}

func TestPhaseIDRoundTrip(t *testing.T) {
	seen := map[int]bool{}
	for ipc := 0; ipc < 3; ipc++ {
		for cma := 0; cma < 3; cma++ {
			for cmi := 0; cmi < 3; cmi++ {
				for cpu := 0; cpu < 3; cpu++ {
					h := HWPhase{ipc, cma, cmi, cpu}
					id := h.ID()
					if id < 0 || id >= NumPhases {
						t.Fatalf("id %d out of range", id)
					}
					if seen[id] {
						t.Fatalf("duplicate id %d", id)
					}
					seen[id] = true
					if got := FromID(id); got != h {
						t.Fatalf("round trip %v -> %d -> %v", h, id, got)
					}
				}
			}
		}
	}
	if len(seen) != NumPhases {
		t.Fatalf("%d phases, want %d", len(seen), NumPhases)
	}
}

func TestPhaseIDRoundTripQuick(t *testing.T) {
	f := func(x uint16) bool {
		id := int(x) % NumPhases
		return FromID(id).ID() == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package ir

// Builder provides a convenient way to construct functions, used by the
// front end's lowering phase and by tests that need hand-built CFGs.
type Builder struct {
	M   *Module
	F   *Function
	cur *Block
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, FuncIndex: map[string]int{}}
}

// NewBuilder starts building a new function in m. The parameter registers
// are allocated first, matching the calling convention.
func NewBuilder(m *Module, name string, params []Type, ret Type) *Builder {
	f := &Function{Name: name, Params: append([]Type(nil), params...), Ret: ret}
	f.Regs = append(f.Regs, params...)
	m.FuncIndex[name] = len(m.Funcs)
	m.Funcs = append(m.Funcs, f)
	b := &Builder{M: m, F: f}
	b.cur = b.NewBlock()
	return b
}

// NewReg allocates a fresh register of type t.
func (b *Builder) NewReg(t Type) int32 {
	b.F.Regs = append(b.F.Regs, t)
	return int32(len(b.F.Regs) - 1)
}

// NewArray declares a frame array and returns its index.
func (b *Builder) NewArray(name string, size int64, elem Type) int32 {
	b.F.Arrays = append(b.F.Arrays, ArrayDecl{Name: name, Size: size, Elem: elem})
	return int32(len(b.F.Arrays) - 1)
}

// NewBlock appends a new empty block and returns it (without switching to it).
func (b *Builder) NewBlock() *Block {
	blk := &Block{ID: len(b.F.Blocks)}
	b.F.Blocks = append(b.F.Blocks, blk)
	return blk
}

// SetBlock switches the insertion point.
func (b *Builder) SetBlock(blk *Block) { b.cur = blk }

// Block returns the current insertion block.
func (b *Builder) Block() *Block { return b.cur }

// Emit appends an instruction to the current block.
func (b *Builder) Emit(in Instr) {
	b.cur.Instrs = append(b.cur.Instrs, in)
}

// ConstI emits an integer constant into a fresh register.
func (b *Builder) ConstI(v int64) int32 {
	r := b.NewReg(TInt)
	b.Emit(Instr{Op: OpConstI, Dst: r, A: NoReg, B: NoReg, C: NoReg, Sym: -1, Imm: v})
	return r
}

// ConstF emits a float constant into a fresh register.
func (b *Builder) ConstF(v float64) int32 {
	r := b.NewReg(TFloat)
	b.Emit(Instr{Op: OpConstF, Dst: r, A: NoReg, B: NoReg, C: NoReg, Sym: -1, FImm: v})
	return r
}

// Bin emits a two-operand instruction producing a fresh register of type t.
func (b *Builder) Bin(op Opcode, t Type, a, c int32) int32 {
	r := b.NewReg(t)
	b.Emit(Instr{Op: op, Dst: r, A: a, B: c, C: NoReg, Sym: -1})
	return r
}

// Un emits a one-operand instruction producing a fresh register of type t.
func (b *Builder) Un(op Opcode, t Type, a int32) int32 {
	r := b.NewReg(t)
	b.Emit(Instr{Op: op, Dst: r, A: a, B: NoReg, C: NoReg, Sym: -1})
	return r
}

// Br emits an unconditional branch to target.
func (b *Builder) Br(target *Block) {
	b.Emit(Instr{Op: OpBr, Dst: NoReg, A: int32(target.ID), B: NoReg, C: NoReg, Sym: -1})
}

// CBr emits a conditional branch.
func (b *Builder) CBr(cond int32, then, els *Block) {
	b.Emit(Instr{Op: OpCBr, Dst: NoReg, A: cond, B: int32(then.ID), C: int32(els.ID), Sym: -1})
}

// Ret emits a return; pass NoReg for void.
func (b *Builder) Ret(v int32) {
	b.Emit(Instr{Op: OpRet, Dst: NoReg, A: v, B: NoReg, C: NoReg, Sym: -1})
}

// CallB emits a builtin call; Dst is NoReg for void builtins or to discard.
func (b *Builder) CallB(id BuiltinID, args ...int32) int32 {
	bi := Builtin(id)
	dst := NoReg
	if bi.Ret != TVoid {
		dst = b.NewReg(bi.Ret)
	}
	b.Emit(Instr{Op: OpBuiltin, Dst: dst, A: NoReg, B: NoReg, C: NoReg, Sym: int32(id), Args: args})
	return dst
}

// Call emits a user-function call by function index.
func (b *Builder) Call(fnIdx int, dst int32, args ...int32) {
	b.Emit(Instr{Op: OpCall, Dst: dst, A: NoReg, B: NoReg, C: NoReg, Sym: int32(fnIdx), Args: args})
}

// Spawn emits a thread spawn of function fnIdx.
func (b *Builder) Spawn(fnIdx int, args ...int32) {
	b.Emit(Instr{Op: OpSpawn, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg, Sym: int32(fnIdx), Args: args})
}

package ir

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Compact binary encoding of modules. Its purpose in this reproduction is
// twofold: (1) it stands in for "binary size" in the Fig. 11 code-size
// experiment (original vs learning vs final instrumentation), and (2) it lets
// tools persist compiled programs. The format is versioned and round-trips
// exactly (see encode_test.go).

const encMagic = "ASTROIR1"

type encoder struct{ buf []byte }

func (e *encoder) u64(v uint64)  { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) i64(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) f64(v float64) { e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(v)) }
func (e *encoder) str(s string)  { e.u64(uint64(len(s))); e.buf = append(e.buf, s...) }

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("ir: truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("ir: truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.err = fmt.Errorf("ir: truncated float at offset %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if d.off+int(n) > len(d.buf) {
		d.err = fmt.Errorf("ir: truncated string at offset %d", d.off)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Encode serializes the module to the compact binary format.
func Encode(m *Module) []byte {
	e := &encoder{buf: append([]byte(nil), encMagic...)}
	e.str(m.Name)
	e.u64(uint64(m.NumMutex))
	e.u64(uint64(m.NumBarrier))
	e.u64(uint64(len(m.Globals)))
	for _, g := range m.Globals {
		e.str(g.Name)
		e.u64(uint64(g.Size))
		e.u64(uint64(g.Elem))
	}
	e.u64(uint64(len(m.Funcs)))
	for _, f := range m.Funcs {
		e.str(f.Name)
		e.u64(uint64(len(f.Params)))
		for _, p := range f.Params {
			e.u64(uint64(p))
		}
		e.u64(uint64(f.Ret))
		e.u64(uint64(len(f.Regs)))
		for _, r := range f.Regs {
			e.u64(uint64(r))
		}
		e.u64(uint64(len(f.Arrays)))
		for _, a := range f.Arrays {
			e.str(a.Name)
			e.u64(uint64(a.Size))
			e.u64(uint64(a.Elem))
		}
		e.u64(uint64(f.SrcLine))
		e.u64(uint64(len(f.Blocks)))
		for _, b := range f.Blocks {
			e.u64(uint64(len(b.Instrs)))
			for i := range b.Instrs {
				in := &b.Instrs[i]
				e.u64(uint64(in.Op))
				e.i64(int64(in.Dst))
				e.i64(int64(in.A))
				e.i64(int64(in.B))
				e.i64(int64(in.C))
				e.i64(int64(in.Sym))
				e.i64(in.Imm)
				e.f64(in.FImm)
				e.u64(uint64(len(in.Args)))
				for _, a := range in.Args {
					e.i64(int64(a))
				}
			}
		}
	}
	return e.buf
}

// Decode parses a module previously produced by Encode.
func Decode(data []byte) (*Module, error) {
	if len(data) < len(encMagic) || string(data[:len(encMagic)]) != encMagic {
		return nil, fmt.Errorf("ir: bad magic")
	}
	d := &decoder{buf: data, off: len(encMagic)}
	m := &Module{FuncIndex: map[string]int{}}
	m.Name = d.str()
	m.NumMutex = int(d.u64())
	m.NumBarrier = int(d.u64())
	ng := d.u64()
	for i := uint64(0); i < ng && d.err == nil; i++ {
		g := GlobalDecl{Name: d.str(), Size: int64(d.u64()), Elem: Type(d.u64())}
		m.Globals = append(m.Globals, g)
	}
	nf := d.u64()
	for i := uint64(0); i < nf && d.err == nil; i++ {
		f := &Function{}
		f.Name = d.str()
		np := d.u64()
		for j := uint64(0); j < np && d.err == nil; j++ {
			f.Params = append(f.Params, Type(d.u64()))
		}
		f.Ret = Type(d.u64())
		nr := d.u64()
		for j := uint64(0); j < nr && d.err == nil; j++ {
			f.Regs = append(f.Regs, Type(d.u64()))
		}
		na := d.u64()
		for j := uint64(0); j < na && d.err == nil; j++ {
			f.Arrays = append(f.Arrays, ArrayDecl{Name: d.str(), Size: int64(d.u64()), Elem: Type(d.u64())})
		}
		f.SrcLine = int(d.u64())
		nb := d.u64()
		for j := uint64(0); j < nb && d.err == nil; j++ {
			b := &Block{ID: int(j)}
			ni := d.u64()
			for k := uint64(0); k < ni && d.err == nil; k++ {
				in := Instr{
					Op:  Opcode(d.u64()),
					Dst: int32(d.i64()),
					A:   int32(d.i64()),
					B:   int32(d.i64()),
					C:   int32(d.i64()),
					Sym: int32(d.i64()),
					Imm: d.i64(),
				}
				in.FImm = d.f64()
				nargs := d.u64()
				for a := uint64(0); a < nargs && d.err == nil; a++ {
					in.Args = append(in.Args, int32(d.i64()))
				}
				b.Instrs = append(b.Instrs, in)
			}
			f.Blocks = append(f.Blocks, b)
		}
		m.FuncIndex[f.Name] = len(m.Funcs)
		m.Funcs = append(m.Funcs, f)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("ir: %d trailing bytes", len(data)-d.off)
	}
	return m, nil
}

// EncodedSize returns the size in bytes of the module's binary encoding.
func EncodedSize(m *Module) int { return len(Encode(m)) }

package ir

// Optimization passes over the register IR: block-local constant folding,
// constant-branch simplification, unreachable-block elimination and
// dead-temporary removal. The front end keeps its lowering simple and
// predictable (feature densities are calibrated against it); the optimizer
// is the stand-in for LLVM's -O pipeline and is applied explicitly (e.g.
// `cmd/astro run -O`). Semantics preservation is enforced by differential
// tests (internal/sim).

// Optimize runs the pass pipeline to a fixpoint (bounded) on every
// function and returns the total number of rewrites performed.
func Optimize(m *Module) int {
	total := 0
	for _, f := range m.Funcs {
		for iter := 0; iter < 8; iter++ {
			n := foldConstants(f)
			n += simplifyBranches(f)
			n += removeUnreachable(f)
			n += removeDeadTemps(f)
			if n == 0 {
				break
			}
			total += n
		}
	}
	return total
}

// constVal tracks the compile-time value of a register within a block.
type constVal struct {
	known bool
	isF   bool
	i     int64
	f     float64
}

// foldConstants performs block-local constant propagation and folding:
// an instruction whose operands are all known constants is replaced by a
// constant load. Tracking resets at block boundaries (registers are
// mutable across blocks).
func foldConstants(f *Function) int {
	changed := 0
	vals := make([]constVal, len(f.Regs))
	for _, b := range f.Blocks {
		for i := range vals {
			vals[i] = constVal{}
		}
		for idx := range b.Instrs {
			in := &b.Instrs[idx]
			switch in.Op {
			case OpConstI:
				vals[in.Dst] = constVal{known: true, i: in.Imm}
			case OpConstF:
				vals[in.Dst] = constVal{known: true, isF: true, f: in.FImm}
			case OpMov:
				v := vals[in.A]
				if v.known {
					rewriteConst(in, v)
					changed++
				}
				vals[in.Dst] = v
			case OpNeg, OpNot:
				if v := vals[in.A]; v.known && !v.isF {
					nv := constVal{known: true}
					if in.Op == OpNeg {
						nv.i = -v.i
					} else if v.i == 0 {
						nv.i = 1
					}
					rewriteConst(in, nv)
					vals[in.Dst] = nv
					changed++
				} else {
					vals[in.Dst] = constVal{}
				}
			case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr,
				OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
				a, c := vals[in.A], vals[in.B]
				if a.known && c.known && !a.isF && !c.isF {
					nv := constVal{known: true, i: foldInt(in.Op, a.i, c.i)}
					rewriteConst(in, nv)
					vals[in.Dst] = nv
					changed++
				} else {
					vals[in.Dst] = constVal{}
				}
			case OpDiv, OpRem:
				a, c := vals[in.A], vals[in.B]
				// Never fold division by zero: the runtime trap is the
				// program's defined behaviour.
				if a.known && c.known && !a.isF && !c.isF && c.i != 0 {
					nv := constVal{known: true, i: foldInt(in.Op, a.i, c.i)}
					rewriteConst(in, nv)
					vals[in.Dst] = nv
					changed++
				} else {
					vals[in.Dst] = constVal{}
				}
			case OpFAdd, OpFSub, OpFMul, OpFDiv:
				a, c := vals[in.A], vals[in.B]
				if a.known && c.known && a.isF && c.isF {
					nv := constVal{known: true, isF: true, f: foldFloat(in.Op, a.f, c.f)}
					rewriteConst(in, nv)
					vals[in.Dst] = nv
					changed++
				} else {
					vals[in.Dst] = constVal{}
				}
			case OpI2F:
				if v := vals[in.A]; v.known && !v.isF {
					nv := constVal{known: true, isF: true, f: float64(v.i)}
					rewriteConst(in, nv)
					vals[in.Dst] = nv
					changed++
				} else {
					vals[in.Dst] = constVal{}
				}
			default:
				// Any other instruction with a destination invalidates it.
				if in.Dst != NoReg {
					vals[in.Dst] = constVal{}
				}
			}
		}
	}
	return changed
}

func rewriteConst(in *Instr, v constVal) {
	if v.isF {
		*in = Instr{Op: OpConstF, Dst: in.Dst, A: NoReg, B: NoReg, C: NoReg, Sym: -1, FImm: v.f}
	} else {
		*in = Instr{Op: OpConstI, Dst: in.Dst, A: NoReg, B: NoReg, C: NoReg, Sym: -1, Imm: v.i}
	}
}

func foldInt(op Opcode, a, b int64) int64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		return a / b
	case OpRem:
		return a % b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (uint64(b) & 63)
	case OpShr:
		return a >> (uint64(b) & 63)
	case OpEq:
		return b2i(a == b)
	case OpNe:
		return b2i(a != b)
	case OpLt:
		return b2i(a < b)
	case OpLe:
		return b2i(a <= b)
	case OpGt:
		return b2i(a > b)
	default: // OpGe
		return b2i(a >= b)
	}
}

func foldFloat(op Opcode, a, b float64) float64 {
	switch op {
	case OpFAdd:
		return a + b
	case OpFSub:
		return a - b
	case OpFMul:
		return a * b
	default: // OpFDiv — IEEE semantics, folding inf/nan is fine
		return a / b
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// simplifyBranches turns conditional branches with block-locally known
// conditions into unconditional ones.
func simplifyBranches(f *Function) int {
	changed := 0
	vals := make([]constVal, len(f.Regs))
	for _, b := range f.Blocks {
		for i := range vals {
			vals[i] = constVal{}
		}
		for idx := range b.Instrs {
			in := &b.Instrs[idx]
			switch in.Op {
			case OpConstI:
				vals[in.Dst] = constVal{known: true, i: in.Imm}
			case OpCBr:
				if v := vals[in.A]; v.known && !v.isF {
					target := in.C
					if v.i != 0 {
						target = in.B
					}
					*in = Instr{Op: OpBr, Dst: NoReg, A: target, B: NoReg, C: NoReg, Sym: -1}
					changed++
				}
			default:
				if in.Dst != NoReg {
					vals[in.Dst] = constVal{}
				}
			}
		}
	}
	return changed
}

// removeUnreachable drops blocks not reachable from the entry and renumbers
// the survivors (Block.ID == index is an IR invariant).
func removeUnreachable(f *Function) int {
	info := BuildCFG(f)
	keep := make([]bool, len(f.Blocks))
	n := 0
	for _, b := range info.RPO {
		keep[b] = true
		n++
	}
	if n == len(f.Blocks) {
		return 0
	}
	remap := make([]int32, len(f.Blocks))
	var out []*Block
	for i, b := range f.Blocks {
		if keep[i] {
			remap[i] = int32(len(out))
			b.ID = len(out)
			out = append(out, b)
		}
	}
	removed := len(f.Blocks) - len(out)
	f.Blocks = out
	for _, b := range f.Blocks {
		t := b.Terminator()
		switch t.Op {
		case OpBr:
			t.A = remap[t.A]
		case OpCBr:
			t.B = remap[t.B]
			t.C = remap[t.C]
		}
	}
	return removed
}

// removeDeadTemps deletes pure instructions whose destination register is
// never read anywhere in the function. This is conservative (registers are
// function-scoped) but cleans up the temporaries that folding orphans.
func removeDeadTemps(f *Function) int {
	used := make([]bool, len(f.Regs))
	// Parameters are live (the calling convention writes them).
	for i := range f.Params {
		used[i] = true
	}
	mark := func(r int32) {
		if r >= 0 {
			used[r] = true
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case OpBr:
				// A is a block target, not a register.
			case OpCBr:
				mark(in.A)
			case OpLocalAddr, OpGlobalAddr:
				mark(in.A)
			default:
				mark(in.A)
				mark(in.B)
				mark(in.C)
			}
			for _, a := range in.Args {
				mark(a)
			}
		}
	}
	removed := 0
	for _, b := range f.Blocks {
		out := b.Instrs[:0]
		for i := range b.Instrs {
			in := b.Instrs[i]
			if isPure(in.Op) && in.Dst != NoReg && !used[in.Dst] {
				removed++
				continue
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	return removed
}

// isPure reports whether an opcode has no effect besides writing Dst.
func isPure(op Opcode) bool {
	switch op {
	case OpConstI, OpConstF, OpMov,
		OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr, OpNeg, OpNot,
		OpEq, OpNe, OpLt, OpLe, OpGt, OpGe,
		OpFAdd, OpFSub, OpFMul, OpFDiv, OpFNeg,
		OpFEq, OpFNe, OpFLt, OpFLe, OpFGt, OpFGe,
		OpI2F, OpF2I,
		OpLocalAddr, OpGlobalAddr:
		return true
	}
	// OpDiv/OpRem can trap; loads can fault; everything else has effects.
	return false
}

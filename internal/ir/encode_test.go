package ir

import (
	"math/rand"
	"reflect"
	"testing"
)

func randomModule(rng *rand.Rand) *Module {
	m := NewModule("rand")
	m.NumMutex = rng.Intn(4)
	m.NumBarrier = rng.Intn(4)
	for g := 0; g < rng.Intn(3); g++ {
		m.Globals = append(m.Globals, GlobalDecl{
			Name: "g" + string(rune('a'+g)),
			Size: int64(1 + rng.Intn(64)),
			Elem: Type(1 + rng.Intn(2)),
		})
	}
	nf := 1 + rng.Intn(3)
	for f := 0; f < nf; f++ {
		var params []Type
		for p := 0; p < rng.Intn(3); p++ {
			params = append(params, Type(1+rng.Intn(2)))
		}
		b := NewBuilder(m, "f"+string(rune('a'+f)), params, TVoid)
		if rng.Intn(2) == 0 {
			b.NewArray("arr", int64(1+rng.Intn(32)), TFloat)
		}
		n := rng.Intn(10)
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0:
				b.ConstI(rng.Int63() - rng.Int63())
			case 1:
				b.ConstF(rng.NormFloat64())
			case 2:
				x := b.ConstI(int64(rng.Intn(100)))
				y := b.ConstI(int64(rng.Intn(100)))
				b.Bin(OpAdd, TInt, x, y)
			case 3:
				b.CallB(BTid)
			}
		}
		b.Ret(NoReg)
	}
	return m
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		m := randomModule(rng)
		if err := Verify(m); err != nil {
			t.Fatalf("random module invalid: %v", err)
		}
		data := Encode(m)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !modulesEqual(m, got) {
			t.Fatalf("round trip mismatch:\n--- want\n%s\n--- got\n%s", Disassemble(m), Disassemble(got))
		}
	}
}

func modulesEqual(a, b *Module) bool {
	if a.Name != b.Name || a.NumMutex != b.NumMutex || a.NumBarrier != b.NumBarrier {
		return false
	}
	if !reflect.DeepEqual(a.Globals, b.Globals) && !(len(a.Globals) == 0 && len(b.Globals) == 0) {
		return false
	}
	if len(a.Funcs) != len(b.Funcs) {
		return false
	}
	for i := range a.Funcs {
		fa, fb := a.Funcs[i], b.Funcs[i]
		if fa.Name != fb.Name || fa.Ret != fb.Ret || fa.SrcLine != fb.SrcLine {
			return false
		}
		if !typesEqual(fa.Params, fb.Params) || !typesEqual(fa.Regs, fb.Regs) {
			return false
		}
		if !reflect.DeepEqual(fa.Arrays, fb.Arrays) && !(len(fa.Arrays) == 0 && len(fb.Arrays) == 0) {
			return false
		}
		if len(fa.Blocks) != len(fb.Blocks) {
			return false
		}
		for j := range fa.Blocks {
			ba, bb := fa.Blocks[j], fb.Blocks[j]
			if len(ba.Instrs) != len(bb.Instrs) {
				return false
			}
			for k := range ba.Instrs {
				ia, ib := ba.Instrs[k], bb.Instrs[k]
				if ia.Op != ib.Op || ia.Dst != ib.Dst || ia.A != ib.A || ia.B != ib.B ||
					ia.C != ib.C || ia.Sym != ib.Sym || ia.Imm != ib.Imm || ia.FImm != ib.FImm {
					return false
				}
				if len(ia.Args) != len(ib.Args) {
					return false
				}
				for x := range ia.Args {
					if ia.Args[x] != ib.Args[x] {
						return false
					}
				}
			}
		}
	}
	return true
}

func typesEqual(a, b []Type) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDecodeRejectsCorruption(t *testing.T) {
	m := NewModule("x")
	b := NewBuilder(m, "main", nil, TVoid)
	b.Ret(NoReg)
	data := Encode(m)

	if _, err := Decode(data[:4]); err == nil {
		t.Error("short data accepted")
	}
	bad := append([]byte("WRONGMAG"), data[8:]...)
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic accepted")
	}
	trailing := append(append([]byte(nil), data...), 0xff)
	if _, err := Decode(trailing); err == nil {
		t.Error("trailing bytes accepted")
	}
	truncated := data[:len(data)-1]
	if _, err := Decode(truncated); err == nil {
		t.Error("truncated data accepted")
	}
}

func TestEncodedSizeGrowsWithInstrumentation(t *testing.T) {
	m := NewModule("x")
	b := NewBuilder(m, "main", nil, TVoid)
	for i := 0; i < 20; i++ {
		b.ConstI(int64(i))
	}
	b.Ret(NoReg)
	before := EncodedSize(m)
	// Simulate instrumentation: add logphase ops.
	blk := m.Funcs[0].Blocks[0]
	extra := []Instr{{Op: OpLogPhase, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg, Sym: -1, Imm: 2}}
	blk.Instrs = append(extra, blk.Instrs...)
	after := EncodedSize(m)
	if after <= before {
		t.Errorf("instrumented size %d <= original %d", after, before)
	}
}

package ir

// BuiltinID identifies a library routine provided by the simulated runtime.
// Builtins carry the traits (IO, Net, Sleep, Lock, Barrier) that the
// Phase-Extractor mines from call sites, mirroring how the paper's LLVM pass
// classifies libc/pthread calls.
type BuiltinID int32

const (
	// I/O.
	BReadUserData BuiltinID = iota // blocks waiting for user input
	BReadInt                       // read an int from the (simulated) input file
	BReadFloat
	BPrintInt
	BPrintFloat
	BPrintChar

	// Network.
	BNetSend
	BNetRecv

	// Timing.
	BSleepMs

	// Synchronization.
	BLock
	BUnlock
	BBarrierInit // barrier_init(id, parties)
	BBarrierWait
	BJoin // wait for all threads spawned by this thread

	// Thread identity / runtime queries.
	BTid
	BNumCores
	BClockMs

	// Deterministic pseudo-randomness (per-thread stream).
	BRandInt   // rand_int(n) in [0, n)
	BRandFloat // in [0, 1)

	// Math (classified as FP work, like libm calls).
	BSqrt
	BSin
	BCos
	BExp
	BLog
	BPow
	BFabs
	BFloor

	// Integer helpers.
	BAbsI
	BMinI
	BMaxI

	NumBuiltins // sentinel
)

// BuiltinInfo describes a builtin's signature, traits and base cost.
type BuiltinInfo struct {
	Name   string
	Params []Type
	Ret    Type

	IsIO      bool
	IsNet     bool
	IsSleep   bool
	IsLock    bool // lock/unlock operations (Locks-Dens)
	IsBarrier bool // barrier_wait / join
	Blocking  bool // may suspend the calling thread

	// FPWork approximates how many FP-ALU ops the routine performs; used by
	// both the feature extractor (density accounting) and the timing model.
	FPWork int
	// BaseCycles is the non-blocking on-core cost.
	BaseCycles int
}

var builtinTable = [NumBuiltins]BuiltinInfo{
	BReadUserData: {Name: "read_user_data", Ret: TInt, IsIO: true, Blocking: true, BaseCycles: 400},
	BReadInt:      {Name: "read_int", Ret: TInt, IsIO: true, Blocking: true, BaseCycles: 250},
	BReadFloat:    {Name: "read_float", Ret: TFloat, IsIO: true, Blocking: true, BaseCycles: 250},
	BPrintInt:     {Name: "print_int", Params: []Type{TInt}, IsIO: true, Blocking: true, BaseCycles: 300},
	BPrintFloat:   {Name: "print_float", Params: []Type{TFloat}, IsIO: true, Blocking: true, BaseCycles: 300},
	BPrintChar:    {Name: "print_char", Params: []Type{TInt}, IsIO: true, Blocking: true, BaseCycles: 200},

	BNetSend: {Name: "net_send", Params: []Type{TInt}, IsNet: true, Blocking: true, BaseCycles: 500},
	BNetRecv: {Name: "net_recv", Ret: TInt, IsNet: true, Blocking: true, BaseCycles: 500},

	BSleepMs: {Name: "sleep_ms", Params: []Type{TInt}, IsSleep: true, Blocking: true, BaseCycles: 100},

	BLock:        {Name: "lock", Params: []Type{TInt}, IsLock: true, Blocking: true, BaseCycles: 40},
	BUnlock:      {Name: "unlock", Params: []Type{TInt}, IsLock: true, BaseCycles: 30},
	BBarrierInit: {Name: "barrier_init", Params: []Type{TInt, TInt}, BaseCycles: 30},
	BBarrierWait: {Name: "barrier_wait", Params: []Type{TInt}, IsBarrier: true, Blocking: true, BaseCycles: 60},
	BJoin:        {Name: "join", IsBarrier: true, Blocking: true, BaseCycles: 60},

	BTid:      {Name: "tid", Ret: TInt, BaseCycles: 4},
	BNumCores: {Name: "num_cores", Ret: TInt, BaseCycles: 4},
	BClockMs:  {Name: "clock_ms", Ret: TInt, BaseCycles: 20},

	BRandInt:   {Name: "rand_int", Params: []Type{TInt}, Ret: TInt, BaseCycles: 15},
	BRandFloat: {Name: "rand_float", Ret: TFloat, BaseCycles: 15},

	BSqrt:  {Name: "sqrt", Params: []Type{TFloat}, Ret: TFloat, FPWork: 4, BaseCycles: 16},
	BSin:   {Name: "sin", Params: []Type{TFloat}, Ret: TFloat, FPWork: 8, BaseCycles: 40},
	BCos:   {Name: "cos", Params: []Type{TFloat}, Ret: TFloat, FPWork: 8, BaseCycles: 40},
	BExp:   {Name: "exp", Params: []Type{TFloat}, Ret: TFloat, FPWork: 8, BaseCycles: 44},
	BLog:   {Name: "log", Params: []Type{TFloat}, Ret: TFloat, FPWork: 8, BaseCycles: 44},
	BPow:   {Name: "pow", Params: []Type{TFloat, TFloat}, Ret: TFloat, FPWork: 12, BaseCycles: 70},
	BFabs:  {Name: "fabs", Params: []Type{TFloat}, Ret: TFloat, FPWork: 1, BaseCycles: 4},
	BFloor: {Name: "floor", Params: []Type{TFloat}, Ret: TFloat, FPWork: 1, BaseCycles: 6},

	BAbsI: {Name: "abs", Params: []Type{TInt}, Ret: TInt, BaseCycles: 4},
	BMinI: {Name: "min", Params: []Type{TInt, TInt}, Ret: TInt, BaseCycles: 4},
	BMaxI: {Name: "max", Params: []Type{TInt, TInt}, Ret: TInt, BaseCycles: 4},
}

// Builtin returns the metadata for id. It panics on out-of-range ids, which
// indicate a compiler bug rather than a user error.
func Builtin(id BuiltinID) *BuiltinInfo {
	return &builtinTable[id]
}

// builtinByName is built once at init for front-end lookup.
var builtinByName = func() map[string]BuiltinID {
	m := make(map[string]BuiltinID, NumBuiltins)
	for id := BuiltinID(0); id < NumBuiltins; id++ {
		m[builtinTable[id].Name] = id
	}
	return m
}()

// BuiltinByName resolves a builtin name; ok is false if the name is unknown.
func BuiltinByName(name string) (BuiltinID, bool) {
	id, ok := builtinByName[name]
	return id, ok
}

package ir

// CFG utilities: successor/predecessor computation, reverse postorder,
// dominator trees (Cooper–Harvey–Kennedy iterative algorithm) and natural
// loop detection with per-block nesting depth. These are the analyses the
// Phase-Extractor needs to compute nesting factors and the Σ10ⁿ I/O weight
// heuristic from Example 3.4 of the paper.

// Succs returns the successor block IDs of b.
func Succs(b *Block) []int {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	switch t.Op {
	case OpBr:
		return []int{int(t.A)}
	case OpCBr:
		if t.B == t.C {
			return []int{int(t.B)}
		}
		return []int{int(t.B), int(t.C)}
	default: // OpRet
		return nil
	}
}

// CFGInfo caches derived control-flow facts for one function.
type CFGInfo struct {
	Fn    *Function
	Succ  [][]int
	Pred  [][]int
	RPO   []int // reverse postorder of reachable blocks (entry first)
	RPOIx []int // block id -> position in RPO, or -1 if unreachable
	IDom  []int // immediate dominator per block (-1 for entry/unreachable)

	// LoopDepth[b] is the number of natural loops containing block b.
	LoopDepth []int
	// Loops lists detected natural loops (header + body block set).
	Loops []Loop
}

// Loop is a natural loop: the header block and the set of blocks in its body
// (header included).
type Loop struct {
	Header int
	Blocks map[int]bool
}

// BuildCFG computes successors, predecessors, RPO, dominators and loops.
func BuildCFG(f *Function) *CFGInfo {
	n := len(f.Blocks)
	info := &CFGInfo{
		Fn:        f,
		Succ:      make([][]int, n),
		Pred:      make([][]int, n),
		RPOIx:     make([]int, n),
		IDom:      make([]int, n),
		LoopDepth: make([]int, n),
	}
	for i, b := range f.Blocks {
		info.Succ[i] = Succs(b)
	}
	for i, ss := range info.Succ {
		for _, s := range ss {
			info.Pred[s] = append(info.Pred[s], i)
		}
	}

	// Depth-first postorder from the entry; reverse it for RPO.
	visited := make([]bool, n)
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		visited[b] = true
		for _, s := range info.Succ[b] {
			if !visited[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if n > 0 {
		dfs(0)
	}
	info.RPO = make([]int, len(post))
	for i := range post {
		info.RPO[i] = post[len(post)-1-i]
	}
	for i := range info.RPOIx {
		info.RPOIx[i] = -1
	}
	for i, b := range info.RPO {
		info.RPOIx[b] = i
	}

	info.computeDominators()
	info.findLoops()
	return info
}

func (info *CFGInfo) computeDominators() {
	for i := range info.IDom {
		info.IDom[i] = -1
	}
	if len(info.RPO) == 0 {
		return
	}
	entry := info.RPO[0]
	info.IDom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range info.RPO[1:] {
			newIdom := -1
			for _, p := range info.Pred[b] {
				if info.RPOIx[p] < 0 || info.IDom[p] == -1 {
					continue // unreachable or not yet processed
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = info.intersect(p, newIdom)
				}
			}
			if newIdom != -1 && info.IDom[b] != newIdom {
				info.IDom[b] = newIdom
				changed = true
			}
		}
	}
	// Convention: the entry's IDom is -1 externally.
	info.IDom[entry] = -1
}

func (info *CFGInfo) intersect(b1, b2 int) int {
	entry := info.RPO[0]
	for b1 != b2 {
		for info.RPOIx[b1] > info.RPOIx[b2] {
			if b1 == entry || info.IDom[b1] == -1 {
				return b2
			}
			b1 = info.idomOrEntry(b1, entry)
		}
		for info.RPOIx[b2] > info.RPOIx[b1] {
			if b2 == entry || info.IDom[b2] == -1 {
				return b1
			}
			b2 = info.idomOrEntry(b2, entry)
		}
	}
	return b1
}

func (info *CFGInfo) idomOrEntry(b, entry int) int {
	d := info.IDom[b]
	if d == -1 {
		return entry
	}
	return d
}

// Dominates reports whether block a dominates block b.
func (info *CFGInfo) Dominates(a, b int) bool {
	if info.RPOIx[a] < 0 || info.RPOIx[b] < 0 {
		return false
	}
	entry := info.RPO[0]
	if a == entry {
		return true
	}
	for b != entry {
		if b == a {
			return true
		}
		d := info.IDom[b]
		if d == -1 {
			break
		}
		b = d
	}
	return b == a
}

// findLoops detects natural loops from back edges (t -> h with h dom t) and
// accumulates per-block nesting depth. Loops sharing a header are merged.
func (info *CFGInfo) findLoops() {
	byHeader := map[int]map[int]bool{}
	for t := range info.Succ {
		if info.RPOIx[t] < 0 {
			continue
		}
		for _, h := range info.Succ[t] {
			if !info.Dominates(h, t) {
				continue
			}
			body := byHeader[h]
			if body == nil {
				body = map[int]bool{h: true}
				byHeader[h] = body
			}
			// Walk backwards from t adding everything that reaches t
			// without passing through h.
			stack := []int{t}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[b] {
					continue
				}
				body[b] = true
				for _, p := range info.Pred[b] {
					if info.RPOIx[p] >= 0 {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	// Deterministic order: iterate headers in RPO order.
	for _, h := range info.RPO {
		body, ok := byHeader[h]
		if !ok {
			continue
		}
		info.Loops = append(info.Loops, Loop{Header: h, Blocks: body})
		for b := range body {
			info.LoopDepth[b]++
		}
	}
}

// MaxLoopDepth returns the deepest loop nesting in the function.
func (info *CFGInfo) MaxLoopDepth() int {
	max := 0
	for _, d := range info.LoopDepth {
		if d > max {
			max = d
		}
	}
	return max
}

package ir

import (
	"strings"
	"testing"
)

func TestOpcodeTableComplete(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		if opTable[op].name == "" {
			t.Errorf("opcode %d has no table entry", op)
		}
	}
}

func TestOpcodeClasses(t *testing.T) {
	cases := []struct {
		op   Opcode
		want Class
	}{
		{OpAdd, ClassIntALU},
		{OpFMul, ClassFPALU},
		{OpLoadI, ClassMem},
		{OpStoreF, ClassMem},
		{OpBr, ClassCtrl},
		{OpCBr, ClassCtrl},
		{OpRet, ClassCtrl},
		{OpCall, ClassCall},
		{OpSpawn, ClassCall},
		{OpBuiltin, ClassLib},
		{OpLogPhase, ClassInstrum},
		{OpSetConfig, ClassInstrum},
		{OpConstI, ClassOther},
		{OpLocalAddr, ClassMem},
		{OpGlobalAddr, ClassMem},
	}
	for _, c := range cases {
		if got := c.op.Class(); got != c.want {
			t.Errorf("%s: class %v, want %v", c.op.Name(), got, c.want)
		}
	}
}

func TestIsTerminator(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		want := op == OpBr || op == OpCBr || op == OpRet
		if got := op.IsTerminator(); got != want {
			t.Errorf("%s: IsTerminator=%v, want %v", op.Name(), got, want)
		}
	}
}

func TestBuiltinTraitsMutuallyConsistent(t *testing.T) {
	for id := BuiltinID(0); id < NumBuiltins; id++ {
		bi := Builtin(id)
		if bi.Name == "" {
			t.Fatalf("builtin %d has no name", id)
		}
		if bi.IsSleep && !bi.Blocking {
			t.Errorf("%s: sleep builtins must block", bi.Name)
		}
		if bi.IsBarrier && !bi.Blocking {
			t.Errorf("%s: barrier builtins must block", bi.Name)
		}
		if bi.BaseCycles <= 0 {
			t.Errorf("%s: BaseCycles must be positive", bi.Name)
		}
		got, ok := BuiltinByName(bi.Name)
		if !ok || got != id {
			t.Errorf("BuiltinByName(%q) = %v,%v, want %v", bi.Name, got, ok, id)
		}
	}
	if _, ok := BuiltinByName("no_such_builtin"); ok {
		t.Error("unknown builtin resolved")
	}
}

func TestBuiltinBlockingTraits(t *testing.T) {
	blocking := []BuiltinID{BReadUserData, BReadInt, BSleepMs, BLock, BBarrierWait, BJoin, BNetRecv}
	for _, id := range blocking {
		if !Builtin(id).Blocking {
			t.Errorf("%s should be blocking", Builtin(id).Name)
		}
	}
	nonBlocking := []BuiltinID{BUnlock, BTid, BSqrt, BRandInt, BBarrierInit}
	for _, id := range nonBlocking {
		if Builtin(id).Blocking {
			t.Errorf("%s should not be blocking", Builtin(id).Name)
		}
	}
}

// buildLoopFunc builds: entry -> header -> (body -> header | exit), i.e. a
// simple counted loop summing 0..n-1.
func buildLoopFunc(m *Module) *Function {
	b := NewBuilder(m, "sumloop", []Type{TInt}, TInt)
	header := b.NewBlock()
	body := b.NewBlock()
	exit := b.NewBlock()

	sum := b.ConstI(0)
	i := b.ConstI(0)
	b.Br(header)

	b.SetBlock(header)
	cond := b.Bin(OpLt, TInt, i, 0) // i < n (param reg 0)
	b.CBr(cond, body, exit)

	b.SetBlock(body)
	sum2 := b.Bin(OpAdd, TInt, sum, i)
	b.Emit(Instr{Op: OpMov, Dst: sum, A: sum2, B: NoReg, C: NoReg, Sym: -1})
	one := b.ConstI(1)
	i2 := b.Bin(OpAdd, TInt, i, one)
	b.Emit(Instr{Op: OpMov, Dst: i, A: i2, B: NoReg, C: NoReg, Sym: -1})
	b.Br(header)

	b.SetBlock(exit)
	b.Ret(sum)
	return b.F
}

func TestBuilderProducesVerifiableModule(t *testing.T) {
	m := NewModule("t")
	buildLoopFunc(m)
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v\n%s", err, Disassemble(m))
	}
}

func TestFunctionAccounting(t *testing.T) {
	m := NewModule("t")
	f := buildLoopFunc(m)
	if n := f.NumInstrs(); n != 12 {
		t.Errorf("NumInstrs = %d, want 12\n%s", n, Disassemble(m))
	}
	if m.NumInstrs() != f.NumInstrs() {
		t.Errorf("module/function instruction counts disagree")
	}
	b := NewBuilder(m, "witharrays", nil, TVoid)
	b.NewArray("a", 10, TInt)
	b.NewArray("b", 32, TFloat)
	b.Ret(NoReg)
	if c := b.F.FrameCells(); c != 42 {
		t.Errorf("FrameCells = %d, want 42", c)
	}
}

func TestGlobalLayout(t *testing.T) {
	m := NewModule("t")
	m.Globals = []GlobalDecl{
		{Name: "a", Size: 1, Elem: TInt},
		{Name: "b", Size: 100, Elem: TFloat},
		{Name: "c", Size: 7, Elem: TInt},
	}
	if got := m.GlobalBase(0); got != 0 {
		t.Errorf("GlobalBase(0) = %d", got)
	}
	if got := m.GlobalBase(1); got != 1 {
		t.Errorf("GlobalBase(1) = %d", got)
	}
	if got := m.GlobalBase(2); got != 101 {
		t.Errorf("GlobalBase(2) = %d", got)
	}
	if got := m.GlobalCells(); got != 108 {
		t.Errorf("GlobalCells = %d", got)
	}
}

func TestFuncByName(t *testing.T) {
	m := NewModule("t")
	buildLoopFunc(m)
	if f := m.FuncByName("sumloop"); f == nil || f.Name != "sumloop" {
		t.Fatalf("FuncByName failed: %v", f)
	}
	if f := m.FuncByName("nope"); f != nil {
		t.Fatalf("FuncByName(nope) = %v, want nil", f)
	}
}

func TestDisassembleMentionsKeyParts(t *testing.T) {
	m := NewModule("demo")
	m.Globals = append(m.Globals, GlobalDecl{Name: "g", Size: 4, Elem: TInt})
	m.NumMutex = 2
	b := NewBuilder(m, "main", []Type{TInt}, TVoid)
	arr := b.NewArray("buf", 16, TFloat)
	addr := b.NewReg(TInt)
	b.Emit(Instr{Op: OpLocalAddr, Dst: addr, A: NoReg, B: NoReg, C: NoReg, Sym: arr, Imm: 3})
	v := b.ConstF(1.5)
	b.Emit(Instr{Op: OpStoreF, Dst: NoReg, A: addr, B: v, C: NoReg, Sym: -1})
	b.CallB(BPrintInt, b.ConstI(7))
	b.Ret(NoReg)
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	text := Disassemble(m)
	for _, want := range []string{"module demo", "global @0 g", "mutexes 2", "func main", "array %0 buf", "laddr", "storef", "print_int", "ret"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestClassCounts(t *testing.T) {
	m := NewModule("t")
	b := NewBuilder(m, "mix", nil, TVoid)
	x := b.ConstI(1)
	y := b.ConstI(2)
	b.Bin(OpAdd, TInt, x, y)      // int alu
	fx := b.ConstF(1.0)           // other
	b.Bin(OpFMul, TFloat, fx, fx) // fp alu
	b.CallB(BLock, x)             // lib, lock
	b.CallB(BUnlock, x)           // lib, lock
	b.CallB(BPrintInt, x)         // lib, io
	b.CallB(BSqrt, fx)            // lib, fp-work 4
	b.CallB(BBarrierWait, x)      // lib, barrier
	b.CallB(BNetRecv)             // lib, net
	b.CallB(BSleepMs, x)          // lib, sleep
	b.Ret(NoReg)
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	c := CountFunc(b.F)
	if c.IntALU != 1 || c.FPALU != 1 {
		t.Errorf("alu counts: %+v", c)
	}
	if c.LockOps != 2 || c.IOCalls != 1 || c.Barriers != 1 || c.NetCalls != 1 || c.SleepOps != 1 {
		t.Errorf("trait counts: %+v", c)
	}
	if c.Lib != 7 {
		t.Errorf("lib count = %d, want 7", c.Lib)
	}
	if c.LibFPWork != 4 {
		t.Errorf("LibFPWork = %d, want 4", c.LibFPWork)
	}
	if c.Ctrl != 1 {
		t.Errorf("ctrl count = %d, want 1", c.Ctrl)
	}
	mc := CountModule(m)
	if mc.Total != c.Total {
		t.Errorf("module count %d != func count %d", mc.Total, c.Total)
	}
}

package ir

import (
	"fmt"
	"strings"
)

// Disassemble renders the module as human-readable text. The format is for
// inspection and golden tests; it is not re-parsed.
func Disassemble(m *Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Name)
	for i, g := range m.Globals {
		fmt.Fprintf(&sb, "global @%d %s [%d]%v\n", i, g.Name, g.Size, g.Elem)
	}
	if m.NumMutex > 0 {
		fmt.Fprintf(&sb, "mutexes %d\n", m.NumMutex)
	}
	if m.NumBarrier > 0 {
		fmt.Fprintf(&sb, "barriers %d\n", m.NumBarrier)
	}
	for _, f := range m.Funcs {
		sb.WriteString(DisassembleFunc(m, f))
	}
	return sb.String()
}

// DisassembleFunc renders one function.
func DisassembleFunc(m *Module, f *Function) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "\nfunc %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "r%d %v", i, p)
	}
	fmt.Fprintf(&sb, ") %v  ; regs=%d\n", f.Ret, len(f.Regs))
	for i, a := range f.Arrays {
		fmt.Fprintf(&sb, "  array %%%d %s [%d]%v\n", i, a.Name, a.Size, a.Elem)
	}
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, " b%d:\n", b.ID)
		for i := range b.Instrs {
			fmt.Fprintf(&sb, "   %s\n", FormatInstr(m, f, &b.Instrs[i]))
		}
	}
	return sb.String()
}

// FormatInstr renders one instruction.
func FormatInstr(m *Module, f *Function, in *Instr) string {
	reg := func(r int32) string {
		if r == NoReg {
			return "_"
		}
		return fmt.Sprintf("r%d", r)
	}
	args := func() string {
		parts := make([]string, len(in.Args))
		for i, a := range in.Args {
			parts[i] = reg(a)
		}
		return strings.Join(parts, ", ")
	}
	switch in.Op {
	case OpConstI:
		return fmt.Sprintf("%s = consti %d", reg(in.Dst), in.Imm)
	case OpConstF:
		return fmt.Sprintf("%s = constf %g", reg(in.Dst), in.FImm)
	case OpMov, OpNeg, OpNot, OpFNeg, OpI2F, OpF2I:
		return fmt.Sprintf("%s = %s %s", reg(in.Dst), in.Op.Name(), reg(in.A))
	case OpLoadI, OpLoadF:
		return fmt.Sprintf("%s = %s [%s]", reg(in.Dst), in.Op.Name(), reg(in.A))
	case OpStoreI, OpStoreF:
		return fmt.Sprintf("%s [%s] = %s", in.Op.Name(), reg(in.A), reg(in.B))
	case OpLocalAddr:
		idx := reg(in.A)
		if in.A == NoReg {
			idx = fmt.Sprintf("%d", in.Imm)
		}
		return fmt.Sprintf("%s = laddr %%%d[%s] ; %s", reg(in.Dst), in.Sym, idx, f.Arrays[in.Sym].Name)
	case OpGlobalAddr:
		idx := reg(in.A)
		if in.A == NoReg {
			idx = fmt.Sprintf("%d", in.Imm)
		}
		return fmt.Sprintf("%s = gaddr @%d[%s] ; %s", reg(in.Dst), in.Sym, idx, m.Globals[in.Sym].Name)
	case OpBr:
		return fmt.Sprintf("br b%d", in.A)
	case OpCBr:
		return fmt.Sprintf("cbr %s, b%d, b%d", reg(in.A), in.B, in.C)
	case OpRet:
		if in.A == NoReg {
			return "ret"
		}
		return fmt.Sprintf("ret %s", reg(in.A))
	case OpCall:
		callee := m.Funcs[in.Sym].Name
		if in.Dst == NoReg {
			return fmt.Sprintf("call %s(%s)", callee, args())
		}
		return fmt.Sprintf("%s = call %s(%s)", reg(in.Dst), callee, args())
	case OpSpawn:
		return fmt.Sprintf("spawn %s(%s)", m.Funcs[in.Sym].Name, args())
	case OpBuiltin:
		bi := Builtin(BuiltinID(in.Sym))
		if in.Dst == NoReg {
			return fmt.Sprintf("builtin %s(%s)", bi.Name, args())
		}
		return fmt.Sprintf("%s = builtin %s(%s)", reg(in.Dst), bi.Name, args())
	case OpLogPhase:
		return fmt.Sprintf("logphase %d", in.Imm)
	case OpToggleBlocked:
		return fmt.Sprintf("toggleblocked %d", in.Imm)
	case OpSetConfig:
		return fmt.Sprintf("setconfig %d", in.Imm)
	case OpDetermineConf:
		return fmt.Sprintf("determineconf %d", in.Imm)
	default:
		if in.Dst != NoReg {
			return fmt.Sprintf("%s = %s %s, %s", reg(in.Dst), in.Op.Name(), reg(in.A), reg(in.B))
		}
		return in.Op.Name()
	}
}

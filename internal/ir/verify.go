package ir

import "fmt"

// Verify checks structural well-formedness of a module: register indices and
// types, block targets, terminator placement, call signatures. It returns the
// first problem found. The toolchain runs Verify after lowering and after
// every instrumentation pass.
func Verify(m *Module) error {
	if m.FuncIndex == nil {
		return fmt.Errorf("ir: module %q has nil FuncIndex", m.Name)
	}
	for name, i := range m.FuncIndex {
		if i < 0 || i >= len(m.Funcs) || m.Funcs[i].Name != name {
			return fmt.Errorf("ir: FuncIndex[%q]=%d is inconsistent", name, i)
		}
	}
	for fi, f := range m.Funcs {
		if err := verifyFunc(m, f); err != nil {
			return fmt.Errorf("ir: func %q (#%d): %w", f.Name, fi, err)
		}
	}
	return nil
}

func verifyFunc(m *Module, f *Function) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	if len(f.Params) > len(f.Regs) {
		return fmt.Errorf("%d params but only %d regs", len(f.Params), len(f.Regs))
	}
	for i, p := range f.Params {
		if f.Regs[i] != p {
			return fmt.Errorf("param %d type %v but reg %d is %v", i, p, i, f.Regs[i])
		}
	}
	for bi, b := range f.Blocks {
		if b.ID != bi {
			return fmt.Errorf("block %d has ID %d", bi, b.ID)
		}
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %d empty", bi)
		}
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			last := ii == len(b.Instrs)-1
			if in.Op.IsTerminator() != last {
				return fmt.Errorf("block %d instr %d (%s): terminator placement", bi, ii, in.Op.Name())
			}
			if err := verifyInstr(m, f, in); err != nil {
				return fmt.Errorf("block %d instr %d (%s): %w", bi, ii, in.Op.Name(), err)
			}
		}
	}
	return nil
}

func (f *Function) regType(r int32) (Type, error) {
	if r < 0 || int(r) >= len(f.Regs) {
		return TVoid, fmt.Errorf("register %d out of range (have %d)", r, len(f.Regs))
	}
	return f.Regs[r], nil
}

func checkReg(f *Function, r int32, want Type) error {
	t, err := f.regType(r)
	if err != nil {
		return err
	}
	if t != want {
		return fmt.Errorf("register r%d is %v, want %v", r, t, want)
	}
	return nil
}

func checkBlock(f *Function, b int32) error {
	if b < 0 || int(b) >= len(f.Blocks) {
		return fmt.Errorf("block target %d out of range (have %d)", b, len(f.Blocks))
	}
	return nil
}

func verifyInstr(m *Module, f *Function, in *Instr) error {
	switch in.Op {
	case OpNop, OpLogPhase, OpToggleBlocked, OpSetConfig, OpDetermineConf:
		return nil
	case OpConstI:
		return checkReg(f, in.Dst, TInt)
	case OpConstF:
		return checkReg(f, in.Dst, TFloat)
	case OpMov:
		dt, err := f.regType(in.Dst)
		if err != nil {
			return err
		}
		return checkReg(f, in.A, dt)
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		if err := checkReg(f, in.Dst, TInt); err != nil {
			return err
		}
		if err := checkReg(f, in.A, TInt); err != nil {
			return err
		}
		return checkReg(f, in.B, TInt)
	case OpNeg, OpNot:
		if err := checkReg(f, in.Dst, TInt); err != nil {
			return err
		}
		return checkReg(f, in.A, TInt)
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		if err := checkReg(f, in.Dst, TFloat); err != nil {
			return err
		}
		if err := checkReg(f, in.A, TFloat); err != nil {
			return err
		}
		return checkReg(f, in.B, TFloat)
	case OpFNeg:
		if err := checkReg(f, in.Dst, TFloat); err != nil {
			return err
		}
		return checkReg(f, in.A, TFloat)
	case OpFEq, OpFNe, OpFLt, OpFLe, OpFGt, OpFGe:
		if err := checkReg(f, in.Dst, TInt); err != nil {
			return err
		}
		if err := checkReg(f, in.A, TFloat); err != nil {
			return err
		}
		return checkReg(f, in.B, TFloat)
	case OpI2F:
		if err := checkReg(f, in.Dst, TFloat); err != nil {
			return err
		}
		return checkReg(f, in.A, TInt)
	case OpF2I:
		if err := checkReg(f, in.Dst, TInt); err != nil {
			return err
		}
		return checkReg(f, in.A, TFloat)
	case OpLocalAddr:
		if err := checkReg(f, in.Dst, TInt); err != nil {
			return err
		}
		if in.Sym < 0 || int(in.Sym) >= len(f.Arrays) {
			return fmt.Errorf("array %d out of range (have %d)", in.Sym, len(f.Arrays))
		}
		if in.A != NoReg {
			return checkReg(f, in.A, TInt)
		}
		return nil
	case OpGlobalAddr:
		if err := checkReg(f, in.Dst, TInt); err != nil {
			return err
		}
		if in.Sym < 0 || int(in.Sym) >= len(m.Globals) {
			return fmt.Errorf("global %d out of range (have %d)", in.Sym, len(m.Globals))
		}
		if in.A != NoReg {
			return checkReg(f, in.A, TInt)
		}
		return nil
	case OpLoadI:
		if err := checkReg(f, in.Dst, TInt); err != nil {
			return err
		}
		return checkReg(f, in.A, TInt)
	case OpLoadF:
		if err := checkReg(f, in.Dst, TFloat); err != nil {
			return err
		}
		return checkReg(f, in.A, TInt)
	case OpStoreI:
		if err := checkReg(f, in.A, TInt); err != nil {
			return err
		}
		return checkReg(f, in.B, TInt)
	case OpStoreF:
		if err := checkReg(f, in.A, TInt); err != nil {
			return err
		}
		return checkReg(f, in.B, TFloat)
	case OpBr:
		return checkBlock(f, in.A)
	case OpCBr:
		if err := checkReg(f, in.A, TInt); err != nil {
			return err
		}
		if err := checkBlock(f, in.B); err != nil {
			return err
		}
		return checkBlock(f, in.C)
	case OpRet:
		if f.Ret == TVoid {
			if in.A != NoReg {
				return fmt.Errorf("void function returns a value")
			}
			return nil
		}
		return checkReg(f, in.A, f.Ret)
	case OpCall, OpSpawn:
		if in.Sym < 0 || int(in.Sym) >= len(m.Funcs) {
			return fmt.Errorf("callee %d out of range (have %d funcs)", in.Sym, len(m.Funcs))
		}
		callee := m.Funcs[in.Sym]
		if len(in.Args) != len(callee.Params) {
			return fmt.Errorf("call to %q with %d args, want %d", callee.Name, len(in.Args), len(callee.Params))
		}
		for i, a := range in.Args {
			if err := checkReg(f, a, callee.Params[i]); err != nil {
				return fmt.Errorf("arg %d: %w", i, err)
			}
		}
		if in.Op == OpSpawn {
			if in.Dst != NoReg {
				return fmt.Errorf("spawn cannot have a destination")
			}
			return nil
		}
		if callee.Ret == TVoid {
			if in.Dst != NoReg {
				return fmt.Errorf("void call with destination")
			}
			return nil
		}
		if in.Dst == NoReg {
			return nil // discarding a result is allowed
		}
		return checkReg(f, in.Dst, callee.Ret)
	case OpBuiltin:
		if in.Sym < 0 || in.Sym >= int32(NumBuiltins) {
			return fmt.Errorf("builtin %d out of range", in.Sym)
		}
		bi := Builtin(BuiltinID(in.Sym))
		if len(in.Args) != len(bi.Params) {
			return fmt.Errorf("builtin %q with %d args, want %d", bi.Name, len(in.Args), len(bi.Params))
		}
		for i, a := range in.Args {
			if err := checkReg(f, a, bi.Params[i]); err != nil {
				return fmt.Errorf("arg %d: %w", i, err)
			}
		}
		if bi.Ret == TVoid {
			if in.Dst != NoReg {
				return fmt.Errorf("void builtin with destination")
			}
			return nil
		}
		if in.Dst == NoReg {
			return nil
		}
		return checkReg(f, in.Dst, bi.Ret)
	}
	return fmt.Errorf("unknown opcode %d", in.Op)
}

package ir

import (
	"strings"
	"testing"
)

func validModule(t *testing.T) *Module {
	t.Helper()
	m := NewModule("v")
	b := NewBuilder(m, "main", []Type{TInt}, TInt)
	x := b.ConstI(2)
	y := b.Bin(OpMul, TInt, 0, x)
	b.Ret(y)
	if err := Verify(m); err != nil {
		t.Fatalf("base module invalid: %v", err)
	}
	return m
}

func TestVerifyCatchesErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(m *Module)
		want   string
	}{
		{
			"reg out of range",
			func(m *Module) { m.Funcs[0].Blocks[0].Instrs[1].A = 99 },
			"out of range",
		},
		{
			"type mismatch",
			func(m *Module) {
				f := m.Funcs[0]
				f.Regs = append(f.Regs, TFloat)
				f.Blocks[0].Instrs[1].A = int32(len(f.Regs) - 1)
			},
			"want int",
		},
		{
			"missing terminator",
			func(m *Module) {
				b := m.Funcs[0].Blocks[0]
				b.Instrs = b.Instrs[:len(b.Instrs)-1]
			},
			"terminator",
		},
		{
			"terminator mid-block",
			func(m *Module) {
				b := m.Funcs[0].Blocks[0]
				ins := []Instr{{Op: OpRet, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg, Sym: -1}}
				// ret void in non-void function, placed first
				b.Instrs = append(ins, b.Instrs...)
			},
			"terminator",
		},
		{
			"empty function",
			func(m *Module) { m.Funcs[0].Blocks = nil },
			"no blocks",
		},
		{
			"bad branch target",
			func(m *Module) {
				b := m.Funcs[0].Blocks[0]
				b.Instrs[len(b.Instrs)-1] = Instr{Op: OpBr, Dst: NoReg, A: 5, B: NoReg, C: NoReg, Sym: -1}
			},
			"out of range",
		},
		{
			"void return of value mismatch",
			func(m *Module) {
				b := m.Funcs[0].Blocks[0]
				b.Instrs[len(b.Instrs)-1].A = NoReg
			},
			"out of range",
		},
		{
			"bad callee",
			func(m *Module) {
				b := m.Funcs[0].Blocks[0]
				pre := b.Instrs[:len(b.Instrs)-1]
				pre = append(pre, Instr{Op: OpCall, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg, Sym: 9})
				b.Instrs = append(pre, b.Instrs[len(b.Instrs)-1])
			},
			"callee",
		},
		{
			"builtin arity",
			func(m *Module) {
				b := m.Funcs[0].Blocks[0]
				pre := b.Instrs[:len(b.Instrs)-1]
				pre = append(pre, Instr{Op: OpBuiltin, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg, Sym: int32(BPrintInt)})
				b.Instrs = append(pre, b.Instrs[len(b.Instrs)-1])
			},
			"want 1",
		},
		{
			"inconsistent func index",
			func(m *Module) { m.FuncIndex["main"] = 3 },
			"inconsistent",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := validModule(t)
			c.mutate(m)
			err := Verify(m)
			if err == nil {
				t.Fatalf("Verify accepted corrupted module")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestVerifySpawnRules(t *testing.T) {
	m := NewModule("s")
	wb := NewBuilder(m, "worker", []Type{TInt}, TVoid)
	wb.Ret(NoReg)
	b := NewBuilder(m, "main", nil, TVoid)
	arg := b.ConstI(0)
	b.Spawn(m.FuncIndex["worker"], arg)
	b.CallB(BJoin)
	b.Ret(NoReg)
	if err := Verify(m); err != nil {
		t.Fatalf("valid spawn rejected: %v", err)
	}
	// Spawn with wrong arity.
	blk := m.Funcs[1].Blocks[0]
	for i := range blk.Instrs {
		if blk.Instrs[i].Op == OpSpawn {
			blk.Instrs[i].Args = nil
		}
	}
	if err := Verify(m); err == nil {
		t.Fatal("spawn with wrong arity accepted")
	}
}

package ir

import (
	"math/rand"
	"testing"
)

// buildCFGFunc builds a function whose control flow follows edges: a list of
// (from, to...) successor lists. Blocks with no successors get OpRet; one
// successor OpBr; two successors OpCBr on a dummy condition.
func buildCFGFunc(t *testing.T, succs [][]int) *Function {
	t.Helper()
	m := NewModule("cfg")
	b := NewBuilder(m, "f", nil, TVoid)
	cond := b.ConstI(1)
	blocks := []*Block{b.Block()}
	for i := 1; i < len(succs); i++ {
		blocks = append(blocks, b.NewBlock())
	}
	for i, ss := range succs {
		b.SetBlock(blocks[i])
		if i != 0 {
			// every block needs at least one instruction before terminator
			b.Emit(Instr{Op: OpNop, Dst: NoReg, A: NoReg, B: NoReg, C: NoReg, Sym: -1})
		}
		switch len(ss) {
		case 0:
			b.Ret(NoReg)
		case 1:
			b.Br(blocks[ss[0]])
		case 2:
			b.CBr(cond, blocks[ss[0]], blocks[ss[1]])
		default:
			t.Fatalf("block %d has %d successors", i, len(ss))
		}
	}
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return b.F
}

func TestDominatorsDiamond(t *testing.T) {
	//      0
	//     / \
	//    1   2
	//     \ /
	//      3
	f := buildCFGFunc(t, [][]int{{1, 2}, {3}, {3}, {}})
	info := BuildCFG(f)
	if info.IDom[0] != -1 {
		t.Errorf("entry idom = %d", info.IDom[0])
	}
	if info.IDom[1] != 0 || info.IDom[2] != 0 || info.IDom[3] != 0 {
		t.Errorf("idoms = %v, want [-1 0 0 0]", info.IDom)
	}
	if !info.Dominates(0, 3) || info.Dominates(1, 3) || info.Dominates(2, 3) {
		t.Error("Dominates wrong on diamond")
	}
	if len(info.Loops) != 0 {
		t.Errorf("found %d loops in acyclic CFG", len(info.Loops))
	}
}

func TestNestedLoops(t *testing.T) {
	// 0 -> 1 (outer header) -> 2 (inner header) -> 3 (inner body -> 2) | 4
	// 4 -> 1 | 5(exit)
	f := buildCFGFunc(t, [][]int{{1}, {2}, {3, 4}, {2}, {1, 5}, {}})
	info := BuildCFG(f)
	if len(info.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(info.Loops))
	}
	if info.LoopDepth[3] != 2 {
		t.Errorf("inner body depth = %d, want 2", info.LoopDepth[3])
	}
	if info.LoopDepth[4] != 1 {
		t.Errorf("outer latch depth = %d, want 1", info.LoopDepth[4])
	}
	if info.LoopDepth[0] != 0 || info.LoopDepth[5] != 0 {
		t.Errorf("outside-loop blocks have nonzero depth: %v", info.LoopDepth)
	}
	if info.MaxLoopDepth() != 2 {
		t.Errorf("MaxLoopDepth = %d, want 2", info.MaxLoopDepth())
	}
}

func TestSelfLoop(t *testing.T) {
	f := buildCFGFunc(t, [][]int{{1}, {1, 2}, {}})
	info := BuildCFG(f)
	if len(info.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(info.Loops))
	}
	if info.LoopDepth[1] != 1 {
		t.Errorf("self-loop depth = %d", info.LoopDepth[1])
	}
}

func TestUnreachableBlocksIgnored(t *testing.T) {
	// Block 2 unreachable.
	f := buildCFGFunc(t, [][]int{{1}, {}, {1}})
	info := BuildCFG(f)
	if info.RPOIx[2] != -1 {
		t.Errorf("unreachable block in RPO")
	}
	if len(info.RPO) != 2 {
		t.Errorf("RPO = %v", info.RPO)
	}
	// The edge 2->1 must not create a loop.
	if len(info.Loops) != 0 {
		t.Errorf("loops through unreachable blocks: %v", info.Loops)
	}
}

// naiveDominates computes dominance by brute force: a dominates b if removing
// a makes b unreachable from the entry.
func naiveDominates(succs [][]int, a, b int) bool {
	if a == b {
		return true
	}
	seen := make([]bool, len(succs))
	var dfs func(int)
	dfs = func(n int) {
		if n == a || seen[n] {
			return
		}
		seen[n] = true
		for _, s := range succs[n] {
			dfs(s)
		}
	}
	dfs(0)
	reachableAvoiding := seen[b]
	// b must be reachable at all for dominance to be meaningful.
	seen2 := make([]bool, len(succs))
	var dfs2 func(int)
	dfs2 = func(n int) {
		if seen2[n] {
			return
		}
		seen2[n] = true
		for _, s := range succs[n] {
			dfs2(s)
		}
	}
	dfs2(0)
	if !seen2[b] {
		return false
	}
	return !reachableAvoiding
}

func TestDominatorsAgainstNaiveOnRandomCFGs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(9)
		succs := make([][]int, n)
		for i := 0; i < n; i++ {
			k := rng.Intn(3)
			if i == n-1 {
				k = 0 // ensure at least one exit
			}
			for j := 0; j < k; j++ {
				succs[i] = append(succs[i], rng.Intn(n))
			}
			if len(succs[i]) == 2 && succs[i][0] == succs[i][1] {
				succs[i] = succs[i][:1]
			}
		}
		f := buildCFGFunc(t, succs)
		info := BuildCFG(f)
		for a := 0; a < n; a++ {
			for bb := 0; bb < n; bb++ {
				if info.RPOIx[a] < 0 || info.RPOIx[bb] < 0 {
					continue
				}
				want := naiveDominates(succs, a, bb)
				if got := info.Dominates(a, bb); got != want {
					t.Fatalf("trial %d: Dominates(%d,%d)=%v want %v\nsuccs=%v\nidom=%v",
						trial, a, bb, got, want, succs, info.IDom)
				}
			}
		}
	}
}

func TestLoopBodiesContainHeader(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		succs := make([][]int, n)
		for i := 0; i < n; i++ {
			k := rng.Intn(3)
			if i == n-1 {
				k = 0
			}
			for j := 0; j < k; j++ {
				succs[i] = append(succs[i], rng.Intn(n))
			}
			if len(succs[i]) == 2 && succs[i][0] == succs[i][1] {
				succs[i] = succs[i][:1]
			}
		}
		f := buildCFGFunc(t, succs)
		info := BuildCFG(f)
		for _, l := range info.Loops {
			if !l.Blocks[l.Header] {
				t.Fatalf("loop header %d not in body %v", l.Header, l.Blocks)
			}
			// Every block in the body must be dominated by the header.
			for b := range l.Blocks {
				if !info.Dominates(l.Header, b) {
					// Natural loops with unstructured flow may include blocks
					// not dominated by the header only if the CFG is
					// irreducible; our detection merges via back edges whose
					// targets dominate sources, so header must dominate all.
					t.Fatalf("trial %d: header %d does not dominate body block %d (succs=%v)", trial, l.Header, b, succs)
				}
			}
		}
	}
}

// Package ir defines the intermediate representation that the astc front end
// (internal/lang) lowers to and that the Astro toolchain analyses, instruments
// and executes. It plays the role LLVM IR plays in the paper: a
// register-machine IR whose instructions are classified into the syntactic
// categories the Phase-Extractor mines (integer ALU, floating-point ALU,
// memory, control, library calls with IO/Net/Sleep/Lock/Barrier traits).
package ir

import "fmt"

// Type is the static type of a register or value. The language is
// deliberately small: 64-bit integers (also used for booleans) and 64-bit
// floats.
type Type uint8

const (
	TVoid Type = iota
	TInt
	TFloat
)

func (t Type) String() string {
	switch t {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Class buckets opcodes into the syntactic categories used by the
// Phase-Extractor (Sec. 3.1.1 of the paper).
type Class uint8

const (
	ClassOther Class = iota
	ClassIntALU
	ClassFPALU
	ClassMem
	ClassCtrl
	ClassCall    // calls to user functions
	ClassLib     // library (builtin) calls; refined by BuiltinInfo traits
	ClassInstrum // instrumentation pseudo-ops inserted by internal/instrument
)

func (c Class) String() string {
	switch c {
	case ClassOther:
		return "other"
	case ClassIntALU:
		return "int-alu"
	case ClassFPALU:
		return "fp-alu"
	case ClassMem:
		return "mem"
	case ClassCtrl:
		return "ctrl"
	case ClassCall:
		return "call"
	case ClassLib:
		return "lib"
	case ClassInstrum:
		return "instrum"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Opcode enumerates every IR instruction.
type Opcode uint8

const (
	OpNop Opcode = iota

	// Constants and moves.
	OpConstI // Dst = Imm
	OpConstF // Dst = FImm
	OpMov    // Dst = reg A (same type)

	// Integer ALU: Dst = A op B unless noted.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNeg // Dst = -A
	OpNot // Dst = (A == 0)
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// Floating-point ALU.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg
	OpFEq // FP compares produce an int register (0/1)
	OpFNe
	OpFLt
	OpFLe
	OpFGt
	OpFGe
	OpI2F // Dst(float) = float(A:int)
	OpF2I // Dst(int) = int(A:float), truncating

	// Memory. Addresses are cell indices into the machine's linear memory;
	// one cell holds one 8-byte value (the cache model maps cell -> byte
	// address).
	OpLocalAddr  // Dst = &frame.array[Sym] + index(reg A; A==-1 means Imm)
	OpGlobalAddr // Dst = &module.global[Sym] + index(reg A; A==-1 means Imm)
	OpLoadI      // Dst(int) = mem[A]
	OpLoadF      // Dst(float) = mem[A]
	OpStoreI     // mem[A] = B(int)
	OpStoreF     // mem[A] = B(float)

	// Control flow. Every block must end in exactly one of these.
	OpBr  // goto block A
	OpCBr // if reg A != 0 goto block B else block C
	OpRet // return reg A (A == -1 for void)

	// Calls.
	OpCall    // Dst = call Funcs[Sym](Args...); Dst == -1 for void
	OpBuiltin // Dst = builtin Sym(Args...)
	OpSpawn   // spawn thread running Funcs[Sym](Args...)

	// Instrumentation pseudo-ops (inserted by internal/instrument; never
	// produced by the front end).
	OpLogPhase      // report static program phase Imm to the runtime
	OpToggleBlocked // Imm = 1 entering a blocking call region, 0 leaving
	OpSetConfig     // static scheduling: request hardware configuration Imm
	OpDetermineConf // hybrid scheduling: ask resident policy, phase hint Imm

	numOpcodes // sentinel
)

// opInfo carries per-opcode metadata.
type opInfo struct {
	name  string
	class Class
}

var opTable = [numOpcodes]opInfo{
	OpNop:    {"nop", ClassOther},
	OpConstI: {"consti", ClassOther},
	OpConstF: {"constf", ClassOther},
	OpMov:    {"mov", ClassIntALU},

	OpAdd: {"add", ClassIntALU},
	OpSub: {"sub", ClassIntALU},
	OpMul: {"mul", ClassIntALU},
	OpDiv: {"div", ClassIntALU},
	OpRem: {"rem", ClassIntALU},
	OpAnd: {"and", ClassIntALU},
	OpOr:  {"or", ClassIntALU},
	OpXor: {"xor", ClassIntALU},
	OpShl: {"shl", ClassIntALU},
	OpShr: {"shr", ClassIntALU},
	OpNeg: {"neg", ClassIntALU},
	OpNot: {"not", ClassIntALU},
	OpEq:  {"eq", ClassIntALU},
	OpNe:  {"ne", ClassIntALU},
	OpLt:  {"lt", ClassIntALU},
	OpLe:  {"le", ClassIntALU},
	OpGt:  {"gt", ClassIntALU},
	OpGe:  {"ge", ClassIntALU},

	OpFAdd: {"fadd", ClassFPALU},
	OpFSub: {"fsub", ClassFPALU},
	OpFMul: {"fmul", ClassFPALU},
	OpFDiv: {"fdiv", ClassFPALU},
	OpFNeg: {"fneg", ClassFPALU},
	OpFEq:  {"feq", ClassFPALU},
	OpFNe:  {"fne", ClassFPALU},
	OpFLt:  {"flt", ClassFPALU},
	OpFLe:  {"fle", ClassFPALU},
	OpFGt:  {"fgt", ClassFPALU},
	OpFGe:  {"fge", ClassFPALU},
	OpI2F:  {"i2f", ClassFPALU},
	OpF2I:  {"f2i", ClassFPALU},

	// Address computations are classified with the memory accesses they
	// feed (LLVM GEPs folded into loads/stores), so that Mem-Dens reflects
	// memory-path work rather than register arithmetic.
	OpLocalAddr:  {"laddr", ClassMem},
	OpGlobalAddr: {"gaddr", ClassMem},
	OpLoadI:      {"loadi", ClassMem},
	OpLoadF:      {"loadf", ClassMem},
	OpStoreI:     {"storei", ClassMem},
	OpStoreF:     {"storef", ClassMem},

	OpBr:  {"br", ClassCtrl},
	OpCBr: {"cbr", ClassCtrl},
	OpRet: {"ret", ClassCtrl},

	OpCall:    {"call", ClassCall},
	OpBuiltin: {"builtin", ClassLib},
	OpSpawn:   {"spawn", ClassCall},

	OpLogPhase:      {"logphase", ClassInstrum},
	OpToggleBlocked: {"toggleblocked", ClassInstrum},
	OpSetConfig:     {"setconfig", ClassInstrum},
	OpDetermineConf: {"determineconf", ClassInstrum},
}

// Name returns the mnemonic for the opcode.
func (op Opcode) Name() string {
	if int(op) < len(opTable) {
		return opTable[op].name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Class returns the syntactic class of the opcode.
func (op Opcode) Class() Class {
	if int(op) < len(opTable) {
		return opTable[op].class
	}
	return ClassOther
}

// IsTerminator reports whether the opcode ends a basic block.
func (op Opcode) IsTerminator() bool {
	return op == OpBr || op == OpCBr || op == OpRet
}

// NoReg marks an unused register/operand slot.
const NoReg int32 = -1

// Instr is a single IR instruction. The meaning of the operand fields
// depends on Op; see the Opcode constants.
type Instr struct {
	Op   Opcode
	Dst  int32 // destination register or NoReg
	A    int32 // first operand register, branch target, or cond register
	B    int32 // second operand register or then-target
	C    int32 // else-target (OpCBr only)
	Sym  int32 // function index, builtin id, array id, global id, ...
	Imm  int64
	FImm float64
	Args []int32 // call/spawn/builtin argument registers
}

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator.
type Block struct {
	ID     int
	Instrs []Instr
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	return &b.Instrs[len(b.Instrs)-1]
}

// ArrayDecl is a fixed-size array allocated in a function frame (or, for
// globals, in module memory).
type ArrayDecl struct {
	Name string
	Size int64 // number of cells
	Elem Type
}

// Function is a unit of code: typed registers, frame arrays and a CFG whose
// entry is Blocks[0].
type Function struct {
	Name    string
	Params  []Type // first len(Params) registers hold the arguments
	Ret     Type
	Regs    []Type // register file types, indexed by register number
	Arrays  []ArrayDecl
	Blocks  []*Block
	SrcLine int // line in astc source where declared (0 if synthetic)
}

// NumInstrs counts instructions across all blocks.
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// FrameCells returns the number of memory cells the function's arrays need.
func (f *Function) FrameCells() int64 {
	var n int64
	for _, a := range f.Arrays {
		n += a.Size
	}
	return n
}

// GlobalDecl is a module-level scalar or array.
type GlobalDecl struct {
	Name string
	Size int64 // 1 for scalars
	Elem Type
}

// Module is a compiled astc program.
type Module struct {
	Name       string
	Funcs      []*Function
	FuncIndex  map[string]int
	Globals    []GlobalDecl
	NumMutex   int // mutex objects declared in the program
	NumBarrier int
}

// FuncByName returns the function with the given name, or nil.
func (m *Module) FuncByName(name string) *Function {
	if i, ok := m.FuncIndex[name]; ok {
		return m.Funcs[i]
	}
	return nil
}

// GlobalBase returns the memory cell index where global g starts, along with
// the total number of global cells, laying globals out in declaration order.
func (m *Module) GlobalBase(g int) int64 {
	var base int64
	for i := 0; i < g && i < len(m.Globals); i++ {
		base += m.Globals[i].Size
	}
	return base
}

// GlobalCells returns the total memory cells occupied by globals.
func (m *Module) GlobalCells() int64 {
	var n int64
	for _, g := range m.Globals {
		n += g.Size
	}
	return n
}

// NumInstrs counts instructions across all functions.
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInstrs()
	}
	return n
}

package ir

// ClassCounts tallies the static instruction mix of a function or module —
// the raw material for the code-level features of Sec. 3.1.1.
type ClassCounts struct {
	Total    int
	IntALU   int
	FPALU    int
	Mem      int
	Ctrl     int
	Call     int // user calls + spawns
	Lib      int // builtin calls, any trait
	Instrum  int
	Other    int
	IOCalls  int // builtin calls with IsIO
	NetCalls int
	SleepOps int
	LockOps  int // lock/unlock
	Barriers int // barrier_wait/join
	// LibFPWork accumulates the FPWork of math builtins: a call to sqrt is
	// "worth" a few FP instructions when computing densities.
	LibFPWork int
}

// CountFunc computes the instruction mix of one function.
func CountFunc(f *Function) ClassCounts {
	var c ClassCounts
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			countInstr(&b.Instrs[i], &c)
		}
	}
	return c
}

// CountModule computes the instruction mix of a whole module.
func CountModule(m *Module) ClassCounts {
	var c ClassCounts
	for _, f := range m.Funcs {
		fc := CountFunc(f)
		c.add(fc)
	}
	return c
}

func (c *ClassCounts) add(o ClassCounts) {
	c.Total += o.Total
	c.IntALU += o.IntALU
	c.FPALU += o.FPALU
	c.Mem += o.Mem
	c.Ctrl += o.Ctrl
	c.Call += o.Call
	c.Lib += o.Lib
	c.Instrum += o.Instrum
	c.Other += o.Other
	c.IOCalls += o.IOCalls
	c.NetCalls += o.NetCalls
	c.SleepOps += o.SleepOps
	c.LockOps += o.LockOps
	c.Barriers += o.Barriers
	c.LibFPWork += o.LibFPWork
}

func countInstr(in *Instr, c *ClassCounts) {
	c.Total++
	switch in.Op.Class() {
	case ClassIntALU:
		c.IntALU++
	case ClassFPALU:
		c.FPALU++
	case ClassMem:
		c.Mem++
	case ClassCtrl:
		c.Ctrl++
	case ClassCall:
		c.Call++
	case ClassInstrum:
		c.Instrum++
	case ClassLib:
		c.Lib++
		bi := Builtin(BuiltinID(in.Sym))
		switch {
		case bi.IsIO:
			c.IOCalls++
		case bi.IsNet:
			c.NetCalls++
		case bi.IsSleep:
			c.SleepOps++
		case bi.IsLock:
			c.LockOps++
		case bi.IsBarrier:
			c.Barriers++
		}
		c.LibFPWork += bi.FPWork
	default:
		c.Other++
	}
}

package ir

import "testing"

func TestFoldConstantsChain(t *testing.T) {
	m := NewModule("o")
	b := NewBuilder(m, "f", nil, TInt)
	x := b.ConstI(6)
	y := b.ConstI(7)
	p := b.Bin(OpMul, TInt, x, y) // 42
	q := b.Bin(OpAdd, TInt, p, x) // 48
	r := b.Bin(OpLt, TInt, q, y)  // 0
	s := b.Bin(OpXor, TInt, r, q) // 48
	b.Ret(s)
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	n := Optimize(m)
	if n == 0 {
		t.Fatal("no rewrites")
	}
	if err := Verify(m); err != nil {
		t.Fatalf("optimized module invalid: %v\n%s", err, Disassemble(m))
	}
	// The return register must now be defined by a constant 48 and all
	// intermediate temporaries must be gone.
	f := m.Funcs[0]
	var foundConst bool
	for _, blk := range f.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			if in.Op == OpConstI && in.Dst == s && in.Imm == 48 {
				foundConst = true
			}
			if in.Op == OpMul || in.Op == OpAdd || in.Op == OpLt || in.Op == OpXor {
				t.Errorf("unfolded %s survived", in.Op.Name())
			}
		}
	}
	if !foundConst {
		t.Errorf("folded constant missing:\n%s", Disassemble(m))
	}
	if got := f.NumInstrs(); got != 2 { // consti + ret
		t.Errorf("instrs after DCE = %d, want 2:\n%s", got, Disassemble(m))
	}
}

func TestNoFoldDivByZero(t *testing.T) {
	m := NewModule("o")
	b := NewBuilder(m, "f", nil, TInt)
	x := b.ConstI(5)
	z := b.ConstI(0)
	d := b.Bin(OpDiv, TInt, x, z)
	b.Ret(d)
	Optimize(m)
	f := m.Funcs[0]
	found := false
	for _, blk := range f.Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Op == OpDiv {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("division by zero was folded away:\n%s", Disassemble(m))
	}
}

func TestSimplifyBranchAndRemoveUnreachable(t *testing.T) {
	m := NewModule("o")
	b := NewBuilder(m, "f", nil, TInt)
	then := b.NewBlock()
	els := b.NewBlock()
	end := b.NewBlock()
	cond := b.ConstI(1)
	b.CBr(cond, then, els)

	b.SetBlock(then)
	v1 := b.ConstI(10)
	b.Ret(v1)

	b.SetBlock(els)
	v2 := b.ConstI(20)
	b.Ret(v2)

	b.SetBlock(end)
	b.Ret(b.ConstI(0))

	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	Optimize(m)
	if err := Verify(m); err != nil {
		t.Fatalf("optimized invalid: %v\n%s", err, Disassemble(m))
	}
	f := m.Funcs[0]
	// The else branch and the never-referenced end block must be gone.
	if len(f.Blocks) != 2 {
		t.Errorf("blocks = %d, want 2 (entry + then):\n%s", len(f.Blocks), Disassemble(m))
	}
	for _, blk := range f.Blocks {
		if blk.Terminator().Op == OpCBr {
			t.Error("constant branch survived")
		}
	}
	// Block IDs must be dense and self-consistent after renumbering.
	for i, blk := range f.Blocks {
		if blk.ID != i {
			t.Errorf("block %d has ID %d", i, blk.ID)
		}
	}
}

func TestDeadTempsKeepEffects(t *testing.T) {
	m := NewModule("o")
	b := NewBuilder(m, "f", nil, TVoid)
	g := b.CallB(BRandInt, b.ConstI(10)) // result unused, call must stay
	_ = g
	dead := b.ConstF(3.14) // genuinely dead
	_ = dead
	b.CallB(BPrintInt, b.ConstI(1))
	b.Ret(NoReg)
	Optimize(m)
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	var builtins, constf int
	for _, blk := range m.Funcs[0].Blocks {
		for i := range blk.Instrs {
			switch blk.Instrs[i].Op {
			case OpBuiltin:
				builtins++
			case OpConstF:
				constf++
			}
		}
	}
	if builtins != 2 {
		t.Errorf("builtin calls = %d, want 2 (calls have effects)", builtins)
	}
	if constf != 0 {
		t.Errorf("dead float constant survived")
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	m := NewModule("o")
	buildLoopFunc(m)
	Optimize(m)
	after := Disassemble(m)
	if n := Optimize(m); n != 0 {
		t.Errorf("second Optimize made %d rewrites", n)
	}
	if Disassemble(m) != after {
		t.Error("Optimize not idempotent")
	}
}

// Package telemetry is the repo's dependency-free metrics layer: a
// registry of counters, gauges and histograms with a named snapshot API
// and Prometheus text exposition, plus a lightweight span/trace model
// (trace.go) for per-cell cross-machine timing.
//
// Design constraints, in priority order:
//
//   - Inert: nothing in this package may influence simulation results,
//     cache keys, or result-set fingerprints. Instruments only ever
//     *read* the instrumented code's state; they are never consulted by
//     it (DESIGN.md invariant 8).
//   - Hot-path safe: Counter.Add and Histogram.Observe are a handful of
//     atomic operations and zero heap allocations, so the simulator's
//     0-allocs/op steady-state quanta survive with telemetry compiled
//     in. The sim layer batches further: per-run totals accumulate in
//     plain machine-local fields and flush here once per run.
//   - Deterministic exposition: metric names sort, histogram bucket
//     bounds are fixed at registration, and floats render with %g-style
//     shortest form, so the Prometheus text output is golden-testable
//     and metric renames are deliberate (a CI-pinned golden file).
//
// Metric names follow Prometheus conventions (snake_case, unit-suffixed,
// counters end in _total). A name may carry a fixed label set inline —
// `astro_queue_cells_total{kind="sim"}` — which the expositor folds into
// one TYPE/HELP family per base name; this keeps the registry a flat
// map (one atomic word per instrument) instead of a vector type.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64 (stored as bits, so Set/Value are single
// atomic words; Add is a CAS loop).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bounds are upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
// Observe is allocation-free: a linear scan over the (short, fixed)
// bounds slice plus three atomic adds.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; not cumulative
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value. NaN is dropped: it would land in the +Inf
// bucket but poison the sum (every later Sum reads NaN), so a single
// bad division upstream must not wreck a whole histogram's exposition.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DefBuckets is the default latency bucket ladder (seconds): 1ms to 60s,
// roughly exponential. Fixed here so every latency histogram in the repo
// shares one deterministic shape.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type metric struct {
	name string // full name, possibly with an inline {label="set"}
	base string // name up to the label set
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named instruments. Registration is get-or-create and
// idempotent: asking twice for the same name returns the same instrument,
// so package-level metric variables across the repo can share one
// registry without init-order coupling. Registering an existing name as a
// different kind panics — that is a programming error, not a runtime
// condition.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

// Default is the process-wide registry every astro subsystem registers
// into; /metrics on astro-serve and `astro-experiments -remote` exposes
// it.
var Default = NewRegistry()

// baseName strips an inline label set: `x_total{kind="sim"}` → `x_total`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func (r *Registry) lookup(name, help string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, base: baseName(name), help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	}
	r.metrics[name] = m
	return m
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter).counter
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge).gauge
}

// Histogram returns (creating if needed) the named histogram with the
// given bucket upper bounds (nil = DefBuckets). Bounds are fixed at first
// registration; later calls return the existing instrument regardless of
// the bounds argument.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.lookup(name, help, kindHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.hist == nil {
		if bounds == nil {
			bounds = DefBuckets
		}
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		m.hist = &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
	}
	return m.hist
}

// SnapshotMetric is one instrument's state in a Snapshot.
type SnapshotMetric struct {
	Kind  string  `json:"kind"`
	Help  string  `json:"help,omitempty"`
	Value float64 `json:"value,omitempty"` // counter/gauge

	Count   uint64            `json:"count,omitempty"` // histogram
	Sum     float64           `json:"sum,omitempty"`
	Buckets map[string]uint64 `json:"buckets,omitempty"` // upper bound → cumulative count
}

// Snapshot returns every instrument's current state keyed by full metric
// name — the structured (JSON-friendly) twin of the Prometheus text
// exposition.
func (r *Registry) Snapshot() map[string]SnapshotMetric {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()

	out := make(map[string]SnapshotMetric, len(ms))
	for _, m := range ms {
		sm := SnapshotMetric{Kind: m.kind.String(), Help: m.help}
		switch m.kind {
		case kindCounter:
			sm.Value = float64(m.counter.Value())
		case kindGauge:
			sm.Value = m.gauge.Value()
		case kindHistogram:
			sm.Count = m.hist.Count()
			sm.Sum = m.hist.Sum()
			sm.Buckets = map[string]uint64{}
			var cum uint64
			for i, b := range m.hist.bounds {
				cum += m.hist.buckets[i].Load()
				sm.Buckets[formatFloat(b)] = cum
			}
			cum += m.hist.buckets[len(m.hist.bounds)].Load()
			sm.Buckets["+Inf"] = cum
		}
		out[m.name] = sm
	}
	return out
}

// formatFloat renders floats the way the exposition does: shortest
// round-trip form, so 0.25 stays "0.25" and 1 stays "1".
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelSet returns the inline label set of a full name, without braces:
// `x{kind="sim"}` → `kind="sim"`; plain names return "".
func labelSet(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return ""
	}
	return strings.TrimSuffix(name[i+1:], "}")
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4). Output is deterministic: one HELP/TYPE header
// per base-name family (first registered help wins), metrics sorted by
// full name within sorted families.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].base != ms[j].base {
			return ms[i].base < ms[j].base
		}
		return ms[i].name < ms[j].name
	})

	lastBase := ""
	for _, m := range ms {
		if m.base != lastBase {
			if m.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", m.base, m.help)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", m.base, m.kind)
			lastBase = m.base
		}
		labels := labelSet(m.name)
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s %d\n", promName(m.base, labels, ""), m.counter.Value())
		case kindGauge:
			fmt.Fprintf(w, "%s %s\n", promName(m.base, labels, ""), formatFloat(m.gauge.Value()))
		case kindHistogram:
			var cum uint64
			for i, b := range m.hist.bounds {
				cum += m.hist.buckets[i].Load()
				fmt.Fprintf(w, "%s %d\n", promName(m.base+"_bucket", labels, `le="`+formatFloat(b)+`"`), cum)
			}
			cum += m.hist.buckets[len(m.hist.bounds)].Load()
			fmt.Fprintf(w, "%s %d\n", promName(m.base+"_bucket", labels, `le="+Inf"`), cum)
			fmt.Fprintf(w, "%s %s\n", promName(m.base+"_sum", labels, ""), formatFloat(m.hist.Sum()))
			fmt.Fprintf(w, "%s %d\n", promName(m.base+"_count", labels, ""), m.hist.Count())
		}
	}
}

// promName joins a metric name with its label set and an extra label.
func promName(base, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return base
	case labels == "":
		return base + "{" + extra + "}"
	case extra == "":
		return base + "{" + labels + "}"
	default:
		return base + "{" + labels + "," + extra + "}"
	}
}

// Handler serves the registry as a Prometheus scrape target.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

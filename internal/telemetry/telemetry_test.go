package telemetry

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "other help"); again != c {
		t.Fatalf("re-registration returned a different counter")
	}

	g := r.Gauge("g", "")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{0.5, 1, 2})
	for _, v := range []float64{0.25, 0.5, 1.5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 102.25 {
		t.Fatalf("sum = %g, want 102.25", h.Sum())
	}
	snap := r.Snapshot()["h_seconds"]
	want := map[string]uint64{"0.5": 2, "1": 2, "2": 3, "+Inf": 4}
	for b, n := range want {
		if snap.Buckets[b] != n {
			t.Errorf("bucket %s = %d, want %d", b, snap.Buckets[b], n)
		}
	}
	if again := r.Histogram("h_seconds", "", nil); again != h {
		t.Fatalf("re-registration returned a different histogram")
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{0.5, 1, 2})

	// Negative observations are legal (a clock step backwards upstream)
	// and land in the lowest bucket.
	h.Observe(-3)
	if h.Count() != 1 || h.Sum() != -3 {
		t.Fatalf("after negative observe: count=%d sum=%g", h.Count(), h.Sum())
	}
	if snap := r.Snapshot()["h_seconds"]; snap.Buckets["0.5"] != 1 {
		t.Fatalf("negative value not in lowest bucket: %+v", snap.Buckets)
	}

	// NaN is dropped entirely: counting it but not summing it would skew
	// the mean, and summing it would turn every later Sum into NaN.
	h.Observe(math.NaN())
	if h.Count() != 1 {
		t.Fatalf("NaN was counted: count=%d", h.Count())
	}
	if math.IsNaN(h.Sum()) {
		t.Fatalf("NaN reached the sum")
	}

	// Exact boundary values belong to the bucket they bound (le semantics:
	// v > bound moves on, v == bound stays).
	for _, v := range []float64{0.5, 1, 2} {
		h.Observe(v)
	}
	snap := r.Snapshot()["h_seconds"]
	want := map[string]uint64{"0.5": 2, "1": 3, "2": 4, "+Inf": 4}
	for b, n := range want {
		if snap.Buckets[b] != n {
			t.Errorf("boundary bucket %s = %d, want %d", b, snap.Buckets[b], n)
		}
	}

	// +Inf observations count and reach only the implicit bucket.
	h.Observe(math.Inf(1))
	if snap := r.Snapshot()["h_seconds"]; snap.Buckets["+Inf"] != 5 || snap.Buckets["2"] != 4 {
		t.Fatalf("+Inf placement wrong: %+v", snap.Buckets)
	}
}

func TestSnapshotDuringWrites(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{0.5, 1})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(0.25)
					h.Observe(0.75)
				}
			}
		}()
	}
	// Snapshots taken mid-write must be internally sane: cumulative
	// buckets monotone, +Inf equal to the total it reports, never more
	// than the live count read afterwards.
	for i := 0; i < 200; i++ {
		snap := r.Snapshot()["h_seconds"]
		if snap.Buckets["0.5"] > snap.Buckets["1"] || snap.Buckets["1"] > snap.Buckets["+Inf"] {
			t.Fatalf("non-monotone cumulative buckets: %+v", snap.Buckets)
		}
		if after := h.Count(); snap.Buckets["+Inf"] > after {
			t.Fatalf("snapshot total %d exceeds later live count %d", snap.Buckets["+Inf"], after)
		}
	}
	close(stop)
	wg.Wait()
}

func TestTraceEvictionCounter(t *testing.T) {
	before := cTraceEvictions.Value()
	s := NewTraceStore(2)
	for _, k := range []string{"a", "b", "c", "d"} {
		s.Add(Trace{Key: k})
	}
	if got := cTraceEvictions.Value() - before; got != 2 {
		t.Fatalf("astro_trace_evictions_total advanced by %d, want 2", got)
	}
	// A duplicate Add is refused before the eviction loop runs.
	s.Add(Trace{Key: "c"})
	if got := cTraceEvictions.Value() - before; got != 2 {
		t.Fatalf("duplicate Add evicted: counter advanced by %d", got)
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("astro_a_total", "a").Add(7)
	r.Counter(`astro_b_total{kind="sim"}`, "b").Add(3)
	r.Gauge("astro_g", "g").Set(2.5)
	r.Histogram("astro_h_seconds", "h", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	got := ParseText(&buf)
	want := map[string]float64{
		"astro_a_total":                  7,
		`astro_b_total{kind="sim"}`:      3,
		"astro_g":                        2.5,
		`astro_h_seconds_bucket{le="1"}`: 1,
		"astro_h_seconds_count":          1,
		"astro_h_seconds_sum":            0.5,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %g, want %g (parsed: %v)", k, got[k], v, got)
		}
	}
	// Garbage degrades to skipped lines, never a panic or partial map loss.
	got = ParseText(strings.NewReader("# comment\nbad line without value x\nok 1\n\n"))
	if len(got) != 1 || got["ok"] != 1 {
		t.Fatalf("garbage parse = %v", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("registering counter name as gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %g, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("astro_x_total", "x").Inc()
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "astro_x_total 1\n") {
		t.Fatalf("body missing metric:\n%s", rec.Body.String())
	}
}

func TestTraceStoreBounded(t *testing.T) {
	s := NewTraceStore(2)
	now := time.Unix(0, 0)
	s.Add(Trace{Key: "a", Campaign: "c1", Done: now})
	s.Add(Trace{Key: "b", Campaign: "c1", Done: now})
	s.Add(Trace{Key: "c", Campaign: "c2", Done: now})
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	if _, ok := s.Get("a"); ok {
		t.Fatalf("oldest trace not evicted")
	}
	if _, ok := s.Get("c"); !ok {
		t.Fatalf("newest trace missing")
	}
	// Duplicate completion keeps the first trace.
	s.Add(Trace{Key: "c", Campaign: "other"})
	if tr, _ := s.Get("c"); tr.Campaign != "c2" {
		t.Fatalf("duplicate Add replaced trace: %+v", tr)
	}
	if got := s.List("c2", 0); len(got) != 1 || got[0].Key != "c" {
		t.Fatalf("List(c2) = %+v", got)
	}
	if got := s.List("", 1); len(got) != 1 {
		t.Fatalf("List max=1 returned %d", len(got))
	}
}

func TestSortSpans(t *testing.T) {
	base := time.Unix(100, 0)
	spans := []Span{
		{Name: "execute", Start: base.Add(time.Second)},
		{Name: "queued", Start: base},
		{Name: "lease_wait", Start: base},
	}
	SortSpans(spans)
	got := []string{spans[0].Name, spans[1].Name, spans[2].Name}
	want := []string{"lease_wait", "queued", "execute"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

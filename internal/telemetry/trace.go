package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Span is one named interval in a cell's life, measured on whichever
// machine owned that stage. Host distinguishes coordinator-side spans
// ("coordinator") from worker-side ones (the worker ID); wall-clock
// Start is informational only — cross-machine ordering uses span names,
// not clocks.
type Span struct {
	Name  string    `json:"name"`            // "lease_wait", "queued", "execute", ...
	Host  string    `json:"host,omitempty"`  // worker ID or "coordinator"
	Start time.Time `json:"start,omitempty"` // local wall clock of the owning host
	DurS  float64   `json:"dur_s"`           // measured duration, seconds
}

// Trace is the assembled per-cell record: every span reported for one
// content key, annotated with the campaign that scheduled it. Spans from
// the worker arrive inside the result envelope; the coordinator appends
// its own queue-side spans on completion.
type Trace struct {
	Key      string    `json:"key"`                // cell content key (sha256 hex)
	Campaign string    `json:"campaign,omitempty"` // engine campaign ID, if any
	Kind     string    `json:"kind,omitempty"`     // "sim" or "train"
	Worker   string    `json:"worker,omitempty"`   // worker that completed the cell
	Done     time.Time `json:"done"`               // coordinator-side completion time
	Spans    []Span    `json:"spans"`
}

// TraceStore keeps the most recent traces, bounded FIFO by insertion.
// One trace per cell key; re-completing a key (duplicate submission)
// keeps the first trace — the later result was discarded as a duplicate
// anyway.
type TraceStore struct {
	mu     sync.Mutex
	limit  int
	order  []string
	traces map[string]*Trace
}

// NewTraceStore builds a store retaining at most limit traces
// (limit <= 0 selects the default of 4096).
func NewTraceStore(limit int) *TraceStore {
	if limit <= 0 {
		limit = 4096
	}
	return &TraceStore{limit: limit, traces: map[string]*Trace{}}
}

// cTraceEvictions counts traces dropped by the FIFO bound — the signal
// that /work/traces has become lossy and the operator should raise the
// retention limit (or scrape faster). Registered on Default so every
// coordinator exposes it; the exposition golden test uses its own
// registry and is unaffected.
var cTraceEvictions = Default.Counter("astro_trace_evictions_total", "Traces evicted from the bounded trace store (oldest-first).")

// Add records a completed cell's trace, evicting the oldest when full.
func (s *TraceStore) Add(t Trace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.traces[t.Key]; ok {
		return
	}
	for len(s.order) >= s.limit {
		old := s.order[0]
		s.order = s.order[1:]
		delete(s.traces, old)
		cTraceEvictions.Inc()
	}
	cp := t
	cp.Spans = append([]Span(nil), t.Spans...)
	s.traces[t.Key] = &cp
	s.order = append(s.order, t.Key)
}

// Get returns the trace for a cell key, if retained.
func (s *TraceStore) Get(key string) (Trace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.traces[key]
	if !ok {
		return Trace{}, false
	}
	return *t, true
}

// List returns retained traces, optionally filtered by campaign,
// newest-first, at most max (<=0 = all).
func (s *TraceStore) List(campaign string, max int) []Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Trace, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		t := s.traces[s.order[i]]
		if campaign != "" && t.Campaign != campaign {
			continue
		}
		out = append(out, *t)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// Len returns the number of retained traces.
func (s *TraceStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// SortSpans orders spans by start time then name, for stable display of
// an assembled trace.
func SortSpans(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].Name < spans[j].Name
	})
}

package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden exposition file")

// TestPrometheusExpositionGolden pins the exact text exposition of a
// synthetic registry. Any change to metric rendering — ordering, float
// formatting, label handling, bucket emission — shows up as a golden
// diff, so format changes and metric renames are deliberate (CI runs
// this; regenerate with `go test ./internal/telemetry -run Golden -update`).
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()

	sim := r.Counter(`astro_test_cells_total{kind="sim"}`, "Cells executed by kind.")
	train := r.Counter(`astro_test_cells_total{kind="train"}`, "Cells executed by kind.")
	sim.Add(3)
	train.Add(1)

	occ := r.Gauge("astro_test_occupancy", "Shard occupancy fraction.")
	occ.Set(0.25)

	h := r.Histogram("astro_test_latency_seconds", "Stage latency.", []float64{0.5, 1, 2})
	// Values exactly representable in binary so the sum renders stably.
	for _, v := range []float64{0.25, 1, 4} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	r.WritePrometheus(&buf)

	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden.\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

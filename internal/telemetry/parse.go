package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// ParseText parses Prometheus text exposition (the format WritePrometheus
// emits) into a flat map of full sample name — labels included — to
// value. It is the client half of the dashboard loop: `astro fleet top`
// scrapes a coordinator's /metrics and reads queue depths and completion
// counters out of the result. Comment lines and anything unparseable are
// skipped (a dashboard should degrade, not die, on a scrape hiccup);
// histogram series appear under their _bucket/_sum/_count sample names.
func ParseText(r io.Reader) map[string]float64 {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is everything after the last space; the name (which may
		// contain spaces only inside label quotes) is everything before it.
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64)
		if err != nil {
			continue
		}
		out[strings.TrimSpace(line[:i])] = v
	}
	return out
}

package campaign

import (
	"bytes"
	"encoding/json"
	"testing"

	"astro/internal/features"
	"astro/internal/instrument"
	"astro/internal/rl"
	"astro/internal/sim"
	"astro/internal/workloads"
)

// trainSpecFor builds a small training cell for a bundled workload.
func trainSpecFor(t *testing.T, name string, seed int64) *TrainSpec {
	t.Helper()
	spec, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("workload %s not registered", name)
	}
	mod, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	mi := features.AnalyzeModule(mod, features.Options{})
	learn, err := instrument.ForLearning(mod, mi)
	if err != nil {
		t.Fatal(err)
	}
	return &TrainSpec{
		Label:    "train/" + name,
		Module:   learn,
		OS:       "gts",
		Agent:    "dqn",
		DQN:      rl.DQNConfig{Seed: seed, LR: 0.05},
		Episodes: 2,
		Seed:     seed,
		Args:     spec.SmallArgs(),
		Opts: sim.Options{
			CheckpointS: 200e-6,
			QuantumS:    50e-6,
			TickS:       100e-6,
		},
	}
}

// agentFingerprint reduces an agent to the observable surface downstream
// consumers use: greedy actions and Q-values over a state sample.
func agentFingerprint(t *testing.T, a rl.Agent) []byte {
	t.Helper()
	type probe struct {
		Best int
		Q    float64
	}
	var probes []probe
	for cfg := 0; cfg < a.NumActions(); cfg += 3 {
		for ph := 0; ph < features.NumPhases; ph++ {
			s := rl.State{ConfigID: cfg, ProgPhase: ph, HWPhaseID: (cfg*7 + ph) % 81}
			probes = append(probes, probe{Best: a.Best(s), Q: a.Q(s, a.Best(s))})
		}
	}
	data, err := json.Marshal(probes)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTrainCellMemoization trains a cell cold, then re-trains against the
// same store and requires a cache hit whose restored agent is
// inference-identical (bit-equal Best/Q everywhere sampled) and whose
// visits and stats round-tripped.
func TestTrainCellMemoization(t *testing.T) {
	store := NewMemStore()
	cold, err := TrainCell(store, trainSpecFor(t, "spin", 9))
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Fatal("first training run reported a cache hit")
	}
	warm, err := TrainCell(store, trainSpecFor(t, "spin", 9))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("second training run missed the cache")
	}
	if !bytes.Equal(agentFingerprint(t, cold.Agent), agentFingerprint(t, warm.Agent)) {
		t.Fatal("restored agent's Best/Q diverge from the trained agent's")
	}
	if len(warm.Visits) != len(cold.Visits) || len(warm.Stats) != len(cold.Stats) {
		t.Fatalf("visits/stats did not round-trip: %d/%d vs %d/%d",
			len(warm.Visits), len(warm.Stats), len(cold.Visits), len(cold.Stats))
	}
	for i := range cold.Visits {
		if warm.Visits[i] != cold.Visits[i] {
			t.Fatalf("visit %d changed across the cache: %+v vs %+v", i, warm.Visits[i], cold.Visits[i])
		}
	}
}

// TestTrainCellsWorkerCountInvariance is the training counterpart of the
// -j1 ≡ -j8 campaign determinism invariant: training independent cells on
// 1 worker and on 4 workers must produce identical agents.
func TestTrainCellsWorkerCountInvariance(t *testing.T) {
	names := []string{"spin", "matrixmul", "blackscholes"}
	build := func() []*TrainSpec {
		var specs []*TrainSpec
		for i, n := range names {
			specs = append(specs, trainSpecFor(t, n, int64(100+i)))
		}
		return specs
	}
	serial, err := TrainCells(NewMemStore(), build(), 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := TrainCells(NewMemStore(), build(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if parallel[i].CacheHit || serial[i].CacheHit {
			t.Fatalf("cell %d: unexpected cache hit on fresh stores", i)
		}
		if !bytes.Equal(agentFingerprint(t, serial[i].Agent), agentFingerprint(t, parallel[i].Agent)) {
			t.Fatalf("cell %d (%s): 1-worker and 4-worker training disagree", i, names[i])
		}
	}
}

// TestTrainSpecKeySensitivity checks that every training-relevant input
// moves the cache key, and that label changes do not.
func TestTrainSpecKeySensitivity(t *testing.T) {
	base := trainSpecFor(t, "spin", 9)
	key := func(ts *TrainSpec) string {
		k, err := ts.Key()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	k0 := key(base)

	same := trainSpecFor(t, "spin", 9)
	same.Label = "different label"
	if key(same) != k0 {
		t.Fatal("label participates in the key")
	}
	mut := func(f func(*TrainSpec)) string {
		ts := trainSpecFor(t, "spin", 9)
		f(ts)
		return key(ts)
	}
	changes := map[string]string{
		"seed":     mut(func(ts *TrainSpec) { ts.Seed++ }),
		"episodes": mut(func(ts *TrainSpec) { ts.Episodes++ }),
		"lr":       mut(func(ts *TrainSpec) { ts.DQN.LR = 0.01 }),
		"agent":    mut(func(ts *TrainSpec) { ts.Agent = "tabular" }),
		"gamma":    mut(func(ts *TrainSpec) { ts.Gamma = 1.0 }),
		"hipster":  mut(func(ts *TrainSpec) { ts.Hipster = true }),
		"os":       mut(func(ts *TrainSpec) { ts.OS = "" }),
		"args":     mut(func(ts *TrainSpec) { ts.Args = []int64{1, 2} }),
		"opts":     mut(func(ts *TrainSpec) { ts.Opts.QuantumS = 75e-6 }),
	}
	seen := map[string]string{k0: "base"}
	for name, k := range changes {
		if prev, dup := seen[k]; dup {
			t.Errorf("changing %s collides with %s", name, prev)
		}
		seen[k] = name
	}
}

// TestTrainCellTabular exercises the tabular snapshot round trip.
func TestTrainCellTabular(t *testing.T) {
	store := NewMemStore()
	spec := trainSpecFor(t, "spin", 4)
	spec.Agent = "tabular"
	cold, err := TrainCell(store, spec)
	if err != nil {
		t.Fatal(err)
	}
	spec2 := trainSpecFor(t, "spin", 4)
	spec2.Agent = "tabular"
	warm, err := TrainCell(store, spec2)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("tabular cell missed the cache")
	}
	if !bytes.Equal(agentFingerprint(t, cold.Agent), agentFingerprint(t, warm.Agent)) {
		t.Fatal("restored tabular agent diverges")
	}
	if _, ok := warm.Agent.(*rl.Tabular); !ok {
		t.Fatalf("restored agent has kind %T, want *rl.Tabular", warm.Agent)
	}
}

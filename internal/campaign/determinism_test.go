package campaign

import (
	"bytes"
	"context"
	"testing"
)

// determinismSpec is the grid the ISSUE acceptance criterion names: the
// same campaign run serially and with 8 workers must produce byte-identical
// result sets, and a warm re-run must be served entirely from cache.
func determinismSpec() Spec {
	return Spec{
		Name:       "determinism",
		Benchmarks: []string{"micro"},
		Schedulers: []string{"default", "gts", "octopus-man"},
		Configs:    []string{"1L0B", "2L2B", "all-on"},
		Seeds:      []int64{3, 17},
	}
}

func runSpec(t *testing.T, workers int, store *Store) []*Outcome {
	t.Helper()
	spec := determinismSpec()
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	p := &Pool{Workers: workers, Store: store}
	outs, err := p.Run(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return outs
}

func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	serial := runSpec(t, 1, NewMemStore())
	parallel := runSpec(t, 8, NewMemStore())
	if len(serial) != len(parallel) {
		t.Fatalf("outcome counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !bytes.Equal(serial[i].Bytes, parallel[i].Bytes) {
			t.Errorf("job %d (%s): -j1 and -j8 results differ", i, serial[i].Job.Label)
		}
	}
	if f1, f8 := Fingerprint(serial), Fingerprint(parallel); f1 != f8 {
		t.Fatalf("campaign fingerprints differ: %s vs %s", f1, f8)
	}
}

func TestCampaignWarmRerunIsAllCacheHits(t *testing.T) {
	store := NewMemStore()
	cold := runSpec(t, 8, store)
	if CacheHits(cold) != 0 {
		t.Fatalf("cold run claims %d cache hits", CacheHits(cold))
	}
	_, _, coldPuts := store.Stats()
	if int(coldPuts) != len(cold) {
		t.Fatalf("cold run stored %d of %d results", coldPuts, len(cold))
	}

	warm := runSpec(t, 8, store)
	if CacheHits(warm) != len(warm) {
		t.Fatalf("warm re-run: %d/%d cache hits, want 100%%", CacheHits(warm), len(warm))
	}
	_, _, warmPuts := store.Stats()
	if warmPuts != coldPuts {
		t.Fatalf("warm re-run performed %d fresh simulations", warmPuts-coldPuts)
	}
	for i := range cold {
		if !bytes.Equal(cold[i].Bytes, warm[i].Bytes) {
			t.Errorf("job %d: cached bytes differ from fresh bytes", i)
		}
	}
	if Fingerprint(cold) != Fingerprint(warm) {
		t.Fatal("cache temperature changed the campaign fingerprint")
	}
}

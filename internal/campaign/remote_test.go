// Package campaign_test holds the cross-package distributed-execution
// tests: they generate work with internal/scenario (which itself depends on
// campaign), so they live in the external test package.
package campaign_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"astro/internal/campaign"
	"astro/internal/scenario"
)

// sixtyCellMatrix is the grid the acceptance criterion names: a generated
// 60-cell scenario matrix (5 synthesized programs × 3 schedulers × 2
// configs × 2 seeds on the default platform).
func sixtyCellMatrix() scenario.Matrix {
	return scenario.Matrix{
		Name:         "remote-60",
		ProgramCount: 5,
		ProgramSeed:  7,
		Schedulers:   []string{"default", "gts", "octopus-man"},
		Configs:      []string{"1L1B", "all-on"},
		Seeds:        []int64{0, 1},
	}
}

// expand compiles the matrix to its job list (single batch).
func expandMatrix(t *testing.T, m scenario.Matrix) []*campaign.Job {
	t.Helper()
	specs, err := m.Campaigns()
	if err != nil {
		t.Fatal(err)
	}
	var jobs []*campaign.Job
	for _, sp := range specs {
		batch, err := sp.Expand()
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, batch...)
	}
	return jobs
}

// TestRemoteByteIdentity pins the distributed contract end to end: the same
// generated 60-cell matrix executed (a) on the in-process pool and (b)
// through two pull-based workers over real loopback HTTP produces
// byte-identical fingerprints, and a warm re-run through the workers
// performs zero fresh simulations anywhere.
func TestRemoteByteIdentity(t *testing.T) {
	m := sixtyCellMatrix()
	if got := m.Cells(); got != 60 {
		t.Fatalf("matrix expands to %d cells, want 60", got)
	}

	// Leg A: in-process pool.
	jobsA := expandMatrix(t, m)
	if len(jobsA) != 60 {
		t.Fatalf("expanded to %d jobs, want 60", len(jobsA))
	}
	poolStore := campaign.NewMemStore()
	pool := &campaign.Pool{Workers: 4, Store: poolStore}
	outsA, err := pool.Run(context.Background(), jobsA, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Leg B: coordinator + two workers over HTTP.
	remoteStore := campaign.NewMemStore()
	q := campaign.NewWorkQueue(time.Minute)
	srv := httptest.NewServer(http.StripPrefix("/work", campaign.WorkHandler(q, remoteStore)))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		w := &campaign.Worker{
			Coordinator: srv.URL + "/work",
			ID:          []string{"worker-a", "worker-b"}[i],
			Max:         2,
			Poll:        5 * time.Millisecond,
		}
		go w.Run(ctx)
	}
	runner := &campaign.RemoteRunner{Queue: q, Store: remoteStore}
	jobsB := expandMatrix(t, m)
	outsB, err := runner.Run(context.Background(), jobsB, nil)
	if err != nil {
		t.Fatal(err)
	}

	fa, fb := campaign.Fingerprint(outsA), campaign.Fingerprint(outsB)
	if fa != fb {
		t.Fatalf("distributed fingerprint %s != in-process %s", fb, fa)
	}
	if hits := campaign.CacheHits(outsB); hits != 0 {
		t.Fatalf("cold distributed run claims %d cache hits", hits)
	}
	// Both workers should have participated (60 cells, 2-cell leases).
	st := q.Stats()
	if len(st.Workers) != 2 {
		t.Fatalf("expected 2 workers in status, got %+v", st.Workers)
	}
	total := 0
	for _, w := range st.Workers {
		total += w.Completed
	}
	if total != 60 || st.Done != 60 {
		t.Fatalf("workers completed %d cells, queue done %d; want 60/60", total, st.Done)
	}

	// Warm re-run through the same runner: everything is served from the
	// shared store — zero fresh simulations, nothing new leased or done.
	_, _, putsBefore := remoteStore.Stats()
	outsWarm, err := runner.Run(context.Background(), expandMatrix(t, m), nil)
	if err != nil {
		t.Fatal(err)
	}
	if hits := campaign.CacheHits(outsWarm); hits != 60 {
		t.Fatalf("warm re-run: %d/60 cache hits", hits)
	}
	if fw := campaign.Fingerprint(outsWarm); fw != fa {
		t.Fatalf("warm fingerprint %s != cold %s", fw, fa)
	}
	if _, _, putsAfter := remoteStore.Stats(); putsAfter != putsBefore {
		t.Fatalf("warm re-run wrote %d fresh results", putsAfter-putsBefore)
	}
	if st := q.Stats(); st.Done != 60 {
		t.Fatalf("warm re-run enqueued fresh cells: queue done %d", st.Done)
	}
}

// TestRemoteRunnerCancellation withdraws queued cells when the context
// dies: no worker is running, so every cell is still pending and the run
// returns promptly with context errors instead of hanging.
func TestRemoteRunnerCancellation(t *testing.T) {
	m := sixtyCellMatrix()
	jobs := expandMatrix(t, m)
	q := campaign.NewWorkQueue(time.Minute)
	runner := &campaign.RemoteRunner{Queue: q, Store: campaign.NewMemStore()}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	outs, err := runner.Run(ctx, jobs, nil)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not unblock the run")
	}
	for i, o := range outs {
		if o == nil {
			t.Fatalf("job %d has no outcome after cancellation", i)
		}
	}
	if st := q.Stats(); st.Pending != 0 {
		t.Fatalf("cancelled run left %d cells pending", st.Pending)
	}
}

package campaign

import "context"

// ResultStore is the storage contract the campaign machinery memoizes
// through: canonical result bytes (simulation results, trained-agent
// snapshots) addressed by content key. Implementations must be safe for
// concurrent use; Get/Put must be coherent (a Put followed by a Get of the
// same key returns the stored bytes). Store (single-directory),
// ShardedStore (prefix-sharded with an on-disk index) and AgentExchange
// (local tier backed by a coordinator over HTTP) implement it.
type ResultStore interface {
	Get(key string) ([]byte, bool)
	Put(key string, data []byte) error
	Len() int
	Stats() (hits, misses, puts uint64)
}

// Runner executes a job batch and returns one outcome per job, in job
// order. Pool runs jobs in-process on a worker pool; RemoteRunner leases
// them to pull-based workers over HTTP. Both consult the same ResultStore
// and produce byte-identical outcomes for the same batch (the remote
// byte-identity test pins this), which is what makes them drop-in
// replacements for each other behind the Engine.
type Runner interface {
	Run(ctx context.Context, jobs []*Job, onProgress func(Progress)) ([]*Outcome, error)
}

// Trainer is the training counterpart of Runner: execute a batch of
// training cells and return one Trained per spec, in spec order,
// consulting (and filling) the trained-agent cache. *Pool trains
// in-process via TrainCells; *RemoteRunner leases training cells to
// pull-based workers, so fig10-style suites distribute their training the
// same way they distribute simulations. Both restore inference-exact
// agents, so which Trainer ran a cell never changes downstream bytes.
type Trainer interface {
	Train(ctx context.Context, specs []*TrainSpec) ([]*Trained, error)
}

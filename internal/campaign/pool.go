package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"astro/internal/sim"
)

// Progress is one per-job event on the streaming progress API.
type Progress struct {
	JobIndex int     `json:"job"`
	Label    string  `json:"label"`
	Done     int     `json:"done"`  // jobs finished so far (including this one)
	Total    int     `json:"total"` // jobs in the batch
	Worker   int     `json:"worker"`
	CacheHit bool    `json:"cache_hit"`
	WallS    float64 `json:"wall_s"`
	Err      string  `json:"err,omitempty"`
	// Simulated work delivered by the job (whether simulated fresh or
	// served from cache): retired instructions and core cycles. The engine
	// aggregates these into campaign throughput (simulated cycles per wall
	// second), which is how fast-path and cache speedups show up over HTTP.
	SimInstr  uint64 `json:"sim_instr,omitempty"`
	SimCycles uint64 `json:"sim_cycles,omitempty"`
}

// Outcome is one job's terminal state.
type Outcome struct {
	Job       *Job
	Result    *sim.Result
	Bytes     []byte // canonical result encoding (what the store holds)
	CacheHit  bool
	Err       error
	Attempts  int
	Worker    int
	WallS     float64
	SimInstr  uint64 // retired instructions in the simulated run
	SimCycles uint64 // core cycles across the run's checkpoints
}

// resultWork extracts a result's simulated-work totals.
func resultWork(r *sim.Result) (instr, cycles uint64) {
	if r == nil {
		return 0, 0
	}
	for _, ck := range r.Checkpoints {
		cycles += ck.HW.Cycles
	}
	return r.Instructions, cycles
}

// Pool executes job batches. Jobs are sharded statically: worker w owns
// list indices w, w+Workers, w+2·Workers, … — a deterministic partition
// that needs no locked queue and keeps each worker's share independent of
// run-to-run timing. The zero value is a serial, uncached pool.
type Pool struct {
	Workers int         // concurrent workers; <= 0 means 1
	Store   ResultStore // nil disables caching
	Retries int         // extra attempts per failing job
}

// Run executes the batch. It returns one outcome per job, in job order,
// together with the aggregate of every job error (nil when all jobs
// succeeded). onProgress, when non-nil, is invoked once per finished job;
// calls are serialized. Cancelling ctx stops workers between jobs and
// returns ctx's error for jobs never started.
func (p *Pool) Run(ctx context.Context, jobs []*Job, onProgress func(Progress)) ([]*Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := p.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(jobs) && len(jobs) > 0 {
		workers = len(jobs)
	}

	outs := make([]*Outcome, len(jobs))
	var (
		progMu sync.Mutex
		done   int
		excl   sync.Map // exclusive tag -> *sync.Mutex
	)
	report := func(o *Outcome) {
		progMu.Lock()
		done++
		n := done
		progMu.Unlock()
		if onProgress == nil {
			return
		}
		pr := Progress{
			JobIndex:  o.Job.Index,
			Label:     o.Job.Label,
			Done:      n,
			Total:     len(jobs),
			Worker:    o.Worker,
			CacheHit:  o.CacheHit,
			WallS:     o.WallS,
			SimInstr:  o.SimInstr,
			SimCycles: o.SimCycles,
		}
		if o.Err != nil {
			pr.Err = o.Err.Error()
		}
		progMu.Lock()
		onProgress(pr)
		progMu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(jobs); i += workers {
				if err := ctx.Err(); err != nil {
					outs[i] = &Outcome{Job: jobs[i], Err: err, Worker: w}
					continue
				}
				outs[i] = p.runOne(jobs[i], w, &excl)
				report(outs[i])
			}
		}(w)
	}
	wg.Wait()

	var errs []error
	for _, o := range outs {
		if o != nil && o.Err != nil {
			errs = append(errs, fmt.Errorf("job %d (%s): %w", o.Job.Index, o.Job.Label, o.Err))
		}
	}
	return outs, errors.Join(errs...)
}

// runOne executes one job: cache lookup, simulation with retries, cache
// fill.
func (p *Pool) runOne(j *Job, worker int, excl *sync.Map) *Outcome {
	start := time.Now()
	o := &Outcome{Job: j, Worker: worker}
	key, cacheable := j.Key()
	if cacheable && p.Store != nil {
		if data, ok := p.Store.Get(key); ok {
			res, err := sim.DecodeResult(data)
			if err == nil {
				o.Result, o.Bytes, o.CacheHit = res, data, true
				o.SimInstr, o.SimCycles = resultWork(res)
				o.WallS = time.Since(start).Seconds()
				cPoolHit.Inc()
				return o
			}
			// A corrupt entry falls through to a fresh simulation that will
			// overwrite it.
		}
	}

	if j.AgentKey != "" && j.Agents == nil {
		// Agent-keyed hybrid jobs resolve their snapshot at execution time;
		// default to the pool's own store (where TrainCell banked it).
		j.Agents = p.Store
	}
	if j.Exclusive != "" {
		muAny, _ := excl.LoadOrStore(j.Exclusive, &sync.Mutex{})
		mu := muAny.(*sync.Mutex)
		mu.Lock()
		defer mu.Unlock()
	}
	execStart := time.Now()
	for attempt := 0; ; attempt++ {
		o.Attempts = attempt + 1
		res, err := j.Execute()
		if err == nil {
			o.Result = res
			break
		}
		o.Err = err
		if attempt >= p.Retries {
			o.WallS = time.Since(start).Seconds()
			cPoolErr.Inc()
			return o
		}
	}
	o.Err = nil
	cPoolExec.Inc()
	hPoolExec.Observe(time.Since(execStart).Seconds())
	o.SimInstr, o.SimCycles = resultWork(o.Result)

	data, err := sim.EncodeResult(o.Result)
	if err != nil {
		o.Err = err
		o.WallS = time.Since(start).Seconds()
		return o
	}
	o.Bytes = data
	if cacheable && p.Store != nil {
		// A cache-fill failure (disk full, unwritable directory) must not
		// discard a successfully computed result: the simulation stands,
		// only future runs lose the memoization.
		_ = p.Store.Put(key, data)
	}
	o.WallS = time.Since(start).Seconds()
	return o
}

// Train implements Trainer on the in-process pool: independent training
// cells shard across the pool's width with the same deterministic
// partition as Run, memoizing snapshots into the pool's store. The context
// is accepted for symmetry with RemoteRunner.Train; a training cell is
// internally sequential (episodes feed the next) and finishes once
// started.
func (p *Pool) Train(ctx context.Context, specs []*TrainSpec) ([]*Trained, error) {
	return TrainCells(p.Store, specs, p.Workers)
}

// Results unwraps outcomes into results in job order; it fails on the first
// job error (convenience for callers that need all results).
func Results(outs []*Outcome) ([]*sim.Result, error) {
	rs := make([]*sim.Result, len(outs))
	for i, o := range outs {
		if o == nil {
			return nil, fmt.Errorf("campaign: job %d never ran", i)
		}
		if o.Err != nil {
			return nil, o.Err
		}
		rs[i] = o.Result
	}
	return rs, nil
}

// CacheHits counts cache-served outcomes.
func CacheHits(outs []*Outcome) int {
	n := 0
	for _, o := range outs {
		if o != nil && o.CacheHit {
			n++
		}
	}
	return n
}

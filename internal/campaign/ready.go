package campaign

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"
)

// Readiness probes. /healthz answers "is the process up"; /readyz
// answers "can this coordinator actually take traffic" — the store
// accepts writes, the sweeper is sweeping, and (when work is
// outstanding) some worker has contacted the queue recently. Probes
// are read-only except for the store's temp-file write, so a failing
// probe never mutates queue state.

// Healther is implemented by stores that can verify their backing
// medium still accepts writes. Memory-only stores are trivially
// healthy; disk-backed stores probe with a temp file.
type Healther interface {
	Healthy() error
}

// Healthy verifies the store's disk tier (when configured) still
// accepts writes, by creating and removing a probe file. A read-only
// remount or full disk fails here before it fails a result Put.
func (s *Store) Healthy() error {
	return probeDirWritable(s.dir)
}

// Healthy verifies the sharded store's root directory still accepts
// writes. One probe suffices: the shards live under the same mount.
func (s *ShardedStore) Healthy() error {
	return probeDirWritable(s.dir)
}

func probeDirWritable(dir string) error {
	if dir == "" {
		return nil // memory-only: nothing can go read-only
	}
	f, err := os.CreateTemp(dir, ".readyz*")
	if err != nil {
		return fmt.Errorf("campaign: store dir not writable: %w", err)
	}
	name := f.Name()
	f.Close()
	os.Remove(name)
	return nil
}

// ReadyCheck is one named probe result in the /readyz payload.
type ReadyCheck struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// ReadyStatus is the /readyz payload: ready iff every check passed.
type ReadyStatus struct {
	Ready  bool         `json:"ready"`
	Checks []ReadyCheck `json:"checks"`
}

// Readiness runs the coordinator readiness probes:
//
//   - store: the result store's backing directory accepts writes
//     (nil store or memory-only passes — there is nothing to probe);
//   - sweeper: StartSweeper is running and has swept within 4
//     intervals (a wedged sweeper means expired leases stop
//     re-issuing the moment workers stop polling);
//   - workers: when cells are pending or leased, at least one
//     known worker has contacted the queue within 2 lease TTLs —
//     work outstanding with a silent fleet is a stalled sweep.
//
// An idle queue (no work, no workers) is ready: a coordinator is
// routable before its first campaign arrives.
func Readiness(q *WorkQueue, store Healther) ReadyStatus {
	now := time.Now()
	var out ReadyStatus
	out.Ready = true
	add := func(name string, err error) {
		c := ReadyCheck{Name: name, OK: err == nil}
		if err != nil {
			c.Detail = err.Error()
			out.Ready = false
		}
		out.Checks = append(out.Checks, c)
	}

	if store != nil {
		add("store", store.Healthy())
	} else {
		add("store", nil)
	}

	// Store pressure: a bounded store sitting over its cap can only mean
	// pinned bytes exceed it (eviction handles everything unpinned) —
	// live campaigns reference more trained-agent state than the cap
	// allows, and the next eviction-worthy write has nowhere to go. Fail
	// readiness so the operator raises -store-max-bytes or sheds load
	// before correctness pressure turns into recompute storms.
	if occ, ok := store.(Occupant); ok {
		o := occ.Occupancy()
		switch {
		case o.CapBytes > 0 && o.DiskBytes > o.CapBytes:
			add("store_pressure", fmt.Errorf("disk tier %d bytes over its %d-byte cap (%d pinned bytes held by live campaigns)", o.DiskBytes, o.CapBytes, o.PinnedBytes))
		case o.CapBytes > 0 && o.PinnedBytes > o.CapBytes:
			add("store_pressure", fmt.Errorf("pinned bytes %d exceed the %d-byte cap; the next write must evict a pinned snapshot or stay over cap", o.PinnedBytes, o.CapBytes))
		default:
			add("store_pressure", nil)
		}
	}

	running, interval, last := q.SweeperHealth()
	switch {
	case !running:
		add("sweeper", fmt.Errorf("not started"))
	case !last.IsZero() && now.Sub(last) > 4*interval:
		add("sweeper", fmt.Errorf("last sweep %.1fs ago (interval %s)", now.Sub(last).Seconds(), interval))
	default:
		add("sweeper", nil)
	}

	add("workers", workerFreshness(q.Stats(), q.LeaseTTL(), now))
	return out
}

// workerFreshness fails when work is outstanding but no worker has
// contacted the queue within 2 TTLs (every healthy worker leases or
// renews far more often than that).
func workerFreshness(st QueueStats, ttl time.Duration, now time.Time) error {
	if st.Pending+st.Leased == 0 {
		return nil
	}
	if len(st.Workers) == 0 {
		return fmt.Errorf("%d cells outstanding, no worker has ever connected", st.Pending+st.Leased)
	}
	stale := 2 * ttl
	freshest := time.Duration(1<<62 - 1)
	for _, w := range st.Workers {
		if idle := now.Sub(w.LastSeen); idle < freshest {
			freshest = idle
		}
	}
	if freshest > stale {
		return fmt.Errorf("%d cells outstanding, freshest worker idle %.1fs (threshold %s)",
			st.Pending+st.Leased, freshest.Seconds(), stale)
	}
	return nil
}

// ReadyHandler serves GET /readyz: 200 with the check list when every
// probe passes, 503 otherwise. The body is the same JSON either way,
// so an operator curling a failing probe sees which check tripped.
func ReadyHandler(q *WorkQueue, store Healther) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := Readiness(q, store)
		sort.SliceStable(st.Checks, func(i, j int) bool { return st.Checks[i].Name < st.Checks[j].Name })
		w.Header().Set("Content-Type", "application/json")
		if !st.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(st)
	})
}

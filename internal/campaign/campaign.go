// Package campaign is the scaling substrate of the reproduction: it treats
// one deterministic simulation as a schedulable, memoizable unit of work
// and executes whole evaluation sweeps — benchmark × platform × scheduler ×
// hardware configuration × seed grids — on a bounded worker pool with
// content-addressed result caching.
//
// The pieces compose bottom-up:
//
//   - Job: one fully-specified simulation. Its Key is a SHA-256 over every
//     input that can influence the result (module IR bytes, platform,
//     scheduler policy, initial configuration, seed, arguments, simulator
//     knobs), so two byte-identical jobs are the same job. Behaviour that
//     lives outside those bytes (a custom Hybrid policy) must be named
//     into the key via HybridKey or the job is uncacheable.
//   - ResultStore: the storage contract — canonical bytes by content key —
//     implemented by Store (in-memory + optional crash-safe on-disk tier),
//     ShardedStore (key-prefix shards with an on-disk index, for N
//     concurrent writers), and AgentExchange (a worker-local tier backed
//     by a coordinator over HTTP).
//   - Runner: the execution contract, implemented by Pool (in-process
//     worker pool with deterministic static sharding) and RemoteRunner
//     (cells leased to pull-based workers over HTTP via a WorkQueue, with
//     lease expiry, retry, and result validation). The two are drop-in
//     replacements: same jobs, same keys, byte-identical outcomes.
//   - Spec: the declarative campaign description (JSON-friendly) that
//     expands into a job list in a fixed order.
//   - Engine: the campaign lifecycle manager behind cmd/astro-serve —
//     submit, observe, subscribe to progress, cancel — written against
//     Runner and ResultStore.
//   - Worker: the pull side of the distributed protocol (cmd/astro's
//     worker subcommand): lease WireJob cells, verify their content keys,
//     execute, push canonical results back.
//
// Because the simulator is deterministic, a campaign's result set is a pure
// function of its spec: running with 1 worker or 8, in-process or through
// remote workers, cold or from a warm cache, yields byte-identical result
// sets. The determinism tests and TestRemoteByteIdentity pin exactly this,
// and a warm re-run performs zero fresh simulations on any path.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"astro/internal/hw"
	"astro/internal/ir"
	"astro/internal/sched"
	"astro/internal/sim"
)

// DefaultPlatform is the platform a job runs on when it names none.
const DefaultPlatform = "odroid-xu4"

// Job is one simulation: a compiled module executed on a named platform
// under a named scheduling policy with a fixed seed. Jobs are built either
// declaratively (Spec.Expand) or programmatically (the experiments figure
// drivers construct them around pre-trained modules).
type Job struct {
	Index     int    // position in the campaign, stable across worker counts
	Label     string // human-readable identity for progress lines
	Benchmark string // informational; the module carries the code

	Module   *ir.Module
	PlatName string // "" = DefaultPlatform
	// OS selects the OS-level thread scheduler: "" (least-loaded) or "gts".
	OS string
	// Actuator selects the per-checkpoint adaptation policy: "",
	// "octopus-man", "fixed:<xLyB>", or "random:<seed>".
	Actuator string
	Config   hw.Config // initial hardware configuration; zero = all cores on
	Seed     int64
	Args     []int64
	Opts     sim.Options // scalar knobs only; OS/Actuator/Hybrid must be nil

	// Hybrid optionally supplies a custom hybrid policy (e.g. a trained
	// agent). Policies built this way live outside the content hash, so the
	// caller must name them via HybridKey for the job to be cacheable; a
	// Hybrid factory with an empty HybridKey marks the job uncacheable.
	Hybrid    func() sim.HybridPolicy
	HybridKey string

	// AgentKey is the declarative alternative to Hybrid: the content
	// address (TrainSpec.Key) of a trained-agent snapshot in the result
	// store. Execute rebuilds the hybrid policy from the snapshot alone —
	// restore the agent, extract the visited-state static policy, wrap both
	// in a HybridRuntime — so the job's behaviour is a pure function of the
	// key. Snapshots are inference-exact and carry their visited states,
	// which makes the rebuilt policy bit-identical on every machine: unlike
	// factory-built Hybrid jobs, agent-keyed jobs are cacheable AND
	// wireable, and need no Exclusive tag (each execution restores a
	// private agent). Mutually exclusive with Hybrid/HybridKey.
	AgentKey string

	// Agents supplies the snapshot store Execute resolves AgentKey
	// against (a local Store, or a worker's AgentExchange). It is runtime
	// wiring, not identity — never hashed. Pool fills it from its own
	// store when the job leaves it nil.
	Agents ResultStore

	// Program optionally supplies the module's compiled program so Execute
	// skips compilation (a worker decodes it from shipped bytes; see
	// WireJob.Program). Like Agents it is runtime wiring, not identity —
	// never hashed — and it is pure acceleration: a program compiled from
	// this module produces byte-identical results to compiling in place
	// (DESIGN.md invariant 12), and sim.NewWithProgram rejects one compiled
	// from any other module. Ignored under Opts.LegacyInterp.
	Program *sim.Program

	// Exclusive serializes jobs sharing the same non-empty tag: jobs whose
	// policies share mutable state (a DQN's inference scratch buffers, say)
	// must not run concurrently with each other.
	Exclusive string

	// modHash caches the module's content hash; see (*Job).moduleHash.
	modHash string
}

// ModuleHash returns the content hash of a module's IR encoding.
func ModuleHash(m *ir.Module) string {
	sum := sha256.Sum256(ir.Encode(m))
	return hex.EncodeToString(sum[:])
}

// ProgramKey is the result-store address of a compiled program artifact:
// a pure function of the module's content hash and the platform's
// cost-table identity, the exact pair sim.DecodeProgram verifies before
// accepting the bytes. Versioned separately from job keys — program
// artifacts are cache, not results, and a compiler-generation bump
// (sim.ProgramBytesCurrent) retires stale entries without touching them.
func ProgramKey(modHash, costTableID string) string {
	sum := sha256.Sum256([]byte("astro-program-v1\n" + modHash + "\n" + costTableID))
	return hex.EncodeToString(sum[:])
}

// moduleHash returns the job's module hash, computing it once per job.
// Spec.Expand pre-fills it per compiled module so a 24-config sweep hashes
// its module once; there is deliberately no process-global memo — a
// long-running astro-serve would otherwise pin every module it ever
// compiled in memory.
func (j *Job) moduleHash() string {
	if j.modHash == "" {
		j.modHash = ModuleHash(j.Module)
	}
	return j.modHash
}

func (j *Job) platformName() string {
	if j.PlatName == "" {
		return DefaultPlatform
	}
	return j.PlatName
}

// hybridIdentity names the job's hybrid behaviour for the content hash:
// the caller-supplied HybridKey for factory-built policies, or a derived
// "agent:<key>" token for agent-keyed jobs (the snapshot fully determines
// the rebuilt policy, so its content address is the policy's identity).
// The second return is false when the hybrid behaviour cannot be named —
// a factory without a HybridKey, or conflicting declarations.
func (j *Job) hybridIdentity() (string, bool) {
	if j.AgentKey != "" {
		if j.Hybrid != nil || j.HybridKey != "" {
			return "", false // two hybrid identities would shadow each other
		}
		return "agent:" + j.AgentKey, true
	}
	if j.Hybrid != nil && j.HybridKey == "" {
		return "", false
	}
	return j.HybridKey, true
}

// Key returns the job's content address and whether the job is cacheable.
// Uncacheable jobs (custom hybrid policy without a HybridKey) always
// simulate fresh.
func (j *Job) Key() (string, bool) {
	hybrid, ok := j.hybridIdentity()
	if !ok {
		return "", false
	}
	// Seed, Args and InitialConfig live on the Job itself; clear them in the
	// knob fingerprint so Opts copies can't disagree with the job fields
	// (Execute overwrites them the same way).
	opts := j.Opts
	opts.Seed, opts.Args, opts.InitialConfig = 0, nil, hw.Config{}
	fp, err := opts.Fingerprint()
	if err != nil {
		return "", false
	}
	var sb strings.Builder
	sb.WriteString("astro-campaign-job-v1\n")
	sb.WriteString(j.moduleHash())
	sb.WriteByte('\n')
	sb.WriteString(j.platformName())
	sb.WriteByte('\n')
	sb.WriteString(j.OS)
	sb.WriteByte('\n')
	sb.WriteString(j.Actuator)
	sb.WriteByte('\n')
	sb.WriteString(j.Config.String())
	sb.WriteByte('\n')
	sb.WriteString(strconv.FormatInt(j.Seed, 10))
	sb.WriteByte('\n')
	for _, a := range j.Args {
		sb.WriteString(strconv.FormatInt(a, 10))
		sb.WriteByte(',')
	}
	sb.WriteByte('\n')
	sb.WriteString(fp)
	sb.WriteByte('\n')
	sb.WriteString(hybrid)
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:]), true
}

// ValidateScheduler checks a scheduler token without building anything.
// CLIs use it to reject typos before a campaign compiles or runs; the error
// lists the valid tokens. Platform-dependent tokens ("fixed:<xLyB>") are
// only syntax-checked here — Spec.Validate still checks them against every
// target platform.
func ValidateScheduler(tok string) error {
	osName, actName, err := schedToken(tok)
	if err != nil {
		return err
	}
	if _, err := buildOS(osName); err != nil {
		return err
	}
	if strings.HasPrefix(actName, "fixed:") {
		// Syntax only: the config must parse, but whether it is valid on a
		// particular board is Spec.Validate's per-platform job.
		if _, err := hw.ParseConfig(strings.TrimPrefix(actName, "fixed:")); err != nil {
			return fmt.Errorf("campaign: scheduler %q: %w", tok, err)
		}
		return nil
	}
	if actName != "" {
		plat, err := hw.ByName(DefaultPlatform)
		if err != nil {
			return err
		}
		if _, err := buildActuator(actName, plat); err != nil {
			return err
		}
	}
	return nil
}

// buildOS resolves the OS policy name (fresh instance per run: policies may
// carry state).
func buildOS(name string) (sim.OSPolicy, error) {
	switch name {
	case "":
		return nil, nil // sim defaults to least-loaded
	case "gts":
		return sched.NewGTS(), nil
	}
	return nil, fmt.Errorf("campaign: unknown OS policy %q (have \"\", \"gts\")", name)
}

// buildActuator resolves the actuator name against a platform.
func buildActuator(name string, plat *hw.Platform) (sim.Actuator, error) {
	switch {
	case name == "":
		return nil, nil
	case name == "octopus-man":
		return sched.NewOctopusMan(plat), nil
	case strings.HasPrefix(name, "fixed:"):
		cfg, err := hw.ParseConfig(strings.TrimPrefix(name, "fixed:"))
		if err != nil {
			return nil, fmt.Errorf("campaign: actuator %q: %w", name, err)
		}
		if !cfg.Valid(plat.MaxLittle(), plat.MaxBig()) {
			// The simulator silently ignores invalid actuation requests, so
			// an unchecked config would mislabel an all-on run as "fixed:X".
			return nil, fmt.Errorf("campaign: actuator %q: config invalid on %s", name, plat.Name)
		}
		return &sched.Fixed{Config: cfg}, nil
	case strings.HasPrefix(name, "random:"):
		seed, err := strconv.ParseUint(strings.TrimPrefix(name, "random:"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("campaign: actuator %q: %w", name, err)
		}
		return &sched.Random{Plat: plat, Seed: seed}, nil
	}
	return nil, fmt.Errorf("campaign: unknown actuator %q", name)
}

// Execute runs the simulation from scratch (no cache involvement).
func (j *Job) Execute() (*sim.Result, error) {
	if j.Module == nil {
		return nil, fmt.Errorf("campaign: job %d (%s) has no module", j.Index, j.Label)
	}
	if j.Opts.OS != nil || j.Opts.Actuator != nil || j.Opts.Hybrid != nil {
		return nil, fmt.Errorf("campaign: job %d (%s): set policies by name, not in Opts", j.Index, j.Label)
	}
	plat, err := hw.ByName(j.platformName())
	if err != nil {
		return nil, err
	}
	opts := j.Opts
	opts.Seed = j.Seed
	opts.Args = j.Args
	opts.InitialConfig = j.Config
	if opts.OS, err = buildOS(j.OS); err != nil {
		return nil, err
	}
	if opts.Actuator, err = buildActuator(j.Actuator, plat); err != nil {
		return nil, err
	}
	if j.AgentKey != "" && (j.Hybrid != nil || j.HybridKey != "") {
		// The same conflict hybridIdentity reports as uncacheable — but a
		// conflicted job must fail loudly here, not quietly lose caching
		// and wireability (its one observable symptom would be silent
		// re-simulation on every run).
		return nil, fmt.Errorf("campaign: job %d (%s): AgentKey conflicts with Hybrid/HybridKey", j.Index, j.Label)
	}
	if j.Hybrid != nil {
		opts.Hybrid = j.Hybrid()
	} else if j.AgentKey != "" {
		if opts.Hybrid, err = j.hybridFromAgent(plat); err != nil {
			return nil, err
		}
	}
	m, err := sim.NewWithProgram(j.Module, plat, opts, j.Program)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// hybridFromAgent rebuilds the hybrid policy named by AgentKey: fetch the
// trained-agent snapshot from the Agents store, restore the agent, extract
// the visited-state static policy, and wrap both in a HybridRuntime —
// exactly the construction the fig10 driver performs in-process. Every
// input is inside the snapshot (inference-exact parameters plus the
// visited states), so the policy this returns is bit-identical wherever it
// is rebuilt; that is what lets agent-keyed jobs cross the wire.
func (j *Job) hybridFromAgent(plat *hw.Platform) (sim.HybridPolicy, error) {
	if j.Agents == nil {
		return nil, fmt.Errorf("campaign: job %d (%s): agent-keyed hybrid needs an Agents store", j.Index, j.Label)
	}
	data, ok := j.Agents.Get(j.AgentKey)
	if !ok {
		return nil, fmt.Errorf("campaign: job %d (%s): no trained-agent snapshot under %s", j.Index, j.Label, j.AgentKey)
	}
	tr, err := restoreTrained(data)
	if err != nil {
		return nil, fmt.Errorf("campaign: job %d (%s): snapshot %s: %w", j.Index, j.Label, j.AgentKey, err)
	}
	hr := sched.NewHybridRuntime(tr.Agent, plat)
	hr.Policy = sched.ExtractPolicyVisited(tr.Agent, plat, tr.Visits)
	return hr, nil
}

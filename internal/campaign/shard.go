package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"astro/internal/telemetry"
)

// ShardedStore partitions a content-addressed result store into
// power-of-two shards selected by key prefix: shard(key) = first 8 bits of
// the (hex) key, masked to the shard count. Every shard is an independent
// Store with its own lock and its own directory, so N workers (or N
// coordinator goroutines draining worker results) writing concurrently
// contend only when their keys land in the same shard — never on one global
// mutex, and never on one directory's rename traffic.
//
// Keys are SHA-256 hex, so the prefix is uniformly distributed and the
// shards stay balanced without any placement logic.
//
// Layout under dir:
//
//	INDEX.json            {"version":1,"shards":N} — pins the shard count
//	shard-00/…/…json      shard 0's Store tree (same layout as Store)
//	shard-00/keys.idx     append-only key index, one key per line
//	shard-01/…            …
//
// The per-shard keys.idx is appended after every successful disk Put (the
// value write is fsync+rename crash-safe first; the index line is best
// effort). It lets a reopened store enumerate what it holds (Keys, Len)
// without statting hundreds of thousands of files, which is what the
// coordinator uses to skip leasing cells that any previous run — local or
// remote — already produced. A missing or truncated index line only costs
// enumeration: Get still falls through to the disk tier by path, so
// correctness never depends on the index.
//
// The shard count is part of the on-disk layout, so reopening a directory
// with a different -shards value is an error rather than a silent cache
// miss on every key.
type ShardedStore struct {
	dir    string
	mask   uint8
	shards []*shardStore
}

type shardStore struct {
	store *Store

	mu      sync.Mutex // guards idxPath appends and known
	idxPath string
	known   map[string]bool // keys recorded on disk (loaded from keys.idx)

	occupancy *telemetry.Gauge // distinct keys in this shard (telemetry only)
}

// noteOccupancy publishes the shard's current distinct-key count. Callers
// must not hold sh.mu or the shard's store lock (keysOf takes both).
func (s *ShardedStore) noteOccupancy(sh *shardStore) {
	sh.occupancy.Set(float64(len(s.keysOf(sh))))
}

type shardManifest struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

const shardManifestName = "INDEX.json"

// NewShardedStore opens (or creates) a sharded store under dir with the
// given shard count (0 = 16; snapped up to a power of two, max 256). An
// empty dir builds a memory-only sharded store (useful for contention-free
// concurrent writers without persistence).
func NewShardedStore(dir string, shards int) (*ShardedStore, error) {
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if n > 256 {
		return nil, fmt.Errorf("campaign: sharded store: %d shards exceeds the 256-shard (one key byte) limit", shards)
	}
	s := &ShardedStore{dir: dir, mask: uint8(n - 1), shards: make([]*shardStore, n)}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("campaign: sharded store: %w", err)
		}
		mpath := filepath.Join(dir, shardManifestName)
		if data, err := os.ReadFile(mpath); err == nil {
			var m shardManifest
			if err := json.Unmarshal(data, &m); err != nil {
				return nil, fmt.Errorf("campaign: sharded store: corrupt %s: %w", shardManifestName, err)
			}
			if m.Shards != n {
				return nil, fmt.Errorf("campaign: sharded store %s was created with %d shards, reopened with %d — shard count is part of the layout", dir, m.Shards, n)
			}
		} else {
			// No manifest: this must be a fresh directory, not a populated
			// plain-Store tree — opening that sharded would miss every
			// stored key, silently invalidating the cache.
			if hasPlainStoreLayout(dir) {
				return nil, fmt.Errorf("campaign: %s holds a plain (unsharded) store; reopen it without -shards, or point the sharded store at a fresh directory", dir)
			}
			// Atomic like every other write in this subsystem: a crash
			// mid-creation must not leave a torn manifest that bricks the
			// directory on every later open.
			data, _ := json.Marshal(shardManifest{Version: 1, Shards: n})
			if err := writeFileAtomic(mpath, data); err != nil {
				return nil, fmt.Errorf("campaign: sharded store: %w", err)
			}
		}
	}
	for i := 0; i < n; i++ {
		sub := ""
		if dir != "" {
			sub = filepath.Join(dir, fmt.Sprintf("shard-%02x", i))
		}
		st, err := NewStore(sub)
		if err != nil {
			return nil, err
		}
		sh := &shardStore{store: st, known: map[string]bool{}, occupancy: shardGauge(i)}
		if sub != "" {
			sh.idxPath = filepath.Join(sub, "keys.idx")
			sh.loadIndex()
		}
		s.shards[i] = sh
		s.noteOccupancy(sh)
	}
	return s, nil
}

// OpenStore opens dir as whichever store layout it holds: sharded when
// the INDEX.json manifest is present (honouring the manifest's own
// shard count), plain otherwise. Read-side tools — the journal replay
// audit — use this so the operator needn't remember the -shards value
// a coordinator was launched with.
func OpenStore(dir string) (ResultStore, error) {
	if dir == "" {
		return NewMemStore(), nil
	}
	data, err := os.ReadFile(filepath.Join(dir, shardManifestName))
	if err != nil {
		return NewStore(dir)
	}
	var m shardManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("campaign: corrupt %s in %s: %w", shardManifestName, dir, err)
	}
	return NewShardedStore(dir, m.Shards)
}

// hasPlainStoreLayout reports whether dir looks like a populated
// (unsharded) Store tree: any two-hex-char fan-out subdirectory.
func hasPlainStoreLayout(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || len(name) != 2 {
			continue
		}
		if _, err := strconv.ParseUint(name, 16, 8); err == nil {
			return true
		}
	}
	return false
}

// loadIndex reads the append-only key index, tolerating a torn final line
// (a crash mid-append): every complete line is a key; anything else is
// skipped.
func (sh *shardStore) loadIndex() {
	data, err := os.ReadFile(sh.idxPath)
	if err != nil {
		return
	}
	start := 0
	for i := 0; i < len(data); i++ {
		if data[i] == '\n' {
			if key := string(data[start:i]); len(key) == 64 {
				sh.known[key] = true
			}
			start = i + 1
		}
	}
}

func (s *ShardedStore) shard(key string) *shardStore {
	if len(key) < 2 {
		return s.shards[0]
	}
	b, err := strconv.ParseUint(key[:2], 16, 8)
	if err != nil {
		return s.shards[0]
	}
	return s.shards[uint8(b)&s.mask]
}

// Get returns the stored canonical bytes for key, if present in the shard's
// memory or disk tier.
func (s *ShardedStore) Get(key string) ([]byte, bool) {
	return s.shard(key).store.Get(key)
}

// Put stores data under key in its shard (crash-safe on disk, see
// Store.Put) and records the key in the shard's index.
func (s *ShardedStore) Put(key string, data []byte) error {
	sh := s.shard(key)
	if err := sh.store.Put(key, data); err != nil {
		return err
	}
	defer s.noteOccupancy(sh)
	if sh.idxPath == "" {
		return nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.known[key] {
		return nil
	}
	// Best effort: the value is already durable; a lost index line only
	// costs enumeration, never a wrong Get.
	f, err := os.OpenFile(sh.idxPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil
	}
	if _, err := f.WriteString(key + "\n"); err == nil {
		sh.known[key] = true
	}
	f.Close()
	return nil
}

// Len returns the number of distinct keys the store knows about: resident
// in memory or recorded in a shard index. (Unlike Store.Len, this survives
// a restart — the coordinator uses it for warm-start accounting.)
func (s *ShardedStore) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += len(s.keysOf(sh))
	}
	return n
}

// Keys returns every known key, sorted (memory ∪ index).
func (s *ShardedStore) Keys() []string {
	var keys []string
	for _, sh := range s.shards {
		for k := range s.keysOf(sh) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

func (s *ShardedStore) keysOf(sh *shardStore) map[string]bool {
	out := map[string]bool{}
	sh.mu.Lock()
	for k := range sh.known {
		out[k] = true
	}
	sh.mu.Unlock()
	sh.store.mu.RLock()
	for k := range sh.store.mem {
		out[k] = true
	}
	sh.store.mu.RUnlock()
	return out
}

// Stats sums the cumulative hit/miss/put counters across shards.
func (s *ShardedStore) Stats() (hits, misses, puts uint64) {
	for _, sh := range s.shards {
		h, m, p := sh.store.Stats()
		hits += h
		misses += m
		puts += p
	}
	return hits, misses, puts
}

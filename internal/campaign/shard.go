package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"astro/internal/telemetry"
)

// ShardedStore partitions a content-addressed result store into
// power-of-two shards selected by key prefix: shard(key) = first 8 bits of
// the (hex) key, masked to the shard count. Every shard is an independent
// Store with its own lock and its own directory, so N workers (or N
// coordinator goroutines draining worker results) writing concurrently
// contend only when their keys land in the same shard — never on one global
// mutex, and never on one directory's rename traffic.
//
// Keys are SHA-256 hex, so the prefix is uniformly distributed and the
// shards stay balanced without any placement logic.
//
// Layout under dir:
//
//	INDEX.json            {"version":1,"shards":N} — pins the shard count
//	shard-00/…/…json      shard 0's Store tree (same layout as Store)
//	shard-00/keys.idx     append-only key index, one key per line
//	shard-01/…            …
//
// The per-shard keys.idx is appended after every successful disk Put (the
// value write is fsync+rename crash-safe first; the index line is best
// effort). It lets a reopened store enumerate what it holds (Keys, Len)
// without statting hundreds of thousands of files, which is what the
// coordinator uses to skip leasing cells that any previous run — local or
// remote — already produced. A missing or truncated index line only costs
// enumeration: Get still falls through to the disk tier by path, so
// correctness never depends on the index. An eviction leaves its index
// line behind on disk (the in-memory key set forgets immediately);
// compaction — CompactShard / StartCompactor — rewrites keys.idx down to
// the live keys with the same atomic write discipline as values.
//
// The shard count is part of the on-disk layout, so reopening a directory
// with a different -shards value is an error rather than a silent cache
// miss on every key.
//
// Opened with NewShardedStoreWith and a StoreConfig, the store is
// bounded: the MaxBytes cap splits evenly across shards (uniform keys
// keep the split fair), each shard evicts LRU-unpinned entries
// independently under its own lock, and one shared hot cache plus one
// shared pin ledger front the whole store — see bounded.go.
type ShardedStore struct {
	dir    string
	mask   uint8
	cfg    StoreConfig
	hot    *hotCache  // shared across shards; nil when unbounded
	pins   *PinLedger // shared across shards
	shards []*shardStore
}

type shardStore struct {
	store *Store

	mu      sync.Mutex // guards idxPath appends and known
	idxPath string
	known   map[string]bool // keys recorded on disk (loaded from keys.idx, pruned on eviction)

	occupancy *telemetry.Gauge // distinct keys in this shard (telemetry only)
}

// noteOccupancy publishes the shard's current distinct-key count and the
// store-wide disk occupancy gauges. Callers must not hold sh.mu or the
// shard's store lock (keysOf takes both).
func (s *ShardedStore) noteOccupancy(sh *shardStore) {
	sh.occupancy.Set(float64(len(s.keysOf(sh))))
	var bytes int64
	var keys int
	for _, ss := range s.shards {
		if ss == nil {
			continue // still under construction
		}
		b, k := ss.store.diskUsage()
		bytes += b
		keys += k
	}
	gStoreDiskBytes.Set(float64(bytes))
	gStoreDiskKeys.Set(float64(keys))
}

type shardManifest struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

const shardManifestName = "INDEX.json"

// NewShardedStore opens (or creates) an unbounded sharded store under dir
// with the given shard count (0 = 16; snapped up to a power of two, max
// 256). An empty dir builds a memory-only sharded store (useful for
// contention-free concurrent writers without persistence).
func NewShardedStore(dir string, shards int) (*ShardedStore, error) {
	return NewShardedStoreWith(dir, shards, StoreConfig{})
}

// NewShardedStoreWith is NewShardedStore with byte caps (see StoreConfig):
// the disk cap splits evenly across shards, the hot cache and the pin
// ledger are shared by all of them.
func NewShardedStoreWith(dir string, shards int, cfg StoreConfig) (*ShardedStore, error) {
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if n > 256 {
		return nil, fmt.Errorf("campaign: sharded store: %d shards exceeds the 256-shard (one key byte) limit", shards)
	}
	if dir == "" && cfg.bounded() {
		return nil, fmt.Errorf("campaign: store caps need a disk tier (-cache); a memory-only store cannot evict without losing results")
	}
	s := &ShardedStore{dir: dir, mask: uint8(n - 1), cfg: cfg, pins: NewPinLedger(), shards: make([]*shardStore, n)}
	if cfg.bounded() {
		s.hot = newHotCache(cfg.effHotBytes())
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("campaign: sharded store: %w", err)
		}
		mpath := filepath.Join(dir, shardManifestName)
		if data, err := os.ReadFile(mpath); err == nil {
			var m shardManifest
			if err := json.Unmarshal(data, &m); err != nil {
				return nil, fmt.Errorf("campaign: sharded store: corrupt %s: %w", shardManifestName, err)
			}
			if m.Shards != n {
				return nil, fmt.Errorf("campaign: sharded store %s was created with %d shards, reopened with %d — shard count is part of the layout", dir, m.Shards, n)
			}
		} else {
			// No manifest: this must be a fresh directory, not a populated
			// plain-Store tree — opening that sharded would miss every
			// stored key, silently invalidating the cache.
			if hasPlainStoreLayout(dir) {
				return nil, fmt.Errorf("campaign: %s holds a plain (unsharded) store; reopen it without -shards, or point the sharded store at a fresh directory", dir)
			}
			// Atomic like every other write in this subsystem: a crash
			// mid-creation must not leave a torn manifest that bricks the
			// directory on every later open.
			data, _ := json.Marshal(shardManifest{Version: 1, Shards: n})
			if err := writeFileAtomic(mpath, data); err != nil {
				return nil, fmt.Errorf("campaign: sharded store: %w", err)
			}
		}
	}
	shardCfg := StoreConfig{}
	if cfg.bounded() {
		shardCfg.MaxBytes = cfg.MaxBytes / int64(n)
		if cfg.MaxBytes > 0 && shardCfg.MaxBytes == 0 {
			shardCfg.MaxBytes = 1 // a cap below one byte per shard still bounds, never unbounds
		}
		shardCfg.HotBytes = cfg.effHotBytes() // hot cache is shared; any >0 value flips the shard to bounded mode
	}
	for i := 0; i < n; i++ {
		sub := ""
		if dir != "" {
			sub = filepath.Join(dir, fmt.Sprintf("shard-%02x", i))
		}
		st, err := newStoreTier(sub, shardCfg, s.hot, s.pins)
		if err != nil {
			return nil, err
		}
		sh := &shardStore{store: st, known: map[string]bool{}, occupancy: shardGauge(i)}
		if sub != "" {
			sh.idxPath = filepath.Join(sub, "keys.idx")
			if cfg.bounded() {
				// The open-time scan is ground truth (it already excludes
				// anything evicted to honour a lowered cap); stale index
				// lines from evictions before the last compaction must not
				// resurrect phantom keys in Len/Keys.
				for _, k := range st.diskKeys() {
					sh.known[k] = true
				}
			} else {
				sh.loadIndex()
			}
		}
		// Evictions prune the in-memory key set immediately; keys.idx on
		// disk catches up at the next compaction.
		st.onEvict = func(key string) {
			sh.mu.Lock()
			delete(sh.known, key)
			sh.mu.Unlock()
			s.noteOccupancy(sh)
		}
		s.shards[i] = sh
		s.noteOccupancy(sh)
	}
	return s, nil
}

// OpenStore opens dir as whichever store layout it holds: sharded when
// the INDEX.json manifest is present (honouring the manifest's own
// shard count), plain otherwise. Read-side tools — the journal replay
// audit — use this so the operator needn't remember the -shards value
// a coordinator was launched with. The store opens unbounded: an audit
// must never evict the evidence.
func OpenStore(dir string) (ResultStore, error) {
	if dir == "" {
		return NewMemStore(), nil
	}
	data, err := os.ReadFile(filepath.Join(dir, shardManifestName))
	if err != nil {
		return NewStore(dir)
	}
	var m shardManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("campaign: corrupt %s in %s: %w", shardManifestName, dir, err)
	}
	return NewShardedStore(dir, m.Shards)
}

// hasPlainStoreLayout reports whether dir looks like a populated
// (unsharded) Store tree: any two-hex-char fan-out subdirectory.
func hasPlainStoreLayout(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || len(name) != 2 {
			continue
		}
		if _, err := strconv.ParseUint(name, 16, 8); err == nil {
			return true
		}
	}
	return false
}

// loadIndex reads the append-only key index, tolerating a torn final line
// (a crash mid-append): every complete line is a key; anything else is
// skipped.
func (sh *shardStore) loadIndex() {
	data, err := os.ReadFile(sh.idxPath)
	if err != nil {
		return
	}
	start := 0
	for i := 0; i < len(data); i++ {
		if data[i] == '\n' {
			if key := string(data[start:i]); len(key) == 64 {
				sh.known[key] = true
			}
			start = i + 1
		}
	}
}

func (s *ShardedStore) shard(key string) *shardStore {
	if len(key) < 2 {
		return s.shards[0]
	}
	b, err := strconv.ParseUint(key[:2], 16, 8)
	if err != nil {
		return s.shards[0]
	}
	return s.shards[uint8(b)&s.mask]
}

// Get returns the stored canonical bytes for key, if present in the shard's
// memory or disk tier.
func (s *ShardedStore) Get(key string) ([]byte, bool) {
	return s.shard(key).store.Get(key)
}

// Put stores data under key in its shard (crash-safe on disk, see
// Store.Put) and records the key in the shard's index.
func (s *ShardedStore) Put(key string, data []byte) error {
	sh := s.shard(key)
	if err := sh.store.Put(key, data); err != nil {
		return err
	}
	defer s.noteOccupancy(sh)
	if sh.idxPath == "" {
		return nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.known[key] {
		return nil
	}
	// Best effort: the value is already durable; a lost index line only
	// costs enumeration, never a wrong Get.
	f, err := os.OpenFile(sh.idxPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil
	}
	if _, err := f.WriteString(key + "\n"); err == nil {
		sh.known[key] = true
	}
	f.Close()
	return nil
}

// Pin and Unpin implement PinStore on the ledger every shard's eviction
// consults: a pinned key is never evicted, whichever shard holds it.
func (s *ShardedStore) Pin(key string)   { s.pins.Pin(key) }
func (s *ShardedStore) Unpin(key string) { s.pins.Unpin(key) }

// Occupancy sums the per-shard disk accounting (Occupant interface). The
// hot cache is shared, so its numbers are read once, not per shard.
func (s *ShardedStore) Occupancy() Occupancy {
	var occ Occupancy
	for _, sh := range s.shards {
		so := sh.store.Occupancy()
		occ.DiskBytes += so.DiskBytes
		occ.CapBytes += so.CapBytes
		occ.DiskKeys += so.DiskKeys
		occ.PinnedKeys += so.PinnedKeys
		occ.PinnedBytes += so.PinnedBytes
		occ.DiskWrites += so.DiskWrites
		occ.PutNoops += so.PutNoops
		occ.Evictions += so.Evictions
	}
	if s.hot != nil {
		occ.HotBytes = s.hot.size()
		occ.HotCapBytes = s.hot.max
	}
	return occ
}

// CompactShard rewrites shard i's keys.idx down to the keys whose value
// files are actually live, and sweeps temp-file strays older than a
// minute (failed writeFileAtomic leftovers; in-flight writes are far
// faster). The walk runs without any lock; the index swap holds only the
// shard's index mutex for an atomic rewrite, so value reads and writes —
// on this shard and every other — proceed throughout. Crash-safety is
// the usual discipline: keys.idx is replaced via temp-file + fsync +
// rename, so a crash mid-compaction leaves either the old index or the
// new one, and a torn tail from a crash mid-*append* is repaired by the
// next loadIndex (both pinned by tests).
func (s *ShardedStore) CompactShard(i int) error {
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("campaign: compact: no shard %d", i)
	}
	sh := s.shards[i]
	if sh.idxPath == "" {
		return nil
	}
	live, err := scanStoreDir(sh.store.dir, time.Minute)
	if err != nil {
		return fmt.Errorf("campaign: compact shard %02x: %w", i, err)
	}
	newKnown := make(map[string]bool, len(live))
	for _, k := range live {
		newKnown[k] = true
	}
	sh.mu.Lock()
	// Keys Put between the walk and here are in known but not in the
	// walk; confirm their file and keep them, so compaction never drops
	// a fresh write from the index.
	for k := range sh.known {
		if !newKnown[k] {
			if _, err := os.Stat(sh.store.path(k)); err == nil {
				newKnown[k] = true
			}
		}
	}
	keys := make([]string, 0, len(newKnown))
	for k := range newKnown {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	werr := writeFileAtomic(sh.idxPath, []byte(b.String()))
	if werr == nil {
		sh.known = newKnown
	}
	sh.mu.Unlock()
	if werr != nil {
		return fmt.Errorf("campaign: compact shard %02x: %w", i, werr)
	}
	cStoreCompactions.Inc()
	s.noteOccupancy(sh)
	return nil
}

// Compact compacts every shard, stopping at the first error.
func (s *ShardedStore) Compact() error {
	for i := range s.shards {
		if err := s.CompactShard(i); err != nil {
			return err
		}
	}
	return nil
}

// StartCompactor compacts all shards on a background ticker, one full
// pass per interval (<= 0 picks a minute). The returned stop is
// idempotent; compaction errors are counted, never fatal — a failed
// rewrite leaves the previous index in place.
func (s *ShardedStore) StartCompactor(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Minute
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if err := s.Compact(); err != nil {
					cStoreCompactErrors.Inc()
				}
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// scanStoreDir walks a Store directory's two-hex fan-out and returns the
// keys whose value files exist — the ground truth compaction rebuilds
// keys.idx from. Temp files older than pruneTmpAge are removed (a failed
// atomic write's leftovers); younger ones may be in-flight writes and
// are left alone.
func scanStoreDir(dir string, pruneTmpAge time.Duration) ([]string, error) {
	if dir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	now := time.Now()
	pruneTmp := func(parent string, e os.DirEntry) bool {
		if e.IsDir() || !strings.HasPrefix(e.Name(), ".tmp") {
			return false
		}
		if fi, err := e.Info(); err == nil && pruneTmpAge > 0 && now.Sub(fi.ModTime()) > pruneTmpAge {
			os.Remove(filepath.Join(parent, e.Name()))
		}
		return true
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		// keys.idx (and the manifest) rewrite atomically into this level,
		// so a crashed rewrite leaves its temp file here.
		if pruneTmp(dir, e) {
			continue
		}
		if !e.IsDir() || len(name) != 2 {
			continue
		}
		if _, err := strconv.ParseUint(name, 16, 8); err != nil {
			continue
		}
		sub := filepath.Join(dir, name)
		files, err := os.ReadDir(sub)
		if err != nil {
			continue
		}
		for _, f := range files {
			fname := f.Name()
			if pruneTmp(sub, f) || f.IsDir() {
				continue
			}
			if filepath.Ext(fname) != ".json" {
				continue
			}
			key := fname[:len(fname)-len(".json")]
			if len(key) > 2 && key[:2] == name {
				keys = append(keys, key)
			}
		}
	}
	return keys, nil
}

// Len returns the number of distinct keys the store knows about: resident
// in memory or recorded in a shard index. (Unlike Store.Len, this survives
// a restart — the coordinator uses it for warm-start accounting.)
func (s *ShardedStore) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += len(s.keysOf(sh))
	}
	return n
}

// Keys returns every known key, sorted (memory ∪ index).
func (s *ShardedStore) Keys() []string {
	var keys []string
	for _, sh := range s.shards {
		for k := range s.keysOf(sh) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

func (s *ShardedStore) keysOf(sh *shardStore) map[string]bool {
	out := map[string]bool{}
	sh.mu.Lock()
	for k := range sh.known {
		out[k] = true
	}
	sh.mu.Unlock()
	sh.store.mu.RLock()
	for k := range sh.store.mem {
		out[k] = true
	}
	sh.store.mu.RUnlock()
	return out
}

// Stats sums the cumulative hit/miss/put counters across shards.
func (s *ShardedStore) Stats() (hits, misses, puts uint64) {
	for _, sh := range s.shards {
		h, m, p := sh.store.Stats()
		hits += h
		misses += m
		puts += p
	}
	return hits, misses, puts
}

package campaign

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"io"
	"sync"
)

// Fault injection for chaos drills. The seam is deliberately narrow: a
// FaultPolicy hung on a Worker (Worker.Faults) or a WorkQueue
// (WorkQueue.Faults) is consulted at the protocol points where real
// fleets lose work — executing a cell, heartbeating a lease, accepting a
// result — and answers with the fault to inject, if any. Production
// paths pay one nil check; everything else lives here and in the chaos
// tests. No fault can corrupt a campaign: every injected failure lands
// on a path the protocol already recovers from (validation reject,
// lease expiry and re-issue, duplicate acknowledgement), which is
// exactly what TestChaosFleetByteIdentity pins.

// FaultOp names a protocol point where a FaultPolicy may fire.
type FaultOp string

const (
	// FaultOpExecute is consulted by the worker once per cell execution.
	FaultOpExecute FaultOp = "execute"
	// FaultOpRenew is consulted by the worker once per heartbeat round.
	FaultOpRenew FaultOp = "renew"
	// FaultOpComplete is consulted by the coordinator once per otherwise
	// acceptable result submission.
	FaultOpComplete FaultOp = "complete"
)

// Fault is an injected behavior.
type Fault uint8

const (
	FaultNone Fault = iota
	// FaultDrop: on execute, compute the cell but never submit the result
	// (a worker that dies between finishing and pushing); on renew, skip
	// the heartbeat round (a network partition delaying renewals past the
	// TTL); on complete, acknowledge the submission and then discard it (a
	// coordinator that loses a result after the ack).
	FaultDrop
	// FaultCorrupt: submit deliberately malformed result bytes (a
	// byzantine or bit-flipping worker). The coordinator's validation
	// rejects them and, repeated, quarantines the worker.
	FaultCorrupt
	// FaultCrash: the worker stops mid-batch — Run returns
	// ErrInjectedCrash without submitting, and its held leases expire and
	// re-issue like any dead worker's.
	FaultCrash
)

// ErrInjectedCrash is returned by Worker.Run when its FaultPolicy fired
// FaultCrash: the process-death analogue a supervisor would restart.
var ErrInjectedCrash = errors.New("campaign: injected worker crash")

// FaultPolicy decides, per protocol event, whether to inject a fault.
// Implementations must be safe for concurrent use; key is the cell's
// content address ("" for events that cover several keys, like a
// heartbeat round).
type FaultPolicy interface {
	Fault(op FaultOp, workerID, key string) Fault
}

// FaultSchedule is the deterministic seeded FaultPolicy: each decision
// hashes (Seed, op, workerID, key, occurrence#) to a unit float compared
// against the configured rates, so the schedule depends only on the
// sequence of events per (op, worker, key) tuple — never on goroutine
// interleaving or wall clocks. Two runs that execute the same cells on
// the same worker IDs inject the same faults.
type FaultSchedule struct {
	Seed int64

	// FaultOpExecute rates, checked in this order against one draw.
	Crash   float64 // P(worker crashes instead of executing)
	Corrupt float64 // P(result bytes corrupted before submission)
	Drop    float64 // P(result computed but never submitted)

	StallRenew   float64 // FaultOpRenew: P(heartbeat round skipped)
	DropComplete float64 // FaultOpComplete: P(result acked then discarded)

	mu  sync.Mutex
	seq map[string]uint64
}

// Fault implements FaultPolicy.
func (f *FaultSchedule) Fault(op FaultOp, workerID, key string) Fault {
	id := string(op) + "|" + workerID + "|" + key
	f.mu.Lock()
	if f.seq == nil {
		f.seq = map[string]uint64{}
	}
	n := f.seq[id]
	f.seq[id] = n + 1
	f.mu.Unlock()
	u := faultUnit(f.Seed, id, n)
	switch op {
	case FaultOpExecute:
		switch {
		case u < f.Crash:
			return FaultCrash
		case u < f.Crash+f.Corrupt:
			return FaultCorrupt
		case u < f.Crash+f.Corrupt+f.Drop:
			return FaultDrop
		}
	case FaultOpRenew:
		if u < f.StallRenew {
			return FaultDrop
		}
	case FaultOpComplete:
		if u < f.DropComplete {
			return FaultDrop
		}
	}
	return FaultNone
}

// faultUnit maps (seed, id, n) to a uniform-ish [0,1) float via FNV-1a.
func faultUnit(seed int64, id string, n uint64) float64 {
	h := fnv.New64a()
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(seed))
	binary.LittleEndian.PutUint64(b[8:], n)
	h.Write(b[:])
	io.WriteString(h, id)
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// corruptResult makes result bytes that provably fail validation for
// every cell kind (neither sim result nor agent snapshot decodes), so an
// injected corruption can never be mistaken for a valid result.
func corruptResult(data []byte) []byte {
	return append([]byte("\x00corrupt:"), data...)
}

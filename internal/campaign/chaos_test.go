package campaign_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"astro/internal/campaign"
	"astro/internal/journal"
	"astro/internal/scenario"
	"astro/internal/telemetry"
)

// chaosMatrix is the generated 100-cell grid the chaos drill runs: 5
// synthesized programs × 2 schedulers × 2 configs × 5 seeds.
func chaosMatrix() scenario.Matrix {
	return scenario.Matrix{
		Name:         "chaos-100",
		ProgramCount: 5,
		ProgramSeed:  13,
		Schedulers:   []string{"default", "gts"},
		Configs:      []string{"1L1B", "all-on"},
		Seeds:        []int64{0, 1, 2, 3, 4},
	}
}

// TestChaosFleetByteIdentity is the chaos drill the robustness work hangs
// on: a 100-cell campaign executed by a fleet that loses a worker
// mid-flight (killed), gracefully drains another, quarantines a third
// that submits corrupt bytes for every cell, scales a fourth up
// mid-campaign, and injects protocol faults throughout (dropped results,
// stalled heartbeats, a coordinator that loses acked results). The
// campaign must still complete every cell with fingerprints — and per-key
// store bytes — identical to an undisturbed in-process run, with zero
// wrong results banked.
func TestChaosFleetByteIdentity(t *testing.T) {
	m := chaosMatrix()
	if got := m.Cells(); got != 100 {
		t.Fatalf("matrix expands to %d cells, want 100", got)
	}
	jobs := expandMatrix(t, m)
	if len(jobs) != 100 {
		t.Fatalf("expanded to %d jobs, want 100", len(jobs))
	}

	// Leg A: undisturbed in-process pool — the reference bytes.
	poolStore := campaign.NewMemStore()
	pool := &campaign.Pool{Workers: 4, Store: poolStore}
	outsA, err := pool.Run(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Leg B: the chaos fleet. Short TTL so killed/stalled leases re-issue
	// quickly; a background sweeper so expiry never waits for traffic; a
	// raised attempt cap so injected faults burn retries without failing
	// cells; and a coordinator-side fault that drops ~5% of acked results.
	store := campaign.NewMemStore()
	q := campaign.NewWorkQueue(400 * time.Millisecond)
	q.Store = store
	q.SetMaxAttempts(8)
	// Journal the whole drill. Byte identity asserted below is therefore
	// also the journal-inertness proof (DESIGN.md invariant 10), and the
	// log feeds the replay/audit checks at the end. ASTRO_ARTIFACT_DIR
	// (set in CI) preserves the journal and a metrics snapshot as build
	// artifacts when the race job fails.
	artifactDir := os.Getenv("ASTRO_ARTIFACT_DIR")
	if artifactDir == "" {
		artifactDir = t.TempDir()
	}
	journalDir := filepath.Join(artifactDir, "journal")
	// A rerun into the same artifact dir (local loops; CI dirs are fresh)
	// must not replay the previous run's events into this run's audit.
	if err := os.RemoveAll(journalDir); err != nil {
		t.Fatal(err)
	}
	jw, err := journal.Open(journalDir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q.Events = jw
	// The corruptor is exempt from the coordinator-side drop: its garbage
	// must reach validation every time, so the quarantine assertion below
	// does not depend on which cells it happens to lease.
	q.Faults = exemptWorker{inner: &campaign.FaultSchedule{Seed: 1, DropComplete: 0.05}, id: "w-corrupt"}
	stopSweep := q.StartSweeper(25 * time.Millisecond)
	defer stopSweep()
	srv := httptest.NewServer(http.StripPrefix("/work", campaign.WorkHandler(q, store)))
	defer srv.Close()

	fleetCtx, stopFleet := context.WithCancel(context.Background())
	defer stopFleet()
	newWorker := func(id string, faults campaign.FaultPolicy) *campaign.Worker {
		return &campaign.Worker{
			Coordinator: srv.URL + "/work",
			ID:          id,
			Parallel:    2,
			Poll:        5 * time.Millisecond,
			Faults:      faults,
		}
	}
	var wg sync.WaitGroup
	runWorker := func(ctx context.Context, w *campaign.Worker) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}

	// The cast: a victim killed mid-flight (who also stalls heartbeats and
	// drops results while alive), a worker drained mid-flight, a corruptor
	// whose every submission is garbage, and a steady worker with a mild
	// drop rate that carries the campaign home.
	victimCtx, killVictim := context.WithCancel(fleetCtx)
	defer killVictim()
	runWorker(victimCtx, newWorker("w-victim", &campaign.FaultSchedule{Seed: 2, Drop: 0.1, StallRenew: 0.25}))
	drainer := newWorker("w-drainer", nil)
	drainerDone := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		drainerDone <- drainer.Run(fleetCtx)
	}()
	runWorker(fleetCtx, newWorker("w-corrupt", &campaign.FaultSchedule{Seed: 3, Corrupt: 1}))
	runWorker(fleetCtx, newWorker("w-steady", &campaign.FaultSchedule{Seed: 4, Drop: 0.05}))

	// Choreography keyed to campaign progress: kill at 10 done, drain at
	// 25, scale up at 40. Done reaches 100 only at the end, so each
	// trigger fires; the scale-up worker proves a fresh identity can join
	// a degraded fleet mid-campaign.
	doneAtLeast := func(n int) {
		deadline := time.Now().Add(120 * time.Second)
		for q.Stats().Done < n {
			if time.Now().After(deadline) {
				t.Errorf("campaign stalled before %d cells done", n)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	choreographed := make(chan struct{})
	go func() {
		defer close(choreographed)
		doneAtLeast(10)
		killVictim()
		doneAtLeast(25)
		drainer.Drain()
		doneAtLeast(40)
		runWorker(fleetCtx, newWorker("w-late", nil))
	}()

	runner := &campaign.RemoteRunner{Queue: q, Store: store}
	outsB, err := runner.Run(context.Background(), expandMatrix(t, m), nil)
	if err != nil {
		t.Fatal(err)
	}
	<-choreographed

	// Zero cells lost, zero cells failed.
	for i, o := range outsB {
		if o == nil || o.Err != nil {
			t.Fatalf("cell %d did not survive the chaos: %+v", i, o)
		}
	}
	// Byte identity with the undisturbed run — fingerprints and the store
	// itself. Nothing wrong was banked: every key holds exactly the
	// reference bytes, and nothing beyond the 100 cells exists.
	if fa, fb := campaign.Fingerprint(outsA), campaign.Fingerprint(outsB); fa != fb {
		t.Fatalf("chaos fingerprint %s != in-process %s", fb, fa)
	}
	for i, j := range jobs {
		key, ok := j.Key()
		if !ok {
			t.Fatalf("job %d not cacheable", i)
		}
		want, ok1 := poolStore.Get(key)
		got, ok2 := store.Get(key)
		if !ok1 || !ok2 || !bytes.Equal(want, got) {
			t.Fatalf("store bytes for %s diverged (ref %v, chaos %v)", key, ok1, ok2)
		}
	}
	if n := store.Len(); n != 100 {
		t.Fatalf("chaos store holds %d entries, want exactly 100", n)
	}

	// The drained worker exited by itself — before the fleet context was
	// cancelled — with a clean Run and zero held leases.
	select {
	case err := <-drainerDone:
		if err != nil {
			t.Fatalf("drained worker returned %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("drained worker never exited")
	}
	st := q.Stats()
	if st.Done != 100 {
		t.Fatalf("queue done %d, want 100", st.Done)
	}
	if row := workerRowExt(t, st, "w-drainer"); row.Leased != 0 {
		t.Fatalf("drained worker still holds %d leases", row.Leased)
	}
	// The corruptor was quarantined after repeated rejects; the kill and
	// the injected faults forced requeues the protocol absorbed.
	if row := workerRowExt(t, st, "w-corrupt"); row.State != campaign.WorkerQuarantined || row.Rejects < 3 {
		t.Fatalf("corruptor not quarantined: %+v", row)
	}
	if st.Requeues == 0 {
		t.Fatal("no requeues despite a killed worker and injected faults")
	}
	if st.Rejects < 3 {
		t.Fatalf("only %d rejects despite an always-corrupt worker", st.Rejects)
	}
	// The drain notification (async POST /drain) must have landed.
	deadline := time.Now().Add(5 * time.Second)
	for workerRowExt(t, q.Stats(), "w-drainer").State != campaign.WorkerDraining {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never marked the drainer draining")
		}
		time.Sleep(5 * time.Millisecond)
	}

	stopFleet()
	wg.Wait()

	// Postmortem: close the journal and replay it cold, exactly as
	// `astro journal replay` would after a coordinator crash. The
	// reconstructed queue counters must match the live queue, and every
	// journaled completion must be banked in the store — 100/100.
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := journal.ReadSince(journalDir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep := journal.Replay(events)
	live := q.Stats()
	if rep.Pending != live.Pending || rep.Leased != live.Leased || rep.Done != live.Done ||
		rep.Requeues != live.Requeues || rep.Rejects != live.Rejects ||
		rep.Duplicates != live.Duplicates || rep.Renewals != live.Renewals {
		t.Errorf("replay diverges from live queue:\n  replay {pend %d leased %d done %d req %d rej %d dup %d ren %d}\n  live   {pend %d leased %d done %d req %d rej %d dup %d ren %d}",
			rep.Pending, rep.Leased, rep.Done, rep.Requeues, rep.Rejects, rep.Duplicates, rep.Renewals,
			live.Pending, live.Leased, live.Done, live.Requeues, live.Rejects, live.Duplicates, live.Renewals)
	}
	for _, lw := range live.Workers {
		rw := rep.Workers[lw.ID]
		if rw == nil {
			t.Errorf("worker %s missing from replay", lw.ID)
			continue
		}
		if rw.Completed != lw.Completed || rw.Errors != lw.Errors ||
			rw.Rejects != lw.Rejects || rw.State != lw.State {
			t.Errorf("worker %s: replay %+v, live %+v", lw.ID, rw, lw)
		}
	}
	completed := rep.CompletedKeys()
	if len(completed) != 100 {
		t.Errorf("journal records %d completed cells, want 100", len(completed))
	}
	banked := 0
	for _, key := range completed {
		if _, ok := store.Get(key); ok {
			banked++
		} else {
			t.Errorf("journaled completion %s not banked", key)
		}
	}
	t.Logf("postmortem audit: %d/%d journaled results banked, %d events replayed", banked, len(completed), rep.Events)

	// Snapshot the process-wide metrics beside the journal so a failing
	// CI run ships both.
	var prom bytes.Buffer
	telemetry.Default.WritePrometheus(&prom)
	if err := os.WriteFile(filepath.Join(artifactDir, "metrics.prom"), prom.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// exemptWorker composes fault policies: one worker sees no injected
// faults, everyone else follows the inner schedule.
type exemptWorker struct {
	inner campaign.FaultPolicy
	id    string
}

func (e exemptWorker) Fault(op campaign.FaultOp, workerID, key string) campaign.Fault {
	if workerID == e.id {
		return campaign.FaultNone
	}
	return e.inner.Fault(op, workerID, key)
}

// workerRowExt finds one worker's status row (external-package twin of the
// internal tests' helper).
func workerRowExt(t *testing.T, st campaign.QueueStats, id string) campaign.WorkerStatus {
	t.Helper()
	for _, w := range st.Workers {
		if w.ID == id {
			return w
		}
	}
	t.Fatalf("no worker %q in %+v", id, st.Workers)
	return campaign.WorkerStatus{}
}

package campaign

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is a campaign's lifecycle position.
type State string

const (
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed" // finished with job errors
	StateCancelled State = "cancelled"
)

// Event is one entry on a campaign's progress stream: either a per-job
// progress record or a terminal state change.
type Event struct {
	Type     string    `json:"type"` // "progress" | "state"
	Progress *Progress `json:"progress,omitempty"`
	State    State     `json:"state,omitempty"`
	Error    string    `json:"error,omitempty"`
}

// Status is a campaign snapshot for the HTTP API.
type Status struct {
	ID        string    `json:"id"`
	Name      string    `json:"name,omitempty"`
	State     State     `json:"state"`
	Total     int       `json:"total"`
	Done      int       `json:"done"`
	CacheHits int       `json:"cache_hits"`
	ColdJobs  int       `json:"cold_jobs"` // finished jobs that simulated fresh
	Errors    int       `json:"errors"`
	Created   time.Time `json:"created"`
	ElapsedS  float64   `json:"elapsed_s"`
	Error     string    `json:"error,omitempty"`

	// Aggregate simulated work delivered so far and its wall-clock rate.
	// SimCyclesPerSec is the observable form of every speedup layer: the
	// fast path raises it on cold runs, the caches raise it by orders of
	// magnitude on warm runs.
	SimInstr        uint64  `json:"sim_instructions"`
	SimCycles       uint64  `json:"sim_cycles"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
}

// Campaign is one submitted spec moving through the engine.
type Campaign struct {
	ID   string
	Spec Spec

	mu        sync.Mutex
	state     State
	total     int
	done      int
	cacheHits int
	errors    int
	simInstr  uint64
	simCycles uint64
	created   time.Time
	finished  time.Time
	errMsg    string
	events    []Event
	subs      map[int]chan Event
	nextSub   int
	outcomes  []*Outcome
	results   *ResultSet
	cancel    context.CancelFunc
}

// Engine manages campaign lifecycles: submission, execution on a shared
// pool, observation and cancellation. One engine backs one astro-serve
// process; campaigns share its store, so a resubmitted spec is served
// entirely from cache.
type Engine struct {
	runner Runner
	store  ResultStore

	mu        sync.Mutex
	seq       int
	campaigns map[string]*Campaign
}

// NewEngine builds an engine whose campaigns run in-process on workers
// workers and memoize into store (nil = fresh in-memory store).
func NewEngine(workers int, store ResultStore) *Engine {
	if store == nil {
		store = NewMemStore()
	}
	return NewEngineWith(&Pool{Workers: workers, Store: store}, store)
}

// NewEngineWith builds an engine around an explicit runner — the local Pool
// or a RemoteRunner leasing cells to pull-based workers. The store must be
// the one the runner memoizes into (it backs the /work agent-exchange
// endpoints and warm-cache accounting).
func NewEngineWith(r Runner, store ResultStore) *Engine {
	if store == nil {
		store = NewMemStore()
	}
	return &Engine{
		runner:    r,
		store:     store,
		campaigns: map[string]*Campaign{},
	}
}

// Store exposes the engine's result store.
func (e *Engine) Store() ResultStore { return e.store }

// Submit expands the spec (validation errors surface synchronously) and
// launches the campaign asynchronously, returning its handle.
func (e *Engine) Submit(spec Spec) (*Campaign, error) {
	jobs, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	e.mu.Lock()
	e.seq++
	c := &Campaign{
		ID:      fmt.Sprintf("c%06d", e.seq),
		Spec:    spec,
		state:   StateRunning,
		total:   len(jobs),
		created: time.Now(),
		subs:    map[int]chan Event{},
		cancel:  cancel,
	}
	e.campaigns[c.ID] = c
	e.mu.Unlock()

	// Telemetry annotation only: runners that wire cells out stamp the
	// campaign ID on the envelope so the coordinator's traces group by
	// campaign. Inert by construction — nothing execution- or key-related
	// reads it back.
	ctx = WithCampaignID(ctx, c.ID)

	go e.run(ctx, c, jobs)
	return c, nil
}

// campaignIDKey carries the submitting campaign's ID through a runner
// context; see WithCampaignID.
type campaignIDKey struct{}

// WithCampaignID annotates ctx with the campaign ID that owns the work.
func WithCampaignID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, campaignIDKey{}, id)
}

// CampaignIDFromContext returns the campaign ID annotation, if any.
func CampaignIDFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(campaignIDKey{}).(string)
	return id
}

func (e *Engine) run(ctx context.Context, c *Campaign, jobs []*Job) {
	outs, err := e.runner.Run(ctx, jobs, func(p Progress) {
		c.mu.Lock()
		c.done++
		p.Done, p.Total = c.done, c.total
		if p.CacheHit {
			c.cacheHits++
		}
		if p.Err != "" {
			c.errors++
		}
		c.simInstr += p.SimInstr
		c.simCycles += p.SimCycles
		c.publishLocked(Event{Type: "progress", Progress: &p})
		c.mu.Unlock()
	})

	c.mu.Lock()
	defer c.mu.Unlock()
	c.outcomes = outs
	c.results = Aggregate(c.Spec.Name, outs)
	// The canonical result bytes live in the store (and their digest in the
	// result set's fingerprint); dropping them here keeps a long-running
	// server's retained size proportional to summaries, not raw results.
	for _, o := range outs {
		if o != nil {
			o.Bytes = nil
		}
	}
	c.finished = time.Now()
	switch {
	case ctx.Err() != nil:
		c.state = StateCancelled
		c.errMsg = ctx.Err().Error()
	case err != nil:
		c.state = StateFailed
		c.errMsg = err.Error()
	default:
		c.state = StateDone
	}
	ev := Event{Type: "state", State: c.state, Error: c.errMsg}
	c.publishLocked(ev)
	for id, ch := range c.subs {
		close(ch)
		delete(c.subs, id)
	}
}

// maxReplayEvents bounds the per-campaign replay log: live subscribers see
// every event, but late subscribers of very large campaigns replay only
// the most recent window (plus the terminal event, which is always kept) —
// they have the status and results endpoints for the totals.
const maxReplayEvents = 4096

// publishLocked appends to the replay log and fans out to live subscribers.
// Slow subscribers are skipped rather than blocked on (SSE clients can
// re-sync from the replay log or poll the status endpoint).
func (c *Campaign) publishLocked(ev Event) {
	if len(c.events) < maxReplayEvents || ev.Type == "state" {
		c.events = append(c.events, ev)
	}
	for _, ch := range c.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Get returns a campaign by ID.
func (e *Engine) Get(id string) (*Campaign, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.campaigns[id]
	return c, ok
}

// List returns snapshots of every campaign, newest first.
func (e *Engine) List() []Status {
	e.mu.Lock()
	var cs []*Campaign
	for _, c := range e.campaigns {
		cs = append(cs, c)
	}
	e.mu.Unlock()
	sort.Slice(cs, func(i, j int) bool { return cs[i].ID > cs[j].ID })
	out := make([]Status, len(cs))
	for i, c := range cs {
		out[i] = c.Status()
	}
	return out
}

// Cancel stops a running campaign (idempotent; false if the ID is unknown).
func (e *Engine) Cancel(id string) bool {
	c, ok := e.Get(id)
	if !ok {
		return false
	}
	c.cancel()
	return true
}

// Status snapshots the campaign.
func (c *Campaign) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		ID:        c.ID,
		Name:      c.Spec.Name,
		State:     c.state,
		Total:     c.total,
		Done:      c.done,
		CacheHits: c.cacheHits,
		ColdJobs:  c.done - c.cacheHits,
		Errors:    c.errors,
		Created:   c.created,
		Error:     c.errMsg,
		SimInstr:  c.simInstr,
		SimCycles: c.simCycles,
	}
	if c.state == StateRunning {
		st.ElapsedS = time.Since(c.created).Seconds()
	} else {
		st.ElapsedS = c.finished.Sub(c.created).Seconds()
	}
	if st.ElapsedS > 0 {
		st.SimCyclesPerSec = float64(st.SimCycles) / st.ElapsedS
	}
	return st
}

// Results returns the aggregated result set once the campaign has finished
// (nil while running).
func (c *Campaign) Results() *ResultSet {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.results
}

// Outcomes returns the raw per-job outcomes once finished (nil while
// running).
func (c *Campaign) Outcomes() []*Outcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == StateRunning {
		return nil
	}
	return c.outcomes
}

// Subscribe returns a channel that replays the campaign's full event log
// and then streams live events; the channel closes when the campaign
// finishes. Call the returned cancel function to unsubscribe early.
func (c *Campaign) Subscribe() (<-chan Event, func()) {
	c.mu.Lock()
	replay := make([]Event, len(c.events))
	copy(replay, c.events)
	terminal := c.state != StateRunning
	ch := make(chan Event, len(replay)+c.total+16)
	for _, ev := range replay {
		ch <- ev
	}
	var id int
	if terminal {
		close(ch)
	} else {
		id = c.nextSub
		c.nextSub++
		c.subs[id] = ch
	}
	c.mu.Unlock()

	cancelFn := func() {
		c.mu.Lock()
		if sub, ok := c.subs[id]; ok && sub == ch {
			delete(c.subs, id)
			close(ch)
		}
		c.mu.Unlock()
	}
	if terminal {
		cancelFn = func() {}
	}
	return ch, cancelFn
}

package campaign

// Distributed-training and hybrid-by-agent-key tests: the fig10-style
// acceptance path (train cells + agent-keyed hybrid sampling leased to
// workers over real HTTP, byte-identical to in-process execution) and the
// lease-renewal protocol that lets training cells outrun the TTL.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"astro/internal/features"
	"astro/internal/instrument"
	"astro/internal/ir"
	"astro/internal/rl"
	"astro/internal/sim"
	"astro/internal/workloads"
)

// fig10Cell bundles one benchmark's artifacts for a fig10-style matrix:
// the training recipe plus the plain and hybrid-instrumented modules.
type fig10Cell struct {
	name   string
	spec   *TrainSpec
	plain  *ir.Module
	hybrid *ir.Module
	args   []int64
}

// fig10StyleCells builds the paper-shaped work: per benchmark, a training
// cell and the modules its treatments sample.
func fig10StyleCells(t *testing.T, benchmarks []string) []*fig10Cell {
	t.Helper()
	cells := make([]*fig10Cell, 0, len(benchmarks))
	for _, name := range benchmarks {
		spec, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("workload %s not registered", name)
		}
		mod, err := spec.Compile()
		if err != nil {
			t.Fatal(err)
		}
		mi := features.AnalyzeModule(mod, features.Options{})
		learn, err := instrument.ForLearning(mod, mi)
		if err != nil {
			t.Fatal(err)
		}
		hyb, err := instrument.ForHybrid(mod, mi)
		if err != nil {
			t.Fatal(err)
		}
		opts := sim.Options{CheckpointS: 200e-6, QuantumS: 50e-6, TickS: 100e-6}
		cells = append(cells, &fig10Cell{
			name: name,
			spec: &TrainSpec{
				Label:    "dfig10/train/" + name,
				Module:   learn,
				OS:       "gts",
				Agent:    "dqn",
				DQN:      rl.DQNConfig{Seed: 301, LR: 0.05},
				Episodes: 2,
				Seed:     41,
				Args:     spec.SmallArgs(),
				Opts:     opts,
			},
			plain:  mod,
			hybrid: hyb,
			args:   spec.SmallArgs(),
		})
	}
	return cells
}

// fig10StyleJobs expands the cells into the sampling batch: per benchmark,
// GTS samples on the plain module and hybrid samples keyed to the trained
// agent's snapshot. agents supplies the snapshot store for in-process
// execution; remote legs leave it nil (workers bring their own exchange).
func fig10StyleJobs(t *testing.T, cells []*fig10Cell, samples int, agents ResultStore) []*Job {
	t.Helper()
	var jobs []*Job
	for _, c := range cells {
		agentKey, err := c.spec.Key()
		if err != nil {
			t.Fatal(err)
		}
		add := func(kind string, mod *ir.Module, hybrid bool) {
			for s := 0; s < samples; s++ {
				j := &Job{
					Index:     len(jobs),
					Label:     fmt.Sprintf("dfig10/%s/%s/sample%d", c.name, kind, s),
					Benchmark: c.name,
					Module:    mod,
					OS:        "gts",
					Seed:      int64(9000 + 97*s),
					Args:      c.args,
					Opts:      sim.Options{CheckpointS: 200e-6, QuantumS: 50e-6, TickS: 100e-6},
				}
				if hybrid {
					j.AgentKey = agentKey
					j.Agents = agents
				}
				jobs = append(jobs, j)
			}
		}
		add("gts", c.plain, false)
		add("hybrid", c.hybrid, true)
	}
	return jobs
}

// TestDistributedFig10ByteIdentity pins the acceptance criterion end to
// end: a fig10-style matrix — training cells plus GTS and
// hybrid-by-agent-key samples — executed (a) in-process and (b) through
// two pull-based workers over loopback HTTP produces byte-identical
// fingerprints, with zero coordinator-local simulations or trainings on
// the cold distributed run and zero fresh work of either kind on the warm
// re-run.
func TestDistributedFig10ByteIdentity(t *testing.T) {
	benchmarks := []string{"spin", "matrixmul"}
	const samples = 2

	// Leg A: in-process (the pool is both Runner and Trainer).
	cellsA := fig10StyleCells(t, benchmarks)
	storeA := NewMemStore()
	pool := &Pool{Workers: 2, Store: storeA}
	specsA := make([]*TrainSpec, len(cellsA))
	for i, c := range cellsA {
		specsA[i] = c.spec
	}
	trainedA, err := pool.Train(context.Background(), specsA)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range trainedA {
		if tr.CacheHit {
			t.Fatalf("cold in-process training %d claims a cache hit", i)
		}
	}
	outsA, err := pool.Run(context.Background(), fig10StyleJobs(t, cellsA, samples, storeA), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Leg B: coordinator + two workers over HTTP. The fallback pool is a
	// tracer: every cell of the matrix is wireable, so it must stay idle.
	cellsB := fig10StyleCells(t, benchmarks)
	storeB := NewMemStore()
	q := NewWorkQueue(time.Minute)
	q.Store = storeB
	srv := startCoordinator(t, q, storeB)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, id := range []string{"fleet-a", "fleet-b"} {
		w := &Worker{Coordinator: srv.URL + "/work", ID: id, Max: 1, Poll: 2 * time.Millisecond}
		go w.Run(ctx)
	}
	runner := &RemoteRunner{Queue: q, Store: storeB, Local: Pool{Workers: 1, Store: storeB}}

	specsB := make([]*TrainSpec, len(cellsB))
	for i, c := range cellsB {
		specsB[i] = c.spec
	}
	trainedB, err := runner.Train(context.Background(), specsB)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range trainedB {
		if tr.CacheHit {
			t.Fatalf("cold distributed training %d claims a cache hit", i)
		}
		if a, b := agentFingerprint(t, trainedA[i].Agent), agentFingerprint(t, tr.Agent); string(a) != string(b) {
			t.Fatalf("training cell %d: remote agent is not inference-identical to in-process", i)
		}
	}
	jobsB := fig10StyleJobs(t, cellsB, samples, nil)
	outsB, err := runner.Run(context.Background(), jobsB, nil)
	if err != nil {
		t.Fatal(err)
	}

	if fa, fb := Fingerprint(outsA), Fingerprint(outsB); fa != fb {
		t.Fatalf("distributed fingerprint %s != in-process %s", fb, fa)
	}
	if hits := CacheHits(outsB); hits != 0 {
		t.Fatalf("cold distributed run claims %d cache hits", hits)
	}
	st := q.Stats()
	wantDone := len(specsB) + len(jobsB)
	if st.Done != wantDone {
		t.Fatalf("queue completed %d cells, want %d (train %d + sim %d)", st.Done, wantDone, len(specsB), len(jobsB))
	}
	if st.LocalDone != 0 || st.LocalPending != 0 {
		t.Fatalf("coordinator-local fallback executed cells: %+v", st)
	}
	completed := 0
	for _, w := range st.Workers {
		completed += w.Completed
	}
	if completed != wantDone {
		t.Fatalf("workers completed %d cells, want %d", completed, wantDone)
	}

	// Warm re-run: everything — training cells included — is served from
	// the shared store; nothing is leased and nothing is stored afresh.
	_, _, putsBefore := storeB.Stats()
	warmTrained, err := runner.Train(context.Background(), fig10SpecsOf(t, benchmarks))
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range warmTrained {
		if !tr.CacheHit {
			t.Fatalf("warm training cell %d was re-trained", i)
		}
	}
	warmOuts, err := runner.Run(context.Background(), fig10StyleJobs(t, fig10StyleCells(t, benchmarks), samples, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if hits := CacheHits(warmOuts); hits != len(warmOuts) {
		t.Fatalf("warm re-run: %d/%d cache hits", hits, len(warmOuts))
	}
	if fw := Fingerprint(warmOuts); fw != Fingerprint(outsA) {
		t.Fatalf("warm fingerprint diverged")
	}
	if _, _, putsAfter := storeB.Stats(); putsAfter != putsBefore {
		t.Fatalf("warm re-run wrote %d fresh results", putsAfter-putsBefore)
	}
	if st := q.Stats(); st.Done != wantDone {
		t.Fatalf("warm re-run enqueued fresh cells: done %d, want %d", st.Done, wantDone)
	}
}

// fig10SpecsOf rebuilds just the training specs (fresh modules, same
// keys), so warm-path calls cannot share pointers with the cold run.
func fig10SpecsOf(t *testing.T, benchmarks []string) []*TrainSpec {
	t.Helper()
	cells := fig10StyleCells(t, benchmarks)
	specs := make([]*TrainSpec, len(cells))
	for i, c := range cells {
		specs[i] = c.spec
	}
	return specs
}

// TestTrainLeaseRenewalKeepsLongCellAlive pins the acceptance criterion's
// renewal half with real clocks: a training cell whose runtime exceeds the
// lease TTL several times over survives on one worker because its
// heartbeat renews the lease — the queue never re-issues the cell, and the
// waiter receives the snapshot from the original holder.
func TestTrainLeaseRenewalKeepsLongCellAlive(t *testing.T) {
	const ttl = 300 * time.Millisecond
	ts := trainSpecFor(t, "spin", 77)
	ts.Episodes = 400 // runs several TTLs long, yet fast enough for CI

	store := NewMemStore()
	q := NewWorkQueue(ttl)
	q.Store = store
	srv := startCoordinator(t, q, store)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{
		Coordinator: srv.URL + "/work",
		ID:          "long-hauler",
		Max:         1,
		Poll:        2 * time.Millisecond,
		Renew:       30 * time.Millisecond,
	}
	go w.Run(ctx)

	runner := &RemoteRunner{Queue: q, Store: store}
	start := time.Now()
	trained, err := runner.Train(context.Background(), []*TrainSpec{ts})
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall <= ttl {
		t.Fatalf("training finished in %v, inside the %v TTL — the test no longer exercises renewal; raise Episodes", wall, ttl)
	}
	if trained[0] == nil || trained[0].Agent == nil {
		t.Fatal("no trained agent returned")
	}
	st := q.Stats()
	if st.Requeues != 0 {
		t.Fatalf("lease was re-issued %d times despite renewal", st.Requeues)
	}
	if st.Renewals == 0 {
		t.Fatal("no renewals recorded — heartbeat never reached the queue")
	}
	if st.Done != 1 {
		t.Fatalf("queue done = %d, want 1", st.Done)
	}
}

// TestRemoteRunnerCountsLocalFallback pins the status-accounting fix: a
// non-wireable job (in-process Hybrid factory) executed on the
// RemoteRunner's fallback pool shows up in the queue's Local* counters, so
// /work/status reflects the whole campaign.
func TestRemoteRunnerCountsLocalFallback(t *testing.T) {
	cells := fig10StyleCells(t, []string{"spin"})
	store := NewMemStore()
	pool := &Pool{Workers: 1, Store: store}
	if _, err := pool.Train(context.Background(), []*TrainSpec{cells[0].spec}); err != nil {
		t.Fatal(err)
	}
	jobs := fig10StyleJobs(t, cells, 1, store)
	// Make one plain job non-wireable: an in-process policy factory is the
	// one form that cannot cross the wire. The factory yields nil (the
	// plain module never consults a hybrid policy), so only the routing
	// changes, not the simulation.
	tracer := jobs[0]
	if tracer.AgentKey != "" {
		t.Fatal("expected jobs[0] to be the plain gts sample")
	}
	tracer.Hybrid = func() sim.HybridPolicy { return nil }
	tracer.HybridKey = "local-fallback-tracer"

	q := NewWorkQueue(time.Minute)
	q.Store = store
	srv := startCoordinator(t, q, store)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{Coordinator: srv.URL + "/work", ID: "wire-only", Max: 2, Poll: 2 * time.Millisecond}
	go w.Run(ctx)

	runner := &RemoteRunner{Queue: q, Store: NewMemStore(), Local: Pool{Workers: 1}}
	outs, err := runner.Run(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(jobs) {
		t.Fatalf("%d outcomes for %d jobs", len(outs), len(jobs))
	}
	st := q.Stats()
	if st.LocalDone != 1 || st.LocalPending != 0 {
		t.Fatalf("local fallback counters: %+v, want exactly 1 done", st)
	}
	if st.Done != len(jobs)-1 {
		t.Fatalf("leased cells done = %d, want %d", st.Done, len(jobs)-1)
	}
}

package campaign

import (
	"testing"
	"time"
)

func waitTerminal(t *testing.T, c *Campaign) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := c.Status()
		if st.State != StateRunning {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s did not finish", c.ID)
	return Status{}
}

func TestEngineLifecycle(t *testing.T) {
	e := NewEngine(4, nil)
	if _, err := e.Submit(Spec{}); err == nil {
		t.Fatal("invalid spec must fail synchronously")
	}

	c, err := e.Submit(Spec{Name: "life", Benchmarks: []string{"spin"}, Seeds: []int64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	ch, unsub := c.Subscribe()
	defer unsub()

	st := waitTerminal(t, c)
	if st.State != StateDone {
		t.Fatalf("state %s, want done (%s)", st.State, st.Error)
	}
	if st.Done != 3 || st.Total != 3 {
		t.Fatalf("progress counters wrong: %+v", st)
	}

	var progress, terminal int
	for ev := range ch {
		switch ev.Type {
		case "progress":
			progress++
		case "state":
			terminal++
			if ev.State != StateDone {
				t.Fatalf("terminal event state %s", ev.State)
			}
		}
	}
	if progress != 3 || terminal != 1 {
		t.Fatalf("event stream had %d progress / %d state events", progress, terminal)
	}

	rs := c.Results()
	if rs == nil || rs.Total != 3 || rs.Errors != 0 {
		t.Fatalf("results missing or wrong: %+v", rs)
	}

	// A late subscriber replays the full log of a finished campaign.
	ch2, unsub2 := c.Subscribe()
	defer unsub2()
	n := 0
	for range ch2 {
		n++
	}
	if n != 4 {
		t.Fatalf("replay delivered %d events, want 4", n)
	}

	if got, ok := e.Get(c.ID); !ok || got != c {
		t.Fatal("Get lost the campaign")
	}
	if l := e.List(); len(l) != 1 || l[0].ID != c.ID {
		t.Fatalf("List wrong: %+v", l)
	}
}

func TestEngineSharedCacheAcrossCampaigns(t *testing.T) {
	e := NewEngine(4, nil)
	spec := Spec{Name: "shared", Benchmarks: []string{"matrixmul"}, Seeds: []int64{5, 6}}
	c1, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, c1); st.CacheHits != 0 {
		t.Fatalf("first campaign hit cache: %+v", st)
	}
	c2, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, c2)
	if st.CacheHits != st.Total {
		t.Fatalf("resubmitted campaign: %d/%d cache hits", st.CacheHits, st.Total)
	}
	if st.ColdJobs != 0 {
		t.Fatalf("resubmitted campaign reports %d cold jobs", st.ColdJobs)
	}
	if st.SimCycles != waitTerminal(t, c1).SimCycles {
		t.Fatal("cached campaign delivered different simulated work than the cold one")
	}
	if c1.Results().Fingerprint != c2.Results().Fingerprint {
		t.Fatal("resubmission changed the result fingerprint")
	}
}

func TestEngineCancel(t *testing.T) {
	// One worker and a long seed grid leave time to cancel.
	e := NewEngine(1, nil)
	seeds := make([]int64, 64)
	for i := range seeds {
		seeds[i] = int64(i)
	}
	c, err := e.Submit(Spec{Name: "cancel", Benchmarks: []string{"matrixmul"}, Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Cancel(c.ID) {
		t.Fatal("cancel reported unknown campaign")
	}
	st := waitTerminal(t, c)
	if st.State != StateCancelled && st.Done != st.Total {
		t.Fatalf("after cancel: %+v", st)
	}
	if e.Cancel("c999999") {
		t.Fatal("cancelling unknown ID must report false")
	}
}

package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"astro/internal/telemetry"
)

// TestWireCampaignFieldInert pins the inertness invariant for the telemetry
// fields on the wire envelopes: WireJob.Campaign is never read by
// Job()/TrainSpec(), so it cannot reach the recomputed content key, the
// execution, or the result bytes. The key-mismatch check that catches any
// tampered identity field (TestWireJobRoundTrip) therefore passes unchanged
// no matter what Campaign holds — including after a JSON round trip.
func TestWireCampaignFieldInert(t *testing.T) {
	w := wireJobs(t, 1)[0]
	if w.Campaign != "" {
		t.Fatalf("fresh wire job carries campaign %q", w.Campaign)
	}
	stamped := *w
	stamped.Campaign = "c000042"
	data, err := json.Marshal(&stamped)
	if err != nil {
		t.Fatal(err)
	}
	var rt WireJob
	if err := json.Unmarshal(data, &rt); err != nil {
		t.Fatal(err)
	}
	if rt.Campaign != "c000042" {
		t.Fatalf("campaign annotation lost in transit: %q", rt.Campaign)
	}
	j, err := rt.Job()
	if err != nil {
		t.Fatalf("campaign-stamped wire job rejected: %v", err)
	}
	if key, ok := j.Key(); !ok || key != w.Key {
		t.Fatalf("campaign annotation changed the key: %q vs %q", key, w.Key)
	}

	wt := wireTrainCell(t, 31)
	wt.Campaign = "c000042"
	ts, err := wt.TrainSpec()
	if err != nil {
		t.Fatalf("campaign-stamped train cell rejected: %v", err)
	}
	if key, err := ts.Key(); err != nil || key != wt.Key {
		t.Fatalf("campaign annotation changed the train key: %q (err %v) vs %q", key, err, wt.Key)
	}
}

// TestFleetAndTraceAssembly is the loopback acceptance test for the fleet
// observability surface: a sweep through two pull-based workers over real
// HTTP yields live /work/fleet rows and a coordinator-assembled
// cross-machine trace per cell — the coordinator's lease_wait span joined
// with the worker's queued and execute spans from the result envelope —
// grouped under the submitting campaign's ID.
func TestFleetAndTraceAssembly(t *testing.T) {
	store := NewMemStore()
	q := NewWorkQueue(time.Minute)
	q.Store = store
	srv := httptest.NewServer(http.StripPrefix("/work", WorkHandler(q, store)))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, id := range []string{"worker-a", "worker-b"} {
		w := &Worker{Coordinator: srv.URL + "/work", ID: id, Max: 2, Poll: 5 * time.Millisecond}
		go w.Run(ctx)
	}

	spec := Spec{
		Benchmarks: []string{"micro"},
		Schedulers: []string{"default"},
		Seeds:      []int64{0, 1},
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	runner := &RemoteRunner{Queue: q, Store: store}
	runCtx := WithCampaignID(context.Background(), "c-fleet-test")
	outs, err := runner.Run(runCtx, jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(jobs) {
		t.Fatalf("got %d outcomes for %d jobs", len(outs), len(jobs))
	}

	// One assembled trace per completed cell, grouped by campaign.
	traces := q.Traces.List("c-fleet-test", 0)
	if len(traces) != len(jobs) {
		t.Fatalf("assembled %d traces for %d cells", len(traces), len(jobs))
	}
	for _, tr := range traces {
		if tr.Worker == "" || tr.Kind != "sim" || tr.Campaign != "c-fleet-test" {
			t.Fatalf("trace incomplete: %+v", tr)
		}
		names := map[string]bool{}
		for _, s := range tr.Spans {
			names[s.Name] = true
		}
		for _, want := range []string{"lease_wait", "queued", "execute"} {
			if !names[want] {
				t.Fatalf("trace %s missing span %q: %+v", tr.Key, want, tr.Spans)
			}
		}
	}

	// The derived fleet view adds up: every completion is attributed, every
	// row carries liveness columns, and nothing is still leased.
	fleet := q.Fleet()
	total := 0
	for _, fw := range fleet.Workers {
		total += fw.Completed
		if fw.FirstSeen.IsZero() || fw.AgeS < 0 || fw.IdleS < 0 {
			t.Fatalf("fleet row missing liveness: %+v", fw)
		}
		if fw.Leased != 0 || fw.InFlight != "" {
			t.Fatalf("drained fleet still shows in-flight work: %+v", fw)
		}
	}
	if total != len(jobs) {
		t.Fatalf("fleet rows account for %d completions, want %d", total, len(jobs))
	}

	// The same views over HTTP.
	var httpFleet FleetStatus
	getJSON(t, srv.URL+"/work/fleet", &httpFleet)
	if len(httpFleet.Workers) != len(fleet.Workers) {
		t.Fatalf("/work/fleet shows %d workers, want %d", len(httpFleet.Workers), len(fleet.Workers))
	}
	var httpTraces []telemetry.Trace
	getJSON(t, srv.URL+"/work/traces?campaign=c-fleet-test&n="+fmt.Sprint(len(jobs)), &httpTraces)
	if len(httpTraces) != len(jobs) {
		t.Fatalf("/work/traces returned %d traces, want %d", len(httpTraces), len(jobs))
	}
	var one telemetry.Trace
	getJSON(t, srv.URL+"/work/traces/"+httpTraces[0].Key, &one)
	if one.Key != httpTraces[0].Key || len(one.Spans) == 0 {
		t.Fatalf("/work/traces/{key} returned %+v", one)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// TestNoteWorkerLeaseErrors pins the self-reported lease-error semantics:
// the count is a cumulative max (lease requests may arrive out of order),
// and a report can never mint a worker row that no lease created.
func TestNoteWorkerLeaseErrors(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	q.NoteWorkerLeaseErrors("ghost", 7)
	if st := q.Stats(); len(st.Workers) != 0 {
		t.Fatalf("lease-error report minted a worker row: %+v", st.Workers)
	}
	q.Lease("w1", 1) // registers the worker (queue is empty; that is fine)
	q.NoteWorkerLeaseErrors("w1", 3)
	q.NoteWorkerLeaseErrors("w1", 2) // stale, lower: ignored
	st := q.Stats()
	if len(st.Workers) != 1 || st.Workers[0].LeaseErrors != 3 {
		t.Fatalf("lease errors = %+v, want w1:3", st.Workers)
	}
}

// TestWorkStatusHammer is the satellite-2 regression test: many goroutines
// lease, renew, complete, error and abandon cells concurrently against a
// short real TTL (so leases genuinely expire and re-issue mid-hammer),
// while another goroutine snapshots /work/status. At the end the counters
// must sum consistently: nothing pending or leased, every cell finished
// exactly once, and the per-worker Completed columns add up to exactly the
// accepted completions. Run under -race in CI.
func TestWorkStatusHammer(t *testing.T) {
	wires := wireJobs(t, 2)
	data := validResult(t, wires[0]) // any canonical bytes pass validation

	q := NewWorkQueue(40 * time.Millisecond)
	const cells = 64
	var finished, failed atomic.Int64
	for i := 0; i < cells; i++ {
		w := *wires[i%len(wires)]
		w.Key = fmt.Sprintf("%064x", i+1) // distinct synthetic content keys
		q.Enqueue(&w, func(_ []byte, err error) {
			if err != nil {
				failed.Add(1) // exhausted its attempts on errors/expiries
			}
			finished.Add(1)
		})
	}

	var accepted atomic.Int64
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() { // concurrent /work/status reader
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				st := q.Stats()
				if st.Pending < 0 || st.Leased < 0 {
					panic(fmt.Sprintf("negative population: %+v", st))
				}
				q.Fleet()
				time.Sleep(time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for wi := 0; wi < 6; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			id := fmt.Sprintf("hammer-%d", wi)
			step := 0
			for finished.Load() < cells {
				leased := q.Lease(id, 2)
				if len(leased) == 0 {
					time.Sleep(2 * time.Millisecond)
					continue
				}
				for _, c := range leased {
					step++
					switch step % 5 {
					case 0:
						// Abandon: let the lease expire and re-issue.
					case 1:
						q.Complete(id, c.Key, nil, "induced failure")
					case 2:
						keys := q.Renew(id, []string{c.Key})
						if len(keys) > 1 {
							panic("renewed more keys than named")
						}
						fallthrough
					default:
						if q.Complete(id, c.Key, data, "") == CompleteAccepted {
							accepted.Add(1)
						}
					}
				}
			}
		}(wi)
	}
	wg.Wait()
	close(stop)
	snaps.Wait()
	q.Sweep()

	st := q.Stats()
	if st.Pending != 0 || st.Leased != 0 {
		t.Fatalf("drained queue still has pending=%d leased=%d", st.Pending, st.Leased)
	}
	if st.Done != cells {
		t.Fatalf("queue done=%d, want %d", st.Done, cells)
	}
	if got := finished.Load(); got != cells {
		t.Fatalf("waiters fired %d times for %d cells", got, cells)
	}
	var completed, leasedNow int
	for _, w := range st.Workers {
		completed += w.Completed
		leasedNow += w.Leased
	}
	if int64(completed) != accepted.Load() {
		t.Fatalf("per-worker Completed sums to %d, accepted %d", completed, accepted.Load())
	}
	if leasedNow != 0 {
		t.Fatalf("per-worker Leased sums to %d after drain", leasedNow)
	}
	// Every cell either completed exactly once or failed permanently after
	// exhausting its attempts; the two partitions cover the queue.
	if int64(completed)+failed.Load() != cells {
		t.Fatalf("completed %d + failed %d != %d cells", completed, failed.Load(), cells)
	}
}

package campaign

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"astro/internal/hw"
	"astro/internal/sim"
	"astro/internal/workloads"
)

// testSpec is a small but non-trivial grid over the micro benchmarks:
// 2 benchmarks x 2 schedulers x 2 configs x 2 seeds = 16 jobs.
func testSpec() Spec {
	return Spec{
		Name:       "unit",
		Benchmarks: []string{"micro"},
		Schedulers: []string{"default", "gts"},
		Configs:    []string{"1L1B", "4L4B"},
		Seeds:      []int64{1, 2},
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{},                             // no benchmarks
		{Benchmarks: []string{"nope"}}, // unknown benchmark
		{Benchmarks: []string{"spin"}, Scale: "huge"},
		{Benchmarks: []string{"spin"}, Platforms: []string{"cray"}},
		{Benchmarks: []string{"spin"}, Schedulers: []string{"fifo"}},
		{Benchmarks: []string{"spin"}, Configs: []string{"9L9B"}},
		{Benchmarks: []string{"spin"}, Configs: []string{"0L0B"}},
		{Benchmarks: []string{"spin"}, Schedulers: []string{"fixed:bogus"}},
		// 2L3B parses but is invalid on the TK1 (1 LITTLE, 4 big): an
		// unchecked fixed: actuator would silently measure the all-on
		// default under a "fixed:2L3B" label.
		{Benchmarks: []string{"spin"}, Platforms: []string{"jetson-tk1"}, Schedulers: []string{"fixed:2L3B"}},
		{Benchmarks: []string{"spin"}, Schedulers: []string{"fixed:9L9B"}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d: expected validation error, got none", i)
		}
	}
	good := testSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
}

func TestSpecExpand(t *testing.T) {
	spec := testSpec()
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	micro := len(workloads.Suite("micro"))
	want := micro * 2 * 2 * 2
	if len(jobs) != want {
		t.Fatalf("expanded to %d jobs, want %d", len(jobs), want)
	}
	for i, j := range jobs {
		if j.Index != i {
			t.Errorf("job %d has index %d", i, j.Index)
		}
		if j.Module == nil || j.Label == "" {
			t.Errorf("job %d incomplete: %+v", i, j)
		}
	}
	// Cross-product sweep of all configurations.
	all := Spec{Benchmarks: []string{"spin"}, Configs: []string{"all"}}
	jobs, err = all.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if n := hw.OdroidXU4().NumConfigs(); len(jobs) != n {
		t.Fatalf("config sweep expanded to %d jobs, want %d", len(jobs), n)
	}
	// Modules are compiled once per benchmark and shared across the grid.
	spec2 := testSpec()
	jobs, err = spec2.Expand()
	if err != nil {
		t.Fatal(err)
	}
	mods := map[string]interface{}{}
	for _, j := range jobs {
		if prev, ok := mods[j.Benchmark]; ok && prev != j.Module {
			t.Fatalf("benchmark %s compiled more than once", j.Benchmark)
		}
		mods[j.Benchmark] = j.Module
	}
}

func TestJobKey(t *testing.T) {
	spec := testSpec()
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for _, j := range jobs {
		key, ok := j.Key()
		if !ok {
			t.Fatalf("job %s not cacheable", j.Label)
		}
		if prev, dup := seen[key]; dup {
			t.Fatalf("key collision between %s and %s", prev, j.Label)
		}
		seen[key] = j.Label
		// The key is stable across recomputation.
		again, _ := j.Key()
		if again != key {
			t.Fatalf("job %s: unstable key", j.Label)
		}
	}
	// Seed/Args/InitialConfig stashed in Opts do not leak into the key.
	j := *jobs[0]
	k1, _ := j.Key()
	j.Opts.Seed, j.Opts.Args = 999, []int64{9, 9}
	k2, _ := j.Key()
	if k1 != k2 {
		t.Fatal("Opts seed/args changed the key; they are carried by job fields")
	}
	// Custom hybrid policies without a name are uncacheable.
	j.Hybrid = func() sim.HybridPolicy { return nopHybrid{} }
	if _, ok := j.Key(); ok {
		t.Fatal("unnamed hybrid policy must be uncacheable")
	}
	j.HybridKey = "named"
	if _, ok := j.Key(); !ok {
		t.Fatal("named hybrid policy must be cacheable")
	}
}

// nopHybrid is a throwaway sim.HybridPolicy for key tests.
type nopHybrid struct{}

func (nopHybrid) DetermineConfig(s sim.HybridState) hw.Config { return s.Config }

func TestPoolErrorsAggregate(t *testing.T) {
	jobs, err := (&Spec{Benchmarks: []string{"spin"}, Seeds: []int64{1, 2, 3}}).Expand()
	if err != nil {
		t.Fatal(err)
	}
	jobs[1].Args = []int64{1} // main(scale, threads) takes 2 args -> sim.New error
	p := &Pool{Workers: 2, Store: NewMemStore()}
	outs, err := p.Run(context.Background(), jobs, nil)
	if err == nil {
		t.Fatal("expected aggregated error")
	}
	if !strings.Contains(err.Error(), "job 1") {
		t.Fatalf("error does not name the failing job: %v", err)
	}
	if outs[0].Err != nil || outs[2].Err != nil {
		t.Fatalf("healthy jobs were poisoned: %v %v", outs[0].Err, outs[2].Err)
	}
	if outs[1].Err == nil {
		t.Fatal("failing job reported no error")
	}
	rs := Aggregate("errs", outs)
	if rs.Errors != 1 || rs.Total != 3 {
		t.Fatalf("aggregate counters wrong: %+v", rs)
	}
}

func TestPoolCancellation(t *testing.T) {
	jobs, err := (&Spec{Benchmarks: []string{"spin"}, Seeds: []int64{1, 2, 3, 4, 5}}).Expand()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{Workers: 1}
	outs, err := p.Run(ctx, jobs, func(pr Progress) {
		if pr.Done == 1 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("expected context error in aggregate")
	}
	if outs[0].Err != nil || outs[0].Result == nil {
		t.Fatalf("first job should have completed: %+v", outs[0])
	}
	cancelled := 0
	for _, o := range outs[1:] {
		if o.Err == context.Canceled {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no job observed the cancellation")
	}
}

func TestStoreDiskTier(t *testing.T) {
	dir := t.TempDir()
	jobs, err := (&Spec{Benchmarks: []string{"matrixmul"}, Seeds: []int64{7}}).Expand()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := &Pool{Workers: 2, Store: s1}
	outs, err := p.Run(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if CacheHits(outs) != 0 {
		t.Fatal("cold run reported cache hits")
	}

	// A fresh store over the same directory serves the whole campaign from
	// disk: zero fresh simulations.
	s2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	p2 := &Pool{Workers: 2, Store: s2}
	outs2, err := p2.Run(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if CacheHits(outs2) != len(jobs) {
		t.Fatalf("warm disk run: %d/%d cache hits", CacheHits(outs2), len(jobs))
	}
	if _, _, puts := s2.Stats(); puts != 0 {
		t.Fatalf("warm run wrote %d fresh results", puts)
	}
	for i := range outs {
		if !bytes.Equal(outs[i].Bytes, outs2[i].Bytes) {
			t.Fatalf("job %d: disk round-trip changed result bytes", i)
		}
	}
}

func TestAggregateShape(t *testing.T) {
	spec := testSpec()
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	p := &Pool{Workers: 4, Store: NewMemStore()}
	outs, err := p.Run(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs := Aggregate("unit", outs)
	// 2 benchmarks x 2 schedulers x 2 configs = 8 cells, 2 seeds each.
	if len(rs.Cells) != 8 {
		t.Fatalf("%d cells, want 8", len(rs.Cells))
	}
	for _, c := range rs.Cells {
		if c.Jobs != 2 || c.Time.N != 2 {
			t.Errorf("cell %+v: want 2 samples", c)
		}
		if c.Time.Mean <= 0 || c.Energy.Mean <= 0 {
			t.Errorf("cell %+v: degenerate summary", c)
		}
	}
	out := rs.Render()
	if !strings.Contains(out, "fingerprint") || !strings.Contains(out, "spin") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

func TestValidateScheduler(t *testing.T) {
	for _, tok := range []string{"", "default", "gts", "octopus-man", "fixed:2L2B", "random:7"} {
		if err := ValidateScheduler(tok); err != nil {
			t.Errorf("ValidateScheduler(%q): %v", tok, err)
		}
	}
	for _, tok := range []string{"warp", "fixed:", "fixed:zzz", "fixed:0L0B", "random:x"} {
		if err := ValidateScheduler(tok); err == nil {
			t.Errorf("ValidateScheduler(%q) should fail", tok)
		}
	}
}

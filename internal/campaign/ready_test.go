package campaign

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"
)

func checkByName(t *testing.T, st ReadyStatus, name string) ReadyCheck {
	t.Helper()
	for _, c := range st.Checks {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("no %q check in %+v", name, st)
	return ReadyCheck{}
}

// TestReadinessProbes walks the coordinator through the readiness
// transitions an operator would see: sweeper not started, healthy idle,
// outstanding work with a silent fleet, and a fresh worker clearing it.
func TestReadinessProbes(t *testing.T) {
	q := NewWorkQueue(time.Minute)

	// No sweeper yet: not ready, and the sweeper check says why.
	st := Readiness(q, nil)
	if st.Ready {
		t.Fatalf("ready before StartSweeper: %+v", st)
	}
	if c := checkByName(t, st, "sweeper"); c.OK || c.Detail != "not started" {
		t.Fatalf("sweeper check: %+v", c)
	}
	if c := checkByName(t, st, "store"); !c.OK {
		t.Fatalf("nil store should pass: %+v", c)
	}

	stop := q.StartSweeper(time.Hour)
	defer stop()

	// Idle queue with a live sweeper is ready: coordinators are routable
	// before their first campaign arrives.
	if st := Readiness(q, nil); !st.Ready {
		t.Fatalf("idle queue not ready: %+v", st)
	}

	// Outstanding work, fleet silent: the workers probe trips.
	w := wireJobs(t, 1)[0]
	q.Enqueue(w, func([]byte, error) {})
	st = Readiness(q, nil)
	if st.Ready {
		t.Fatalf("ready with outstanding work and no workers: %+v", st)
	}
	if c := checkByName(t, st, "workers"); c.OK {
		t.Fatalf("workers check passed with silent fleet: %+v", c)
	}

	// A worker contacting the queue (real clock: LastSeen is now)
	// clears it.
	if got := q.Lease("w1", 1); len(got) != 1 {
		t.Fatalf("lease: %+v", got)
	}
	if st := Readiness(q, nil); !st.Ready {
		t.Fatalf("not ready with fresh worker: %+v", st)
	}
}

// TestReadinessSweeperStale pins the wedged-sweeper detection: a last
// sweep far older than 4 intervals fails the probe even though the
// sweeper goroutine is nominally running.
func TestReadinessSweeperStale(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	stop := q.StartSweeper(time.Hour)
	defer stop()
	fakeClock(q) // pins q.now deep in the past
	q.Sweep()    // records an ancient lastSweep
	st := Readiness(q, nil)
	if st.Ready {
		t.Fatalf("ready with stale sweeper: %+v", st)
	}
	if c := checkByName(t, st, "sweeper"); c.OK {
		t.Fatalf("sweeper check passed despite staleness: %+v", c)
	}
}

// TestStoreHealthy covers the disk probe: writable dir passes,
// memory-only passes trivially, missing dir fails.
func TestStoreHealthy(t *testing.T) {
	if err := probeDirWritable(t.TempDir()); err != nil {
		t.Fatalf("writable dir: %v", err)
	}
	if err := probeDirWritable(""); err != nil {
		t.Fatalf("memory-only: %v", err)
	}
	if err := probeDirWritable(filepath.Join(t.TempDir(), "gone")); err == nil {
		t.Fatal("missing dir reported healthy")
	}
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Healthy(); err != nil {
		t.Fatalf("fresh store unhealthy: %v", err)
	}
}

// TestReadinessStorePressure pins the bounded-store probe: a capped
// store within its cap passes; one held over the cap by pinned bytes —
// the only way a bounded store can stay over it — fails with the pinned
// pressure named, and clears once the pins release and eviction runs.
func TestReadinessStorePressure(t *testing.T) {
	store, err := NewStoreWith(t.TempDir(), StoreConfig{MaxBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	q := NewWorkQueue(time.Minute)
	stop := q.StartSweeper(time.Hour)
	defer stop()

	if err := store.Put(testKey(1), valFor(1, 256)); err != nil {
		t.Fatal(err)
	}
	if st := Readiness(q, store); !st.Ready {
		t.Fatalf("within-cap store not ready: %+v", st)
	}
	if c := checkByName(t, Readiness(q, store), "store_pressure"); !c.OK {
		t.Fatalf("store_pressure failed within cap: %+v", c)
	}

	// Pin everything, then overfill: eviction has nowhere to go and the
	// store sits over cap — the probe must trip.
	for i := 1; i <= 4; i++ {
		store.Pin(testKey(i))
		if err := store.Put(testKey(i), valFor(i, 256)); err != nil {
			t.Fatal(err)
		}
	}
	st := Readiness(q, store)
	if st.Ready {
		t.Fatalf("ready with pinned bytes over the cap: %+v", st)
	}
	if c := checkByName(t, st, "store_pressure"); c.OK {
		t.Fatalf("store_pressure passed over cap: %+v", c)
	}

	// Releasing the pins lets the next write evict back under the cap.
	for i := 1; i <= 4; i++ {
		store.Unpin(testKey(i))
	}
	if err := store.Put(testKey(5), valFor(5, 64)); err != nil {
		t.Fatal(err)
	}
	if c := checkByName(t, Readiness(q, store), "store_pressure"); !c.OK {
		t.Fatalf("store_pressure still failing after pins released: %+v", c)
	}
}

// TestReadyHandlerHTTP checks the wire shape: 503 + JSON body naming the
// failing check, then 200 once the coordinator is actually ready.
func TestReadyHandlerHTTP(t *testing.T) {
	q := NewWorkQueue(time.Minute)
	srv := httptest.NewServer(ReadyHandler(q, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var st ReadyStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || st.Ready {
		t.Fatalf("pre-sweeper: status %d, body %+v", resp.StatusCode, st)
	}
	if c := checkByName(t, st, "sweeper"); c.OK {
		t.Fatalf("sweeper check in body: %+v", c)
	}

	stop := q.StartSweeper(time.Hour)
	defer stop()
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !st.Ready {
		t.Fatalf("post-sweeper: status %d, body %+v", resp.StatusCode, st)
	}
}

package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"astro/internal/stats"
	"astro/internal/tablefmt"
)

// Cell aggregates the outcomes of one (benchmark, platform, scheduler,
// config) grid point across its seeds.
type Cell struct {
	Benchmark string `json:"benchmark"`
	Platform  string `json:"platform"`
	Scheduler string `json:"scheduler"`
	Config    string `json:"config"`

	Jobs      int `json:"jobs"`
	CacheHits int `json:"cache_hits"`
	Errors    int `json:"errors"`

	Time   stats.Summary `json:"time_s"`
	Energy stats.Summary `json:"energy_j"`
	MIPS   stats.Summary `json:"mips"`
}

// ResultSet is a campaign's aggregated outcome: one cell per grid point
// plus whole-campaign counters and a content fingerprint.
type ResultSet struct {
	Name      string `json:"name,omitempty"`
	Total     int    `json:"total"`
	CacheHits int    `json:"cache_hits"`
	Errors    int    `json:"errors"`
	// Fingerprint is the SHA-256 over every job's canonical result bytes in
	// job order — two campaigns with equal fingerprints produced
	// byte-identical result sets, regardless of worker count or cache
	// temperature.
	Fingerprint string `json:"fingerprint"`
	Cells       []Cell `json:"cells"`
}

// schedulerLabel reconstructs the spec token from job fields.
func schedulerLabel(j *Job) string {
	switch {
	case j.Actuator != "":
		return j.Actuator
	case j.OS != "":
		return j.OS
	}
	return "default"
}

func configLabel(j *Job) string {
	if j.Config.Cores() == 0 {
		return "all-on"
	}
	return j.Config.String()
}

// Fingerprint hashes every outcome's canonical result bytes in job order
// (failed or skipped jobs contribute an error marker).
func Fingerprint(outs []*Outcome) string {
	h := sha256.New()
	for i, o := range outs {
		fmt.Fprintf(h, "#%d\n", i)
		if o == nil || o.Err != nil || o.Bytes == nil {
			h.Write([]byte("<error>\n"))
			continue
		}
		h.Write(o.Bytes)
		h.Write([]byte("\n"))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Aggregate folds outcomes into a result set.
func Aggregate(name string, outs []*Outcome) *ResultSet {
	rs := &ResultSet{Name: name, Total: len(outs), Fingerprint: Fingerprint(outs)}
	type acc struct {
		cell             Cell
		times, ens, mips []float64
	}
	byKey := map[string]*acc{}
	var order []string
	for _, o := range outs {
		if o == nil {
			continue
		}
		j := o.Job
		key := strings.Join([]string{j.Benchmark, j.platformName(), schedulerLabel(j), configLabel(j)}, "\x00")
		a, ok := byKey[key]
		if !ok {
			a = &acc{cell: Cell{
				Benchmark: j.Benchmark,
				Platform:  j.platformName(),
				Scheduler: schedulerLabel(j),
				Config:    configLabel(j),
			}}
			byKey[key] = a
			order = append(order, key)
		}
		a.cell.Jobs++
		if o.CacheHit {
			a.cell.CacheHits++
			rs.CacheHits++
		}
		if o.Err != nil {
			a.cell.Errors++
			rs.Errors++
			continue
		}
		a.times = append(a.times, o.Result.TimeS)
		a.ens = append(a.ens, o.Result.EnergyJ)
		a.mips = append(a.mips, o.Result.MIPS())
	}
	sort.Strings(order)
	for _, key := range order {
		a := byKey[key]
		a.cell.Time = stats.Summarize(a.times)
		a.cell.Energy = stats.Summarize(a.ens)
		a.cell.MIPS = stats.Summarize(a.mips)
		rs.Cells = append(rs.Cells, a.cell)
	}
	return rs
}

// Render formats the result set for terminals.
func (rs *ResultSet) Render() string {
	var sb strings.Builder
	name := rs.Name
	if name == "" {
		name = "campaign"
	}
	fmt.Fprintf(&sb, "CAMPAIGN %s — %d jobs, %d cache hits, %d errors\n", name, rs.Total, rs.CacheHits, rs.Errors)
	fmt.Fprintf(&sb, "fingerprint %s\n\n", rs.Fingerprint[:16])
	tb := tablefmt.NewTable("benchmark", "platform", "sched", "config", "n", "time (s)", "±sd", "energy (J)", "MIPS")
	for _, c := range rs.Cells {
		tb.Row(c.Benchmark, c.Platform, c.Scheduler, c.Config, c.Time.N,
			c.Time.Mean, c.Time.SD, c.Energy.Mean, c.MIPS.Mean)
	}
	sb.WriteString(tb.String())
	return sb.String()
}

package campaign

import (
	"container/list"
	"sync"
)

// Bounded-store machinery: the pieces that turn the content-addressed
// result store from "grows forever" into a production tier with a byte
// cap. Three cooperating parts, all policy-free about *what* the bytes
// are (results, trained-agent snapshots — the store never knows):
//
//   - PinLedger: refcounts on content keys. A pinned key is never
//     evicted, no matter how cold; the WorkQueue pins a hybrid cell's
//     trained-agent snapshot on enqueue and unpins when the cell
//     finishes or is cancelled, so a snapshot referenced by a live
//     campaign survives any eviction pressure.
//   - hotCache: a byte-bounded LRU in front of the disk tier, replacing
//     the old unbounded in-memory map whenever a cap is configured.
//     Purely a cache: every entry also lives on disk (or did, before
//     disk eviction), so dropping one costs a re-read or a recompute,
//     never correctness.
//   - StoreConfig/Occupancy: the knobs and the live accounting that
//     /metrics, /readyz and the soak test read.
//
// The safety contract for all of it is DESIGN.md invariant 11: eviction
// may force recomputation, never corruption. Nothing here rewrites
// bytes; the only mutations are "remove a whole entry" (crash-safe: the
// entry is either fully present or absent) and "rewrite keys.idx
// atomically" (compaction, via the same writeFileAtomic discipline as
// values).

// StoreConfig bounds a disk-backed store. The zero value means
// unbounded — exactly the pre-cap behaviour.
type StoreConfig struct {
	// MaxBytes caps the disk tier: once the sum of stored value bytes
	// would exceed it, least-recently-used unpinned entries are evicted
	// (their files removed) until the store fits. 0 = unbounded.
	// A sharded store splits the cap evenly across shards.
	MaxBytes int64

	// HotBytes caps the in-memory hot cache fronting the disk tier.
	// 0 with MaxBytes set defaults to MaxBytes (memory never holds more
	// than the disk tier may); 0 with MaxBytes unset keeps the legacy
	// unbounded memory tier.
	HotBytes int64
}

func (c StoreConfig) bounded() bool { return c.MaxBytes > 0 || c.HotBytes > 0 }

// effHotBytes is the hot-cache cap the config resolves to.
func (c StoreConfig) effHotBytes() int64 {
	if c.HotBytes > 0 {
		return c.HotBytes
	}
	return c.MaxBytes
}

// Occupancy is a live snapshot of a bounded store's accounting: what
// /metrics gauges, the /readyz pressure probe, and the soak test's
// under-the-cap assertion all read.
type Occupancy struct {
	DiskBytes   int64  `json:"disk_bytes"`          // value bytes currently on disk
	CapBytes    int64  `json:"cap_bytes,omitempty"` // configured MaxBytes (summed over shards); 0 = unbounded
	DiskKeys    int    `json:"disk_keys"`           // distinct keys on disk
	PinnedKeys  int    `json:"pinned_keys"`         // keys currently pinned (refcount > 0)
	PinnedBytes int64  `json:"pinned_bytes"`        // on-disk bytes held by pinned keys
	HotBytes    int64  `json:"hot_bytes"`           // bytes resident in the hot cache
	HotCapBytes int64  `json:"hot_cap_bytes,omitempty"`
	DiskWrites  uint64 `json:"disk_writes"` // value files written (one per unique key)
	PutNoops    uint64 `json:"put_noops"`   // Puts of already-stored keys skipped without a write
	Evictions   uint64 `json:"evictions"`   // disk-tier entries evicted
}

// Occupant is implemented by stores that account their disk tier;
// readiness probes and the soak test consult it through the interface so
// plain and sharded stores are interchangeable.
type Occupant interface {
	Occupancy() Occupancy
}

// PinStore is the pinning seam: the WorkQueue pins a hybrid cell's
// trained-agent snapshot key on enqueue and unpins it when the cell
// finishes or is cancelled. Pins are refcounts — two campaigns sharing
// an agent pin it twice, and it stays protected until both let go.
// Pinning a key the store does not (yet) hold is legal: the pin applies
// the moment the bytes arrive.
type PinStore interface {
	Pin(key string)
	Unpin(key string)
}

// PinLedger is the refcount table behind PinStore. One ledger is shared
// by every shard of a store, so a pin protects a key wherever it lands.
type PinLedger struct {
	mu   sync.Mutex
	refs map[string]int
}

// NewPinLedger builds an empty ledger.
func NewPinLedger() *PinLedger {
	return &PinLedger{refs: map[string]int{}}
}

// Pin increments key's refcount.
func (l *PinLedger) Pin(key string) {
	if l == nil || key == "" {
		return
	}
	l.mu.Lock()
	l.refs[key]++
	gStorePinnedKeys.Set(float64(len(l.refs)))
	l.mu.Unlock()
}

// Unpin decrements key's refcount, dropping the pin at zero. Unpinning
// an unpinned key is a no-op (never panics, never goes negative): the
// cancel and finish paths may race benignly.
func (l *PinLedger) Unpin(key string) {
	if l == nil || key == "" {
		return
	}
	l.mu.Lock()
	if n, ok := l.refs[key]; ok {
		if n <= 1 {
			delete(l.refs, key)
		} else {
			l.refs[key] = n - 1
		}
	}
	gStorePinnedKeys.Set(float64(len(l.refs)))
	l.mu.Unlock()
}

// Pinned reports whether key currently holds any pin.
func (l *PinLedger) Pinned(key string) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	_, ok := l.refs[key]
	l.mu.Unlock()
	return ok
}

// PinnedKeys returns the currently pinned keys (unordered).
func (l *PinLedger) PinnedKeys() []string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]string, 0, len(l.refs))
	for k := range l.refs {
		out = append(out, k)
	}
	l.mu.Unlock()
	return out
}

// hotCache is the byte-bounded LRU memory tier. It is shared by every
// shard of a sharded store (the cache fronts the store, not a shard), so
// it has its own lock; it never calls back into any store, which keeps
// the lock ordering store.mu → hot.mu acyclic.
type hotCache struct {
	mu    sync.Mutex
	max   int64
	bytes int64
	lru   *list.List // front = most recently used; values are *hotEnt
	ent   map[string]*list.Element
}

type hotEnt struct {
	key  string
	data []byte
}

func newHotCache(maxBytes int64) *hotCache {
	return &hotCache{max: maxBytes, lru: list.New(), ent: map[string]*list.Element{}}
}

// get returns the cached bytes and marks the entry most-recently-used.
// It counts hot-tier hits/misses; the caller owns the store-level
// hit/miss accounting (a hot miss may still be a disk hit).
func (h *hotCache) get(key string) ([]byte, bool) {
	h.mu.Lock()
	e, ok := h.ent[key]
	if !ok {
		h.mu.Unlock()
		cHotMisses.Inc()
		return nil, false
	}
	h.lru.MoveToFront(e)
	data := e.Value.(*hotEnt).data
	h.mu.Unlock()
	cHotHits.Inc()
	return data, true
}

// put inserts (or refreshes) an entry and evicts from the cold end until
// the cache fits. An entry larger than the whole cache is not admitted —
// caching it would evict everything for a single key.
func (h *hotCache) put(key string, data []byte) {
	size := int64(len(data))
	if size > h.max {
		return
	}
	h.mu.Lock()
	if e, ok := h.ent[key]; ok {
		h.lru.MoveToFront(e)
		h.bytes += size - int64(len(e.Value.(*hotEnt).data))
		e.Value.(*hotEnt).data = data
	} else {
		h.ent[key] = h.lru.PushFront(&hotEnt{key: key, data: data})
		h.bytes += size
	}
	evicted := 0
	for h.bytes > h.max {
		back := h.lru.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*hotEnt)
		h.lru.Remove(back)
		delete(h.ent, ent.key)
		h.bytes -= int64(len(ent.data))
		evicted++
	}
	gHotBytes.Set(float64(h.bytes))
	h.mu.Unlock()
	if evicted > 0 {
		cHotEvictions.Add(uint64(evicted))
	}
}

// drop removes an entry (used when the disk tier evicts the key, so
// "evicted ⇒ next Get recomputes" holds crisply across both tiers).
func (h *hotCache) drop(key string) {
	h.mu.Lock()
	if e, ok := h.ent[key]; ok {
		h.lru.Remove(e)
		delete(h.ent, key)
		h.bytes -= int64(len(e.Value.(*hotEnt).data))
		gHotBytes.Set(float64(h.bytes))
	}
	h.mu.Unlock()
}

// size returns the resident byte count.
func (h *hotCache) size() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bytes
}

// lenKeys returns the resident entry count.
func (h *hotCache) lenKeys() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.ent)
}

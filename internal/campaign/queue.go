package campaign

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"astro/internal/journal"
	"astro/internal/sim"
	"astro/internal/telemetry"
)

// WorkQueue is the coordinator side of the pull-based worker protocol: a
// deduplicated queue of campaign cells — simulation and training leases
// alike — keyed by content address, with per-cell leases that expire and
// re-issue when a worker dies mid-cell and renew in-protocol while the
// holder keeps heartbeating.
//
// Cell lifecycle (the worker-protocol state machine, also documented in
// DESIGN.md):
//
//	          Enqueue                Lease                Complete(ok)
//	(absent) ────────▶ pending ──────────────▶ leased ────────────────▶ done
//	                      ▲                   ▲      │
//	                      │      Renew (held, │      │
//	                      │      unexpired) ──┘      │
//	                      │   lease expired, or      │
//	                      │   worker error, or       │
//	                      │   malformed result, or   │ attempts > MaxAttempts
//	                      │   holder drained past    ▼
//	                      └── its deadline ───────  done(err)
//
// Workers have their own state machine layered on top (tracked in
// WorkerStatus.State, exposed by /work/status and /work/fleet):
//
//	         Drain                    deadline passes
//	active ─────────▶ draining ──────────────────────▶ (held leases requeue)
//	   │    ▲            │ Resume
//	   │    └────────────┘
//	   │   QuarantineAfter rejected submissions        Resume
//	   └──────────────────────────────▶ quarantined ──────────▶ active
//
// Draining and quarantined workers receive no cells from Lease; their
// held leases still renew, and their valid results still complete cells
// (drain: "finish what you hold"; quarantine: a valid result is valid
// no matter who sent it — validation, not trust, guards the store).
//
// Invariants the failure-path tests pin:
//
//   - A key is enqueued once no matter how many campaigns want it; later
//     Enqueues of a pending/leased key attach additional waiters.
//   - A lease that expires re-queues the cell at the front (the retried
//     cell goes out before fresh work) and counts an attempt.
//   - Renewal extends exactly the named leases, only while the submitter
//     still holds them unexpired; a renew-after-expiry is rejected and the
//     expired cell is already waiting at the queue front.
//   - The first valid result wins; duplicate submissions — the expired
//     worker finishing late — are acknowledged as duplicates and change
//     nothing.
//   - A result that fails sim.DecodeResult is rejected before any waiter
//     (and therefore any store) sees it, and the cell is re-queued.
//   - Error or malformed submissions from a worker that no longer holds
//     the lease (it expired and the cell moved on) are ignored: a stale
//     failure must not re-queue or fail a cell a healthy worker is
//     executing.
//   - A cell that exhausts MaxAttempts completes with an error so campaigns
//     fail loudly instead of hanging on a poisoned cell.
//   - Done cells are evicted immediately: completed bytes live in the
//     ResultStore (which runners consult before enqueueing), a bounded
//     done-key set keeps duplicate detection, and a permanently failed
//     cell is forgotten entirely — a resubmitted campaign retries fresh
//     instead of replaying a stale error forever. The queue's footprint is
//     therefore proportional to in-flight work, not to history.
//
// All methods are safe for concurrent use. Time is read through an
// injectable clock so lease expiry is testable without sleeping.
type WorkQueue struct {
	// Store, when non-nil, receives every validated result the queue
	// accepts — including results whose waiters were all cancelled (a
	// cancelled campaign's in-flight cells), which would otherwise be
	// discarded with the simulation already paid for. Set it before
	// serving; it must be the same store the runners consult.
	Store ResultStore

	// Traces, when non-nil, receives one assembled per-cell trace on every
	// accepted completion: the worker's spans from the result envelope plus
	// the coordinator's own lease_wait span. NewWorkQueue installs a
	// bounded default store; GET /work/traces serves it.
	Traces *telemetry.TraceStore

	// Faults, when non-nil, injects coordinator-side faults (chaos
	// drills): FaultDrop on FaultOpComplete acknowledges a result
	// submission and then discards it, so the lease expires and the cell
	// re-issues — the "coordinator lost the result after the ack" case.
	// Set before serving.
	Faults FaultPolicy

	// QuarantineAfter is the rejected-submission count at which a worker
	// is quarantined (no further leases until Resume). NewWorkQueue sets
	// the default (3); non-positive disables quarantine. Set before
	// serving.
	QuarantineAfter int

	// Events, when non-nil, receives one journal.Event per lifecycle
	// transition — the flight-recorder seam. Emission never fails or
	// delays a queue operation (DESIGN.md invariant 10: journaling is
	// inert on campaign outputs). Set before serving.
	Events EventSink

	mu sync.Mutex

	ttl         time.Duration
	maxAttempts int
	now         func() time.Time

	order    []string // FIFO of (possibly stale) pending keys
	cells    map[string]*workCell
	leased   map[string]*workCell // the cellLeased subset of cells, so expiry sweeps touch only in-flight leases, not the whole campaign
	doneKeys map[string]bool      // successfully completed keys, for duplicate detection
	workers  map[string]*WorkerStatus

	nextWaiter int
	done       int
	requeues   uint64
	rejects    uint64
	duplicates uint64
	renewals   uint64

	// Cells the RemoteRunner routed to the coordinator's local fallback
	// pool (non-wireable jobs). They never enter the lease machinery, but
	// /work/status must still count them or a partial-fleet operator reads
	// "nothing pending, nothing leased" while the coordinator is quietly
	// simulating.
	localPending int
	localDone    uint64
	localErrors  uint64

	// Sweeper bookkeeping for /readyz: every entry point sweeps, so
	// lastSweep advances with traffic as well as with the ticker.
	sweeperOn     bool
	sweepInterval time.Duration
	lastSweep     time.Time
}

// maxDoneKeys bounds the duplicate-detection set. Past the cap it resets:
// the only cost is that a very late duplicate of a very old cell reports
// "unknown" instead of "duplicate" — workers ignore both.
const maxDoneKeys = 1 << 20

type cellState uint8

const (
	cellPending cellState = iota
	cellLeased
	cellDone
)

type workCell struct {
	wire     *WireJob
	state    cellState
	worker   string
	expires  time.Time
	attempts int
	waiters  map[int]func(data []byte, err error)

	// pinned is the trained-agent snapshot key this cell holds a store pin
	// on (hybrid cells reference their agent by content key; workers fetch
	// it from the coordinator's store, so a bounded store must not evict it
	// while this cell is in flight). Pinned on cell creation, unpinned
	// exactly once — when the cell finishes or its last waiter cancels.
	pinned string

	// Telemetry timestamps (never consulted by the lease machinery):
	// enqueuedAt→first lease is the lease_wait span; leasedAt anchors the
	// in-flight elapsed column of /work/fleet.
	enqueuedAt time.Time
	leasedAt   time.Time
}

// CompleteStatus is the coordinator's verdict on a result submission.
type CompleteStatus string

const (
	CompleteAccepted  CompleteStatus = "accepted"
	CompleteDuplicate CompleteStatus = "duplicate" // cell already done; submission ignored
	CompleteRejected  CompleteStatus = "rejected"  // malformed result; cell re-queued
	CompleteUnknown   CompleteStatus = "unknown"   // key never enqueued or withdrawn
)

// Worker states (WorkerStatus.State). The zero value is active so the
// JSON of a healthy fleet is unchanged from before draining existed.
const (
	WorkerActive      = ""            // leasing normally
	WorkerDraining    = "draining"    // finishes held leases, receives no new cells
	WorkerQuarantined = "quarantined" // repeatedly rejected submissions; receives no new cells
)

// WorkerStatus is one worker's view in /work/status: liveness and the
// lease/completion counters the operator watches during a multi-machine
// sweep.
type WorkerStatus struct {
	ID        string    `json:"id"`
	FirstSeen time.Time `json:"first_seen"`
	LastSeen  time.Time `json:"last_seen"`
	Leased    int       `json:"leased"` // cells currently leased to this worker
	Completed int       `json:"completed"`
	Errors    int       `json:"errors"`
	// State is WorkerActive (""), WorkerDraining, or WorkerQuarantined.
	// Draining and quarantined workers receive no cells from Lease.
	State string `json:"state,omitempty"`
	// Rejects counts this worker's submissions rejected by validation —
	// the signal quarantine triggers on (Errors also includes worker-side
	// execution failures, which are honest and must not quarantine).
	Rejects int `json:"rejects,omitempty"`
	// LeaseErrors is the worker's own cumulative count of failed lease
	// attempts (coordinator unreachable, HTTP 5xx), self-reported in each
	// lease request — the coordinator cannot observe connections that never
	// reached it.
	LeaseErrors uint64 `json:"lease_errors,omitempty"`

	// drainDeadline: while draining, when the coordinator stops waiting
	// and requeues whatever this worker still holds.
	drainDeadline time.Time
}

// QueueStats is the aggregate queue snapshot. The Local* counters cover
// cells the RemoteRunner executed on the coordinator's fallback pool
// (non-wireable jobs), so partial-fleet progress adds up:
// Done + LocalDone is every finished cell, leased or not.
type QueueStats struct {
	Pending      int            `json:"pending"`
	Leased       int            `json:"leased"`
	Done         int            `json:"done"`
	Requeues     uint64         `json:"requeues"`
	Rejects      uint64         `json:"rejects"`
	Duplicates   uint64         `json:"duplicates"`
	Renewals     uint64         `json:"renewals"`
	LocalPending int            `json:"local_pending"`
	LocalDone    uint64         `json:"local_done"`
	LocalErrors  uint64         `json:"local_errors"`
	Workers      []WorkerStatus `json:"workers"`
}

// DefaultLeaseTTL is how long a worker holds a cell before the coordinator
// re-issues it. It bounds the latency cost of a killed worker: its cells
// re-enter the queue one TTL later. Healthy workers renew their leases
// in-protocol (POST /work/renew, sent by the worker's heartbeat at a
// third of the TTL), so the TTL no longer needs to exceed the slowest
// cell — a short TTL coexists with long-running training cells, and only
// a worker that stops heartbeating loses its leases.
const DefaultLeaseTTL = 2 * time.Minute

// NewWorkQueue builds a queue with the given lease TTL (0 =
// DefaultLeaseTTL) and the default 3-attempt cap per cell.
func NewWorkQueue(ttl time.Duration) *WorkQueue {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	return &WorkQueue{
		ttl:             ttl,
		maxAttempts:     3,
		now:             time.Now,
		cells:           map[string]*workCell{},
		leased:          map[string]*workCell{},
		doneKeys:        map[string]bool{},
		workers:         map[string]*WorkerStatus{},
		Traces:          telemetry.NewTraceStore(0),
		QuarantineAfter: 3,
	}
}

// SetMaxAttempts overrides the per-cell lease-attempt cap (default 3).
// Chaos configurations raise it so injected faults burn attempts without
// failing cells; n < 1 is ignored.
func (q *WorkQueue) SetMaxAttempts(n int) {
	if n < 1 {
		return
	}
	q.mu.Lock()
	q.maxAttempts = n
	q.mu.Unlock()
}

// Enqueue registers a cell and a completion callback: the callback joins
// the waiters of the key's in-flight cell, or a fresh pending cell is
// created. (Completed cells are evicted — callers consult the ResultStore
// before enqueueing, so reaching Enqueue for an already-done key means the
// store lost the bytes and re-simulating is the correct response.) The
// returned cancel function detaches the callback and reports whether it
// succeeded: true means the callback will never be invoked (the caller
// owns the outcome); false means the callback has already run or is being
// invoked concurrently. Cancelling the last waiter of a still-pending cell
// drops the cell entirely — the campaign was cancelled before any worker
// picked it up.
func (q *WorkQueue) Enqueue(wire *WireJob, done func(data []byte, err error)) (cancel func() bool) {
	q.mu.Lock()
	c, ok := q.cells[wire.Key]
	if !ok {
		c = &workCell{wire: wire, waiters: map[int]func([]byte, error){}, enqueuedAt: q.now()}
		// A hybrid cell's trained-agent snapshot must survive in the store
		// until every worker that might lease this cell has fetched it:
		// pin it for the cell's lifetime (released in finishLocked or when
		// the last waiter cancels). Pinning is per-cell, not per-waiter —
		// the ledger refcounts across cells sharing an agent.
		if ps, ok := q.Store.(PinStore); ok && wire.AgentKey != "" {
			ps.Pin(wire.AgentKey)
			c.pinned = wire.AgentKey
		}
		q.cells[wire.Key] = c
		q.order = append(q.order, wire.Key)
		cQEnqueued.Inc()
		q.emit(journal.Event{Type: journal.EvEnqueue, Key: wire.Key, Kind: wire.Kind, Campaign: wire.Campaign})
	}
	id := q.nextWaiter
	q.nextWaiter++
	c.waiters[id] = done
	q.noteGaugesLocked()
	q.mu.Unlock()

	key := wire.Key
	return func() bool {
		q.mu.Lock()
		defer q.mu.Unlock()
		cc, ok := q.cells[key]
		if !ok || cc != c {
			return false
		}
		if _, attached := cc.waiters[id]; !attached {
			return false // finishLocked already snapshotted it
		}
		delete(cc.waiters, id)
		if len(cc.waiters) == 0 && cc.state == cellPending {
			// Lazy removal: the key stays in order but Lease skips cells
			// that are gone from the map.
			delete(q.cells, key)
			q.unpinLocked(cc)
			q.emit(journal.Event{Type: journal.EvCancel, Key: key})
		}
		return true
	}
}

// Lease hands out up to max pending cells to workerID, marking each leased
// until now+TTL. Expired leases are swept (re-queued) first, so a dead
// worker's cells are re-issued by the very next lease call from anyone.
// Draining and quarantined workers get nothing: their lease calls still
// refresh liveness (and still sweep), but no cell is issued to a worker
// that is leaving or untrusted.
func (q *WorkQueue) Lease(workerID string, max int) []*WireJob {
	if max <= 0 {
		max = 1
	}
	q.mu.Lock()
	now := q.now()
	expired := q.sweepLocked(now)
	w := q.workerLocked(workerID, now)
	if w.State != WorkerActive {
		q.noteGaugesLocked()
		q.mu.Unlock()
		expired()
		return nil
	}

	var out []*WireJob
	keep := q.order[:0]
	for _, key := range q.order {
		c, ok := q.cells[key]
		if !ok || c.state != cellPending {
			continue // stale entry (withdrawn, already leased via requeue, or done)
		}
		if len(out) < max {
			c.state = cellLeased
			c.worker = workerID
			c.expires = now.Add(q.ttl)
			c.attempts++
			c.leasedAt = now
			q.leased[key] = c
			w.Leased++
			out = append(out, c.wire)
			cQLeased.Inc()
			q.emit(journal.Event{Type: journal.EvLease, Key: key, Worker: workerID, Kind: c.wire.Kind, Attempt: c.attempts})
			if c.attempts == 1 {
				hQLeaseWait.Observe(now.Sub(c.enqueuedAt).Seconds())
			}
			continue
		}
		keep = append(keep, key)
	}
	q.order = keep
	q.noteGaugesLocked()
	q.mu.Unlock()
	expired()
	return out
}

// Complete records a worker's result for key. workerErr, when non-empty, is
// the worker reporting that it could not execute the cell (module decode
// failure, simulation error): the cell is re-queued, or failed outright
// once its attempts are exhausted. Valid data completes the cell and wakes
// every waiter; see CompleteStatus for the other verdicts.
//
// A valid result is accepted from any submitter — the first one wins, even
// a worker whose lease expired (its simulation is just as deterministic).
// Failure reports, by contrast, only count when the submitter still holds
// the lease: a stale error from an expired worker must not re-queue or
// fail a cell that a healthy worker is currently executing.
func (q *WorkQueue) Complete(workerID, key string, data []byte, workerErr string) CompleteStatus {
	return q.CompleteSpans(workerID, key, data, workerErr, nil)
}

// CompleteSpans is Complete with the worker's per-cell spans from the
// result envelope. On an accepted success the coordinator assembles the
// cross-machine trace: the worker's spans plus its own lease_wait span
// (enqueue → first lease), keyed by cell content key and annotated with
// the campaign that enqueued it.
func (q *WorkQueue) CompleteSpans(workerID, key string, data []byte, workerErr string, spans []telemetry.Span) CompleteStatus {
	// Chaos seam: a coordinator that loses a result after acknowledging
	// it. The worker moves on, the lease expires, the cell re-issues —
	// the protocol recovers exactly as it would from the real thing.
	if q.Faults != nil && workerErr == "" && q.Faults.Fault(FaultOpComplete, workerID, key) == FaultDrop {
		cQFaultsInjected.Inc()
		q.emit(journal.Event{Type: journal.EvFault, Key: key, Worker: workerID, Cause: "drop_complete"})
		return CompleteAccepted
	}
	q.mu.Lock()
	now := q.now()
	expired := q.sweepLocked(now)
	w := q.workerLocked(workerID, now)

	c, ok := q.cells[key]
	if !ok {
		var st CompleteStatus = CompleteUnknown
		if q.doneKeys[key] {
			q.duplicates++
			cQDuplicates.Inc()
			q.emit(journal.Event{Type: journal.EvDuplicate, Key: key, Worker: workerID})
			st = CompleteDuplicate
		}
		q.mu.Unlock()
		expired()
		// A valid result for a key the queue no longer tracks — the cell
		// was withdrawn, or failed after its leases expired while this
		// worker was still computing — is still finished work. Bank the
		// bytes so the next campaign wanting this key is warm. The cell's
		// kind is gone with the cell, so accept either canonical form.
		// Only well-formed content addresses may reach the store's path
		// logic (the HTTP handler rejects others; this guards direct
		// callers too).
		if st == CompleteUnknown && workerErr == "" && q.Store != nil && keyPattern.MatchString(key) {
			if validateWireResult(KindSim, data) == nil || validateWireResult(KindTrain, data) == nil {
				if q.Store.Put(key, data) == nil {
					q.emit(journal.Event{Type: journal.EvBank, Key: key, Worker: workerID})
				}
			}
		}
		return st
	}
	holds := c.state == cellLeased && c.worker == workerID
	if holds {
		w.Leased--
	}
	if workerErr != "" {
		w.Errors++
		q.emit(journal.Event{Type: journal.EvError, Key: key, Worker: workerID, Cause: workerErr})
		if !holds {
			// Stale failure report: the lease moved on. Ignore it.
			q.mu.Unlock()
			expired()
			return CompleteUnknown
		}
		st := q.retryOrFailLocked(c, key, "error", fmt.Errorf("campaign: worker %s: %s", workerID, workerErr))
		q.noteGaugesLocked()
		q.mu.Unlock()
		expired()
		st()
		return CompleteAccepted
	}
	// Validate before any waiter (and any store behind it) can see the
	// bytes: a malformed result must not poison the content-addressed
	// store, whose entries are trusted as canonical on every warm run.
	// Validation is per-kind — a training cell's bytes must be a
	// trained-agent snapshot whose agent restores, not merely JSON that
	// sim.DecodeResult tolerates.
	if err := validateWireResult(c.wire.Kind, data); err != nil {
		q.rejects++
		cQRejects.Inc()
		w.Errors++
		q.emit(journal.Event{Type: journal.EvReject, Key: key, Worker: workerID, Cause: err.Error()})
		q.noteRejectLocked(w)
		if !holds {
			// Stale garbage: reject without disturbing the current holder.
			q.mu.Unlock()
			expired()
			return CompleteRejected
		}
		st := q.retryOrFailLocked(c, key, "reject", fmt.Errorf("campaign: worker %s sent malformed result for %s: %w", workerID, key, err))
		q.noteGaugesLocked()
		q.mu.Unlock()
		expired()
		st()
		return CompleteRejected
	}
	// The cell is finishing; if another worker currently holds the lease
	// (ours expired and it was re-issued), release *its* lease accounting
	// too — its eventual submission will find the cell gone and report as
	// a duplicate, never reaching this bookkeeping.
	if c.state == cellLeased && !holds {
		if hw, ok := q.workers[c.worker]; ok {
			hw.Leased--
		}
	}
	w.Completed++
	if c.wire.Kind == KindTrain {
		cQDoneTrain.Inc()
	} else {
		cQDoneSim.Inc()
	}
	trace := q.assembleTraceLocked(c, key, workerID, now, spans)
	waiters := q.finishLocked(c, key, data, nil)
	q.noteGaugesLocked()
	q.mu.Unlock()
	expired()
	if q.Traces != nil {
		q.Traces.Add(trace)
	}
	// Keep the validated bytes even when every waiter was cancelled (a
	// cancelled campaign's in-flight cell): the simulation is done; a
	// future campaign wanting this key should hit the store, not
	// re-simulate.
	if q.Store != nil {
		_ = q.Store.Put(key, data)
	}
	// The completion is journaled only after the bytes reach the store
	// (write data, then log): a journaled EvComplete therefore implies
	// the result is banked, which is exactly what the postmortem audit
	// checks after a kill -9. The cost is that this one event is emitted
	// outside q.mu; Replay tolerates the benign reorderings that allows.
	q.emit(journal.Event{Type: journal.EvComplete, Key: key, Worker: workerID, Kind: c.wire.Kind, Attempt: c.attempts})
	waiters()
	return CompleteAccepted
}

// validateWireResult checks a submission's bytes against a cell kind's
// canonical form: simulation cells must decode as sim results, training
// cells must be trained-agent snapshots whose agent restores.
func validateWireResult(kind string, data []byte) error {
	if kind == KindTrain {
		_, err := restoreTrained(data)
		return err
	}
	_, err := sim.DecodeResult(data)
	return err
}

// Renew extends the leases workerID currently holds on keys to now+TTL and
// returns the keys actually renewed, in request order. A key renews only
// while its cell is still leased to this worker and unexpired: renewal
// after expiry is rejected — the sweep (run first, like every queue entry
// point) has already re-queued the cell at the queue front for the next
// healthy worker — and renewal never touches cells beyond those named, so
// one heartbeat cannot keep a whole worker's forgotten leases alive.
func (q *WorkQueue) Renew(workerID string, keys []string) []string {
	q.mu.Lock()
	now := q.now()
	expired := q.sweepLocked(now)
	// A renewal can only follow a lease, so it refreshes liveness for
	// known workers but never registers one: a stray or spoofed worker_id
	// must not mint permanent zero-count rows in /work/status.
	if w, ok := q.workers[workerID]; ok {
		w.LastSeen = now
	}
	var renewed []string
	for _, key := range keys {
		c, ok := q.cells[key]
		if !ok || c.state != cellLeased || c.worker != workerID || !c.expires.After(now) {
			continue
		}
		c.expires = now.Add(q.ttl)
		renewed = append(renewed, key)
	}
	q.renewals += uint64(len(renewed))
	cQRenewals.Add(uint64(len(renewed)))
	if len(renewed) > 0 {
		q.emit(journal.Event{Type: journal.EvRenew, Worker: workerID, N: len(renewed)})
	}
	q.noteGaugesLocked()
	q.mu.Unlock()
	expired()
	return renewed
}

// Drain flips workerID into the draining state: Lease returns it no new
// cells, while its held leases continue to renew and its submissions
// continue to complete cells. grace bounds the wait — anything the
// worker still holds when now+grace passes is requeued by the next sweep
// (0 = the lease TTL). Draining an unknown worker registers it, so an
// operator can pre-drain a worker that is about to connect. Returns a
// snapshot of the worker's status (Leased is the held-lease count the
// drain is waiting on). Re-draining refreshes the deadline; a
// quarantined worker stays quarantined (Resume clears both).
func (q *WorkQueue) Drain(workerID string, grace time.Duration) WorkerStatus {
	if grace <= 0 {
		grace = q.ttl
	}
	q.mu.Lock()
	now := q.now()
	expired := q.sweepLocked(now)
	w := q.workerLocked(workerID, now)
	if w.State == WorkerActive {
		w.State = WorkerDraining
		cQDrains.Inc()
		q.emit(journal.Event{Type: journal.EvDrain, Worker: workerID})
	}
	if w.State == WorkerDraining {
		w.drainDeadline = now.Add(grace)
	}
	snap := *w
	q.mu.Unlock()
	expired()
	return snap
}

// Resume returns a drained or quarantined worker to active: it leases
// again on its next poll. The rejection counter resets — quarantine is a
// circuit breaker, and resuming closes it.
func (q *WorkQueue) Resume(workerID string) WorkerStatus {
	q.mu.Lock()
	now := q.now()
	expired := q.sweepLocked(now)
	w := q.workerLocked(workerID, now)
	if w.State != WorkerActive {
		w.State = WorkerActive
		w.drainDeadline = time.Time{}
		w.Rejects = 0
		cQResumes.Inc()
		q.emit(journal.Event{Type: journal.EvResume, Worker: workerID})
	}
	snap := *w
	q.mu.Unlock()
	expired()
	return snap
}

// noteRejectLocked counts a rejected submission against its sender and
// quarantines the worker once it crosses QuarantineAfter: a worker whose
// results repeatedly fail validation is corrupting (bad build, bit
// flips, hostile) and must stop burning cells' attempt budgets. Its held
// leases are left to the normal expiry/reject paths — a valid result
// would still be accepted — it just gets nothing new.
func (q *WorkQueue) noteRejectLocked(w *WorkerStatus) {
	w.Rejects++
	if q.QuarantineAfter > 0 && w.Rejects >= q.QuarantineAfter && w.State != WorkerQuarantined {
		w.State = WorkerQuarantined
		w.drainDeadline = time.Time{}
		cQQuarantines.Inc()
		q.emit(journal.Event{Type: journal.EvQuarantine, Worker: w.ID})
	}
}

// StartSweeper runs Sweep on a background ticker so expired leases (and
// drained workers' overdue holds) requeue promptly even when no worker
// is polling — without it, expiry is only detected piggybacked on
// request handling. interval <= 0 picks TTL/4 clamped to [50ms, 30s].
// The returned stop is idempotent and must be called on shutdown.
func (q *WorkQueue) StartSweeper(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = q.ttl / 4
		if interval < 50*time.Millisecond {
			interval = 50 * time.Millisecond
		}
		if interval > 30*time.Second {
			interval = 30 * time.Second
		}
	}
	q.mu.Lock()
	q.sweeperOn = true
	q.sweepInterval = interval
	q.mu.Unlock()
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				q.Sweep()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// assembleTraceLocked builds the completed cell's cross-machine trace.
func (q *WorkQueue) assembleTraceLocked(c *workCell, key, workerID string, now time.Time, spans []telemetry.Span) telemetry.Trace {
	all := make([]telemetry.Span, 0, len(spans)+1)
	if !c.enqueuedAt.IsZero() && !c.leasedAt.IsZero() {
		all = append(all, telemetry.Span{
			Name:  "lease_wait",
			Host:  "coordinator",
			Start: c.enqueuedAt,
			DurS:  c.leasedAt.Sub(c.enqueuedAt).Seconds(),
		})
	}
	all = append(all, spans...)
	for _, s := range spans {
		if s.Name == "execute" {
			if c.wire.Kind == KindTrain {
				hQExecTrain.Observe(s.DurS)
			} else {
				hQExecSim.Observe(s.DurS)
			}
		}
	}
	kind := c.wire.Kind
	if kind == "" {
		kind = "sim"
	}
	return telemetry.Trace{
		Key:      key,
		Campaign: c.wire.Campaign,
		Kind:     kind,
		Worker:   workerID,
		Done:     now,
		Spans:    all,
	}
}

// noteGaugesLocked publishes the queue's live population gauges.
func (q *WorkQueue) noteGaugesLocked() {
	gQPending.Set(float64(len(q.cells) - len(q.leased)))
	gQLeased.Set(float64(len(q.leased)))
	gQWorkers.Set(float64(len(q.workers)))
}

// NoteWorkerLeaseErrors records a worker's self-reported cumulative count
// of failed lease attempts (sent in each lease request). It never
// registers a new worker: a report can only accompany a lease, which
// registers first.
func (q *WorkQueue) NoteWorkerLeaseErrors(workerID string, n uint64) {
	if n == 0 {
		return
	}
	q.mu.Lock()
	if w, ok := q.workers[workerID]; ok && n > w.LeaseErrors {
		w.LeaseErrors = n
	}
	q.mu.Unlock()
}

// FleetWorker is one row of /work/fleet: WorkerStatus plus derived
// liveness and throughput columns, and the worker's oldest in-flight
// cell with its elapsed lease time.
type FleetWorker struct {
	WorkerStatus
	AgeS          float64 `json:"age_s"`               // since first contact
	IdleS         float64 `json:"idle_s"`              // since last contact
	CellsPerSec   float64 `json:"cells_per_sec"`       // completed / age
	InFlight      string  `json:"in_flight,omitempty"` // oldest leased cell key
	InFlightKind  string  `json:"in_flight_kind,omitempty"`
	InFlightLabel string  `json:"in_flight_label,omitempty"`
	InFlightS     float64 `json:"in_flight_s,omitempty"` // elapsed on that cell
}

// FleetStatus is the /work/fleet payload.
type FleetStatus struct {
	Now     time.Time     `json:"now"`
	Workers []FleetWorker `json:"workers"`
}

// Fleet snapshots the per-worker registry with derived columns. Expired
// leases are swept first so the in-flight columns never show a lease the
// next request would revoke.
func (q *WorkQueue) Fleet() FleetStatus {
	q.mu.Lock()
	now := q.now()
	expired := q.sweepLocked(now)

	// Oldest in-flight cell per worker.
	type inflight struct {
		key, kind, label string
		since            time.Time
	}
	byWorker := map[string]inflight{}
	for key, c := range q.leased {
		cur, ok := byWorker[c.worker]
		if !ok || c.leasedAt.Before(cur.since) {
			kind := c.wire.Kind
			if kind == "" {
				kind = "sim"
			}
			byWorker[c.worker] = inflight{key: key, kind: kind, label: c.wire.Label, since: c.leasedAt}
		}
	}

	out := FleetStatus{Now: now}
	ids := make([]string, 0, len(q.workers))
	for id := range q.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		w := q.workers[id]
		fw := FleetWorker{WorkerStatus: *w}
		fw.AgeS = now.Sub(w.FirstSeen).Seconds()
		fw.IdleS = now.Sub(w.LastSeen).Seconds()
		if fw.AgeS > 0 {
			fw.CellsPerSec = float64(w.Completed) / fw.AgeS
		}
		if inf, ok := byWorker[id]; ok {
			fw.InFlight = inf.key
			fw.InFlightKind = inf.kind
			fw.InFlightLabel = inf.label
			fw.InFlightS = now.Sub(inf.since).Seconds()
		}
		out.Workers = append(out.Workers, fw)
	}
	q.mu.Unlock()
	expired()
	return out
}

// noteLocalStart / noteLocalDone / noteLocalAbandoned account for cells the
// RemoteRunner routes to the coordinator's fallback pool. Abandoned cells
// are those a cancelled run never finished reporting.
func (q *WorkQueue) noteLocalStart(n int) {
	q.mu.Lock()
	q.localPending += n
	q.mu.Unlock()
}

func (q *WorkQueue) noteLocalDone(errored bool) {
	q.mu.Lock()
	q.localPending--
	q.localDone++
	if errored {
		q.localErrors++
	}
	q.mu.Unlock()
}

func (q *WorkQueue) noteLocalAbandoned(n int) {
	q.mu.Lock()
	q.localPending -= n
	q.mu.Unlock()
}

// Sweep re-queues expired leases immediately (normally this happens lazily
// on Lease/Complete; the coordinator may also tick it so expiry does not
// wait for traffic).
func (q *WorkQueue) Sweep() {
	q.mu.Lock()
	expired := q.sweepLocked(q.now())
	q.mu.Unlock()
	expired()
}

// sweepLocked returns expired leased cells to the front of the queue, or
// fails them when their attempts are exhausted. A lease is also reclaimed
// — even unexpired, even renewing — when its holder has been draining
// past its drain deadline: the grace period is over and the fleet takes
// the cell back. The returned closure invokes the waiters of failed
// cells; callers run it after releasing the lock. Only q.leased is
// scanned — every Lease and Complete sweeps, so the cost must be bounded
// by in-flight leases, not campaign size.
func (q *WorkQueue) sweepLocked(now time.Time) func() {
	q.lastSweep = now
	var front []string
	var failed []func()
	for key, c := range q.leased {
		if c.state != cellLeased {
			continue
		}
		holder := q.workers[c.worker]
		drained := holder != nil && holder.State == WorkerDraining &&
			!holder.drainDeadline.IsZero() && !holder.drainDeadline.After(now)
		if c.expires.After(now) && !drained {
			continue
		}
		cause := "expire"
		if drained {
			cause = "drain"
			cQDrainRequeues.Inc()
		}
		if w, ok := q.workers[c.worker]; ok {
			w.Leased--
		}
		if c.attempts >= q.maxAttempts {
			q.emit(journal.Event{Type: journal.EvFail, Key: key, Worker: c.worker, Attempt: c.attempts, Cause: cause})
			failed = append(failed, q.finishLocked(c, key, nil, fmt.Errorf("campaign: cell %s (%s) failed after %d lease attempts (last worker %s)", key, c.wire.Label, c.attempts, c.worker)))
			continue
		}
		q.emit(journal.Event{Type: journal.EvRequeue, Key: key, Worker: c.worker, Attempt: c.attempts, Cause: cause})
		c.state = cellPending
		c.worker = ""
		delete(q.leased, key)
		q.requeues++
		cQRequeues.Inc()
		front = append(front, key)
	}
	if len(front) > 0 {
		sort.Strings(front) // map order is random; keep requeue order stable
		q.order = append(front, q.order...)
	}
	return func() {
		for _, fn := range failed {
			fn()
		}
	}
}

// retryOrFailLocked re-queues a cell after a failed attempt, or finishes it
// with err once attempts are exhausted. It returns the (possibly no-op)
// waiter invocation to run outside the lock.
func (q *WorkQueue) retryOrFailLocked(c *workCell, key, cause string, err error) func() {
	if c.attempts >= q.maxAttempts {
		q.emit(journal.Event{Type: journal.EvFail, Key: key, Worker: c.worker, Attempt: c.attempts, Cause: cause})
		return q.finishLocked(c, key, nil, err)
	}
	q.emit(journal.Event{Type: journal.EvRequeue, Key: key, Worker: c.worker, Attempt: c.attempts, Cause: cause})
	c.state = cellPending
	c.worker = ""
	delete(q.leased, key)
	q.requeues++
	cQRequeues.Inc()
	q.order = append([]string{key}, q.order...)
	return func() {}
}

// finishLocked completes a cell and evicts it (the bytes live in the
// ResultStore; the queue keeps only a done-key marker for duplicate
// detection on success, and nothing at all on failure, so a resubmitted
// campaign retries a failed cell fresh). It returns a closure that invokes
// the cell's waiters — callers run it after releasing the lock, since
// waiters call back into stores and progress sinks.
// unpinLocked releases a cell's trained-agent pin (no-op for unpinned
// cells). Called exactly once per cell: on finish or on last-waiter
// cancel, both of which remove the cell from q.cells first.
func (q *WorkQueue) unpinLocked(c *workCell) {
	if c.pinned == "" {
		return
	}
	if ps, ok := q.Store.(PinStore); ok {
		ps.Unpin(c.pinned)
	}
	c.pinned = ""
}

func (q *WorkQueue) finishLocked(c *workCell, key string, data []byte, err error) func() {
	c.state = cellDone
	delete(q.cells, key)
	delete(q.leased, key)
	q.unpinLocked(c)
	if err == nil {
		if len(q.doneKeys) >= maxDoneKeys {
			q.doneKeys = map[string]bool{}
		}
		q.doneKeys[key] = true
	}
	q.done++
	ws := make([]func([]byte, error), 0, len(c.waiters))
	for _, fn := range c.waiters {
		ws = append(ws, fn)
	}
	c.waiters = map[int]func([]byte, error){}
	return func() {
		for _, fn := range ws {
			fn(data, err)
		}
	}
}

func (q *WorkQueue) workerLocked(id string, now time.Time) *WorkerStatus {
	w, ok := q.workers[id]
	if !ok {
		w = &WorkerStatus{ID: id, FirstSeen: now}
		q.workers[id] = w
	}
	w.LastSeen = now
	return w
}

// SweeperHealth reports whether StartSweeper is running, its tick
// interval, and when the queue last swept (every entry point sweeps,
// so lastSweep also advances with request traffic). Readiness probes
// compare the last-sweep age against the interval.
func (q *WorkQueue) SweeperHealth() (running bool, interval time.Duration, last time.Time) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sweeperOn, q.sweepInterval, q.lastSweep
}

// Stats snapshots the queue.
func (q *WorkQueue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := QueueStats{
		// cells holds exactly the pending and leased population (done
		// cells are evicted), so the split needs no scan.
		Pending:      len(q.cells) - len(q.leased),
		Leased:       len(q.leased),
		Done:         q.done,
		Requeues:     q.requeues,
		Rejects:      q.rejects,
		Duplicates:   q.duplicates,
		Renewals:     q.renewals,
		LocalPending: q.localPending,
		LocalDone:    q.localDone,
		LocalErrors:  q.localErrors,
	}
	ids := make([]string, 0, len(q.workers))
	for id := range q.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		st.Workers = append(st.Workers, *q.workers[id])
	}
	return st
}
